package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestCatitrainProducesLoadableModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.model")
	err := run([]string{
		"-out", model, "-binaries", "3", "-window", "5",
		"-epochs", "1", "-max-per-stage", "500", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Load(blob); err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
}
