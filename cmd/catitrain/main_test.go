package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestCatitrainProducesLoadableModel(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.model")
	err := run([]string{
		"-out", model, "-binaries", "3", "-window", "5",
		"-epochs", "1", "-max-per-stage", "500", "-quick",
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Load(blob); err != nil {
		t.Fatalf("saved model does not load: %v", err)
	}
}

// TestCatitrainCheckpointResume: the -checkpoint flag populates the
// directory with sealed phase snapshots, and a second identical run
// resumes from them and produces a byte-identical model.
func TestCatitrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	model1 := filepath.Join(dir, "m1.model")
	args := []string{
		"-binaries", "3", "-window", "5", "-epochs", "1",
		"-max-per-stage", "500", "-quick", "-workers", "1",
		"-checkpoint", ckpt,
	}
	if err := run(append([]string{"-out", model1}, args...)); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(ckpt, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 { // meta + w2v + at least one stage CNN
		t.Fatalf("checkpoint dir sparse after full run: %v", snaps)
	}
	// Second run resumes every phase from the checkpoints.
	model2 := filepath.Join(dir, "m2.model")
	if err := run(append([]string{"-out", model2}, args...)); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(model1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(model2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := core.Load(b1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := core.Load(b2)
	if err != nil {
		t.Fatal(err)
	}
	for stage, n1 := range c1.Pipeline.Stages {
		p1, p2 := n1.Params(), c2.Pipeline.Stages[stage].Params()
		for k := range p1 {
			for l := range p1[k].W {
				if p1[k].W[l] != p2[k].W[l] {
					t.Fatalf("stage %s differs after resume at param %d[%d]", stage, k, l)
				}
			}
		}
	}
}
