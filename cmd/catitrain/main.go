// Command catitrain trains a CATI model: it builds a labeled training
// corpus with the simulated toolchain, trains the Word2Vec embedding and
// the six-stage CNN classifier, and writes the serialized model.
//
// Usage:
//
//	catitrain -out cati.model -binaries 48 -epochs 2
//	catitrain -timeout 10m -trace -out cati.model
//	catitrain -checkpoint ckpt/ -out cati.model
//
// Ctrl-C (or -timeout expiry) cancels training at the next stage/shard
// boundary; with -trace the per-stage breakdown of whatever completed is
// printed on exit. With -checkpoint, every completed training phase (the
// embedding and each stage CNN) is snapshotted to the given directory as
// a checksummed artifact; re-running the same command after a crash or
// cancellation resumes from the completed phases and produces the same
// model an uninterrupted run would have. Changing any training flag
// invalidates the checkpoints (they are discarded and training restarts
// cleanly).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/cmd/internal/cliflags"
	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "catitrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("catitrain", flag.ContinueOnError)
	out := fs.String("out", "cati.model", "output model file")
	binaries := fs.Int("binaries", 24, "training binaries to generate")
	dialect := fs.String("dialect", "gcc", "compiler dialect: gcc or clang")
	arch := cliflags.Arch(fs)
	window := cliflags.Window(fs)
	epochs := fs.Int("epochs", 2, "CNN training epochs")
	maxPerStage := fs.Int("max-per-stage", 4000, "training sample cap per stage")
	seed := cliflags.Seed(fs, 7)
	quick := fs.Bool("quick", false, "small architecture for a fast demo model")
	ckptDir := fs.String("checkpoint", "", "directory for per-phase training checkpoints (resume after crash/cancel)")
	quantize := fs.Bool("quantize", false, "write an int8-quantized inference model (~4x smaller, inference-only)")
	from := fs.String("from", "", "convert an existing model artifact instead of training (use with -quantize)")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	d := compile.GCC
	if *dialect == "clang" {
		d = compile.Clang
	}
	if err := cliflags.CheckArch(*arch); err != nil {
		return err
	}

	log, err := rt.Setup()
	if err != nil {
		return err
	}

	ctx, stop := rt.Context()
	defer stop()
	trace := rt.NewTrace()
	defer cliflags.PrintTrace(os.Stderr, trace)

	// Conversion mode: load an existing float model, quantize, write.
	if *from != "" {
		if !*quantize {
			return fmt.Errorf("-from requires -quantize (nothing else to convert)")
		}
		data, err := os.ReadFile(*from)
		if err != nil {
			return err
		}
		cati, err := core.Load(data)
		if err != nil {
			return err
		}
		return writeModel(cati, *out, true, log)
	}

	start := time.Now()
	log.Info("building corpus", "binaries", *binaries, "dialect", *dialect, "arch", *arch)
	c, err := corpus.BuildCtx(ctx, corpus.BuildConfig{
		Name:     "train",
		Binaries: *binaries,
		Profile:  synth.DefaultProfile("train"),
		Dialect:  d,
		Window:   *window,
		Seed:     *seed,
		Arch:     *arch,
	})
	if err != nil {
		return err
	}
	st := c.Stats()
	log.Info("corpus built", "variables", st.Variables, "vucs", st.VUCs,
		"elapsed", time.Since(start).Round(time.Millisecond))

	cfg := classify.Config{
		Window:      *window,
		Arch:        *arch,
		MaxPerStage: *maxPerStage,
		Train:       nn.TrainConfig{Epochs: *epochs, Batch: 64, LR: 1e-3},
		W2V:         word2vec.Config{Epochs: 2},
		Seed:        *seed,
		Workers:     rt.Workers,
		Trace:       trace,
		Hook:        cliflags.StageHook(log),
		Checkpoint:  *ckptDir,
	}
	if *quick {
		cfg.Conv1, cfg.Conv2, cfg.Hidden = 8, 8, 64
	}
	log.Info("training embedding + 6-stage classifier")
	t0 := time.Now()
	cati, err := core.TrainCtx(ctx, c, cfg)
	if err != nil {
		return err
	}
	log.Info("training done", "elapsed", time.Since(t0).Round(time.Millisecond))

	return writeModel(cati, *out, *quantize, log)
}

// writeModel seals the system (quantizing first when asked) and writes
// the artifact file.
func writeModel(cati *core.CATI, out string, quantize bool, log *slog.Logger) error {
	kind := "float32"
	if quantize {
		var err error
		if cati, err = cati.Quantize(); err != nil {
			return err
		}
		kind = "int8"
		log.Info("quantized model to int8")
	}
	blob, err := cati.Save()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %s, fingerprint %s)\n", out, len(blob), kind, cati.Fingerprint())
	return nil
}
