// Package cliflags centralizes the flag plumbing shared by the CATI
// CLIs (catitrain, cati, catibench): the worker-pool size, the run
// deadline, stage tracing, and the common -seed/-window knobs. One
// definition means every tool spells the flags, defaults and help text
// identically.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/vuc"
)

// Runtime carries the execution flags every long-running CLI shares.
type Runtime struct {
	// Workers is the -workers flag (0: CATI_WORKERS env, else GOMAXPROCS).
	Workers int
	// Timeout is the -timeout flag; 0 means no deadline.
	Timeout time.Duration
	// Trace is the -trace flag: record and print per-stage wall times.
	Trace bool
}

// AddRuntime registers -workers, -timeout and -trace on the flag set and
// returns the struct they fill in after fs.Parse.
func AddRuntime(fs *flag.FlagSet) *Runtime {
	r := &Runtime{}
	fs.IntVar(&r.Workers, "workers", 0, "worker goroutines (0: CATI_WORKERS env, else GOMAXPROCS)")
	fs.DurationVar(&r.Timeout, "timeout", 0, "overall deadline, e.g. 90s or 10m (0: none)")
	fs.BoolVar(&r.Trace, "trace", false, "record per-stage wall times and print the breakdown on exit")
	return r
}

// Context returns a context that is cancelled on Ctrl-C (SIGINT) or
// SIGTERM and, when -timeout is set, when the deadline passes. The
// returned stop function releases the signal handler and must be called
// on exit; after the first signal cancels the context, a second signal
// kills the process the default way.
func (r *Runtime) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if r.Timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, r.Timeout)
		return tctx, func() { cancel(); stop() }
	}
	return ctx, stop
}

// NewTrace returns a fresh trace when -trace was given, else nil — and a
// nil *obs.Trace records nothing at no cost, so callers can attach the
// result unconditionally.
func (r *Runtime) NewTrace() *obs.Trace {
	if !r.Trace {
		return nil
	}
	return &obs.Trace{}
}

// PrintTrace writes the stage breakdown to w; a no-op when tracing is
// off (nil trace) or nothing was recorded. Safe to defer: it prints
// whatever stages completed even when the run was cancelled mid-way.
func PrintTrace(w io.Writer, t *obs.Trace) {
	if t == nil || len(t.Stages()) == 0 {
		return
	}
	fmt.Fprintln(w, "stage breakdown:")
	fmt.Fprint(w, t.Format())
}

// Seed registers the common -seed flag with the tool's default.
func Seed(fs *flag.FlagSet, def int64) *int64 {
	return fs.Int64("seed", def, "seed namespacing all stochastic choices")
}

// Window registers the common -window flag (the VUC half-window w).
func Window(fs *flag.FlagSet) *int {
	return fs.Int("window", vuc.DefaultWindow, "VUC window w")
}
