// Package cliflags centralizes the flag plumbing shared by the CATI
// CLIs (catitrain, cati, catibench, catigen, catiserve): the worker-pool
// size, the run deadline, stage tracing, the telemetry/diagnostics trio
// (-debug-addr, -log-format, -log-level), the common -seed/-window
// knobs, and the catiserve service group (-addr, admission, batching,
// cache and drain knobs). One definition means every tool spells the
// flags, defaults and help text identically.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gemm"
	"repro/internal/isa"
	_ "repro/internal/isa/isas" // register built-in architectures for -arch
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vuc"
)

// Diag carries the diagnostics flags every CLI shares: structured-log
// shape and the optional debug server.
type Diag struct {
	// DebugAddr is the -debug-addr flag: when non-empty, serve /metrics,
	// /healthz, /debug/vars and /debug/pprof on this address and enable
	// metric collection.
	DebugAddr string
	// LogFormat is the -log-format flag: "text" or "json".
	LogFormat string
	// LogLevel is the -log-level flag: debug, info, warn or error.
	LogLevel string
	// TraceSlow is the -trace-slow flag: locally rooted requests slower
	// than this are pinned by the flight recorder and logged.
	TraceSlow time.Duration
	// TraceRetain is the -trace-retain flag: how many traces the bounded
	// in-memory span store keeps (0: the trace package default).
	TraceRetain int
	// TraceJSONL is the -trace-jsonl flag: when non-empty, every finished
	// span is appended to this file as one JSON line.
	TraceJSONL string
	// Exemplars is the -exemplars flag: annotate histogram buckets in the
	// /metrics exposition with recent trace IDs.
	Exemplars bool
	// Server is the debug server Setup started (nil without -debug-addr).
	// Long-lived daemons drain it on exit via Server.Shutdown so a
	// monitoring system's in-flight scrape is never truncated.
	Server *telemetry.Server
	// jsonl is the open -trace-jsonl sink (closed by CloseTracing).
	jsonl *os.File
}

// AddDiag registers -debug-addr, -log-format and -log-level on the flag
// set and returns the struct they fill in after fs.Parse.
func AddDiag(fs *flag.FlagSet) *Diag {
	d := &Diag{}
	addDiag(fs, d)
	return d
}

func addDiag(fs *flag.FlagSet, d *Diag) {
	fs.StringVar(&d.DebugAddr, "debug-addr", "", "serve /metrics, /healthz, /debug/vars, /debug/pprof, /v1/trace/{id} and /debug/traces on this address (e.g. localhost:6060) and enable metric collection and tracing")
	fs.StringVar(&d.LogFormat, "log-format", "text", "diagnostic log format: text or json (always on stderr)")
	fs.StringVar(&d.LogLevel, "log-level", "info", "diagnostic log level: debug, info, warn or error")
	fs.DurationVar(&d.TraceSlow, "trace-slow", 0, "slow-request flight recorder: pin and log traces of locally rooted requests slower than this (0: off)")
	fs.IntVar(&d.TraceRetain, "trace-retain", 0, "traces kept in the bounded in-memory span store (0: 256)")
	fs.StringVar(&d.TraceJSONL, "trace-jsonl", "", "append every finished span to this file as JSON lines")
	fs.BoolVar(&d.Exemplars, "exemplars", false, "annotate /metrics histogram buckets with recent trace-ID exemplars")
}

// Setup builds the shared structured logger on stderr, installs it as the
// slog default, and — when -debug-addr was given — starts the debug
// server (which enables metric collection). Call it right after fs.Parse;
// everything diagnostic the CLI prints from then on goes through the
// returned logger, keeping stdout exclusively for data.
func (d *Diag) Setup() (*slog.Logger, error) {
	log, err := telemetry.NewLogger(os.Stderr, d.LogFormat, d.LogLevel)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(log)
	if d.DebugAddr != "" {
		srv, err := telemetry.StartServer(d.DebugAddr, nil)
		if err != nil {
			return nil, err
		}
		d.Server = srv
		log.Info("debug server listening", "addr", srv.Addr)
		if err := d.EnableTracing(log); err != nil {
			return nil, err
		}
	}
	return log, nil
}

// EnableTracing installs the process-wide trace collector built from the
// -trace-slow/-trace-retain/-trace-jsonl flags and, with -exemplars,
// turns exemplar exposition on in the default registry. Diag.Setup calls
// it whenever -debug-addr enables observability; long-lived daemons
// (catiserve) call it unconditionally so traces are collectable on the
// data port even without a debug server. Idempotent per Diag.
func (d *Diag) EnableTracing(log *slog.Logger) error {
	if trace.Default() != nil {
		return nil
	}
	cfg := trace.Config{
		MaxTraces: d.TraceRetain,
		Slow:      d.TraceSlow,
		Log:       log,
	}
	if d.TraceJSONL != "" {
		f, err := os.OpenFile(d.TraceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening -trace-jsonl sink: %w", err)
		}
		d.jsonl = f
		cfg.JSONL = f
	}
	trace.SetDefault(trace.NewCollector(cfg))
	if d.Exemplars {
		telemetry.Default().SetExemplars(true)
	}
	return nil
}

// CloseTracing flushes and closes the -trace-jsonl sink, if one was
// opened. Safe to call (and to defer) unconditionally.
func (d *Diag) CloseTracing() {
	if d.jsonl != nil {
		_ = d.jsonl.Close()
		d.jsonl = nil
	}
}

// EnvKernel is the environment variable consulted for the math-kernel
// backend when the -kernel flag is left at its default.
const EnvKernel = "CATI_KERNEL"

// Runtime carries the execution flags every long-running CLI shares.
type Runtime struct {
	// Workers is the -workers flag (0: CATI_WORKERS env, else GOMAXPROCS).
	Workers int
	// Timeout is the -timeout flag; 0 means no deadline.
	Timeout time.Duration
	// Trace is the -trace flag: record and print per-stage wall times.
	Trace bool
	// Kernel is the -kernel flag: the gemm backend for CNN inference
	// (auto, portable, blocked or jit). Empty defers to the CATI_KERNEL
	// environment variable, then "auto".
	Kernel string
	// Diag holds the embedded diagnostics flags (Setup is promoted).
	Diag
}

// AddRuntime registers -workers, -timeout, -trace, -kernel and the
// diagnostics trio on the flag set and returns the struct they fill in
// after fs.Parse.
func AddRuntime(fs *flag.FlagSet) *Runtime {
	r := &Runtime{}
	fs.IntVar(&r.Workers, "workers", 0, "worker goroutines (0: CATI_WORKERS env, else GOMAXPROCS)")
	fs.DurationVar(&r.Timeout, "timeout", 0, "overall deadline, e.g. 90s or 10m (0: none)")
	fs.BoolVar(&r.Trace, "trace", false, "record per-stage wall times and print the breakdown on exit")
	fs.StringVar(&r.Kernel, "kernel", "", kernelHelp())
	addDiag(fs, &r.Diag)
	return r
}

func kernelHelp() string {
	return fmt.Sprintf("math kernel backend: %s (empty: CATI_KERNEL env, else auto)",
		strings.Join(gemm.BackendNames(), ", "))
}

// Kernel registers the standalone -kernel flag for CLIs that do not take
// the full Runtime group (catiserve, catigen); pass the parsed value to
// ApplyKernel after fs.Parse.
func Kernel(fs *flag.FlagSet) *string {
	return fs.String("kernel", "", kernelHelp())
}

// ApplyKernel resolves a -kernel flag value (empty: CATI_KERNEL env,
// then "auto") and selects the gemm backend process-wide. An unknown or
// unavailable backend (e.g. "jit" on a non-amd64 build) is an error, not
// a silent fallback.
func ApplyKernel(name string) error {
	if name == "" {
		name = os.Getenv(EnvKernel)
	}
	if name == "" {
		name = "auto"
	}
	return gemm.Select(name)
}

// Setup builds the shared logger and optional debug server (see
// Diag.Setup), then applies the -kernel/CATI_KERNEL backend selection so
// every CLI resolves the math core the same way. An unknown or
// unavailable backend (e.g. -kernel jit on a non-amd64 build) is a
// startup error, not a silent fallback.
func (r *Runtime) Setup() (*slog.Logger, error) {
	log, err := r.Diag.Setup()
	if err != nil {
		return nil, err
	}
	if err := ApplyKernel(r.Kernel); err != nil {
		return nil, err
	}
	return log, nil
}

// StageHook returns an obs.Hook that logs stage completions (and, at
// debug level, starts) with the same stage/wall/items/workers attributes
// the telemetry histograms are labeled by, so log lines and /metrics
// series correlate. Hooks may fire from concurrent stages; slog handlers
// are safe for that.
func StageHook(log *slog.Logger) obs.Hook {
	return func(e obs.Event) {
		if !e.Done {
			log.Debug("stage start", "stage", e.Stage, "workers", e.Workers)
			return
		}
		if e.Err != nil {
			log.Warn("stage failed", "stage", e.Stage, "wall", e.Wall, "items", e.Items, "workers", e.Workers, "error", e.Err)
			return
		}
		log.Debug("stage done", "stage", e.Stage, "wall", e.Wall, "items", e.Items, "workers", e.Workers)
	}
}

// Context returns a context that is cancelled on Ctrl-C (SIGINT) or
// SIGTERM and, when -timeout is set, when the deadline passes. The
// returned stop function releases the signal handler and must be called
// on exit; after the first signal cancels the context, a second signal
// kills the process the default way.
func (r *Runtime) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if r.Timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, r.Timeout)
		return tctx, func() { cancel(); stop() }
	}
	return ctx, stop
}

// NewTrace returns a fresh trace when -trace was given, else nil — and a
// nil *obs.Trace records nothing at no cost, so callers can attach the
// result unconditionally.
func (r *Runtime) NewTrace() *obs.Trace {
	if !r.Trace {
		return nil
	}
	return &obs.Trace{}
}

// PrintTrace writes the stage breakdown to w; a no-op when tracing is
// off (nil trace) or nothing was recorded. Safe to defer: it prints
// whatever stages completed even when the run was cancelled mid-way.
func PrintTrace(w io.Writer, t *obs.Trace) {
	if t == nil || len(t.Stages()) == 0 {
		return
	}
	fmt.Fprintln(w, "stage breakdown:")
	fmt.Fprint(w, t.Format())
}

// Serve carries the catiserve service flags: the listen address plus the
// admission, micro-batching, result-cache, artifact-watch and drain
// knobs of internal/serve. Defaults mirror serve.Config's documented
// defaults, so `catiserve -model m` alone is a sensible deployment.
type Serve struct {
	// Addr is the -addr flag: the inference API listen address.
	Addr string
	// MaxInFlight is the -max-inflight flag (0: 2× batch, minimum 4).
	MaxInFlight int
	// MaxQueue is the -max-queue flag (0: same as the in-flight bound).
	MaxQueue int
	// QueueWait is the -queue-wait flag: a queued request's slot deadline.
	QueueWait time.Duration
	// RetryAfter is the -retry-after flag: the minimum Retry-After hint
	// on 429 responses (the emitted hint is derived from live load).
	RetryAfter time.Duration
	// MaxRetryAfter is the -max-retry-after flag: the cap on the derived
	// Retry-After hint.
	MaxRetryAfter time.Duration
	// ReadyWatermark is the -ready-watermark flag: the admission queue
	// depth at which /v1/readyz flips to 503.
	ReadyWatermark int
	// MaxBatch is the -max-batch flag (1 disables micro-batching).
	MaxBatch int
	// BatchLinger is the -batch-linger flag: how long a forming batch
	// waits to fill.
	BatchLinger time.Duration
	// CacheSize is the -cache-size flag (negative disables the cache).
	CacheSize int
	// MaxBody is the -max-body flag: the upload size cap in bytes.
	MaxBody int64
	// BinaryTimeout and Retries are -binary-timeout / -retries, the same
	// per-binary fault-isolation knobs `cati infer` takes.
	BinaryTimeout time.Duration
	Retries       int
	// WatchInterval is the -watch-interval flag: the artifact poll period
	// (negative: reload only on SIGHUP).
	WatchInterval time.Duration
	// DrainTimeout is the -drain-timeout flag: how long shutdown waits
	// for in-flight requests before closing their connections.
	DrainTimeout time.Duration
}

// AddServe registers the catiserve service flags on the flag set and
// returns the struct they fill in after fs.Parse. Zero values defer to
// serve.Config's defaults so the service layer stays the single source
// of truth for them.
func AddServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Addr, "addr", "localhost:8090", "inference API listen address")
	fs.IntVar(&s.MaxInFlight, "max-inflight", 0, "max concurrently executing requests (0: 2x max-batch, minimum 4)")
	fs.IntVar(&s.MaxQueue, "max-queue", 0, "max requests queued beyond the in-flight bound (0: same as max-inflight)")
	fs.DurationVar(&s.QueueWait, "queue-wait", 0, "max time a queued request waits for a slot before 429 (0: 1s)")
	fs.DurationVar(&s.RetryAfter, "retry-after", 0, "minimum Retry-After hint on 429 responses; the emitted hint scales with queue depth and recent latency (0: 1s)")
	fs.DurationVar(&s.MaxRetryAfter, "max-retry-after", 0, "cap on the derived Retry-After hint (0: 30s)")
	fs.IntVar(&s.ReadyWatermark, "ready-watermark", 0, "admission queue depth at which /v1/readyz reports 503 (0: max-queue)")
	fs.IntVar(&s.MaxBatch, "max-batch", 0, "micro-batch size cap; 1 disables batching (0: 8)")
	fs.DurationVar(&s.BatchLinger, "batch-linger", 0, "how long a forming micro-batch waits to fill (0: 2ms)")
	fs.IntVar(&s.CacheSize, "cache-size", 0, "result cache entries; negative disables caching (0: 1024)")
	fs.Int64Var(&s.MaxBody, "max-body", 0, "max uploaded image bytes (0: 64MiB)")
	fs.DurationVar(&s.BinaryTimeout, "binary-timeout", 0, "per-binary wall-time limit (0: none)")
	fs.IntVar(&s.Retries, "retries", 0, "extra attempts per binary after a transient failure")
	fs.DurationVar(&s.WatchInterval, "watch-interval", 0, "model artifact poll period; negative reloads only on SIGHUP (0: 2s)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 10*time.Second, "max time shutdown waits for in-flight requests")
	return s
}

// Bulk carries the bulk-analysis-queue flags shared by `catiserve` and
// `catiserve -router`: the queue directory plus the drain and ingest
// bounds of internal/bulkq. Defaults mirror bulkq.Config's documented
// defaults.
type Bulk struct {
	// Dir is the -bulk-dir flag: the durable queue directory (spool +
	// journal). Empty leaves the /v1/bulk API unmounted.
	Dir string
	// Workers is the -bulk-workers flag: bulk drain concurrency.
	Workers int
	// MaxBody is the -max-bulk-body flag: the archive upload cap in bytes.
	MaxBody int64
	// MaxEntries/MaxEntrySize are -bulk-max-entries/-bulk-max-entry: the
	// per-archive bounds.
	MaxEntries   int
	MaxEntrySize int64
}

// AddBulk registers the bulk-queue flags on the flag set and returns the
// struct they fill in after fs.Parse. Zero values defer to bulkq.Config's
// defaults so the queue layer stays the single source of truth for them.
func AddBulk(fs *flag.FlagSet) *Bulk {
	b := &Bulk{}
	fs.StringVar(&b.Dir, "bulk-dir", "", "durable bulk-queue directory (spool + journal); enables POST /v1/bulk and resumes unfinished jobs found there (empty: bulk API off)")
	fs.IntVar(&b.Workers, "bulk-workers", 0, "bulk drain concurrency; workers yield to interactive traffic (0: 2)")
	fs.Int64Var(&b.MaxBody, "max-bulk-body", 0, "max bulk archive upload bytes (0: 512MiB)")
	fs.IntVar(&b.MaxEntries, "bulk-max-entries", 0, "max entries per bulk archive (0: 1024)")
	fs.Int64Var(&b.MaxEntrySize, "bulk-max-entry", 0, "max bytes per bulk archive entry (0: 64MiB)")
	return b
}

// Fleet carries the fleet-router flags (`catiserve -router`,
// `catibench -fleet-bench`): the replica set plus the membership,
// failover and peer-fill knobs of internal/fleet. Defaults mirror
// fleet.Config's documented defaults.
type Fleet struct {
	// Replicas is the -replicas flag: comma-separated catiserve base
	// URLs forming the ring.
	Replicas string
	// Vnodes is the -vnodes flag: ring points per replica.
	Vnodes int
	// ProbeInterval/ProbeTimeout are the -probe-interval/-probe-timeout
	// flags driving health-gated membership.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter/RejoinAfter are -eject-after/-rejoin-after: the
	// consecutive-probe streaks that remove and readmit a replica.
	EjectAfter  int
	RejoinAfter int
	// HedgeAfter is the -hedge-after flag: how long the owner shard gets
	// before the request races the next ring replica.
	HedgeAfter time.Duration
	// OwnerRetries/Rounds are -owner-retries/-rounds: the owner's extra
	// attempts and the full plan passes per request.
	OwnerRetries int
	Rounds       int
	// Backoff/MaxBackoff are -fleet-backoff/-fleet-max-backoff: the
	// jittered exponential spacing between failure-driven attempts.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// BreakerThreshold/BreakerCooldown are -breaker-threshold /
	// -breaker-cooldown: the per-replica circuit breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// FillTimeout/FillGrace are -fill-timeout/-fill-grace: the peer
	// cache fill budget and the post-rejoin cold window.
	FillTimeout time.Duration
	FillGrace   time.Duration
	// FallbackModel is the -fallback-model flag: a local artifact the
	// router computes on when every replica has failed a request.
	FallbackModel string
}

// AddFleet registers the fleet-router flags on the flag set and returns
// the struct they fill in after fs.Parse. Zero values defer to
// fleet.Config's defaults so the fleet layer stays the single source of
// truth for them.
func AddFleet(fs *flag.FlagSet) *Fleet {
	f := &Fleet{}
	fs.StringVar(&f.Replicas, "replicas", "", "comma-separated catiserve base URLs forming the ring (e.g. http://10.0.0.1:8090,http://10.0.0.2:8090)")
	fs.IntVar(&f.Vnodes, "vnodes", 0, "consistent-hash ring points per replica (0: 64)")
	fs.DurationVar(&f.ProbeInterval, "probe-interval", 0, "membership probe period (0: 500ms)")
	fs.DurationVar(&f.ProbeTimeout, "probe-timeout", 0, "single readiness probe deadline (0: probe-interval, capped at 2s)")
	fs.IntVar(&f.EjectAfter, "eject-after", 0, "consecutive failed probes before a replica is ejected from the ring (0: 3)")
	fs.IntVar(&f.RejoinAfter, "rejoin-after", 0, "consecutive passing probes before an ejected replica rejoins (0: 2)")
	fs.DurationVar(&f.HedgeAfter, "hedge-after", 0, "owner wait before hedging to the next ring replica; negative disables (0: 250ms)")
	fs.IntVar(&f.OwnerRetries, "owner-retries", 0, "extra owner attempts after a hard failure before moving along the ring; negative disables (0: 1)")
	fs.IntVar(&f.Rounds, "rounds", 0, "full passes over the candidate plan per request (0: 3)")
	fs.DurationVar(&f.Backoff, "fleet-backoff", 0, "base jittered-exponential delay between failure-driven attempts; negative disables (0: 25ms)")
	fs.DurationVar(&f.MaxBackoff, "fleet-max-backoff", 0, "cap on the attempt backoff (0: 1s)")
	fs.IntVar(&f.BreakerThreshold, "breaker-threshold", 0, "consecutive request failures opening a replica's circuit breaker (0: 5)")
	fs.DurationVar(&f.BreakerCooldown, "breaker-cooldown", 0, "how long an open breaker sheds before a half-open probe (0: 2s)")
	fs.DurationVar(&f.FillTimeout, "fill-timeout", 0, "peer cache fill probe budget (0: 100ms)")
	fs.DurationVar(&f.FillGrace, "fill-grace", 0, "post-rejoin window in which a cold owner's requests first probe the covering peer's cache (0: 10x probe-interval)")
	fs.StringVar(&f.FallbackModel, "fallback-model", "", "local model artifact to compute on when every replica fails a request (empty: such requests get 502)")
	return f
}

// ReplicaList splits and normalizes the -replicas value: entries are
// trimmed, empties dropped, and bare host:port entries get an http://
// scheme.
func (f *Fleet) ReplicaList() []string {
	var out []string
	for _, r := range strings.Split(f.Replicas, ",") {
		r = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(r), "/"))
		if r == "" {
			continue
		}
		if !strings.Contains(r, "://") {
			r = "http://" + r
		}
		out = append(out, r)
	}
	return out
}

// Seed registers the common -seed flag with the tool's default.
func Seed(fs *flag.FlagSet, def int64) *int64 {
	return fs.Int64("seed", def, "seed namespacing all stochastic choices")
}

// Window registers the common -window flag (the VUC half-window w).
func Window(fs *flag.FlagSet) *int {
	return fs.Int("window", vuc.DefaultWindow, "VUC window w")
}

// Arch registers the common -arch flag selecting the target instruction
// set for generation/training; pass the parsed value to CheckArch after
// fs.Parse.
func Arch(fs *flag.FlagSet) *string {
	return fs.String("arch", "x86_64",
		"target instruction set: "+strings.Join(isa.Names(), " or "))
}

// CheckArch validates a parsed -arch value against the registered
// architectures.
func CheckArch(name string) error {
	_, err := isa.ByName(name)
	return err
}
