package cliflags

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vuc"
)

func TestAddRuntimeParsesFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	rt := AddRuntime(fs)
	if err := fs.Parse([]string{"-workers", "3", "-timeout", "150ms", "-trace"}); err != nil {
		t.Fatal(err)
	}
	if rt.Workers != 3 || rt.Timeout != 150*time.Millisecond || !rt.Trace {
		t.Fatalf("flags not plumbed: %+v", rt)
	}
}

func TestAddRuntimeDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	rt := AddRuntime(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if rt.Workers != 0 || rt.Timeout != 0 || rt.Trace {
		t.Fatalf("unexpected defaults: %+v", rt)
	}
}

func TestContextTimeout(t *testing.T) {
	rt := &Runtime{Timeout: 20 * time.Millisecond}
	ctx, stop := rt.Context()
	defer stop()
	select {
	case <-ctx.Done():
		if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", ctx.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("-timeout did not expire the context")
	}
}

func TestContextNoTimeout(t *testing.T) {
	rt := &Runtime{}
	ctx, stop := rt.Context()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("context dead on arrival: %v", err)
	}
	stop()
	// stop releases the signal handler; the context it returned is done.
	<-ctx.Done()
}

func TestNewTrace(t *testing.T) {
	if tr := (&Runtime{}).NewTrace(); tr != nil {
		t.Fatal("trace allocated with -trace off")
	}
	if tr := (&Runtime{Trace: true}).NewTrace(); tr == nil {
		t.Fatal("no trace with -trace on")
	}
}

func TestPrintTrace(t *testing.T) {
	var buf bytes.Buffer
	PrintTrace(&buf, nil)
	PrintTrace(&buf, &obs.Trace{})
	if buf.Len() != 0 {
		t.Fatalf("nil/empty trace printed: %q", buf.String())
	}
	tr := &obs.Trace{}
	tr.Add(obs.Stage{Name: "embed", Wall: time.Millisecond, Items: 4, Workers: 2})
	PrintTrace(&buf, tr)
	out := buf.String()
	if !strings.Contains(out, "stage breakdown:") || !strings.Contains(out, "embed") {
		t.Fatalf("breakdown missing: %q", out)
	}
}

func TestSeedAndWindow(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	seed := Seed(fs, 42)
	win := Window(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *seed != 42 || *win != vuc.DefaultWindow {
		t.Fatalf("defaults wrong: seed=%d window=%d", *seed, *win)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	seed2 := Seed(fs2, 42)
	win2 := Window(fs2)
	if err := fs2.Parse([]string{"-seed", "7", "-window", "5"}); err != nil {
		t.Fatal(err)
	}
	if *seed2 != 7 || *win2 != 5 {
		t.Fatalf("flags not plumbed: seed=%d window=%d", *seed2, *win2)
	}
}
