package cliflags

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/vuc"
)

func TestAddRuntimeParsesFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	rt := AddRuntime(fs)
	if err := fs.Parse([]string{"-workers", "3", "-timeout", "150ms", "-trace"}); err != nil {
		t.Fatal(err)
	}
	if rt.Workers != 3 || rt.Timeout != 150*time.Millisecond || !rt.Trace {
		t.Fatalf("flags not plumbed: %+v", rt)
	}
}

func TestAddRuntimeDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	rt := AddRuntime(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if rt.Workers != 0 || rt.Timeout != 0 || rt.Trace {
		t.Fatalf("unexpected defaults: %+v", rt)
	}
}

func TestContextTimeout(t *testing.T) {
	rt := &Runtime{Timeout: 20 * time.Millisecond}
	ctx, stop := rt.Context()
	defer stop()
	select {
	case <-ctx.Done():
		if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", ctx.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("-timeout did not expire the context")
	}
}

func TestContextNoTimeout(t *testing.T) {
	rt := &Runtime{}
	ctx, stop := rt.Context()
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("context dead on arrival: %v", err)
	}
	stop()
	// stop releases the signal handler; the context it returned is done.
	<-ctx.Done()
}

func TestNewTrace(t *testing.T) {
	if tr := (&Runtime{}).NewTrace(); tr != nil {
		t.Fatal("trace allocated with -trace off")
	}
	if tr := (&Runtime{Trace: true}).NewTrace(); tr == nil {
		t.Fatal("no trace with -trace on")
	}
}

func TestPrintTrace(t *testing.T) {
	var buf bytes.Buffer
	PrintTrace(&buf, nil)
	PrintTrace(&buf, &obs.Trace{})
	if buf.Len() != 0 {
		t.Fatalf("nil/empty trace printed: %q", buf.String())
	}
	tr := &obs.Trace{}
	tr.Add(obs.Stage{Name: "embed", Wall: time.Millisecond, Items: 4, Workers: 2})
	PrintTrace(&buf, tr)
	out := buf.String()
	if !strings.Contains(out, "stage breakdown:") || !strings.Contains(out, "embed") {
		t.Fatalf("breakdown missing: %q", out)
	}
}

func TestAddServeDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sv := AddServe(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	// Everything except -addr and -drain-timeout defers (as zero) to
	// serve.Config's defaults, keeping one source of truth.
	if sv.Addr != "localhost:8090" || sv.DrainTimeout != 10*time.Second {
		t.Fatalf("defaults wrong: %+v", sv)
	}
	if sv.MaxInFlight != 0 || sv.MaxQueue != 0 || sv.QueueWait != 0 ||
		sv.RetryAfter != 0 || sv.MaxBatch != 0 || sv.BatchLinger != 0 ||
		sv.CacheSize != 0 || sv.MaxBody != 0 || sv.BinaryTimeout != 0 ||
		sv.Retries != 0 || sv.WatchInterval != 0 {
		t.Fatalf("service knobs should default to zero (deferred): %+v", sv)
	}
}

func TestAddServeParsesFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sv := AddServe(fs)
	args := []string{
		"-addr", "127.0.0.1:0",
		"-max-inflight", "12", "-max-queue", "5", "-queue-wait", "250ms",
		"-retry-after", "3s", "-max-batch", "16", "-batch-linger", "4ms",
		"-cache-size", "-1", "-max-body", "1048576",
		"-binary-timeout", "30s", "-retries", "2",
		"-watch-interval", "-1s", "-drain-timeout", "7s",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	want := Serve{
		Addr: "127.0.0.1:0", MaxInFlight: 12, MaxQueue: 5,
		QueueWait: 250 * time.Millisecond, RetryAfter: 3 * time.Second,
		MaxBatch: 16, BatchLinger: 4 * time.Millisecond, CacheSize: -1,
		MaxBody: 1 << 20, BinaryTimeout: 30 * time.Second, Retries: 2,
		WatchInterval: -time.Second, DrainTimeout: 7 * time.Second,
	}
	if *sv != want {
		t.Fatalf("flags not plumbed:\n got %+v\nwant %+v", *sv, want)
	}
}

func TestSetupStartsDebugServer(t *testing.T) {
	d := &Diag{DebugAddr: "127.0.0.1:0", LogFormat: "text", LogLevel: "info"}
	log, err := d.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if log == nil {
		t.Fatal("no logger")
	}
	if d.Server == nil || d.Server.Addr == "" {
		t.Fatalf("Setup did not record the debug server handle: %+v", d.Server)
	}
	defer d.Server.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Server.Shutdown(ctx); err != nil {
		t.Fatalf("debug server shutdown: %v", err)
	}
}

func TestSeedAndWindow(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	seed := Seed(fs, 42)
	win := Window(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *seed != 42 || *win != vuc.DefaultWindow {
		t.Fatalf("defaults wrong: seed=%d window=%d", *seed, *win)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	seed2 := Seed(fs2, 42)
	win2 := Window(fs2)
	if err := fs2.Parse([]string{"-seed", "7", "-window", "5"}); err != nil {
		t.Fatal(err)
	}
	if *seed2 != 7 || *win2 != 5 {
		t.Fatalf("flags not plumbed: seed=%d window=%d", *seed2, *win2)
	}
}
