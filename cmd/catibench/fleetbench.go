package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/fleetfault"
	"repro/internal/serve"
)

// fleetRecord is one line of BENCH_fleet.json: a closed-loop load
// result against the fleet router, plus the robustness counters the
// sweep exercised.
type fleetRecord struct {
	serveRecord
	// Replicas is the fleet size behind the router for this point.
	Replicas int `json:"replicas"`
	// Chaos marks points measured under active fault injection.
	Chaos bool `json:"chaos"`
	// Counters from the router's /v1/fleet status at the end of the run.
	Ejections      uint64 `json:"ejections"`
	Rejoins        uint64 `json:"rejoins"`
	Hedges         uint64 `json:"hedges"`
	FleetRetries   uint64 `json:"fleet_retries"`
	CacheFills     uint64 `json:"cache_fills"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
}

// runFleetBench is the sweep behind `catibench -fleet-bench FILE
// [-chaos]`: train the shared bench model once, then for each fleet
// size 1..maxReplicas start that many loopback catiserve replicas
// behind fault-injecting proxies, front them with a fleet router, and
// measure a closed-loop load through the router. With chaos on (and at
// least two replicas, so there is a survivor), a fault agent sweeps
// latency spikes, truncated responses, refused connections and a
// mid-run replica kill/restart across the proxies while the load runs —
// and the sweep REQUIRES zero failed client requests: the router's
// whole contract is that single-replica faults never reach clients.
func runFleetBench(ctx context.Context, log *slog.Logger, path string, concurrency int, duration time.Duration, maxReplicas int, chaos bool) error {
	if maxReplicas < 1 {
		return fmt.Errorf("fleet-bench: -fleet-replicas must be >= 1, got %d", maxReplicas)
	}
	model, cleanup, err := trainLoadgenModel(log)
	if err != nil {
		return err
	}
	defer cleanup()
	images, err := loadgenImages(6)
	if err != nil {
		return err
	}

	var records []fleetRecord
	for n := 1; n <= maxReplicas; n++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		inject := chaos && n >= 2 // a 1-replica fleet has no survivor to fail over to
		rec, err := fleetBenchPoint(ctx, log, model, images, n, inject, concurrency, duration)
		if err != nil {
			return fmt.Errorf("fleet-bench replicas=%d: %w", n, err)
		}
		records = append(records, rec)
		log.Info("fleet bench point", "name", rec.Name,
			"rps", fmt.Sprintf("%.1f", rec.RPS), "p95_ms", fmt.Sprintf("%.2f", rec.P95Ms),
			"errors", rec.Errors, "ejections", rec.Ejections, "rejoins", rec.Rejoins,
			"hedges", rec.Hedges, "retries", rec.FleetRetries, "fills", rec.CacheFills)
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote fleet bench records", "path", path, "records", len(records))
	return nil
}

// fleetBenchPoint measures one fleet size: n replicas behind proxies,
// one router, one closed-loop load window.
func fleetBenchPoint(ctx context.Context, log *slog.Logger, model string, images [][]byte, n int, inject bool, concurrency int, duration time.Duration) (fleetRecord, error) {
	var proxies []*fleetfault.Proxy
	var urls []string
	for i := 0; i < n; i++ {
		sc := serve.Config{
			ModelPath: model, WatchInterval: -1, Log: log,
			CacheSize: 256, MaxInFlight: 2 * concurrency, MaxQueue: 2 * concurrency,
		}
		srv, err := serve.New(sc)
		if err != nil {
			return fleetRecord{}, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return fleetRecord{}, err
		}
		defer srv.Close()
		p, err := fleetfault.New("127.0.0.1:0", srv.Addr)
		if err != nil {
			return fleetRecord{}, err
		}
		defer p.Close()
		proxies = append(proxies, p)
		urls = append(urls, "http://"+p.Addr())
	}

	rt, err := fleet.New(fleet.Config{
		Replicas:        urls,
		ProbeInterval:   50 * time.Millisecond,
		EjectAfter:      3,
		RejoinAfter:     2,
		HedgeAfter:      100 * time.Millisecond,
		Backoff:         5 * time.Millisecond,
		BreakerCooldown: 250 * time.Millisecond,
		Log:             log,
	})
	if err != nil {
		return fleetRecord{}, err
	}
	if err := rt.Start("127.0.0.1:0"); err != nil {
		return fleetRecord{}, err
	}
	defer rt.Close()

	chaosDone := make(chan struct{})
	if inject {
		go func() {
			defer close(chaosDone)
			chaosAgent(ctx, log, proxies, duration)
		}()
	} else {
		close(chaosDone)
	}

	rec, err := runLoadgen(ctx, "http://"+rt.Addr+"/v1/infer", images, concurrency, duration)
	<-chaosDone
	if err != nil {
		return fleetRecord{}, err
	}
	if inject && rec.Errors > 0 {
		return fleetRecord{}, fmt.Errorf("chaos sweep saw %d failed client requests (of %d) — the router must absorb single-replica faults", rec.Errors, rec.Requests)
	}

	st, err := fleetStatus(rt.Addr)
	if err != nil {
		return fleetRecord{}, err
	}
	if inject {
		// The killed replica was restarted at the end of the agent's
		// script: require the clean rejoin before calling the point done.
		deadline := time.Now().Add(5 * time.Second)
		for st.Up != n {
			if time.Now().After(deadline) {
				return fleetRecord{}, fmt.Errorf("fleet did not re-converge after chaos: %d/%d up", st.Up, n)
			}
			time.Sleep(50 * time.Millisecond)
			if st, err = fleetStatus(rt.Addr); err != nil {
				return fleetRecord{}, err
			}
		}
		if st.Ejections == 0 || st.Rejoins == 0 {
			return fleetRecord{}, fmt.Errorf("chaos ran but membership never cycled (ejections=%d rejoins=%d)", st.Ejections, st.Rejoins)
		}
	}

	out := fleetRecord{
		serveRecord:    rec,
		Replicas:       n,
		Chaos:          inject,
		Ejections:      st.Ejections,
		Rejoins:        st.Rejoins,
		Hedges:         st.Hedges,
		FleetRetries:   st.Retries,
		CacheFills:     st.CacheFills,
		LocalFallbacks: st.LocalFallbacks,
	}
	out.Name = fmt.Sprintf("fleet/replicas=%d,chaos=%v", n, inject)
	out.Cache = true
	return out, nil
}

// fleetStatus fetches the router's /v1/fleet snapshot.
func fleetStatus(addr string) (fleet.Status, error) {
	var st fleet.Status
	resp, err := http.Get("http://" + addr + "/v1/fleet")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/v1/fleet: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// chaosAgent runs the fault script across the proxies while the load
// loop measures: latency on one replica, truncation on another, refused
// connections, then a hard kill with a restart near the end. Phases are
// scaled to the measurement window so every fault gets exercised
// regardless of -serve-duration.
func chaosAgent(ctx context.Context, log *slog.Logger, proxies []*fleetfault.Proxy, duration time.Duration) {
	phase := duration / 12
	pause := func(d time.Duration) bool {
		select {
		case <-time.After(d):
			return true
		case <-ctx.Done():
			return false
		}
	}
	step := func(p *fleetfault.Proxy, m fleetfault.Mode) bool {
		log.Info("chaos: injecting", "mode", m.String())
		p.SetMode(m)
		if !pause(phase) {
			return false
		}
		p.SetMode(fleetfault.Pass)
		return pause(phase / 2)
	}

	if !pause(phase) { // warm-up: all caches see traffic first
		return
	}
	victim := proxies[len(proxies)-1]
	if !step(proxies[0], fleetfault.Latency) {
		return
	}
	if !step(proxies[1%len(proxies)], fleetfault.Truncate) {
		return
	}
	if !step(victim, fleetfault.Refuse) {
		return
	}
	log.Info("chaos: killing replica", "replica", victim.Addr())
	victim.Kill()
	pause(2 * phase)
	// Restart unconditionally — the rejoin assertion needs the replica
	// back even when the window is being cancelled.
	if err := victim.Restart(); err != nil {
		log.Error("chaos: restart failed", "error", err)
	}
}
