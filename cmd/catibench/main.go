// Command catibench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index) and prints them.
//
// Usage:
//
//	catibench [-scale default|quick] all
//	catibench table1 table3 table4 table5 table6 table7
//	catibench fig6 debin compilerid timing clustering
//	catibench ablation-window ablation-clamp ablation-generalize
//	catibench ablation-embed ablation-flat
//	catibench -bench-json BENCH_parallel.json [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "catibench:", err)
		os.Exit(1)
	}
}

var order = []string{
	"table1", "clustering", "table3", "table4", "table5", "table6", "table7",
	"fig6", "debin", "orphans", "compilerid", "confusions", "timing",
}

func run(args []string) error {
	fs := flag.NewFlagSet("catibench", flag.ContinueOnError)
	scale := fs.String("scale", "default", "experiment scale: default, quick or ablation")
	benchJSON := fs.String("bench-json", "", "run the parallel-core benchmark and write JSON records to this file (e.g. BENCH_parallel.json), then exit")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := rt.Setup()
	if err != nil {
		return err
	}

	if *benchJSON != "" {
		return runParallelBench(log, *benchJSON, rt.Workers)
	}

	var s experiments.Scale
	switch *scale {
	case "default":
		s = experiments.DefaultScale()
	case "quick":
		s = experiments.QuickScale()
	case "ablation":
		s = experiments.AblationScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	ctx, stop := rt.Context()
	defer stop()
	trace := rt.NewTrace()
	defer cliflags.PrintTrace(os.Stderr, trace)

	s.Cfg.Workers = rt.Workers
	s.Cfg.Trace = trace
	s.Cfg.Hook = cliflags.StageHook(log)
	env := experiments.NewEnv(s)
	env.Ctx = ctx

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = order
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		tab, err := runOne(env, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tab.Format())
		log.Info("experiment done", "id", id, "elapsed", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(env *experiments.Env, id string) (*experiments.Table, error) {
	switch id {
	case "table1":
		return env.Table1()
	case "table3":
		return env.Table3()
	case "table4":
		return env.Table4()
	case "table5":
		return env.Table5()
	case "table6":
		return env.Table6()
	case "table7":
		return env.Table7()
	case "fig6":
		return env.Figure6(150)
	case "debin":
		return env.DebinComparison()
	case "compilerid":
		return env.CompilerID()
	case "timing":
		return env.Timing()
	case "clustering":
		return env.Clustering()
	case "confusions":
		return env.Confusions()
	case "orphans":
		return env.Orphans()
	case "ablation-window":
		return env.AblationWindow([]int{0, 2, 5, 10})
	case "ablation-clamp":
		return env.AblationClamp([]float64{0, 0.8, 0.9, 0.95})
	case "ablation-generalize":
		return env.AblationGeneralize()
	case "ablation-embed":
		return env.AblationEmbedDim([]int{8, 16, 32})
	case "ablation-flat":
		return env.AblationFlatVsTree()
	default:
		return nil, fmt.Errorf("unknown experiment (see catibench -h)")
	}
}
