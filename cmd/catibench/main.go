// Command catibench regenerates the paper's tables and figures (see
// DESIGN.md's per-experiment index) and prints them.
//
// Usage:
//
//	catibench [-scale default|quick] all
//	catibench table1 table3 table4 table5 table6 table7
//	catibench fig6 debin compilerid timing clustering
//	catibench ablation-window ablation-clamp ablation-generalize
//	catibench ablation-embed ablation-flat crossisa
//	catibench -bench-json BENCH_parallel.json [-workers N]
//	catibench -bench-kernels BENCH_kernels.json [-bench-iters N]
//	catibench -serve-bench BENCH_serve.json
//	catibench -serve-url http://host:8090/v1/infer -serve-concurrency 16
//	catibench -fleet-bench BENCH_fleet.json -chaos
//	catibench -bulk-bench BENCH_bulk.json
//
// -serve-bench runs the self-contained catiserve sweep: it trains a
// small model, starts a loopback service per configuration, and measures
// the 2×2 of {result cache off/on} × {micro-batching off/on} under a
// closed-loop load (-serve-concurrency clients for -serve-duration
// each), writing RPS and p50/p95/p99 latency records to the file.
// -serve-url points the same load generator at an already-running
// catiserve instead and prints one record to stdout.
//
// -fleet-bench measures the sharded fleet router (internal/fleet): for
// each fleet size up to -fleet-replicas it starts that many loopback
// catiserve replicas behind fault-injecting proxies, fronts them with a
// router, and runs the same closed loop through it. With -chaos a fault
// agent sweeps latency spikes, truncated responses, refused connections
// and a mid-run replica kill/restart across the proxies during the
// measurement — and the run fails unless every client request still
// succeeded and the killed replica rejoined.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/cmd/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "catibench:", err)
		os.Exit(1)
	}
}

var order = []string{
	"table1", "clustering", "table3", "table4", "table5", "table6", "table7",
	"fig6", "debin", "orphans", "compilerid", "confusions", "timing",
}

func run(args []string) error {
	fs := flag.NewFlagSet("catibench", flag.ContinueOnError)
	scale := fs.String("scale", "default", "experiment scale: default, quick or ablation")
	benchJSON := fs.String("bench-json", "", "run the parallel-core benchmark and write JSON records to this file (e.g. BENCH_parallel.json), then exit")
	benchKernels := fs.String("bench-kernels", "", "run the math-kernel sweep (portable/blocked/jit x f32/int8) and write JSON records to this file (e.g. BENCH_kernels.json), then exit")
	benchIters := fs.Int("bench-iters", 5, "timed iterations per point for -bench-kernels")
	serveBench := fs.String("serve-bench", "", "run the catiserve cache/batch sweep and write JSON records to this file (e.g. BENCH_serve.json), then exit")
	serveURL := fs.String("serve-url", "", "load-test a running catiserve at this /v1/infer URL and print the JSON record, then exit")
	serveConc := fs.Int("serve-concurrency", 8, "closed-loop clients for -serve-bench / -serve-url / -fleet-bench")
	serveDur := fs.Duration("serve-duration", 3*time.Second, "measurement window per configuration for -serve-bench / -serve-url / -fleet-bench")
	fleetBench := fs.String("fleet-bench", "", "run the sharded-fleet router sweep (1 to -fleet-replicas loopback replicas behind a router) and write JSON records to this file (e.g. BENCH_fleet.json), then exit")
	traceBench := fs.String("trace-bench", "", "run the tracing-overhead sweep (serve path with tracing off vs on, plus the disabled fast-path microbenchmark) and write JSON records to this file (e.g. BENCH_trace.json), then exit; fails if the disabled path costs over -trace-overhead-limit")
	traceLimit := fs.Float64("trace-overhead-limit", 2.0, "maximum tracing-disabled overhead for -trace-bench, percent of request latency")
	bulkBench := fs.String("bulk-bench", "", "run the bulk-queue sweep (job size x workers, plus kill-and-resume points that hard-stop the daemon mid-job and restart it on the same queue directory) and write JSON records to this file (e.g. BENCH_bulk.json), then exit")
	bulkSmoke := fs.Bool("bulk-smoke", false, "shrink the -bulk-bench grid to one drain point and one kill-and-resume point (the make check gate)")
	fleetReplicas := fs.Int("fleet-replicas", 3, "maximum fleet size for -fleet-bench")
	chaos := fs.Bool("chaos", false, "inject faults during -fleet-bench (latency spikes, truncated responses, refused connections, a mid-run replica kill/restart) and require zero failed client requests")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := rt.Setup()
	if err != nil {
		return err
	}

	if *benchJSON != "" {
		return runParallelBench(log, *benchJSON, rt.Workers)
	}
	if *benchKernels != "" {
		return runKernelBench(log, *benchKernels, *benchIters)
	}
	if *serveBench != "" || *serveURL != "" || *fleetBench != "" || *traceBench != "" || *bulkBench != "" {
		ctx, stop := rt.Context()
		defer stop()
		if *bulkBench != "" {
			return runBulkBench(ctx, log, *bulkBench, *bulkSmoke)
		}
		if *traceBench != "" {
			return runTraceBench(ctx, log, *traceBench, *serveConc, *serveDur, *traceLimit)
		}
		if *fleetBench != "" {
			return runFleetBench(ctx, log, *fleetBench, *serveConc, *serveDur, *fleetReplicas, *chaos)
		}
		if *serveBench != "" {
			return runServeBench(ctx, log, *serveBench, *serveConc, *serveDur)
		}
		return runServeURL(ctx, log, *serveURL, *serveConc, *serveDur)
	}

	var s experiments.Scale
	switch *scale {
	case "default":
		s = experiments.DefaultScale()
	case "quick":
		s = experiments.QuickScale()
	case "ablation":
		s = experiments.AblationScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	ctx, stop := rt.Context()
	defer stop()
	trace := rt.NewTrace()
	defer cliflags.PrintTrace(os.Stderr, trace)

	s.Cfg.Workers = rt.Workers
	s.Cfg.Trace = trace
	s.Cfg.Hook = cliflags.StageHook(log)
	env := experiments.NewEnv(s)
	env.Ctx = ctx

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = order
	}
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := time.Now()
		tab, err := runOne(env, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tab.Format())
		log.Info("experiment done", "id", id, "elapsed", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func runOne(env *experiments.Env, id string) (*experiments.Table, error) {
	switch id {
	case "table1":
		return env.Table1()
	case "table3":
		return env.Table3()
	case "table4":
		return env.Table4()
	case "table5":
		return env.Table5()
	case "table6":
		return env.Table6()
	case "table7":
		return env.Table7()
	case "fig6":
		return env.Figure6(150)
	case "debin":
		return env.DebinComparison()
	case "compilerid":
		return env.CompilerID()
	case "timing":
		return env.Timing()
	case "clustering":
		return env.Clustering()
	case "confusions":
		return env.Confusions()
	case "orphans":
		return env.Orphans()
	case "ablation-window":
		return env.AblationWindow([]int{0, 2, 5, 10})
	case "ablation-clamp":
		return env.AblationClamp([]float64{0, 0.8, 0.9, 0.95})
	case "ablation-generalize":
		return env.AblationGeneralize()
	case "ablation-embed":
		return env.AblationEmbedDim([]int{8, 16, 32})
	case "ablation-flat":
		return env.AblationFlatVsTree()
	case "crossisa":
		return env.CrossISA()
	default:
		return nil, fmt.Errorf("unknown experiment (see catibench -h)")
	}
}
