package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/gemm"
	"repro/internal/nn"
)

// kernelRecord is one line of BENCH_kernels.json: the latency of a full
// CNN forward pass under one (kernel backend, dtype) pair, plus one
// accuracy record comparing int8 against float32 predictions.
type kernelRecord struct {
	Name             string  `json:"name"`
	Kernel           string  `json:"kernel,omitempty"`
	Dtype            string  `json:"dtype,omitempty"`
	Batch            int     `json:"batch,omitempty"`
	NsPerOp          int64   `json:"ns_per_op,omitempty"`
	SpeedupVsNaive   float64 `json:"speedup_vs_naive,omitempty"`
	SpeedupVsPortF32 float64 `json:"speedup_vs_portable_f32,omitempty"`
	ArgmaxAgreement  float64 `json:"argmax_agreement,omitempty"`
	MeanAbsProbDelta float64 `json:"mean_abs_prob_delta,omitempty"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
}

// measureNaive times the pre-math-core forward pass: the reference loop
// nests that Forward(train=true) still runs (training-state bookkeeping
// adds a few percent, which only makes this baseline conservative).
func measureNaive(net *nn.Network, samples [][]float32, iters int) (int64, error) {
	size := benchSeqLen * benchEmbDim
	x := nn.NewTensor(len(samples), benchSeqLen, benchEmbDim)
	for i, s := range samples {
		copy(x.Data[i*size:(i+1)*size], s)
	}
	run := func() {
		logits := net.Forward(x, true)
		nn.Softmax(logits)
	}
	run() // warm-up sizes the training scratch buffers
	return bestOf(iters, run), nil
}

// bestOf times fn iters times and returns the fastest run in ns: the
// minimum is the standard low-noise latency estimator (scheduler and
// frequency jitter only ever add time, never subtract it).
func bestOf(iters int, fn func()) int64 {
	best := int64(math.MaxInt64)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		fn()
		if ns := time.Since(t0).Nanoseconds(); ns < best {
			best = ns
		}
	}
	return best
}

// runKernelBench sweeps the math-core backends (portable, blocked, jit
// where available) × dtypes (f32, int8) over the CATI stage CNN's forward
// pass and writes one JSON record per point to path, plus an int8-vs-f32
// accuracy record. Inference runs single-worker so the records measure
// the kernels, not the fan-out.
func runKernelBench(log *slog.Logger, path string, iters int) (err error) {
	if iters < 1 {
		iters = 1
	}
	defer func() {
		if serr := gemm.Select("auto"); serr != nil && err == nil {
			err = serr
		}
	}()

	const batch = 512
	net := nn.NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
	qnet, err := nn.QuantizeNetwork(net)
	if err != nil {
		return err
	}
	samples := benchDataset(batch).Samples
	classes := net.OutputDim()
	out := make([][]float32, len(samples))
	flat := make([]float32, len(samples)*classes)
	for i := range out {
		out[i] = flat[i*classes : (i+1)*classes]
	}
	ctx := context.Background()

	measure := func(n *nn.Network) (int64, error) {
		// One warm-up pass sizes the scratch arenas and (for jit) builds
		// the kernels outside the timed region.
		var ferr error
		pass := func() {
			if err := nn.PredictIntoCtx(ctx, n, samples, benchSeqLen, benchEmbDim, 1, out); err != nil && ferr == nil {
				ferr = err
			}
		}
		pass()
		ns := bestOf(iters, pass)
		return ns, ferr
	}

	// Baseline: the reference loop nests (the pre-math-core forward pass,
	// still live as the training path) on the same batch.
	naiveNs, err := measureNaive(net, samples, iters)
	if err != nil {
		return err
	}
	records := []kernelRecord{{
		Name: "forward", Kernel: "naive", Dtype: "f32",
		Batch: batch, NsPerOp: naiveNs, SpeedupVsNaive: 1,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}}
	log.Info("kernel bench point", "kernel", "naive", "dtype", "f32",
		"ms_per_batch", float64(naiveNs)/1e6)

	var portF32 int64
	for _, backend := range []string{"portable", "blocked", "jit"} {
		if err := gemm.Select(backend); err != nil {
			log.Info("kernel backend unavailable, skipping", "kernel", backend, "reason", err)
			continue
		}
		for _, d := range []struct {
			dtype string
			net   *nn.Network
		}{{"f32", net}, {"int8", qnet}} {
			ns, err := measure(d.net)
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", backend, d.dtype, err)
			}
			rec := kernelRecord{
				Name: "forward", Kernel: backend, Dtype: d.dtype,
				Batch: batch, NsPerOp: ns,
				SpeedupVsNaive: float64(naiveNs) / float64(ns),
				GOMAXPROCS:     runtime.GOMAXPROCS(0),
			}
			if backend == "portable" && d.dtype == "f32" {
				portF32 = ns
			}
			if portF32 > 0 {
				rec.SpeedupVsPortF32 = float64(portF32) / float64(ns)
			}
			records = append(records, rec)
			log.Info("kernel bench point", "kernel", backend, "dtype", d.dtype,
				"ms_per_batch", float64(ns)/1e6, "speedup_vs_naive", rec.SpeedupVsNaive,
				"speedup_vs_portable_f32", rec.SpeedupVsPortF32)
		}
	}

	// Accuracy delta: run both dtypes on the auto backend and compare.
	if err := gemm.Select("auto"); err != nil {
		return err
	}
	fp, err := nn.PredictNCtx(ctx, net, samples, benchSeqLen, benchEmbDim, 1)
	if err != nil {
		return err
	}
	qp, err := nn.PredictNCtx(ctx, qnet, samples, benchSeqLen, benchEmbDim, 1)
	if err != nil {
		return err
	}
	agree, delta := 0, 0.0
	for i := range fp {
		if nn.Argmax(fp[i]) == nn.Argmax(qp[i]) {
			agree++
		}
		for c := range fp[i] {
			delta += math.Abs(float64(fp[i][c] - qp[i][c]))
		}
	}
	records = append(records, kernelRecord{
		Name: "int8_vs_f32", Batch: batch,
		ArgmaxAgreement:  float64(agree) / float64(len(fp)),
		MeanAbsProbDelta: delta / float64(len(fp)*classes),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
	})

	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote kernel bench records", "path", path, "records", len(records))
	return nil
}
