package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestPercentileMs(t *testing.T) {
	if p := percentileMs(nil, 0.5); p != 0 {
		t.Fatalf("empty sample: %v", p)
	}
	sorted := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		4 * time.Millisecond, 100 * time.Millisecond,
	}
	if p := percentileMs(sorted, 0.50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := percentileMs(sorted, 0.99); p != 100 {
		t.Fatalf("p99 = %v, want 100", p)
	}
}

// TestRunLoadgen drives the closed loop against a stub inference
// endpoint, checking the aggregate bookkeeping (request, error and
// cache-hit counts, non-zero percentiles) without paying for a model.
func TestRunLoadgen(t *testing.T) {
	var hits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n%5 == 0 { // every 5th request sheds, like a saturated server
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "shed"})
			return
		}
		json.NewEncoder(w).Encode(serve.InferResponse{Model: "cafe", Cached: n%2 == 0})
	}))
	defer stub.Close()

	images := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	rec, err := runLoadgen(context.Background(), stub.URL, images, 4, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rec.Errors == 0 {
		t.Fatal("shed responses not counted as errors")
	}
	if rec.Cached == 0 {
		t.Fatal("cache hits not counted")
	}
	if rec.RPS <= 0 || rec.P50Ms <= 0 || rec.P95Ms < rec.P50Ms || rec.P99Ms < rec.P95Ms {
		t.Fatalf("implausible aggregate: %+v", rec)
	}
	// Requests cut off mid-flight by the clock are uncounted by design,
	// so the server may have seen up to `concurrency` more than we did.
	if saw := int(hits.Load()); rec.Requests > saw || rec.Requests < saw-4 {
		t.Fatalf("counted %d requests, server saw %d", rec.Requests, saw)
	}

	if _, err := runLoadgen(context.Background(), stub.URL, nil, 1, time.Millisecond); err == nil {
		t.Fatal("no images should be an error")
	}
}

// TestServeBenchSweep runs the full self-contained sweep at a tiny
// duration: real model, real catiserve per configuration, real HTTP.
func TestServeBenchSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := run([]string{"-serve-bench", path, "-serve-concurrency", "4", "-serve-duration", "300ms"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []serveRecord
	if err := json.Unmarshal(blob, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("want 4 records (2x2 sweep), got %d", len(records))
	}
	seen := map[string]bool{}
	for _, r := range records {
		seen[r.Name] = true
		if r.Requests == 0 || r.RPS <= 0 || r.ModelFP == "" {
			t.Errorf("bad record: %+v", r)
		}
		if r.Cache && r.Cached == 0 {
			t.Errorf("%s: cache enabled but no hits recorded", r.Name)
		}
		if !r.Cache && r.Cached != 0 {
			t.Errorf("%s: cache disabled but hits recorded", r.Name)
		}
	}
	for _, name := range []string{
		"serve/cache=off,batch=off", "serve/cache=off,batch=on",
		"serve/cache=on,batch=off", "serve/cache=on,batch=on",
	} {
		if !seen[name] {
			t.Errorf("missing config %s", name)
		}
	}
}
