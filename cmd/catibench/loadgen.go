package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// serveRecord is one line of BENCH_serve.json: the closed-loop load
// result for one catiserve configuration.
type serveRecord struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Requests    int     `json:"requests"`
	// Errors counts non-200 responses (429 shed included) and transport
	// failures; the closed loop keeps going either way.
	Errors int `json:"errors"`
	// Cached counts 200s answered from the result cache.
	Cached  int     `json:"cached"`
	RPS     float64 `json:"rps"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	Cache   bool    `json:"cache"`
	Batch   bool    `json:"batch"`
	ModelFP string  `json:"model,omitempty"`
}

// loadgenImages synthesizes a small, fixed set of distinct stripped
// binaries. Clients cycle through them, so a result cache warms after
// one pass — the repeat-submission shape real decompiler workloads have.
func loadgenImages(n int) ([][]byte, error) {
	images := make([][]byte, n)
	for i := range images {
		seed := int64(900 + i)
		p := synth.Generate(synth.DefaultProfile("loadgen"), seed)
		res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: seed})
		if err != nil {
			return nil, err
		}
		img, err := elfx.Write(elfx.Strip(res.Binary))
		if err != nil {
			return nil, err
		}
		images[i] = img
	}
	return images, nil
}

// runLoadgen drives url with a closed loop: concurrency clients, each
// POSTing the next image the moment its previous response lands, for the
// given duration. Returns the aggregate; percentiles cover successful
// requests only (shed requests return in microseconds and would flatter
// the tail).
func runLoadgen(ctx context.Context, url string, images [][]byte, concurrency int, duration time.Duration) (serveRecord, error) {
	if len(images) == 0 {
		return serveRecord{}, fmt.Errorf("loadgen: no images")
	}
	ctx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	type worker struct {
		lat            []time.Duration
		errors, cached int
	}
	workers := make([]worker, concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := &workers[w]
			client := &http.Client{}
			for i := w; ctx.Err() == nil; i++ {
				img := images[i%len(images)]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(img))
				if err != nil {
					me.errors++
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return // cut off mid-request by the clock, not a failure
					}
					me.errors++
					continue
				}
				var ir serve.InferResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ir)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					me.errors++
					continue
				}
				me.lat = append(me.lat, time.Since(t0))
				if ir.Cached {
					me.cached++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	rec := serveRecord{Concurrency: concurrency, DurationS: elapsed.Seconds()}
	for i := range workers {
		lat = append(lat, workers[i].lat...)
		rec.Errors += workers[i].errors
		rec.Cached += workers[i].cached
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rec.Requests = len(lat) + rec.Errors
	rec.RPS = float64(len(lat)) / elapsed.Seconds()
	rec.P50Ms = percentileMs(lat, 0.50)
	rec.P95Ms = percentileMs(lat, 0.95)
	rec.P99Ms = percentileMs(lat, 0.99)
	return rec, nil
}

// percentileMs is the nearest-rank percentile of a sorted sample, in
// milliseconds (0 for an empty sample).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// runServeURL load-tests an already-running catiserve at url and prints
// the single JSON record to stdout.
func runServeURL(ctx context.Context, log *slog.Logger, url string, concurrency int, duration time.Duration) error {
	images, err := loadgenImages(6)
	if err != nil {
		return err
	}
	log.Info("load-generating", "url", url, "concurrency", concurrency, "duration", duration)
	rec, err := runLoadgen(ctx, url, images, concurrency, duration)
	if err != nil {
		return err
	}
	rec.Name = "serve/external"
	return json.NewEncoder(os.Stdout).Encode(rec)
}

// trainLoadgenModel trains the small shared bench model and writes it
// to a temp artifact; cleanup removes the directory.
func trainLoadgenModel(log *slog.Logger) (model string, cleanup func(), err error) {
	log.Info("training loadgen model")
	c, err := corpus.Build(corpus.BuildConfig{
		Name: "loadgen-train", Binaries: 4,
		Profile: synth.DefaultProfile("loadgentrain"), Window: 5, Seed: 47,
	})
	if err != nil {
		return "", nil, err
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 8, Conv2: 8, Hidden: 32, MaxPerStage: 500, Flat: true,
		Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:   word2vec.Config{Epochs: 1}, Seed: 7,
	})
	if err != nil {
		return "", nil, err
	}
	blob, err := cati.Save()
	if err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp("", "cati-loadgen")
	if err != nil {
		return "", nil, err
	}
	model = filepath.Join(dir, "m.model")
	if err := os.WriteFile(model, blob, 0o644); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return model, func() { os.RemoveAll(dir) }, nil
}

// runServeBench is the self-contained sweep behind `catibench
// -serve-bench FILE`: train a small model in-process, then measure the
// 2×2 of {result cache off/on} × {micro-batching off/on} against a
// loopback catiserve, writing one JSON record per configuration.
func runServeBench(ctx context.Context, log *slog.Logger, path string, concurrency int, duration time.Duration) error {
	model, cleanup, err := trainLoadgenModel(log)
	if err != nil {
		return err
	}
	defer cleanup()
	images, err := loadgenImages(6)
	if err != nil {
		return err
	}

	configs := []struct {
		name         string
		cache, batch bool
	}{
		{"serve/cache=off,batch=off", false, false},
		{"serve/cache=off,batch=on", false, true},
		{"serve/cache=on,batch=off", true, false},
		{"serve/cache=on,batch=on", true, true},
	}
	var records []serveRecord
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return err
		}
		sc := serve.Config{ModelPath: model, WatchInterval: -1, Log: log}
		if cfg.cache {
			sc.CacheSize = 256
		} else {
			sc.CacheSize = -1
		}
		if cfg.batch {
			sc.MaxBatch = 8
			sc.Linger = 2 * time.Millisecond
		} else {
			sc.MaxBatch = 1
		}
		// Admission wide open relative to the load, so the sweep measures
		// cache/batch effects, not shedding.
		sc.MaxInFlight = 2 * concurrency
		sc.MaxQueue = 2 * concurrency

		srv, err := serve.New(sc)
		if err != nil {
			return err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return err
		}
		rec, err := runLoadgen(ctx, "http://"+srv.Addr+"/v1/infer", images, concurrency, duration)
		if cerr := srv.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		rec.Name = cfg.name
		rec.Cache = cfg.cache
		rec.Batch = cfg.batch
		rec.ModelFP = srv.Registry().Active().Fingerprint
		records = append(records, rec)
		log.Info("serve bench point", "name", rec.Name, "rps", fmt.Sprintf("%.1f", rec.RPS),
			"p50_ms", fmt.Sprintf("%.2f", rec.P50Ms), "p95_ms", fmt.Sprintf("%.2f", rec.P95Ms),
			"cached", rec.Cached, "errors", rec.Errors)
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote serve bench records", "path", path, "records", len(records))
	return nil
}
