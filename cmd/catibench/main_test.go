package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestCatibenchQuick(t *testing.T) {
	if err := run([]string{"-scale", "quick", "table1", "clustering"}); err != nil {
		t.Fatal(err)
	}
}

func TestCatibenchErrors(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-scale", "quick", "nosuch"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	if err := run([]string{"-bench-json", path, "-workers", "1"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []benchRecord
	if err := json.Unmarshal(blob, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("want 2 records, got %d", len(records))
	}
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Workers != 1 || r.GOMAXPROCS < 1 {
			t.Errorf("bad record: %+v", r)
		}
	}
}
