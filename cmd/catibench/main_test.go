package main

import "testing"

func TestCatibenchQuick(t *testing.T) {
	if err := run([]string{"-scale", "quick", "table1", "clustering"}); err != nil {
		t.Fatal(err)
	}
}

func TestCatibenchErrors(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-scale", "quick", "nosuch"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}
