package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// traceRecord is one line of BENCH_trace.json. The load points reuse the
// serve-sweep shape (RPS, percentiles); the summary row carries the
// disabled-path cost model and the verdict the Makefile gate rides on.
type traceRecord struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency,omitempty"`
	DurationS   float64 `json:"duration_s,omitempty"`
	Requests    int     `json:"requests,omitempty"`
	Errors      int     `json:"errors,omitempty"`
	RPS         float64 `json:"rps,omitempty"`
	P50Ms       float64 `json:"p50_ms,omitempty"`
	P95Ms       float64 `json:"p95_ms,omitempty"`
	Tracing     bool    `json:"tracing"`

	// Summary-row fields: the measured cost of one fully-disabled span
	// operation (Start + attrs + event + End against a nil collector),
	// how many spans one uncached /v1/infer request creates (counted
	// from a real trace, not assumed), and the resulting worst-case
	// disabled-path overhead against the measured p50.
	DisabledNsPerSpan   float64 `json:"disabled_ns_per_span,omitempty"`
	SpansPerRequest     int     `json:"spans_per_request,omitempty"`
	DisabledOverheadPct float64 `json:"disabled_overhead_pct,omitempty"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct,omitempty"`
	LimitPct            float64 `json:"limit_pct,omitempty"`
}

// disabledSpanNs measures the per-span cost of the instrumentation when
// tracing is off: Start returns a nil span whose methods are no-ops, so
// this is the price every request pays whether or not anyone is looking.
func disabledSpanNs() float64 {
	prev := trace.Default()
	trace.SetDefault(nil)
	defer trace.SetDefault(prev)
	ctx := context.Background()
	const iters = 1_000_000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		sctx, span := trace.Start(ctx, "bench")
		span.SetAttr(trace.Int("i", i))
		span.Event("event")
		span.End()
		_ = trace.IDFromContext(sctx)
	}
	return float64(time.Since(t0)) / iters
}

// countRequestSpans sends one uncached request to a tracing-enabled
// replica and counts the spans its trace records, retrying until the
// deferred request-span lands in the collector.
func countRequestSpans(addr string, image []byte) (int, error) {
	resp, err := http.Post("http://"+addr+"/v1/infer", "application/octet-stream", bytes.NewReader(image))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("span-count request answered %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Cati-Trace-Id")
	if id == "" {
		return 0, fmt.Errorf("tracing-enabled replica returned no X-Cati-Trace-Id")
	}
	var last int
	for attempt := 0; attempt < 20; attempt++ {
		time.Sleep(50 * time.Millisecond)
		tresp, err := http.Get("http://" + addr + "/v1/trace/" + id)
		if err != nil {
			return 0, err
		}
		var body struct {
			Spans []trace.SpanRecord `json:"spans"`
		}
		err = json.NewDecoder(tresp.Body).Decode(&body)
		io.Copy(io.Discard, tresp.Body)
		tresp.Body.Close()
		if err != nil {
			return 0, err
		}
		// Stable across two reads with the root present → complete.
		if len(body.Spans) > 0 && len(body.Spans) == last {
			return last, nil
		}
		last = len(body.Spans)
	}
	return 0, fmt.Errorf("trace %s never settled (%d spans)", id, last)
}

// runTraceBench is `catibench -trace-bench FILE`: prove that the tracing
// instrumentation costs nothing when disabled. It measures the serve path
// twice under identical closed-loop load — collector absent vs installed —
// plus a microbenchmark of the disabled span fast path, and fails unless
// the disabled-path cost stays under limitPct of request latency.
func runTraceBench(ctx context.Context, log *slog.Logger, path string, concurrency int, duration time.Duration, limitPct float64) error {
	model, cleanup, err := trainLoadgenModel(log)
	if err != nil {
		return err
	}
	defer cleanup()
	images, err := loadgenImages(6)
	if err != nil {
		return err
	}

	nsPerSpan := disabledSpanNs()
	log.Info("disabled span fast path", "ns_per_span", fmt.Sprintf("%.1f", nsPerSpan))

	// Cache off so every request runs the full pipeline (a warm cache
	// would short-circuit the five stage spans and flatter the numbers);
	// batching on, the production shape.
	mkConfig := func() serve.Config {
		return serve.Config{
			ModelPath: model, WatchInterval: -1, Log: log,
			CacheSize: -1, MaxBatch: 8, Linger: 2 * time.Millisecond,
			MaxInFlight: 2 * concurrency, MaxQueue: 2 * concurrency,
		}
	}
	runPoint := func(name string, tracing bool) (traceRecord, int, error) {
		if tracing {
			trace.SetDefault(trace.NewCollector(trace.Config{MaxTraces: 4096}))
		} else {
			trace.SetDefault(nil)
		}
		defer trace.SetDefault(nil)
		srv, err := serve.New(mkConfig())
		if err != nil {
			return traceRecord{}, 0, err
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return traceRecord{}, 0, err
		}
		defer srv.Close()
		spans := 0
		if tracing {
			if spans, err = countRequestSpans(srv.Addr, images[0]); err != nil {
				return traceRecord{}, 0, err
			}
		}
		rec, err := runLoadgen(ctx, "http://"+srv.Addr+"/v1/infer", images, concurrency, duration)
		if err != nil {
			return traceRecord{}, 0, err
		}
		log.Info("trace bench point", "name", name, "rps", fmt.Sprintf("%.1f", rec.RPS),
			"p50_ms", fmt.Sprintf("%.2f", rec.P50Ms), "errors", rec.Errors)
		return traceRecord{
			Name: name, Tracing: tracing,
			Concurrency: rec.Concurrency, DurationS: rec.DurationS,
			Requests: rec.Requests, Errors: rec.Errors,
			RPS: rec.RPS, P50Ms: rec.P50Ms, P95Ms: rec.P95Ms,
		}, spans, nil
	}

	off, _, err := runPoint("trace/off", false)
	if err != nil {
		return err
	}
	on, spansPerReq, err := runPoint("trace/on", true)
	if err != nil {
		return err
	}

	// Disabled-path overhead: what the nil-span instrumentation costs one
	// request, as a fraction of that request's measured latency. This is
	// load-independent (the microbenchmark is single-threaded and exact),
	// so the gate does not flake with the sweep window.
	if off.P50Ms <= 0 {
		return fmt.Errorf("trace bench: no successful requests in the trace-off run")
	}
	disabledPct := float64(spansPerReq) * nsPerSpan / (off.P50Ms * 1e6) * 100
	enabledPct := 0.0
	if off.RPS > 0 {
		enabledPct = (off.RPS - on.RPS) / off.RPS * 100
	}
	summary := traceRecord{
		Name:                "trace/summary",
		DisabledNsPerSpan:   nsPerSpan,
		SpansPerRequest:     spansPerReq,
		DisabledOverheadPct: disabledPct,
		EnabledOverheadPct:  enabledPct,
		LimitPct:            limitPct,
	}
	log.Info("trace overhead",
		"spans_per_request", spansPerReq,
		"disabled_pct", fmt.Sprintf("%.4f", disabledPct),
		"enabled_pct", fmt.Sprintf("%.2f", enabledPct),
		"limit_pct", limitPct)

	out, err := json.MarshalIndent([]traceRecord{off, on, summary}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote trace bench records", "path", path)

	if disabledPct >= limitPct {
		return fmt.Errorf("tracing-disabled overhead %.4f%% exceeds the %.1f%% budget (%d spans × %.1fns against p50 %.2fms)",
			disabledPct, limitPct, spansPerReq, nsPerSpan, off.P50Ms)
	}
	return nil
}
