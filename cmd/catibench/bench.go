package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/nn"
	"repro/internal/par"
)

// benchRecord is one line of BENCH_parallel.json: machine-readable timing
// for the parallel compute core, comparable across hosts via GOMAXPROCS.
type benchRecord struct {
	Name       string `json:"name"`
	NsPerOp    int64  `json:"ns_per_op"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Bench inputs are sized like one CATI stage: a 21-instruction window of
// 96-wide embedded instructions through the paper's 32-64-1024 network.
const (
	benchSeqLen = 21
	benchEmbDim = 96
)

// benchDataset builds a synthetic two-class corpus (no pipeline training
// needed — the benchmark times the compute core, not the synthesizer).
func benchDataset(n int) *nn.Dataset {
	r := rand.New(rand.NewSource(17))
	ds := &nn.Dataset{SeqLen: benchSeqLen, EmbDim: benchEmbDim}
	dim := benchSeqLen * benchEmbDim
	for i := 0; i < n; i++ {
		s := make([]float32, dim)
		label := i % 2
		for j := range s {
			s[j] = r.Float32()*0.2 - 0.1
		}
		if label == 1 {
			for j := 0; j < benchEmbDim; j++ {
				s[(benchSeqLen/2)*benchEmbDim+j] += 0.5
			}
		}
		ds.Add(s, label)
	}
	return ds
}

// runParallelBench times training and inference across worker counts and
// writes one JSON record per measurement to path. When workers > 0 only
// that count is measured; otherwise a 1/2/4/8 sweep capped at resolved
// parallelism runs.
func runParallelBench(log *slog.Logger, path string, workers int) error {
	counts := []int{1, 2, 4, 8}
	if workers > 0 {
		counts = []int{workers}
	}

	trainDS := benchDataset(512)
	predictDS := benchDataset(2048)
	var records []benchRecord

	// Each sweep point runs with GOMAXPROCS matched to its worker count:
	// otherwise a host pinned to fewer Ps than the point's workers (or a
	// CPU-quota'd container reporting 1) silently serializes the 2..8-worker
	// rows and the sweep measures goroutine overhead, not scaling. The
	// effective value is recorded per point so readers can audit it.
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	for _, w := range counts {
		runtime.GOMAXPROCS(par.Workers(w))
		cfg := nn.TrainConfig{Epochs: 1, Batch: 64, LR: 1e-3, Seed: 5, Workers: w}
		net := nn.NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
		t0 := time.Now()
		if err := nn.TrainClassifier(net, trainDS, 2, cfg); err != nil {
			return err
		}
		records = append(records, benchRecord{
			Name:       "TrainClassifierParallel",
			NsPerOp:    time.Since(t0).Nanoseconds(),
			Workers:    par.Workers(w),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})

		t0 = time.Now()
		const predictIters = 3
		for i := 0; i < predictIters; i++ {
			if out := nn.PredictN(net, predictDS.Samples, benchSeqLen, benchEmbDim, w); len(out) != predictDS.Len() {
				return fmt.Errorf("bench: short predict output")
			}
		}
		records = append(records, benchRecord{
			Name:       "PredictParallel",
			NsPerOp:    time.Since(t0).Nanoseconds() / predictIters,
			Workers:    par.Workers(w),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		})
		log.Info("bench point",
			"workers", par.Workers(w),
			"gomaxprocs", runtime.GOMAXPROCS(0),
			"train_s", float64(records[len(records)-2].NsPerOp)/1e9,
			"predict_s_per_op", float64(records[len(records)-1].NsPerOp)/1e9)
	}

	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote bench records", "path", path, "records", len(records))
	return nil
}
