package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"time"

	"repro/internal/bulkq"
	"repro/internal/serve"
)

// bulkRecord is one line of BENCH_bulk.json: one bulk job drained to
// completion through a loopback catiserve, timed end to end. Kill points
// hard-stop the daemon mid-job and restart it against the same queue
// directory, so their numbers include one full crash-recovery cycle —
// Resumed counts the binaries journal replay re-queued, and Done still
// has to reach Binaries without recomputing the already-journaled ones.
type bulkRecord struct {
	Name      string  `json:"name"`
	Binaries  int     `json:"binaries"`
	Workers   int     `json:"workers"`
	Kill      bool    `json:"kill"`
	DurationS float64 `json:"duration_s"`
	BinsPerS  float64 `json:"bins_per_sec"`
	Done      int     `json:"done"`
	Failed    int     `json:"failed"`
	Resumed   int     `json:"resumed"`
	ModelFP   string  `json:"model,omitempty"`
}

// bulkTarball packages images as an in-memory tar.gz corpus.
func bulkTarball(images [][]byte) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	for i, img := range images {
		if err := tw.WriteHeader(&tar.Header{
			Name: fmt.Sprintf("bin-%03d.elf", i),
			Mode: 0o644,
			Size: int64(len(img)),
		}); err != nil {
			return nil, err
		}
		if _, err := tw.Write(img); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// bulkSubmit POSTs a tarball and returns the admitted job's ID.
func bulkSubmit(ctx context.Context, base string, tarball []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/bulk", bytes.NewReader(tarball))
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("bulk submit: HTTP %d", resp.StatusCode)
	}
	var sub bulkq.SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", err
	}
	return sub.Job.ID, nil
}

// bulkStatus reads one job's status.
func bulkStatus(ctx context.Context, base, id string) (bulkq.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/bulk/"+id, nil)
	if err != nil {
		return bulkq.JobStatus{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return bulkq.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return bulkq.JobStatus{}, fmt.Errorf("bulk status: HTTP %d", resp.StatusCode)
	}
	var st bulkq.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// bulkWait polls until the predicate holds, with a short fixed cadence
// (bulk drains are milliseconds-per-binary here).
func bulkWait(ctx context.Context, base, id string, pred func(bulkq.JobStatus) bool) (bulkq.JobStatus, error) {
	for {
		st, err := bulkStatus(ctx, base, id)
		if err == nil && pred(st) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return st, err
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// newBulkServer starts a loopback catiserve with the bulk queue on dir.
func newBulkServer(model, dir string, workers int, log *slog.Logger) (*serve.Server, error) {
	srv, err := serve.New(serve.Config{
		ModelPath:     model,
		WatchInterval: -1,
		CacheSize:     -1, // every binary computes: the sweep measures drain, not cache
		MaxBatch:      1,
		BulkDir:       dir,
		BulkWorkers:   workers,
		Log:           log,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}

// runBulkBench is the sweep behind `catibench -bulk-bench FILE`: train a
// small model in-process, then drain bulk jobs across job-size × worker
// configurations, plus one kill-and-resume point per job size that
// hard-stops the daemon mid-job and restarts it against the same queue
// directory. smoke shrinks the grid for the `make check` gate.
func runBulkBench(ctx context.Context, log *slog.Logger, path string, smoke bool) error {
	model, cleanup, err := trainLoadgenModel(log)
	if err != nil {
		return err
	}
	defer cleanup()

	type point struct {
		jobSize, workers int
		kill             bool
	}
	points := []point{
		{4, 1, false}, {4, 4, false},
		{12, 1, false}, {12, 4, false},
		{8, 1, true}, {12, 2, true},
	}
	if smoke {
		points = []point{{3, 2, false}, {6, 1, true}}
	}
	maxJob := 0
	for _, p := range points {
		if p.jobSize > maxJob {
			maxJob = p.jobSize
		}
	}
	images, err := loadgenImages(maxJob)
	if err != nil {
		return err
	}

	var records []bulkRecord
	for _, p := range points {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := runBulkPoint(ctx, log, model, images[:p.jobSize], p.workers, p.kill)
		if err != nil {
			return fmt.Errorf("bulk point (n=%d workers=%d kill=%v): %w", p.jobSize, p.workers, p.kill, err)
		}
		records = append(records, rec)
		log.Info("bulk bench point", "name", rec.Name,
			"bins_per_sec", fmt.Sprintf("%.1f", rec.BinsPerS),
			"duration_s", fmt.Sprintf("%.2f", rec.DurationS),
			"done", rec.Done, "failed", rec.Failed, "resumed", rec.Resumed)
		if rec.Done+rec.Failed != rec.Binaries {
			return fmt.Errorf("bulk point %s: %d of %d binaries unsettled", rec.Name, rec.Binaries-rec.Done-rec.Failed, rec.Binaries)
		}
		if rec.Kill && rec.Resumed == 0 {
			return fmt.Errorf("bulk point %s: kill-and-resume point resumed no binaries (kill landed outside the job window)", rec.Name)
		}
	}

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	log.Info("wrote bulk bench records", "path", path, "records", len(records))
	return nil
}

// runBulkPoint drains one or two jobs to completion. With kill, two
// identical jobs are submitted back to back — the FIFO queue drains
// them in order, so when the first job shows progress the second is
// still (mostly) queued — and the daemon is then hard-closed and
// restarted on the same queue directory. That makes the kill window
// deterministic: however fast the first job races, the second one
// always leaves work for journal replay to resume.
func runBulkPoint(ctx context.Context, log *slog.Logger, model string, images [][]byte, workers int, kill bool) (bulkRecord, error) {
	dir, err := os.MkdirTemp("", "cati-bulkbench")
	if err != nil {
		return bulkRecord{}, err
	}
	defer os.RemoveAll(dir)

	tarball, err := bulkTarball(images)
	if err != nil {
		return bulkRecord{}, err
	}
	jobs := 1
	if kill {
		jobs = 2
	}
	rec := bulkRecord{Binaries: jobs * len(images), Workers: workers, Kill: kill}
	rec.Name = fmt.Sprintf("bulk/n=%d,workers=%d", rec.Binaries, workers)
	if kill {
		rec.Name += ",kill"
	}

	srv, err := newBulkServer(model, dir, workers, log)
	if err != nil {
		return rec, err
	}
	rec.ModelFP = srv.Registry().Active().Fingerprint
	base := "http://" + srv.Addr
	start := time.Now()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		id, err := bulkSubmit(ctx, base, tarball)
		if err != nil {
			srv.Close()
			return rec, err
		}
		ids = append(ids, id)
	}

	if kill {
		// Wait for the first job to make progress; the second is queued
		// behind it and will be cut off by the hard stop.
		if _, err := bulkWait(ctx, base, ids[0], func(st bulkq.JobStatus) bool {
			return st.Done+st.Failed >= 1
		}); err != nil {
			srv.Close()
			return rec, err
		}
		// Hard stop — no drain — then restart on the same queue directory.
		_ = srv.Close()
		srv, err = newBulkServer(model, dir, workers, log)
		if err != nil {
			return rec, err
		}
		base = "http://" + srv.Addr
	}

	for _, id := range ids {
		st, err := bulkWait(ctx, base, id, func(st bulkq.JobStatus) bool {
			return st.State == "done"
		})
		if err != nil {
			srv.Close()
			return rec, err
		}
		rec.Done += st.Done
		rec.Failed += st.Failed
		rec.Resumed += st.Resumed
	}
	elapsed := time.Since(start)
	if err := srv.Close(); err != nil {
		return rec, err
	}
	rec.DurationS = elapsed.Seconds()
	rec.BinsPerS = float64(rec.Done+rec.Failed) / elapsed.Seconds()
	return rec, nil
}
