// Command catigen generates synthetic corpus binaries: it runs the
// program generator and the simulated compiler, then writes unstripped
// (with symbols + DWARF-lite) and stripped ELF images to a directory.
//
// Usage:
//
//	catigen -out corpus/ -n 8 -dialect gcc -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/cmd/internal/cliflags"
	"repro/internal/compile"
	"repro/internal/elfx"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "catigen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("catigen", flag.ContinueOnError)
	out := fs.String("out", "corpus", "output directory")
	n := fs.Int("n", 4, "number of binaries")
	dialect := fs.String("dialect", "gcc", "compiler dialect: gcc or clang")
	seed := fs.Int64("seed", 1, "generation seed")
	profile := fs.String("profile", "default", "type-distribution profile: default or one of the twelve app names")
	arch := cliflags.Arch(fs)
	diag := cliflags.AddDiag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cliflags.CheckArch(*arch); err != nil {
		return err
	}
	log, err := diag.Setup()
	if err != nil {
		return err
	}

	d := compile.GCC
	switch *dialect {
	case "gcc":
	case "clang":
		d = compile.Clang
	default:
		return fmt.Errorf("unknown dialect %q", *dialect)
	}

	prof := synth.DefaultProfile(*profile)
	if *profile != "default" {
		found := false
		for _, app := range synth.TestApps() {
			if app.Name == *profile {
				prof = app.Profile
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown profile %q", *profile)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		s := *seed*1_000_003 + int64(i)
		prog := synth.Generate(prof, s)
		res, err := compile.Compile(prog, compile.Options{
			Dialect: d, Opt: i % 4, Seed: s, Arch: *arch,
		})
		if err != nil {
			return fmt.Errorf("unit %d: %w", i, err)
		}
		full, err := elfx.Write(res.Binary)
		if err != nil {
			return err
		}
		stripped, err := elfx.Write(elfx.Strip(res.Binary))
		if err != nil {
			return err
		}
		base := fmt.Sprintf("%s-%s-%s-O%d-%02d", *profile, *arch, *dialect, i%4, i)
		if err := os.WriteFile(filepath.Join(*out, base+".elf"), full, 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*out, base+".stripped.elf"), stripped, 0o644); err != nil {
			return err
		}
		log.Info("wrote binary", "name", base, "bytes", len(full), "funcs", len(prog.Funcs))
	}
	return nil
}
