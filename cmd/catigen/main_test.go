package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/elfx"
)

func TestCatigenEndToEnd(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-n", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 2 binaries × (full + stripped)
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	// Every produced ELF must parse; stripped ones must be stripped.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		bin, err := elfx.Read(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		stripped := filepath.Ext(e.Name()) == ".elf" &&
			len(e.Name()) > 13 && e.Name()[len(e.Name())-13:] == ".stripped.elf"
		if stripped != bin.IsStripped() {
			t.Errorf("%s: stripped=%v, name suggests %v", e.Name(), bin.IsStripped(), stripped)
		}
	}
}

func TestCatigenProfiles(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-n", "1", "-profile", "grep", "-dialect", "clang"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", dir, "-n", "1", "-profile", "nosuch"}); err == nil {
		t.Error("unknown profile should fail")
	}
	if err := run([]string{"-out", dir, "-n", "1", "-dialect", "msvc"}); err == nil {
		t.Error("unknown dialect should fail")
	}
}
