package main

import (
	"archive/tar"
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bulkq"
)

// TestHelperBulkDaemon is not a test: it is the child-process body for
// TestBulkCrashResume. Re-executed via os.Args[0] with the env gate set,
// it runs a real catiserve daemon with the bulk queue on the shared
// directory, publishes its bound address through a file, and then holds
// until the parent SIGKILLs it — no graceful path, by design.
func TestHelperBulkDaemon(t *testing.T) {
	if os.Getenv("CATI_BULK_HELPER") != "1" {
		t.Skip("helper process for TestBulkCrashResume")
	}
	// -cache-size -1: a second job over the same corpus must recompute,
	// not answer from the result cache, so the parent can compare runs
	// byte for byte (a cache hit reports attempts=0, a compute 1).
	d, err := newDaemon([]string{
		"-model", os.Getenv("CATI_BULK_MODEL"),
		"-addr", "127.0.0.1:0", "-watch-interval", "-1s", "-cache-size", "-1",
		"-bulk-dir", os.Getenv("CATI_BULK_DIR"), "-bulk-workers", "1",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if err := d.start(); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	addrFile := os.Getenv("CATI_BULK_ADDRFILE")
	if err := os.WriteFile(addrFile+".tmp", []byte(d.srv.Addr), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	select {} // hold the daemon up until SIGKILL
}

// spawnBulkDaemon re-executes the test binary as a bulk daemon on dir
// and waits for it to publish its address.
func spawnBulkDaemon(t *testing.T, model, dir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperBulkDaemon$")
	cmd.Env = append(os.Environ(),
		"CATI_BULK_HELPER=1",
		"CATI_BULK_MODEL="+model,
		"CATI_BULK_DIR="+dir,
		"CATI_BULK_ADDRFILE="+addrFile,
	)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			return cmd, string(addr)
		}
		if time.Now().After(deadline) {
			t.Fatal("bulk daemon never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func bulkCorpus(t *testing.T, images [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for i, img := range images {
		if err := tw.WriteHeader(&tar.Header{
			Name: fmt.Sprintf("bin-%03d.elf", i), Mode: 0o644, Size: int64(len(img)),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(img); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func bulkSubmit(t *testing.T, addr string, tarball []byte) string {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/bulk", "application/x-tar", bytes.NewReader(tarball))
	if err != nil {
		t.Fatal(err)
	}
	var sub bulkq.SubmitResult
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bulk submit: code=%d err=%v", resp.StatusCode, err)
	}
	return sub.Job.ID
}

func bulkJobStatus(t *testing.T, addr, id string) (bulkq.JobStatus, error) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/bulk/" + id)
	if err != nil {
		return bulkq.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return bulkq.JobStatus{}, fmt.Errorf("bulk status: HTTP %d", resp.StatusCode)
	}
	var st bulkq.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

func bulkWaitFor(t *testing.T, addr, id string, pred func(bulkq.JobStatus) bool) bulkq.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := bulkJobStatus(t, addr, id)
		if err == nil && pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting on bulk job %s: %+v (%v)", id, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func bulkResults(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/bulk/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk results: code=%d err=%v", resp.StatusCode, err)
	}
	return body
}

// walTerminalCounts parses the queue journal and counts terminal (done /
// failed) records per (job, binary index).
func walTerminalCounts(t *testing.T, dir string) map[string]int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counts := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64<<20)
	for sc.Scan() {
		var rec struct {
			T     string `json:"t"`
			ID    string `json:"id"`
			Index int    `json:"i"`
			State string `json:"s"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail
		}
		if rec.T == "bin" && (rec.State == "done" || rec.State == "failed") {
			counts[fmt.Sprintf("%s/%d", rec.ID, rec.Index)]++
		}
	}
	return counts
}

// TestBulkCrashResume is the subsystem's acceptance test at full
// fidelity: a real daemon process is SIGKILLed mid-job and a fresh
// process on the same queue directory must finish the work — resuming
// exactly the unfinished binaries (journal proves zero duplicated
// per-binary inferences) and producing results byte-identical to a
// daemon that was never interrupted.
func TestBulkCrashResume(t *testing.T) {
	fixture(t)
	shared := t.TempDir()
	model := filepath.Join(shared, "m.model")
	if err := os.WriteFile(model, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	images := make([][]byte, 6)
	for i := range images {
		images[i] = testImage(t, int64(80+i))
	}
	tarball := bulkCorpus(t, images)
	qdir := filepath.Join(shared, "queue")

	// Two identical jobs back to back: the single worker drains them in
	// order, so killing once the first shows progress always leaves the
	// second with work for journal replay to resume.
	proc1, addr1 := spawnBulkDaemon(t, model, qdir, filepath.Join(shared, "addr1"))
	id1 := bulkSubmit(t, addr1, tarball)
	id2 := bulkSubmit(t, addr1, tarball)
	bulkWaitFor(t, addr1, id1, func(st bulkq.JobStatus) bool { return st.Done+st.Failed >= 1 })

	if err := proc1.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_ = proc1.Wait()

	// What the journal settled before the kill stays settled.
	settledAtKill := walTerminalCounts(t, qdir)
	total := 2 * len(images)
	if len(settledAtKill) >= total {
		t.Fatalf("kill landed after all %d binaries settled; no resume to prove", total)
	}

	proc2, addr2 := spawnBulkDaemon(t, model, qdir, filepath.Join(shared, "addr2"))
	st1 := bulkWaitFor(t, addr2, id1, func(st bulkq.JobStatus) bool { return st.State == "done" })
	st2 := bulkWaitFor(t, addr2, id2, func(st bulkq.JobStatus) bool { return st.State == "done" })
	if st1.Done != len(images) || st1.Failed != 0 || st2.Done != len(images) || st2.Failed != 0 {
		t.Fatalf("jobs after resume: %+v / %+v", st1, st2)
	}
	wantResumed := total - len(settledAtKill)
	if got := st1.Resumed + st2.Resumed; got != wantResumed || got == 0 {
		t.Fatalf("resumed %d binaries, want %d (settled at kill: %d)",
			got, wantResumed, len(settledAtKill))
	}

	// Zero duplicated inferences: across compaction snapshot plus the
	// second incarnation's appends, every binary has exactly one terminal
	// record. A recomputed binary would journal a second one.
	finalCounts := walTerminalCounts(t, qdir)
	if len(finalCounts) != total {
		t.Fatalf("journal settles %d binaries, want %d", len(finalCounts), total)
	}
	for key, n := range finalCounts {
		if n != 1 {
			t.Fatalf("binary %s journaled %d terminal records: inference duplicated", key, n)
		}
	}
	res1 := bulkResults(t, addr2, id1)
	res2 := bulkResults(t, addr2, id2)
	if err := proc2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = proc2.Wait()

	// Byte-identical to an uninterrupted daemon draining the same corpus.
	d, _ := startDaemon(t, "-bulk-dir", filepath.Join(shared, "control-queue"),
		"-bulk-workers", "1", "-cache-size", "-1")
	cid := bulkSubmit(t, d.srv.Addr, tarball)
	bulkWaitFor(t, d.srv.Addr, cid, func(st bulkq.JobStatus) bool { return st.State == "done" })
	control := bulkResults(t, d.srv.Addr, cid)
	if !bytes.Equal(res1, control) || !bytes.Equal(res2, control) {
		t.Fatalf("resumed results diverge from uninterrupted run:\njob1 %d bytes, job2 %d bytes, control %d bytes",
			len(res1), len(res2), len(control))
	}
}
