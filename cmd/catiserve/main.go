// Command catiserve runs CATI as a long-lived HTTP inference service:
// load a trained model once, keep it warm, and answer type-inference
// requests for stripped binaries over a small JSON API (see
// internal/serve for the endpoint and behavior contract).
//
// Usage:
//
//	catiserve -model cati.model
//	catiserve -model cati.model -addr :8090 -max-batch 16 -cache-size 4096
//	catiserve -model cati.model -debug-addr localhost:6060 -log-format json
//
// The daemon answers on three endpoints:
//
//	POST /v1/infer    raw ELF image in the body → inferred types as JSON
//	GET  /v1/models   the active model's fingerprint, path and load time
//	GET  /v1/healthz  liveness (never blocked by inference load)
//
// With -bulk-dir the daemon additionally mounts the durable bulk API
// (POST /v1/bulk and friends, see internal/bulkq): tarball corpus jobs
// spool to that directory and survive restarts — a killed daemon
// resumes exactly the unfinished binaries. Router mode takes the same
// flags and dispatches each bulk binary to its consistent-hash owner.
//
// Signals:
//
//	SIGHUP           reload the model artifact now (a failed reload keeps
//	                 the current model serving)
//	SIGINT/SIGTERM   graceful drain: stop accepting, finish in-flight
//	                 requests up to -drain-timeout, then exit
//
// The artifact file is also polled every -watch-interval, so retraining
// in place (write to a temp file, rename over -model) rolls the daemon
// onto the new model without a restart; every response names the model
// that produced it in the "model" field and X-Cati-Model header.
//
// # Router mode
//
//	catiserve -router -replicas http://10.0.0.1:8090,http://10.0.0.2:8090
//	catiserve -router -replicas r1:8090,r2:8090,r3:8090 -fallback-model cati.model
//
// With -router the daemon serves no model itself: it consistent-hashes
// /v1/infer requests by image SHA-256 across the -replicas set (cache
// affinity), probes each replica's /v1/readyz to eject dead or
// overloaded ones from the ring and readmit them when they recover,
// retries and hedges individual requests around failures, fills from a
// warm peer's result cache when a request is displaced from its home
// shard, and — when -fallback-model is given — computes locally as the
// last resort. GET /v1/fleet reports per-replica membership and the
// robustness counters. See internal/fleet for the full contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/cmd/internal/cliflags"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "catiserve:", err)
		os.Exit(1)
	}
}

// daemon is a parsed-and-started catiserve instance: the service (or,
// in -router mode, the fleet router), the flag groups that configured
// it, and the shared logger. Exactly one of srv and rt is non-nil.
type daemon struct {
	srv  *serve.Server
	rt   *fleet.Router
	sv   *cliflags.Serve
	diag *cliflags.Diag
	log  *slog.Logger
}

// newDaemon parses args, sets up diagnostics and builds the service —
// loading the model, so a missing or corrupt artifact fails here — but
// does not bind the listen address yet (start does).
func newDaemon(args []string) (*daemon, error) {
	fs := flag.NewFlagSet("catiserve", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model artifact to serve (reloaded on SIGHUP or file change)")
	workers := fs.Int("workers", 0, "inference worker goroutines (0: CATI_WORKERS env, else GOMAXPROCS)")
	router := fs.Bool("router", false, "fleet router mode: shard requests across -replicas instead of serving a model")
	kernel := cliflags.Kernel(fs)
	sv := cliflags.AddServe(fs)
	fl := cliflags.AddFleet(fs)
	bk := cliflags.AddBulk(fs)
	diag := cliflags.AddDiag(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("usage: catiserve -model m [flags] (no positional arguments)")
	}
	log, err := diag.Setup()
	if err != nil {
		return nil, err
	}
	// A daemon is always observable: metric collection and tracing are on
	// even without -debug-addr, because the data port itself serves
	// /metrics, /v1/trace/{id} and /debug/traces (and, in router mode,
	// /v1/fleet/metrics) for federation.
	telemetry.Default().SetEnabled(true)
	if err := diag.EnableTracing(log); err != nil {
		return nil, err
	}
	if err := cliflags.ApplyKernel(*kernel); err != nil {
		return nil, err
	}
	d := &daemon{sv: sv, diag: diag, log: log}
	if *router {
		replicas := fl.ReplicaList()
		if len(replicas) == 0 {
			return nil, fmt.Errorf("-router requires -replicas (comma-separated catiserve base URLs)")
		}
		d.rt, err = fleet.New(fleet.Config{
			Replicas:         replicas,
			Vnodes:           fl.Vnodes,
			ProbeInterval:    fl.ProbeInterval,
			ProbeTimeout:     fl.ProbeTimeout,
			EjectAfter:       fl.EjectAfter,
			RejoinAfter:      fl.RejoinAfter,
			HedgeAfter:       fl.HedgeAfter,
			OwnerRetries:     fl.OwnerRetries,
			Rounds:           fl.Rounds,
			Backoff:          fl.Backoff,
			MaxBackoff:       fl.MaxBackoff,
			BreakerThreshold: fl.BreakerThreshold,
			BreakerCooldown:  fl.BreakerCooldown,
			FillTimeout:      fl.FillTimeout,
			FillGrace:        fl.FillGrace,
			FallbackModel:    fl.FallbackModel,
			Workers:          *workers,
			MaxBody:          sv.MaxBody,
			BulkDir:          bk.Dir,
			BulkWorkers:      bk.Workers,
			MaxBulkBody:      bk.MaxBody,
			BulkMaxEntries:   bk.MaxEntries,
			BulkMaxEntrySize: bk.MaxEntrySize,
			Log:              log,
		})
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	d.srv, err = serve.New(serve.Config{
		ModelPath:        *model,
		Workers:          *workers,
		MaxInFlight:      sv.MaxInFlight,
		MaxQueue:         sv.MaxQueue,
		QueueWait:        sv.QueueWait,
		RetryAfter:       sv.RetryAfter,
		MaxRetryAfter:    sv.MaxRetryAfter,
		ReadyWatermark:   sv.ReadyWatermark,
		MaxBatch:         sv.MaxBatch,
		Linger:           sv.BatchLinger,
		CacheSize:        sv.CacheSize,
		BinaryTimeout:    sv.BinaryTimeout,
		Retries:          sv.Retries,
		MaxBody:          sv.MaxBody,
		BulkDir:          bk.Dir,
		BulkWorkers:      bk.Workers,
		MaxBulkBody:      bk.MaxBody,
		BulkMaxEntries:   bk.MaxEntries,
		BulkMaxEntrySize: bk.MaxEntrySize,
		WatchInterval:    sv.WatchInterval,
		Log:              log,
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// start binds -addr and begins serving. After start, the bound address
// is d.addr() (which resolves ":0" listens for tests).
func (d *daemon) start() error {
	if d.rt != nil {
		return d.rt.Start(d.sv.Addr)
	}
	return d.srv.Start(d.sv.Addr)
}

// addr is the bound listen address, whichever mode is running.
func (d *daemon) addr() string {
	if d.rt != nil {
		return d.rt.Addr
	}
	return d.srv.Addr
}

// loop blocks, serving reloads, until ctx is cancelled: each SIGHUP
// swaps in a freshly loaded model (or logs and keeps the current one).
func (d *daemon) loop(ctx context.Context, hup <-chan os.Signal) {
	for {
		select {
		case <-hup:
			d.reload()
		case <-ctx.Done():
			return
		}
	}
}

// reload is the SIGHUP action, split out so tests can invoke it without
// delivering a signal. Router mode has no model to reload.
func (d *daemon) reload() {
	if d.srv == nil {
		d.log.Info("SIGHUP ignored: router mode has no model to reload")
		return
	}
	if err := d.srv.Registry().Load(); err != nil {
		d.log.Error("model reload failed; keeping current model", "error", err)
		return
	}
	d.log.Info("model reloaded", "model", d.srv.Registry().Active().Fingerprint)
}

// drain shuts everything down gracefully: the inference API first (in-
// flight requests get up to -drain-timeout), then the debug server, so
// a monitoring system can scrape the final request counts.
func (d *daemon) drain() error {
	d.log.Info("draining", "timeout", d.sv.DrainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), d.sv.DrainTimeout)
	defer cancel()
	var err error
	if d.rt != nil {
		err = d.rt.Shutdown(ctx)
	} else {
		err = d.srv.Shutdown(ctx)
	}
	if d.diag.Server != nil {
		if derr := d.diag.Server.Shutdown(ctx); err == nil {
			err = derr
		}
	}
	d.diag.CloseTracing()
	return err
}

func run(args []string) error {
	d, err := newDaemon(args)
	if err != nil {
		return err
	}
	if err := d.start(); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	d.loop(ctx, hup)
	return d.drain()
}
