package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

var (
	fixOnce sync.Once
	fixErr  error
	// blobA/blobB are two sealed artifacts of the same tiny model with
	// distinct fingerprints (a config tweak changes the sealed bytes).
	blobA, blobB []byte
	fpA, fpB     string
	fixCATI      *core.CATI // loaded from blobA, for serial baselines
)

// fixture trains one tiny flat model per process and derives the two
// artifact variants the reload tests swap between.
func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		var c *corpus.Corpus
		c, fixErr = corpus.Build(corpus.BuildConfig{
			Name: "serve-cli-train", Binaries: 2,
			Profile: synth.DefaultProfile("servecli"), Window: 5, Seed: 43,
		})
		if fixErr != nil {
			return
		}
		var cati *core.CATI
		cati, fixErr = core.Train(c, classify.Config{
			Window: 5, Conv1: 4, Conv2: 4, Hidden: 16, MaxPerStage: 200, Flat: true,
			Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
			W2V:   word2vec.Config{Epochs: 1}, Seed: 6,
		})
		if fixErr != nil {
			return
		}
		if blobA, fixErr = cati.Save(); fixErr != nil {
			return
		}
		cati.Pipeline.Cfg.MaxPerStage++ // different sealed bytes → new print
		if blobB, fixErr = cati.Save(); fixErr != nil {
			return
		}
		if fixCATI, fixErr = core.Load(blobA); fixErr != nil {
			return
		}
		fpA = fixCATI.Fingerprint()
		var b *core.CATI
		if b, fixErr = core.Load(blobB); fixErr != nil {
			return
		}
		fpB = b.Fingerprint()
		if fpA == fpB {
			fixErr = fmt.Errorf("fixture fingerprints collide: %s", fpA)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
}

// testImage compiles a small stripped binary and returns its image.
func testImage(t *testing.T, seed int64) []byte {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("servecli-bin"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Write(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// startDaemon writes blobA to a temp model file, builds a daemon on a
// loopback port with file-watching off, and starts it.
func startDaemon(t *testing.T, extra ...string) (*daemon, string) {
	t.Helper()
	fixture(t)
	model := filepath.Join(t.TempDir(), "m.model")
	if err := os.WriteFile(model, blobA, 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-model", model, "-addr", "127.0.0.1:0", "-watch-interval", "-1s",
	}, extra...)
	d, err := newDaemon(args)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.srv.Close() })
	return d, model
}

func postInfer(t *testing.T, addr string, image []byte) (*http.Response, serve.InferResponse) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/infer", "application/octet-stream", bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/infer = %d: %s", resp.StatusCode, body)
	}
	var ir serve.InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("bad infer body: %v: %s", err, body)
	}
	return resp, ir
}

// TestDaemonEndToEnd drives the daemon exactly as a client would —
// loopback HTTP, raw image in — and checks the inferred variables match
// an in-process InferBinary on the same model, then drains.
func TestDaemonEndToEnd(t *testing.T) {
	d, _ := startDaemon(t, "-debug-addr", "127.0.0.1:0")
	img := testImage(t, 71)

	_, ir := postInfer(t, d.srv.Addr, img)
	if ir.Model != fpA {
		t.Fatalf("response model %q, want %q", ir.Model, fpA)
	}
	bin, err := elfx.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fixCATI.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(ir.Vars) != len(want) || ir.NumVars != len(want) {
		t.Fatalf("served %d vars, in-process inference found %d", len(ir.Vars), len(want))
	}
	for i, v := range want {
		got := ir.Vars[i]
		if got.FuncLow != v.FuncLow || got.Slot != v.Slot || got.Global != v.Global ||
			got.Size != v.Size || got.NumVUCs != v.NumVUCs || got.Class != v.Class.String() {
			t.Fatalf("var %d: served %+v, want %+v", i, got, v)
		}
	}

	// /v1/models names the same model.
	resp, err := http.Get("http://" + d.srv.Addr + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var mr serve.ModelsResponse
	err = json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mr.Active.Fingerprint != fpA {
		t.Fatalf("/v1/models fingerprint %q, want %q", mr.Active.Fingerprint, fpA)
	}

	// -debug-addr was given: the daemon holds the handle and drain shuts
	// both servers down cleanly.
	if d.diag.Server == nil {
		t.Fatal("debug server handle not recorded")
	}
	if err := d.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := http.Get("http://" + d.srv.Addr + "/v1/healthz"); err == nil {
		t.Fatal("API still serving after drain")
	}
	if _, err := http.Get("http://" + d.diag.Server.Addr + "/healthz"); err == nil {
		t.Fatal("debug server still serving after drain")
	}
}

// TestDaemonReloadOnHup exercises the signal loop's reload path: swap
// the artifact on disk, deliver a (test-injected) SIGHUP, and watch the
// daemon roll onto the new fingerprint without restarting.
func TestDaemonReloadOnHup(t *testing.T) {
	d, model := startDaemon(t)
	ctx, cancel := context.WithCancel(context.Background())
	hup := make(chan os.Signal, 1)
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		d.loop(ctx, hup)
	}()

	if err := os.WriteFile(model, blobB, 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- syscall.SIGHUP

	deadline := time.Now().Add(10 * time.Second)
	for d.srv.Registry().Active().Fingerprint != fpB {
		if time.Now().After(deadline) {
			t.Fatalf("model never reloaded (still %s)", d.srv.Registry().Active().Fingerprint)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A reload that fails to load keeps the current model serving.
	if err := os.WriteFile(model, []byte("not a model artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- syscall.SIGHUP
	time.Sleep(50 * time.Millisecond)
	if got := d.srv.Registry().Active().Fingerprint; got != fpB {
		t.Fatalf("failed reload replaced the model: %s", got)
	}
	_, ir := postInfer(t, d.srv.Addr, testImage(t, 72))
	if ir.Model != fpB {
		t.Fatalf("serving on %q after reload, want %q", ir.Model, fpB)
	}

	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("signal loop did not exit on context cancel")
	}
	if err := d.drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonUsageErrors pins the failure modes that must be reported
// before a port is bound.
func TestDaemonUsageErrors(t *testing.T) {
	fixture(t)
	if _, err := newDaemon([]string{"-model", "/nonexistent/m.model"}); err == nil {
		t.Fatal("missing model artifact not reported")
	}
	if _, err := newDaemon([]string{"-model", "m", "stray-positional"}); err == nil {
		t.Fatal("positional arguments not rejected")
	}
	if _, err := newDaemon([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag not rejected")
	}
	if _, err := newDaemon([]string{"-router"}); err == nil {
		t.Fatal("-router without -replicas not rejected")
	}
	if _, err := newDaemon([]string{"-router", "-replicas", "r1:8090", "-fallback-model", "/nonexistent/m.model"}); err == nil {
		t.Fatal("missing -fallback-model artifact not reported")
	}
}

// TestDaemonRouterMode runs the full fleet stack through the CLI
// surface: two real replica daemons, one router daemon sharding across
// them, requests flowing end to end — and surviving a replica kill.
func TestDaemonRouterMode(t *testing.T) {
	d1, _ := startDaemon(t)
	d2, _ := startDaemon(t)
	rd, err := newDaemon([]string{
		"-router",
		"-replicas", d1.srv.Addr + "," + d2.srv.Addr, // bare host:port → http:// normalized
		"-addr", "127.0.0.1:0",
		"-probe-interval", "25ms", "-eject-after", "2", "-rejoin-after", "1",
		"-fleet-backoff", "2ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rd.rt == nil || rd.srv != nil {
		t.Fatal("router daemon did not select router mode")
	}
	if err := rd.start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rd.rt.Close() })

	img := testImage(t, 73)
	resp, ir := postInfer(t, rd.addr(), img)
	if ir.Model != fpA {
		t.Fatalf("routed response model %q, want %q", ir.Model, fpA)
	}
	if rep := resp.Header.Get("X-Cati-Replica"); rep == "" {
		t.Fatal("routed response missing X-Cati-Replica")
	}

	// /v1/fleet reports both replicas in the ring. Both were probed up
	// before Start returned in the common case, but the prober needs a
	// cycle or two when the test machine is slow — poll, don't snapshot.
	var st struct {
		Replicas []struct {
			URL string `json:"url"`
			Up  bool   `json:"up"`
		} `json:"replicas"`
		Up int `json:"up"`
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		fresp, err := http.Get("http://" + rd.addr() + "/v1/fleet")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(fresp.Body).Decode(&st)
		fresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Replicas) == 2 && st.Up == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/v1/fleet: %+v, want 2 replicas up", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill one replica: requests keep succeeding on the survivor.
	if err := d2.srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := int64(74); i < 78; i++ {
		postInfer(t, rd.addr(), testImage(t, i)) // Fatals on any non-200
	}

	if err := rd.drain(); err != nil {
		t.Fatalf("router drain: %v", err)
	}
	if _, err := http.Get("http://" + rd.addr() + "/v1/healthz"); err == nil {
		t.Fatal("router still serving after drain")
	}
}
