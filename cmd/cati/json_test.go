package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- b
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// TestCatiInferJSON runs `cati infer -json -trace` and validates the
// JSON-lines protocol: one record per inferred variable, then a trailing
// trace record with the five inference stages.
func TestCatiInferJSON(t *testing.T) {
	dir := t.TempDir()

	p := synth.Generate(synth.DefaultProfile("jsoncli"), 4)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Write(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "a.elf")
	if err := os.WriteFile(bin, img, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := corpus.Build(corpus.BuildConfig{
		Name: "json-train", Binaries: 2,
		Profile: synth.DefaultProfile("jsontrain"), Window: 5, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 8, Conv2: 8, Hidden: 64, MaxPerStage: 400,
		Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:   word2vec.Config{Epochs: 1}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(dir, "m.model")
	if err := os.WriteFile(model, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() error {
		return run([]string{"infer", "-json", "-trace", "-model", model, bin})
	})

	dec := json.NewDecoder(strings.NewReader(out))
	vars, traces := 0, 0
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("bad JSON line: %v\noutput:\n%s", err, out)
		}
		if stages, ok := rec["trace"]; ok {
			traces++
			names := map[string]bool{}
			for _, s := range stages.([]any) {
				names[s.(map[string]any)["stage"].(string)] = true
			}
			for _, want := range []string{"recover", "extract", "embed", "predict", "vote"} {
				if !names[want] {
					t.Fatalf("trace missing stage %q: %v", want, names)
				}
			}
			continue
		}
		vars++
		if rec["binary"] != bin {
			t.Fatalf("record names wrong binary: %v", rec["binary"])
		}
		if _, ok := rec["class"].(string); !ok {
			t.Fatalf("record missing class: %v", rec)
		}
	}
	if vars == 0 {
		t.Fatalf("no variable records emitted:\n%s", out)
	}
	if traces != 1 {
		t.Fatalf("want exactly 1 trace record, got %d", traces)
	}
}
