package main

import (
	"archive/tar"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"log/slog"

	"repro/cmd/internal/cliflags"
	"repro/internal/bulkq"
)

// bulkCmd is the corpus client for the /v1/bulk job API: package a
// directory (or pass a ready-made tar/tar.gz) up to a catiserve daemon
// or fleet router, poll the job to completion, and stream the per-binary
// results back as JSON lines. The server owns durability — a daemon
// restart mid-job resumes it — so the client is deliberately thin:
// submit, poll, fetch.
//
//	cati bulk -url http://host:8090 ./corpus-dir
//	cati bulk -url http://host:8090 -o results.jsonl corpus.tar.gz
//	cati bulk -no-wait corpus.tar          # print the job ID and return
//
// Exit codes mirror `cati infer`: 0 all binaries inferred, 2 partial
// failure, 3 all failed, 1 usage/infrastructure error.
func bulkCmd(args []string) error {
	fs := flag.NewFlagSet("bulk", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8090", "catiserve (or fleet router) base URL")
	out := fs.String("o", "", "write results JSON lines to this file (default: stdout)")
	noWait := fs.Bool("no-wait", false, "submit, print the job ID on stdout and return without waiting")
	poll := fs.Duration("poll", 500*time.Millisecond, "status poll period while waiting for the job")
	timeout := fs.Duration("timeout", 0, "overall deadline, e.g. 10m (0: none)")
	diag := cliflags.AddDiag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cati bulk -url http://host:8090 <dir | corpus.tar[.gz]>")
	}
	log, err := diag.Setup()
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(*url, "/")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	body, err := openCorpus(fs.Arg(0))
	if err != nil {
		return err
	}
	sub, err := submitBulk(ctx, base, body)
	body.Close()
	if err != nil {
		return err
	}
	log.Info("bulk job admitted",
		"job", sub.Job.ID, "binaries", sub.Job.Binaries, "skipped_entries", sub.SkippedEntries)
	if *noWait {
		fmt.Println(sub.Job.ID)
		return nil
	}

	st, err := waitBulk(ctx, log, base, sub.Job.ID, *poll)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fetchBulkResults(ctx, base, sub.Job.ID, w); err != nil {
		return err
	}
	return bulkStatusErr(st)
}

// openCorpus turns the argument into an archive stream: a directory is
// packaged as tar.gz on the fly (regular files only, names relative to
// the directory); a file is assumed to already be a tar or tar.gz and
// streams as-is — the server sniffs the compression.
func openCorpus(path string) (io.ReadCloser, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return os.Open(path)
	}
	pr, pw := io.Pipe()
	go func() {
		gz := gzip.NewWriter(pw)
		tw := tar.NewWriter(gz)
		err := filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.Type().IsRegular() {
				return nil
			}
			rel, err := filepath.Rel(path, p)
			if err != nil {
				return err
			}
			fi, err := d.Info()
			if err != nil {
				return err
			}
			if err := tw.WriteHeader(&tar.Header{
				Name: filepath.ToSlash(rel),
				Mode: 0o644,
				Size: fi.Size(),
			}); err != nil {
				return err
			}
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			_, err = io.Copy(tw, f)
			f.Close()
			return err
		})
		if cerr := tw.Close(); err == nil {
			err = cerr
		}
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// submitBulk POSTs the archive and decodes the 202 admission response.
func submitBulk(ctx context.Context, base string, body io.Reader) (bulkq.SubmitResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/bulk", body)
	if err != nil {
		return bulkq.SubmitResult{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return bulkq.SubmitResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return bulkq.SubmitResult{}, bulkAPIError("submit", resp)
	}
	var sub bulkq.SubmitResult
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return bulkq.SubmitResult{}, fmt.Errorf("parsing submit response: %w", err)
	}
	return sub, nil
}

// waitBulk polls the job until every binary settles (state done or
// cancelled), logging progress as counts change.
func waitBulk(ctx context.Context, log *slog.Logger, base, id string, poll time.Duration) (bulkq.JobStatus, error) {
	var last bulkq.JobStatus
	lastLine := ""
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/bulk/"+id, nil)
		if err != nil {
			return last, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return last, err
		}
		if resp.StatusCode != http.StatusOK {
			err := bulkAPIError("status", resp)
			resp.Body.Close()
			return last, err
		}
		if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
			resp.Body.Close()
			return last, fmt.Errorf("parsing job status: %w", err)
		}
		resp.Body.Close()
		line := fmt.Sprintf("%d/%d/%d/%d", last.Done, last.Binaries, last.Failed, last.Skipped)
		if line != lastLine {
			log.Info("bulk job progress", "job", last.ID,
				"done", last.Done, "binaries", last.Binaries,
				"failed", last.Failed, "skipped", last.Skipped)
			lastLine = line
		}
		if last.State == "done" || last.State == "cancelled" && last.Running == 0 && last.Pending == 0 {
			return last, nil
		}
		select {
		case <-ctx.Done():
			return last, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// fetchBulkResults streams the job's JSON-lines results to w.
func fetchBulkResults(ctx context.Context, base, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/bulk/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return bulkAPIError("results", resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// bulkStatusErr maps the final job counts to the documented exit codes.
func bulkStatusErr(st bulkq.JobStatus) error {
	switch {
	case st.Failed == 0:
		return nil
	case st.Done == 0:
		return &exitError{code: 3, msg: fmt.Sprintf("all %d binaries failed", st.Failed)}
	default:
		return &exitError{code: 2, msg: fmt.Sprintf("%d of %d binaries failed", st.Failed, st.Binaries)}
	}
}

// bulkAPIError renders a non-2xx bulk API response, preferring the JSON
// error envelope when the server sent one.
func bulkAPIError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
		return fmt.Errorf("bulk %s: %s (HTTP %d)", op, envelope.Error, resp.StatusCode)
	}
	return fmt.Errorf("bulk %s: HTTP %d: %s", op, resp.StatusCode, strings.TrimSpace(string(body)))
}
