package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// captureStreams runs fn with both stdout and stderr redirected to pipes
// and returns what each received plus fn's error.
func captureStreams(t *testing.T, fn func() error) (stdout, stderr string, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	re, we, perr := os.Pipe()
	if perr != nil {
		t.Fatal(perr)
	}
	os.Stdout, os.Stderr = wo, we
	outc := make(chan []byte)
	errc := make(chan []byte)
	go func() { b, _ := io.ReadAll(ro); outc <- b }()
	go func() { b, _ := io.ReadAll(re); errc <- b }()
	err = fn()
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	return string(<-outc), string(<-errc), err
}

// decodeLines feeds the stream through a JSON decoder and returns the
// decoded records, failing the test on any non-JSON content.
func decodeLines(t *testing.T, name, stream string) []map[string]any {
	t.Helper()
	var recs []map[string]any
	dec := json.NewDecoder(strings.NewReader(stream))
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("%s is not pure JSON lines: %v\n%s", name, err, stream)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestInferJSONStreamsStayJSON pins the stream separation contract: with
// `-json -trace -log-format json`, stdout carries only protocol records
// (variables, errors, the trace), stderr carries only slog JSON lines, and
// the two never interleave into either stream — so the concatenation of
// both still decodes cleanly.
func TestInferJSONStreamsStayJSON(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	good := writeBinary(t, dir, "good.elf", 71)
	corrupt := filepath.Join(dir, "corrupt.elf")
	if err := os.WriteFile(corrupt, []byte("\x7fELF garbage, not a real image"), 0o644); err != nil {
		t.Fatal(err)
	}

	stdout, stderr, runErr := captureStreams(t, func() error {
		return run([]string{"infer", "-json", "-trace", "-log-format", "json",
			"-model", model, good, corrupt})
	})
	if exitCode(runErr) != 2 {
		t.Fatalf("want exit 2, got %d (%v)", exitCode(runErr), runErr)
	}

	outRecs := decodeLines(t, "stdout", stdout)
	vars, errs, traces := 0, 0, 0
	for _, rec := range outRecs {
		switch {
		case rec["trace"] != nil:
			traces++
		case rec["error"] != nil:
			errs++
		case rec["class"] != nil:
			vars++
		default:
			t.Fatalf("unrecognized stdout record: %v", rec)
		}
	}
	if vars == 0 || errs != 1 || traces != 1 {
		t.Fatalf("stdout protocol records: vars=%d errs=%d traces=%d (want >0, 1, 1)\n%s",
			vars, errs, traces, stdout)
	}

	// Every stderr line is a slog JSON record (has msg and level), and the
	// per-binary failure surfaced there, not on stdout.
	errRecs := decodeLines(t, "stderr", stderr)
	sawFailure := false
	for _, rec := range errRecs {
		if rec["msg"] == nil || rec["level"] == nil {
			t.Fatalf("stderr record missing slog fields: %v", rec)
		}
		if rec["msg"] == "binary failed" {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatalf("stderr missing the binary-failure log line:\n%s", stderr)
	}

	// The combined byte stream is still pure JSON lines.
	decodeLines(t, "stdout+stderr", stdout+stderr)

	// The human trace table must not leak into stdout.
	if strings.Contains(stdout, "stage breakdown") {
		t.Fatal("trace table leaked into stdout")
	}
}

// scrapeMetrics GETs the exposition page and parses series lines into a
// name{labels} → value map.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	return series
}

// sumPrefix totals every series whose name (before any label block) is
// exactly name.
func sumPrefix(series map[string]float64, name string) float64 {
	var sum float64
	for k, v := range series {
		base := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			base = k[:i]
		}
		if base == name {
			sum += v
		}
	}
	return sum
}

// TestInferServesMetrics is the end-to-end acceptance check: an infer run
// with -debug-addr serves a /metrics page whose stage-latency histograms,
// worker-pool counters and per-binary outcome counters are all nonzero.
func TestInferServesMetrics(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	good := writeBinary(t, dir, "good.elf", 72)

	if err := run([]string{"infer", "-debug-addr", "127.0.0.1:0", "-model", model, good}); err != nil {
		t.Fatal(err)
	}
	addr := telemetry.ServerAddr()
	if addr == "" {
		t.Fatal("no debug server address recorded")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	series := scrapeMetrics(t, addr)
	for _, name := range []string{
		"cati_stage_seconds_count", // stage-latency histograms got observations
		"cati_par_tasks_started_total",
		"cati_par_tasks_completed_total",
		"cati_binaries_inferred_total",
		"cati_vucs_extracted_total",
	} {
		if sumPrefix(series, name) <= 0 {
			t.Errorf("metric %s is zero or absent after an infer run", name)
		}
	}
	// Each inference stage shows up as a labeled histogram series.
	for _, stage := range []string{"recover", "extract", "embed", "predict", "vote"} {
		key := `cati_stage_seconds_count{stage="` + stage + `"}`
		if series[key] <= 0 {
			t.Errorf("no latency observations for stage %q", stage)
		}
	}
}
