package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

var (
	inferOnce  sync.Once
	inferModel string // path to a tiny trained model on disk
	inferErr   error
)

// testModel trains one tiny flat model per process and writes it to disk
// for the infer CLI tests.
func testModel(t *testing.T) string {
	t.Helper()
	inferOnce.Do(func() {
		var c *corpus.Corpus
		c, inferErr = corpus.Build(corpus.BuildConfig{
			Name: "infer-train", Binaries: 2,
			Profile: synth.DefaultProfile("infertrain"), Window: 5, Seed: 41,
		})
		if inferErr != nil {
			return
		}
		var cati *core.CATI
		cati, inferErr = core.Train(c, classify.Config{
			Window: 5, Conv1: 4, Conv2: 4, Hidden: 16, MaxPerStage: 200, Flat: true,
			Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
			W2V:   word2vec.Config{Epochs: 1}, Seed: 4,
		})
		if inferErr != nil {
			return
		}
		var blob []byte
		if blob, inferErr = cati.Save(); inferErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "cati-infer-model")
		if err != nil {
			inferErr = err
			return
		}
		inferModel = filepath.Join(dir, "m.model")
		inferErr = os.WriteFile(inferModel, blob, 0o644)
	})
	if inferErr != nil {
		t.Fatal(inferErr)
	}
	return inferModel
}

// writeBinary compiles a small program and writes its stripped image.
func writeBinary(t *testing.T, dir string, name string, seed int64) string {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("infer-bin"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Write(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// exitCode extracts the CLI exit code an error maps to.
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	return 1
}

// TestInferExitCodes pins the documented contract: 0 all ok, 2 partial
// failure, 3 all failed — with the corrupt binary reported per file, not
// aborting its batchmates.
func TestInferExitCodes(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	good1 := writeBinary(t, dir, "good1.elf", 61)
	good2 := writeBinary(t, dir, "good2.elf", 62)
	corrupt := filepath.Join(dir, "corrupt.elf")
	if err := os.WriteFile(corrupt, []byte("\x7fELF garbage, not a real image"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"infer", "-model", model, good1, good2}); exitCode(err) != 0 {
		t.Fatalf("all-good batch: want exit 0, got %d (%v)", exitCode(err), err)
	}
	err := run([]string{"infer", "-model", model, good1, corrupt, good2})
	if exitCode(err) != 2 {
		t.Fatalf("partial failure: want exit 2, got %d (%v)", exitCode(err), err)
	}
	err = run([]string{"infer", "-model", model, corrupt, filepath.Join(dir, "missing.elf")})
	if exitCode(err) != 3 {
		t.Fatalf("all failed: want exit 3, got %d (%v)", exitCode(err), err)
	}
	// Infrastructure failure (bad model path) stays exit 1.
	if err := run([]string{"infer", "-model", "/nonexistent", good1}); exitCode(err) != 1 {
		t.Fatalf("bad model: want exit 1, got %d", exitCode(err))
	}
}

// TestInferJSONErrorRecords: -json emits per-variable records for
// healthy binaries and one error record per failed binary.
func TestInferJSONErrorRecords(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	good := writeBinary(t, dir, "good.elf", 63)
	corrupt := filepath.Join(dir, "corrupt.elf")
	if err := os.WriteFile(corrupt, []byte("\x7fELF garbage, not a real image"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Capture stdout across the run.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"infer", "-json", "-model", model, good, corrupt})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}

	if exitCode(runErr) != 2 {
		t.Fatalf("want exit 2, got %d (%v)", exitCode(runErr), runErr)
	}
	varRecords, errRecords := 0, 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var rec map[string]any
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		switch {
		case rec["error"] != nil:
			errRecords++
			if rec["binary"] != corrupt {
				t.Fatalf("error record names %v, want %s", rec["binary"], corrupt)
			}
			if rec["attempts"] == nil {
				t.Fatal("error record missing attempts")
			}
		case rec["class"] != nil:
			varRecords++
			if rec["binary"] != good {
				t.Fatalf("variable record names %v, want %s", rec["binary"], good)
			}
		}
	}
	if errRecords != 1 {
		t.Fatalf("want exactly 1 error record, got %d", errRecords)
	}
	if varRecords == 0 {
		t.Fatal("no variable records for the healthy binary")
	}
}
