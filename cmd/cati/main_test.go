package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// TestCatiEndToEnd exercises strip → disasm → infer through the CLI with a
// tiny model trained in-process.
func TestCatiEndToEnd(t *testing.T) {
	dir := t.TempDir()

	// Build a binary on disk.
	p := synth.Generate(synth.DefaultProfile("cli"), 3)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Write(res.Binary)
	if err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(dir, "a.elf")
	if err := os.WriteFile(full, img, 0o644); err != nil {
		t.Fatal(err)
	}

	// strip.
	strippedPath := filepath.Join(dir, "a.stripped.elf")
	if err := run([]string{"strip", full, strippedPath}); err != nil {
		t.Fatal(err)
	}

	// disasm both.
	if err := run([]string{"disasm", full}); err != nil {
		t.Fatal(err)
	}

	// Train and save a tiny model.
	c, err := corpus.Build(corpus.BuildConfig{
		Name: "cli-train", Binaries: 3,
		Profile: synth.DefaultProfile("clitrain"), Window: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 8, Conv2: 8, Hidden: 64, MaxPerStage: 600,
		Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:   word2vec.Config{Epochs: 1}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "m.model")
	if err := os.WriteFile(modelPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// infer.
	if err := run([]string{"infer", "-model", modelPath, strippedPath}); err != nil {
		t.Fatal(err)
	}
}

func TestCatiErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"strip", "/nonexistent", "/tmp/x"}); err == nil {
		t.Error("missing input should fail")
	}
	if err := run([]string{"disasm", "/nonexistent"}); err == nil {
		t.Error("missing input should fail")
	}
	if err := run([]string{"infer", "-model", "/nonexistent", "/nonexistent"}); err == nil {
		t.Error("missing model should fail")
	}
}

func TestCatiAnnotate(t *testing.T) {
	// Reuses the artifacts produced the same way as TestCatiEndToEnd but
	// self-contained: build binary + model, then annotate.
	dir := t.TempDir()
	p := synth.Generate(synth.DefaultProfile("anno"), 5)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Write(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "a.elf")
	if err := os.WriteFile(bin, img, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Build(corpus.BuildConfig{
		Name: "anno-train", Binaries: 2,
		Profile: synth.DefaultProfile("annotrain"), Window: 5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 8, Conv2: 8, Hidden: 64, MaxPerStage: 400,
		Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:   word2vec.Config{Epochs: 1}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	model := filepath.Join(dir, "m.model")
	if err := os.WriteFile(model, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"annotate", "-model", model, bin}); err != nil {
		t.Fatal(err)
	}
}
