package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bulkq"
	"repro/internal/serve"
)

// startBulkServer runs an in-process catiserve with the bulk queue on a
// fresh directory, for driving the `cati bulk` subcommand end to end.
func startBulkServer(t *testing.T) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		ModelPath: testModel(t), WatchInterval: -1,
		BulkDir: t.TempDir(), BulkWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestBulkCmdEndToEnd drives `cati bulk` against a live daemon: package
// a directory of stripped binaries, wait for the drain, and check the
// JSON-lines results file holds one done record per binary.
func TestBulkCmdEndToEnd(t *testing.T) {
	s := startBulkServer(t)
	corpus := t.TempDir()
	if err := os.Mkdir(filepath.Join(corpus, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		writeBinary(t, corpus, filepath.Join("sub", "bin-"+string(rune('a'+i))+".elf"), int64(60+i))
	}
	out := filepath.Join(t.TempDir(), "results.jsonl")

	if err := bulkCmd([]string{"-url", "http://" + s.Addr, "-poll", "5ms", "-o", out, corpus}); err != nil {
		t.Fatalf("cati bulk: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec bulkq.ResultRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("results line %d: %v", lines, err)
		}
		if rec.State != "done" || rec.Model == "" || len(rec.Vars) == 0 {
			t.Fatalf("results line %d: %+v", lines, rec)
		}
		lines++
	}
	if lines != n {
		t.Fatalf("results: %d lines, want %d", lines, n)
	}

	// -no-wait prints the job ID and returns immediately.
	oldStdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	err = bulkCmd([]string{"-url", "http://" + s.Addr, "-no-wait", corpus})
	w.Close()
	os.Stdout = oldStdout
	if err != nil {
		t.Fatalf("cati bulk -no-wait: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	id := string(bytes.TrimSpace(buf.Bytes()))
	if len(id) == 0 || id[0] != 'j' {
		t.Fatalf("-no-wait stdout %q, want a job ID", id)
	}
	if _, ok := s.Bulk().Job(id); !ok {
		t.Fatalf("job %s not known to the daemon", id)
	}
}

// Bad inputs fail before any upload: a missing path, and a refused URL.
func TestBulkCmdErrors(t *testing.T) {
	if err := bulkCmd([]string{"/nonexistent/corpus"}); err == nil {
		t.Fatal("missing corpus path not reported")
	}
	dir := t.TempDir()
	writeBinary(t, dir, "a.elf", 66)
	if err := bulkCmd([]string{"-url", "http://127.0.0.1:1", dir}); err == nil {
		t.Fatal("unreachable daemon not reported")
	}
	if err := bulkCmd([]string{}); err == nil {
		t.Fatal("missing argument not reported")
	}
}
