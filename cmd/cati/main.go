// Command cati is the end-user tool: given a trained model and a stripped
// binary, it locates variables and infers their C types; it can also strip
// binaries and disassemble them (objdump-style) using the built-in
// substrate.
//
// Usage:
//
//	cati infer    -model cati.model binary.stripped.elf [more.elf ...]
//	cati infer    -json -trace -timeout 30s -model cati.model binary.elf
//	cati annotate -model cati.model binary.stripped.elf
//	cati strip    in.elf out.elf
//	cati disasm   binary.elf
//	cati bulk     -url http://host:8090 ./corpus-dir
//
// infer accepts multiple binaries and fans them out over the worker pool
// (core.InferBatch). Each binary is its own error domain: an unreadable
// file, malformed ELF, or analysis failure is reported for that binary
// while the rest of the batch completes. -timeout and Ctrl-C cancel at
// the next stage/shard boundary; -binary-timeout bounds each binary
// individually and -retries re-runs a binary after a transient failure;
// -trace prints the per-stage wall-time breakdown on exit, and -json
// emits one machine-readable record per inferred variable plus one error
// record per failed binary (and a trailing trace record when -trace is
// set).
//
// infer exit codes:
//
//	0  every binary inferred successfully
//	1  usage or infrastructure error (bad flags, unreadable model, cancel)
//	2  partial failure: some binaries failed, others succeeded
//	3  every binary failed
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cliflags"
	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/isa"
	_ "repro/internal/isa/isas"
	"repro/internal/obs"
	"repro/internal/vareco"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cati:", err)
		code := 1
		var ee *exitError
		if errors.As(err, &ee) {
			code = ee.code
		}
		os.Exit(code)
	}
}

// exitError carries a specific process exit code through the error
// return path (partial-failure conventions documented on the package).
type exitError struct {
	code int
	msg  string
}

func (e *exitError) Error() string { return e.msg }

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cati <infer|annotate|strip|disasm|bulk> [flags] <file...>")
	}
	switch args[0] {
	case "infer":
		return inferCmd(args[1:])
	case "bulk":
		return bulkCmd(args[1:])
	case "annotate":
		return annotateCmd(args[1:])
	case "strip":
		return stripCmd(args[1:])
	case "disasm":
		return disasmCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func inferCmd(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	jsonOut := fs.Bool("json", false, "emit one JSON record per inferred variable (JSON lines)")
	binTimeout := fs.Duration("binary-timeout", 0, "per-binary wall-time limit (0: none)")
	retries := fs.Int("retries", 0, "extra attempts per binary after a transient failure")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: cati infer -model m binary.elf [more.elf ...]")
	}
	log, err := rt.Setup()
	if err != nil {
		return err
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = rt.Workers
	trace := rt.NewTrace()
	cati.Pipeline.Cfg.Trace = trace
	cati.Pipeline.Cfg.Hook = cliflags.StageHook(log)

	ctx, stop := rt.Context()
	defer stop()

	// Read and parse each input in its own error domain: a missing file or
	// malformed ELF becomes that binary's result record, not a batch abort.
	results := make([]core.BinaryResult, fs.NArg())
	var bins []*elfx.Binary
	var binIdx []int
	for i := 0; i < fs.NArg(); i++ {
		img, err := os.ReadFile(fs.Arg(i))
		if err != nil {
			results[i] = core.BinaryResult{Err: err}
			continue
		}
		bin, err := elfx.Read(img)
		if err != nil {
			results[i] = core.BinaryResult{Err: err}
			continue
		}
		bins = append(bins, bin)
		binIdx = append(binIdx, i)
	}
	batch, err := cati.InferBatchOpts(ctx, bins, core.BatchOptions{
		Timeout: *binTimeout,
		Retries: *retries,
	})
	if err != nil {
		cliflags.PrintTrace(os.Stderr, trace)
		return err
	}
	for i, res := range batch {
		results[binIdx[i]] = res
	}
	// Per-binary failures are diagnostics: they go to the structured log
	// (stderr) in both output modes, so -json stdout stays pure protocol.
	for bi, res := range results {
		if res.Err != nil {
			log.Error("binary failed", "binary", fs.Arg(bi), "attempts", res.Attempts, "error", res.Err)
		}
	}

	if *jsonOut {
		if err := printJSON(os.Stdout, fs, results, trace); err != nil {
			return err
		}
		return batchStatus(results)
	}
	total := 0
	for bi, res := range results {
		if len(results) > 1 {
			fmt.Printf("== %s\n", fs.Arg(bi))
		}
		if res.Err != nil {
			continue
		}
		fmt.Printf("%-10s  %-8s  %-5s  %-5s  %s\n", "FUNC", "SLOT", "SIZE", "VUCS", "TYPE")
		for _, v := range res.Vars {
			fmt.Printf("%#-10x  %-8d  %-5d  %-5d  %s\n", v.FuncLow, v.Slot, v.Size, v.NumVUCs, v.Class)
		}
		total += len(res.Vars)
	}
	fmt.Printf("%d variables\n", total)
	cliflags.PrintTrace(os.Stderr, trace)
	return batchStatus(results)
}

// batchStatus maps per-binary outcomes to the documented exit codes:
// nil when every binary succeeded, 2 on partial failure, 3 when all
// failed.
func batchStatus(results []core.BinaryResult) error {
	failed := 0
	for _, res := range results {
		if res.Err != nil {
			failed++
		}
	}
	switch {
	case failed == 0:
		return nil
	case failed == len(results):
		return &exitError{code: 3, msg: fmt.Sprintf("all %d binaries failed", failed)}
	default:
		return &exitError{code: 2, msg: fmt.Sprintf("%d of %d binaries failed", failed, len(results))}
	}
}

// varRecord is the machine-readable form of one inferred variable
// (`cati infer -json`, one JSON object per line).
type varRecord struct {
	Binary  string `json:"binary"`
	FuncLow uint64 `json:"func_low"`
	Slot    int32  `json:"slot"`
	Global  bool   `json:"global"`
	Size    int    `json:"size"`
	NumVUCs int    `json:"num_vucs"`
	Class   string `json:"class"`
}

// stageRecord is the machine-readable form of one traced stage.
type stageRecord struct {
	Stage   string `json:"stage"`
	WallNs  int64  `json:"wall_ns"`
	Items   int    `json:"items"`
	Workers int    `json:"workers"`
}

// errRecord is the machine-readable form of one failed binary
// (`cati infer -json`): the error message and how many attempts ran.
type errRecord struct {
	Binary   string `json:"binary"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
}

// printJSON writes one varRecord line per inferred variable, one
// errRecord line per failed binary, and, when tracing is on, a final
// {"trace": [...]} line with the stage breakdown.
func printJSON(w *os.File, fs *flag.FlagSet, results []core.BinaryResult, trace *obs.Trace) error {
	enc := json.NewEncoder(w)
	for bi, res := range results {
		if res.Err != nil {
			rec := errRecord{Binary: fs.Arg(bi), Error: res.Err.Error(), Attempts: res.Attempts}
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		for _, v := range res.Vars {
			rec := varRecord{
				Binary:  fs.Arg(bi),
				FuncLow: v.FuncLow,
				Slot:    v.Slot,
				Global:  v.Global,
				Size:    v.Size,
				NumVUCs: v.NumVUCs,
				Class:   v.Class.String(),
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	if trace != nil {
		stages := trace.Stages()
		recs := make([]stageRecord, len(stages))
		for i, s := range stages {
			recs[i] = stageRecord{Stage: s.Name, WallNs: s.Wall.Nanoseconds(), Items: s.Items, Workers: s.Workers}
		}
		if err := enc.Encode(map[string][]stageRecord{"trace": recs}); err != nil {
			return err
		}
	}
	return nil
}

// annotateCmd prints the disassembly of a stripped binary with inferred
// variable types inline — the reverse-engineering view the paper's
// Figure 2 motivates.
func annotateCmd(args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cati annotate -model m binary.elf")
	}
	log, err := rt.Setup()
	if err != nil {
		return err
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = rt.Workers
	trace := rt.NewTrace()
	cati.Pipeline.Cfg.Trace = trace
	cati.Pipeline.Cfg.Hook = cliflags.StageHook(log)
	defer cliflags.PrintTrace(os.Stderr, trace)

	ctx, stop := rt.Context()
	defer stop()

	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	vars, err := cati.InferBinaryCtx(ctx, bin)
	if err != nil {
		return err
	}

	// Index inferred types by (function, slot) and by global address.
	bySlot := make(map[slotKey]core.InferredVar)
	byAddr := make(map[uint64]core.InferredVar)
	for _, v := range vars {
		if v.Global {
			byAddr[v.FuncLow] = v
		} else {
			bySlot[slotKey{v.FuncLow, v.Slot}] = v
		}
	}

	rec, err := vareco.Recover(bin)
	if err != nil {
		return err
	}
	for fi := range rec.Funcs {
		f := &rec.Funcs[fi]
		fmt.Printf("\n%016x <func_%x>:\n", f.Low, f.Low)
		for i := f.InstLo; i < f.InstHi; i++ {
			in := rec.Insts[i]
			note := ""
			if m, ok := in.MemArg(); ok {
				switch {
				case m.Base == f.FrameReg:
					if v, ok := findCovering(bySlot, f.Low, m.Disp); ok {
						note = "   ; " + v.Class.String()
					}
				case m.Base == isa.RegNone && m.Index == isa.RegNone:
					if v, ok := byAddr[uint64(uint32(m.Disp))]; ok {
						note = "   ; " + v.Class.String() + " (global)"
					}
				}
			}
			fmt.Printf("  %6x:\t%-40s%s\n", in.Addr(), in.Text(), note)
		}
	}
	return nil
}

// slotKey addresses a stack variable for annotation lookup.
type slotKey struct {
	fn   uint64
	slot int32
}

// findCovering locates the inferred variable whose slot interval covers
// the displacement.
func findCovering(bySlot map[slotKey]core.InferredVar, fn uint64, disp int32) (core.InferredVar, bool) {
	// Exact hit first, then interior bytes of wider slots.
	if v, ok := bySlot[slotKey{fn, disp}]; ok {
		return v, true
	}
	for k, v := range bySlot {
		if k.fn == fn && disp >= k.slot && disp < k.slot+int32(v.Size) {
			return v, true
		}
	}
	return core.InferredVar{}, false
}

func stripCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: cati strip in.elf out.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	out, err := elfx.Write(elfx.Strip(bin))
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], out, 0o644); err != nil {
		return err
	}
	fmt.Printf("stripped %s → %s (%d → %d bytes)\n", args[0], args[1], len(img), len(out))
	return nil
}

func disasmCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cati disasm binary.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	arch, err := isa.ByMachine(bin.Machine)
	if err != nil {
		return err
	}
	text, err := bin.Text()
	if err != nil {
		return err
	}
	insts, err := arch.DecodeAll(text.Data, text.Addr)
	if err != nil {
		return err
	}
	for i := range insts {
		if sym, ok := bin.SymbolAt(insts[i].Addr()); ok && sym.Addr == insts[i].Addr() {
			fmt.Printf("\n%016x <%s>:\n", sym.Addr, sym.Name)
		}
		fmt.Printf("  %6x:\t%s\n", insts[i].Addr(), insts[i].Text())
	}
	return nil
}
