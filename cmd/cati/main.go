// Command cati is the end-user tool: given a trained model and a stripped
// binary, it locates variables and infers their C types; it can also strip
// binaries and disassemble them (objdump-style) using the built-in
// substrate.
//
// Usage:
//
//	cati infer    -model cati.model binary.stripped.elf
//	cati annotate -model cati.model binary.stripped.elf
//	cati strip    in.elf out.elf
//	cati disasm   binary.elf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/vareco"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cati:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cati <infer|annotate|strip|disasm> [flags] <file...>")
	}
	switch args[0] {
	case "infer":
		return inferCmd(args[1:])
	case "annotate":
		return annotateCmd(args[1:])
	case "strip":
		return stripCmd(args[1:])
	case "disasm":
		return disasmCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func inferCmd(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	workers := fs.Int("workers", 0, "worker goroutines (0: CATI_WORKERS env, else GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cati infer -model m binary.elf")
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = *workers
	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	vars, err := cati.InferImage(img)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s  %-8s  %-5s  %-5s  %s\n", "FUNC", "SLOT", "SIZE", "VUCS", "TYPE")
	for _, v := range vars {
		fmt.Printf("%#-10x  %-8d  %-5d  %-5d  %s\n", v.FuncLow, v.Slot, v.Size, v.NumVUCs, v.Class)
	}
	fmt.Printf("%d variables\n", len(vars))
	return nil
}

// annotateCmd prints the disassembly of a stripped binary with inferred
// variable types inline — the reverse-engineering view the paper's
// Figure 2 motivates.
func annotateCmd(args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	workers := fs.Int("workers", 0, "worker goroutines (0: CATI_WORKERS env, else GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cati annotate -model m binary.elf")
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = *workers
	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	vars, err := cati.InferBinary(bin)
	if err != nil {
		return err
	}

	// Index inferred types by (function, slot) and by global address.
	bySlot := make(map[slotKey]core.InferredVar)
	byAddr := make(map[uint64]core.InferredVar)
	for _, v := range vars {
		if v.Global {
			byAddr[v.FuncLow] = v
		} else {
			bySlot[slotKey{v.FuncLow, v.Slot}] = v
		}
	}

	rec, err := vareco.Recover(bin)
	if err != nil {
		return err
	}
	for fi := range rec.Funcs {
		f := &rec.Funcs[fi]
		fmt.Printf("\n%016x <func_%x>:\n", f.Low, f.Low)
		for i := f.InstLo; i < f.InstHi; i++ {
			in := &rec.Insts[i]
			note := ""
			if m, ok := in.MemArg(); ok {
				switch {
				case m.Base == f.FrameReg:
					if v, ok := findCovering(bySlot, f.Low, m.Disp); ok {
						note = "   ; " + v.Class.String()
					}
				case m.Base == asm.RegNone && m.Index == asm.RegNone:
					if v, ok := byAddr[uint64(uint32(m.Disp))]; ok {
						note = "   ; " + v.Class.String() + " (global)"
					}
				}
			}
			fmt.Printf("  %6x:\t%-40s%s\n", in.Addr, asm.Print(in), note)
		}
	}
	return nil
}

// slotKey addresses a stack variable for annotation lookup.
type slotKey struct {
	fn   uint64
	slot int32
}

// findCovering locates the inferred variable whose slot interval covers
// the displacement.
func findCovering(bySlot map[slotKey]core.InferredVar, fn uint64, disp int32) (core.InferredVar, bool) {
	// Exact hit first, then interior bytes of wider slots.
	if v, ok := bySlot[slotKey{fn, disp}]; ok {
		return v, true
	}
	for k, v := range bySlot {
		if k.fn == fn && disp >= k.slot && disp < k.slot+int32(v.Size) {
			return v, true
		}
	}
	return core.InferredVar{}, false
}

func stripCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: cati strip in.elf out.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	out, err := elfx.Write(elfx.Strip(bin))
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], out, 0o644); err != nil {
		return err
	}
	fmt.Printf("stripped %s → %s (%d → %d bytes)\n", args[0], args[1], len(img), len(out))
	return nil
}

func disasmCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cati disasm binary.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	text, err := bin.Text()
	if err != nil {
		return err
	}
	insts, err := asm.DecodeAll(text.Data, text.Addr)
	if err != nil {
		return err
	}
	for i := range insts {
		if sym, ok := bin.SymbolAt(insts[i].Addr); ok && sym.Addr == insts[i].Addr {
			fmt.Printf("\n%016x <%s>:\n", sym.Addr, sym.Name)
		}
		fmt.Printf("  %6x:\t%s\n", insts[i].Addr, asm.Print(&insts[i]))
	}
	return nil
}
