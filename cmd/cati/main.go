// Command cati is the end-user tool: given a trained model and a stripped
// binary, it locates variables and infers their C types; it can also strip
// binaries and disassemble them (objdump-style) using the built-in
// substrate.
//
// Usage:
//
//	cati infer    -model cati.model binary.stripped.elf [more.elf ...]
//	cati infer    -json -trace -timeout 30s -model cati.model binary.elf
//	cati annotate -model cati.model binary.stripped.elf
//	cati strip    in.elf out.elf
//	cati disasm   binary.elf
//
// infer accepts multiple binaries and fans them out over the worker pool
// (core.InferBatch). -timeout and Ctrl-C cancel at the next stage/shard
// boundary; -trace prints the per-stage wall-time breakdown on exit, and
// -json emits one machine-readable record per inferred variable (plus a
// trailing trace record when -trace is set).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/cliflags"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/obs"
	"repro/internal/vareco"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cati:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cati <infer|annotate|strip|disasm> [flags] <file...>")
	}
	switch args[0] {
	case "infer":
		return inferCmd(args[1:])
	case "annotate":
		return annotateCmd(args[1:])
	case "strip":
		return stripCmd(args[1:])
	case "disasm":
		return disasmCmd(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func inferCmd(args []string) error {
	fs := flag.NewFlagSet("infer", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	jsonOut := fs.Bool("json", false, "emit one JSON record per inferred variable (JSON lines)")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: cati infer -model m binary.elf [more.elf ...]")
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = rt.Workers
	trace := rt.NewTrace()
	cati.Pipeline.Cfg.Trace = trace

	ctx, stop := rt.Context()
	defer stop()

	bins := make([]*elfx.Binary, fs.NArg())
	for i := 0; i < fs.NArg(); i++ {
		img, err := os.ReadFile(fs.Arg(i))
		if err != nil {
			return err
		}
		if bins[i], err = elfx.Read(img); err != nil {
			return fmt.Errorf("%s: %w", fs.Arg(i), err)
		}
	}
	results, err := cati.InferBatch(ctx, bins)
	if err != nil {
		if !*jsonOut {
			cliflags.PrintTrace(os.Stdout, trace)
		}
		return err
	}

	if *jsonOut {
		return printJSON(os.Stdout, fs, results, trace)
	}
	total := 0
	for bi, vars := range results {
		if len(results) > 1 {
			fmt.Printf("== %s\n", fs.Arg(bi))
		}
		fmt.Printf("%-10s  %-8s  %-5s  %-5s  %s\n", "FUNC", "SLOT", "SIZE", "VUCS", "TYPE")
		for _, v := range vars {
			fmt.Printf("%#-10x  %-8d  %-5d  %-5d  %s\n", v.FuncLow, v.Slot, v.Size, v.NumVUCs, v.Class)
		}
		total += len(vars)
	}
	fmt.Printf("%d variables\n", total)
	cliflags.PrintTrace(os.Stdout, trace)
	return nil
}

// varRecord is the machine-readable form of one inferred variable
// (`cati infer -json`, one JSON object per line).
type varRecord struct {
	Binary  string `json:"binary"`
	FuncLow uint64 `json:"func_low"`
	Slot    int32  `json:"slot"`
	Global  bool   `json:"global"`
	Size    int    `json:"size"`
	NumVUCs int    `json:"num_vucs"`
	Class   string `json:"class"`
}

// stageRecord is the machine-readable form of one traced stage.
type stageRecord struct {
	Stage   string `json:"stage"`
	WallNs  int64  `json:"wall_ns"`
	Items   int    `json:"items"`
	Workers int    `json:"workers"`
}

// printJSON writes one varRecord line per inferred variable and, when
// tracing is on, a final {"trace": [...]} line with the stage breakdown.
func printJSON(w *os.File, fs *flag.FlagSet, results [][]core.InferredVar, trace *obs.Trace) error {
	enc := json.NewEncoder(w)
	for bi, vars := range results {
		for _, v := range vars {
			rec := varRecord{
				Binary:  fs.Arg(bi),
				FuncLow: v.FuncLow,
				Slot:    v.Slot,
				Global:  v.Global,
				Size:    v.Size,
				NumVUCs: v.NumVUCs,
				Class:   v.Class.String(),
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	if trace != nil {
		stages := trace.Stages()
		recs := make([]stageRecord, len(stages))
		for i, s := range stages {
			recs[i] = stageRecord{Stage: s.Name, WallNs: s.Wall.Nanoseconds(), Items: s.Items, Workers: s.Workers}
		}
		if err := enc.Encode(map[string][]stageRecord{"trace": recs}); err != nil {
			return err
		}
	}
	return nil
}

// annotateCmd prints the disassembly of a stripped binary with inferred
// variable types inline — the reverse-engineering view the paper's
// Figure 2 motivates.
func annotateCmd(args []string) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	model := fs.String("model", "cati.model", "trained model file")
	rt := cliflags.AddRuntime(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cati annotate -model m binary.elf")
	}
	blob, err := os.ReadFile(*model)
	if err != nil {
		return err
	}
	cati, err := core.Load(blob)
	if err != nil {
		return err
	}
	cati.Pipeline.Cfg.Workers = rt.Workers
	trace := rt.NewTrace()
	cati.Pipeline.Cfg.Trace = trace
	defer cliflags.PrintTrace(os.Stdout, trace)

	ctx, stop := rt.Context()
	defer stop()

	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	vars, err := cati.InferBinaryCtx(ctx, bin)
	if err != nil {
		return err
	}

	// Index inferred types by (function, slot) and by global address.
	bySlot := make(map[slotKey]core.InferredVar)
	byAddr := make(map[uint64]core.InferredVar)
	for _, v := range vars {
		if v.Global {
			byAddr[v.FuncLow] = v
		} else {
			bySlot[slotKey{v.FuncLow, v.Slot}] = v
		}
	}

	rec, err := vareco.Recover(bin)
	if err != nil {
		return err
	}
	for fi := range rec.Funcs {
		f := &rec.Funcs[fi]
		fmt.Printf("\n%016x <func_%x>:\n", f.Low, f.Low)
		for i := f.InstLo; i < f.InstHi; i++ {
			in := &rec.Insts[i]
			note := ""
			if m, ok := in.MemArg(); ok {
				switch {
				case m.Base == f.FrameReg:
					if v, ok := findCovering(bySlot, f.Low, m.Disp); ok {
						note = "   ; " + v.Class.String()
					}
				case m.Base == asm.RegNone && m.Index == asm.RegNone:
					if v, ok := byAddr[uint64(uint32(m.Disp))]; ok {
						note = "   ; " + v.Class.String() + " (global)"
					}
				}
			}
			fmt.Printf("  %6x:\t%-40s%s\n", in.Addr, asm.Print(in), note)
		}
	}
	return nil
}

// slotKey addresses a stack variable for annotation lookup.
type slotKey struct {
	fn   uint64
	slot int32
}

// findCovering locates the inferred variable whose slot interval covers
// the displacement.
func findCovering(bySlot map[slotKey]core.InferredVar, fn uint64, disp int32) (core.InferredVar, bool) {
	// Exact hit first, then interior bytes of wider slots.
	if v, ok := bySlot[slotKey{fn, disp}]; ok {
		return v, true
	}
	for k, v := range bySlot {
		if k.fn == fn && disp >= k.slot && disp < k.slot+int32(v.Size) {
			return v, true
		}
	}
	return core.InferredVar{}, false
}

func stripCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: cati strip in.elf out.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	out, err := elfx.Write(elfx.Strip(bin))
	if err != nil {
		return err
	}
	if err := os.WriteFile(args[1], out, 0o644); err != nil {
		return err
	}
	fmt.Printf("stripped %s → %s (%d → %d bytes)\n", args[0], args[1], len(img), len(out))
	return nil
}

func disasmCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cati disasm binary.elf")
	}
	img, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	bin, err := elfx.Read(img)
	if err != nil {
		return err
	}
	text, err := bin.Text()
	if err != nil {
		return err
	}
	insts, err := asm.DecodeAll(text.Data, text.Addr)
	if err != nil {
		return err
	}
	for i := range insts {
		if sym, ok := bin.SymbolAt(insts[i].Addr); ok && sym.Addr == insts[i].Addr {
			fmt.Printf("\n%016x <%s>:\n", sym.Addr, sym.Name)
		}
		fmt.Printf("  %6x:\t%s\n", insts[i].Addr, asm.Print(&insts[i]))
	}
	return nil
}
