// Package repro's root benchmark harness: one benchmark per paper table
// and figure (DESIGN.md experiments E1–E11) plus the ablations of §5.
// Each benchmark runs its experiment through a process-wide shared
// environment, so corpora and trained pipelines are built once; the first
// benchmark to need them pays the cost.
//
// The tables are logged, so `go test -bench=. -benchmem` doubles as the
// paper-reproduction report generator.
//
// Scale: set CATI_BENCH_SCALE=default for the full-size run (tens of
// minutes on one core); the default "bench" scale reproduces every shape
// in a few minutes.
package repro

import (
	"os"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// benchScale sits between QuickScale and DefaultScale: full paper
// architecture, moderate corpus.
func benchScale() experiments.Scale {
	switch os.Getenv("CATI_BENCH_SCALE") {
	case "default":
		return experiments.DefaultScale()
	case "quick":
		return experiments.QuickScale()
	}
	return experiments.Scale{
		TrainBinaries: 16,
		AppBinaries:   1,
		Window:        10,
		Cfg: classify.Config{
			Window:      10,
			MaxPerStage: 2500,
			Train:       nn.TrainConfig{Epochs: 2, Batch: 64, LR: 1e-3},
			W2V:         word2vec.Config{Epochs: 2},
			Seed:        7,
		},
		Seed: 7,
	}
}

func sharedEnv() *experiments.Env {
	benchOnce.Do(func() { benchEnv = experiments.NewEnv(benchScale()) })
	return benchEnv
}

func benchTable(b *testing.B, f func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tab.Format())
		}
	}
}

// BenchmarkTable1 regenerates Table I (E1): orphan variables and uncertain
// samples in the training and testing sets.
func BenchmarkTable1(b *testing.B) { benchTable(b, sharedEnv().Table1) }

// BenchmarkClustering regenerates the §II-B same-type clustering survey
// (E11).
func BenchmarkClustering(b *testing.B) { benchTable(b, sharedEnv().Clustering) }

// BenchmarkTable3 regenerates Table III (E2): per-stage VUC-granularity
// P/R/F1 per application.
func BenchmarkTable3(b *testing.B) { benchTable(b, sharedEnv().Table3) }

// BenchmarkTable4 regenerates Table IV (E3): per-stage variable-granularity
// metrics after voting.
func BenchmarkTable4(b *testing.B) { benchTable(b, sharedEnv().Table4) }

// BenchmarkTable5 regenerates Table V (E4): per-type stage recalls,
// accuracy, support and clustering statistics.
func BenchmarkTable5(b *testing.B) { benchTable(b, sharedEnv().Table5) }

// BenchmarkTable6 regenerates Table VI (E5): per-application accuracy at
// VUC and variable granularity.
func BenchmarkTable6(b *testing.B) { benchTable(b, sharedEnv().Table6) }

// BenchmarkTable7 regenerates Table VII (E6): the Clang-transfer
// experiment.
func BenchmarkTable7(b *testing.B) { benchTable(b, sharedEnv().Table7) }

// BenchmarkFigure6 regenerates Figure 6 (E7): the occlusion-importance
// distribution.
func BenchmarkFigure6(b *testing.B) {
	benchTable(b, func() (*experiments.Table, error) { return sharedEnv().Figure6(120) })
}

// BenchmarkDebinComparison regenerates the §VII-B DEBIN comparison (E8).
func BenchmarkDebinComparison(b *testing.B) { benchTable(b, sharedEnv().DebinComparison) }

// BenchmarkCompilerID regenerates the §VIII compiler-identification
// experiment (E9).
func BenchmarkCompilerID(b *testing.B) { benchTable(b, sharedEnv().CompilerID) }

// BenchmarkPerBinary measures the end-to-end per-binary inference phases
// (E10; paper: ≈6 s/binary on their IDA-based extraction).
func BenchmarkPerBinary(b *testing.B) { benchTable(b, sharedEnv().Timing) }

// --- ablations (DESIGN.md §5), each row retrains a pipeline ---

func ablEnv() *experiments.Env { return experiments.NewEnv(experiments.AblationScale()) }

// BenchmarkAblationWindow sweeps the context window size w.
func BenchmarkAblationWindow(b *testing.B) {
	e := ablEnv()
	benchTable(b, func() (*experiments.Table, error) { return e.AblationWindow([]int{0, 2, 5, 10}) })
}

// BenchmarkAblationClamp sweeps the voting confidence clamp.
func BenchmarkAblationClamp(b *testing.B) {
	e := sharedEnv()
	benchTable(b, func() (*experiments.Table, error) { return e.AblationClamp([]float64{0, 0.8, 0.9, 0.95}) })
}

// BenchmarkAblationGeneralize toggles operand generalization.
func BenchmarkAblationGeneralize(b *testing.B) {
	e := ablEnv()
	benchTable(b, e.AblationGeneralize)
}

// BenchmarkAblationEmbedDim sweeps the token embedding dimensionality.
func BenchmarkAblationEmbedDim(b *testing.B) {
	e := ablEnv()
	benchTable(b, func() (*experiments.Table, error) { return e.AblationEmbedDim([]int{8, 16, 32}) })
}

// BenchmarkAblationFlatVsTree compares the stage tree with a flat 19-way
// classifier.
func BenchmarkAblationFlatVsTree(b *testing.B) {
	e := ablEnv()
	benchTable(b, e.AblationFlatVsTree)
}

// --- substrate micro-benchmarks ---

// BenchmarkCompileBinary measures the simulated toolchain: generate +
// compile + link one program.
func BenchmarkCompileBinary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := synth.Generate(synth.DefaultProfile("bench"), int64(i))
		if _, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: i % 4, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferBinary measures core.InferBinary end to end with a small
// trained model.
func BenchmarkInferBinary(b *testing.B) {
	c, err := corpus.Build(corpus.BuildConfig{
		Name: "bench-train", Binaries: 4,
		Profile: synth.DefaultProfile("bt"), Window: 5, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 8, Conv2: 8, Hidden: 64,
		MaxPerStage: 1000,
		Train:       nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:         word2vec.Config{Epochs: 1},
		Seed:        5,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := synth.Generate(synth.DefaultProfile("bi"), 11)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	bin := elfx.Strip(res.Binary)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cati.InferBinary(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrphans isolates the paper's central claim: accuracy on orphan
// variables, CATI vs the dependency-only baseline.
func BenchmarkOrphans(b *testing.B) { benchTable(b, sharedEnv().Orphans) }

// BenchmarkConfusions runs the variable-level error analysis.
func BenchmarkConfusions(b *testing.B) { benchTable(b, sharedEnv().Confusions) }
