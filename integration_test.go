package repro

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/dwarflite"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// TestEndToEndAccuracy runs the complete public pipeline — corpus build,
// training, model save/load, inference on an unseen stripped binary — and
// checks the inferred types against ground truth with a floor well above
// chance (1/19 ≈ 0.05).
func TestEndToEndAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	train, err := corpus.Build(corpus.BuildConfig{
		Name:     "e2e-train",
		Binaries: 10,
		Profile:  synth.DefaultProfile("e2e"),
		Window:   5,
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cati, err := core.Train(train, classify.Config{
		Window: 5,
		Conv1:  8, Conv2: 16, Hidden: 128,
		MaxPerStage: 4000,
		Train:       nn.TrainConfig{Epochs: 2, Batch: 32, LR: 2e-3},
		W2V:         word2vec.Config{Epochs: 2},
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the model through serialization first.
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	cati, err = core.Load(blob)
	if err != nil {
		t.Fatal(err)
	}

	correct, total := 0, 0
	for seed := int64(500); seed < 504; seed++ {
		p := synth.Generate(synth.DefaultProfile("e2e-test"), seed)
		res, err := compile.Compile(p, compile.Options{
			Dialect: compile.GCC, Opt: int(seed % 4), Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		vars, err := cati.InferBinary(elfx.Strip(res.Binary))
		if err != nil {
			t.Fatal(err)
		}
		if len(vars) == 0 {
			t.Fatalf("seed %d: nothing inferred", seed)
		}
		for _, v := range vars {
			want, ok := groundTruth(res.Debug, v)
			if !ok {
				continue
			}
			total++
			if want == v.Class {
				correct++
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d labeled variables across test binaries", total)
	}
	acc := float64(correct) / float64(total)
	t.Logf("end-to-end accuracy: %.3f (%d/%d)", acc, correct, total)
	if acc < 0.35 {
		t.Errorf("end-to-end accuracy %.3f below floor 0.35", acc)
	}
}

func groundTruth(debug *dwarflite.Info, v core.InferredVar) (ctypes.Class, bool) {
	if v.Global {
		g, ok := debug.GlobalAt(v.FuncLow)
		if !ok {
			return 0, false
		}
		c, err := ctypes.ClassOf(g.Type)
		return c, err == nil
	}
	for fi := range debug.Funcs {
		f := &debug.Funcs[fi]
		if f.Low != v.FuncLow {
			continue
		}
		dv, ok := f.VarAt(v.Slot)
		if !ok {
			return 0, false
		}
		c, err := ctypes.ClassOf(dv.Type)
		return c, err == nil
	}
	return 0, false
}

// TestTrainTestConsistency verifies the train-side corpus labeling and the
// inference-side extraction see the same variables: every labeled training
// sample's variable must be rediscoverable by the inference path.
func TestTrainTestConsistency(t *testing.T) {
	p := synth.Generate(synth.DefaultProfile("cons"), 17)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 0, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Build(corpus.BuildConfig{
		Name: "cons", Binaries: 1,
		Profile: synth.DefaultProfile("cons"), Window: 5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if c.NumSamples() == 0 {
		t.Fatal("no samples")
	}
	// Same binary regenerated: corpus sample count must be deterministic.
	c2, err := corpus.Build(corpus.BuildConfig{
		Name: "cons", Binaries: 1,
		Profile: synth.DefaultProfile("cons"), Window: 5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSamples() != c2.NumSamples() {
		t.Errorf("sample counts differ: %d vs %d", c.NumSamples(), c2.NumSamples())
	}
}
