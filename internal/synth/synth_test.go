package synth

import (
	"testing"

	"repro/internal/ctypes"
)

func TestGenerateDeterministic(t *testing.T) {
	p1 := Generate(DefaultProfile("x"), 42)
	p2 := Generate(DefaultProfile("x"), 42)
	if len(p1.Funcs) != len(p2.Funcs) {
		t.Fatalf("func counts differ: %d vs %d", len(p1.Funcs), len(p2.Funcs))
	}
	for i := range p1.Funcs {
		if p1.Funcs[i].Name != p2.Funcs[i].Name ||
			len(p1.Funcs[i].Locals) != len(p2.Funcs[i].Locals) ||
			len(p1.Funcs[i].Body) != len(p2.Funcs[i].Body) {
			t.Fatalf("function %d differs between same-seed runs", i)
		}
	}
	p3 := Generate(DefaultProfile("x"), 43)
	same := len(p1.Funcs) == len(p3.Funcs)
	if same {
		for i := range p1.Funcs {
			if len(p1.Funcs[i].Body) != len(p3.Funcs[i].Body) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced structurally identical programs")
	}
}

func TestGeneratedShape(t *testing.T) {
	prof := DefaultProfile("shape")
	p := Generate(prof, 7)
	if len(p.Funcs) < prof.FuncsMin || len(p.Funcs) > prof.FuncsMax {
		t.Fatalf("func count %d outside [%d,%d]", len(p.Funcs), prof.FuncsMin, prof.FuncsMax)
	}
	for _, f := range p.Funcs {
		if len(f.Locals) == 0 {
			t.Errorf("%s: no locals", f.Name)
		}
		if len(f.Body) == 0 {
			t.Errorf("%s: empty body", f.Name)
		}
		for _, d := range f.Locals {
			if _, err := d.Class(); err != nil {
				t.Errorf("%s: local %s unclassifiable: %v", f.Name, d.Name, err)
			}
		}
	}
}

func TestClassCoverageAcrossSeeds(t *testing.T) {
	// Over enough seeds the generator must exercise every one of the 19
	// classes (weights are all positive in the default profile).
	seen := make(map[ctypes.Class]bool)
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(DefaultProfile("cov"), seed)
		for _, f := range p.Funcs {
			for _, d := range f.Locals {
				c, err := d.Class()
				if err != nil {
					t.Fatal(err)
				}
				seen[c] = true
			}
		}
	}
	for _, c := range ctypes.AllClasses() {
		if !seen[c] {
			t.Errorf("class %s never generated in 60 seeds", c)
		}
	}
}

func TestProfilesDistinct(t *testing.T) {
	apps := TestApps()
	if len(apps) != 12 {
		t.Fatalf("apps = %d, want 12", len(apps))
	}
	names := make(map[string]bool)
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app %s", a.Name)
		}
		names[a.Name] = true
		if a.Scale <= 0 {
			t.Errorf("%s: non-positive scale", a.Name)
		}
	}
	// The float-free applications must have zero float-family weight.
	for _, a := range apps {
		switch a.Name {
		case "gzip", "nano", "sed":
			if a.Weights[ctypes.ClassFloat] != 0 || a.Weights[ctypes.ClassDouble] != 0 {
				t.Errorf("%s: expected no float weight", a.Name)
			}
		case "R":
			if a.Weights[ctypes.ClassDouble] < 10 {
				t.Errorf("R: expected heavy double weight")
			}
		}
	}
}

func TestTypeOfExpr(t *testing.T) {
	st := ctypes.StructOf("s",
		ctypes.Field{Name: "a", Type: ctypes.Int},
		ctypes.Field{Name: "b", Type: ctypes.Double},
	)
	sv := &VarDecl{Name: "s", Type: st}
	pv := &VarDecl{Name: "p", Type: ctypes.PointerTo(st)}
	av := &VarDecl{Name: "arr", Type: ctypes.ArrayOf(ctypes.Char, 8)}
	dv := &VarDecl{Name: "dp", Type: ctypes.PointerTo(ctypes.Long)}
	iv := &VarDecl{Name: "i", Type: ctypes.Int}

	tests := []struct {
		e    Expr
		want string
	}{
		{&VarRef{Decl: iv}, "int"},
		{&FieldRef{Base: sv, Field: 1}, "double"},
		{&PtrFieldRef{Ptr: pv, Field: 0}, "int"},
		{&IndexRef{Arr: av, Idx: &IntLit{Value: 0}}, "char"},
		{&DerefRef{Ptr: dv}, "long int"},
		{&IntLit{Value: 3}, "int"},
		{&FloatLit{Value: 1.5, Type: ctypes.Float}, "float"},
		{&Binary{Op: OpAdd, L: &VarRef{Decl: iv}, R: &IntLit{Value: 1}}, "int"},
		{&Cmp{Op: CmpEq, L: &VarRef{Decl: iv}, R: &IntLit{Value: 1}}, "int"},
		{&AddrOf{Target: &VarRef{Decl: iv}}, "int*"},
		{&Cast{To: ctypes.ULong, X: &VarRef{Decl: iv}}, "long unsigned int"},
		{&Call{Name: "strlen", Result: ctypes.ULong}, "long unsigned int"},
	}
	for _, tt := range tests {
		if got := TypeOfExpr(tt.e).String(); got != tt.want {
			t.Errorf("TypeOfExpr(%T) = %s, want %s", tt.e, got, tt.want)
		}
	}
}

func TestOrphanAndRichVariablesBothOccur(t *testing.T) {
	// EventsMin=1 must yield some single-event variables (future orphans)
	// and EventsMax>1 some multi-event ones.
	prof := DefaultProfile("orphan")
	p := Generate(prof, 3)
	uses := make(map[*VarDecl]int)
	for _, f := range p.Funcs {
		walkCount(f.Body, uses)
	}
	single, multi := 0, 0
	for _, f := range p.Funcs {
		for _, d := range f.Locals {
			switch {
			case uses[d] <= 2:
				single++
			case uses[d] > 2:
				multi++
			}
		}
	}
	if single == 0 || multi == 0 {
		t.Errorf("usage spread: %d sparse, %d rich — want both nonzero", single, multi)
	}
}

func walkCount(stmts []Stmt, uses map[*VarDecl]int) {
	var expr func(e Expr)
	expr = func(e Expr) {
		switch x := e.(type) {
		case *VarRef:
			uses[x.Decl]++
		case *FieldRef:
			uses[x.Base]++
		case *PtrFieldRef:
			uses[x.Ptr]++
		case *IndexRef:
			uses[x.Arr]++
			expr(x.Idx)
		case *DerefRef:
			uses[x.Ptr]++
		case *Binary:
			expr(x.L)
			expr(x.R)
		case *Cmp:
			expr(x.L)
			expr(x.R)
		case *AddrOf:
			expr(x.Target)
		case *Cast:
			expr(x.X)
		case *Call:
			for _, a := range x.Args {
				expr(a)
			}
		}
	}
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			expr(x.LHS)
			expr(x.RHS)
		case *If:
			expr(x.Cond)
			walkCount(x.Then, uses)
			walkCount(x.Else, uses)
		case *While:
			expr(x.Cond)
			walkCount(x.Body, uses)
		case *For:
			if x.Init != nil {
				walkCount([]Stmt{x.Init}, uses)
			}
			expr(x.Cond)
			if x.Post != nil {
				walkCount([]Stmt{x.Post}, uses)
			}
			walkCount(x.Body, uses)
		case *Return:
			if x.Value != nil {
				expr(x.Value)
			}
		case *ExprStmt:
			expr(x.X)
		}
	}
}
