package synth

import "repro/internal/ctypes"

// AppProfile describes one of the twelve benchmark applications from the
// paper's test set (Table VI). Scale is a relative size multiplier used by
// the corpus builder to decide how many program units to generate; the
// paper's supports range from gzip (725 variables) to R (93,495).
type AppProfile struct {
	Profile
	Scale float64
}

// perturb returns the default weights with a few classes re-weighted, so
// applications have distinct type mixes the way real projects do.
func perturb(overrides map[ctypes.Class]float64) map[ctypes.Class]float64 {
	w := DefaultWeights()
	for c, v := range overrides {
		w[c] = v
	}
	return w
}

// TestApps returns the twelve benchmark application profiles. The weight
// tweaks follow the paper's observations: R has the most pointer VUCs and
// over 10,000 float-family variables; gzip, nano and sed have no
// float-family variables at all; bash has almost no floats (a single
// float-family variable in Table III's Stage 3-2 discussion).
func TestApps() []AppProfile {
	mk := func(name string, scale float64, overrides map[ctypes.Class]float64) AppProfile {
		p := DefaultProfile(name)
		p.Weights = perturb(overrides)
		return AppProfile{Profile: p, Scale: scale}
	}
	noFloat := map[ctypes.Class]float64{
		ctypes.ClassFloat: 0, ctypes.ClassDouble: 0, ctypes.ClassLongDouble: 0,
	}
	return []AppProfile{
		mk("bash", 1.6, map[ctypes.Class]float64{
			ctypes.ClassFloat: 0.02, ctypes.ClassDouble: 0.05, ctypes.ClassLongDouble: 0,
			ctypes.ClassPtrStruct: 26, ctypes.ClassChar: 5,
		}),
		mk("bison", 0.6, map[ctypes.Class]float64{
			ctypes.ClassEnum: 5, ctypes.ClassStruct: 8, ctypes.ClassDouble: 0.4,
		}),
		mk("cflow", 0.25, map[ctypes.Class]float64{
			ctypes.ClassPtrStruct: 28, ctypes.ClassChar: 5, ctypes.ClassDouble: 0.3,
		}),
		mk("gawk", 1.1, map[ctypes.Class]float64{
			ctypes.ClassDouble: 3, ctypes.ClassPtrArith: 9, ctypes.ClassULong: 7,
		}),
		mk("grep", 0.5, map[ctypes.Class]float64{
			ctypes.ClassChar: 7, ctypes.ClassUChar: 2, ctypes.ClassULong: 8,
			ctypes.ClassDouble: 0.2,
		}),
		mk("gzip", 0.12, perturbInto(noFloat, map[ctypes.Class]float64{
			ctypes.ClassUChar: 3, ctypes.ClassUInt: 6, ctypes.ClassULong: 7,
		})),
		mk("inetutils", 2.6, map[ctypes.Class]float64{
			ctypes.ClassStruct: 9, ctypes.ClassPtrStruct: 24, ctypes.ClassDouble: 0.5,
		}),
		mk("less", 0.22, map[ctypes.Class]float64{
			ctypes.ClassInt: 30, ctypes.ClassChar: 6, ctypes.ClassDouble: 0.3,
		}),
		mk("nano", 0.55, perturbInto(noFloat, map[ctypes.Class]float64{
			ctypes.ClassBool: 4, ctypes.ClassPtrStruct: 24,
		})),
		mk("R", 7.5, map[ctypes.Class]float64{
			ctypes.ClassDouble: 14, ctypes.ClassFloat: 0.5, ctypes.ClassLongDouble: 0.8,
			ctypes.ClassPtrStruct: 28, ctypes.ClassPtrArith: 9,
		}),
		mk("sed", 0.35, perturbInto(noFloat, map[ctypes.Class]float64{
			ctypes.ClassChar: 6, ctypes.ClassPtrArith: 9,
		})),
		mk("wget", 0.9, map[ctypes.Class]float64{
			ctypes.ClassChar: 5, ctypes.ClassLong: 6, ctypes.ClassDouble: 0.6,
		}),
	}
}

func perturbInto(a, b map[ctypes.Class]float64) map[ctypes.Class]float64 {
	out := make(map[ctypes.Class]float64, len(a)+len(b))
	for c, v := range a {
		out[c] = v
	}
	for c, v := range b {
		out[c] = v
	}
	return out
}
