// Package synth generates synthetic C-like programs with typed variables.
// It is the corpus substitute for the paper's 2141 GCC-built open-source
// binaries: the generator produces function bodies whose statements use
// each variable the way real C code uses values of its type (loop counters,
// byte buffers, struct field initialization runs, pointer dereference
// chains, …), so the compiled instruction stream carries the same
// type↔instruction-pattern coupling — including the paper's two noise
// sources, *orphan variables* (variables touched by only one or two
// instructions) and *uncertain samples* (identical generalized instructions
// with different types).
package synth

import (
	"fmt"

	"repro/internal/ctypes"
)

// Program is one synthetic compilation unit ("binary source").
type Program struct {
	Name    string
	Globals []*VarDecl
	Funcs   []*Function
}

// Function is a C function definition.
type Function struct {
	Name   string
	Params []*VarDecl
	Locals []*VarDecl
	Body   []Stmt
	// Return is the return type; nil means void.
	Return *ctypes.Type
}

// VarDecl declares a parameter, local, or global variable.
type VarDecl struct {
	Name string
	Type *ctypes.Type
	// Global marks file-scope variables living in the data section.
	Global bool
}

// Class returns the CATI class of the declared type.
func (d *VarDecl) Class() (ctypes.Class, error) {
	c, err := ctypes.ClassOf(d.Type)
	if err != nil {
		return 0, fmt.Errorf("synth: var %s: %w", d.Name, err)
	}
	return c, nil
}

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ isStmt() }

// Assign stores the value of RHS into LHS.
type Assign struct {
	LHS LValue
	RHS Expr
}

// If branches on a comparison.
type If struct {
	Cond Expr // must evaluate to a truth value (Cmp or scalar read)
	Then []Stmt
	Else []Stmt
}

// While loops while Cond holds.
type While struct {
	Cond Expr
	Body []Stmt
}

// For is the classic counted loop: Init; Cond; Post.
type For struct {
	Init Stmt // may be nil
	Cond Expr
	Post Stmt // may be nil
	Body []Stmt
}

// Return exits the function, optionally with a value.
type Return struct {
	Value Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X Expr
}

func (*Assign) isStmt()   {}
func (*If) isStmt()       {}
func (*While) isStmt()    {}
func (*For) isStmt()      {}
func (*Return) isStmt()   {}
func (*ExprStmt) isStmt() {}

// --- Expressions ---

// Expr is an expression node. The generator keeps expressions shallow:
// Binary/Cmp operands are atoms (variable reads or literals), which keeps
// the code generator single-pass while producing realistic instruction
// sequences.
type Expr interface{ isExpr() }

// LValue is an assignable location.
type LValue interface {
	Expr
	isLValue()
}

// VarRef reads (or addresses) a declared variable.
type VarRef struct {
	Decl *VarDecl
}

// FieldRef accesses a field of a struct-typed local: base.f.
type FieldRef struct {
	Base  *VarDecl // struct-typed local
	Field int      // field index
}

// PtrFieldRef accesses a field through a struct pointer: p->f.
type PtrFieldRef struct {
	Ptr   *VarDecl // pointer-to-struct local
	Field int
}

// IndexRef accesses arr[idx] where arr is an array-typed local and idx an
// integer-typed local or literal.
type IndexRef struct {
	Arr *VarDecl
	Idx Expr // VarRef (integer) or IntLit
}

// DerefRef accesses *p for a pointer-typed local.
type DerefRef struct {
	Ptr *VarDecl
	// Off is a constant element offset: *(p + Off). Zero for plain deref.
	Off int
}

func (*VarRef) isExpr()      {}
func (*FieldRef) isExpr()    {}
func (*PtrFieldRef) isExpr() {}
func (*IndexRef) isExpr()    {}
func (*DerefRef) isExpr()    {}

func (*VarRef) isLValue()      {}
func (*FieldRef) isLValue()    {}
func (*PtrFieldRef) isLValue() {}
func (*IndexRef) isLValue()    {}
func (*DerefRef) isLValue()    {}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	// Type gives the literal's C type (defaults to int when nil).
	Type *ctypes.Type
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value float64
	Type  *ctypes.Type // Float, Double or LongDouble
}

func (*IntLit) isExpr()   {}
func (*FloatLit) isExpr() {}

// BinOp is a binary arithmetic/bitwise operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

// Binary applies Op to two atom operands.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota + 1
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Cmp compares two atom operands, yielding a truth value.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// AddrOf takes the address of a local variable (&v).
type AddrOf struct {
	Target LValue
}

// Call invokes a function by name. Callee may be a program-local function
// or an external ("libc") symbol.
type Call struct {
	Name string
	Args []Expr
	// Extern marks calls to functions outside the program (resolved to
	// stub addresses at link time).
	Extern bool
	// Result is the callee's return type (nil = void).
	Result *ctypes.Type
}

// Cast converts an atom to another arithmetic type.
type Cast struct {
	To *ctypes.Type
	X  Expr
}

func (*Binary) isExpr() {}
func (*Cmp) isExpr()    {}
func (*AddrOf) isExpr() {}
func (*Call) isExpr()   {}
func (*Cast) isExpr()   {}

// TypeOfExpr computes the static type of an expression (post-promotion for
// Binary). Returns nil for truth values produced by Cmp (conceptually int).
func TypeOfExpr(e Expr) *ctypes.Type {
	switch x := e.(type) {
	case *VarRef:
		return x.Decl.Type
	case *FieldRef:
		st := x.Base.Type.ResolveBase()
		if st.Kind == ctypes.KindArray {
			st = st.Elem.ResolveBase()
		}
		return st.Fields[x.Field].Type
	case *PtrFieldRef:
		st := x.Ptr.Type.ResolveBase().Elem.ResolveBase()
		return st.Fields[x.Field].Type
	case *IndexRef:
		return x.Arr.Type.ResolveBase().Elem
	case *DerefRef:
		return x.Ptr.Type.ResolveBase().Elem
	case *IntLit:
		if x.Type != nil {
			return x.Type
		}
		return ctypes.Int
	case *FloatLit:
		if x.Type != nil {
			return x.Type
		}
		return ctypes.Double
	case *Binary:
		return TypeOfExpr(x.L)
	case *Cmp:
		return ctypes.Int
	case *AddrOf:
		return ctypes.PointerTo(TypeOfExpr(x.Target))
	case *Call:
		return x.Result
	case *Cast:
		return x.To
	default:
		return nil
	}
}
