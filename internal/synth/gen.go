package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/ctypes"
)

// Profile controls what a generated program looks like: its per-class
// variable distribution and its size. The twelve test applications use
// distinct profiles mirroring the support skews of the paper's Table VI.
type Profile struct {
	Name string
	// Weights is the sampling weight of each CATI class for locals.
	Weights map[ctypes.Class]float64
	// FuncsMin/FuncsMax bound the number of functions per program.
	FuncsMin, FuncsMax int
	// EventsMin/EventsMax bound the usage events per variable; events are
	// what become target instructions, so the low end produces the paper's
	// orphan variables.
	EventsMin, EventsMax int
	// LocalsMin/LocalsMax bound locals per function.
	LocalsMin, LocalsMax int
}

// DefaultWeights mirrors the corpus-wide type skew of the paper's Table V
// supports (struct* and int dominate; float and short are rare).
func DefaultWeights() map[ctypes.Class]float64 {
	return map[ctypes.Class]float64{
		ctypes.ClassPtrStruct:  22,
		ctypes.ClassInt:        23,
		ctypes.ClassDouble:     8,
		ctypes.ClassStruct:     6,
		ctypes.ClassULong:      5,
		ctypes.ClassLong:       4.5,
		ctypes.ClassPtrVoid:    3,
		ctypes.ClassPtrArith:   7,
		ctypes.ClassChar:       3.2,
		ctypes.ClassEnum:       2.4,
		ctypes.ClassUInt:       2,
		ctypes.ClassBool:       1.6,
		ctypes.ClassUChar:      0.7,
		ctypes.ClassLongDouble: 0.35,
		ctypes.ClassUShort:     0.3,
		ctypes.ClassShort:      0.25,
		ctypes.ClassLongLong:   0.15,
		ctypes.ClassULongLong:  0.15,
		ctypes.ClassFloat:      0.1,
	}
}

// DefaultProfile returns the corpus-wide default generation profile.
func DefaultProfile(name string) Profile {
	return Profile{
		Name:      name,
		Weights:   DefaultWeights(),
		FuncsMin:  6,
		FuncsMax:  14,
		EventsMin: 1,
		EventsMax: 6,
		LocalsMin: 4,
		LocalsMax: 12,
	}
}

// externFuncs are the fake libc symbols programs may call.
var externFuncs = []struct {
	name   string
	result *ctypes.Type
}{
	{"memcpy", ctypes.PointerTo(ctypes.Void)},
	{"memset", ctypes.PointerTo(ctypes.Void)},
	{"strlen", ctypes.ULong},
	{"strcmp", ctypes.Int},
	{"malloc", ctypes.PointerTo(ctypes.Void)},
	{"free", nil},
	{"printf", ctypes.Int},
	{"memchr", ctypes.PointerTo(ctypes.Void)},
}

// Generate builds a deterministic synthetic program from a profile and
// seed.
func Generate(prof Profile, seed int64) *Program {
	g := &generator{
		r:    rand.New(rand.NewSource(seed)),
		prof: prof,
		prog: &Program{Name: prof.Name},
	}
	g.makeStructPool()
	g.makeGlobals()
	nf := prof.FuncsMin
	if prof.FuncsMax > prof.FuncsMin {
		nf += g.r.Intn(prof.FuncsMax - prof.FuncsMin + 1)
	}
	for i := 0; i < nf; i++ {
		g.prog.Funcs = append(g.prog.Funcs, g.genFunction(fmt.Sprintf("fn_%s_%d", prof.Name, i)))
	}
	return g.prog
}

// makeGlobals declares a handful of file-scope variables; functions use
// them occasionally, so the data section also carries typed variables (the
// paper's premise covers "every available memory unit").
func (g *generator) makeGlobals() {
	n := 2 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		c := g.sampleClass()
		t := g.concreteType(c)
		// Long doubles as globals would require x87 absolute loads our
		// generator already exercises via locals; keep globals simple.
		if t.ResolveBase().Kind == ctypes.KindBase && t.ResolveBase().Base == ctypes.BaseLongDouble {
			t = ctypes.Double
		}
		g.prog.Globals = append(g.prog.Globals, &VarDecl{
			Name:   fmt.Sprintf("g_%s_%d", g.prof.Name, i),
			Type:   t,
			Global: true,
		})
	}
}

type generator struct {
	r       *rand.Rand
	prof    Profile
	prog    *Program
	structs []*ctypes.Type

	// per-function state
	fn      *Function
	varSeq  int
	intVars []*VarDecl // integer-class locals usable as counters/indices
}

func (g *generator) makeStructPool() {
	fieldTypes := []*ctypes.Type{
		ctypes.Int, ctypes.Long, ctypes.Char, ctypes.Double,
		ctypes.UInt, ctypes.Bool, ctypes.ULong, ctypes.Short,
	}
	n := 2 + g.r.Intn(4)
	for i := 0; i < n; i++ {
		nf := 2 + g.r.Intn(6)
		fields := make([]ctypes.Field, 0, nf)
		for j := 0; j < nf; j++ {
			var ft *ctypes.Type
			switch g.r.Intn(10) {
			case 0:
				ft = ctypes.PointerTo(ctypes.Char)
			case 1:
				if len(g.structs) > 0 {
					ft = ctypes.PointerTo(g.structs[g.r.Intn(len(g.structs))])
				} else {
					ft = ctypes.PointerTo(ctypes.Void)
				}
			default:
				ft = fieldTypes[g.r.Intn(len(fieldTypes))]
			}
			fields = append(fields, ctypes.Field{Name: fmt.Sprintf("f%d", j), Type: ft})
		}
		g.structs = append(g.structs, ctypes.StructOf(fmt.Sprintf("s%s%d", g.prof.Name, i), fields...))
	}
}

// concreteType materializes a concrete C type whose CATI class is c.
func (g *generator) concreteType(c ctypes.Class) *ctypes.Type {
	pick := func(ts ...*ctypes.Type) *ctypes.Type { return ts[g.r.Intn(len(ts))] }
	arith := []*ctypes.Type{
		ctypes.Char, ctypes.UChar, ctypes.Int, ctypes.UInt,
		ctypes.Long, ctypes.ULong, ctypes.Double, ctypes.Float, ctypes.Short,
	}
	st := g.structs[g.r.Intn(len(g.structs))]
	switch c {
	case ctypes.ClassPtrVoid:
		return ctypes.PointerTo(ctypes.Void)
	case ctypes.ClassPtrStruct:
		return ctypes.PointerTo(st)
	case ctypes.ClassPtrArith:
		return ctypes.PointerTo(arith[g.r.Intn(len(arith))])
	case ctypes.ClassStruct:
		if g.r.Intn(4) == 0 {
			return ctypes.ArrayOf(st, 1+g.r.Intn(8)) // array of struct classifies struct
		}
		return st
	case ctypes.ClassBool:
		return ctypes.Bool
	case ctypes.ClassChar:
		if g.r.Intn(3) == 0 {
			return ctypes.ArrayOf(ctypes.Char, 8<<g.r.Intn(5)) // char buffers
		}
		return ctypes.Char
	case ctypes.ClassUChar:
		if g.r.Intn(4) == 0 {
			return ctypes.ArrayOf(ctypes.UChar, 8<<g.r.Intn(4))
		}
		return ctypes.UChar
	case ctypes.ClassFloat:
		return ctypes.Float
	case ctypes.ClassDouble:
		return ctypes.Double
	case ctypes.ClassLongDouble:
		return ctypes.LongDouble
	case ctypes.ClassInt:
		if g.r.Intn(12) == 0 {
			return ctypes.TypedefOf("int32_t", ctypes.Int) // typedef chains
		}
		return ctypes.Int
	case ctypes.ClassUInt:
		if g.r.Intn(8) == 0 {
			return ctypes.TypedefOf("uint32_t", ctypes.UInt)
		}
		return ctypes.UInt
	case ctypes.ClassShort:
		return ctypes.Short
	case ctypes.ClassUShort:
		return ctypes.UShort
	case ctypes.ClassLong:
		return pick(ctypes.Long, ctypes.TypedefOf("ssize_t", ctypes.Long))
	case ctypes.ClassULong:
		return pick(ctypes.ULong, ctypes.TypedefOf("size_t", ctypes.ULong))
	case ctypes.ClassLongLong:
		return ctypes.LongLong
	case ctypes.ClassULongLong:
		return ctypes.ULongLong
	case ctypes.ClassEnum:
		return ctypes.EnumOf(fmt.Sprintf("e%d", g.r.Intn(4)))
	default:
		return ctypes.Int
	}
}

func (g *generator) sampleClass() ctypes.Class {
	total := 0.0
	for _, w := range g.prof.Weights {
		total += w
	}
	x := g.r.Float64() * total
	for _, c := range ctypes.AllClasses() {
		w := g.prof.Weights[c]
		if w <= 0 {
			continue
		}
		if x < w {
			return c
		}
		x -= w
	}
	return ctypes.ClassInt
}

func (g *generator) genFunction(name string) *Function {
	g.fn = &Function{Name: name}
	g.varSeq = 0
	g.intVars = nil

	// Parameters: 0-4 scalars/pointers.
	np := g.r.Intn(5)
	for i := 0; i < np; i++ {
		var t *ctypes.Type
		switch g.r.Intn(4) {
		case 0:
			t = ctypes.PointerTo(g.structs[g.r.Intn(len(g.structs))])
		case 1:
			t = ctypes.PointerTo(ctypes.Char)
		case 2:
			t = ctypes.Long
		default:
			t = ctypes.Int
		}
		g.fn.Params = append(g.fn.Params, &VarDecl{Name: fmt.Sprintf("p%d", i), Type: t})
	}

	// Locals.
	nl := g.prof.LocalsMin
	if g.prof.LocalsMax > g.prof.LocalsMin {
		nl += g.r.Intn(g.prof.LocalsMax - g.prof.LocalsMin + 1)
	}
	for i := 0; i < nl; i++ {
		c := g.sampleClass()
		d := &VarDecl{Name: fmt.Sprintf("v%d", g.varSeq), Type: g.concreteType(c)}
		g.varSeq++
		g.fn.Locals = append(g.fn.Locals, d)
		if isIntScalar(d.Type) {
			g.intVars = append(g.intVars, d)
		}
	}
	// Guarantee at least one int scalar for conditions and counters.
	if len(g.intVars) == 0 {
		d := &VarDecl{Name: fmt.Sprintf("v%d", g.varSeq), Type: ctypes.Int}
		g.varSeq++
		g.fn.Locals = append(g.fn.Locals, d)
		g.intVars = append(g.intVars, d)
	}

	// Usage events per local, plus occasional global usage.
	var events [][]Stmt
	for _, d := range g.prog.Globals {
		if g.r.Intn(3) != 0 {
			continue
		}
		n := 1 + g.r.Intn(2)
		for e := 0; e < n; e++ {
			if ev := g.usageEvent(d); len(ev) > 0 {
				events = append(events, ev)
			}
		}
	}
	for _, d := range g.fn.Locals {
		n := g.prof.EventsMin
		if g.prof.EventsMax > g.prof.EventsMin {
			n += g.r.Intn(g.prof.EventsMax - g.prof.EventsMin + 1)
		}
		var own [][]Stmt
		for e := 0; e < n; e++ {
			if ev := g.usageEvent(d); len(ev) > 0 {
				own = append(own, ev)
			}
		}
		// Real code often touches one variable several times in a row
		// (init-use-update bursts); keeping some of a variable's events
		// adjacent is what produces the paper's same-type clustering.
		for len(own) >= 2 && g.r.Intn(3) != 0 {
			merged := append(own[0], own[1]...)
			own = append([][]Stmt{merged}, own[2:]...)
		}
		events = append(events, own...)
	}
	g.r.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })

	// Assemble body: mostly straight-line (that is where the clustering
	// phenomenon lives), with some events nested under control flow.
	var body []Stmt
	for i := 0; i < len(events); {
		switch g.r.Intn(8) {
		case 0: // if block over the next 1-3 events
			n := 1 + g.r.Intn(3)
			var then []Stmt
			for j := 0; j < n && i < len(events); j++ {
				then = append(then, events[i]...)
				i++
			}
			var els []Stmt
			if g.r.Intn(3) == 0 && i < len(events) {
				els = events[i]
				i++
			}
			body = append(body, &If{Cond: g.condition(), Then: then, Else: els})
		case 1: // counted loop over the next 1-2 events
			n := 1 + g.r.Intn(2)
			var inner []Stmt
			for j := 0; j < n && i < len(events); j++ {
				inner = append(inner, events[i]...)
				i++
			}
			ctr := g.intVars[g.r.Intn(len(g.intVars))]
			body = append(body, &For{
				Init: &Assign{LHS: &VarRef{Decl: ctr}, RHS: &IntLit{Value: 0}},
				Cond: &Cmp{Op: CmpLt, L: &VarRef{Decl: ctr}, R: &IntLit{Value: int64(4 + g.r.Intn(60))}},
				Post: &Assign{LHS: &VarRef{Decl: ctr},
					RHS: &Binary{Op: OpAdd, L: &VarRef{Decl: ctr}, R: &IntLit{Value: 1}}},
				Body: inner,
			})
		default:
			body = append(body, events[i]...)
			i++
		}
	}

	// Occasional extern call for flavour.
	if g.r.Intn(3) == 0 {
		body = append(body, g.externCall())
	}
	// Call an earlier program function so the binary has an internal call
	// graph (stripped-binary function recovery keys off call targets).
	if len(g.prog.Funcs) > 0 && g.r.Intn(2) == 0 {
		callee := g.prog.Funcs[g.r.Intn(len(g.prog.Funcs))]
		var args []Expr
		for i := range callee.Params {
			p := callee.Params[i]
			pt := p.Type.ResolveBase()
			if pt.Kind == ctypes.KindPointer {
				args = append(args, &IntLit{Value: 0, Type: p.Type})
			} else {
				args = append(args, &IntLit{Value: int64(g.r.Intn(64))})
			}
		}
		call := &Call{Name: callee.Name, Args: args, Result: callee.Return}
		if callee.Return != nil && isIntScalar(callee.Return) && g.r.Intn(2) == 0 {
			tgt := g.intVars[g.r.Intn(len(g.intVars))]
			body = append(body, &Assign{LHS: &VarRef{Decl: tgt}, RHS: call})
		} else {
			body = append(body, &ExprStmt{X: call})
		}
	}

	// Return.
	switch g.r.Intn(3) {
	case 0:
		g.fn.Return = ctypes.Int
		body = append(body, &Return{Value: &VarRef{Decl: g.intVars[g.r.Intn(len(g.intVars))]}})
	default:
		body = append(body, &Return{})
	}
	g.fn.Body = body
	return g.fn
}

func isIntScalar(t *ctypes.Type) bool {
	t = t.ResolveBase()
	if t.Kind == ctypes.KindEnum {
		return false
	}
	return t.Kind == ctypes.KindBase && t.Base.IsInteger() && t.Base != ctypes.BaseBool &&
		t.Base != ctypes.BaseChar && t.Base != ctypes.BaseUChar
}

// condition builds a branch condition over existing locals.
func (g *generator) condition() Expr {
	d := g.intVars[g.r.Intn(len(g.intVars))]
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	return &Cmp{Op: ops[g.r.Intn(len(ops))], L: &VarRef{Decl: d}, R: &IntLit{Value: int64(g.r.Intn(256))}}
}

func (g *generator) externCall() Stmt {
	ext := externFuncs[g.r.Intn(len(externFuncs))]
	var args []Expr
	for _, d := range g.fn.Locals {
		if d.Type.ResolveBase().Kind == ctypes.KindPointer || d.Type.ResolveBase().Kind == ctypes.KindArray {
			args = append(args, g.readOf(d))
			break
		}
	}
	if len(args) == 0 {
		args = append(args, &IntLit{Value: int64(g.r.Intn(64))})
	}
	return &ExprStmt{X: &Call{Name: ext.name, Args: args, Extern: true, Result: ext.result}}
}

// readOf produces a read expression of a declared variable appropriate for
// use as an argument/atom.
func (g *generator) readOf(d *VarDecl) Expr {
	if d.Type.ResolveBase().Kind == ctypes.KindArray {
		return &AddrOf{Target: &IndexRef{Arr: d, Idx: &IntLit{Value: 0}}}
	}
	return &VarRef{Decl: d}
}

// otherVarOfClass finds another local in the same Stage-2 family, for
// cross-variable arithmetic; falls back to a literal.
func (g *generator) otherIntAtom(not *VarDecl) Expr {
	var cands []*VarDecl
	for _, d := range g.intVars {
		if d != not {
			cands = append(cands, d)
		}
	}
	if len(cands) > 0 && g.r.Intn(2) == 0 {
		return &VarRef{Decl: cands[g.r.Intn(len(cands))]}
	}
	return &IntLit{Value: int64(g.r.Intn(1 << 10))}
}

// usageEvent produces one type-typical usage of d: the statements whose
// compiled form will contain the variable's target instruction(s).
func (g *generator) usageEvent(d *VarDecl) []Stmt {
	t := d.Type.ResolveBase()
	switch t.Kind {
	case ctypes.KindArray:
		return g.arrayEvent(d, t)
	case ctypes.KindStruct:
		return g.structEvent(d, t)
	case ctypes.KindPointer:
		return g.pointerEvent(d, t)
	case ctypes.KindEnum:
		return g.enumEvent(d)
	case ctypes.KindBase:
		switch {
		case t.Base == ctypes.BaseBool:
			return g.boolEvent(d)
		case t.Base == ctypes.BaseChar || t.Base == ctypes.BaseUChar:
			return g.charEvent(d)
		case t.Base.IsFloat():
			return g.floatEvent(d, t)
		default:
			return g.intEvent(d)
		}
	}
	return nil
}

func (g *generator) intEvent(d *VarDecl) []Stmt {
	lhs := &VarRef{Decl: d}
	switch g.r.Intn(6) {
	case 0: // constant init (uncertain sample: same shape as pointer null)
		return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: int64(g.r.Intn(1 << 12)), Type: d.Type}}}
	case 1: // arithmetic accumulate
		ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
		return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
			Op: ops[g.r.Intn(len(ops))], L: &VarRef{Decl: d}, R: g.otherIntAtom(d)}}}
	case 2: // shift
		ops := []BinOp{OpShl, OpShr}
		return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
			Op: ops[g.r.Intn(2)], L: &VarRef{Decl: d}, R: &IntLit{Value: int64(1 + g.r.Intn(7))}}}}
	case 3: // division / modulo
		ops := []BinOp{OpDiv, OpMod}
		return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
			Op: ops[g.r.Intn(2)], L: &VarRef{Decl: d}, R: &IntLit{Value: int64(2 + g.r.Intn(30))}}}}
	case 4: // comparison guard
		return []Stmt{&If{
			Cond: &Cmp{Op: CmpGt, L: &VarRef{Decl: d}, R: &IntLit{Value: int64(g.r.Intn(128))}},
			Then: []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}},
		}}
	default: // cross-width cast from another int
		return []Stmt{&Assign{LHS: lhs, RHS: &Cast{To: d.Type, X: g.otherIntAtom(d)}}}
	}
}

func (g *generator) enumEvent(d *VarDecl) []Stmt {
	lhs := &VarRef{Decl: d}
	if g.r.Intn(2) == 0 {
		return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: int64(g.r.Intn(8)), Type: d.Type}}}
	}
	return []Stmt{&If{
		Cond: &Cmp{Op: CmpEq, L: &VarRef{Decl: d}, R: &IntLit{Value: int64(g.r.Intn(8))}},
		Then: []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: int64(g.r.Intn(8)), Type: d.Type}}},
	}}
}

func (g *generator) boolEvent(d *VarDecl) []Stmt {
	lhs := &VarRef{Decl: d}
	switch g.r.Intn(3) {
	case 0: // flag = (a cmp b)
		a := g.intVars[g.r.Intn(len(g.intVars))]
		return []Stmt{&Assign{LHS: lhs, RHS: &Cmp{Op: CmpNe, L: &VarRef{Decl: a}, R: &IntLit{Value: 0}}}}
	case 1: // constant flag
		return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: int64(g.r.Intn(2)), Type: ctypes.Bool}}}
	default: // test flag
		return []Stmt{&If{
			Cond: &Cmp{Op: CmpNe, L: &VarRef{Decl: d}, R: &IntLit{Value: 0}},
			Then: []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: ctypes.Bool}}},
		}}
	}
}

func (g *generator) charEvent(d *VarDecl) []Stmt {
	lhs := &VarRef{Decl: d}
	switch g.r.Intn(4) {
	case 0: // character constant
		return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: int64(32 + g.r.Intn(90)), Type: d.Type}}}
	case 1: // load from a char buffer if one exists
		if buf := g.findArray(ctypes.BaseChar, ctypes.BaseUChar); buf != nil {
			idx := g.intVars[g.r.Intn(len(g.intVars))]
			return []Stmt{&Assign{LHS: lhs, RHS: &IndexRef{Arr: buf, Idx: &VarRef{Decl: idx}}}}
		}
		return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
	case 2: // compare against a character literal
		return []Stmt{&If{
			Cond: &Cmp{Op: CmpEq, L: &VarRef{Decl: d}, R: &IntLit{Value: int64(32 + g.r.Intn(90))}},
			Then: []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}},
		}}
	default: // arithmetic on the char
		return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
			Op: OpAdd, L: &VarRef{Decl: d}, R: &IntLit{Value: 1}}}}
	}
}

func (g *generator) floatEvent(d *VarDecl, t *ctypes.Type) []Stmt {
	lhs := &VarRef{Decl: d}
	lit := &FloatLit{Value: g.r.Float64() * 100, Type: t}
	switch g.r.Intn(4) {
	case 0:
		return []Stmt{&Assign{LHS: lhs, RHS: lit}}
	case 1:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
		return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
			Op: ops[g.r.Intn(4)], L: &VarRef{Decl: d}, R: lit}}}
	case 2: // conversion from int
		a := g.intVars[g.r.Intn(len(g.intVars))]
		return []Stmt{&Assign{LHS: lhs, RHS: &Cast{To: t, X: &VarRef{Decl: a}}}}
	default: // float-to-float arithmetic with another float var when present
		if o := g.findFloat(d); o != nil {
			return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
				Op: OpMul, L: &VarRef{Decl: d}, R: &Cast{To: t, X: &VarRef{Decl: o}}}}}
		}
		return []Stmt{&Assign{LHS: lhs, RHS: lit}}
	}
}

func (g *generator) structEvent(d *VarDecl, t *ctypes.Type) []Stmt {
	st := t
	if t.Kind == ctypes.KindArray {
		st = t.Elem.ResolveBase()
	}
	if st.Kind != ctypes.KindStruct || len(st.Fields) == 0 {
		return nil
	}
	mk := func(field int) LValue {
		if t.Kind == ctypes.KindArray {
			// s[i].f lowered via constant index for simplicity.
			return &FieldRef{Base: d, Field: field}
		}
		return &FieldRef{Base: d, Field: field}
	}
	switch g.r.Intn(3) {
	case 0: // initialization run: several consecutive field stores — the
		// paper's Figure 2 clustering pattern.
		n := 2 + g.r.Intn(len(st.Fields))
		var out []Stmt
		for i := 0; i < n; i++ {
			f := st.Fields[i%len(st.Fields)]
			out = append(out, &Assign{LHS: mk(i % len(st.Fields)), RHS: g.literalFor(f.Type)})
		}
		return out
	case 1: // read a field into a matching local
		fi := g.r.Intn(len(st.Fields))
		ft := st.Fields[fi].Type
		if tgt := g.findScalarOfBase(ft); tgt != nil {
			return []Stmt{&Assign{LHS: &VarRef{Decl: tgt}, RHS: mk(fi)}}
		}
		return []Stmt{&Assign{LHS: mk(fi), RHS: g.literalFor(ft)}}
	default: // field update
		fi := g.r.Intn(len(st.Fields))
		ft := st.Fields[fi].Type.ResolveBase()
		if ft.Kind == ctypes.KindBase && ft.Base.IsInteger() {
			return []Stmt{&Assign{LHS: mk(fi), RHS: &Binary{
				Op: OpAdd, L: mk(fi).(Expr), R: &IntLit{Value: 1}}}}
		}
		return []Stmt{&Assign{LHS: mk(fi), RHS: g.literalFor(st.Fields[fi].Type)}}
	}
}

func (g *generator) pointerEvent(d *VarDecl, t *ctypes.Type) []Stmt {
	pointee := t.Elem.ResolveBase()
	lhs := &VarRef{Decl: d}
	switch {
	case pointee == nil || pointee.Kind == ctypes.KindBase && pointee.Base == ctypes.BaseVoid:
		// void*: null init, aliasing, extern calls.
		switch g.r.Intn(3) {
		case 0:
			return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
		case 1:
			if tgt := g.anyAddressable(d); tgt != nil {
				return []Stmt{&Assign{LHS: lhs, RHS: &Cast{To: d.Type, X: &AddrOf{Target: &VarRef{Decl: tgt}}}}}
			}
			return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
		default:
			return []Stmt{&ExprStmt{X: &Call{Name: "free", Args: []Expr{&VarRef{Decl: d}}, Extern: true}}}
		}
	case pointee.Kind == ctypes.KindStruct:
		if len(pointee.Fields) == 0 {
			return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
		}
		switch g.r.Intn(4) {
		case 0: // p = &local struct of that type (when present)
			if s := g.findStructLocal(pointee); s != nil {
				return []Stmt{&Assign{LHS: lhs, RHS: &AddrOf{Target: &VarRef{Decl: s}}}}
			}
			return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
		case 1: // p->f = lit
			fi := g.r.Intn(len(pointee.Fields))
			return []Stmt{&Assign{
				LHS: &PtrFieldRef{Ptr: d, Field: fi},
				RHS: g.literalFor(pointee.Fields[fi].Type),
			}}
		case 2: // x = p->f
			fi := g.r.Intn(len(pointee.Fields))
			ft := pointee.Fields[fi].Type
			if tgt := g.findScalarOfBase(ft); tgt != nil {
				return []Stmt{&Assign{LHS: &VarRef{Decl: tgt}, RHS: &PtrFieldRef{Ptr: d, Field: fi}}}
			}
			return []Stmt{&Assign{
				LHS: &PtrFieldRef{Ptr: d, Field: fi},
				RHS: g.literalFor(pointee.Fields[fi].Type),
			}}
		default: // null check
			return []Stmt{&If{
				Cond: &Cmp{Op: CmpNe, L: &VarRef{Decl: d}, R: &IntLit{Value: 0}},
				Then: []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}},
			}}
		}
	default:
		// pointer to arithmetic: deref load/store, pointer bump.
		switch g.r.Intn(4) {
		case 0: // *p = lit
			return []Stmt{&Assign{LHS: &DerefRef{Ptr: d}, RHS: g.literalFor(t.Elem)}}
		case 1: // x = *p
			if tgt := g.findScalarOfBase(t.Elem); tgt != nil {
				return []Stmt{&Assign{LHS: &VarRef{Decl: tgt}, RHS: &DerefRef{Ptr: d}}}
			}
			return []Stmt{&Assign{LHS: &DerefRef{Ptr: d}, RHS: g.literalFor(t.Elem)}}
		case 2: // p = p + 1 (scaled pointer bump)
			return []Stmt{&Assign{LHS: lhs, RHS: &Binary{
				Op: OpAdd, L: &VarRef{Decl: d}, R: &IntLit{Value: 1}}}}
		default: // p = &arr[0] when a matching array exists, else null init
			if arr := g.findArrayOfElem(t.Elem); arr != nil {
				return []Stmt{&Assign{LHS: lhs, RHS: &AddrOf{
					Target: &IndexRef{Arr: arr, Idx: &IntLit{Value: 0}}}}}
			}
			return []Stmt{&Assign{LHS: lhs, RHS: &IntLit{Value: 0, Type: d.Type}}}
		}
	}
}

func (g *generator) arrayEvent(d *VarDecl, t *ctypes.Type) []Stmt {
	elem := t.Elem.ResolveBase()
	if elem.Kind == ctypes.KindStruct {
		return g.structEvent(d, t)
	}
	idx := g.intVars[g.r.Intn(len(g.intVars))]
	switch g.r.Intn(3) {
	case 0: // arr[i] = lit
		return []Stmt{&Assign{
			LHS: &IndexRef{Arr: d, Idx: &VarRef{Decl: idx}},
			RHS: g.literalFor(t.Elem),
		}}
	case 1: // arr[const] = lit
		return []Stmt{&Assign{
			LHS: &IndexRef{Arr: d, Idx: &IntLit{Value: int64(g.r.Intn(t.Count))}},
			RHS: g.literalFor(t.Elem),
		}}
	default: // x = arr[i]
		if tgt := g.findScalarOfBase(t.Elem); tgt != nil {
			return []Stmt{&Assign{LHS: &VarRef{Decl: tgt},
				RHS: &IndexRef{Arr: d, Idx: &VarRef{Decl: idx}}}}
		}
		return []Stmt{&Assign{
			LHS: &IndexRef{Arr: d, Idx: &VarRef{Decl: idx}},
			RHS: g.literalFor(t.Elem),
		}}
	}
}

// literalFor returns an appropriate literal expression for a type.
func (g *generator) literalFor(t *ctypes.Type) Expr {
	rt := t.ResolveBase()
	switch rt.Kind {
	case ctypes.KindBase:
		if rt.Base.IsFloat() {
			return &FloatLit{Value: g.r.Float64() * 10, Type: rt}
		}
		return &IntLit{Value: int64(g.r.Intn(256)), Type: t}
	case ctypes.KindPointer:
		return &IntLit{Value: 0, Type: t} // NULL
	case ctypes.KindEnum:
		return &IntLit{Value: int64(g.r.Intn(8)), Type: t}
	default:
		return &IntLit{Value: 0, Type: t}
	}
}

// --- local searches ---

func (g *generator) findArray(bases ...ctypes.Base) *VarDecl {
	for _, d := range g.fn.Locals {
		t := d.Type.ResolveBase()
		if t.Kind != ctypes.KindArray {
			continue
		}
		e := t.Elem.ResolveBase()
		if e.Kind != ctypes.KindBase {
			continue
		}
		for _, b := range bases {
			if e.Base == b {
				return d
			}
		}
	}
	return nil
}

func (g *generator) findArrayOfElem(elem *ctypes.Type) *VarDecl {
	want := elem.ResolveBase()
	for _, d := range g.fn.Locals {
		t := d.Type.ResolveBase()
		if t.Kind == ctypes.KindArray && t.Elem.ResolveBase() == want {
			return d
		}
	}
	return nil
}

func (g *generator) findScalarOfBase(t *ctypes.Type) *VarDecl {
	want := t.ResolveBase()
	if want.Kind != ctypes.KindBase {
		return nil
	}
	for _, d := range g.fn.Locals {
		rt := d.Type.ResolveBase()
		if rt.Kind == ctypes.KindBase && rt.Base == want.Base {
			return d
		}
	}
	return nil
}

func (g *generator) findFloat(not *VarDecl) *VarDecl {
	for _, d := range g.fn.Locals {
		if d == not {
			continue
		}
		rt := d.Type.ResolveBase()
		if rt.Kind == ctypes.KindBase && rt.Base.IsFloat() && rt.Base != ctypes.BaseLongDouble {
			return d
		}
	}
	return nil
}

func (g *generator) findStructLocal(st *ctypes.Type) *VarDecl {
	for _, d := range g.fn.Locals {
		if d.Type.ResolveBase() == st {
			return d
		}
	}
	return nil
}

func (g *generator) anyAddressable(not *VarDecl) *VarDecl {
	for _, d := range g.fn.Locals {
		if d == not {
			continue
		}
		t := d.Type.ResolveBase()
		if t.Kind == ctypes.KindBase && t.Base != ctypes.BaseLongDouble {
			return d
		}
	}
	return nil
}
