// Package isa is the architecture seam of the pipeline. Everything above
// instruction decode — variable recovery, VUC tokenization, embedding,
// classification — consumes the interfaces here instead of a concrete
// instruction set, which is what makes the paper's representation claim
// (type evidence lives in usage context, not in a particular mnemonic
// set) testable across ISAs. Concrete architectures live in subpackages
// (x86, rv64) and register themselves; importing internal/isa/isas pulls
// in every built-in one.
package isa

// Reg is an architecture-neutral register number. For x86-64 it is the
// 4-bit hardware number (0..15, rax..r15); for RV64 it is the integer
// register index (0..31, x0..x31) with float registers at 32..63. The
// numbering matches what each backend records in DWARF-lite RegNum
// fields, so recovered register variables compare directly against debug
// ground truth.
type Reg int16

// RegNone means "no register" (an absent base or index).
const RegNone Reg = -1

// Frame tags a function's frame-addressing convention: FrameFP for
// frame-pointer-based slots (rbp / s0), FrameSP for frame-pointer-omitted
// code addressing slots off the stack pointer.
type Frame uint8

// Frame conventions.
const (
	FrameFP Frame = iota
	FrameSP
)

// Class is the control-flow classification of an instruction.
type Class uint8

// Instruction classes.
const (
	ClassOther Class = iota
	ClassCall
	ClassRet
	ClassJump
	ClassCondJump
)

// Mem is an architecture-neutral memory operand: base plus optional
// scaled index plus signed displacement. Architectures without scaled
// addressing leave Index == RegNone and Scale == 1.
type Mem struct {
	Base, Index Reg
	Scale       uint8
	Disp        int32
}

// TokenContext supplies the binary-level context operand generalization
// needs: InText distinguishes intra-text branch targets (ADDR) from
// library stubs whose names survive stripping (ADDR FUNC). A nil InText
// means no FUNC tokens are emitted.
type TokenContext struct {
	InText       func(addr uint64) bool
	NoGeneralize bool
}

// Inst is one decoded instruction. The interface carries exactly the
// queries the ISA-agnostic layers ask: recovery needs control flow,
// frame/memory access shape and register def-use structure; tokenization
// needs the generalized three-token rendering.
type Inst interface {
	// Addr is the instruction's virtual address.
	Addr() uint64
	// Len is the encoded length in bytes.
	Len() int
	// Class is the control-flow classification.
	Class() Class
	// Target returns the statically resolved control-transfer target of a
	// call or jump, when known.
	Target() (uint64, bool)
	// MemArg returns the instruction's explicit memory operand, if any.
	MemArg() (Mem, bool)
	// AbsAddr returns the absolute data address the instruction accesses,
	// when it addresses memory without a variable base (x86 absolute
	// displacements; RV64 lui+offset pairs fused by the decoder).
	AbsAddr() (uint64, bool)
	// AccessWidth is the width in bytes of the instruction's memory
	// access (1 for address-only touches such as lea).
	AccessWidth() int
	// IsFrameSetup reports frame-maintenance instructions (push/pop,
	// callee-save spills) that touch the stack without constituting a
	// variable access; recovery skips them when clustering slots.
	IsFrameSetup() bool
	// SavedReg returns the callee-saved register a prologue instruction
	// saves (x86 push, RV64 sp-relative store), for register-variable
	// recovery.
	SavedReg() (Reg, bool)
	// VisitReads calls f for every general-purpose register the
	// instruction reads, including memory-operand bases and indexes.
	// Pure-write destinations are excluded.
	VisitReads(f func(Reg))
	// DefReg returns the general-purpose register the instruction
	// defines, if any.
	DefReg() (Reg, bool)
	// SlotLoad reports a plain load of a memory slot into a register
	// (dst, slot) — the instruction shape that creates a register alias
	// of a stack variable in the def-use scan.
	SlotLoad() (Reg, Mem, bool)
	// IsBarrier reports instructions that invalidate every register
	// alias: calls, returns, jumps and conditional branches.
	IsBarrier() bool
	// Clobbers lists registers the instruction overwrites beyond DefReg
	// (x86 division clobbering rax/rdx); empty for most instructions.
	Clobbers() []Reg
	// UsesReg reports whether the instruction references the register as
	// an operand or address component, at any width.
	UsesReg(r Reg) bool
	// Tokens renders the generalized three-token form [mnemonic, op1,
	// op2] the VUC layer consumes (§IV-B of the paper).
	Tokens(tc *TokenContext) [3]string
	// Text is the human-readable disassembly of the instruction.
	Text() string
}

// Arch is one machine architecture: decode plus the calling-convention
// facts recovery needs.
type Arch interface {
	// Name is the canonical architecture name ("x86_64", "rv64").
	Name() string
	// EMachine is the ELF e_machine value.
	EMachine() uint16
	// DecodeAll decodes a code image starting at the given virtual
	// address into the instruction stream.
	DecodeAll(code []byte, addr uint64) ([]Inst, error)
	// DetectFrame inspects a function's prologue and returns the frame
	// base register and convention.
	DetectFrame(insts []Inst) (Reg, Frame)
	// CalleeSaved lists the registers compilers promote register
	// variables into.
	CalleeSaved() []Reg
	// RegName is the conventional name of a register ("rbp", "s0").
	RegName(r Reg) string
}
