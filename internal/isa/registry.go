package isa

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/elfx"
)

var (
	regMu     sync.RWMutex
	byName    = map[string]Arch{}
	byMachine = map[uint16]Arch{}
)

// Register adds an architecture to the registry. Concrete architectures
// call it from init; importing internal/isa/isas registers every built-in
// one.
func Register(a Arch) {
	regMu.Lock()
	defer regMu.Unlock()
	byName[a.Name()] = a
	byMachine[a.EMachine()] = a
}

// ByName returns the named architecture.
func ByName(name string) (Arch, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if a, ok := byName[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("isa: unknown architecture %q (have %v)", name, namesLocked())
}

// ByMachine returns the architecture for an ELF e_machine value. Unknown
// machines yield an error wrapping elfx.ErrUnsupportedMachine, so callers
// (and `cati infer` JSON error records) can classify it.
func ByMachine(machine uint16) (Arch, error) {
	if machine == 0 {
		machine = elfx.EMX86_64
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if a, ok := byMachine[machine]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("%w: e_machine=%d", elfx.ErrUnsupportedMachine, machine)
}

// Names lists the registered architecture names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
