// Package isas registers every built-in architecture. Import it (usually
// blank) from any layer that resolves architectures dynamically — the
// recovery layer does, so everything above it inherits the full set.
package isas

import (
	_ "repro/internal/isa/rv64"
	_ "repro/internal/isa/x86"
)
