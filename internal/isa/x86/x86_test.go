package x86

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// tok renders one instruction through the adapter.
func tok(in asm.Inst, tc *isa.TokenContext) [3]string {
	return Wrap([]asm.Inst{in})[0].Tokens(tc)
}

func TestTokenizePaperExamples(t *testing.T) {
	// Table II of the paper.
	tests := []struct {
		in   asm.Inst
		want [3]string
	}{
		{asm.NewInst(asm.OpADD, 8, asm.R(asm.RAX), asm.Imm{Value: -0xD0}),
			[3]string{"add", "$-0xIMM", "%rax"}},
		{asm.NewInst(asm.OpLEA, 8, asm.R(asm.RAX), asm.MemSIB(asm.RBP, asm.R9, 4, -0x300)),
			[3]string{"lea", "-0xIMM(%rbp,%r9,4)", "%rax"}},
		{asm.NewInst(asm.OpJMP, 0, asm.Sym{Addr: 0x3bc59, Resolved: true}),
			[3]string{"jmp", "ADDR", "BLANK"}},
		{asm.NewInst(asm.OpMOV, 8, asm.MemD(asm.RSP, 0xa8), asm.Imm{Value: 0}),
			[3]string{"movq", "$0xIMM", "0xIMM(%rsp)"}},
		{asm.NewInst(asm.OpMOV, 8, asm.MemD(asm.RSP, 0xb0), asm.R(asm.RAX)),
			[3]string{"mov", "%rax", "0xIMM(%rsp)"}},
		{asm.NewInst(asm.OpLEA, 8, asm.R(asm.R15), asm.MemSIB(asm.RDI, asm.RSI, 1, 0)),
			[3]string{"lea", "(%rdi,%rsi,1)", "%r15"}},
		{asm.NewInst(asm.OpMOVSXD, 8, asm.R(asm.RSI), asm.R(asm.ESI)),
			[3]string{"movslq", "%esi", "%rsi"}},
		{asm.NewInst(asm.OpRET, 0), [3]string{"retq", "BLANK", "BLANK"}},
		{asm.NewInst(asm.OpMOVSD, 8, asm.R(asm.XMM0), asm.Mem{Scale: 1, Disp: 0x4b0000}),
			[3]string{"movsd", "0xIMM", "%xmm0"}},
	}
	for _, tt := range tests {
		got := tok(tt.in, &isa.TokenContext{})
		if got != tt.want {
			t.Errorf("Tokens(%s) = %v, want %v", asm.Print(&tt.in), got, tt.want)
		}
	}
}

func TestTokenizeCallFuncVsBlank(t *testing.T) {
	tc := &isa.TokenContext{InText: func(a uint64) bool {
		return a >= 0x401000 && a < 0x402000
	}}
	// Call outside .text (library stub): name survives stripping → FUNC.
	ext := asm.NewInst(asm.OpCALL, 0, asm.Sym{Name: "memchr", Addr: 0x400400, Resolved: true})
	if got := tok(ext, tc); got != ([3]string{"callq", "ADDR", "FUNC"}) {
		t.Errorf("extern call = %v", got)
	}
	// Intra-text call in a stripped binary: no name → BLANK.
	loc := asm.NewInst(asm.OpCALL, 0, asm.Sym{Addr: 0x401500, Resolved: true})
	if got := tok(loc, tc); got != ([3]string{"callq", "ADDR", "BLANK"}) {
		t.Errorf("local call = %v", got)
	}
}

func TestTokenizeNoGeneralize(t *testing.T) {
	in := asm.NewInst(asm.OpADD, 8, asm.R(asm.RAX), asm.Imm{Value: -0xD0})
	got := tok(in, &isa.TokenContext{NoGeneralize: true})
	if got != ([3]string{"add", "-0xd0", "%rax"}) {
		t.Errorf("raw tokens = %v", got)
	}
}

func TestArchRegistration(t *testing.T) {
	a, err := isa.ByName(Name)
	if err != nil {
		t.Fatal(err)
	}
	if a.EMachine() != 62 {
		t.Fatalf("EMachine = %d, want 62", a.EMachine())
	}
	if m, err := isa.ByMachine(62); err != nil || m.Name() != Name {
		t.Fatalf("ByMachine(62) = %v, %v", m, err)
	}
	// Machine 0 is legacy x86-64.
	if m, err := isa.ByMachine(0); err != nil || m.Name() != Name {
		t.Fatalf("ByMachine(0) = %v, %v", m, err)
	}
	if a.RegName(5) != "rbp" || a.RegName(4) != "rsp" || a.RegName(3) != "rbx" {
		t.Fatalf("RegName mismatch: %q %q %q", a.RegName(5), a.RegName(4), a.RegName(3))
	}
}

func TestDetectFrame(t *testing.T) {
	fp := Wrap([]asm.Inst{
		asm.NewInst(asm.OpPUSH, 8, asm.R(asm.RBP)),
		asm.NewInst(asm.OpMOV, 8, asm.R(asm.RBP), asm.R(asm.RSP)),
		asm.NewInst(asm.OpRET, 0),
	})
	if r, f := (Arch{}).DetectFrame(fp); r != 5 || f != isa.FrameFP {
		t.Fatalf("classic prologue: reg=%d frame=%d", r, f)
	}
	sp := Wrap([]asm.Inst{
		asm.NewInst(asm.OpSUB, 8, asm.R(asm.RSP), asm.Imm{Value: 32}),
		asm.NewInst(asm.OpRET, 0),
	})
	if r, f := (Arch{}).DetectFrame(sp); r != 4 || f != isa.FrameSP {
		t.Fatalf("omitted frame: reg=%d frame=%d", r, f)
	}
}

// TestPropertyTokenizeInvariants: for random encodable instructions, the
// generalized form always has a non-empty mnemonic, exactly three token
// slots, and no concrete hex constants surviving generalization.
func TestPropertyTokenizeInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	hexDigit := func(b byte) bool {
		return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f')
	}
	for i := 0; i < 5000; i++ {
		in := randomInst(r)
		got := tok(in, &isa.TokenContext{})
		if got[0] == "" || got[1] == "" || got[2] == "" {
			t.Fatalf("empty token in %v for %s", got, asm.Print(&in))
		}
		for _, s := range got[1:] {
			// After generalization the only "0x" occurrences are the IMM
			// marker; nothing like 0x1f4 may survive.
			for j := 0; j+2 < len(s); j++ {
				if s[j] == '0' && s[j+1] == 'x' && j+2 < len(s) && hexDigit(s[j+2]) {
					t.Fatalf("concrete constant survived generalization: %q (from %s)", s, asm.Print(&in))
				}
			}
		}
	}
}

// randomInst builds a random instruction with concrete operands.
func randomInst(r *rand.Rand) asm.Inst {
	regs := []asm.Reg{asm.RAX, asm.RCX, asm.RDX, asm.RSI, asm.RDI, asm.R8, asm.R9}
	mem := func() asm.Mem {
		if r.Intn(2) == 0 {
			return asm.MemD(regs[r.Intn(len(regs))], int32(r.Intn(1<<12))-1<<11)
		}
		return asm.MemSIB(regs[r.Intn(len(regs))], regs[r.Intn(len(regs))],
			[]uint8{1, 2, 4, 8}[r.Intn(4)], int32(r.Intn(1<<10)))
	}
	switch r.Intn(6) {
	case 0:
		return asm.NewInst(asm.OpMOV, 8, asm.R(regs[r.Intn(len(regs))]), mem())
	case 1:
		return asm.NewInst(asm.OpMOV, 4, mem(), asm.Imm{Value: int64(r.Intn(1 << 16))})
	case 2:
		return asm.NewInst(asm.OpADD, 8, asm.R(regs[r.Intn(len(regs))]), asm.Imm{Value: -int64(r.Intn(1 << 10))})
	case 3:
		return asm.NewInst(asm.OpLEA, 8, asm.R(regs[r.Intn(len(regs))]), mem())
	case 4:
		return asm.NewInst(asm.OpCALL, 0, asm.Sym{Addr: uint64(r.Intn(1 << 24)), Resolved: true})
	default:
		return asm.NewInst(asm.OpJNE, 0, asm.Sym{Addr: uint64(r.Intn(1 << 24)), Resolved: true})
	}
}
