// Package x86 adapts the concrete x86-64 substrate (internal/asm) to the
// architecture interface (internal/isa). The adapters are deliberately
// thin: every predicate reproduces, operation for operation, the logic
// the recovery and tokenization layers used when they were hard-wired to
// internal/asm — the corpus golden test proves the translation is
// bit-identical.
package x86

import (
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/elfx"
	"repro/internal/isa"
)

// Name is the canonical architecture name.
const Name = "x86_64"

// Arch is the x86-64 architecture.
type Arch struct{}

func init() { isa.Register(Arch{}) }

// Name returns "x86_64".
func (Arch) Name() string { return Name }

// EMachine returns EM_X86_64.
func (Arch) EMachine() uint16 { return elfx.EMX86_64 }

// rip is the neutral number of the RIP pseudo-base: distinct from every
// GPR (asm.Reg.Num reports 0 for it, which would collide with rax).
const rip isa.Reg = 16

// regNum maps an asm register to its neutral number.
func regNum(r asm.Reg) isa.Reg {
	if r == asm.RegNone {
		return isa.RegNone
	}
	if r == asm.RIP {
		return rip
	}
	return isa.Reg(r.Num())
}

// DecodeAll decodes the stream and wraps each instruction.
func (Arch) DecodeAll(code []byte, addr uint64) ([]isa.Inst, error) {
	raw, err := asm.DecodeAll(code, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(raw), nil
}

// Wrap adapts already-decoded instructions. The backing array is shared:
// one allocation for the concrete instructions, one for the interface
// slice.
func Wrap(raw []asm.Inst) []isa.Inst {
	insts := make([]inst, len(raw))
	out := make([]isa.Inst, len(raw))
	for i := range raw {
		insts[i] = inst{in: raw[i]}
		out[i] = &insts[i]
	}
	return out
}

// calleeSaved mirrors the promotion registers compilers use for register
// variables: rbx, r12..r15.
var calleeSaved = []isa.Reg{3, 12, 13, 14, 15}

// CalleeSaved lists rbx and r12..r15.
func (Arch) CalleeSaved() []isa.Reg {
	return append([]isa.Reg(nil), calleeSaved...)
}

// RegName names a neutral register with its 64-bit spelling.
func (Arch) RegName(r isa.Reg) string {
	switch {
	case r == isa.RegNone:
		return "none"
	case r == rip:
		return "rip"
	case r >= 0 && r <= 15:
		return asm.GPR(int(r), 8).String()
	}
	return "reg" + strconv.Itoa(int(r))
}

// DetectFrame looks for the classic `push rbp; mov rbp,rsp` prologue in
// the first four instructions; anything else is a frame-pointer-omitted
// rsp frame.
func (Arch) DetectFrame(insts []isa.Inst) (isa.Reg, isa.Frame) {
	limit := 4
	if len(insts) < limit {
		limit = len(insts)
	}
	sawPush := false
	for i := 0; i < limit; i++ {
		x, ok := insts[i].(*inst)
		if !ok {
			continue
		}
		in := &x.in
		if in.Op == asm.OpPUSH {
			if d, ok := in.Dst().(asm.RegArg); ok && d.Reg == asm.RBP {
				sawPush = true
			}
			continue
		}
		if sawPush && in.Op == asm.OpMOV {
			d, dok := in.Dst().(asm.RegArg)
			s, sok := in.Src().(asm.RegArg)
			if dok && sok && d.Reg == asm.RBP && s.Reg == asm.RSP {
				return isa.Reg(asm.RBP.Num()), isa.FrameFP
			}
		}
	}
	return isa.Reg(asm.RSP.Num()), isa.FrameSP
}

// inst adapts one decoded x86 instruction.
type inst struct {
	in asm.Inst
}

// Raw exposes the underlying instruction for x86-only callers (the
// compile layer's tests, the annotate view).
func (x *inst) Raw() *asm.Inst { return &x.in }

func (x *inst) Addr() uint64 { return x.in.Addr }

func (x *inst) Len() int { return x.in.Len }

func (x *inst) Class() isa.Class {
	switch {
	case x.in.Op == asm.OpCALL:
		return isa.ClassCall
	case x.in.Op == asm.OpRET:
		return isa.ClassRet
	case x.in.Op == asm.OpJMP:
		return isa.ClassJump
	case x.in.Op.IsCondJump():
		return isa.ClassCondJump
	}
	return isa.ClassOther
}

func (x *inst) Target() (uint64, bool) {
	if len(x.in.Args) == 0 {
		return 0, false
	}
	if s, ok := x.in.Args[0].(asm.Sym); ok && s.Resolved {
		return s.Addr, true
	}
	return 0, false
}

func (x *inst) MemArg() (isa.Mem, bool) {
	m, ok := x.in.MemArg()
	if !ok {
		return isa.Mem{}, false
	}
	return isa.Mem{
		Base:  regNum(m.Base),
		Index: regNum(m.Index),
		Scale: m.Scale,
		Disp:  m.Disp,
	}, true
}

// AbsAddr reports base-less memory operands as absolute 32-bit data
// addresses, exactly as the global-recovery pass interpreted them.
func (x *inst) AbsAddr() (uint64, bool) {
	m, ok := x.in.MemArg()
	if !ok || m.Base != asm.RegNone {
		return 0, false
	}
	return uint64(uint32(m.Disp)), true
}

func (x *inst) AccessWidth() int {
	in := &x.in
	switch in.Op {
	case asm.OpLEA:
		// Address computation: the access width is unknown; count one byte
		// so LEAs attach to whatever slot they point at without widening.
		return 1
	case asm.OpFLD, asm.OpFSTP, asm.OpFILD:
		return in.Width
	case asm.OpMOVZX, asm.OpMOVSX:
		return in.Width // source width
	case asm.OpMOVSXD:
		return 4
	}
	if in.Width >= 1 && in.Width <= 10 {
		return in.Width
	}
	return 8
}

func (x *inst) IsFrameSetup() bool {
	return x.in.Op == asm.OpPUSH || x.in.Op == asm.OpPOP
}

func (x *inst) SavedReg() (isa.Reg, bool) {
	if x.in.Op != asm.OpPUSH {
		return isa.RegNone, false
	}
	d, ok := x.in.Dst().(asm.RegArg)
	if !ok || !d.Reg.IsGPR() || d.Reg.Width() != 8 {
		return isa.RegNone, false
	}
	return isa.Reg(d.Reg.Num()), true
}

func (x *inst) VisitReads(f func(isa.Reg)) {
	in := &x.in
	for ai, a := range in.Args {
		switch v := a.(type) {
		case asm.RegArg:
			if !v.Reg.IsGPR() {
				continue
			}
			if ai == 0 && in.Op == asm.OpMOV {
				continue // pure write, handled as redefinition
			}
			f(isa.Reg(v.Reg.Num()))
		case asm.Mem:
			if v.Base != asm.RegNone && v.Base.IsGPR() {
				f(isa.Reg(v.Base.Num()))
			}
			if v.Index != asm.RegNone && v.Index.IsGPR() {
				f(isa.Reg(v.Index.Num()))
			}
		}
	}
}

func (x *inst) DefReg() (isa.Reg, bool) {
	d, ok := x.in.Dst().(asm.RegArg)
	if !ok || !d.Reg.IsGPR() {
		return isa.RegNone, false
	}
	return isa.Reg(d.Reg.Num()), true
}

func (x *inst) SlotLoad() (isa.Reg, isa.Mem, bool) {
	in := &x.in
	if in.Op != asm.OpMOV {
		return isa.RegNone, isa.Mem{}, false
	}
	d, ok := in.Dst().(asm.RegArg)
	if !ok || !d.Reg.IsGPR() {
		return isa.RegNone, isa.Mem{}, false
	}
	m, ok := in.Src().(asm.Mem)
	if !ok {
		return isa.RegNone, isa.Mem{}, false
	}
	return isa.Reg(d.Reg.Num()), isa.Mem{
		Base:  regNum(m.Base),
		Index: regNum(m.Index),
		Scale: m.Scale,
		Disp:  m.Disp,
	}, true
}

func (x *inst) IsBarrier() bool {
	op := x.in.Op
	return op == asm.OpCALL || op == asm.OpRET || op == asm.OpLEAVE ||
		op == asm.OpJMP || op.IsCondJump()
}

// divClobbers is rax and rdx: implicit division/extension operands.
var divClobbers = []isa.Reg{0, 2}

func (x *inst) Clobbers() []isa.Reg {
	switch x.in.Op {
	case asm.OpIDIV, asm.OpDIV, asm.OpCDQ, asm.OpCQO:
		return divClobbers
	}
	return nil
}

func (x *inst) UsesReg(r isa.Reg) bool {
	num := int(r)
	for _, a := range x.in.Args {
		switch v := a.(type) {
		case asm.RegArg:
			if v.Reg.IsGPR() && !v.Reg.IsHighByte() && v.Reg.Num() == num {
				return true
			}
		case asm.Mem:
			if v.Base != asm.RegNone && v.Base.IsGPR() && v.Base.Num() == num {
				return true
			}
			if v.Index != asm.RegNone && v.Index.IsGPR() && v.Index.Num() == num {
				return true
			}
		}
	}
	return false
}

// Tokens generalizes the instruction into its three tokens (§IV-B):
// mnemonic plus two operand slots in AT&T (reversed) order, immediates
// and displacements rewritten to 0xIMM, branch targets to ADDR, and
// extern call targets to ADDR FUNC.
func (x *inst) Tokens(tc *isa.TokenContext) [3]string {
	in := &x.in
	t := [3]string{asm.Mnemonic(in), TokBlank, TokBlank}
	slot := 1
	n := len(in.Args)
	// AT&T operand order: reverse of the stored Intel order.
	for i := n - 1; i >= 0 && slot < 3; i-- {
		a := in.Args[i]
		if tc.NoGeneralize {
			t[slot] = a.String()
			slot++
			continue
		}
		switch v := a.(type) {
		case asm.Imm:
			if v.Value < 0 {
				t[slot] = "$-0xIMM"
			} else {
				t[slot] = "$0xIMM"
			}
			slot++
		case asm.RegArg:
			t[slot] = v.String()
			slot++
		case asm.Mem:
			t[slot] = generalizeMem(v)
			slot++
		case asm.Sym:
			t[slot] = TokAddr
			slot++
			if slot < 3 {
				// A call outside .text is a library stub whose name
				// survives stripping (dynamic symbols); intra-text targets
				// in stripped binaries have no name.
				if in.Op == asm.OpCALL && tc.InText != nil && v.Resolved && !tc.InText(v.Addr) {
					t[slot] = TokFunc
					slot++
				}
			}
		}
	}
	return t
}

// Generalization tokens, mirrored from the vuc layer (the adapter cannot
// import it).
const (
	TokBlank = "BLANK"
	TokAddr  = "ADDR"
	TokFunc  = "FUNC"
)

// generalizeMem rewrites a memory operand with its displacement
// generalized, preserving structure, register names and the scale factor
// (§IV-B: "we don't touch the scale factor of effective address since it
// is related to variable length").
func generalizeMem(m asm.Mem) string {
	if m.Base == asm.RegNone && m.Index == asm.RegNone {
		return "0xIMM" // absolute address (literal pools)
	}
	var sb strings.Builder
	if m.Disp != 0 {
		if m.Disp < 0 {
			sb.WriteString("-0xIMM")
		} else {
			sb.WriteString("0xIMM")
		}
	}
	sb.WriteByte('(')
	if m.Base != asm.RegNone {
		sb.WriteString("%" + m.Base.String())
	}
	if m.Index != asm.RegNone {
		sb.WriteString(",%" + m.Index.String())
		sb.WriteString("," + strconv.Itoa(int(m.Scale)))
	}
	sb.WriteByte(')')
	return sb.String()
}

func (x *inst) Text() string { return asm.Print(&x.in) }
