package rv64

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// roundTrip encodes one instruction and decodes it back.
func roundTrip(t *testing.T, in Inst) Inst {
	t.Helper()
	code, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %s: %v", Print(&in), err)
	}
	out, err := DecodeAll(code, in.Addr)
	if err != nil {
		t.Fatalf("decode %s: %v", Print(&in), err)
	}
	if len(out) != 1 {
		t.Fatalf("decode %s: got %d instructions, want 1", Print(&in), len(out))
	}
	if out[0].Len != len(code) {
		t.Fatalf("decode %s: Len=%d, code is %d bytes", Print(&in), out[0].Len, len(code))
	}
	return out[0]
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpADDI, Rd: SP, Rs1: SP, Imm: -64},
		{Op: OpADDI, Rd: SP, Rs1: SP, Imm: 64},
		{Op: OpADDI, Rd: S0, Rs1: SP, Imm: 48},
		{Op: OpADDI, Rd: A5, Rs1: X0, Imm: 42},    // li
		{Op: OpADDI, Rd: A0, Rs1: A5, Imm: 0},     // mv
		{Op: OpADDI, Rd: A5, Rs1: A5, Imm: 2047},  // imm range edge
		{Op: OpADDI, Rd: A5, Rs1: A5, Imm: -2048}, // imm range edge
		{Op: OpSD, Rs1: SP, Rs2: RA, Imm: 56},     // prologue save
		{Op: OpSD, Rs1: SP, Rs2: S0, Imm: 48},     //
		{Op: OpLD, Rs1: SP, Rs2: X0, Rd: RA, Imm: 56},
		{Op: OpLW, Rd: A5, Rs1: S0, Imm: -20},
		{Op: OpSW, Rs1: S0, Rs2: A5, Imm: -20},
		{Op: OpLB, Rd: A4, Rs1: S0, Imm: -33},
		{Op: OpLBU, Rd: A4, Rs1: S0, Imm: -33},
		{Op: OpLH, Rd: A4, Rs1: A5, Imm: 6},
		{Op: OpLHU, Rd: A4, Rs1: A5, Imm: 6},
		{Op: OpLWU, Rd: A4, Rs1: A5, Imm: 4},
		{Op: OpSB, Rs1: S0, Rs2: A4, Imm: -33},
		{Op: OpSH, Rs1: S0, Rs2: A4, Imm: -34},
		{Op: OpLUI, Rd: A5, Imm: 0x602},
		{Op: OpAUIPC, Rd: T6, Imm: 0x1},
		{Op: OpJAL, Rd: RA, Imm: 0x400, Addr: 0x401000},
		{Op: OpJAL, Rd: X0, Imm: -0x40, Addr: 0x401000},
		{Op: OpJALR, Rd: X0, Rs1: RA}, // ret
		{Op: OpJALR, Rd: X0, Rs1: A5}, // jr a5
		{Op: OpBEQ, Rs1: A5, Rs2: A4, Imm: 0x30, Addr: 0x401000},
		{Op: OpBNE, Rs1: A5, Rs2: X0, Imm: -0x10, Addr: 0x401000},
		{Op: OpBLT, Rs1: A4, Rs2: A5, Imm: 0x100, Addr: 0x401000},
		{Op: OpBGE, Rs1: A4, Rs2: A5, Imm: 0x100, Addr: 0x401000},
		{Op: OpBLTU, Rs1: A4, Rs2: A5, Imm: 0x100, Addr: 0x401000},
		{Op: OpBGEU, Rs1: A4, Rs2: A5, Imm: 0x100, Addr: 0x401000},
		{Op: OpSLTI, Rd: A5, Rs1: A4, Imm: 10},
		{Op: OpSLTIU, Rd: A5, Rs1: A4, Imm: 1}, // seqz
		{Op: OpXORI, Rd: A5, Rs1: A5, Imm: 1},
		{Op: OpORI, Rd: A5, Rs1: A5, Imm: 0xff},
		{Op: OpANDI, Rd: A5, Rs1: A5, Imm: 0xff},
		{Op: OpSLLI, Rd: A5, Rs1: A5, Imm: 3},
		{Op: OpSLLI, Rd: A5, Rs1: A5, Imm: 63}, // 6-bit shamt
		{Op: OpSRLI, Rd: A5, Rs1: A5, Imm: 32},
		{Op: OpSRAI, Rd: A5, Rs1: A5, Imm: 63},
		{Op: OpADDIW, Rd: A5, Rs1: A5, Imm: -1},
		{Op: OpSLLIW, Rd: A5, Rs1: A5, Imm: 31},
		{Op: OpSRLIW, Rd: A5, Rs1: A5, Imm: 1},
		{Op: OpSRAIW, Rd: A5, Rs1: A5, Imm: 31},
		{Op: OpADD, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSUB, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSLL, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSLT, Rd: A5, Rs1: A4, Rs2: A5},
		{Op: OpSLTU, Rd: A5, Rs1: X0, Rs2: A4}, // snez
		{Op: OpXOR, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSRL, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSRA, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpOR, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpAND, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpADDW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSUBW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSLLW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSRLW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpSRAW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpMUL, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpDIV, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpDIVU, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpREM, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpREMU, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpMULW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpDIVW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpDIVUW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpREMW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpREMUW, Rd: A5, Rs1: A5, Rs2: A4},
		{Op: OpFLW, Rd: FA5, Rs1: S0, Imm: -24},
		{Op: OpFLD, Rd: FA5, Rs1: S0, Imm: -32},
		{Op: OpFSW, Rs1: S0, Rs2: FA5, Imm: -24},
		{Op: OpFSD, Rs1: S0, Rs2: FA5, Imm: -32},
		{Op: OpFADDS, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFSUBS, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFMULS, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFDIVS, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFADDD, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFSUBD, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFMULD, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFDIVD, Rd: FA5, Rs1: FA5, Rs2: FA4},
		{Op: OpFEQS, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFLTS, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFLES, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFEQD, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFLTD, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFLED, Rd: A5, Rs1: FA5, Rs2: FA4},
		{Op: OpFCVTWS, Rd: A5, Rs1: FA5},
		{Op: OpFCVTLS, Rd: A5, Rs1: FA5},
		{Op: OpFCVTWD, Rd: A5, Rs1: FA5},
		{Op: OpFCVTLD, Rd: A5, Rs1: FA5},
		{Op: OpFCVTSW, Rd: FA5, Rs1: A5},
		{Op: OpFCVTSL, Rd: FA5, Rs1: A5},
		{Op: OpFCVTDW, Rd: FA5, Rs1: A5},
		{Op: OpFCVTDL, Rd: FA5, Rs1: A5},
		{Op: OpFCVTSD, Rd: FA5, Rs1: FA4},
		{Op: OpFCVTDS, Rd: FA5, Rs1: FA4},
	}
	for _, in := range cases {
		got := roundTrip(t, in)
		if got.Op != in.Op {
			t.Errorf("%s: decoded op %s", Print(&in), got.Op)
			continue
		}
		if got.Rd != in.Rd && !in.Op.IsStore() && !in.Op.IsBranch() {
			t.Errorf("%s: decoded rd %s, want %s", Print(&in), got.Rd, in.Rd)
		}
		if got.Rs1 != in.Rs1 && in.Op != OpLUI && in.Op != OpAUIPC && in.Op != OpJAL {
			t.Errorf("%s: decoded rs1 %s, want %s", Print(&in), got.Rs1, in.Rs1)
		}
		if got.Imm != in.Imm && in.Op != OpJALR {
			t.Errorf("%s: decoded imm %d, want %d", Print(&in), got.Imm, in.Imm)
		}
	}
}

func TestCompressedForms(t *testing.T) {
	// These shapes must take the 2-byte encodings (realistic RVC density),
	// and still decode to the same instruction.
	compressed := []Inst{
		{Op: OpADDI, Rd: SP, Rs1: SP, Imm: -64}, // c.addi16sp
		{Op: OpADDI, Rd: A5, Rs1: A5, Imm: 1},   // c.addi
		{Op: OpADDI, Rd: A5, Rs1: X0, Imm: 31},  // c.li
		{Op: OpADDI, Rd: A0, Rs1: A5, Imm: 0},   // c.mv
		{Op: OpADD, Rd: A5, Rs1: A5, Rs2: A4},   // c.add
		{Op: OpJALR, Rd: X0, Rs1: RA},           // c.ret
		{Op: OpLW, Rd: A5, Rs1: SP, Imm: 16},    // c.lwsp
		{Op: OpLD, Rd: A5, Rs1: SP, Imm: 16},    // c.ldsp
		{Op: OpSW, Rs1: SP, Rs2: A5, Imm: 16},   // c.swsp
		{Op: OpSD, Rs1: SP, Rs2: RA, Imm: 56},   // c.sdsp
		{Op: OpLW, Rd: A5, Rs1: S0, Imm: 16},    // c.lw
		{Op: OpLD, Rd: A5, Rs1: S0, Imm: 16},    // c.ld
		{Op: OpSW, Rs1: S0, Rs2: A5, Imm: 16},   // c.sw
		{Op: OpSD, Rs1: S0, Rs2: A5, Imm: 16},   // c.sd
	}
	for _, in := range cases2(compressed) {
		code, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %s: %v", Print(&in), err)
		}
		if len(code) != 2 {
			t.Errorf("%s: encoded to %d bytes, want compressed (2)", Print(&in), len(code))
			continue
		}
		got := roundTrip(t, in)
		if got.Op != in.Op || got.Imm != in.Imm {
			t.Errorf("%s: round-trip mismatch: got %s", Print(&in), Print(&got))
		}
	}
	// Negative slot offsets must NOT compress (RVC offsets are unsigned) but
	// still encode.
	in := Inst{Op: OpLW, Rd: A5, Rs1: S0, Imm: -20}
	code, err := Encode(in)
	if err != nil || len(code) != 4 {
		t.Fatalf("lw a5,-20(s0): len=%d err=%v, want 4-byte form", len(code), err)
	}
}

func cases2(in []Inst) []Inst { return in }

func TestUnitAssembleBranches(t *testing.T) {
	var u Unit
	u.Label("f")
	u.Add(Inst{Op: OpADDI, Rd: SP, Rs1: SP, Imm: -32})
	u.Add(Inst{Op: OpSD, Rs1: SP, Rs2: RA, Imm: 24})
	u.Add(Inst{Op: OpBEQ, Rs1: A0, Rs2: X0, Sym: "skip"})
	u.Add(Inst{Op: OpJAL, Rd: RA, Sym: "callee"})
	u.Label("skip")
	u.Add(Inst{Op: OpLD, Rd: RA, Rs1: SP, Imm: 24})
	u.Add(Inst{Op: OpADDI, Rd: SP, Rs1: SP, Imm: 32})
	u.Add(Inst{Op: OpJALR, Rd: X0, Rs1: RA})
	u.Label("callee")
	u.Add(Inst{Op: OpJALR, Rd: X0, Rs1: RA})

	got, err := u.Assemble(0x401000, map[string]uint64{"printf": 0x400400})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Insts) != u.Len() {
		t.Fatalf("assembled %d instructions, want %d", len(got.Insts), u.Len())
	}
	// The branch must resolve to the label's address.
	br := got.Insts[2]
	tgt, ok := br.Target()
	if !ok || tgt != got.Labels["skip"] {
		t.Fatalf("branch target %#x, want %#x", tgt, got.Labels["skip"])
	}
	call := got.Insts[3]
	tgt, ok = call.Target()
	if !ok || tgt != got.Labels["callee"] {
		t.Fatalf("call target %#x, want %#x", tgt, got.Labels["callee"])
	}
	// Re-decoding the emitted code must reproduce the instruction stream.
	dec, err := DecodeAll(got.Code, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(got.Insts) {
		t.Fatalf("re-decoded %d instructions, want %d", len(dec), len(got.Insts))
	}
	for i := range dec {
		if dec[i].Op != got.Insts[i].Op || dec[i].Addr != got.Insts[i].Addr {
			t.Errorf("inst %d: re-decoded %s at %#x, assembled %s at %#x",
				i, dec[i].Op, dec[i].Addr, got.Insts[i].Op, got.Insts[i].Addr)
		}
	}
}

func TestLUIFusion(t *testing.T) {
	var u Unit
	u.Add(Inst{Op: OpLUI, Rd: A5, Imm: 0x602})
	u.Add(Inst{Op: OpLW, Rd: A4, Rs1: A5, Imm: 0x40})
	u.Add(Inst{Op: OpLUI, Rd: T6, Imm: 0x602})
	u.Add(Inst{Op: OpADDI, Rd: T6, Rs1: T6, Imm: 0x48})
	got, err := u.Assemble(0x401000, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(got.Code, 0x401000)
	if err != nil {
		t.Fatal(err)
	}
	if dec[1].Abs != 0x602040 {
		t.Errorf("fused load Abs = %#x, want 0x602040", dec[1].Abs)
	}
	if dec[3].Abs != 0x602048 {
		t.Errorf("fused addi Abs = %#x, want 0x602048", dec[3].Abs)
	}
	ins := Wrap(dec)
	if a, ok := ins[1].AbsAddr(); !ok || a != 0x602040 {
		t.Errorf("AbsAddr = %#x,%v; want 0x602040,true", a, ok)
	}
}

func TestArchSemantics(t *testing.T) {
	a, err := isa.ByName("rv64")
	if err != nil {
		t.Fatal(err)
	}
	if a.EMachine() != 243 {
		t.Errorf("EMachine = %d, want 243", a.EMachine())
	}
	if _, err := isa.ByMachine(243); err != nil {
		t.Errorf("ByMachine(243): %v", err)
	}
	if a.RegName(isa.Reg(S0)) != "s0" || a.RegName(isa.Reg(SP)) != "sp" {
		t.Errorf("RegName: s0=%q sp=%q", a.RegName(isa.Reg(S0)), a.RegName(isa.Reg(SP)))
	}

	// FP prologue → (s0, FrameFP); without the addi s0 → (sp, FrameSP).
	fp := Wrap([]Inst{
		{Op: OpADDI, Rd: SP, Rs1: SP, Imm: -48},
		{Op: OpSD, Rs1: SP, Rs2: RA, Imm: 40},
		{Op: OpSD, Rs1: SP, Rs2: S0, Imm: 32},
		{Op: OpADDI, Rd: S0, Rs1: SP, Imm: 48},
	})
	if r, f := a.DetectFrame(fp); r != isa.Reg(S0) || f != isa.FrameFP {
		t.Errorf("FP prologue: got (%s, %v)", a.RegName(r), f)
	}
	sp := Wrap([]Inst{
		{Op: OpADDI, Rd: SP, Rs1: SP, Imm: -32},
		{Op: OpSD, Rs1: SP, Rs2: RA, Imm: 24},
	})
	if r, f := a.DetectFrame(sp); r != isa.Reg(SP) || f != isa.FrameSP {
		t.Errorf("SP prologue: got (%s, %v)", a.RegName(r), f)
	}

	// Class / barrier / frame-setup semantics.
	call := Wrap([]Inst{{Op: OpJAL, Rd: RA, Imm: 0x100, Addr: 0x401000}})[0]
	if call.Class() != isa.ClassCall || !call.IsBarrier() {
		t.Error("jal ra must be a call barrier")
	}
	if tgt, ok := call.Target(); !ok || tgt != 0x401100 {
		t.Errorf("jal target %#x", tgt)
	}
	ret := Wrap([]Inst{{Op: OpJALR, Rd: X0, Rs1: RA}})[0]
	if ret.Class() != isa.ClassRet {
		t.Error("jalr x0,0(ra) must be a ret")
	}
	save := Wrap([]Inst{{Op: OpSD, Rs1: SP, Rs2: S1, Imm: 16}})[0]
	if !save.IsFrameSetup() {
		t.Error("sd s1,16(sp) must be frame setup")
	}
	if r, ok := save.SavedReg(); !ok || r != isa.Reg(S1) {
		t.Errorf("SavedReg = %v,%v", r, ok)
	}
	local := Wrap([]Inst{{Op: OpSW, Rs1: S0, Rs2: A5, Imm: -20}})[0]
	if local.IsFrameSetup() {
		t.Error("sw a5,-20(s0) is a variable access, not frame setup")
	}
	m, ok := local.MemArg()
	if !ok || m.Base != isa.Reg(S0) || m.Disp != -20 || local.AccessWidth() != 4 {
		t.Errorf("MemArg = %+v,%v width %d", m, ok, local.AccessWidth())
	}
	load := Wrap([]Inst{{Op: OpLW, Rd: A5, Rs1: S0, Imm: -20}})[0]
	if d, sm, ok := load.SlotLoad(); !ok || d != isa.Reg(A5) || sm.Disp != -20 {
		t.Errorf("SlotLoad = %v,%+v,%v", d, sm, ok)
	}
}

func TestTokensRV64(t *testing.T) {
	inText := func(addr uint64) bool { return addr >= 0x401000 && addr < 0x402000 }
	tc := &isa.TokenContext{InText: inText}
	cases := []struct {
		in   Inst
		want [3]string
	}{
		{Inst{Op: OpLW, Rd: A5, Rs1: S0, Imm: -20}, [3]string{"lw", "a5", "-0xIMM(s0)"}},
		{Inst{Op: OpSD, Rs1: SP, Rs2: A0, Imm: 40}, [3]string{"sd", "a0", "0xIMM(sp)"}},
		{Inst{Op: OpADDI, Rd: A5, Rs1: X0, Imm: 42}, [3]string{"li", "a5", "$0xIMM"}},
		{Inst{Op: OpADDI, Rd: A0, Rs1: A5, Imm: 0}, [3]string{"mv", "a0", "a5"}},
		{Inst{Op: OpADDI, Rd: A5, Rs1: A5, Imm: -8}, [3]string{"addi", "a5", "$-0xIMM"}},
		{Inst{Op: OpADD, Rd: A5, Rs1: A5, Rs2: A4}, [3]string{"add", "a5", "a5"}},
		{Inst{Op: OpJAL, Rd: RA, Imm: 0x100, Addr: 0x401000}, [3]string{"jal", "ADDR", "BLANK"}},
		{Inst{Op: OpJAL, Rd: RA, Imm: -0xC00, Addr: 0x401000}, [3]string{"jal", "ADDR", "FUNC"}},
		{Inst{Op: OpJAL, Rd: X0, Imm: 0x40, Addr: 0x401000}, [3]string{"j", "ADDR", "BLANK"}},
		{Inst{Op: OpJALR, Rd: X0, Rs1: RA}, [3]string{"ret", "BLANK", "BLANK"}},
		{Inst{Op: OpBEQ, Rs1: A5, Rs2: X0, Imm: 0x30, Addr: 0x401000}, [3]string{"beq", "a5", "ADDR"}},
		{Inst{Op: OpSLTIU, Rd: A5, Rs1: A4, Imm: 1}, [3]string{"seqz", "a5", "a4"}},
		{Inst{Op: OpFLD, Rd: FA5, Rs1: S0, Imm: -32}, [3]string{"fld", "fa5", "-0xIMM(s0)"}},
		{Inst{Op: OpFADDD, Rd: FA5, Rs1: FA5, Rs2: FA4}, [3]string{"fadd.d", "fa5", "fa5"}},
		{Inst{Op: OpLUI, Rd: A5, Imm: 0x602}, [3]string{"lui", "a5", "$0xIMM"}},
	}
	for _, c := range cases {
		got := Wrap([]Inst{c.in})[0].Tokens(tc)
		if got != c.want {
			t.Errorf("%s: tokens %v, want %v", Print(&c.in), got, c.want)
		}
	}
	// Fused absolute access generalizes to a bare 0xIMM operand.
	f := Inst{Op: OpLW, Rd: A4, Rs1: A5, Imm: 0x40, Abs: 0x602040}
	if got := Wrap([]Inst{f})[0].Tokens(tc); got != [3]string{"lw", "a4", "0xIMM"} {
		t.Errorf("fused: tokens %v", got)
	}
	// NoGeneralize keeps concrete operands.
	raw := Wrap([]Inst{{Op: OpLW, Rd: A5, Rs1: S0, Imm: -20}})[0].Tokens(&isa.TokenContext{NoGeneralize: true})
	if raw != [3]string{"lw", "a5", "-0x14(s0)"} {
		t.Errorf("no-generalize tokens %v", raw)
	}
}

func TestDecodeRobustness(t *testing.T) {
	// Arbitrary bytes must decode fully (OpUNIMP for unknowns), never panic,
	// and the lengths must tile the input exactly.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		insts, err := DecodeAll(buf, 0x401000)
		if err != nil {
			t.Fatal(err)
		}
		off := 0
		for i := range insts {
			if insts[i].Addr != 0x401000+uint64(off) {
				t.Fatalf("trial %d: inst %d addr %#x, want %#x", trial, i, insts[i].Addr, 0x401000+off)
			}
			off += insts[i].Len
		}
		if off != len(buf) {
			t.Fatalf("trial %d: decoded %d bytes of %d", trial, off, len(buf))
		}
	}
}
