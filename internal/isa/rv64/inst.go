// Package rv64 is the RISC-V 64 substrate: an RV64IMFD(+C subset) decoder,
// encoder and two-pass assembler, plus the adapter that exposes it through
// the architecture interface (internal/isa). The supported subset is what
// the synthetic compiler backend emits — integer ALU and M-extension ops,
// loads/stores of every width, single/double float arithmetic and
// conversions, branches, jal/jalr, lui, and the common compressed forms —
// which is also the shape real GCC/Clang RISC-V output takes for the same
// source constructs.
package rv64

// Reg is a RISC-V register: x0..x31 are 0..31, f0..f31 are 32..63. The
// numbering doubles as the architecture's neutral register numbering.
type Reg uint8

// Integer registers (ABI names).
const (
	X0 Reg = iota // zero
	RA            // x1
	SP            // x2
	GP
	TP
	T0
	T1
	T2
	S0 // x8, frame pointer
	S1
	A0
	A1
	A2
	A3
	A4
	A5
	A6
	A7
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	S11
	T3
	T4
	T5
	T6
)

// F returns the i-th float register (f0..f31).
func F(i int) Reg { return Reg(32 + i) }

// Float argument/temp registers used by the backend.
const (
	FA0 = Reg(32 + 10)
	FA1 = Reg(32 + 11)
	FA2 = Reg(32 + 12)
	FA3 = Reg(32 + 13)
	FA4 = Reg(32 + 14)
	FA5 = Reg(32 + 15)
)

// IsInt reports an integer (x) register.
func (r Reg) IsInt() bool { return r < 32 }

// IsFloat reports a float (f) register.
func (r Reg) IsFloat() bool { return r >= 32 && r < 64 }

var xNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

var fNames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

func (r Reg) String() string {
	switch {
	case r < 32:
		return xNames[r]
	case r < 64:
		return fNames[r-32]
	}
	return "?"
}

// Op is an operation.
type Op uint8

// Operations. The decoder maps both compressed and full encodings onto the
// same ops; Inst.Len distinguishes them.
const (
	OpINVALID Op = iota

	OpLUI
	OpAUIPC
	OpJAL
	OpJALR

	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU
	OpSB
	OpSH
	OpSW
	OpSD

	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW

	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW

	OpMUL
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW

	OpFLW
	OpFLD
	OpFSW
	OpFSD
	OpFADDS
	OpFSUBS
	OpFMULS
	OpFDIVS
	OpFADDD
	OpFSUBD
	OpFMULD
	OpFDIVD
	OpFEQS
	OpFLTS
	OpFLES
	OpFEQD
	OpFLTD
	OpFLED
	OpFCVTWS // fcvt.w.s  (float → int32)
	OpFCVTLS // fcvt.l.s
	OpFCVTWD // fcvt.w.d
	OpFCVTLD // fcvt.l.d
	OpFCVTSW // fcvt.s.w  (int32 → float)
	OpFCVTSL // fcvt.s.l
	OpFCVTDW // fcvt.d.w
	OpFCVTDL // fcvt.d.l
	OpFCVTSD // fcvt.s.d  (double → float)
	OpFCVTDS // fcvt.d.s

	OpUNIMP // undecodable word (kept so streams always decode fully)
)

var opNames = map[Op]string{
	OpLUI: "lui", OpAUIPC: "auipc", OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLD: "ld",
	OpLBU: "lbu", OpLHU: "lhu", OpLWU: "lwu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli",
	OpSRAI: "srai", OpADDIW: "addiw", OpSLLIW: "slliw", OpSRLIW: "srliw",
	OpSRAIW: "sraiw",
	OpADD:   "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt",
	OpSLTU: "sltu", OpXOR: "xor", OpSRL: "srl", OpSRA: "sra",
	OpOR: "or", OpAND: "and", OpADDW: "addw", OpSUBW: "subw",
	OpSLLW: "sllw", OpSRLW: "srlw", OpSRAW: "sraw",
	OpMUL: "mul", OpDIV: "div", OpDIVU: "divu", OpREM: "rem",
	OpREMU: "remu", OpMULW: "mulw", OpDIVW: "divw", OpDIVUW: "divuw",
	OpREMW: "remw", OpREMUW: "remuw",
	OpFLW: "flw", OpFLD: "fld", OpFSW: "fsw", OpFSD: "fsd",
	OpFADDS: "fadd.s", OpFSUBS: "fsub.s", OpFMULS: "fmul.s", OpFDIVS: "fdiv.s",
	OpFADDD: "fadd.d", OpFSUBD: "fsub.d", OpFMULD: "fmul.d", OpFDIVD: "fdiv.d",
	OpFEQS: "feq.s", OpFLTS: "flt.s", OpFLES: "fle.s",
	OpFEQD: "feq.d", OpFLTD: "flt.d", OpFLED: "fle.d",
	OpFCVTWS: "fcvt.w.s", OpFCVTLS: "fcvt.l.s",
	OpFCVTWD: "fcvt.w.d", OpFCVTLD: "fcvt.l.d",
	OpFCVTSW: "fcvt.s.w", OpFCVTSL: "fcvt.s.l",
	OpFCVTDW: "fcvt.d.w", OpFCVTDL: "fcvt.d.l",
	OpFCVTSD: "fcvt.s.d", OpFCVTDS: "fcvt.d.s",
	OpUNIMP: "unimp",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// IsLoad reports a memory load (integer or float).
func (o Op) IsLoad() bool {
	return (o >= OpLB && o <= OpLWU) || o == OpFLW || o == OpFLD
}

// IsIntLoad reports an integer-register load.
func (o Op) IsIntLoad() bool { return o >= OpLB && o <= OpLWU }

// IsStore reports a memory store (integer or float).
func (o Op) IsStore() bool {
	return (o >= OpSB && o <= OpSD) || o == OpFSW || o == OpFSD
}

// IsBranch reports a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBEQ && o <= OpBGEU }

// MemWidth is the access width in bytes for loads and stores; 0 otherwise.
func (o Op) MemWidth() int {
	switch o {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLW, OpLWU, OpSW, OpFLW, OpFSW:
		return 4
	case OpLD, OpSD, OpFLD, OpFSD:
		return 8
	}
	return 0
}

// Inst is one RV64 instruction. Loads/stores use Rs1 as the base register
// and Imm as the displacement (the stored value of a store is Rs2).
// Branches and JAL carry the label in Sym until assembly resolves it into
// Imm (a pc-relative displacement); the decoder leaves Sym empty and sets
// Imm to the already-applied byte displacement so Target() is Addr+Imm.
type Inst struct {
	Addr uint64
	Len  int // 2 (compressed) or 4
	Op   Op
	Rd   Reg
	Rs1  Reg
	Rs2  Reg
	Imm  int64
	Sym  string // unresolved branch/call target (assembler only)
	// Abs is the absolute address this instruction effectively touches,
	// filled by the decoder's lui-fusion pass: a `lui rd, hi` followed by a
	// load/store based on rd (or an addi onto rd) addresses hi<<12 + lo.
	Abs uint64
}

// Target returns the resolved control-flow target of a branch or jal.
func (in *Inst) Target() (uint64, bool) {
	switch {
	case in.Op == OpJAL, in.Op.IsBranch():
		return uint64(int64(in.Addr) + in.Imm), true
	}
	return 0, false
}
