package rv64

import (
	"errors"
	"fmt"
)

// ErrDuplicateLabel reports a label defined twice in one unit.
var ErrDuplicateLabel = errors.New("rv64: duplicate label")

// ErrUndefinedLabel reports a branch target that neither the unit's labels
// nor the external symbol map can resolve.
var ErrUndefinedLabel = errors.New("rv64: undefined label")

// Unit is an assembly unit: a sequence of instructions with interleaved
// label definitions, assembled in two passes so forward branches work.
type Unit struct {
	items []unitItem
}

type unitItem struct {
	label string // non-empty for a label definition
	inst  Inst
}

// Label defines a label at the current position.
func (u *Unit) Label(name string) {
	u.items = append(u.items, unitItem{label: name})
}

// Add appends an instruction.
func (u *Unit) Add(in Inst) {
	u.items = append(u.items, unitItem{inst: in})
}

// Len returns the number of instructions (excluding label definitions).
func (u *Unit) Len() int {
	n := 0
	for _, it := range u.items {
		if it.label == "" {
			n++
		}
	}
	return n
}

// Assembled is the result of Unit.Assemble.
type Assembled struct {
	Code   []byte
	Insts  []Inst            // final instructions with Addr and resolved targets
	Labels map[string]uint64 // label name → virtual address
}

// Assemble lays the unit out at virtual address base. extern resolves
// symbols not defined as local labels (e.g. callees in other units); it may
// be nil.
//
// The encoder never compresses instructions with unresolved symbols
// (branches, jal), so instruction lengths are independent of final
// displacements and a simple two-pass scheme is exact.
func (u *Unit) Assemble(base uint64, extern map[string]uint64) (*Assembled, error) {
	labels := make(map[string]uint64)

	// Pass 1: lengths and label addresses.
	addr := base
	lens := make([]int, 0, len(u.items))
	for _, it := range u.items {
		if it.label != "" {
			if _, dup := labels[it.label]; dup {
				return nil, fmt.Errorf("%q: %w", it.label, ErrDuplicateLabel)
			}
			labels[it.label] = addr
			lens = append(lens, 0)
			continue
		}
		in := it.inst
		in.Addr = addr
		if in.Sym != "" {
			in.Imm = 0 // placeholder displacement for the length pass
		}
		code, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("pass1 at %#x (%s): %w", addr, it.inst.Op, err)
		}
		lens = append(lens, len(code))
		addr += uint64(len(code))
	}

	// Pass 2: resolve and emit.
	out := &Assembled{Labels: labels}
	addr = base
	for i, it := range u.items {
		if it.label != "" {
			continue
		}
		in := it.inst
		in.Addr = addr
		if in.Sym != "" {
			target, ok := labels[in.Sym]
			if !ok {
				target, ok = extern[in.Sym]
			}
			if !ok {
				return nil, fmt.Errorf("%q: %w", in.Sym, ErrUndefinedLabel)
			}
			in.Imm = int64(target) - int64(addr)
		}
		code, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("pass2 at %#x (%s): %w", addr, in.Op, err)
		}
		if len(code) != lens[i] {
			return nil, fmt.Errorf("at %#x (%s): pass length drift %d != %d",
				addr, in.Op, len(code), lens[i])
		}
		in.Len = len(code)
		out.Code = append(out.Code, code...)
		out.Insts = append(out.Insts, in)
		addr += uint64(len(code))
	}
	return out, nil
}
