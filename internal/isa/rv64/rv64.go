package rv64

import (
	"fmt"

	"repro/internal/isa"
)

// Arch is the RV64 implementation of isa.Arch.
type Arch struct{}

func init() { isa.Register(Arch{}) }

// Name returns "rv64".
func (Arch) Name() string { return "rv64" }

// EMachine returns the ELF e_machine value for RISC-V.
func (Arch) EMachine() uint16 { return 243 }

// DecodeAll decodes a code image into the neutral instruction stream.
func (Arch) DecodeAll(code []byte, addr uint64) ([]isa.Inst, error) {
	raw, err := DecodeAll(code, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(raw), nil
}

// Wrap adapts concrete instructions to the neutral interface.
func Wrap(raw []Inst) []isa.Inst {
	out := make([]isa.Inst, len(raw))
	for i := range raw {
		out[i] = &inst{&raw[i]}
	}
	return out
}

// DetectFrame inspects the prologue: `addi s0, sp, frameSize` establishes a
// frame pointer (FP convention, slots addressed off s0); its absence means
// the function addresses slots off sp directly.
func (Arch) DetectFrame(insts []isa.Inst) (isa.Reg, isa.Frame) {
	limit := len(insts)
	if limit > 8 {
		limit = 8
	}
	for _, in := range insts[:limit] {
		w, ok := in.(*inst)
		if !ok {
			break
		}
		if w.i.Op == OpADDI && w.i.Rd == S0 && w.i.Rs1 == SP {
			return isa.Reg(S0), isa.FrameFP
		}
	}
	return isa.Reg(SP), isa.FrameSP
}

// CalleeSaved lists the registers the backend promotes variables into:
// s1..s11 (s0 is reserved as the frame pointer).
func (Arch) CalleeSaved() []isa.Reg {
	out := []isa.Reg{isa.Reg(S1)}
	for r := S2; r <= S11; r++ {
		out = append(out, isa.Reg(r))
	}
	return out
}

// RegName names a register in the neutral numbering.
func (Arch) RegName(r isa.Reg) string {
	if r >= 0 && r < 64 {
		return Reg(r).String()
	}
	return fmt.Sprintf("reg%d", r)
}

// inst adapts *Inst to isa.Inst.
type inst struct{ i *Inst }

func (w *inst) raw() *Inst { return w.i }

// Addr is the virtual address.
func (w *inst) Addr() uint64 { return w.raw().Addr }

// Len is the encoded length (2 or 4 bytes).
func (w *inst) Len() int { return w.raw().Len }

// Class classifies control flow: jal with rd=ra is a call, rd=zero a plain
// jump; jalr x0,0(ra) is the return idiom, other jalr forms are indirect
// calls/jumps.
func (w *inst) Class() isa.Class {
	switch {
	case w.i.Op == OpJAL:
		if w.i.Rd == RA {
			return isa.ClassCall
		}
		return isa.ClassJump
	case w.i.Op == OpJALR:
		switch {
		case w.i.Rd == X0 && w.i.Rs1 == RA && w.i.Imm == 0:
			return isa.ClassRet
		case w.i.Rd == X0:
			return isa.ClassJump
		}
		return isa.ClassCall
	case w.i.Op.IsBranch():
		return isa.ClassCondJump
	}
	return isa.ClassOther
}

// Target is the resolved branch/jal destination.
func (w *inst) Target() (uint64, bool) { return w.raw().Target() }

// MemArg exposes the load/store operand as base+displacement.
func (w *inst) MemArg() (isa.Mem, bool) {
	if w.i.Op.MemWidth() == 0 {
		return isa.Mem{}, false
	}
	return isa.Mem{
		Base:  isa.Reg(w.i.Rs1),
		Index: isa.RegNone,
		Scale: 1,
		Disp:  int32(w.i.Imm),
	}, true
}

// AbsAddr reports the absolute address of a lui-fused access.
func (w *inst) AbsAddr() (uint64, bool) {
	if w.i.Abs != 0 {
		return w.i.Abs, true
	}
	return 0, false
}

// AccessWidth is the memory access width; address materialization
// (lui+addi) counts as a 1-byte touch, like x86 lea.
func (w *inst) AccessWidth() int {
	if n := w.i.Op.MemWidth(); n > 0 {
		return n
	}
	return 1
}

// savedClass reports registers whose prologue spills are frame maintenance
// rather than variable accesses: ra, the frame pointer and the s-registers.
func savedClass(r Reg) bool {
	return r == RA || r == S0 || r == S1 || (r >= S2 && r <= S11)
}

// IsFrameSetup reports stack adjustment, frame-pointer establishment and
// callee-save spills/restores.
func (w *inst) IsFrameSetup() bool {
	switch {
	case w.i.Op == OpADDI && w.i.Rd == SP && w.i.Rs1 == SP:
		return true
	case w.i.Op == OpADDI && w.i.Rd == S0 && w.i.Rs1 == SP:
		return true
	case w.i.Op == OpSD && w.i.Rs1 == SP && savedClass(w.i.Rs2):
		return true
	case w.i.Op == OpLD && w.i.Rs1 == SP && savedClass(w.i.Rd):
		return true
	}
	return false
}

// SavedReg reports the register a prologue sp-relative store saves.
func (w *inst) SavedReg() (isa.Reg, bool) {
	if w.i.Op == OpSD && w.i.Rs1 == SP && w.i.Rs2.IsInt() && w.i.Rs2 != X0 {
		return isa.Reg(w.i.Rs2), true
	}
	return isa.RegNone, false
}

// VisitReads visits every integer register the instruction reads.
func (w *inst) VisitReads(f func(isa.Reg)) {
	emit := func(r Reg) {
		if r.IsInt() && r != X0 {
			f(isa.Reg(r))
		}
	}
	switch {
	case w.i.Op == OpLUI, w.i.Op == OpAUIPC, w.i.Op == OpJAL, w.i.Op == OpUNIMP:
	case w.i.Op == OpJALR:
		emit(w.i.Rs1)
	case w.i.Op.IsLoad():
		emit(w.i.Rs1)
	case w.i.Op.IsStore():
		emit(w.i.Rs1)
		emit(w.i.Rs2)
	case w.i.Op.IsBranch():
		emit(w.i.Rs1)
		emit(w.i.Rs2)
	case isImmALU(w.i.Op):
		emit(w.i.Rs1)
	case w.i.Op >= OpADD && w.i.Op <= OpREMUW:
		emit(w.i.Rs1)
		emit(w.i.Rs2)
	case w.i.Op >= OpFCVTWS && w.i.Op <= OpFCVTDS:
		emit(w.i.Rs1) // int→float conversions read an x register; float sources filter out
	}
}

// DefReg is the integer register the instruction writes.
func (w *inst) DefReg() (isa.Reg, bool) {
	if w.i.Op.IsStore() || w.i.Op.IsBranch() {
		return isa.RegNone, false
	}
	if w.i.Rd.IsInt() && w.i.Rd != X0 {
		return isa.Reg(w.i.Rd), true
	}
	return isa.RegNone, false
}

// SlotLoad reports an integer load (the alias-creating shape).
func (w *inst) SlotLoad() (isa.Reg, isa.Mem, bool) {
	if !w.i.Op.IsIntLoad() || w.i.Rd == X0 {
		return isa.RegNone, isa.Mem{}, false
	}
	m, _ := w.MemArg()
	return isa.Reg(w.i.Rd), m, true
}

// IsBarrier reports control transfers, which invalidate register aliases.
func (w *inst) IsBarrier() bool { return w.Class() != isa.ClassOther }

// Clobbers is empty: RV64 has no instructions with implicit register
// destinations (division writes only rd).
func (w *inst) Clobbers() []isa.Reg { return nil }

// UsesReg reports whether the instruction references the register. Unused
// operand fields hold x0, which is never a queried register.
func (w *inst) UsesReg(r isa.Reg) bool {
	nr := Reg(r)
	return w.i.Rd == nr || w.i.Rs1 == nr || w.i.Rs2 == nr
}

// Text is the disassembly.
func (w *inst) Text() string { return Print(w.raw()) }
