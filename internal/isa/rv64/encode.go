package rv64

import (
	"errors"
	"fmt"
)

// ErrBadEncoding reports an instruction the encoder cannot represent.
var ErrBadEncoding = errors.New("rv64: bad encoding")

// Major opcodes.
const (
	opLoad   = 0x03
	opLoadFP = 0x07
	opOpImm  = 0x13
	opAuipc  = 0x17
	opOpImmW = 0x1b
	opStore  = 0x23
	opStorFP = 0x27
	opOp     = 0x33
	opLui    = 0x37
	opOpW    = 0x3b
	opOpFP   = 0x53
	opBranch = 0x63
	opJalr   = 0x67
	opJal    = 0x6f
)

type enc32 struct {
	opcode uint32
	funct3 uint32
	funct7 uint32
	kind   byte // 'R','I','S','B','U','J','F' (F = OP-FP R-type with fixed rs2 for cvt)
	rs2fix uint32
}

var encTable = map[Op]enc32{
	OpLUI:   {opLui, 0, 0, 'U', 0},
	OpAUIPC: {opAuipc, 0, 0, 'U', 0},
	OpJAL:   {opJal, 0, 0, 'J', 0},
	OpJALR:  {opJalr, 0, 0, 'I', 0},

	OpBEQ: {opBranch, 0, 0, 'B', 0}, OpBNE: {opBranch, 1, 0, 'B', 0},
	OpBLT: {opBranch, 4, 0, 'B', 0}, OpBGE: {opBranch, 5, 0, 'B', 0},
	OpBLTU: {opBranch, 6, 0, 'B', 0}, OpBGEU: {opBranch, 7, 0, 'B', 0},

	OpLB: {opLoad, 0, 0, 'I', 0}, OpLH: {opLoad, 1, 0, 'I', 0},
	OpLW: {opLoad, 2, 0, 'I', 0}, OpLD: {opLoad, 3, 0, 'I', 0},
	OpLBU: {opLoad, 4, 0, 'I', 0}, OpLHU: {opLoad, 5, 0, 'I', 0},
	OpLWU: {opLoad, 6, 0, 'I', 0},
	OpFLW: {opLoadFP, 2, 0, 'I', 0}, OpFLD: {opLoadFP, 3, 0, 'I', 0},

	OpSB: {opStore, 0, 0, 'S', 0}, OpSH: {opStore, 1, 0, 'S', 0},
	OpSW: {opStore, 2, 0, 'S', 0}, OpSD: {opStore, 3, 0, 'S', 0},
	OpFSW: {opStorFP, 2, 0, 'S', 0}, OpFSD: {opStorFP, 3, 0, 'S', 0},

	OpADDI: {opOpImm, 0, 0, 'I', 0}, OpSLTI: {opOpImm, 2, 0, 'I', 0},
	OpSLTIU: {opOpImm, 3, 0, 'I', 0}, OpXORI: {opOpImm, 4, 0, 'I', 0},
	OpORI: {opOpImm, 6, 0, 'I', 0}, OpANDI: {opOpImm, 7, 0, 'I', 0},
	OpSLLI: {opOpImm, 1, 0x00, 'R', 0}, OpSRLI: {opOpImm, 5, 0x00, 'R', 0},
	OpSRAI:  {opOpImm, 5, 0x10, 'R', 0},
	OpADDIW: {opOpImmW, 0, 0, 'I', 0},
	OpSLLIW: {opOpImmW, 1, 0x00, 'R', 0}, OpSRLIW: {opOpImmW, 5, 0x00, 'R', 0},
	OpSRAIW: {opOpImmW, 5, 0x20, 'R', 0},

	OpADD: {opOp, 0, 0x00, 'R', 0}, OpSUB: {opOp, 0, 0x20, 'R', 0},
	OpSLL: {opOp, 1, 0x00, 'R', 0}, OpSLT: {opOp, 2, 0x00, 'R', 0},
	OpSLTU: {opOp, 3, 0x00, 'R', 0}, OpXOR: {opOp, 4, 0x00, 'R', 0},
	OpSRL: {opOp, 5, 0x00, 'R', 0}, OpSRA: {opOp, 5, 0x20, 'R', 0},
	OpOR: {opOp, 6, 0x00, 'R', 0}, OpAND: {opOp, 7, 0x00, 'R', 0},
	OpADDW: {opOpW, 0, 0x00, 'R', 0}, OpSUBW: {opOpW, 0, 0x20, 'R', 0},
	OpSLLW: {opOpW, 1, 0x00, 'R', 0}, OpSRLW: {opOpW, 5, 0x00, 'R', 0},
	OpSRAW: {opOpW, 5, 0x20, 'R', 0},

	OpMUL: {opOp, 0, 0x01, 'R', 0}, OpDIV: {opOp, 4, 0x01, 'R', 0},
	OpDIVU: {opOp, 5, 0x01, 'R', 0}, OpREM: {opOp, 6, 0x01, 'R', 0},
	OpREMU: {opOp, 7, 0x01, 'R', 0},
	OpMULW: {opOpW, 0, 0x01, 'R', 0}, OpDIVW: {opOpW, 4, 0x01, 'R', 0},
	OpDIVUW: {opOpW, 5, 0x01, 'R', 0}, OpREMW: {opOpW, 6, 0x01, 'R', 0},
	OpREMUW: {opOpW, 7, 0x01, 'R', 0},

	// OP-FP arithmetic uses rm=dynamic (0b111) in funct3.
	OpFADDS: {opOpFP, 7, 0x00, 'R', 0}, OpFSUBS: {opOpFP, 7, 0x04, 'R', 0},
	OpFMULS: {opOpFP, 7, 0x08, 'R', 0}, OpFDIVS: {opOpFP, 7, 0x0c, 'R', 0},
	OpFADDD: {opOpFP, 7, 0x01, 'R', 0}, OpFSUBD: {opOpFP, 7, 0x05, 'R', 0},
	OpFMULD: {opOpFP, 7, 0x09, 'R', 0}, OpFDIVD: {opOpFP, 7, 0x0d, 'R', 0},
	OpFEQS: {opOpFP, 2, 0x50, 'R', 0}, OpFLTS: {opOpFP, 1, 0x50, 'R', 0},
	OpFLES: {opOpFP, 0, 0x50, 'R', 0},
	OpFEQD: {opOpFP, 2, 0x51, 'R', 0}, OpFLTD: {opOpFP, 1, 0x51, 'R', 0},
	OpFLED: {opOpFP, 0, 0x51, 'R', 0},
	// Conversions: rs2 selects the integer width, rm=rtz for fp→int.
	OpFCVTWS: {opOpFP, 1, 0x60, 'F', 0}, OpFCVTLS: {opOpFP, 1, 0x60, 'F', 2},
	OpFCVTWD: {opOpFP, 1, 0x61, 'F', 0}, OpFCVTLD: {opOpFP, 1, 0x61, 'F', 2},
	OpFCVTSW: {opOpFP, 7, 0x68, 'F', 0}, OpFCVTSL: {opOpFP, 7, 0x68, 'F', 2},
	OpFCVTDW: {opOpFP, 7, 0x69, 'F', 0}, OpFCVTDL: {opOpFP, 7, 0x69, 'F', 2},
	OpFCVTSD: {opOpFP, 7, 0x20, 'F', 1}, OpFCVTDS: {opOpFP, 0, 0x21, 'F', 0},
}

func xr(r Reg) uint32 { return uint32(r) & 31 }

// Encode emits an instruction as 2 (compressed) or 4 bytes. Branches,
// jumps and calls are never compressed, so instruction lengths are
// independent of label distances and two-pass assembly is exact.
func Encode(in Inst) ([]byte, error) {
	if c, ok := compress(in); ok {
		return []byte{byte(c), byte(c >> 8)}, nil
	}
	e, ok := encTable[in.Op]
	if !ok {
		return nil, fmt.Errorf("%w: op %s", ErrBadEncoding, in.Op)
	}
	var w uint32
	switch e.kind {
	case 'R':
		switch in.Op {
		case OpSLLI, OpSRLI, OpSRAI:
			// RV64 shift-immediate: funct6 + 6-bit shamt.
			w = e.funct7<<26 | (uint32(in.Imm)&63)<<20 | xr(in.Rs1)<<15 |
				e.funct3<<12 | xr(in.Rd)<<7 | e.opcode
		case OpSLLIW, OpSRLIW, OpSRAIW:
			w = e.funct7<<25 | (uint32(in.Imm)&31)<<20 | xr(in.Rs1)<<15 |
				e.funct3<<12 | xr(in.Rd)<<7 | e.opcode
		default:
			w = e.funct7<<25 | xr(in.Rs2)<<20 | xr(in.Rs1)<<15 |
				e.funct3<<12 | xr(in.Rd)<<7 | e.opcode
		}
	case 'F':
		w = e.funct7<<25 | e.rs2fix<<20 | xr(in.Rs1)<<15 | e.funct3<<12 | xr(in.Rd)<<7 | e.opcode
	case 'I':
		if in.Imm < -2048 || in.Imm > 2047 {
			return nil, fmt.Errorf("%w: %s imm %d out of I range", ErrBadEncoding, in.Op, in.Imm)
		}
		w = (uint32(in.Imm)&0xfff)<<20 | xr(in.Rs1)<<15 | e.funct3<<12 | xr(in.Rd)<<7 | e.opcode
	case 'S':
		if in.Imm < -2048 || in.Imm > 2047 {
			return nil, fmt.Errorf("%w: %s imm %d out of S range", ErrBadEncoding, in.Op, in.Imm)
		}
		imm := uint32(in.Imm) & 0xfff
		w = (imm>>5)<<25 | xr(in.Rs2)<<20 | xr(in.Rs1)<<15 | e.funct3<<12 | (imm&31)<<7 | e.opcode
	case 'B':
		if in.Imm < -4096 || in.Imm > 4094 || in.Imm&1 != 0 {
			return nil, fmt.Errorf("%w: branch disp %d out of range", ErrBadEncoding, in.Imm)
		}
		imm := uint32(in.Imm)
		w = (imm>>12&1)<<31 | (imm>>5&0x3f)<<25 | xr(in.Rs2)<<20 | xr(in.Rs1)<<15 |
			e.funct3<<12 | (imm>>1&0xf)<<8 | (imm>>11&1)<<7 | e.opcode
	case 'U':
		w = (uint32(in.Imm)&0xfffff)<<12 | xr(in.Rd)<<7 | e.opcode
	case 'J':
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 || in.Imm&1 != 0 {
			return nil, fmt.Errorf("%w: jal disp %d out of range", ErrBadEncoding, in.Imm)
		}
		imm := uint32(in.Imm)
		w = (imm>>20&1)<<31 | (imm>>1&0x3ff)<<21 | (imm>>11&1)<<20 |
			(imm>>12&0xff)<<12 | xr(in.Rd)<<7 | e.opcode
	}
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, nil
}

// cReg reports whether r is one of the compressed-form registers x8..x15.
func cReg(r Reg) bool { return r >= 8 && r <= 15 }

// compress maps an instruction to its RVC form when one exists in the
// supported subset. The mapping depends only on op, registers and
// immediate — never on addresses — so it is stable across assembly passes.
// Control flow with symbolic targets is deliberately left uncompressed.
func compress(in Inst) (uint16, bool) {
	switch in.Op {
	case OpADDI:
		switch {
		case in.Rd == SP && in.Rs1 == SP && in.Imm != 0 && in.Imm%16 == 0 &&
			in.Imm >= -512 && in.Imm <= 496:
			// c.addi16sp
			imm := uint16(in.Imm)
			return 0x6101 | (imm>>9&1)<<12 | (imm>>4&1)<<6 | (imm>>6&1)<<5 |
				(imm>>7&3)<<3 | (imm>>5&1)<<2, true
		case in.Rd != X0 && in.Rd == in.Rs1 && in.Imm != 0 &&
			in.Imm >= -32 && in.Imm <= 31:
			// c.addi
			imm := uint16(in.Imm)
			return 0x0001 | (imm>>5&1)<<12 | uint16(in.Rd)<<7 | (imm&31)<<2, true
		case in.Rd != X0 && in.Rs1 == X0 && in.Imm >= -32 && in.Imm <= 31:
			// c.li
			imm := uint16(in.Imm)
			return 0x4001 | (imm>>5&1)<<12 | uint16(in.Rd)<<7 | (imm&31)<<2, true
		case in.Rd != X0 && in.Rs1 != X0 && in.Imm == 0 && in.Rd != in.Rs1:
			// c.mv rd, rs1
			return 0x8002 | uint16(in.Rd)<<7 | uint16(in.Rs1)<<2, true
		}
	case OpADD:
		if in.Rd != X0 && in.Rd == in.Rs1 && in.Rs2 != X0 {
			// c.add
			return 0x9002 | uint16(in.Rd)<<7 | uint16(in.Rs2)<<2, true
		}
	case OpJALR:
		if in.Rd == X0 && in.Rs1 != X0 && in.Imm == 0 && in.Sym == "" {
			// c.jr (covers ret = c.jr ra)
			return 0x8002 | uint16(in.Rs1)<<7, true
		}
	case OpLW:
		if in.Rs1 == SP && in.Rd != X0 && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0 {
			// c.lwsp
			u := uint16(in.Imm)
			return 0x4002 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u>>2&7)<<4 | (u>>6&3)<<2, true
		}
		if cReg(in.Rd) && cReg(in.Rs1) && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0 {
			// c.lw
			u := uint16(in.Imm)
			return 0x4000 | (u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>2&1)<<6 |
				(u>>6&1)<<5 | uint16(in.Rd-8)<<2, true
		}
	case OpLD:
		if in.Rs1 == SP && in.Rd != X0 && in.Imm >= 0 && in.Imm <= 504 && in.Imm%8 == 0 {
			// c.ldsp
			u := uint16(in.Imm)
			return 0x6002 | (u>>5&1)<<12 | uint16(in.Rd)<<7 | (u>>3&3)<<5 | (u>>6&7)<<2, true
		}
		if cReg(in.Rd) && cReg(in.Rs1) && in.Imm >= 0 && in.Imm <= 248 && in.Imm%8 == 0 {
			// c.ld
			u := uint16(in.Imm)
			return 0x6000 | (u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>6&3)<<5 |
				uint16(in.Rd-8)<<2, true
		}
	case OpSW:
		if in.Rs1 == SP && in.Imm >= 0 && in.Imm <= 252 && in.Imm%4 == 0 {
			// c.swsp
			u := uint16(in.Imm)
			return 0xc002 | (u>>2&15)<<9 | (u>>6&3)<<7 | uint16(in.Rs2)<<2, true
		}
		if cReg(in.Rs2) && cReg(in.Rs1) && in.Imm >= 0 && in.Imm <= 124 && in.Imm%4 == 0 {
			// c.sw
			u := uint16(in.Imm)
			return 0xc000 | (u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>2&1)<<6 |
				(u>>6&1)<<5 | uint16(in.Rs2-8)<<2, true
		}
	case OpSD:
		if in.Rs1 == SP && in.Imm >= 0 && in.Imm <= 504 && in.Imm%8 == 0 {
			// c.sdsp
			u := uint16(in.Imm)
			return 0xe002 | (u>>3&7)<<10 | (u>>6&7)<<7 | uint16(in.Rs2)<<2, true
		}
		if cReg(in.Rs2) && cReg(in.Rs1) && in.Imm >= 0 && in.Imm <= 248 && in.Imm%8 == 0 {
			// c.sd
			u := uint16(in.Imm)
			return 0xe000 | (u>>3&7)<<10 | uint16(in.Rs1-8)<<7 | (u>>6&3)<<5 |
				uint16(in.Rs2-8)<<2, true
		}
	}
	return 0, false
}
