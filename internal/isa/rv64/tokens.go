package rv64

import (
	"fmt"

	"repro/internal/isa"
)

// Generalization tokens, mirrored from the vuc layer (the adapter cannot
// import it).
const (
	TokBlank = "BLANK"
	TokAddr  = "ADDR"
	TokFunc  = "FUNC"
)

// Tokens generalizes the instruction into its three tokens (§IV-B):
// mnemonic plus two operand slots, immediates and displacements rewritten
// to 0xIMM, branch targets to ADDR, and library-stub call targets to ADDR
// FUNC. Pseudo-instruction aliases (mv, li, ret, seqz) are the mnemonics,
// matching what disassemblers show for real RISC-V binaries.
func (w *inst) Tokens(tc *isa.TokenContext) [3]string {
	in := w.raw()
	t := [3]string{mnemonic(in), TokBlank, TokBlank}
	gen := !tc.NoGeneralize

	imm := func(v int64) string {
		if gen {
			if v < 0 {
				return "$-0xIMM"
			}
			return "$0xIMM"
		}
		return fmt.Sprintf("$%#x", v)
	}
	mem := func() string {
		if in.Abs != 0 && gen {
			// lui-fused absolute access: the address is the operand.
			return "0xIMM"
		}
		base := in.Rs1.String()
		switch {
		case in.Imm == 0:
			return "(" + base + ")"
		case gen && in.Imm < 0:
			return "-0xIMM(" + base + ")"
		case gen:
			return "0xIMM(" + base + ")"
		}
		return fmt.Sprintf("%#x(%s)", in.Imm, base)
	}
	addr := func() string {
		if gen {
			return TokAddr
		}
		tgt, _ := in.Target()
		return fmt.Sprintf("%#x", tgt)
	}

	switch {
	case in.Op == OpUNIMP:
	case in.Op == OpJAL:
		t[1] = addr()
		if in.Rd == RA && gen && tc.InText != nil {
			// A call outside .text is a library stub whose name survives
			// stripping (dynamic symbols); intra-text targets in stripped
			// binaries have no name.
			if tgt, ok := in.Target(); ok && !tc.InText(tgt) {
				t[2] = TokFunc
			}
		}
	case in.Op == OpJALR:
		if !(in.Rd == X0 && in.Rs1 == RA && in.Imm == 0) {
			t[1] = in.Rs1.String()
		}
	case in.Op.IsBranch():
		t[1] = in.Rs1.String()
		t[2] = addr()
	case in.Op.IsLoad():
		t[1] = in.Rd.String()
		t[2] = mem()
	case in.Op.IsStore():
		t[1] = in.Rs2.String()
		t[2] = mem()
	case in.Op == OpLUI, in.Op == OpAUIPC:
		t[1] = in.Rd.String()
		t[2] = imm(in.Imm)
	case in.Op == OpADDI && in.Rs1 == X0: // li
		t[1] = in.Rd.String()
		t[2] = imm(in.Imm)
	case in.Op == OpADDI && in.Imm == 0: // mv
		t[1] = in.Rd.String()
		t[2] = in.Rs1.String()
	case in.Op == OpSLTIU && in.Imm == 1: // seqz
		t[1] = in.Rd.String()
		t[2] = in.Rs1.String()
	case in.Op == OpSLTU && in.Rs1 == X0: // snez
		t[1] = in.Rd.String()
		t[2] = in.Rs2.String()
	case isImmALU(in.Op):
		t[1] = in.Rd.String()
		t[2] = imm(in.Imm)
	case in.Op >= OpFCVTWS && in.Op <= OpFCVTDS:
		t[1] = in.Rd.String()
		t[2] = in.Rs1.String()
	default: // three-register ALU and float arithmetic: keep dest + first source
		t[1] = in.Rd.String()
		t[2] = in.Rs1.String()
	}
	return t
}
