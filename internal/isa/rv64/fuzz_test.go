package rv64

import (
	"testing"

	"repro/internal/isa"
)

func FuzzDecodeRV64(f *testing.F) {
	// Seed with real encodings: a frame prologue (addi sp,sp,-32; sd
	// ra,24(sp); addi s0,sp,32), a lui+fused load, a compressed pair, a
	// branch, and truncated tails.
	f.Add([]byte{0x13, 0x01, 0x01, 0xfe, 0x23, 0x3c, 0x11, 0x00, 0x13, 0x04, 0x01, 0x02})
	f.Add([]byte{0xb7, 0x27, 0x60, 0x00, 0x03, 0xa7, 0x47, 0x00})
	f.Add([]byte{0x85, 0x47, 0x3e, 0x85}) // c.li a5,1; c.mv a0,a5
	f.Add([]byte{0x63, 0x04, 0xf5, 0x00}) // beq a0,a5,8
	f.Add([]byte{0x13})                   // truncated 4-byte word
	f.Add([]byte{0x01})                   // lone compressed half
	f.Fuzz(func(t *testing.T, code []byte) {
		// DecodeAll never fails: undecodable words become OpUNIMP. The
		// stream must tile the buffer exactly and every instruction must
		// survive printing, tokenization, and the recovery-facing adapter
		// queries without panicking.
		insts, err := DecodeAll(code, 0x401000)
		if err != nil {
			t.Fatalf("DecodeAll: %v", err)
		}
		off := 0
		for i := range insts {
			if insts[i].Addr != 0x401000+uint64(off) {
				t.Fatalf("inst %d addr %#x, want %#x", i, insts[i].Addr, 0x401000+uint64(off))
			}
			off += insts[i].Len
			_ = Print(&insts[i])
		}
		if off != len(code) {
			t.Fatalf("decoded %d bytes of %d", off, len(code))
		}
		tc := &isa.TokenContext{InText: func(uint64) bool { return false }}
		for _, in := range Wrap(insts) {
			_ = in.Tokens(tc)
			_ = in.Class()
			_, _ = in.MemArg()
			_, _ = in.SavedReg()
			_, _ = in.DefReg()
			in.VisitReads(func(isa.Reg) {})
		}
	})
}
