package rv64

import (
	"fmt"
)

// Print renders an instruction in objdump-like RISC-V assembly, including
// the standard pseudo-instruction aliases (mv, li, ret, j, seqz, snez).
func Print(in *Inst) string {
	switch {
	case in.Op == OpUNIMP:
		return "unimp"
	case in.Op == OpJAL:
		if t, ok := in.Target(); ok {
			if in.Rd == X0 {
				return fmt.Sprintf("j %x", t)
			}
			return fmt.Sprintf("jal %x", t)
		}
		return "jal " + in.Sym
	case in.Op == OpJALR:
		switch {
		case in.Rd == X0 && in.Rs1 == RA && in.Imm == 0:
			return "ret"
		case in.Rd == X0 && in.Imm == 0:
			return "jr " + in.Rs1.String()
		}
		return fmt.Sprintf("jalr %s,%d(%s)", in.Rd, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		t, _ := in.Target()
		return fmt.Sprintf("%s %s,%s,%x", in.Op, in.Rs1, in.Rs2, t)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s,%d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s,%d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op == OpLUI || in.Op == OpAUIPC:
		return fmt.Sprintf("%s %s,0x%x", in.Op, in.Rd, uint64(in.Imm)&0xfffff)
	case in.Op == OpADDI:
		switch {
		case in.Rs1 == X0:
			return fmt.Sprintf("li %s,%d", in.Rd, in.Imm)
		case in.Imm == 0:
			return fmt.Sprintf("mv %s,%s", in.Rd, in.Rs1)
		}
		return fmt.Sprintf("addi %s,%s,%d", in.Rd, in.Rs1, in.Imm)
	case in.Op == OpSLTIU && in.Imm == 1:
		return fmt.Sprintf("seqz %s,%s", in.Rd, in.Rs1)
	case isImmALU(in.Op):
		return fmt.Sprintf("%s %s,%s,%d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpSLTU && in.Rs1 == X0:
		return fmt.Sprintf("snez %s,%s", in.Rd, in.Rs2)
	case in.Op >= OpFCVTWS && in.Op <= OpFCVTDS:
		return fmt.Sprintf("%s %s,%s", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s %s,%s,%s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

func isImmALU(o Op) bool {
	switch o {
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI,
		OpSLLI, OpSRLI, OpSRAI, OpADDIW, OpSLLIW, OpSRLIW, OpSRAIW:
		return true
	}
	return false
}

// mnemonic is the token-slot spelling: the pseudo-alias where one exists,
// else the plain op name.
func mnemonic(in *Inst) string {
	switch {
	case in.Op == OpJAL && in.Rd == X0:
		return "j"
	case in.Op == OpJALR && in.Rd == X0 && in.Rs1 == RA && in.Imm == 0:
		return "ret"
	case in.Op == OpJALR && in.Rd == X0 && in.Imm == 0:
		return "jr"
	case in.Op == OpADDI && in.Rs1 == X0:
		return "li"
	case in.Op == OpADDI && in.Imm == 0 && in.Rs1 != X0:
		return "mv"
	case in.Op == OpSLTIU && in.Imm == 1:
		return "seqz"
	case in.Op == OpSLTU && in.Rs1 == X0:
		return "snez"
	}
	return in.Op.String()
}
