package rv64

// Decode32 decodes one full-width instruction word. Undecodable words
// yield OpUNIMP rather than an error so arbitrary streams always decode.
func Decode32(w uint32, addr uint64) Inst {
	in := Inst{Addr: addr, Len: 4, Op: OpUNIMP}
	opcode := w & 0x7f
	rd := Reg(w >> 7 & 31)
	funct3 := w >> 12 & 7
	rs1 := Reg(w >> 15 & 31)
	rs2 := Reg(w >> 20 & 31)
	funct7 := w >> 25 & 0x7f
	immI := int64(int32(w) >> 20)
	immS := int64(int32(w&0xfe000000)>>20) | int64(w>>7&31)
	immB := int64(int32(w&0x80000000)>>19) | int64(w>>25&0x3f)<<5 |
		int64(w>>8&0xf)<<1 | int64(w>>7&1)<<11
	immU := int64(int32(w)) >> 12
	immJ := int64(int32(w&0x80000000)>>11) | int64(w>>21&0x3ff)<<1 |
		int64(w>>20&1)<<11 | int64(w>>12&0xff)<<12

	set := func(op Op, rdv, rs1v, rs2v Reg, imm int64) {
		in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm = op, rdv, rs1v, rs2v, imm
	}

	switch opcode {
	case opLui:
		set(OpLUI, rd, 0, 0, immU)
	case opAuipc:
		set(OpAUIPC, rd, 0, 0, immU)
	case opJal:
		set(OpJAL, rd, 0, 0, immJ)
	case opJalr:
		if funct3 == 0 {
			set(OpJALR, rd, rs1, 0, immI)
		}
	case opBranch:
		ops := map[uint32]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
		if op, ok := ops[funct3]; ok {
			set(op, 0, rs1, rs2, immB)
		}
	case opLoad:
		ops := [7]Op{OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU}
		if funct3 < 7 {
			set(ops[funct3], rd, rs1, 0, immI)
		}
	case opLoadFP:
		switch funct3 {
		case 2:
			set(OpFLW, F(int(rd)), rs1, 0, immI)
		case 3:
			set(OpFLD, F(int(rd)), rs1, 0, immI)
		}
	case opStore:
		ops := [4]Op{OpSB, OpSH, OpSW, OpSD}
		if funct3 < 4 {
			set(ops[funct3], 0, rs1, rs2, immS)
		}
	case opStorFP:
		switch funct3 {
		case 2:
			set(OpFSW, 0, rs1, F(int(rs2)), immS)
		case 3:
			set(OpFSD, 0, rs1, F(int(rs2)), immS)
		}
	case opOpImm:
		switch funct3 {
		case 0:
			set(OpADDI, rd, rs1, 0, immI)
		case 1:
			if funct7>>1 == 0 {
				set(OpSLLI, rd, rs1, 0, int64(w>>20&63))
			}
		case 2:
			set(OpSLTI, rd, rs1, 0, immI)
		case 3:
			set(OpSLTIU, rd, rs1, 0, immI)
		case 4:
			set(OpXORI, rd, rs1, 0, immI)
		case 5:
			switch funct7 >> 1 {
			case 0x00:
				set(OpSRLI, rd, rs1, 0, int64(w>>20&63))
			case 0x10:
				set(OpSRAI, rd, rs1, 0, int64(w>>20&63))
			}
		case 6:
			set(OpORI, rd, rs1, 0, immI)
		case 7:
			set(OpANDI, rd, rs1, 0, immI)
		}
	case opOpImmW:
		switch {
		case funct3 == 0:
			set(OpADDIW, rd, rs1, 0, immI)
		case funct3 == 1 && funct7 == 0:
			set(OpSLLIW, rd, rs1, 0, int64(rs2))
		case funct3 == 5 && funct7 == 0:
			set(OpSRLIW, rd, rs1, 0, int64(rs2))
		case funct3 == 5 && funct7 == 0x20:
			set(OpSRAIW, rd, rs1, 0, int64(rs2))
		}
	case opOp, opOpW:
		type key struct {
			f3, f7 uint32
			w      bool
		}
		ops := map[key]Op{
			{0, 0x00, false}: OpADD, {0, 0x20, false}: OpSUB,
			{1, 0x00, false}: OpSLL, {2, 0x00, false}: OpSLT,
			{3, 0x00, false}: OpSLTU, {4, 0x00, false}: OpXOR,
			{5, 0x00, false}: OpSRL, {5, 0x20, false}: OpSRA,
			{6, 0x00, false}: OpOR, {7, 0x00, false}: OpAND,
			{0, 0x01, false}: OpMUL, {4, 0x01, false}: OpDIV,
			{5, 0x01, false}: OpDIVU, {6, 0x01, false}: OpREM,
			{7, 0x01, false}: OpREMU,
			{0, 0x00, true}:  OpADDW, {0, 0x20, true}: OpSUBW,
			{1, 0x00, true}: OpSLLW, {5, 0x00, true}: OpSRLW,
			{5, 0x20, true}: OpSRAW,
			{0, 0x01, true}: OpMULW, {4, 0x01, true}: OpDIVW,
			{5, 0x01, true}: OpDIVUW, {6, 0x01, true}: OpREMW,
			{7, 0x01, true}: OpREMUW,
		}
		if op, ok := ops[key{funct3, funct7, opcode == opOpW}]; ok {
			set(op, rd, rs1, rs2, 0)
		}
	case opOpFP:
		frd, frs1, frs2 := F(int(rd)), F(int(rs1)), F(int(rs2))
		switch funct7 {
		case 0x00:
			set(OpFADDS, frd, frs1, frs2, 0)
		case 0x04:
			set(OpFSUBS, frd, frs1, frs2, 0)
		case 0x08:
			set(OpFMULS, frd, frs1, frs2, 0)
		case 0x0c:
			set(OpFDIVS, frd, frs1, frs2, 0)
		case 0x01:
			set(OpFADDD, frd, frs1, frs2, 0)
		case 0x05:
			set(OpFSUBD, frd, frs1, frs2, 0)
		case 0x09:
			set(OpFMULD, frd, frs1, frs2, 0)
		case 0x0d:
			set(OpFDIVD, frd, frs1, frs2, 0)
		case 0x50, 0x51:
			ops := map[[2]uint32]Op{
				{0x50, 2}: OpFEQS, {0x50, 1}: OpFLTS, {0x50, 0}: OpFLES,
				{0x51, 2}: OpFEQD, {0x51, 1}: OpFLTD, {0x51, 0}: OpFLED,
			}
			if op, ok := ops[[2]uint32{funct7, funct3}]; ok {
				set(op, rd, frs1, frs2, 0)
			}
		case 0x60:
			switch rs2 {
			case 0:
				set(OpFCVTWS, rd, frs1, 0, 0)
			case 2:
				set(OpFCVTLS, rd, frs1, 0, 0)
			}
		case 0x61:
			switch rs2 {
			case 0:
				set(OpFCVTWD, rd, frs1, 0, 0)
			case 2:
				set(OpFCVTLD, rd, frs1, 0, 0)
			}
		case 0x68:
			switch rs2 {
			case 0:
				set(OpFCVTSW, frd, rs1, 0, 0)
			case 2:
				set(OpFCVTSL, frd, rs1, 0, 0)
			}
		case 0x69:
			switch rs2 {
			case 0:
				set(OpFCVTDW, frd, rs1, 0, 0)
			case 2:
				set(OpFCVTDL, frd, rs1, 0, 0)
			}
		case 0x20:
			if rs2 == 1 {
				set(OpFCVTSD, frd, frs1, 0, 0)
			}
		case 0x21:
			if rs2 == 0 {
				set(OpFCVTDS, frd, frs1, 0, 0)
			}
		}
	}
	return in
}

// Decode16 decodes one compressed instruction into its expanded form
// (Len stays 2). Unsupported compressed encodings yield OpUNIMP.
func Decode16(h uint16, addr uint64) Inst {
	in := Inst{Addr: addr, Len: 2, Op: OpUNIMP}
	op := h & 3
	funct3 := h >> 13 & 7
	switch op {
	case 0: // quadrant 0: c.lw/c.ld/c.sw/c.sd
		rs1 := Reg(h>>7&7) + 8
		rdrs2 := Reg(h>>2&7) + 8
		switch funct3 {
		case 2: // c.lw
			u := int64(h>>10&7)<<3 | int64(h>>6&1)<<2 | int64(h>>5&1)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpLW, Rd: rdrs2, Rs1: rs1, Imm: u}
		case 3: // c.ld
			u := int64(h>>10&7)<<3 | int64(h>>5&3)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpLD, Rd: rdrs2, Rs1: rs1, Imm: u}
		case 6: // c.sw
			u := int64(h>>10&7)<<3 | int64(h>>6&1)<<2 | int64(h>>5&1)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpSW, Rs1: rs1, Rs2: rdrs2, Imm: u}
		case 7: // c.sd
			u := int64(h>>10&7)<<3 | int64(h>>5&3)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpSD, Rs1: rs1, Rs2: rdrs2, Imm: u}
		}
	case 1: // quadrant 1: c.addi/c.li/c.addi16sp
		rd := Reg(h >> 7 & 31)
		imm6 := int64(h>>2&31) | int64(h>>12&1)<<5
		if imm6 >= 32 {
			imm6 -= 64
		}
		switch funct3 {
		case 0:
			if rd != X0 && imm6 != 0 {
				in = Inst{Addr: addr, Len: 2, Op: OpADDI, Rd: rd, Rs1: rd, Imm: imm6}
			}
		case 2:
			if rd != X0 {
				in = Inst{Addr: addr, Len: 2, Op: OpADDI, Rd: rd, Rs1: X0, Imm: imm6}
			}
		case 3:
			if rd == SP {
				imm := int64(h>>12&1)<<9 | int64(h>>6&1)<<4 | int64(h>>5&1)<<6 |
					int64(h>>3&3)<<7 | int64(h>>2&1)<<5
				if imm >= 512 {
					imm -= 1024
				}
				if imm != 0 {
					in = Inst{Addr: addr, Len: 2, Op: OpADDI, Rd: SP, Rs1: SP, Imm: imm}
				}
			}
		}
	case 2: // quadrant 2: c.lwsp/c.ldsp/c.swsp/c.sdsp/c.mv/c.add/c.jr
		rd := Reg(h >> 7 & 31)
		rs2 := Reg(h >> 2 & 31)
		switch funct3 {
		case 2: // c.lwsp
			if rd != X0 {
				u := int64(h>>12&1)<<5 | int64(h>>4&7)<<2 | int64(h>>2&3)<<6
				in = Inst{Addr: addr, Len: 2, Op: OpLW, Rd: rd, Rs1: SP, Imm: u}
			}
		case 3: // c.ldsp
			if rd != X0 {
				u := int64(h>>12&1)<<5 | int64(h>>5&3)<<3 | int64(h>>2&7)<<6
				in = Inst{Addr: addr, Len: 2, Op: OpLD, Rd: rd, Rs1: SP, Imm: u}
			}
		case 4:
			hi := h >> 12 & 1
			switch {
			case hi == 0 && rd != X0 && rs2 == X0:
				// c.jr
				in = Inst{Addr: addr, Len: 2, Op: OpJALR, Rd: X0, Rs1: rd}
			case hi == 0 && rd != X0 && rs2 != X0:
				// c.mv
				in = Inst{Addr: addr, Len: 2, Op: OpADDI, Rd: rd, Rs1: rs2}
			case hi == 1 && rd != X0 && rs2 == X0:
				// c.jalr
				in = Inst{Addr: addr, Len: 2, Op: OpJALR, Rd: RA, Rs1: rd}
			case hi == 1 && rd != X0 && rs2 != X0:
				// c.add
				in = Inst{Addr: addr, Len: 2, Op: OpADD, Rd: rd, Rs1: rd, Rs2: rs2}
			}
		case 6: // c.swsp
			u := int64(h>>9&15)<<2 | int64(h>>7&3)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpSW, Rs1: SP, Rs2: rs2, Imm: u}
		case 7: // c.sdsp
			u := int64(h>>10&7)<<3 | int64(h>>7&7)<<6
			in = Inst{Addr: addr, Len: 2, Op: OpSD, Rs1: SP, Rs2: rs2, Imm: u}
		}
	}
	return in
}

// DecodeAll decodes a byte stream starting at addr, then runs the
// lui-fusion pass so absolute address formation is visible to the
// recovery layers: `lui rd, hi` immediately followed by a load/store
// based on rd — or an addi onto rd — marks the successor with the fused
// absolute address hi<<12 + lo.
func DecodeAll(code []byte, addr uint64) ([]Inst, error) {
	var out []Inst
	for off := 0; off < len(code); {
		a := addr + uint64(off)
		if code[off]&3 == 3 {
			if off+4 > len(code) {
				out = append(out, Inst{Addr: a, Len: len(code) - off, Op: OpUNIMP})
				break
			}
			w := uint32(code[off]) | uint32(code[off+1])<<8 |
				uint32(code[off+2])<<16 | uint32(code[off+3])<<24
			out = append(out, Decode32(w, a))
			off += 4
			continue
		}
		if off+2 > len(code) {
			out = append(out, Inst{Addr: a, Len: 1, Op: OpUNIMP})
			break
		}
		h := uint16(code[off]) | uint16(code[off+1])<<8
		out = append(out, Decode16(h, a))
		off += 2
	}
	fuseLUI(out)
	return out, nil
}

// fuseLUI annotates the instruction after each lui with the absolute
// address it forms, when it consumes the lui result as a base.
func fuseLUI(insts []Inst) {
	for i := 0; i+1 < len(insts); i++ {
		if insts[i].Op != OpLUI {
			continue
		}
		hi := insts[i].Imm << 12
		rd := insts[i].Rd
		next := &insts[i+1]
		switch {
		case (next.Op.IsLoad() || next.Op.IsStore()) && next.Rs1 == rd:
			next.Abs = uint64(hi + next.Imm)
		case next.Op == OpADDI && next.Rs1 == rd && next.Rd == rd:
			next.Abs = uint64(hi + next.Imm)
		}
	}
}
