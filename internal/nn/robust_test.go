package nn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/par"
)

func tinyDataset(n, seqLen, embDim, classes int) *Dataset {
	r := rand.New(rand.NewSource(1))
	ds := &Dataset{SeqLen: seqLen, EmbDim: embDim}
	for i := 0; i < n; i++ {
		s := make([]float32, seqLen*embDim)
		for j := range s {
			s[j] = r.Float32()
		}
		ds.Add(s, i%classes)
	}
	return ds
}

// TestTrainDivergenceGuard: a network whose weights go NaN (here: seeded
// directly into the output layer, the way a diverged Adam step would) must
// surface ErrDiverged from both trainers at the first poisoned minibatch
// instead of silently baking NaNs into the artifact.
func TestTrainDivergenceGuard(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ds := tinyDataset(64, 8, 4, 3)
		net := NewCNN(8, 4, 4, 4, 16, 3, 1)
		params := net.Params()
		out := params[len(params)-1].W // output-layer bias-or-weight block
		out[0] = float32(math.NaN())
		err := TrainClassifierCtx(context.Background(), net, ds, 3, TrainConfig{
			Epochs: 2, Batch: 16, LR: 1e-3, Workers: workers,
		})
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("workers=%d: want ErrDiverged, got %v", workers, err)
		}
	}
}

// TestTrainCleanStaysFinite pins the guard's false-positive rate: a
// healthy run must not trip it.
func TestTrainCleanStaysFinite(t *testing.T) {
	ds := tinyDataset(64, 8, 4, 3)
	net := NewCNN(8, 4, 4, 4, 16, 3, 1)
	if err := TrainClassifier(net, ds, 3, TrainConfig{Epochs: 2, Batch: 16, LR: 1e-3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.CheckFinite(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFinite(t *testing.T) {
	net := NewCNN(8, 4, 4, 4, 16, 3, 1)
	if err := net.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	net.Params()[2].W[0] = float32(math.Inf(1))
	if err := net.CheckFinite(); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("want ErrNotFinite, got %v", err)
	}
	net.Params()[2].W[0] = float32(math.NaN())
	if err := net.CheckFinite(); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("want ErrNotFinite for NaN, got %v", err)
	}
}

// TestReshapeCheckedError: the validated path returns *ShapeError; the
// unchecked path panics with the same typed value, which par containment
// converts to an error reachable with errors.As.
func TestReshapeCheckedError(t *testing.T) {
	tr := NewTensor(2, 3)
	if _, err := tr.ReshapeChecked(7); err == nil {
		t.Fatal("want error")
	} else {
		var se *ShapeError
		if !errors.As(err, &se) {
			t.Fatalf("want *ShapeError, got %T", err)
		}
	}
	if v, err := tr.ReshapeChecked(3, 2); err != nil || v.Dim(0) != 3 {
		t.Fatalf("valid reshape failed: %v", err)
	}

	// Contained through the pool: a reshape panic inside a fan-out comes
	// back as an error carrying the ShapeError, not a process crash.
	err := par.ForEachCtx(context.Background(), 4, 4, func(i int) {
		if i == 2 {
			NewTensor(2, 3).Reshape(5)
		}
	})
	var se *ShapeError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShapeError through par containment, got %v", err)
	}
}

func TestDecodeCNNHostile(t *testing.T) {
	// Garbage bytes must error, not panic.
	if _, err := DecodeCNN([]byte("not a gob stream at all")); err == nil {
		t.Fatal("garbage should fail")
	}
	// A structurally valid gob with insane dimensions must be rejected
	// before any allocation.
	net := NewCNN(8, 4, 4, 4, 16, 3, 1)
	blob, err := EncodeCNN(net, -1, 4, 4, 4, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCNN(blob); err == nil {
		t.Fatal("negative seqLen should fail")
	}
}
