package nn

import (
	"context"
	"errors"
	"testing"
)

// cancelAfterEpoch trains with many epochs and cancels from the Progress
// callback after the first one; the trainer must notice at the next
// minibatch boundary and return context.Canceled.
func cancelAfterEpoch(t *testing.T, workers int) {
	t.Helper()
	ds := parallelDataset(96, 7, 8)
	net := NewCNN(7, 8, 4, 4, 16, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	epochs := 0
	cfg := TrainConfig{
		Epochs: 1000, Batch: 16, LR: 1e-3, Seed: 2, Workers: workers,
		Progress: func(epoch int, loss float64) {
			epochs++
			cancel()
		},
	}
	err := TrainClassifierCtx(ctx, net, ds, 2, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if epochs < 1 || epochs > 2 {
		t.Fatalf("trained %d epochs after cancellation (want 1-2)", epochs)
	}
}

func TestTrainClassifierCtxCancelSerial(t *testing.T)   { cancelAfterEpoch(t, 1) }
func TestTrainClassifierCtxCancelParallel(t *testing.T) { cancelAfterEpoch(t, 2) }

func TestTrainClassifierCtxPreCancelled(t *testing.T) {
	ds := parallelDataset(32, 7, 8)
	net := NewCNN(7, 8, 4, 4, 16, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := TrainClassifierCtx(ctx, net, ds, 2, TrainConfig{Epochs: 3, Batch: 16, Seed: 2, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPredictNCtxCancelled(t *testing.T) {
	ds := parallelDataset(600, 7, 8) // >2 predict chunks
	net := NewCNN(7, 8, 4, 4, 16, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := PredictNCtx(ctx, net, ds.Samples, 7, 8, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if out != nil {
		t.Fatal("cancelled predict must not return partial output")
	}
}

func TestPredictNCtxMatchesPredictN(t *testing.T) {
	ds := parallelDataset(300, 7, 8)
	net := NewCNN(7, 8, 4, 4, 16, 2, 1)
	want := PredictN(net, ds.Samples, 7, 8, 1)
	got, err := PredictNCtx(context.Background(), net, ds.Samples, 7, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}
