package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// numericGradCheck compares analytic and numeric gradients for one layer
// stack on a tiny input.
func TestGradientCheckDense(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(r, 4, 3)
	x := NewTensor(2, 4)
	for i := range x.Data {
		x.Data[i] = r.Float32()*2 - 1
	}
	// Loss = sum(out^2)/2 → dOut = out.
	forward := func() float64 {
		out := d.Forward(x, true)
		var s float64
		for _, v := range out.Data {
			s += float64(v) * float64(v) / 2
		}
		return s
	}
	out := d.Forward(x, true)
	grad := NewTensor(2, 3)
	copy(grad.Data, out.Data)
	dx := d.Backward(grad)

	const eps = 1e-3
	// Check dW numerically.
	for _, pi := range []int{0, 5, 11} {
		orig := d.W.W[pi]
		d.W.W[pi] = orig + eps
		lp := forward()
		d.W.W[pi] = orig - eps
		lm := forward()
		d.W.W[pi] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(d.W.G[pi])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("dW[%d]: analytic %.5f numeric %.5f", pi, d.W.G[pi], num)
		}
	}
	// Check dX numerically.
	for _, xi := range []int{0, 3, 7} {
		orig := x.Data[xi]
		x.Data[xi] = orig + eps
		lp := forward()
		x.Data[xi] = orig - eps
		lm := forward()
		x.Data[xi] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dx.Data[xi])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("dX[%d]: analytic %.5f numeric %.5f", xi, dx.Data[xi], num)
		}
	}
}

func TestGradientCheckConv(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := NewConv1D(r, 3, 2, 3)
	x := NewTensor(1, 5, 3)
	for i := range x.Data {
		x.Data[i] = r.Float32()*2 - 1
	}
	forward := func() float64 {
		out := c.Forward(x, true)
		var s float64
		for _, v := range out.Data {
			s += float64(v) * float64(v) / 2
		}
		return s
	}
	out := c.Forward(x, true)
	grad := NewTensor(out.Shape...)
	copy(grad.Data, out.Data)
	dx := c.Backward(grad)

	const eps = 1e-3
	for _, pi := range []int{0, 7, len(c.W.W) - 1} {
		orig := c.W.W[pi]
		c.W.W[pi] = orig + eps
		lp := forward()
		c.W.W[pi] = orig - eps
		lm := forward()
		c.W.W[pi] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(c.W.G[pi])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("conv dW[%d]: analytic %.5f numeric %.5f", pi, c.W.G[pi], num)
		}
	}
	for _, xi := range []int{0, 6, 14} {
		orig := x.Data[xi]
		x.Data[xi] = orig + eps
		lp := forward()
		x.Data[xi] = orig - eps
		lm := forward()
		x.Data[xi] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dx.Data[xi])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("conv dX[%d]: analytic %.5f numeric %.5f", xi, dx.Data[xi], num)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := &MaxPool1D{}
	x := NewTensor(1, 4, 2)
	copy(x.Data, []float32{1, 8, 3, 2, 5, 5, 7, 6})
	out := p.Forward(x, true)
	want := []float32{3, 8, 7, 6}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("pool out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	grad := NewTensor(1, 2, 2)
	copy(grad.Data, []float32{1, 2, 3, 4})
	dx := p.Backward(grad)
	wantDx := []float32{0, 2, 1, 0, 0, 0, 3, 4}
	for i, v := range wantDx {
		if dx.Data[i] != v {
			t.Errorf("pool dx[%d] = %v, want %v", i, dx.Data[i], v)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	l := NewTensor(2, 3)
	copy(l.Data, []float32{1, 2, 3, -1, 0, 1})
	Softmax(l)
	for bi := 0; bi < 2; bi++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := l.Data[bi*3+c]
			if v <= 0 || v >= 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", bi, sum)
		}
	}
	if !(l.Data[2] > l.Data[1] && l.Data[1] > l.Data[0]) {
		t.Error("softmax not monotone")
	}
}

// TestLearnsSeparableTask verifies end-to-end training: two Gaussian-ish
// token patterns must be separable to near-100%.
func TestLearnsSeparableTask(t *testing.T) {
	const seqLen, embDim = 9, 8
	r := rand.New(rand.NewSource(3))
	ds := &Dataset{SeqLen: seqLen, EmbDim: embDim}
	mk := func(label int) []float32 {
		s := make([]float32, seqLen*embDim)
		for i := range s {
			s[i] = r.Float32()*0.4 - 0.2
		}
		// Class signal: a bump in a label-dependent channel.
		for l := 0; l < seqLen; l++ {
			s[l*embDim+label] += 1.0
		}
		return s
	}
	for i := 0; i < 400; i++ {
		y := i % 2
		ds.Add(mk(y), y)
	}
	net := NewCNN(seqLen, embDim, 8, 8, 32, 2, 7)
	if err := TrainClassifier(net, ds, 2, TrainConfig{Epochs: 5, Batch: 32, LR: 2e-3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	correct := 0
	probs := Predict(net, ds.Samples, seqLen, embDim)
	for i, p := range probs {
		if Argmax(p) == ds.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(ds.Len())
	if acc < 0.95 {
		t.Errorf("training accuracy %.2f, want ≥0.95", acc)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	net := NewCNN(4, 4, 2, 2, 8, 2, 1)
	err := TrainClassifier(net, &Dataset{SeqLen: 4, EmbDim: 4}, 2, TrainConfig{})
	if !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("error = %v, want ErrEmptyDataset", err)
	}
}

func TestEncodeDecodeCNN(t *testing.T) {
	net := NewCNN(9, 8, 4, 4, 16, 3, 5)
	r := rand.New(rand.NewSource(9))
	x := NewTensor(2, 9, 8)
	for i := range x.Data {
		x.Data[i] = r.Float32()
	}
	want := net.Forward(x, false)

	blob, err := EncodeCNN(net, 9, 8, 4, 4, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCNN(blob)
	if err != nil {
		t.Fatal(err)
	}
	out := got.Forward(x, false)
	for i := range want.Data {
		if want.Data[i] != out.Data[i] {
			t.Fatalf("output differs at %d after round trip", i)
		}
	}
	if _, err := DecodeCNN([]byte("junk")); err == nil {
		t.Error("DecodeCNN(junk) should fail")
	}
}

func TestDeterministicTraining(t *testing.T) {
	mkDS := func() *Dataset {
		r := rand.New(rand.NewSource(4))
		ds := &Dataset{SeqLen: 5, EmbDim: 4}
		for i := 0; i < 64; i++ {
			s := make([]float32, 20)
			for j := range s {
				s[j] = r.Float32()
			}
			ds.Add(s, i%3)
		}
		return ds
	}
	train := func() *Network {
		net := NewCNN(5, 4, 4, 4, 8, 3, 11)
		if err := TrainClassifier(net, mkDS(), 3, TrainConfig{Epochs: 2, Batch: 16, Seed: 5}); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := train(), train()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("nondeterministic training at param %d[%d]", i, j)
			}
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{0.1, 0.7, 0.2}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]float32{0.9}) != 0 {
		t.Error("argmax single wrong")
	}
}

func TestReshapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Reshape with wrong size should panic")
		}
	}()
	NewTensor(2, 3).Reshape(7)
}
