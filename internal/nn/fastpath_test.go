package nn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gemm"
)

// randomBatch builds n random samples shaped [seqLen, embDim].
func randomBatch(r *rand.Rand, n, seqLen, embDim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		s := make([]float32, seqLen*embDim)
		for j := range s {
			s[j] = r.Float32()*2 - 1
		}
		out[i] = s
	}
	return out
}

// TestFastPathMatchesLayerForward checks that the arena fast path produces
// the same probabilities as the generic Layer.Forward walk, on every
// available gemm backend. Tolerance covers float32 reassociation between
// the blocked and portable GEMM orders.
func TestFastPathMatchesLayerForward(t *testing.T) {
	const seqLen, embDim, classes = 9, 8, 3
	r := rand.New(rand.NewSource(21))
	net := NewCNN(seqLen, embDim, 6, 10, 24, classes, 13)
	samples := randomBatch(r, 17, seqLen, embDim)

	// Reference: generic path (predictSlowCtx drives Layer.Forward).
	want, err := predictSlowCtx(context.Background(), net, samples, seqLen, embDim, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, backend := range gemm.BackendNames() {
		t.Run(backend, func(t *testing.T) {
			if err := gemm.Select(backend); err != nil {
				t.Skipf("backend %s: %v", backend, err)
			}
			defer func() {
				if err := gemm.Select("auto"); err != nil {
					t.Fatal(err)
				}
			}()
			got, err := PredictNCtx(context.Background(), net, samples, seqLen, embDim, 1)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for c := range want[i] {
					if d := math.Abs(float64(want[i][c] - got[i][c])); d > 1e-5 {
						t.Fatalf("sample %d class %d: slow %v fast %v (Δ %v)",
							i, c, want[i][c], got[i][c], d)
					}
				}
				if Argmax(want[i]) != Argmax(got[i]) {
					t.Fatalf("sample %d argmax differs", i)
				}
			}
		})
	}
}

// TestPredictIntoCtxValidation exercises the caller-buffer contract.
func TestPredictIntoCtxValidation(t *testing.T) {
	const seqLen, embDim = 5, 4
	r := rand.New(rand.NewSource(3))
	net := NewCNN(seqLen, embDim, 4, 4, 8, 2, 1)
	samples := randomBatch(r, 3, seqLen, embDim)

	if err := PredictIntoCtx(context.Background(), net, samples, seqLen, embDim, 1, make([][]float32, 2)); err == nil {
		t.Error("row-count mismatch should fail")
	}
	short := [][]float32{make([]float32, 2), make([]float32, 1), make([]float32, 2)}
	if err := PredictIntoCtx(context.Background(), net, samples, seqLen, embDim, 1, short); err == nil {
		t.Error("short row should fail")
	}
	out := [][]float32{make([]float32, 2), make([]float32, 2), make([]float32, 2)}
	if err := PredictIntoCtx(context.Background(), net, samples, seqLen, embDim, 1, out); err != nil {
		t.Fatal(err)
	}
	for i, row := range out {
		var sum float64
		for _, v := range row {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	if err := PredictIntoCtx(context.Background(), net, nil, seqLen, embDim, 1, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestQuantizeNetworkAccuracy quantizes a trained network and checks that
// int8 inference agrees with float32 on nearly every prediction.
func TestQuantizeNetworkAccuracy(t *testing.T) {
	const seqLen, embDim, classes = 9, 8, 2
	r := rand.New(rand.NewSource(3))
	ds := &Dataset{SeqLen: seqLen, EmbDim: embDim}
	for i := 0; i < 200; i++ {
		y := i % 2
		s := make([]float32, seqLen*embDim)
		for j := range s {
			s[j] = r.Float32()*0.4 - 0.2
		}
		for l := 0; l < seqLen; l++ {
			s[l*embDim+y] += 1.0
		}
		ds.Add(s, y)
	}
	net := NewCNN(seqLen, embDim, 8, 8, 32, classes, 7)
	if err := TrainClassifier(net, ds, classes, TrainConfig{Epochs: 3, Batch: 32, LR: 2e-3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if net.Trainable() == false {
		t.Error("float network must stay trainable")
	}
	if !qnet.Quantized() || qnet.Trainable() {
		t.Error("quantized network must be inference-only")
	}

	fp := Predict(net, ds.Samples, seqLen, embDim)
	qp := Predict(qnet, ds.Samples, seqLen, embDim)
	agree := 0
	for i := range fp {
		if Argmax(fp[i]) == Argmax(qp[i]) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(fp)); frac < 0.98 {
		t.Errorf("int8/f32 argmax agreement %.3f, want ≥0.98", frac)
	}
}

// TestQuantizedNotTrainable checks the trainer rejects quantized networks
// up front instead of panicking mid-epoch.
func TestQuantizedNotTrainable(t *testing.T) {
	net := NewCNN(5, 4, 4, 4, 8, 2, 1)
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{SeqLen: 5, EmbDim: 4}
	ds.Add(make([]float32, 20), 0)
	if err := TrainClassifier(qnet, ds, 2, TrainConfig{}); !errors.Is(err, ErrNotTrainable) {
		t.Errorf("error = %v, want ErrNotTrainable", err)
	}
}

// TestEncodeDecodeQCNN round-trips a quantized network and checks the
// rebuilt network predicts identically.
func TestEncodeDecodeQCNN(t *testing.T) {
	const seqLen, embDim, classes = 9, 8, 3
	net := NewCNN(seqLen, embDim, 4, 4, 16, classes, 5)
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	samples := randomBatch(r, 5, seqLen, embDim)
	want := Predict(qnet, samples, seqLen, embDim)

	blob, err := EncodeQCNN(qnet, seqLen, embDim, 4, 4, 16, classes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQCNN(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trainable() {
		t.Error("decoded quantized network must be inference-only")
	}
	probs := Predict(got, samples, seqLen, embDim)
	for i := range want {
		for c := range want[i] {
			if want[i][c] != probs[i][c] {
				t.Fatalf("sample %d class %d differs after round trip", i, c)
			}
		}
	}

	if _, err := DecodeQCNN([]byte("junk")); err == nil {
		t.Error("DecodeQCNN(junk) should fail")
	}
	// A float artifact is not a quantized artifact.
	fblob, err := EncodeCNN(net, seqLen, embDim, 4, 4, 16, classes)
	if err != nil {
		t.Fatal(err)
	}
	if 2*len(blob) >= len(fblob) {
		t.Errorf("quantized artifact %dB not substantially smaller than float %dB", len(blob), len(fblob))
	}
}

// TestEncodeQCNNRejectsFloatNetwork: only quantized stacks serialize.
func TestEncodeQCNNRejectsFloatNetwork(t *testing.T) {
	net := NewCNN(5, 4, 4, 4, 8, 2, 1)
	if _, err := EncodeQCNN(net, 5, 4, 4, 4, 8, 2); err == nil {
		t.Error("EncodeQCNN on a float network should fail")
	}
}

// TestOutputDim covers the fast-path class sizing.
func TestOutputDim(t *testing.T) {
	net := NewCNN(5, 4, 4, 4, 8, 3, 1)
	if got := net.OutputDim(); got != 3 {
		t.Errorf("OutputDim = %d, want 3", got)
	}
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	if got := qnet.OutputDim(); got != 3 {
		t.Errorf("quantized OutputDim = %d, want 3", got)
	}
	if got := (&Network{Layers: []Layer{&ReLU{}}}).OutputDim(); got != 0 {
		t.Errorf("OutputDim without dense = %d, want 0", got)
	}
}

// TestIm2col pins the unfold layout: row (bi*l+li) is the k-window around
// li, zero-padded at the sequence edges.
func TestIm2col(t *testing.T) {
	const b, l, in, k = 1, 4, 2, 3
	x := []float32{1, 2, 3, 4, 5, 6, 7, 8} // [1, 4, 2]
	dst := make([]float32, b*l*k*in)
	im2col(dst, x, b, l, in, k)
	want := []float32{
		0, 0, 1, 2, 3, 4, // li=0: pad, x[0], x[1]
		1, 2, 3, 4, 5, 6, // li=1
		3, 4, 5, 6, 7, 8, // li=2
		5, 6, 7, 8, 0, 0, // li=3: x[2], x[3], pad
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("im2col[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}
