package nn

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/par"
	"repro/internal/telemetry"
)

// Training telemetry, shared by the serial and data-parallel trainers.
// Counters accumulate across every network trained in the process (the
// six stage CNNs train concurrently); the gauges hold the most recently
// completed epoch's mean loss and throughput.
var (
	mMinibatches = telemetry.Default().Counter("cati_nn_minibatches_total",
		"Minibatches processed across all classifier trainings.")
	mExamples = telemetry.Default().Counter("cati_nn_examples_total",
		"Training examples consumed across all classifier trainings.")
	mLoss = telemetry.Default().FloatGauge("cati_nn_loss",
		"Mean cross-entropy loss of the most recently completed epoch.")
	mExamplesPerSec = telemetry.Default().FloatGauge("cati_nn_examples_per_second",
		"Training throughput of the most recently completed epoch.")
)

// epochDone updates the loss/throughput gauges after one epoch.
func epochDone(meanLoss float64, seen int, elapsed time.Duration) {
	mLoss.Set(meanLoss)
	if s := elapsed.Seconds(); s > 0 {
		mExamplesPerSec.Set(float64(seen) / s)
	}
}

// Network is a sequential stack of layers ending in logits; softmax and
// cross-entropy live in the trainer.
type Network struct {
	Layers []Layer
}

// Forward runs all layers.
func (n *Network) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates a gradient through all layers.
func (n *Network) Backward(grad *Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params collects all learnable parameters.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NewCATICNN builds the paper's per-stage classifier: two convolution
// layers (32 then 64 filters) and a 1024-unit fully connected layer
// feeding the class logits ("we employ a common 2-layer CNN model (32-64)
// with a fully connected layer (1024)", §V-A).
func NewCATICNN(seqLen, embDim, classes int, seed int64) *Network {
	return NewCNN(seqLen, embDim, 32, 64, 1024, classes, seed)
}

// NewCNN builds the same architecture with configurable sizes (used by the
// ablation benchmarks).
func NewCNN(seqLen, embDim, conv1, conv2, hidden, classes int, seed int64) *Network {
	r := rand.New(rand.NewSource(seed))
	l1 := seqLen / 2
	l2 := l1 / 2
	return &Network{Layers: []Layer{
		NewConv1D(r, embDim, conv1, 3),
		&ReLU{},
		&MaxPool1D{},
		NewConv1D(r, conv1, conv2, 3),
		&ReLU{},
		&MaxPool1D{},
		&Flatten{},
		NewDense(r, l2*conv2, hidden),
		&ReLU{},
		NewDense(r, hidden, classes),
	}}
}

// Softmax converts logits to probabilities in place per row of [B, C].
func Softmax(logits *Tensor) {
	softmaxRows(logits.Data, logits.Dim(0), logits.Dim(1))
}

// softmaxRows is Softmax on a flat [b, c] buffer (the fast path has no
// Tensor wrapper).
func softmaxRows(data []float32, b, c int) {
	for bi := 0; bi < b; bi++ {
		row := data[bi*c : (bi+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			row[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
}

// Adam is the Adam optimizer.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	step  int
}

// NewAdam returns Adam with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter and zeroes gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	lr := float32(a.LR * math.Sqrt(b2c) / b1c)
	b1, b2 := float32(a.Beta1), float32(a.Beta2)
	eps := float32(a.Eps)
	for _, p := range params {
		if p.m == nil {
			p.m = make([]float32, len(p.W))
			p.v = make([]float32, len(p.W))
		}
		for i := range p.W {
			g := p.G[i]
			p.m[i] = b1*p.m[i] + (1-b1)*g
			p.v[i] = b2*p.v[i] + (1-b2)*g*g
			p.W[i] -= lr * p.m[i] / (sqrt32(p.v[i]) + eps)
		}
		p.zeroGrad()
	}
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}

// TrainConfig configures classifier training.
type TrainConfig struct {
	Epochs int
	Batch  int
	LR     float64
	Seed   int64
	// Workers is the data-parallel worker count: each minibatch is sharded
	// across this many network replicas and the shard gradients are reduced
	// in fixed order before the optimizer step. 0 resolves via par.Workers
	// (CATI_WORKERS, then GOMAXPROCS); 1 forces the serial path, which is
	// bitwise-identical to the historical single-goroutine trainer. Results
	// are deterministic for any fixed worker count.
	Workers int
	// Progress, when non-nil, receives (epoch, loss) after each epoch.
	Progress func(epoch int, loss float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	return c
}

// Dataset is a labeled classification dataset: Samples[i] is a flattened
// [SeqLen, EmbDim] matrix, Labels[i] its class index.
type Dataset struct {
	Samples [][]float32
	Labels  []int
	SeqLen  int
	EmbDim  int
}

// Add appends a sample.
func (d *Dataset) Add(sample []float32, label int) {
	d.Samples = append(d.Samples, sample)
	d.Labels = append(d.Labels, label)
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// ErrEmptyDataset reports training on no data.
var ErrEmptyDataset = errors.New("nn: empty dataset")

// ErrDiverged reports a training run whose loss went non-finite (NaN or
// Inf) — typically a too-high learning rate or corrupt input. Both
// trainers check after every minibatch, so the error surfaces at the
// first poisoned step instead of silently baking NaNs into the weights.
var ErrDiverged = errors.New("nn: training diverged (non-finite loss)")

// ErrNotFinite reports NaN or Inf weights in a network (corrupt or
// diverged artifact).
var ErrNotFinite = errors.New("nn: non-finite weight")

// CheckFinite walks every learnable parameter and reports the first NaN
// or Inf, so loaders can reject poisoned artifacts before inference
// silently propagates them.
func (n *Network) CheckFinite() error {
	for pi, p := range n.Params() {
		for i, w := range p.W {
			f := float64(w)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("%w: param %d element %d = %v", ErrNotFinite, pi, i, w)
			}
		}
	}
	return nil
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// TrainClassifier trains the network with softmax cross-entropy. With more
// than one effective worker (see TrainConfig.Workers) minibatches are
// sharded across per-worker network replicas; otherwise it runs the serial
// trainer.
func TrainClassifier(net *Network, ds *Dataset, classes int, cfg TrainConfig) error {
	return TrainClassifierCtx(context.Background(), net, ds, classes, cfg)
}

// TrainClassifierCtx is TrainClassifier with cooperative cancellation:
// both trainers check ctx at every minibatch boundary (serial) or
// minibatch-shard boundary (parallel) and return ctx.Err() promptly,
// leaving the network in whatever partially-trained state it reached.
func TrainClassifierCtx(ctx context.Context, net *Network, ds *Dataset, classes int, cfg TrainConfig) error {
	cfg = cfg.withDefaults()
	if ds.Len() == 0 {
		return ErrEmptyDataset
	}
	if !net.Trainable() {
		return ErrNotTrainable
	}
	if workers := par.Workers(cfg.Workers); workers > 1 {
		if replicas := trainReplicas(net, workers); replicas != nil {
			return trainClassifierParallel(ctx, net, replicas, ds, classes, cfg)
		}
	}
	return trainClassifierSerial(ctx, net, ds, classes, cfg)
}

// trainClassifierSerial is the single-goroutine trainer; Workers=1 runs
// exactly this code, keeping serial results bit-for-bit reproducible.
func trainClassifierSerial(ctx context.Context, net *Network, ds *Dataset, classes int, cfg TrainConfig) error {
	r := rand.New(rand.NewSource(cfg.Seed))
	opt := NewAdam(cfg.LR)
	params := net.Params()

	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	sampleSize := ds.SeqLen * ds.EmbDim

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var totalLoss float64
		var seen int
		for start := 0; start < len(idx); start += cfg.Batch {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := start + cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			b := end - start
			x := NewTensor(b, ds.SeqLen, ds.EmbDim)
			for bi, si := range idx[start:end] {
				copy(x.Data[bi*sampleSize:(bi+1)*sampleSize], ds.Samples[si])
			}
			logits := net.Forward(x, true)
			Softmax(logits)
			// Cross-entropy loss and gradient (probs - onehot) / B.
			grad := NewTensor(b, classes)
			for bi, si := range idx[start:end] {
				row := logits.Data[bi*classes : (bi+1)*classes]
				y := ds.Labels[si]
				p := row[y]
				if p < 1e-9 {
					p = 1e-9
				}
				totalLoss += -math.Log(float64(p))
				for c := 0; c < classes; c++ {
					g := row[c]
					if c == y {
						g -= 1
					}
					grad.Data[bi*classes+c] = g / float32(b)
				}
			}
			if !finite(totalLoss) {
				return fmt.Errorf("epoch %d: %w", epoch, ErrDiverged)
			}
			seen += b
			mMinibatches.Inc()
			mExamples.Add(uint64(b))
			net.Backward(grad)
			opt.Step(params)
		}
		epochDone(totalLoss/float64(seen), seen, time.Since(epochStart))
		if cfg.Progress != nil {
			cfg.Progress(epoch, totalLoss/float64(seen))
		}
	}
	return nil
}

// replicaNetwork mirrors net for one training worker: hyperparameters and
// weight storage are shared with the original while the per-layer scratch
// state (lastX, ReLU mask, pool argmax) and the gradient buffers are
// private, so each worker can run Forward/Backward independently. Returns
// nil when the network contains a layer type it cannot mirror; callers
// then fall back to the serial trainer.
func replicaNetwork(net *Network) *Network {
	out := &Network{Layers: make([]Layer, len(net.Layers))}
	for i, l := range net.Layers {
		switch t := l.(type) {
		case *Conv1D:
			out.Layers[i] = &Conv1D{In: t.In, Out: t.Out, K: t.K, W: shadowParam(t.W), B: shadowParam(t.B)}
		case *Dense:
			out.Layers[i] = &Dense{In: t.In, Out: t.Out, W: shadowParam(t.W), B: shadowParam(t.B)}
		case *ReLU:
			out.Layers[i] = &ReLU{}
		case *MaxPool1D:
			out.Layers[i] = &MaxPool1D{}
		case *Flatten:
			out.Layers[i] = &Flatten{}
		default:
			return nil
		}
	}
	return out
}

// shadowParam shares p's weight storage but owns a private gradient
// buffer; Adam state stays with the original, the only Param the optimizer
// ever steps.
func shadowParam(p *Param) *Param {
	return &Param{W: p.W, G: make([]float32, len(p.W))}
}

// trainReplicas builds one replica per worker, or nil if the architecture
// cannot be replicated.
func trainReplicas(net *Network, workers int) []*Network {
	replicas := make([]*Network, workers)
	for w := range replicas {
		if replicas[w] = replicaNetwork(net); replicas[w] == nil {
			return nil
		}
	}
	return replicas
}

// trainClassifierParallel shards every minibatch across the replicas:
// worker w runs Forward/Backward on a contiguous slice of the shuffled
// batch, accumulating gradients into its private buffers, and the shard
// gradients are reduced into the master parameters in fixed shard order
// before the Adam step. The whole schedule (shuffle, batch boundaries,
// shard boundaries, reduction order) is a pure function of cfg and the
// worker count, so training is deterministic for a fixed worker count; it
// is not bitwise-identical across different counts because float32
// gradient summation is reassociated.
func trainClassifierParallel(ctx context.Context, net *Network, replicas []*Network, ds *Dataset, classes int, cfg TrainConfig) error {
	workers := len(replicas)
	r := rand.New(rand.NewSource(cfg.Seed))
	opt := NewAdam(cfg.LR)
	params := net.Params()
	repParams := make([][]*Param, workers)
	for w, rep := range replicas {
		repParams[w] = rep.Params()
	}

	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	sampleSize := ds.SeqLen * ds.EmbDim
	losses := make([]float64, workers)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var totalLoss float64
		var seen int
		for start := 0; start < len(idx); start += cfg.Batch {
			if err := ctx.Err(); err != nil {
				return err
			}
			end := min(start+cfg.Batch, len(idx))
			b := end - start
			batch := idx[start:end]
			ns := par.Shard(b, workers, func(s, lo, hi int) {
				rep := replicas[s]
				sb := hi - lo
				x := NewTensor(sb, ds.SeqLen, ds.EmbDim)
				for bi, si := range batch[lo:hi] {
					copy(x.Data[bi*sampleSize:(bi+1)*sampleSize], ds.Samples[si])
				}
				logits := rep.Forward(x, true)
				Softmax(logits)
				grad := NewTensor(sb, classes)
				var loss float64
				for bi, si := range batch[lo:hi] {
					row := logits.Data[bi*classes : (bi+1)*classes]
					y := ds.Labels[si]
					p := row[y]
					if p < 1e-9 {
						p = 1e-9
					}
					loss += -math.Log(float64(p))
					for c := 0; c < classes; c++ {
						g := row[c]
						if c == y {
							g -= 1
						}
						// Normalized by the full minibatch, not the shard.
						grad.Data[bi*classes+c] = g / float32(b)
					}
				}
				losses[s] = loss
				rep.Backward(grad)
			})
			for s := 0; s < ns; s++ {
				totalLoss += losses[s]
				for pi, p := range params {
					g := repParams[s][pi].G
					for i, v := range g {
						p.G[i] += v
						g[i] = 0
					}
				}
			}
			if !finite(totalLoss) {
				return fmt.Errorf("epoch %d: %w", epoch, ErrDiverged)
			}
			seen += b
			mMinibatches.Inc()
			mExamples.Add(uint64(b))
			opt.Step(params)
		}
		epochDone(totalLoss/float64(seen), seen, time.Since(epochStart))
		if cfg.Progress != nil {
			cfg.Progress(epoch, totalLoss/float64(seen))
		}
	}
	return nil
}

// predictChunk is the inference minibatch size: Predict processes samples
// in chunks of this many rows, bounding peak activation memory; each chunk
// is one unit of work for the worker pool.
const predictChunk = 256

// Predict returns class probabilities for a batch of samples, fanning
// chunks out across par.Workers(0) workers.
func Predict(net *Network, samples [][]float32, seqLen, embDim int) [][]float32 {
	return PredictN(net, samples, seqLen, embDim, 0)
}

// PredictN is Predict with an explicit worker count (0 resolves via
// par.Workers: CATI_WORKERS, then GOMAXPROCS). Inference-mode Forward
// mutates no layer state, so all workers share net; chunks write disjoint
// output rows, so the result is bitwise-identical for every worker count.
func PredictN(net *Network, samples [][]float32, seqLen, embDim, workers int) [][]float32 {
	out, _ := PredictNCtx(context.Background(), net, samples, seqLen, embDim, workers)
	return out
}

// PredictNCtx is PredictN with cooperative cancellation: once ctx is
// cancelled no further chunks start and the call returns (nil, ctx.Err()).
// It allocates the result (one flat backing plus the row headers) and
// delegates the actual math to PredictIntoCtx, the zero-allocation entry
// point for callers that reuse output buffers.
func PredictNCtx(ctx context.Context, net *Network, samples [][]float32, seqLen, embDim, workers int) ([][]float32, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	classes := net.OutputDim()
	if classes == 0 {
		return predictSlowCtx(ctx, net, samples, seqLen, embDim, workers)
	}
	out := make([][]float32, len(samples))
	flat := make([]float32, len(samples)*classes)
	for i := range out {
		out[i] = flat[i*classes : (i+1)*classes : (i+1)*classes]
	}
	if err := PredictIntoCtx(ctx, net, samples, seqLen, embDim, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}

// predictSlowCtx is the generic chunked path through Layer.Forward, kept
// for architectures the fast path cannot size (no dense output layer).
func predictSlowCtx(ctx context.Context, net *Network, samples [][]float32, seqLen, embDim, workers int) ([][]float32, error) {
	out := make([][]float32, len(samples))
	chunks := (len(samples) + predictChunk - 1) / predictChunk
	err := par.ForEachCtx(ctx, chunks, par.Workers(workers), func(ci int) {
		start := ci * predictChunk
		end := min(start+predictChunk, len(samples))
		b := end - start
		x := NewTensor(b, seqLen, embDim)
		size := seqLen * embDim
		for bi, s := range samples[start:end] {
			copy(x.Data[bi*size:(bi+1)*size], s)
		}
		logits := net.Forward(x, false)
		Softmax(logits)
		c := logits.Dim(1)
		for bi := 0; bi < b; bi++ {
			row := make([]float32, c)
			copy(row, logits.Data[bi*c:(bi+1)*c])
			out[start+bi] = row
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Argmax returns the index of the largest probability.
func Argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// netState is the serialized form: architecture hyperparameters plus flat
// weights, layer by layer.
type netState struct {
	SeqLen, EmbDim       int
	Conv1, Conv2, Hidden int
	Classes              int
	Weights              [][]float32
}

// EncodeCNN serializes a network built by NewCNN along with its
// architecture so DecodeCNN can rebuild it.
func EncodeCNN(net *Network, seqLen, embDim, conv1, conv2, hidden, classes int) ([]byte, error) {
	st := netState{
		SeqLen: seqLen, EmbDim: embDim,
		Conv1: conv1, Conv2: conv2, Hidden: hidden, Classes: classes,
	}
	for _, p := range net.Params() {
		w := make([]float32, len(p.W))
		copy(w, p.W)
		st.Weights = append(st.Weights, w)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// maxDecodeDim bounds each architecture dimension DecodeCNN accepts, so a
// forged or corrupt blob cannot demand a pathological allocation.
const maxDecodeDim = 1 << 20

// DecodeCNN rebuilds a serialized network.
func DecodeCNN(data []byte) (*Network, error) {
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	for _, d := range []int{st.SeqLen, st.EmbDim, st.Conv1, st.Conv2, st.Hidden, st.Classes} {
		if d <= 0 || d > maxDecodeDim {
			return nil, fmt.Errorf("nn: decode: architecture dimension %d out of range", d)
		}
	}
	net := NewCNN(st.SeqLen, st.EmbDim, st.Conv1, st.Conv2, st.Hidden, st.Classes, 0)
	params := net.Params()
	if len(params) != len(st.Weights) {
		return nil, fmt.Errorf("nn: decode: %d weight blocks for %d params", len(st.Weights), len(params))
	}
	for i, p := range params {
		if len(p.W) != len(st.Weights[i]) {
			return nil, fmt.Errorf("nn: decode: param %d size %d != %d", i, len(st.Weights[i]), len(p.W))
		}
		copy(p.W, st.Weights[i])
	}
	return net, nil
}
