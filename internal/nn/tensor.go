// Package nn is a compact pure-Go neural-network library implementing
// exactly what the paper's Keras models need (§V-A): 1-D convolutions over
// the 21×96 VUC matrix, ReLU, max-pooling, dense layers, softmax
// cross-entropy, and the Adam optimizer, with deterministic initialization
// and (de)serialization.
package nn

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Data  []float32
	Shape []int
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// ShapeError reports an element-count-changing reshape. It is the value
// Reshape panics with, so a contained panic (par.Safe / par.ForEachCtx)
// surfaces as a structured error reachable with errors.As rather than a
// formatted string.
type ShapeError struct {
	From, To []int
}

func (e *ShapeError) Error() string {
	return fmt.Sprintf("nn: reshape %v to %v changes element count", e.From, e.To)
}

// ReshapeChecked returns a view with a new shape of equal element count,
// or a *ShapeError when the counts differ. This is the validated path for
// shapes that derive from external input.
func (t *Tensor) ReshapeChecked(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		return nil, &ShapeError{
			From: append([]int(nil), t.Shape...),
			To:   append([]int(nil), shape...),
		}
	}
	return &Tensor{Data: t.Data, Shape: append([]int(nil), shape...)}, nil
}

// Reshape returns a view with a new shape of equal element count. It
// panics with a *ShapeError on mismatch — reserved for call sites whose
// shapes are provably consistent (see Flatten); anything shape-derived
// from external input must use ReshapeChecked. Inside the worker pool a
// violation is contained by par's recover-to-error layer instead of
// killing the process.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out, err := t.ReshapeChecked(shape...)
	if err != nil {
		panic(err)
	}
	return out
}

// Param is one learnable parameter with its gradient accumulator.
type Param struct {
	W []float32
	G []float32
	// Adam state.
	m, v []float32
}

func newParam(n int) *Param {
	return &Param{W: make([]float32, n), G: make([]float32, n)}
}

func (p *Param) zeroGrad() {
	for i := range p.G {
		p.G[i] = 0
	}
}

// glorotInit fills W uniformly in ±sqrt(6/(fanIn+fanOut)).
func glorotInit(r *rand.Rand, w []float32, fanIn, fanOut int) {
	limit := float32(2.449489742783178) / float32(sqrtf(float32(fanIn+fanOut))) // sqrt(6)/sqrt(fan)
	for i := range w {
		w[i] = (r.Float32()*2 - 1) * limit
	}
}

func sqrtf(x float32) float32 {
	// Newton iterations are plenty for initialization purposes.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 16; i++ {
		z = (z + x/z) / 2
	}
	return z
}
