package nn

import (
	"math/rand"

	"repro/internal/gemm"
)

// Layer is one differentiable stage. Forward with train=true retains
// whatever the subsequent Backward needs (input, activation mask, pool
// argmax), so a training network — or each per-worker replica built by
// replicaNetwork — must be driven by a single goroutine at a time. Forward
// with train=false mutates no layer state and is safe to call from any
// number of goroutines concurrently, which is what parallel inference
// relies on.
type Layer interface {
	Forward(x *Tensor, train bool) *Tensor
	Backward(grad *Tensor) *Tensor
	Params() []*Param
}

// Conv1D is a same-padded 1-D convolution over [B, L, Cin] → [B, L, Cout].
type Conv1D struct {
	In, Out, K int
	W          *Param // [Out, K, In]
	B          *Param // [Out]

	lastX *Tensor
}

// NewConv1D builds a same-padded convolution layer.
func NewConv1D(r *rand.Rand, in, out, k int) *Conv1D {
	c := &Conv1D{In: in, Out: out, K: k, W: newParam(out * k * in), B: newParam(out)}
	glorotInit(r, c.W.W, in*k, out)
	return c
}

// Forward computes the convolution. Inference lowers to im2col + GEMM on
// the gemm math core; training keeps the reference loops, which double as
// the shape the backward pass mirrors.
func (c *Conv1D) Forward(x *Tensor, train bool) *Tensor {
	b, l := x.Dim(0), x.Dim(1)
	out := NewTensor(b, l, c.Out)
	if !train {
		ar := arenaPool.Get().(*gemm.Arena)
		ar.Reset()
		c.forwardGEMM(x.Data, out.Data, b, l, ar)
		arenaPool.Put(ar)
		return out
	}
	c.lastX = x
	half := c.K / 2
	for bi := 0; bi < b; bi++ {
		xb := x.Data[bi*l*c.In : (bi+1)*l*c.In]
		ob := out.Data[bi*l*c.Out : (bi+1)*l*c.Out]
		for li := 0; li < l; li++ {
			orow := ob[li*c.Out : (li+1)*c.Out]
			copy(orow, c.B.W)
			for dk := 0; dk < c.K; dk++ {
				si := li + dk - half
				if si < 0 || si >= l {
					continue
				}
				xrow := xb[si*c.In : (si+1)*c.In]
				for co := 0; co < c.Out; co++ {
					w := c.W.W[(co*c.K+dk)*c.In : (co*c.K+dk+1)*c.In]
					var sum float32
					for ci := range xrow {
						sum += w[ci] * xrow[ci]
					}
					orow[co] += sum
				}
			}
		}
	}
	return out
}

// Backward accumulates dW/dB and returns dX.
func (c *Conv1D) Backward(grad *Tensor) *Tensor {
	x := c.lastX
	b, l := x.Dim(0), x.Dim(1)
	dx := NewTensor(b, l, c.In)
	half := c.K / 2
	for bi := 0; bi < b; bi++ {
		xb := x.Data[bi*l*c.In : (bi+1)*l*c.In]
		gb := grad.Data[bi*l*c.Out : (bi+1)*l*c.Out]
		db := dx.Data[bi*l*c.In : (bi+1)*l*c.In]
		for li := 0; li < l; li++ {
			grow := gb[li*c.Out : (li+1)*c.Out]
			for co := 0; co < c.Out; co++ {
				g := grow[co]
				if g == 0 {
					continue
				}
				c.B.G[co] += g
				for dk := 0; dk < c.K; dk++ {
					si := li + dk - half
					if si < 0 || si >= l {
						continue
					}
					xrow := xb[si*c.In : (si+1)*c.In]
					dxrow := db[si*c.In : (si+1)*c.In]
					w := c.W.W[(co*c.K+dk)*c.In : (co*c.K+dk+1)*c.In]
					wg := c.W.G[(co*c.K+dk)*c.In : (co*c.K+dk+1)*c.In]
					for ci := range xrow {
						wg[ci] += g * xrow[ci]
						dxrow[ci] += g * w[ci]
					}
				}
			}
		}
	}
	return dx
}

// Params returns the layer's parameters.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// ReLU is the elementwise rectifier.
type ReLU struct {
	mask []bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *Tensor, train bool) *Tensor {
	out := NewTensor(x.Shape...)
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				r.mask[i] = true
			}
		} else if train {
			r.mask[i] = false
		}
	}
	return out
}

// Backward gates the gradient by the activation mask.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	out := NewTensor(grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Params returns nil (ReLU has none).
func (r *ReLU) Params() []*Param { return nil }

// MaxPool1D halves the sequence axis of [B, L, C] (floor division).
type MaxPool1D struct {
	argmax []int32
	inLen  int
	ch     int
}

// Forward pools adjacent pairs.
func (p *MaxPool1D) Forward(x *Tensor, train bool) *Tensor {
	b, l, c := x.Dim(0), x.Dim(1), x.Dim(2)
	ol := l / 2
	out := NewTensor(b, ol, c)
	if train {
		if cap(p.argmax) < out.Len() {
			p.argmax = make([]int32, out.Len())
		}
		p.argmax = p.argmax[:out.Len()]
		p.inLen, p.ch = l, c
	}
	for bi := 0; bi < b; bi++ {
		for li := 0; li < ol; li++ {
			i0 := (bi*l + 2*li) * c
			i1 := i0 + c
			o := (bi*ol + li) * c
			for ci := 0; ci < c; ci++ {
				a, bb := x.Data[i0+ci], x.Data[i1+ci]
				if a >= bb {
					out.Data[o+ci] = a
					if train {
						p.argmax[o+ci] = int32(i0 + ci)
					}
				} else {
					out.Data[o+ci] = bb
					if train {
						p.argmax[o+ci] = int32(i1 + ci)
					}
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool1D) Backward(grad *Tensor) *Tensor {
	b, c := grad.Dim(0), grad.Dim(2)
	dx := NewTensor(b, p.inLen, c)
	for i, g := range grad.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// Params returns nil.
func (p *MaxPool1D) Params() []*Param { return nil }

// Flatten collapses [B, ...] to [B, N].
type Flatten struct {
	inShape []int
}

// Forward reshapes. The unchecked Reshape is safe here by construction:
// [B, n] with n the product of the remaining axes preserves the element
// count for any input shape.
func (f *Flatten) Forward(x *Tensor, train bool) *Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape...)
	}
	n := 1
	for _, d := range x.Shape[1:] {
		n *= d
	}
	return x.Reshape(x.Dim(0), n)
}

// Backward restores the shape. Safe for the same reason as Forward: grad
// mirrors Forward's output, whose element count equals inShape's.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil.
func (f *Flatten) Params() []*Param { return nil }

// Dense is a fully connected layer [B, In] → [B, Out].
type Dense struct {
	In, Out int
	W       *Param // [In, Out]
	B       *Param // [Out]

	lastX *Tensor
}

// NewDense builds a dense layer with Glorot initialization.
func NewDense(r *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: newParam(in * out), B: newParam(out)}
	glorotInit(r, d.W.W, in, out)
	return d
}

// Forward computes X·W + b. Inference routes through the gemm math core;
// training keeps the reference loop.
func (d *Dense) Forward(x *Tensor, train bool) *Tensor {
	b := x.Dim(0)
	out := NewTensor(b, d.Out)
	if !train {
		ar := arenaPool.Get().(*gemm.Arena)
		ar.Reset()
		d.forwardGEMM(x.Data, out.Data, b, ar)
		arenaPool.Put(ar)
		return out
	}
	d.lastX = x
	for bi := 0; bi < b; bi++ {
		xrow := x.Data[bi*d.In : (bi+1)*d.In]
		orow := out.Data[bi*d.Out : (bi+1)*d.Out]
		copy(orow, d.B.W)
		for i, xv := range xrow {
			if xv == 0 {
				continue
			}
			wrow := d.W.W[i*d.Out : (i+1)*d.Out]
			for o := range orow {
				orow[o] += xv * wrow[o]
			}
		}
	}
	return out
}

// Backward accumulates dW/dB and returns dX.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	x := d.lastX
	b := x.Dim(0)
	dx := NewTensor(b, d.In)
	for bi := 0; bi < b; bi++ {
		xrow := x.Data[bi*d.In : (bi+1)*d.In]
		grow := grad.Data[bi*d.Out : (bi+1)*d.Out]
		dxrow := dx.Data[bi*d.In : (bi+1)*d.In]
		for o, g := range grow {
			d.B.G[o] += g
		}
		for i, xv := range xrow {
			wrow := d.W.W[i*d.Out : (i+1)*d.Out]
			wgrow := d.W.G[i*d.Out : (i+1)*d.Out]
			var acc float32
			for o, g := range grow {
				acc += g * wrow[o]
				wgrow[o] += g * xv
			}
			dxrow[i] = acc
		}
	}
	return dx
}

// Params returns the layer's parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }
