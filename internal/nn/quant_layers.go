package nn

import (
	"errors"
	"fmt"

	"repro/internal/gemm"
)

// Quantized inference layers: weights are stored as int8 with per-output-
// channel symmetric scales (see internal/gemm/quant.go for the scheme),
// activations are quantized dynamically per tensor at each layer boundary,
// and the matrix product runs in int8 with int32 accumulation before
// dequantizing back to float32. Artifacts shrink to roughly a quarter of
// the float32 size. Quantized layers are inference-only: Backward and
// Forward(train=true) panic, and the trainers reject such networks up
// front with ErrNotTrainable.

// ErrNotTrainable reports an attempt to train a network that contains
// inference-only quantized layers.
var ErrNotTrainable = errors.New("nn: network contains inference-only quantized layers")

// errQuantTrain is the panic message for the unreachable training paths.
const errQuantTrain = "nn: quantized layer is inference-only"

// QConv1D is the int8 form of Conv1D. Wq holds the filter bank as one row
// of K*In quantized weights per output channel.
type QConv1D struct {
	In, Out, K int
	Wq         []int8    // [Out, K*In]
	Scale      []float32 // per-output-channel dequant scale
	B          []float32 // [Out]
}

// Forward computes the convolution via the quantized path. Inference only.
func (q *QConv1D) Forward(x *Tensor, train bool) *Tensor {
	if train {
		panic(errQuantTrain)
	}
	b, l := x.Dim(0), x.Dim(1)
	out := NewTensor(b, l, q.Out)
	ar := arenaPool.Get().(*gemm.Arena)
	ar.Reset()
	q.forwardInto(x.Data, out.Data, b, l, ar)
	arenaPool.Put(ar)
	return out
}

// forwardInto is the arena-based kernel shared with the fast path: im2col
// in float32, quantize the unfolded matrix once per tensor, int8 GEMM,
// dequantize with bias.
func (q *QConv1D) forwardInto(x, out []float32, b, l int, ar *gemm.Arena) {
	m := b * l
	kIn := q.K * q.In
	mark := ar.Mark()
	col := ar.F32Raw(m * kIn)
	im2col(col, x, b, l, q.In, q.K)
	qx := ar.I8(m * kIn)
	scaleX := gemm.QuantizeTensorInto(qx, col)
	ar.Release(mark)
	acc := ar.I32(m * q.Out)
	gemm.GEMMInt8(m, q.Out, kIn, qx, q.Wq, acc)
	gemm.DequantizeRows(out, acc, m, q.Out, scaleX, q.Scale, q.B)
}

// Backward panics: quantized layers cannot train.
func (q *QConv1D) Backward(*Tensor) *Tensor { panic(errQuantTrain) }

// Params exposes the float parameters (scales and bias) so CheckFinite
// can validate loaded artifacts; the optimizer never sees them because
// the trainers reject quantized networks.
func (q *QConv1D) Params() []*Param {
	return []*Param{{W: q.Scale}, {W: q.B}}
}

// QDense is the int8 form of Dense. Unlike Dense (which stores W as
// [In, Out]), the quantized weights are transposed to one row per output
// channel so the GEMM reads both operands K-contiguously.
type QDense struct {
	In, Out int
	Wq      []int8    // [Out, In]
	Scale   []float32 // per-output-channel dequant scale
	B       []float32 // [Out]
}

// Forward computes X·W + b via the quantized path. Inference only.
func (q *QDense) Forward(x *Tensor, train bool) *Tensor {
	if train {
		panic(errQuantTrain)
	}
	b := x.Dim(0)
	out := NewTensor(b, q.Out)
	ar := arenaPool.Get().(*gemm.Arena)
	ar.Reset()
	q.forwardInto(x.Data, out.Data, b, ar)
	arenaPool.Put(ar)
	return out
}

func (q *QDense) forwardInto(x, out []float32, b int, ar *gemm.Arena) {
	qx := ar.I8(b * q.In)
	scaleX := gemm.QuantizeTensorInto(qx, x)
	acc := ar.I32(b * q.Out)
	gemm.GEMMInt8(b, q.Out, q.In, qx, q.Wq, acc)
	gemm.DequantizeRows(out, acc, b, q.Out, scaleX, q.Scale, q.B)
}

// Backward panics: quantized layers cannot train.
func (q *QDense) Backward(*Tensor) *Tensor { panic(errQuantTrain) }

// Params exposes scales and bias for finiteness checks (see QConv1D).
func (q *QDense) Params() []*Param {
	return []*Param{{W: q.Scale}, {W: q.B}}
}

// Trainable reports whether every layer supports backpropagation; networks
// holding quantized layers are inference-only.
func (n *Network) Trainable() bool {
	for _, l := range n.Layers {
		switch l.(type) {
		case *QConv1D, *QDense:
			return false
		}
	}
	return true
}

// Quantized reports whether any layer runs int8 inference.
func (n *Network) Quantized() bool { return !n.Trainable() }

// QuantizeNetwork converts a float32 network into its int8 inference
// form: Conv1D and Dense weights are quantized per output channel
// (symmetric, zero-point 0), biases stay float32, and stateless layers
// are rebuilt fresh. The original network is not modified.
func QuantizeNetwork(net *Network) (*Network, error) {
	out := &Network{Layers: make([]Layer, len(net.Layers))}
	for i, l := range net.Layers {
		switch t := l.(type) {
		case *Conv1D:
			// W is [Out, K, In] flattened: already one row per channel.
			wq, scales := gemm.QuantizePerRow(t.W.W, t.Out, t.K*t.In)
			out.Layers[i] = &QConv1D{
				In: t.In, Out: t.Out, K: t.K,
				Wq: wq, Scale: scales, B: append([]float32(nil), t.B.W...),
			}
		case *Dense:
			// Transpose [In, Out] → [Out, In] so each output channel is a
			// contiguous row for per-channel quantization and the GEMM.
			wt := make([]float32, t.In*t.Out)
			for in := 0; in < t.In; in++ {
				for o := 0; o < t.Out; o++ {
					wt[o*t.In+in] = t.W.W[in*t.Out+o]
				}
			}
			wq, scales := gemm.QuantizePerRow(wt, t.Out, t.In)
			out.Layers[i] = &QDense{
				In: t.In, Out: t.Out,
				Wq: wq, Scale: scales, B: append([]float32(nil), t.B.W...),
			}
		case *ReLU:
			out.Layers[i] = &ReLU{}
		case *MaxPool1D:
			out.Layers[i] = &MaxPool1D{}
		case *Flatten:
			out.Layers[i] = &Flatten{}
		default:
			return nil, fmt.Errorf("nn: cannot quantize layer %d (%T)", i, l)
		}
	}
	return out, nil
}
