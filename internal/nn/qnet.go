package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// qnetState is the serialized form of a quantized CNN: the architecture
// hyperparameters plus, per quantized layer in stack order, the int8
// weights, the per-output-channel scales, and the float32 biases.
type qnetState struct {
	SeqLen, EmbDim       int
	Conv1, Conv2, Hidden int
	Classes              int
	Weights              [][]int8
	Scales               [][]float32
	Biases               [][]float32
}

// EncodeQCNN serializes a quantized network produced by QuantizeNetwork
// from a NewCNN-shaped float network, along with its architecture so
// DecodeQCNN can rebuild it. The int8 payload is roughly a quarter of the
// float32 artifact.
func EncodeQCNN(net *Network, seqLen, embDim, conv1, conv2, hidden, classes int) ([]byte, error) {
	st := qnetState{
		SeqLen: seqLen, EmbDim: embDim,
		Conv1: conv1, Conv2: conv2, Hidden: hidden, Classes: classes,
	}
	for _, l := range net.Layers {
		switch t := l.(type) {
		case *QConv1D:
			st.Weights = append(st.Weights, t.Wq)
			st.Scales = append(st.Scales, t.Scale)
			st.Biases = append(st.Biases, t.B)
		case *QDense:
			st.Weights = append(st.Weights, t.Wq)
			st.Scales = append(st.Scales, t.Scale)
			st.Biases = append(st.Biases, t.B)
		case *ReLU, *MaxPool1D, *Flatten:
		default:
			return nil, fmt.Errorf("nn: encode quantized: unexpected layer %T", l)
		}
	}
	if len(st.Weights) != 4 {
		return nil, fmt.Errorf("nn: encode quantized: %d quantized layers, want 4", len(st.Weights))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("nn: encode quantized: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeQCNN rebuilds a serialized quantized network. The resulting
// network is inference-only (Trainable reports false).
func DecodeQCNN(data []byte) (*Network, error) {
	var st qnetState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: decode quantized: %w", err)
	}
	for _, d := range []int{st.SeqLen, st.EmbDim, st.Conv1, st.Conv2, st.Hidden, st.Classes} {
		if d <= 0 || d > maxDecodeDim {
			return nil, fmt.Errorf("nn: decode quantized: architecture dimension %d out of range", d)
		}
	}
	if len(st.Weights) != 4 || len(st.Scales) != 4 || len(st.Biases) != 4 {
		return nil, fmt.Errorf("nn: decode quantized: %d/%d/%d weight/scale/bias blocks, want 4 each",
			len(st.Weights), len(st.Scales), len(st.Biases))
	}
	l2 := (st.SeqLen / 2) / 2
	layers := []Layer{
		&QConv1D{In: st.EmbDim, Out: st.Conv1, K: 3},
		&ReLU{},
		&MaxPool1D{},
		&QConv1D{In: st.Conv1, Out: st.Conv2, K: 3},
		&ReLU{},
		&MaxPool1D{},
		&Flatten{},
		&QDense{In: l2 * st.Conv2, Out: st.Hidden},
		&ReLU{},
		&QDense{In: st.Hidden, Out: st.Classes},
	}
	qi := 0
	for _, l := range layers {
		var wantW, wantOut int
		switch t := l.(type) {
		case *QConv1D:
			wantW, wantOut = t.Out*t.K*t.In, t.Out
		case *QDense:
			wantW, wantOut = t.Out*t.In, t.Out
		default:
			continue
		}
		if len(st.Weights[qi]) != wantW {
			return nil, fmt.Errorf("nn: decode quantized: layer %d weight size %d != %d", qi, len(st.Weights[qi]), wantW)
		}
		if len(st.Scales[qi]) != wantOut || len(st.Biases[qi]) != wantOut {
			return nil, fmt.Errorf("nn: decode quantized: layer %d scale/bias size %d/%d != %d",
				qi, len(st.Scales[qi]), len(st.Biases[qi]), wantOut)
		}
		switch t := l.(type) {
		case *QConv1D:
			t.Wq, t.Scale, t.B = st.Weights[qi], st.Scales[qi], st.Biases[qi]
		case *QDense:
			t.Wq, t.Scale, t.B = st.Weights[qi], st.Scales[qi], st.Biases[qi]
		}
		qi++
	}
	net := &Network{Layers: layers}
	if err := net.CheckFinite(); err != nil {
		return nil, fmt.Errorf("nn: decode quantized: %w", err)
	}
	return net, nil
}
