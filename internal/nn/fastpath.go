package nn

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/gemm"
	"repro/internal/par"
)

// The inference fast path lowers the CNN's forward pass onto the gemm math
// core. Convolutions become im2col + GEMM (the [B, L, Cin] input unfolds
// into a [B*L, K*Cin] matrix so the whole layer is one matrix product
// against the [Out, K*Cin] filter bank), dense layers call GEMM directly,
// and every intermediate buffer — im2col matrices, activations, quantized
// tensors, GEMM packing panels — is carved from a per-worker Arena that is
// reset between batches. After the first batch warms an arena to its
// high-water mark, steady-state inference performs zero heap allocations.
//
// Training never touches this path: Forward(train=true) keeps the original
// reference loops (which retain backward state), and the trainers are the
// only callers that pass train=true.

// arenaPool recycles per-worker scratch arenas across prediction calls.
// Arenas are not goroutine-safe; each chunk worker takes one for the
// duration of a batch.
var arenaPool = sync.Pool{New: func() any { return new(gemm.Arena) }}

// im2col unfolds a same-padded [b, l, in] sequence batch into rows of
// concatenated k-windows: dst[(bi*l+li)] = x[bi, li-k/2 : li+k/2+1, :],
// zero-padded at the edges. dst must hold b*l*k*in values; every position
// is written.
func im2col(dst, x []float32, b, l, in, k int) {
	im2colRows(dst, x, 0, b*l, l, in, k)
}

// im2colRows writes rows [r0, r1) of the im2col matrix into dst (row r of
// the matrix is sample r/l, sequence position r%l), so the conv GEMM can
// materialize one cache-sized strip at a time instead of the full matrix.
func im2colRows(dst, x []float32, r0, r1, l, in, k int) {
	half := k / 2
	rowLen := k * in
	for r := r0; r < r1; r++ {
		bi, li := r/l, r%l
		xb := x[bi*l*in : (bi+1)*l*in]
		row := dst[(r-r0)*rowLen : (r-r0+1)*rowLen]
		for dk := 0; dk < k; dk++ {
			si := li + dk - half
			seg := row[dk*in : (dk+1)*in]
			if si < 0 || si >= l {
				clear(seg)
				continue
			}
			copy(seg, xb[si*in:(si+1)*in])
		}
	}
}

// convRowBlock is the number of im2col rows materialized per conv GEMM
// call: large enough to amortize the per-call B packing, small enough
// that the strip (convRowBlock × K·Cin floats) stays in the last-level
// cache instead of round-tripping through DRAM.
const convRowBlock = 512

// fillBiasRows initializes each of the m rows of out with bias.
func fillBiasRows(out, bias []float32, m int) {
	n := len(bias)
	for i := 0; i < m; i++ {
		copy(out[i*n:(i+1)*n], bias)
	}
}

// forwardGEMM computes the convolution via im2col + GEMM: out (b*l rows,
// Out wide, bias-initialized) += im2col(x) · Wᵀ. The im2col matrix lives
// between mark/release so it does not count against the arena's high-water
// mark once the layer finishes.
func (c *Conv1D) forwardGEMM(x, out []float32, b, l int, ar *gemm.Arena) {
	m := b * l
	kIn := c.K * c.In
	fillBiasRows(out, c.B.W, m)
	mark := ar.Mark()
	col := ar.F32Raw(min(m, convRowBlock) * kIn)
	for r0 := 0; r0 < m; r0 += convRowBlock {
		rows := min(convRowBlock, m-r0)
		im2colRows(col, x, r0, r0+rows, l, c.In, c.K)
		gemm.SGEMM(rows, c.Out, kIn, col[:rows*kIn], kIn, c.W.W, kIn, true,
			out[r0*c.Out:], c.Out, ar)
	}
	ar.Release(mark)
}

// forwardGEMM computes out (b rows, bias-initialized) += x · W.
func (d *Dense) forwardGEMM(x, out []float32, b int, ar *gemm.Arena) {
	fillBiasRows(out, d.B.W, b)
	gemm.SGEMM(b, d.Out, d.In, x, d.In, d.W.W, d.Out, false, out, d.Out, ar)
}

// forwardInfer runs the whole network over a flattened [b, seqLen, embDim]
// batch in arena memory and returns the logits ([b*classes], arena-owned)
// with the class count. ok is false when the stack contains a layer type
// the fast path cannot lower; callers then fall back to Layer.Forward.
func forwardInfer(net *Network, x []float32, b, seqLen, embDim int, ar *gemm.Arena) (logits []float32, classes int, ok bool) {
	cur := x
	l, ch := seqLen, embDim // current [b, l, ch] shape; flat after Flatten
	flat := false
	for _, layer := range net.Layers {
		switch t := layer.(type) {
		case *Conv1D:
			out := ar.F32Raw(b * l * t.Out)
			t.forwardGEMM(cur, out, b, l, ar)
			cur, ch = out, t.Out
		case *QConv1D:
			out := ar.F32Raw(b * l * t.Out)
			t.forwardInto(cur, out, b, l, ar)
			cur, ch = out, t.Out
		case *ReLU:
			gemm.ReLU(cur)
		case *MaxPool1D:
			ol := l / 2
			out := ar.F32Raw(b * ol * ch)
			for bi := 0; bi < b; bi++ {
				for li := 0; li < ol; li++ {
					i0 := (bi*l + 2*li) * ch
					i1 := i0 + ch
					o := (bi*ol + li) * ch
					for ci := 0; ci < ch; ci++ {
						a, bb := cur[i0+ci], cur[i1+ci]
						if a >= bb {
							out[o+ci] = a
						} else {
							out[o+ci] = bb
						}
					}
				}
			}
			cur, l = out, ol
		case *Flatten:
			ch, l, flat = l*ch, 1, true
		case *Dense:
			out := ar.F32Raw(b * t.Out)
			t.forwardGEMM(cur, out, b, ar)
			cur, ch = out, t.Out
		case *QDense:
			out := ar.F32Raw(b * t.Out)
			t.forwardInto(cur, out, b, ar)
			cur, ch = out, t.Out
		default:
			return nil, 0, false
		}
	}
	if !flat {
		return nil, 0, false
	}
	return cur, ch, true
}

// OutputDim returns the network's class count (the output width of the
// final dense layer), or 0 if the architecture does not end in one.
func (n *Network) OutputDim() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		switch t := n.Layers[i].(type) {
		case *Dense:
			return t.Out
		case *QDense:
			return t.Out
		}
	}
	return 0
}

// PredictIntoCtx is the zero-allocation inference entry point: class
// probabilities for samples[i] are written into out[i], which the caller
// provides with len(out) == len(samples) and every row at least
// net.OutputDim() long. Workers share nothing but the network weights;
// each takes a pooled scratch arena, so once the arenas have warmed to the
// batch shape the call performs no heap allocations (with workers=1 the
// fan-out itself is inline and allocation-free too).
func PredictIntoCtx(ctx context.Context, net *Network, samples [][]float32, seqLen, embDim, workers int, out [][]float32) error {
	if len(samples) == 0 {
		return nil
	}
	if len(out) != len(samples) {
		return fmt.Errorf("nn: predict into %d rows for %d samples", len(out), len(samples))
	}
	classes := net.OutputDim()
	if classes == 0 {
		return fmt.Errorf("nn: network has no dense output layer")
	}
	for i, row := range out {
		if len(row) < classes {
			return fmt.Errorf("nn: output row %d has %d of %d classes", i, len(row), classes)
		}
	}
	chunks := (len(samples) + predictChunk - 1) / predictChunk
	if par.Workers(workers) == 1 || chunks == 1 {
		// Closure-free serial path: with a warmed arena this loop performs
		// zero heap allocations per call.
		for ci := 0; ci < chunks; ci++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			predictChunkInto(net, samples, seqLen, embDim, ci, out)
		}
		return nil
	}
	return par.ForEachCtx(ctx, chunks, par.Workers(workers), func(ci int) {
		predictChunkInto(net, samples, seqLen, embDim, ci, out)
	})
}

// predictChunkInto runs one predictChunk-sized slice of samples through the
// fast path on a pooled arena and writes the probability rows into out.
func predictChunkInto(net *Network, samples [][]float32, seqLen, embDim, ci int, out [][]float32) {
	size := seqLen * embDim
	start := ci * predictChunk
	end := min(start+predictChunk, len(samples))
	b := end - start
	ar := arenaPool.Get().(*gemm.Arena)
	defer arenaPool.Put(ar)
	ar.Reset()

	x := ar.F32Raw(b * size)
	for bi, s := range samples[start:end] {
		copy(x[bi*size:(bi+1)*size], s)
	}
	logits, c, ok := forwardInfer(net, x, b, seqLen, embDim, ar)
	if !ok {
		// Unknown layer type: generic path through Layer.Forward.
		xt := NewTensor(b, seqLen, embDim)
		copy(xt.Data, x)
		lt := net.Forward(xt, false)
		logits, c = lt.Data, lt.Dim(1)
	}
	softmaxRows(logits, b, c)
	for bi := 0; bi < b; bi++ {
		copy(out[start+bi][:c], logits[bi*c:(bi+1)*c])
	}
}
