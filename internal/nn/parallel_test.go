package nn

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// parallelDataset builds a deterministic two-class dataset large enough to
// span several minibatches and Predict chunks.
func parallelDataset(n, seqLen, embDim int) *Dataset {
	r := rand.New(rand.NewSource(17))
	ds := &Dataset{SeqLen: seqLen, EmbDim: embDim}
	for i := 0; i < n; i++ {
		y := i % 2
		s := make([]float32, seqLen*embDim)
		for j := range s {
			s[j] = r.Float32()*0.4 - 0.2
		}
		for l := 0; l < seqLen; l++ {
			s[l*embDim+y] += 1.0
		}
		ds.Add(s, y)
	}
	return ds
}

// TestTrainWorkersOneMatchesSerial pins the satellite guarantee: Workers=1
// through the public API runs the historical serial trainer bit-for-bit.
func TestTrainWorkersOneMatchesSerial(t *testing.T) {
	const seqLen, embDim = 8, 6
	ds := parallelDataset(150, seqLen, embDim)
	cfg := TrainConfig{Epochs: 2, Batch: 32, LR: 2e-3, Seed: 5}

	serial := NewCNN(seqLen, embDim, 4, 4, 16, 2, 9)
	if err := trainClassifierSerial(context.Background(), serial, ds, 2, cfg.withDefaults()); err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	public := NewCNN(seqLen, embDim, 4, 4, 16, 2, 9)
	if err := TrainClassifier(public, ds, 2, cfg); err != nil {
		t.Fatal(err)
	}
	pa, pb := serial.Params(), public.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("Workers=1 diverges from serial at param %d[%d]: %v != %v",
					i, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

// TestTrainParallelDeterministic asserts the tentpole's determinism
// contract: a fixed worker count reproduces identical weights.
func TestTrainParallelDeterministic(t *testing.T) {
	const seqLen, embDim = 8, 6
	train := func() *Network {
		net := NewCNN(seqLen, embDim, 4, 4, 16, 2, 9)
		ds := parallelDataset(150, seqLen, embDim)
		cfg := TrainConfig{Epochs: 2, Batch: 32, LR: 2e-3, Seed: 5, Workers: 4}
		if err := TrainClassifier(net, ds, 2, cfg); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := train(), train()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("Workers=4 training nondeterministic at param %d[%d]", i, j)
			}
		}
	}
}

// TestTrainParallelLearns checks the sharded trainer still converges on a
// separable task.
func TestTrainParallelLearns(t *testing.T) {
	const seqLen, embDim = 9, 8
	ds := parallelDataset(400, seqLen, embDim)
	net := NewCNN(seqLen, embDim, 8, 8, 32, 2, 7)
	cfg := TrainConfig{Epochs: 5, Batch: 32, LR: 2e-3, Seed: 1, Workers: 4}
	if err := TrainClassifier(net, ds, 2, cfg); err != nil {
		t.Fatal(err)
	}
	probs := Predict(net, ds.Samples, seqLen, embDim)
	correct := 0
	for i, p := range probs {
		if Argmax(p) == ds.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Errorf("parallel training accuracy %.2f, want ≥0.95", acc)
	}
}

// TestPredictWorkersIdentical asserts inference output is bitwise-equal
// across worker counts (chunks write disjoint rows).
func TestPredictWorkersIdentical(t *testing.T) {
	const seqLen, embDim = 8, 6
	ds := parallelDataset(600, seqLen, embDim) // > 2 predictChunks
	net := NewCNN(seqLen, embDim, 4, 4, 16, 2, 3)
	one := PredictN(net, ds.Samples, seqLen, embDim, 1)
	four := PredictN(net, ds.Samples, seqLen, embDim, 4)
	if len(one) != len(four) {
		t.Fatalf("row count %d vs %d", len(one), len(four))
	}
	for i := range one {
		for c := range one[i] {
			if one[i][c] != four[i][c] {
				t.Fatalf("Predict differs across worker counts at [%d][%d]", i, c)
			}
		}
	}
}

// TestPredictConcurrent drives one shared trained network from many
// goroutines simultaneously; run under -race (see Makefile check target)
// this proves inference-mode Forward is state-free.
func TestPredictConcurrent(t *testing.T) {
	const seqLen, embDim = 8, 6
	ds := parallelDataset(300, seqLen, embDim)
	net := NewCNN(seqLen, embDim, 4, 4, 16, 2, 3)
	if err := TrainClassifier(net, ds, 2, TrainConfig{Epochs: 1, Batch: 32, Seed: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := PredictN(net, ds.Samples, seqLen, embDim, 1)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := Predict(net, ds.Samples, seqLen, embDim)
			for i := range want {
				for c := range want[i] {
					if got[i][c] != want[i][c] {
						errs <- "concurrent Predict diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestReplicaNetworkSharing verifies the replica contract: weights are the
// same storage, gradients are not.
func TestReplicaNetworkSharing(t *testing.T) {
	net := NewCNN(8, 6, 4, 4, 16, 2, 1)
	rep := replicaNetwork(net)
	if rep == nil {
		t.Fatal("replicaNetwork failed on a standard CNN")
	}
	mp, rp := net.Params(), rep.Params()
	if len(mp) != len(rp) {
		t.Fatalf("param count %d vs %d", len(mp), len(rp))
	}
	for i := range mp {
		mp[i].W[0] = 42
		if rp[i].W[0] != 42 {
			t.Fatalf("param %d weights not shared", i)
		}
		rp[i].G[0] = 7
		if mp[i].G[0] == 7 {
			t.Fatalf("param %d gradients shared", i)
		}
		mp[i].G[0], rp[i].G[0] = 0, 0
	}
	// Unknown layer types refuse replication.
	if replicaNetwork(&Network{Layers: []Layer{fakeLayer{}}}) != nil {
		t.Error("replicaNetwork should reject unknown layers")
	}
}

type fakeLayer struct{}

func (fakeLayer) Forward(x *Tensor, train bool) *Tensor { return x }
func (fakeLayer) Backward(g *Tensor) *Tensor            { return g }
func (fakeLayer) Params() []*Param                      { return nil }
