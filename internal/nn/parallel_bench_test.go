package nn

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// benchNet/benchData size the parallel benchmarks like one CATI stage at
// bench scale: 21×96 inputs through the paper's 32-64-1024 architecture.
const (
	benchSeqLen = 21
	benchEmbDim = 96
)

func benchData(n int) *Dataset { return parallelDataset(n, benchSeqLen, benchEmbDim) }

// BenchmarkTrainClassifierParallel compares the sharded trainer across
// worker counts; at 4+ workers on a multicore host it must beat the serial
// path by ≥2x.
func BenchmarkTrainClassifierParallel(b *testing.B) {
	ds := benchData(512)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := TrainConfig{Epochs: 1, Batch: 64, LR: 1e-3, Seed: 5, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
				if err := TrainClassifier(net, ds, 2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictParallel measures chunked inference across worker
// counts on one shared network.
func BenchmarkPredictParallel(b *testing.B) {
	ds := benchData(2048)
	net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := PredictN(net, ds.Samples, benchSeqLen, benchEmbDim, workers); len(out) != ds.Len() {
					b.Fatal("short output")
				}
			}
		})
	}
}

// BenchmarkPredictInto is the steady-state inference benchmark: output
// rows are caller-provided and the scratch arenas warm up before the
// timer starts, so with workers=1 (inline fan-out) the loop must report
// 0 allocs/op.
func BenchmarkPredictInto(b *testing.B) {
	ds := benchData(512)
	net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
	classes := net.OutputDim()
	out := make([][]float32, ds.Len())
	flat := make([]float32, ds.Len()*classes)
	for i := range out {
		out[i] = flat[i*classes : (i+1)*classes]
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Warm the pooled arenas to their high-water mark.
			if err := PredictIntoCtx(ctx, net, ds.Samples, benchSeqLen, benchEmbDim, workers, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := PredictIntoCtx(ctx, net, ds.Samples, benchSeqLen, benchEmbDim, workers, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForward times each layer of the CATI stage CNN in isolation at
// inference batch size, so kernel regressions are attributable to a layer.
func BenchmarkForward(b *testing.B) {
	const batch = 256
	net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
	x := NewTensor(batch, benchSeqLen, benchEmbDim)
	r := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = r.Float32()*2 - 1
	}
	cur := x
	for li, layer := range net.Layers {
		name := fmt.Sprintf("%02d_%T", li, layer)
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[:3] + name[i+1:]
		}
		in := cur
		cur = layer.Forward(in, false)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				layer.Forward(in, false)
			}
		})
	}
}
