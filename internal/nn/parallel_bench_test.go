package nn

import (
	"fmt"
	"testing"
)

// benchNet/benchData size the parallel benchmarks like one CATI stage at
// bench scale: 21×96 inputs through the paper's 32-64-1024 architecture.
const (
	benchSeqLen = 21
	benchEmbDim = 96
)

func benchData(n int) *Dataset { return parallelDataset(n, benchSeqLen, benchEmbDim) }

// BenchmarkTrainClassifierParallel compares the sharded trainer across
// worker counts; at 4+ workers on a multicore host it must beat the serial
// path by ≥2x.
func BenchmarkTrainClassifierParallel(b *testing.B) {
	ds := benchData(512)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := TrainConfig{Epochs: 1, Batch: 64, LR: 1e-3, Seed: 5, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
				if err := TrainClassifier(net, ds, 2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictParallel measures chunked inference across worker
// counts on one shared network.
func BenchmarkPredictParallel(b *testing.B) {
	ds := benchData(2048)
	net := NewCNN(benchSeqLen, benchEmbDim, 32, 64, 1024, 2, 9)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := PredictN(net, ds.Samples, benchSeqLen, benchEmbDim, workers); len(out) != ds.Len() {
					b.Fatal("short output")
				}
			}
		})
	}
}
