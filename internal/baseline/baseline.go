// Package baseline implements the comparison systems CATI is evaluated
// against (§VII-B, §IX):
//
//   - A DEBIN-flavoured dependency-feature classifier: like the prior
//     probabilistic approaches (DEBIN's CRF, TypeMiner's n-grams), it sees
//     only the instructions that *operate the variable* — its dependency
//     chain — with no surrounding context. Implemented as multinomial
//     naive Bayes over the variable's generalized target-instruction
//     tokens; the paper's claim is precisely that context features beat
//     such dependency-only features on orphan variables and uncertain
//     samples.
//
//   - A rule-based classifier in the spirit of IDA Pro / TIE / REWARDS
//     heuristics: hand-written opcode/width rules.
package baseline

import (
	"math"

	"repro/internal/ctypes"
	"repro/internal/vuc"
)

// VarSample is one variable for baseline training/evaluation: its target
// instructions (dependency chain) and its ground-truth class.
type VarSample struct {
	Centers []vuc.InstTok
	Class   ctypes.Class
}

// featuresOf extracts the dependency-feature bag of a variable: individual
// tokens plus the joined instruction shape.
func featuresOf(centers []vuc.InstTok) []string {
	out := make([]string, 0, len(centers)*4)
	for _, it := range centers {
		out = append(out, "m:"+it[0], "a:"+it[1], "b:"+it[2],
			"i:"+it[0]+"|"+it[1]+"|"+it[2])
	}
	return out
}

// NaiveBayes is a multinomial naive Bayes classifier over dependency
// features.
type NaiveBayes struct {
	classes    []ctypes.Class
	classLogP  map[ctypes.Class]float64
	featLogP   map[ctypes.Class]map[string]float64
	featVocab  map[string]bool
	defaultLog map[ctypes.Class]float64
}

// TrainNB fits the classifier with Laplace smoothing.
func TrainNB(vars []VarSample) *NaiveBayes {
	classCount := make(map[ctypes.Class]int)
	featCount := make(map[ctypes.Class]map[string]int)
	classFeatTotal := make(map[ctypes.Class]int)
	vocab := make(map[string]bool)

	for _, v := range vars {
		classCount[v.Class]++
		if featCount[v.Class] == nil {
			featCount[v.Class] = make(map[string]int)
		}
		for _, f := range featuresOf(v.Centers) {
			featCount[v.Class][f]++
			classFeatTotal[v.Class]++
			vocab[f] = true
		}
	}

	nb := &NaiveBayes{
		classLogP:  make(map[ctypes.Class]float64),
		featLogP:   make(map[ctypes.Class]map[string]float64),
		featVocab:  vocab,
		defaultLog: make(map[ctypes.Class]float64),
	}
	total := 0
	for _, n := range classCount {
		total += n
	}
	v := float64(len(vocab)) + 1
	for cl, n := range classCount {
		nb.classes = append(nb.classes, cl)
		nb.classLogP[cl] = math.Log(float64(n) / float64(total))
		nb.featLogP[cl] = make(map[string]float64, len(featCount[cl]))
		denom := float64(classFeatTotal[cl]) + v
		for f, c := range featCount[cl] {
			nb.featLogP[cl][f] = math.Log((float64(c) + 1) / denom)
		}
		nb.defaultLog[cl] = math.Log(1 / denom)
	}
	return nb
}

// Predict classifies a variable from its dependency chain alone.
func (nb *NaiveBayes) Predict(centers []vuc.InstTok) ctypes.Class {
	if len(nb.classes) == 0 {
		return ctypes.ClassInt
	}
	feats := featuresOf(centers)
	best := nb.classes[0]
	bestScore := math.Inf(-1)
	for _, cl := range nb.classes {
		score := nb.classLogP[cl]
		fl := nb.featLogP[cl]
		for _, f := range feats {
			if !nb.featVocab[f] {
				continue // unseen feature carries no information
			}
			if lp, ok := fl[f]; ok {
				score += lp
			} else {
				score += nb.defaultLog[cl]
			}
		}
		if score > bestScore {
			bestScore = score
			best = cl
		}
	}
	return best
}

// RulePredict classifies a variable with hand-written opcode/width
// heuristics in the spirit of the rule-based prior work. slotSize is the
// recovered slot size in bytes (0 when unknown).
func RulePredict(centers []vuc.InstTok, slotSize int) ctypes.Class {
	var (
		sawX87Ten, sawDoubleOp, sawFloatOp      bool
		sawSet, sawMovzb, sawMovsb              bool
		sawW2Signed, sawW2Unsigned              bool
		sawLea                                  bool
		width1, width2, width4, width8, width16 int
	)
	for _, it := range centers {
		m := it[0]
		switch {
		case m == "fldt" || m == "fstpt":
			sawX87Ten = true
		case m == "movsd" || m == "addsd" || m == "mulsd" || m == "subsd" ||
			m == "divsd" || m == "cvtsi2sd" || m == "cvtsi2sdl" || m == "cvtsi2sdq" ||
			m == "fldl" || m == "fstpl":
			sawDoubleOp = true
		case m == "movss" || m == "addss" || m == "mulss" || m == "subss" ||
			m == "divss" || m == "cvtsi2ss" || m == "cvtsi2ssl" || m == "flds" || m == "fstps":
			sawFloatOp = true
		case len(m) > 3 && m[:3] == "set":
			sawSet = true
		case m == "movzbl" || m == "movzbq" || m == "movzbw":
			sawMovzb = true
		case m == "movsbl" || m == "movsbq" || m == "movsbw":
			sawMovsb = true
		case m == "movzwl" || m == "movzwq":
			sawW2Unsigned = true
		case m == "movswl" || m == "movswq":
			sawW2Signed = true
		case m == "lea":
			sawLea = true
		}
		switch lastRune(m) {
		case 'b':
			width1++
		case 'w':
			width2++
		case 'l':
			width4++
		case 'q':
			width8++
		}
	}
	if slotSize >= 16 {
		width16++
	}

	switch {
	case sawX87Ten:
		return ctypes.ClassLongDouble
	case sawDoubleOp:
		return ctypes.ClassDouble
	case sawFloatOp:
		return ctypes.ClassFloat
	case sawSet && (slotSize <= 1 || width1 > 0):
		return ctypes.ClassBool
	case sawMovzb:
		return ctypes.ClassUChar
	case sawMovsb:
		return ctypes.ClassChar
	case sawW2Unsigned:
		return ctypes.ClassUShort
	case sawW2Signed:
		return ctypes.ClassShort
	case slotSize > 8 || (sawLea && slotSize > 8):
		return ctypes.ClassStruct
	case width1 > 0 && slotSize <= 1:
		return ctypes.ClassChar
	case width2 > 0 && slotSize <= 2:
		return ctypes.ClassShort
	case width8 > 0 || slotSize == 8:
		// Eight-byte slots are ambiguous between long and pointers; rules
		// guess the most common pointer kind, as IDA's "qword" typing
		// leans on usage it cannot always see.
		if sawLea {
			return ctypes.ClassPtrStruct
		}
		return ctypes.ClassLong
	default:
		return ctypes.ClassInt
	}
}

func lastRune(s string) byte {
	if s == "" {
		return 0
	}
	return s[len(s)-1]
}
