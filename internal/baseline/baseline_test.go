package baseline

import (
	"testing"

	"repro/internal/ctypes"
	"repro/internal/vuc"
)

func it(m, a, b string) vuc.InstTok { return vuc.InstTok{m, a, b} }

func TestNaiveBayesSeparatesClearSignals(t *testing.T) {
	var vars []VarSample
	for i := 0; i < 50; i++ {
		vars = append(vars,
			VarSample{Class: ctypes.ClassDouble, Centers: []vuc.InstTok{
				it("movsd", "%xmm0", "-0xIMM(%rbp)"),
				it("movsd", "-0xIMM(%rbp)", "%xmm1"),
			}},
			VarSample{Class: ctypes.ClassInt, Centers: []vuc.InstTok{
				it("mov", "$0xIMM", "-0xIMM(%rbp)"),
				it("mov", "-0xIMM(%rbp)", "%eax"),
			}},
			VarSample{Class: ctypes.ClassChar, Centers: []vuc.InstTok{
				it("movsbl", "-0xIMM(%rbp)", "%eax"),
			}},
		)
	}
	nb := TrainNB(vars)
	if got := nb.Predict([]vuc.InstTok{it("movsd", "%xmm0", "-0xIMM(%rbp)")}); got != ctypes.ClassDouble {
		t.Errorf("double chain = %s", got)
	}
	if got := nb.Predict([]vuc.InstTok{it("movsbl", "-0xIMM(%rbp)", "%eax")}); got != ctypes.ClassChar {
		t.Errorf("char chain = %s", got)
	}
	if got := nb.Predict([]vuc.InstTok{it("mov", "-0xIMM(%rbp)", "%eax")}); got != ctypes.ClassInt {
		t.Errorf("int chain = %s", got)
	}
}

func TestNaiveBayesPriorFallback(t *testing.T) {
	vars := []VarSample{
		{Class: ctypes.ClassInt, Centers: []vuc.InstTok{it("mov", "$0xIMM", "-0xIMM(%rbp)")}},
		{Class: ctypes.ClassInt, Centers: []vuc.InstTok{it("mov", "$0xIMM", "-0xIMM(%rbp)")}},
		{Class: ctypes.ClassBool, Centers: []vuc.InstTok{it("sete", "-0xIMM(%rbp)", "BLANK")}},
	}
	nb := TrainNB(vars)
	// Fully unseen features → prior wins → int (majority).
	if got := nb.Predict([]vuc.InstTok{it("xyzzy", "q", "r")}); got != ctypes.ClassInt {
		t.Errorf("prior fallback = %s", got)
	}
}

func TestNaiveBayesEmpty(t *testing.T) {
	nb := TrainNB(nil)
	if got := nb.Predict([]vuc.InstTok{it("mov", "a", "b")}); got != ctypes.ClassInt {
		t.Errorf("empty model = %s", got)
	}
}

func TestRulePredict(t *testing.T) {
	tests := []struct {
		name    string
		centers []vuc.InstTok
		size    int
		want    ctypes.Class
	}{
		{"long double", []vuc.InstTok{it("fldt", "0xIMM(%rsp)", "BLANK")}, 16, ctypes.ClassLongDouble},
		{"double", []vuc.InstTok{it("movsd", "%xmm0", "-0xIMM(%rbp)")}, 8, ctypes.ClassDouble},
		{"float", []vuc.InstTok{it("movss", "%xmm0", "-0xIMM(%rbp)")}, 4, ctypes.ClassFloat},
		{"bool", []vuc.InstTok{it("sete", "%al", "BLANK"), it("movb", "%al", "-0xIMM(%rbp)")}, 1, ctypes.ClassBool},
		{"uchar", []vuc.InstTok{it("movzbl", "-0xIMM(%rbp)", "%eax")}, 1, ctypes.ClassUChar},
		{"char", []vuc.InstTok{it("movsbl", "-0xIMM(%rbp)", "%eax")}, 1, ctypes.ClassChar},
		{"ushort", []vuc.InstTok{it("movzwl", "-0xIMM(%rbp)", "%eax")}, 2, ctypes.ClassUShort},
		{"short", []vuc.InstTok{it("movswl", "-0xIMM(%rbp)", "%eax")}, 2, ctypes.ClassShort},
		{"struct", []vuc.InstTok{it("lea", "0xIMM(%rsp)", "%rax")}, 24, ctypes.ClassStruct},
		{"int default", []vuc.InstTok{it("mov", "$0xIMM", "-0xIMM(%rbp)")}, 4, ctypes.ClassInt},
		{"long for q", []vuc.InstTok{it("movq", "$0xIMM", "-0xIMM(%rbp)")}, 8, ctypes.ClassLong},
	}
	for _, tt := range tests {
		if got := RulePredict(tt.centers, tt.size); got != tt.want {
			t.Errorf("%s: RulePredict = %s, want %s", tt.name, got, tt.want)
		}
	}
}

func TestRulePriority(t *testing.T) {
	// Float evidence dominates width evidence.
	mixed := []vuc.InstTok{
		it("movq", "$0xIMM", "-0xIMM(%rbp)"),
		it("movsd", "%xmm0", "-0xIMM(%rbp)"),
	}
	if got := RulePredict(mixed, 8); got != ctypes.ClassDouble {
		t.Errorf("mixed = %s, want double", got)
	}
}
