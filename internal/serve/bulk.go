package serve

import (
	"context"
	"encoding/json"

	"repro/internal/core"
	"repro/internal/elfx"
)

// bulkInfer is the serve daemon's bulkq.InferFunc: one binary through
// the same substrate as /v1/infer — result-cache probe first, then
// core.InferBatchOpts with the configured per-binary timeout/retry
// fault isolation, then a cache fill so later interactive requests for
// the same image hit warm. Bulk work bypasses the micro-batcher and
// admission control on purpose: the bulkq worker budget (plus its Yield
// hook watching the admission queue) is the bulk path's own, stricter
// admission, and batching across a corpus already happens at the job
// level.
func (s *Server) bulkInfer(ctx context.Context, image []byte) (json.RawMessage, string, int, error) {
	active := s.registry.Active()
	key := imageKey(image, active.Fingerprint)
	if vars, ok := s.cache.get(key); ok {
		return marshalVarRecords(vars), active.Fingerprint, 0, nil
	}
	bin, err := elfx.Read(image)
	if err != nil {
		return nil, active.Fingerprint, 1, err
	}
	results, err := active.CATI.InferBatchOpts(ctx, []*elfx.Binary{bin}, core.BatchOptions{
		Timeout: s.cfg.BinaryTimeout,
		Retries: s.cfg.Retries,
	})
	if err != nil {
		return nil, active.Fingerprint, 1, err
	}
	res := results[0]
	if res.Err != nil {
		return nil, active.Fingerprint, res.Attempts, res.Err
	}
	s.cache.put(key, res.Vars)
	return marshalVarRecords(res.Vars), active.Fingerprint, res.Attempts, nil
}

// toVarRecords renders inferred variables in the wire schema.
func toVarRecords(vars []core.InferredVar) []VarRecord {
	recs := make([]VarRecord, len(vars))
	for i, v := range vars {
		recs[i] = VarRecord{
			FuncLow: v.FuncLow,
			Slot:    v.Slot,
			Global:  v.Global,
			Size:    v.Size,
			NumVUCs: v.NumVUCs,
			Class:   v.Class.String(),
		}
	}
	return recs
}

// marshalVarRecords is toVarRecords as raw JSON — the form bulkq stores
// in its journal and streams in results lines.
func marshalVarRecords(vars []core.InferredVar) json.RawMessage {
	raw, err := json.Marshal(toVarRecords(vars))
	if err != nil {
		// []VarRecord cannot fail to marshal; keep the signature honest.
		return json.RawMessage("[]")
	}
	return raw
}
