package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Micro-batching telemetry: the batch-size histogram is the tuning signal
// for -max-batch/-batch-linger (a p50 of 1 under load means linger is too
// short to coalesce anything).
var (
	mBatches = telemetry.Default().Counter("cati_serve_batches_total",
		"Micro-batches dispatched to the inference core.")
	mBatchSize = telemetry.Default().Histogram("cati_serve_batch_size",
		"Requests coalesced per dispatched micro-batch.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
)

// inferRequest is one admitted request waiting for inference: the parsed
// binary in, exactly one inferResult out on done. ctx carries the
// request's trace span (the handler's "serve.batch" span); the batcher
// stamps dispatch events on it and hands it to the core as this binary's
// context, so a batch shared by several requests still produces one span
// tree per request. ctx is for tracing only — batch cancellation follows
// the collector's run context, never an individual member's.
type inferRequest struct {
	ctx  context.Context
	bin  *elfx.Binary
	done chan inferResult // buffered 1: a departed client never blocks a batch
}

// inferResult is one request's outcome plus the model snapshot that
// actually ran it (which, across a hot-reload, can be newer than the one
// active when the request arrived).
type inferResult struct {
	vars     []core.InferredVar
	err      error
	attempts int
	model    *Model
}

// batcher coalesces concurrent requests into core.InferBatchOpts calls.
// Dynamic micro-batching keeps the worker pool saturated — one batch of N
// binaries fans out over all cores, where N sequential single-binary
// calls would repeatedly ramp the pool up and down — and rides on the
// batch API's per-binary fault isolation: a poisoned ELF in a batch
// becomes that request's error record while its batchmates complete.
//
// The collector takes the first waiting request, then lingers up to
// cfg.Linger (or until cfg.MaxBatch requests are in hand) before
// dispatching, so batches form under concurrency without adding more than
// the linger to a lone request's latency. Each batch runs on its own
// goroutine — batching bounds per-call coalescing, admission bounds total
// concurrency.
type batcher struct {
	in       chan *inferRequest
	maxBatch int
	linger   time.Duration
	opts     core.BatchOptions
	model    func() *Model
	// infer is the dispatch seam: production wires it to InferBatchOpts
	// on the snapshot's CATI; tests substitute blocking or counting fakes.
	// opts arrives per batch because BinContext (the per-binary trace
	// contexts) is built from that batch's members.
	infer func(ctx context.Context, m *Model, bins []*elfx.Binary, opts core.BatchOptions) ([]core.BinaryResult, error)
	wg    sync.WaitGroup
}

// newBatcher builds a batcher over the given model source. maxBatch < 1
// is treated as 1 (batching off: every request dispatches alone).
func newBatcher(maxBatch int, linger time.Duration, opts core.BatchOptions, model func() *Model) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &batcher{
		in:       make(chan *inferRequest),
		maxBatch: maxBatch,
		linger:   linger,
		opts:     opts,
		model:    model,
		infer: func(ctx context.Context, m *Model, bins []*elfx.Binary, opts core.BatchOptions) ([]core.BinaryResult, error) {
			return m.CATI.InferBatchOpts(ctx, bins, opts)
		},
	}
}

// submit hands a request to the collector, giving up when ctx (the
// request's own context) is cancelled first.
func (b *batcher) submit(ctx context.Context, req *inferRequest) error {
	select {
	case b.in <- req:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the collector loop: it blocks until ctx is cancelled and must
// run on its own goroutine. Cancel ctx only after the HTTP server has
// drained, so no handler is still waiting on a batch.
func (b *batcher) run(ctx context.Context) {
	defer b.wg.Wait() // let in-flight batches finish before run returns
	for {
		var first *inferRequest
		select {
		case <-ctx.Done():
			return
		case first = <-b.in:
		}
		batch := b.collect(ctx, first)
		// Snapshot the model at dispatch: every request in this batch runs
		// on (and reports) one consistent model, and a reload landing now
		// is seen by the next batch, not this one.
		m := b.model()
		mBatches.Inc()
		if mBatchSize.Enabled() {
			mBatchSize.Observe(float64(len(batch)))
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.runBatch(ctx, m, batch)
		}()
	}
}

// collect gathers up to maxBatch requests: the first is in hand, the rest
// arrive within the linger window.
func (b *batcher) collect(ctx context.Context, first *inferRequest) []*inferRequest {
	batch := []*inferRequest{first}
	if b.maxBatch == 1 {
		return batch
	}
	var timeout <-chan time.Time
	if b.linger > 0 {
		t := time.NewTimer(b.linger)
		defer t.Stop()
		timeout = t.C
	}
	for len(batch) < b.maxBatch {
		if timeout == nil {
			// No linger: take only what is already waiting.
			select {
			case req := <-b.in:
				batch = append(batch, req)
			default:
				return batch
			}
			continue
		}
		select {
		case req := <-b.in:
			batch = append(batch, req)
		case <-timeout:
			return batch
		case <-ctx.Done():
			return batch
		}
	}
	return batch
}

// ErrBatchPanic reports that the inference function panicked at the
// batch level — outside the per-binary containment core.InferBatchOpts
// provides. The batch's requests all fail with it (500), but the
// collector, the server and every other batch keep running.
var ErrBatchPanic = errors.New("serve: inference panicked")

// inferContained runs the dispatch seam with a batch-level panic domain.
// The production seam (core.InferBatchOpts) already contains per-binary
// panics, but the seam itself — or a bug around it — must not be able to
// take down the daemon: a long-lived service turns one poisoned batch
// into that batch's error records, never into a crash.
func (b *batcher) inferContained(ctx context.Context, m *Model, bins []*elfx.Binary, opts core.BatchOptions) (results []core.BinaryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			countBatchPanic()
			results, err = nil, fmt.Errorf("%w: %v", ErrBatchPanic, r)
		}
	}()
	return b.infer(ctx, m, bins, opts)
}

// countBatchPanic records one contained batch-level panic.
func countBatchPanic() {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_serve_batch_panics_total",
		"Batch-level inference panics contained by the batcher.").Inc()
}

// runBatch executes one batch and fans results back out. A batch-level
// error (a cancelled ctx, a wholesale pool failure, or a contained
// panic) is delivered to every member; otherwise each request gets
// its own BinaryResult — error records included — per the batch API's
// isolation contract.
func (b *batcher) runBatch(ctx context.Context, m *Model, batch []*inferRequest) {
	bins := make([]*elfx.Binary, len(batch))
	for i, req := range batch {
		bins[i] = req.bin
		// Stamp the coalescing outcome on each member's span: which batch
		// size this request ended up riding in, and at what position.
		trace.SpanFromContext(req.ctx).Event("batch-dispatch",
			trace.Int("batch_size", len(batch)), trace.Int("index", i))
	}
	opts := b.opts
	// Each binary runs under its own request's span (lifted onto the
	// batch context, so cancellation still follows the collector), which
	// is what routes the pipeline's stage spans — recover, extract, embed,
	// predict, vote — into the right request's trace.
	opts.BinContext = func(i int) context.Context {
		if span := trace.SpanFromContext(batch[i].ctx); span != nil {
			return trace.ContextWithSpan(ctx, span)
		}
		return ctx
	}
	results, err := b.inferContained(ctx, m, bins, opts)
	for i, req := range batch {
		res := inferResult{model: m}
		switch {
		case err != nil:
			res.err = err
		case i >= len(results):
			// A misbehaving infer fn returned fewer results than binaries;
			// fail the uncovered requests instead of indexing past the end.
			res.err = fmt.Errorf("%w: %d results for %d binaries", ErrBatchPanic, len(results), len(bins))
		default:
			res.vars = results[i].Vars
			res.err = results[i].Err
			res.attempts = results[i].Attempts
		}
		req.done <- res // buffered: never blocks
	}
}
