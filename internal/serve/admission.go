package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Admission telemetry: queue depth and in-flight level are gauges the
// overload behavior is tuned by; rejections are labeled by which bound
// fired.
var (
	mInFlight = telemetry.Default().Gauge("cati_serve_inflight",
		"Requests currently holding an execution slot.")
	mQueued = telemetry.Default().Gauge("cati_serve_queue_depth",
		"Requests admitted to the wait queue but not yet executing.")
	mQueueWaitServe = telemetry.Default().Histogram("cati_serve_queue_wait_seconds",
		"Wait between admission and acquiring an execution slot.",
		telemetry.QueueBuckets)
)

// Overload errors: both map to 429, distinguished in metrics and logs.
var (
	// ErrQueueFull reports that the wait queue was at capacity — the
	// request was rejected immediately without queueing.
	ErrQueueFull = errors.New("serve: overloaded: queue full")
	// ErrQueueTimeout reports that the request waited its full queue
	// deadline without an execution slot freeing up.
	ErrQueueTimeout = errors.New("serve: overloaded: queue deadline exceeded")
)

// admission bounds concurrent work: at most inflight requests execute at
// once, at most queue more wait (up to a deadline) for a slot, and
// everything beyond that is rejected instantly. Bounding both the level
// and the wait keeps tail latency flat under overload — the server sheds
// load with 429s instead of degrading every request — and keeps memory
// proportional to inflight+queue, not to offered load.
type admission struct {
	slots   chan struct{} // capacity: max in-flight
	waiters chan struct{} // capacity: max in-flight + max queued
	wait    time.Duration // max time in the queue
}

// newAdmission builds an admission controller. inflight < 1 is treated
// as 1; queue < 0 as 0; wait <= 0 means "don't wait at all" (a request
// either gets a free slot immediately or is rejected).
func newAdmission(inflight, queue int, wait time.Duration) *admission {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{
		slots:   make(chan struct{}, inflight),
		waiters: make(chan struct{}, inflight+queue),
		wait:    wait,
	}
}

// inflight reports how many requests currently hold an execution slot.
func (a *admission) inflight() int { return len(a.slots) }

// queued reports how many admitted requests are waiting for an execution
// slot. Both reads are channel-length snapshots — racy by a request or
// two under churn, which is fine for readiness gating and Retry-After
// estimation (their only consumers).
func (a *admission) queued() int {
	if q := len(a.waiters) - len(a.slots); q > 0 {
		return q
	}
	return 0
}

// acquire admits one request: it returns a release func once the request
// holds an execution slot, or ErrQueueFull/ErrQueueTimeout/ctx.Err() when
// the request must be shed. Always call release exactly once on success.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// Stage 1: claim a waiter token or reject immediately. This is the
	// hard bound on requests the server holds at all.
	select {
	case a.waiters <- struct{}{}:
	default:
		return nil, ErrQueueFull
	}
	mQueued.Inc()
	start := time.Time{}
	if mQueueWaitServe.Enabled() {
		start = time.Now()
	}
	leaveQueue := func() {
		mQueued.Dec()
		<-a.waiters
	}

	// Stage 2: wait (bounded) for an execution slot.
	var timeout <-chan time.Time
	if a.wait > 0 {
		t := time.NewTimer(a.wait)
		defer t.Stop()
		timeout = t.C
	} else {
		closed := make(chan time.Time)
		close(closed)
		timeout = closed
	}
	select {
	case a.slots <- struct{}{}:
	default:
		// No slot free right now; wait for one, the deadline, or the
		// caller giving up. The wait gets its own span — it is exactly
		// the "why was this request slow" answer under load.
		_, qspan := trace.Start(ctx, "serve.queue-wait")
		select {
		case a.slots <- struct{}{}:
			qspan.End()
		case <-timeout:
			qspan.SetError(ErrQueueTimeout)
			qspan.End()
			leaveQueue()
			return nil, ErrQueueTimeout
		case <-ctx.Done():
			qspan.SetError(ctx.Err())
			qspan.End()
			leaveQueue()
			return nil, ctx.Err()
		}
	}
	if !start.IsZero() {
		mQueueWaitServe.ObserveSince(start)
	}
	mQueued.Dec()
	mInFlight.Inc()
	return func() {
		mInFlight.Dec()
		<-a.slots
		<-a.waiters
	}, nil
}
