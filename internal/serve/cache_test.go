package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(i int, model string) cacheKey { return imageKey([]byte{byte(i)}, model) }
	v := func(i int) []core.InferredVar { return []core.InferredVar{{FuncLow: uint64(i)}} }

	c.put(k(1, "m"), v(1))
	c.put(k(2, "m"), v(2))
	if got, ok := c.get(k(1, "m")); !ok || got[0].FuncLow != 1 {
		t.Fatalf("get(1) = %v %v", got, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2.
	c.put(k(3, "m"), v(3))
	if _, ok := c.get(k(2, "m")); ok {
		t.Fatal("LRU kept the stale entry")
	}
	if _, ok := c.get(k(1, "m")); !ok {
		t.Fatal("LRU evicted the recently used entry")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// The model fingerprint is part of the address: same image, other
	// model, distinct entry.
	if _, ok := c.get(k(1, "other")); ok {
		t.Fatal("cache crossed model fingerprints")
	}
}

func TestResultCacheDisabled(t *testing.T) {
	var c *resultCache // CacheSize <= 0 path
	c.put(imageKey([]byte("x"), "m"), nil)
	if _, ok := c.get(imageKey([]byte("x"), "m")); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if newResultCache(0) != nil || newResultCache(-5) != nil {
		t.Fatal("non-positive capacity should disable the cache")
	}
}

// TestResultCacheChurn hammers a tiny cache with concurrent get/put/len
// traffic whose working set is much larger than the capacity, so every
// put races an eviction. Run under -race this exercises the map↔list
// consistency; the invariants checked are the capacity bound and that a
// hit always returns exactly the value stored under that key.
func TestResultCacheChurn(t *testing.T) {
	const (
		capacity = 8
		keys     = 64
		workers  = 12
		iters    = 500
	)
	c := newResultCache(capacity)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := (g*31 + i*7) % keys
				key := imageKey([]byte{byte(n)}, "m")
				switch i % 3 {
				case 0:
					// Value encodes its key: a hit returning anything else
					// means entries crossed wires during eviction churn.
					c.put(key, []core.InferredVar{{FuncLow: uint64(n)}})
				case 1:
					if vars, ok := c.get(key); ok && vars[0].FuncLow != uint64(n) {
						select {
						case errs <- fmt.Errorf("key %d returned value %d", n, vars[0].FuncLow):
						default:
						}
						return
					}
				default:
					if l := c.len(); l > capacity {
						select {
						case errs <- fmt.Errorf("cache grew past capacity: %d", l):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if l := c.len(); l > capacity {
		t.Fatalf("cache grew past capacity: %d", l)
	}
}

// TestResultCacheConcurrent exercises the lock under -race.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(32)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := imageKey([]byte(fmt.Sprintf("%d", i%50)), "m")
				if i%2 == 0 {
					c.put(key, []core.InferredVar{{FuncLow: uint64(i)}})
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.len() > 32 {
		t.Fatalf("cache grew past capacity: %d", c.len())
	}
}
