package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionBounds(t *testing.T) {
	a := newAdmission(2, 1, 50*time.Millisecond)
	ctx := context.Background()

	rel1, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Third acquire queues; it will time out unless a slot frees.
	type res struct {
		rel func()
		err error
	}
	third := make(chan res, 1)
	go func() {
		rel, err := a.acquire(ctx)
		third <- res{rel, err}
	}()
	// Wait for it to take the queue slot so the fourth sees a full house.
	deadline := time.Now().Add(2 * time.Second)
	for len(a.waiters) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("third acquire never queued (waiters %d)", len(a.waiters))
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := a.acquire(ctx); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth acquire = %v, want ErrQueueFull", err)
	}

	select {
	case r := <-third:
		if !errors.Is(r.err, ErrQueueTimeout) {
			t.Fatalf("queued acquire = %v, want ErrQueueTimeout", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never timed out")
	}

	// Releasing a slot lets a queued request through within its wait.
	ok := make(chan res, 1)
	go func() {
		rel, err := a.acquire(ctx)
		ok <- res{rel, err}
	}()
	time.Sleep(5 * time.Millisecond)
	rel1()
	select {
	case r := <-ok:
		if r.err != nil {
			t.Fatalf("acquire after release: %v", r.err)
		}
		r.rel()
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never got the released slot")
	}
	rel2()

	// Everything released: the controller is back to empty.
	if len(a.slots) != 0 || len(a.waiters) != 0 {
		t.Fatalf("leaked tokens: slots %d waiters %d", len(a.slots), len(a.waiters))
	}
}

func TestAdmissionCancelledWhileQueued(t *testing.T) {
	a := newAdmission(1, 4, 10*time.Second)
	rel, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(a.waiters) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	rel()
	if len(a.slots) != 0 || len(a.waiters) != 0 {
		t.Fatalf("leaked tokens: slots %d waiters %d", len(a.slots), len(a.waiters))
	}
}

// TestAdmissionConcurrent hammers acquire/release from many goroutines
// (run under -race) and verifies the in-flight bound was never exceeded.
func TestAdmissionConcurrent(t *testing.T) {
	const inflight = 3
	a := newAdmission(inflight, 64, time.Second)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rel, err := a.acquire(context.Background())
				if err != nil {
					continue // shed under pressure: allowed
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				cur--
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if peak > inflight {
		t.Fatalf("in-flight peak %d exceeded bound %d", peak, inflight)
	}
	if len(a.slots) != 0 || len(a.waiters) != 0 {
		t.Fatalf("leaked tokens: slots %d waiters %d", len(a.slots), len(a.waiters))
	}
}
