package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/elfx"
)

// TestReadyzGatesOnQueue: readyz answers 200 when idle and 503 once the
// admission queue reaches the watermark, while healthz stays 200
// throughout — the liveness/readiness distinction load balancers key on.
// /v1/models reports the same pair.
func TestReadyzGatesOnQueue(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		MaxBatch:  1, MaxInFlight: 1, MaxQueue: 2, ReadyWatermark: 1,
		QueueWait: 5 * time.Second, CacheSize: -1, WatchInterval: -1,
	})
	get := func(path string) int {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/v1/readyz"); code != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", code)
	}

	// Wedge the single execution slot, then queue one more request: queue
	// depth 1 == watermark → not ready.
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		entered <- struct{}{}
		<-gate
		return make([]core.BinaryResult, len(bins)), nil
	}
	defer close(gate)
	fire := func() {
		go func() {
			resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[0]))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	fire()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached inference")
	}
	fire()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if code := get("/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("queued-up readyz = %d, want 503", code)
	}
	if code := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while not ready = %d, want 200", code)
	}
	resp, err := http.Get("http://" + s.Addr + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var mr ModelsResponse
	err = json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !mr.Health.Live || mr.Health.Ready || mr.Health.Reason == "" {
		t.Fatalf("models health = %+v, want live, not ready, with reason", mr.Health)
	}
}

// TestRetryAfterDerived: the 429 hint scales with queue depth × observed
// latency instead of parroting the configured constant, and clamps to
// the configured ceiling.
func TestRetryAfterDerived(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		MaxBatch:  1, MaxInFlight: 1, MaxQueue: 2,
		QueueWait: 10 * time.Second, RetryAfter: time.Second, MaxRetryAfter: 7 * time.Second,
		CacheSize: -1, WatchInterval: -1,
	})
	// Seed the estimator deterministically: one observation IS the EWMA.
	s.observeLatency(2 * time.Second)

	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		entered <- struct{}{}
		<-gate
		return make([]core.BinaryResult, len(bins)), nil
	}
	defer close(gate)
	fire := func() {
		go func() {
			resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[0]))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	fire() // takes the slot
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached inference")
	}
	fire() // queue depth 1
	fire() // queue depth 2 (queue full)
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (depth %d)", s.adm.queued())
		}
		time.Sleep(time.Millisecond)
	}

	// Overflow request: (queued 2 + 1) × 2s / 1 lane = 6s expected drain.
	resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[1]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", resp.Header.Get("Retry-After"))
	}
	if got != 6 {
		t.Fatalf("Retry-After = %d, want 6 (3 ahead × 2s over 1 lane)", got)
	}

	// A much slower observed latency must clamp at MaxRetryAfter.
	s.observeLatency(100 * time.Second) // EWMA jumps to ~21.6s
	if got := s.retryAfterSeconds(); got != 7 {
		t.Fatalf("clamped Retry-After = %d, want 7 (MaxRetryAfter)", got)
	}
}

// TestRetryAfterFloor: before any latency observation the hint falls back
// to the configured minimum.
func TestRetryAfterFloor(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA), RetryAfter: 3 * time.Second,
		CacheSize: -1, WatchInterval: -1,
	})
	if got := s.retryAfterSeconds(); got != 3 {
		t.Fatalf("unseeded Retry-After = %d, want the 3s floor", got)
	}
}

// TestCacheFillEndpoint: after a computed request, GET /v1/cache/{sha}
// returns the identical result marked cached; unknown hashes 404 and
// malformed hashes 400. This is the contract the fleet router's peer
// cache fill rides on.
func TestCacheFillEndpoint(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{ModelPath: modelFile(t, fixA), CacheSize: 64, WatchInterval: -1})
	img := fixImages[3]

	resp, body := postInfer(t, s.Addr, img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer = %d: %s", resp.StatusCode, body)
	}
	var computed InferResponse
	if err := json.Unmarshal(body, &computed); err != nil {
		t.Fatal(err)
	}

	sum := sha256.Sum256(img)
	cresp, err := http.Get("http://" + s.Addr + "/v1/cache/" + hex.EncodeToString(sum[:]))
	if err != nil {
		t.Fatal(err)
	}
	cbody, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cache get = %d: %s", cresp.StatusCode, cbody)
	}
	var filled InferResponse
	if err := json.Unmarshal(cbody, &filled); err != nil {
		t.Fatal(err)
	}
	if !filled.Cached {
		t.Fatal("cache endpoint response not marked cached")
	}
	if filled.Model != computed.Model || !sameRecords(filled.Vars, computed.Vars) {
		t.Fatal("cache endpoint returned a different result than the computed one")
	}

	// Unknown (never submitted) image: 404, not an empty 200.
	other := sha256.Sum256([]byte("never submitted"))
	nresp, err := http.Get("http://" + s.Addr + "/v1/cache/" + hex.EncodeToString(other[:]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, nresp.Body)
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sha = %d, want 404", nresp.StatusCode)
	}

	// Malformed hash: 400.
	bresp, err := http.Get("http://" + s.Addr + "/v1/cache/nothex")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sha = %d, want 400", bresp.StatusCode)
	}
}

// TestBatcherPanicContained: an inference function that panics at the
// batch level (outside core's per-binary containment) yields 500s for
// the batch's requests — and the daemon keeps serving; the next request
// on a healed infer fn succeeds.
func TestBatcherPanicContained(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		CacheSize: -1, MaxBatch: 1, WatchInterval: -1,
	})
	real := s.batch.infer
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		panic("synthetic batch-level failure")
	}

	resp, body := postInfer(t, s.Addr, fixImages[0])
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked batch = %d, want 500: %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("500 body not an ErrorResponse: %v %s", err, body)
	}

	// The collector and admission slots survived: a healed infer serves.
	s.batch.infer = real
	resp, body = postInfer(t, s.Addr, fixImages[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestBatcherShortResults: an infer fn returning fewer results than
// binaries fails the uncovered requests instead of panicking the batch
// goroutine on an out-of-range index.
func TestBatcherShortResults(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		CacheSize: -1, MaxBatch: 1, WatchInterval: -1,
	})
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		return nil, nil // claims success, covers nothing
	}
	resp, body := postInfer(t, s.Addr, fixImages[0])
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("short-result batch = %d, want 500: %s", resp.StatusCode, body)
	}
}

// TestErrBatchPanicIs pins the sentinel wrapping so the router can rely
// on errors.Is across the wire boundary being encoded as a 500.
func TestErrBatchPanicIs(t *testing.T) {
	b := newBatcher(1, 0, core.BatchOptions{}, func() *Model { return nil })
	b.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		panic("boom")
	}
	_, err := b.inferContained(context.Background(), nil, nil, core.BatchOptions{})
	if !errors.Is(err, ErrBatchPanic) {
		t.Fatalf("want ErrBatchPanic, got %v", err)
	}
}
