// Package serve is CATI's long-lived inference service: an HTTP daemon
// that loads a trained model artifact once and turns the one-shot `cati
// infer` pipeline into a shared, always-warm backend for decompiler
// integrations and bulk analysis.
//
//	POST /v1/infer        raw ELF bytes in → per-variable JSON types out
//	GET  /v1/models       active model fingerprint, path, load time, health
//	GET  /v1/healthz      liveness ("ok"; never blocked by inference load)
//	GET  /v1/readyz       readiness (model loaded + admission queue below
//	                      watermark); load balancers route on this, not on
//	                      liveness
//	GET  /v1/cache/{sha}  peer cache fill: the cached result for an image
//	                      SHA-256 under the active model, or 404 — lets a
//	                      fleet router serve another shard's warm cache
//	                      without recomputing
//
// Four mechanisms make it production-shaped:
//
//   - a model registry (registry.go) holding the active *core.CATI behind
//     an atomic pointer, hot-reloaded on SIGHUP or artifact-file change:
//     in-flight requests finish on the old snapshot, new requests see the
//     new one, and every response carries the model fingerprint;
//   - admission control (admission.go): a bounded in-flight limit and a
//     bounded, deadline-capped wait queue; everything beyond is answered
//     429 + Retry-After immediately instead of degrading every request;
//   - dynamic micro-batching (batcher.go): concurrent requests coalesce
//     (up to -max-batch, waiting at most -batch-linger) into one
//     core.InferBatchOpts call, keeping the worker pool saturated while
//     per-binary error domains keep a poisoned ELF from failing its
//     batchmates;
//   - a content-addressed LRU result cache (cache.go) keyed by (SHA-256
//     of image, model fingerprint), so re-submitted binaries — the common
//     case in real workloads — skip inference entirely.
//
// Shutdown is a graceful drain: stop accepting, finish in-flight
// requests (bounded by the drain deadline), then stop the batcher and
// watcher. Everything is instrumented through internal/telemetry.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/bulkq"
	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Request telemetry.
var (
	mReqSeconds = telemetry.Default().Histogram("cati_serve_request_seconds",
		"End-to-end /v1/infer latency, admission wait included.",
		telemetry.StageBuckets)
)

// countRequest records one finished /v1/infer request by status code.
func countRequest(code int) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_serve_requests_total",
		"Inference requests served, by HTTP status code.",
		"code", strconv.Itoa(code)).Inc()
}

// countRejection records one shed request by which bound fired.
func countRejection(reason string) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_serve_rejected_total",
		"Inference requests shed by admission control, by reason.",
		"reason", reason).Inc()
}

// Config tunes the service; zero values take the documented defaults.
type Config struct {
	// ModelPath is the trained artifact to load and watch. Required.
	ModelPath string
	// Workers is the per-model inference worker count (0: CATI_WORKERS
	// env, else GOMAXPROCS), exactly like `cati infer -workers`.
	Workers int
	// MaxInFlight bounds concurrently executing requests (default 2×
	// resolved batch size, minimum 4).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxInFlight (default: MaxInFlight). Arrivals beyond in-flight +
	// queue are rejected with 429 immediately.
	MaxQueue int
	// QueueWait caps a queued request's wait for a slot (default 1s);
	// expiry answers 429.
	QueueWait time.Duration
	// RetryAfter is the minimum Retry-After hint on 429 responses
	// (default 1s). The emitted hint is derived from live load — current
	// queue depth × a recent per-request latency average, spread over the
	// in-flight lanes — clamped to [RetryAfter, MaxRetryAfter], so shed
	// clients back off in proportion to how far behind the server is
	// instead of hammering a fixed cadence.
	RetryAfter time.Duration
	// MaxRetryAfter caps the derived Retry-After hint (default 30s).
	MaxRetryAfter time.Duration
	// ReadyWatermark is the /v1/readyz gate: the service reports
	// not-ready once the admission wait queue holds this many requests
	// (default MaxQueue — not ready exactly when new arrivals start being
	// shed; minimum 1).
	ReadyWatermark int
	// MaxBatch is the micro-batch size cap (default 8; 1 disables
	// batching).
	MaxBatch int
	// Linger is how long the batcher waits for a batch to fill after its
	// first request (default 2ms; 0 dispatches whatever is instantly
	// available).
	Linger time.Duration
	// CacheSize is the result cache's entry cap (default 1024; negative
	// disables caching).
	CacheSize int
	// BinaryTimeout/Retries are the per-binary fault-isolation knobs
	// passed to core.InferBatchOpts (see core.BatchOptions).
	BinaryTimeout time.Duration
	Retries       int
	// MaxBody caps an uploaded image's size in bytes (default 64 MiB).
	MaxBody int64
	// BulkDir, when set, enables the durable bulk-analysis queue
	// (internal/bulkq) and mounts the /v1/bulk API: the directory holds
	// the content-addressed spool and the WAL journal, and a restart
	// against the same directory resumes unfinished jobs. Empty disables
	// the bulk endpoints entirely.
	BulkDir string
	// BulkWorkers is the bulk drain concurrency (default 2). Bulk workers
	// yield to interactive traffic whenever the admission queue is
	// non-empty.
	BulkWorkers int
	// MaxBulkBody caps one /v1/bulk archive upload (default 512 MiB).
	MaxBulkBody int64
	// BulkMaxEntries / BulkMaxEntrySize bound one bulk archive (defaults
	// 1024 entries, 64 MiB per entry).
	BulkMaxEntries   int
	BulkMaxEntrySize int64
	// WatchInterval is how often the artifact file is polled for changes
	// (default 2s; negative disables watching — reloads then happen only
	// via Reload, e.g. on SIGHUP).
	WatchInterval time.Duration
	// Log receives the service's structured diagnostics (default
	// slog.Default()).
	Log *slog.Logger
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * c.MaxBatch
		if c.MaxInFlight < 4 {
			c.MaxInFlight = 4
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.ReadyWatermark == 0 {
		c.ReadyWatermark = c.MaxQueue
	}
	if c.ReadyWatermark < 1 {
		c.ReadyWatermark = 1
	}
	if c.Linger == 0 {
		c.Linger = 2 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.WatchInterval == 0 {
		c.WatchInterval = 2 * time.Second
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// VarRecord is one inferred variable in an InferResponse — the same
// per-variable schema `cati infer -json` emits (minus the file name,
// which an uploaded image does not have).
type VarRecord struct {
	FuncLow uint64 `json:"func_low"`
	Slot    int32  `json:"slot"`
	Global  bool   `json:"global"`
	Size    int    `json:"size"`
	NumVUCs int    `json:"num_vucs"`
	Class   string `json:"class"`
}

// InferResponse is the /v1/infer success body.
type InferResponse struct {
	// Model is the fingerprint of the model that produced Vars (from the
	// cache, the model that originally computed the entry).
	Model string `json:"model"`
	// Cached reports a result-cache hit (no inference ran).
	Cached bool `json:"cached"`
	// NumVars is len(Vars), for cheap client-side sanity checks.
	NumVars int `json:"num_vars"`
	// Vars are the inferred variables, ordered by function and slot.
	Vars []VarRecord `json:"vars"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Model is set when a specific model attempted the inference.
	Model string `json:"model,omitempty"`
	// Attempts is how many times the binary ran (retries included).
	Attempts int `json:"attempts,omitempty"`
}

// ModelInfo describes the active model in a ModelsResponse.
type ModelInfo struct {
	Fingerprint string `json:"fingerprint"`
	// Arch is the instruction set the model was trained on; uploads for
	// another ISA fail per-binary with an arch-mismatch error.
	Arch     string    `json:"arch"`
	Path     string    `json:"path"`
	LoadedAt time.Time `json:"loaded_at"`
	Reloads  uint64    `json:"reloads"`
}

// HealthInfo mirrors the two probe endpoints in /v1/models: Live is what
// GET /v1/healthz answers (always true when the handler runs at all) and
// Ready is what GET /v1/readyz answers, with the gating reason when not.
type HealthInfo struct {
	Live   bool   `json:"live"`
	Ready  bool   `json:"ready"`
	Reason string `json:"reason,omitempty"`
}

// ModelsResponse is the /v1/models body.
type ModelsResponse struct {
	Active ModelInfo  `json:"active"`
	Health HealthInfo `json:"health"`
}

// Server is a running (or startable) inference service.
type Server struct {
	cfg      Config
	registry *Registry
	batch    *batcher
	adm      *admission
	cache    *resultCache
	bulk     *bulkq.Manager

	httpSrv *http.Server
	lis     net.Listener
	// Addr is the bound listen address (useful with ":0"). Set by Start.
	Addr string

	// latEWMA is the Retry-After estimator's state: an exponentially
	// weighted moving average of computed (non-cached) request latency,
	// stored as float64 seconds bits. Zero means "no observation yet".
	latEWMA atomic.Uint64

	// runCtx outlives every batch; cancelled only after the HTTP drain.
	runCtx    context.Context
	runCancel context.CancelFunc
	watchDone chan struct{}
	batchDone chan struct{}
	bulkDone  chan struct{}
}

// New builds a Server from cfg and loads the initial model; a missing or
// corrupt artifact fails here, before any port is bound.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ModelPath == "" {
		return nil, errors.New("serve: Config.ModelPath is required")
	}
	reg := NewRegistry(cfg.ModelPath, cfg.Workers, cfg.Log)
	if err := reg.Load(); err != nil {
		return nil, err
	}
	opts := core.BatchOptions{Timeout: cfg.BinaryTimeout, Retries: cfg.Retries}
	s := &Server{
		cfg:      cfg,
		registry: reg,
		batch:    newBatcher(cfg.MaxBatch, cfg.Linger, opts, reg.Active),
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		cache:    newResultCache(cfg.CacheSize),
	}
	mux := http.NewServeMux()
	if cfg.BulkDir != "" {
		mgr, err := bulkq.Open(bulkq.Config{
			Dir:          cfg.BulkDir,
			Workers:      cfg.BulkWorkers,
			MaxEntries:   cfg.BulkMaxEntries,
			MaxEntrySize: cfg.BulkMaxEntrySize,
			MaxBody:      cfg.MaxBulkBody,
			Infer:        s.bulkInfer,
			Yield:        func() bool { return s.adm.queued() > 0 },
			Log:          cfg.Log,
		})
		if err != nil {
			return nil, err
		}
		s.bulk = mgr
		mgr.Mount(mux)
	}
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/cache/{sha}", s.handleCacheGet)
	// Observability read side on the data port, so a fleet router (or a
	// scraper that only knows the serve address) can federate this
	// replica's metrics and traces without discovering the debug port.
	mux.Handle("GET /metrics", telemetry.Default())
	mux.Handle("GET /v1/trace/{id}", traceLookup(func(c *trace.Collector) http.Handler {
		return c.TraceHandler()
	}))
	mux.Handle("GET /debug/traces", traceLookup(func(c *trace.Collector) http.Handler {
		return c.RecentHandler()
	}))
	s.httpSrv = &http.Server{Handler: mux}
	return s, nil
}

// Registry exposes the model registry (for SIGHUP wiring and tests).
func (s *Server) Registry() *Registry { return s.registry }

// Bulk exposes the bulk-queue manager (nil when BulkDir is unset) — the
// fleet status page and tests read its Summary.
func (s *Server) Bulk() *bulkq.Manager { return s.bulk }

// Start binds addr and serves until Shutdown. The listener is bound
// synchronously — a bad address fails here — and serving, the batch
// collector, and the artifact watcher each run on their own goroutine.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.lis = lis
	s.Addr = lis.Addr().String()
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.batchDone = make(chan struct{})
	go func() {
		defer close(s.batchDone)
		s.batch.run(s.runCtx)
	}()
	s.watchDone = make(chan struct{})
	go func() {
		defer close(s.watchDone)
		s.registry.Watch(s.runCtx, s.cfg.WatchInterval)
	}()
	if s.bulk != nil {
		s.bulkDone = make(chan struct{})
		go func() {
			defer close(s.bulkDone)
			s.bulk.Run(s.runCtx)
		}()
	}
	go func() { _ = s.httpSrv.Serve(lis) }()
	s.cfg.Log.Info("catiserve listening", "addr", s.Addr,
		"model", s.registry.Active().Fingerprint,
		"max_inflight", s.cfg.MaxInFlight, "max_queue", s.cfg.MaxQueue,
		"max_batch", s.cfg.MaxBatch, "linger", s.cfg.Linger,
		"cache", s.cfg.CacheSize)
	return nil
}

// Shutdown drains gracefully: stop accepting, wait (up to ctx's deadline)
// for in-flight requests — and the batches they ride in — to finish, then
// stop the collector and watcher. Safe to call once after Start.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	// Handlers have returned (or the deadline passed): now nothing new
	// can enter the batcher, so cancelling the run context only stops the
	// collector loop and any straggling batches.
	if s.runCancel != nil {
		s.runCancel()
		<-s.batchDone
		<-s.watchDone
		if s.bulkDone != nil {
			<-s.bulkDone
		}
	}
	if s.bulk != nil {
		_ = s.bulk.Close()
	}
	return err
}

// Close tears down without draining (tests, error paths).
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	if s.runCancel != nil {
		s.runCancel()
		<-s.batchDone
		<-s.watchDone
		if s.bulkDone != nil {
			<-s.bulkDone
		}
	}
	if s.bulk != nil {
		_ = s.bulk.Close()
	}
	return err
}

// handleHealthz answers liveness. It touches no lock, no queue and no
// model state, so it stays responsive under full overload — orchestrators
// must see "alive and shedding", not a timeout, when the service is busy.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ready is the /v1/readyz predicate: a model is loaded and the admission
// wait queue sits below the watermark. Distinct from liveness — a live
// process that is drowning should be pulled from rotation (readyz 503)
// without being restarted (healthz still ok).
func (s *Server) ready() (bool, string) {
	if s.registry.Active() == nil {
		return false, "no model loaded"
	}
	if q := s.adm.queued(); q >= s.cfg.ReadyWatermark {
		return false, fmt.Sprintf("admission queue at %d (watermark %d)", q, s.cfg.ReadyWatermark)
	}
	return true, ""
}

// handleReadyz answers readiness. Like healthz it touches no lock — two
// channel-length reads and an atomic pointer load — so it stays
// responsive exactly when its answer matters most (overload).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if ok, reason := s.ready(); !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, reason)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleCacheGet is the peer-fill read path: given an image's SHA-256 it
// returns the cached result under the active model, or 404. A fleet
// router (internal/fleet) uses it to pull a warm result from the shard
// that owns a key before making a cold replica recompute it. Lookup
// cost is one mutex'd map probe — no admission slot needed.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	_, span := trace.StartFromRequest(r, "serve.cache-get")
	defer span.End()
	raw, err := hex.DecodeString(r.PathValue("sha"))
	if err != nil || len(raw) != sha256.Size {
		span.SetAttr(trace.Bool("hit", false))
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "sha must be 64 hex chars (SHA-256 of the image)"})
		return
	}
	active := s.registry.Active()
	key := cacheKey{model: active.Fingerprint}
	copy(key.image[:], raw)
	vars, ok := s.cache.get(key)
	span.SetAttr(trace.Bool("hit", ok))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no cached result", Model: active.Fingerprint})
		return
	}
	writeInferResponse(w, active.Fingerprint, true, vars)
}

// observeLatency feeds one computed (non-cached) request's wall time into
// the Retry-After estimator: EWMA with α=0.2, lock-free via CAS.
func (s *Server) observeLatency(d time.Duration) {
	sec := d.Seconds()
	for {
		old := s.latEWMA.Load()
		next := sec
		if old != 0 {
			next = 0.2*sec + 0.8*math.Float64frombits(old)
		}
		if s.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds derives the 429 Retry-After hint from live load: the
// expected drain time of everything ahead of a returning client (queue
// depth × recent per-request latency, spread over the in-flight lanes),
// clamped to [RetryAfter, MaxRetryAfter]. Before any latency has been
// observed it falls back to the configured minimum.
func (s *Server) retryAfterSeconds() int {
	min := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	ew := math.Float64frombits(s.latEWMA.Load())
	if ew <= 0 {
		return min
	}
	secs := int(math.Ceil(float64(s.adm.queued()+1) * ew / float64(s.cfg.MaxInFlight)))
	if secs < min {
		secs = min
	}
	if max := int(math.Ceil(s.cfg.MaxRetryAfter.Seconds())); secs > max {
		secs = max
	}
	return secs
}

// handleModels reports the active model snapshot plus both health probes.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	m := s.registry.Active()
	ready, reason := s.ready()
	writeJSON(w, http.StatusOK, ModelsResponse{
		Active: ModelInfo{
			Fingerprint: m.Fingerprint,
			Arch:        m.CATI.Arch(),
			Path:        m.Path,
			LoadedAt:    m.LoadedAt,
			Reloads:     s.registry.Reloads(),
		},
		Health: HealthInfo{Live: true, Ready: ready, Reason: reason},
	})
}

// handleInfer is the data path: read → cache probe → admission → parse →
// batch → respond. The cache probe runs before admission so repeat
// traffic is served even when the compute side is saturated.
//
// The request runs under a "serve.request" span: continued from the
// X-Cati-Trace header when a fleet router forwarded the request, locally
// rooted when a client hit the replica directly. Each phase below becomes
// a child span, so /v1/trace/{id} explains where a slow request's time
// went — queued, parsing, or riding a batch.
func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := http.StatusOK
	ctx, span := trace.StartFromRequest(r, "serve.request", trace.String("path", "/v1/infer"))
	if !span.TraceID().IsZero() {
		w.Header().Set("X-Cati-Trace-Id", span.TraceID().String())
	}
	defer func() {
		span.SetAttr(trace.Int("code", code))
		span.End()
		countRequest(code)
		mReqSeconds.ObserveWithExemplar(time.Since(start).Seconds(), trace.IDFromContext(ctx))
	}()

	image, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			code = http.StatusRequestEntityTooLarge
			writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf("image exceeds %d-byte limit", s.cfg.MaxBody)})
			return
		}
		code = http.StatusBadRequest
		writeJSON(w, code, ErrorResponse{Error: "reading request body: " + err.Error()})
		return
	}
	if len(image) == 0 {
		code = http.StatusBadRequest
		writeJSON(w, code, ErrorResponse{Error: "empty request body (expected a raw ELF image)"})
		return
	}

	span.SetAttr(trace.Int("image_bytes", len(image)))

	// Cache probe against the currently active model.
	active := s.registry.Active()
	key := imageKey(image, active.Fingerprint)
	_, pspan := trace.Start(ctx, "serve.cache-probe")
	vars, hit := s.cache.get(key)
	pspan.SetAttr(trace.Bool("hit", hit))
	pspan.End()
	if hit {
		writeInferResponse(w, active.Fingerprint, true, vars)
		return
	}

	// Admission: hold a slot for the whole parse+infer, so the in-flight
	// bound covers everything that costs CPU or memory.
	actx, aspan := trace.Start(ctx, "serve.admission")
	release, err := s.adm.acquire(actx)
	aspan.SetError(err)
	aspan.End()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			countRejection("queue_full")
		case errors.Is(err, ErrQueueTimeout):
			countRejection("queue_timeout")
		default: // client went away while queued
			code = 499 // nginx convention: client closed request
			countRejection("client_gone")
			return
		}
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, code, ErrorResponse{Error: err.Error()})
		return
	}
	defer release()

	_, rspan := trace.Start(ctx, "serve.parse")
	bin, err := elfx.Read(image)
	rspan.SetError(err)
	rspan.End()
	if err != nil {
		code = http.StatusBadRequest
		writeJSON(w, code, ErrorResponse{Error: err.Error()})
		return
	}

	// The batch span covers submission, coalescing and the inference run;
	// its context rides inside the request record so the batcher can stamp
	// dispatch events on it and hand it to core as this binary's context.
	bctx, bspan := trace.Start(ctx, "serve.batch")
	defer bspan.End()
	req := &inferRequest{ctx: bctx, bin: bin, done: make(chan inferResult, 1)}
	if err := s.batch.submit(ctx, req); err != nil {
		bspan.SetError(err)
		code = 499
		countRejection("client_gone")
		return
	}
	var res inferResult
	select {
	case res = <-req.done:
		bspan.SetAttr(trace.Int("attempts", res.attempts))
		bspan.SetError(res.err)
	case <-ctx.Done():
		// Client gone; the batch still completes and its send lands in
		// the buffered channel.
		bspan.Event("client-gone")
		code = 499
		return
	}
	if res.err != nil {
		switch {
		case errors.Is(res.err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(res.err, ErrBatchPanic):
			// A contained batch-level panic is the server's fault, not the
			// input's: 500 tells clients (and the fleet router) to retry
			// elsewhere, where a 422 would pin the blame on the binary.
			code = http.StatusInternalServerError
		default:
			code = http.StatusUnprocessableEntity
		}
		writeJSON(w, code, ErrorResponse{
			Error:    res.err.Error(),
			Model:    res.model.Fingerprint,
			Attempts: res.attempts,
		})
		return
	}
	// Key the stored entry by the model that actually ran (it may be
	// newer than the one probed above if a reload landed in between).
	s.cache.put(imageKey(image, res.model.Fingerprint), res.vars)
	s.observeLatency(time.Since(start))
	writeInferResponse(w, res.model.Fingerprint, false, res.vars)
}

// writeInferResponse renders vars in the `cati infer -json` per-variable
// schema plus the model fingerprint (also exposed as a header so clients
// streaming the body can route on it early).
func writeInferResponse(w http.ResponseWriter, fingerprint string, cached bool, vars []core.InferredVar) {
	recs := toVarRecords(vars)
	w.Header().Set("X-Cati-Model", fingerprint)
	writeJSON(w, http.StatusOK, InferResponse{
		Model:   fingerprint,
		Cached:  cached,
		NumVars: len(recs),
		Vars:    recs,
	})
}

// traceLookup defers to the process trace collector at request time,
// answering 404 while tracing is disabled (same contract as the
// telemetry debug server's mounts).
func traceLookup(mk func(*trace.Collector) http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := trace.Default()
		if c == nil {
			http.Error(w, "tracing disabled (no collector installed)", http.StatusNotFound)
			return
		}
		mk(c).ServeHTTP(w, r)
	})
}

// writeJSON writes one JSON body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
