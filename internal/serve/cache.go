package serve

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Result-cache telemetry.
var (
	mCacheHits = telemetry.Default().Counter("cati_serve_cache_hits_total",
		"Inference requests answered from the result cache.")
	mCacheMisses = telemetry.Default().Counter("cati_serve_cache_misses_total",
		"Inference requests that missed the result cache.")
	mCacheEntries = telemetry.Default().Gauge("cati_serve_cache_entries",
		"Entries currently held by the result cache.")
)

// cacheKey addresses one inference result by content: the SHA-256 of the
// raw ELF image plus the fingerprint of the model that produced the
// result. Keying on the model too means a hot-reload naturally invalidates
// everything — stale entries simply stop being reachable and age out of
// the LRU; no flush, no epoch counter.
type cacheKey struct {
	image [sha256.Size]byte
	model string
}

// imageKey hashes a raw ELF image into the cache's content address.
func imageKey(image []byte, model string) cacheKey {
	return cacheKey{image: sha256.Sum256(image), model: model}
}

// resultCache is a mutex-guarded LRU of inference results. Real serving
// workloads re-submit identical binaries constantly (the same system
// libraries, the same firmware blob analyzed by many users), and
// inference output is a pure function of (image bytes, model), so a
// content-addressed cache is exact — never heuristic. Stored slices are
// treated as immutable by all readers.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent
	m   map[cacheKey]*list.Element
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key  cacheKey
	vars []core.InferredVar
}

// newResultCache returns an LRU holding at most max entries; nil (cache
// disabled) when max <= 0.
func newResultCache(max int) *resultCache {
	if max <= 0 {
		return nil
	}
	return &resultCache{max: max, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached result and whether it was present. A nil cache
// always misses. The returned slice must not be mutated.
func (c *resultCache) get(k cacheKey) ([]core.InferredVar, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry).vars, true
}

// put stores a result, evicting the least-recently-used entry when full.
// A nil cache drops everything.
func (c *resultCache) put(k cacheKey, vars []core.InferredVar) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		// A concurrent identical request already stored it; refresh.
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).vars = vars
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, vars: vars})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
	mCacheEntries.Set(int64(c.ll.Len()))
}

// len reports the current entry count (0 for a nil cache).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
