package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// Package fixture: two tiny trained model artifacts (distinct seeds →
// distinct weights → distinct fingerprints), trained once per process.
var (
	fixOnce      sync.Once
	fixA, fixB   []byte
	fpA, fpB     string
	fixCATI      *core.CATI // loaded from fixA, for serial baselines
	fixErr       error
	fixImages    [][]byte // stripped ELF images for requests
	fixImagesErr error
)

func trainBlob(seed int64) ([]byte, error) {
	c, err := corpus.Build(corpus.BuildConfig{
		Name: fmt.Sprintf("serve-train-%d", seed), Binaries: 2,
		Profile: synth.DefaultProfile("servetrain"), Window: 5, Seed: 41,
	})
	if err != nil {
		return nil, err
	}
	cati, err := core.Train(c, classify.Config{
		Window: 5, Conv1: 4, Conv2: 4, Hidden: 16, MaxPerStage: 200, Flat: true,
		Train: nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
		W2V:   word2vec.Config{Epochs: 1}, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return cati.Save()
}

func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		if fixA, fixErr = trainBlob(4); fixErr != nil {
			return
		}
		if fixB, fixErr = trainBlob(9); fixErr != nil {
			return
		}
		var a, b *core.CATI
		if a, fixErr = core.Load(fixA); fixErr != nil {
			return
		}
		if b, fixErr = core.Load(fixB); fixErr != nil {
			return
		}
		fixCATI, fpA, fpB = a, a.Fingerprint(), b.Fingerprint()
		if fpA == fpB {
			fixErr = fmt.Errorf("fixture models share fingerprint %q", fpA)
			return
		}
		for seed := int64(700); seed < 712; seed++ {
			p := synth.Generate(synth.DefaultProfile("serve-bin"), seed)
			res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: seed})
			if err != nil {
				fixImagesErr = err
				return
			}
			img, err := elfx.Write(elfx.Strip(res.Binary))
			if err != nil {
				fixImagesErr = err
				return
			}
			fixImages = append(fixImages, img)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	if fixImagesErr != nil {
		t.Fatal(fixImagesErr)
	}
}

// modelFile writes blob as a model artifact in a fresh temp dir.
func modelFile(t *testing.T, blob []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cati.model")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startServer builds and starts a server on a loopback port, registering
// cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func postInfer(t *testing.T, addr string, image []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/infer", "application/octet-stream", bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// toRecords renders a serial InferBinary baseline in the wire schema.
func toRecords(vars []core.InferredVar) []VarRecord {
	out := make([]VarRecord, len(vars))
	for i, v := range vars {
		out[i] = VarRecord{FuncLow: v.FuncLow, Slot: v.Slot, Global: v.Global,
			Size: v.Size, NumVUCs: v.NumVUCs, Class: v.Class.String()}
	}
	return out
}

func sameRecords(a, b []VarRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInferEndToEnd is the subsystem's acceptance path: start the
// service on a loopback port, POST a synthesized stripped binary, and
// check the decoded response exactly matches (*core.CATI).InferBinary on
// the same image — plus the fingerprint plumbing on /v1/infer and
// /v1/models.
func TestInferEndToEnd(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{ModelPath: modelFile(t, fixA), WatchInterval: -1})

	img := fixImages[0]
	bin, err := elfx.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	wantVars, err := fixCATI.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	want := toRecords(wantVars)

	resp, body := postInfer(t, s.Addr, img)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/infer = %d: %s", resp.StatusCode, body)
	}
	var got InferResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("response does not decode: %v\n%s", err, body)
	}
	if got.Model != fpA {
		t.Fatalf("response model %q, want %q", got.Model, fpA)
	}
	if h := resp.Header.Get("X-Cati-Model"); h != fpA {
		t.Fatalf("X-Cati-Model %q, want %q", h, fpA)
	}
	if got.Cached {
		t.Fatal("first request reported cached")
	}
	if got.NumVars != len(got.Vars) || len(got.Vars) == 0 {
		t.Fatalf("num_vars %d, len(vars) %d", got.NumVars, len(got.Vars))
	}
	if !sameRecords(got.Vars, want) {
		t.Fatalf("served inference differs from InferBinary:\n got %+v\nwant %+v", got.Vars, want)
	}

	// /v1/models surfaces the same fingerprint.
	mresp, err := http.Get("http://" + s.Addr + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var models ModelsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if models.Active.Fingerprint != fpA || models.Active.Reloads != 0 {
		t.Fatalf("models = %+v, want fingerprint %q, 0 reloads", models.Active, fpA)
	}

	// Garbage input is that request's 400, not a server failure.
	resp400, body400 := postInfer(t, s.Addr, []byte("definitely not an ELF"))
	if resp400.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage image = %d: %s", resp400.StatusCode, body400)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body400, &e); err != nil || e.Error == "" {
		t.Fatalf("400 body not an ErrorResponse: %v %s", err, body400)
	}
}

// TestBatchingEquivalence pushes N concurrent requests through the
// micro-batcher and checks every response is byte-identical to a serial
// InferBinary call on the same image — and that actual coalescing
// happened (the test would otherwise pass trivially with batching broken
// into singletons).
func TestBatchingEquivalence(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		MaxBatch:  8, Linger: 250 * time.Millisecond,
		MaxInFlight: 16, MaxQueue: 16,
		QueueWait:     5 * time.Second,
		CacheSize:     -1, // force every request through inference
		WatchInterval: -1,
	})

	// Observe dispatched batch sizes through the batcher's test seam.
	var mu sync.Mutex
	var sizes []int
	real := s.batch.infer
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, opts core.BatchOptions) ([]core.BinaryResult, error) {
		mu.Lock()
		sizes = append(sizes, len(bins))
		mu.Unlock()
		return real(ctx, m, bins, opts)
	}

	n := len(fixImages)
	want := make([][]VarRecord, n)
	for i, img := range fixImages {
		bin, err := elfx.Read(img)
		if err != nil {
			t.Fatal(err)
		}
		vars, err := fixCATI.InferBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toRecords(vars)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[i]))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var got InferResponse
			if err := json.Unmarshal(body, &got); err != nil {
				errs[i] = err
				return
			}
			if got.Model != fpA {
				errs[i] = fmt.Errorf("model %q, want %q", got.Model, fpA)
				return
			}
			if !sameRecords(got.Vars, want[i]) {
				errs[i] = fmt.Errorf("batched result differs from serial InferBinary")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	total, maxSize := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > maxSize {
			maxSize = sz
		}
	}
	if total != n {
		t.Fatalf("batches covered %d requests, want %d (sizes %v)", total, n, sizes)
	}
	if maxSize < 2 {
		t.Fatalf("no coalescing: batch sizes %v", sizes)
	}
}

// TestOverload exhausts the in-flight and queue bounds with a gated
// inference function and checks: excess requests get 429 + Retry-After
// (queue-full instantly, queued ones at the deadline), healthz stays
// responsive throughout, and the blocked requests complete fine once the
// gate opens. The server neither crashes nor wedges.
func TestOverload(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath:   modelFile(t, fixA),
		MaxBatch:    1, // one request per batch: slots map 1:1 to batches
		MaxInFlight: 2, MaxQueue: 1,
		QueueWait:     200 * time.Millisecond,
		CacheSize:     -1,
		WatchInterval: -1,
	})
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		entered <- struct{}{}
		<-gate
		return make([]core.BinaryResult, len(bins)), nil
	}

	type reply struct {
		code       int
		retryAfter string
	}
	fire := func() chan reply {
		ch := make(chan reply, 1)
		go func() {
			resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[0]))
			if err != nil {
				ch <- reply{code: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ch <- reply{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
		return ch
	}

	// Fill both execution slots.
	r1, r2 := fire(), fire()
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("requests never reached the inference core")
		}
	}
	// Fill the one queue slot.
	r3 := fire()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.adm.waiters) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("third request never queued (waiters %d)", len(s.adm.waiters))
		}
		time.Sleep(time.Millisecond)
	}

	// Beyond in-flight + queue: immediate 429.
	r4 := <-fire()
	if r4.code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request = %d, want 429", r4.code)
	}
	if r4.retryAfter == "" {
		t.Fatal("429 missing Retry-After")
	}

	// healthz never blocks, even with every slot and queue position taken.
	hc := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr + "/v1/healthz")
		if err != nil {
			hc <- -1
			return
		}
		resp.Body.Close()
		hc <- resp.StatusCode
	}()
	select {
	case code := <-hc:
		if code != http.StatusOK {
			t.Fatalf("healthz under overload = %d", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("healthz blocked under overload")
	}

	// The queued request times out into a 429.
	select {
	case r := <-r3:
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("queued request = %d, want 429 after queue deadline", r.code)
		}
		if r.retryAfter == "" {
			t.Fatal("queue-timeout 429 missing Retry-After")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never timed out")
	}

	// Release: the two admitted requests complete normally.
	close(gate)
	for _, ch := range []chan reply{r1, r2} {
		select {
		case r := <-ch:
			if r.code != http.StatusOK {
				t.Fatalf("admitted request = %d after gate opened", r.code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}
}

// TestHotReloadMidTraffic hammers the server from several goroutines
// while the artifact file is replaced and reloaded: no request may fail,
// and the fingerprint in responses must flip from the old model's to the
// new one's.
func TestHotReloadMidTraffic(t *testing.T) {
	fixture(t)
	path := modelFile(t, fixA)
	s := startServer(t, Config{
		ModelPath:   path,
		CacheSize:   -1, // every request exercises inference on the live model
		MaxInFlight: 8, MaxQueue: 32, QueueWait: 10 * time.Second,
		WatchInterval: -1, // reload triggered explicitly below
	})

	const workers = 4
	stop := make(chan struct{})
	type obs struct {
		codes  map[int]int
		models map[string]int
		last   string
		err    error
	}
	results := make([]obs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := obs{codes: map[int]int{}, models: map[string]int{}}
			defer func() { results[w] = o }()
			img := fixImages[w%len(fixImages)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(img))
				if err != nil {
					o.err = err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					o.err = err
					return
				}
				o.codes[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					var ir InferResponse
					if err := json.Unmarshal(body, &ir); err != nil {
						o.err = err
						return
					}
					o.models[ir.Model]++
					o.last = ir.Model
				}
			}
		}(w)
	}

	// Let traffic run on model A, then swap the artifact mid-stream.
	time.Sleep(200 * time.Millisecond)
	if err := os.WriteFile(path, fixB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Load(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	sawA, sawB, total := 0, 0, 0
	for w, o := range results {
		if o.err != nil {
			t.Fatalf("worker %d: %v", w, o.err)
		}
		for code, n := range o.codes {
			total += n
			if code != http.StatusOK {
				t.Fatalf("worker %d: %d responses with status %d during reload", w, n, code)
			}
		}
		sawA += o.models[fpA]
		sawB += o.models[fpB]
		for m := range o.models {
			if m != fpA && m != fpB {
				t.Fatalf("worker %d: response with unknown fingerprint %q", w, m)
			}
		}
	}
	if sawA == 0 {
		t.Fatalf("traffic did not span the swap: %d on old, %d on new (total %d)", sawA, sawB, total)
	}
	// A worker's very last response may still carry the old fingerprint —
	// its final batch can have been dispatched (and model-snapshotted)
	// just before the swap and finished slowly. The invariant to pin is
	// that a request submitted strictly after the reload runs on B.
	resp, body := postInfer(t, s.Addr, fixImages[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload request = %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Model != fpB {
		t.Fatalf("post-reload request on %q, want new model %q", ir.Model, fpB)
	}
	if got := s.Registry().Reloads(); got != 1 {
		t.Fatalf("Reloads() = %d, want 1", got)
	}
}

// TestResultCache checks the content-addressed cache: a repeated image is
// answered from cache with identical variables, and a model reload makes
// the same image miss again (the fingerprint is part of the key).
func TestResultCache(t *testing.T) {
	fixture(t)
	path := modelFile(t, fixA)
	s := startServer(t, Config{ModelPath: path, CacheSize: 64, WatchInterval: -1})
	img := fixImages[1]

	var first, second InferResponse
	resp, body := postInfer(t, s.Addr, img)
	if resp.StatusCode != 200 {
		t.Fatalf("first = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request hit the cache")
	}
	resp, body = postInfer(t, s.Addr, img)
	if resp.StatusCode != 200 {
		t.Fatalf("second = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if second.Model != fpA || !sameRecords(first.Vars, second.Vars) {
		t.Fatal("cached response differs from computed one")
	}

	// Reload to model B: same image must miss (and carry the new print).
	if err := os.WriteFile(path, fixB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Load(); err != nil {
		t.Fatal(err)
	}
	var third InferResponse
	resp, body = postInfer(t, s.Addr, img)
	if resp.StatusCode != 200 {
		t.Fatalf("post-reload = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("cache hit across a model reload")
	}
	if third.Model != fpB {
		t.Fatalf("post-reload model %q, want %q", third.Model, fpB)
	}
}

// TestGracefulDrain pins a request in flight, starts Shutdown, and
// checks the request completes (200) before Shutdown returns.
func TestGracefulDrain(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		CacheSize: -1, MaxBatch: 1, WatchInterval: -1,
	})
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	real := s.batch.infer
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, opts core.BatchOptions) ([]core.BinaryResult, error) {
		entered <- struct{}{}
		<-gate
		return real(ctx, m, bins, opts)
	}

	reply := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr+"/v1/infer", "application/octet-stream", bytes.NewReader(fixImages[2]))
		if err != nil {
			reply <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reply <- resp.StatusCode
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached inference")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) with a request in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case code := <-reply:
		if code != http.StatusOK {
			t.Fatalf("in-flight request = %d during drain", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned")
	}
}
