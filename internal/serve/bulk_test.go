package serve

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/bulkq"
	"repro/internal/elfx"
)

// bulkArchive packs images into an in-memory tar.
func bulkArchive(t *testing.T, images [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for i, img := range images {
		if err := tw.WriteHeader(&tar.Header{
			Name: fmt.Sprintf("bin-%03d.elf", i), Mode: 0o644, Size: int64(len(img)),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(img); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitBulkJob(t *testing.T, addr, id string, pred func(bulkq.JobStatus) bool) bulkq.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/bulk/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st bulkq.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting on bulk job %s: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBulkEndToEnd drives the daemon's bulk surface as a client would:
// POST a tarball of real stripped binaries, poll to completion, stream
// the results — and every binary's variables must exactly match a serial
// InferBinary on the same model.
func TestBulkEndToEnd(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA), WatchInterval: -1,
		BulkDir: t.TempDir(), BulkWorkers: 2,
	})
	images := fixImages[:3]

	resp, err := http.Post("http://"+s.Addr+"/v1/bulk", "application/x-tar",
		bytes.NewReader(bulkArchive(t, images)))
	if err != nil {
		t.Fatal(err)
	}
	var sub bulkq.SubmitResult
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: code=%d err=%v", resp.StatusCode, err)
	}
	if sub.Job.Binaries != len(images) {
		t.Fatalf("submitted %d binaries, job holds %d", len(images), sub.Job.Binaries)
	}

	st := waitBulkJob(t, s.Addr, sub.Job.ID, func(st bulkq.JobStatus) bool {
		return st.State == "done"
	})
	if st.Done != len(images) || st.Failed != 0 {
		t.Fatalf("final status: %+v", st)
	}

	resp, err = http.Get("http://" + s.Addr + "/v1/bulk/" + sub.Job.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	for i := 0; ; i++ {
		var rec bulkq.ResultRecord
		if err := dec.Decode(&rec); err == io.EOF {
			if i != len(images) {
				t.Fatalf("results: %d lines, want %d", i, len(images))
			}
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if rec.State != "done" || rec.Model != fpA {
			t.Fatalf("result %d: %+v", i, rec)
		}
		var got []VarRecord
		if err := json.Unmarshal(rec.Vars, &got); err != nil {
			t.Fatalf("result %d vars: %v", i, err)
		}
		bin, err := elfx.Read(images[rec.Index])
		if err != nil {
			t.Fatal(err)
		}
		want, err := fixCATI.InferBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecords(got, toRecords(want)) {
			t.Fatalf("result %d: bulk vars diverge from serial InferBinary:\n%+v\nvs\n%+v",
				i, got, toRecords(want))
		}
	}
}

// An archive over -max-bulk-body answers 413 with the JSON envelope,
// mid-stream, without the daemon buffering the whole upload.
func TestBulkBodyLimit(t *testing.T) {
	fixture(t)
	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA), WatchInterval: -1,
		BulkDir: t.TempDir(), MaxBulkBody: 1024,
	})
	resp, err := http.Post("http://"+s.Addr+"/v1/bulk", "application/x-tar",
		bytes.NewReader(bulkArchive(t, fixImages[:2])))
	if err != nil {
		t.Fatal(err)
	}
	var eb ErrorResponse
	err = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized bulk submit: %d, want 413", resp.StatusCode)
	}
	if err != nil || eb.Error == "" {
		t.Fatalf("413 body not a JSON error envelope: %v", err)
	}
}
