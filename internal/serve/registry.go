package serve

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Model is one immutable loaded-model snapshot: the trained system plus
// the provenance the API surfaces. Requests capture the snapshot they run
// against, so a reload never changes a request mid-flight — in-flight
// work finishes on the old snapshot while new requests see the new one.
type Model struct {
	// CATI is the trained system; read-only once published (the CATI
	// concurrency contract).
	CATI *core.CATI
	// Fingerprint is core.CATI.Fingerprint(): the sealed artifact's
	// content hash, echoed in every inference response.
	Fingerprint string
	// Path is the artifact file the snapshot was loaded from.
	Path string
	// LoadedAt is when this snapshot became active.
	LoadedAt time.Time

	// modTime/size are the artifact file's stat at load time; the watcher
	// compares against them to detect an updated file.
	modTime time.Time
	size    int64
}

// Registry owns the active model behind an atomic pointer. Load/Reload
// replace the snapshot (serialized by a mutex so concurrent SIGHUP and
// watcher ticks cannot interleave); Active is a lock-free read on the
// request path.
type Registry struct {
	path    string
	workers int
	log     *slog.Logger

	active  atomic.Pointer[Model]
	mu      sync.Mutex // serializes (re)loads
	reloads atomic.Uint64
}

// NewRegistry returns a registry that loads artifacts from path and
// configures each loaded model with the given worker count (0: resolve
// via par.Workers at inference time). No model is loaded yet — call Load.
func NewRegistry(path string, workers int, log *slog.Logger) *Registry {
	if log == nil {
		log = slog.Default()
	}
	return &Registry{path: path, workers: workers, log: log}
}

// countReload records a model (re)load outcome.
func countReload(result string) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_serve_model_loads_total",
		"Model artifact loads by the serving registry, by outcome.", "result", result).Inc()
}

// Load reads, validates and publishes the artifact at the registry's
// path. On any failure the previously active model (if any) stays
// published untouched, so a botched reload — truncated upload, version
// skew, bit rot — degrades to "keep serving the old model", never to an
// outage. The first Load must succeed before serving starts.
func (r *Registry) Load() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := os.Stat(r.path)
	if err != nil {
		countReload("error")
		return fmt.Errorf("serve: model: %w", err)
	}
	blob, err := os.ReadFile(r.path)
	if err != nil {
		countReload("error")
		return fmt.Errorf("serve: model: %w", err)
	}
	cati, err := core.Load(blob)
	if err != nil {
		countReload("error")
		return fmt.Errorf("serve: model %s: %w", r.path, err)
	}
	cati.Pipeline.Cfg.Workers = r.workers
	m := &Model{
		CATI:        cati,
		Fingerprint: cati.Fingerprint(),
		Path:        r.path,
		LoadedAt:    time.Now(),
		modTime:     st.ModTime(),
		size:        st.Size(),
	}
	old := r.active.Swap(m)
	countReload("ok")
	if old != nil {
		r.reloads.Add(1)
		r.log.Info("model reloaded", "path", r.path, "fingerprint", m.Fingerprint, "was", old.Fingerprint)
	} else {
		r.log.Info("model loaded", "path", r.path, "fingerprint", m.Fingerprint)
	}
	return nil
}

// Active returns the current model snapshot (nil before the first Load).
// It is one atomic load — safe and cheap on every request.
func (r *Registry) Active() *Model { return r.active.Load() }

// Reloads reports how many times the active model has been replaced.
func (r *Registry) Reloads() uint64 { return r.reloads.Load() }

// Watch polls the artifact file every interval until ctx is cancelled and
// reloads when its mtime or size changes — `cp new.model cati.model` (or
// an atomic rename over it) rolls the fleet without restarts. Reload
// failures are logged and retried on the next tick; the active model is
// never dropped. Blocks; run it on its own goroutine.
func (r *Registry) Watch(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cur := r.Active()
		st, err := os.Stat(r.path)
		if err != nil {
			// A mid-replace window (rename not yet landed) or a deleted
			// file: keep serving the loaded model and look again later.
			continue
		}
		if cur != nil && st.ModTime().Equal(cur.modTime) && st.Size() == cur.size {
			continue
		}
		if err := r.Load(); err != nil {
			r.log.Warn("model reload failed; keeping active model", "error", err)
		}
	}
}
