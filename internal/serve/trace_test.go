package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/elfx"
	"repro/internal/trace"
)

// TestCancelMidBatchClosesSpans: a client that abandons its request
// while the batch is still inferring errors out on its side (the
// handler answers 499 to nobody), the batch completes on its own
// schedule — and once it drains, no span is left open: request,
// admission, batch and stage spans all close even though the request
// context died under them.
func TestCancelMidBatchClosesSpans(t *testing.T) {
	fixture(t)
	prev := trace.Default()
	col := trace.NewCollector(trace.Config{})
	trace.SetDefault(col)
	t.Cleanup(func() { trace.SetDefault(prev) })

	s := startServer(t, Config{
		ModelPath: modelFile(t, fixA),
		CacheSize: -1, MaxBatch: 1, WatchInterval: -1,
	})
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	s.batch.infer = func(ctx context.Context, m *Model, bins []*elfx.Binary, _ core.BatchOptions) ([]core.BinaryResult, error) {
		entered <- struct{}{}
		<-gate
		return make([]core.BinaryResult, len(bins)), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+s.Addr+"/v1/infer", bytes.NewReader(fixImages[0]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		clientDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached inference")
	}
	cancel() // client walks away mid-batch
	select {
	case err := <-clientDone:
		if err == nil {
			t.Fatal("cancelled request did not error on the client side")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not observe the cancellation")
	}
	close(gate) // let the wedged batch run to completion

	deadline := time.Now().Add(5 * time.Second)
	for col.OpenSpans() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d spans still open after cancellation + batch drain", col.OpenSpans())
		}
		time.Sleep(time.Millisecond)
	}
}
