// Package dwarflite implements a compact DWARF-flavoured debug-information
// encoding. It carries exactly the facts the paper extracts from real DWARF
// (§IV-A): per-function variable records (name, stack-frame offset, type)
// and a full structural type graph including typedef chains so that type
// resolution can "recursively find the base type".
//
// The encoding is a single binary blob intended for a `.debug_cati` ELF
// section: a type table (one record per type node, cycle-safe) followed by
// function records.
package dwarflite

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ctypes"
)

// Variable location kinds (a tiny stand-in for DWARF location
// expressions).
const (
	// LocFrame: the variable lives in a stack slot at FrameOff.
	LocFrame byte = 0
	// LocReg: the variable lives in the register numbered RegNum
	// (hardware number 0–15) — what optimized code does to hot scalars.
	LocReg byte = 1
)

// Var describes one local variable or parameter of a function.
type Var struct {
	Name string
	// FrameOff is the byte offset of the variable's slot relative to the
	// function's frame base (negative offsets below rbp in the classic
	// frame layout; non-negative rsp-relative offsets in the -fomit-frame-
	// pointer layout). Only meaningful when Loc == LocFrame.
	FrameOff int32
	Type     *ctypes.Type
	IsParam  bool
	// Loc discriminates stack-resident from register-resident variables.
	Loc byte
	// RegNum is the hardware register number when Loc == LocReg.
	RegNum byte
}

// Frame-base registers a function can use for its locals.
const (
	FrameRBP byte = 0 // classic frame: locals at negative rbp offsets
	FrameRSP byte = 1 // -fomit-frame-pointer: locals at positive rsp offsets
)

// Func describes one function: its address range and variables.
type Func struct {
	Name string
	Low  uint64 // first instruction address
	High uint64 // one past the last instruction address
	// FrameReg says which register Var.FrameOff values are relative to.
	FrameReg byte
	Vars     []Var
}

// Global describes one global (data-section) variable.
type Global struct {
	Name string
	Addr uint64
	Type *ctypes.Type
}

// Info is the full debug information of one binary.
type Info struct {
	Funcs   []Func
	Globals []Global
}

// SectionName is the ELF section the blob is stored in.
const SectionName = ".debug_cati"

var (
	// ErrMalformed reports a structurally invalid blob.
	ErrMalformed = errors.New("dwarflite: malformed debug info")
	// ErrBadTypeRef reports a dangling type reference.
	ErrBadTypeRef = errors.New("dwarflite: dangling type reference")
)

const magic = "CATIDBG1"

// typeKind tags serialized type records.
const (
	tkBase    = 1
	tkPointer = 2
	tkStruct  = 3
	tkArray   = 4
	tkEnum    = 5
	tkTypedef = 6
)

type encoder struct {
	buf     []byte
	typeIDs map[*ctypes.Type]uint64
	types   []*ctypes.Type
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// typeID interns a type node, assigning IDs in first-visit order. ID 0 is
// reserved for "no type".
func (e *encoder) typeID(t *ctypes.Type) uint64 {
	if t == nil {
		return 0
	}
	if id, ok := e.typeIDs[t]; ok {
		return id
	}
	id := uint64(len(e.types) + 1)
	e.typeIDs[t] = id
	e.types = append(e.types, t)
	// Visit children so the table is complete; IDs are assigned before
	// recursion, which makes cyclic graphs (struct containing a pointer to
	// itself) terminate.
	switch t.Kind {
	case ctypes.KindPointer, ctypes.KindArray, ctypes.KindTypedef:
		e.typeID(t.Elem)
	case ctypes.KindStruct:
		for _, f := range t.Fields {
			e.typeID(f.Type)
		}
	}
	return id
}

// Encode serializes the debug info.
func (i *Info) Encode() []byte {
	e := &encoder{typeIDs: make(map[*ctypes.Type]uint64)}

	// Pass 1: intern every referenced type.
	for _, f := range i.Funcs {
		for _, v := range f.Vars {
			e.typeID(v.Type)
		}
	}
	for _, g := range i.Globals {
		e.typeID(g.Type)
	}

	e.buf = append(e.buf, magic...)

	// Type table. Records reference other types by ID, which is safe
	// because the table is fully interned before emission.
	e.uvarint(uint64(len(e.types)))
	for _, t := range e.types {
		switch t.Kind {
		case ctypes.KindBase:
			e.uvarint(tkBase)
			e.uvarint(uint64(t.Base))
		case ctypes.KindPointer:
			e.uvarint(tkPointer)
			e.uvarint(e.typeIDs[t.Elem])
		case ctypes.KindStruct:
			e.uvarint(tkStruct)
			e.str(t.Name)
			e.uvarint(uint64(len(t.Fields)))
			for _, f := range t.Fields {
				e.str(f.Name)
				e.uvarint(e.typeIDs[f.Type])
			}
		case ctypes.KindArray:
			e.uvarint(tkArray)
			e.uvarint(e.typeIDs[t.Elem])
			e.uvarint(uint64(t.Count))
		case ctypes.KindEnum:
			e.uvarint(tkEnum)
			e.str(t.TagName)
		case ctypes.KindTypedef:
			e.uvarint(tkTypedef)
			e.str(t.TagName)
			e.uvarint(e.typeIDs[t.Elem])
		}
	}

	// Function records.
	e.uvarint(uint64(len(i.Funcs)))
	for _, f := range i.Funcs {
		e.str(f.Name)
		e.uvarint(f.Low)
		e.uvarint(f.High)
		e.uvarint(uint64(f.FrameReg))
		e.uvarint(uint64(len(f.Vars)))
		for _, v := range f.Vars {
			e.str(v.Name)
			e.varint(int64(v.FrameOff))
			e.uvarint(e.typeIDs[v.Type])
			flags := uint64(0)
			if v.IsParam {
				flags |= 1
			}
			if v.Loc == LocReg {
				flags |= 2
			}
			e.uvarint(flags)
			if v.Loc == LocReg {
				e.uvarint(uint64(v.RegNum))
			}
		}
	}

	// Global records.
	e.uvarint(uint64(len(i.Globals)))
	for _, g := range i.Globals {
		e.str(g.Name)
		e.uvarint(g.Addr)
		e.uvarint(e.typeIDs[g.Type])
	}
	return e.buf
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrMalformed
	}
	d.pos += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.buf) {
		return "", ErrMalformed
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// Decode parses a blob produced by Encode, reconstructing the shared type
// graph (aliasing and cycles included).
func Decode(data []byte) (*Info, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic: %w", ErrMalformed)
	}
	d := &decoder{buf: data, pos: len(magic)}

	numTypes, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if numTypes > uint64(len(data)) {
		return nil, fmt.Errorf("type count %d: %w", numTypes, ErrMalformed)
	}

	// Two-phase: allocate nodes first so references (including cycles)
	// resolve, then fill them in.
	nodes := make([]*ctypes.Type, numTypes+1)
	for i := range nodes {
		if i > 0 {
			nodes[i] = &ctypes.Type{}
		}
	}
	ref := func(id uint64) (*ctypes.Type, error) {
		if id == 0 {
			return nil, nil
		}
		if id >= uint64(len(nodes)) {
			return nil, fmt.Errorf("type id %d: %w", id, ErrBadTypeRef)
		}
		return nodes[id], nil
	}

	type structFixup struct {
		node   *ctypes.Type
		names  []string
		refIDs []uint64
	}
	var fixups []structFixup

	for id := uint64(1); id <= numTypes; id++ {
		kind, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		n := nodes[id]
		switch kind {
		case tkBase:
			b, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			base := baseByID(ctypes.Base(b))
			if base == nil {
				return nil, fmt.Errorf("base type %d: %w", b, ErrMalformed)
			}
			// Base types are canonical singletons; alias the node content.
			*n = *base
		case tkPointer:
			eid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			elem, err := ref(eid)
			if err != nil {
				return nil, err
			}
			n.Kind = ctypes.KindPointer
			n.Elem = elem
		case tkStruct:
			name, err := d.str()
			if err != nil {
				return nil, err
			}
			nf, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if nf > uint64(len(data)) {
				return nil, fmt.Errorf("field count %d: %w", nf, ErrMalformed)
			}
			fx := structFixup{node: n}
			for j := uint64(0); j < nf; j++ {
				fn, err := d.str()
				if err != nil {
					return nil, err
				}
				fid, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				fx.names = append(fx.names, fn)
				fx.refIDs = append(fx.refIDs, fid)
			}
			n.Kind = ctypes.KindStruct
			n.Name = name
			fixups = append(fixups, fx)
		case tkArray:
			eid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			cnt, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			elem, err := ref(eid)
			if err != nil {
				return nil, err
			}
			n.Kind = ctypes.KindArray
			n.Elem = elem
			n.Count = int(cnt)
		case tkEnum:
			tag, err := d.str()
			if err != nil {
				return nil, err
			}
			n.Kind = ctypes.KindEnum
			n.TagName = tag
		case tkTypedef:
			tag, err := d.str()
			if err != nil {
				return nil, err
			}
			eid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			elem, err := ref(eid)
			if err != nil {
				return nil, err
			}
			n.Kind = ctypes.KindTypedef
			n.TagName = tag
			n.Elem = elem
		default:
			return nil, fmt.Errorf("type kind %d: %w", kind, ErrMalformed)
		}
	}

	// Struct layout fixups: all field types are now filled, so re-run the
	// canonical layout to restore offsets, size and alignment. Interning
	// assigns parent IDs before children, so walking the fixups in reverse
	// lays out nested structs before the structs embedding them. Cyclic
	// structures are safe because cyclic members are pointers (as in C),
	// whose size never depends on the pointee's layout.
	for idx := len(fixups) - 1; idx >= 0; idx-- {
		fx := fixups[idx]
		fields := make([]ctypes.Field, len(fx.names))
		for j := range fx.names {
			ft, err := ref(fx.refIDs[j])
			if err != nil {
				return nil, err
			}
			if ft == nil {
				return nil, fmt.Errorf("struct %s field %s: %w", fx.node.Name, fx.names[j], ErrBadTypeRef)
			}
			fields[j] = ctypes.Field{Name: fx.names[j], Type: ft}
		}
		laid := ctypes.StructOf(fx.node.Name, fields...)
		*fx.node = *laid
	}

	numFuncs, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if numFuncs > uint64(len(data)) {
		return nil, fmt.Errorf("function count %d: %w", numFuncs, ErrMalformed)
	}
	info := &Info{}
	for i := uint64(0); i < numFuncs; i++ {
		var f Func
		if f.Name, err = d.str(); err != nil {
			return nil, err
		}
		if f.Low, err = d.uvarint(); err != nil {
			return nil, err
		}
		if f.High, err = d.uvarint(); err != nil {
			return nil, err
		}
		fr, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		f.FrameReg = byte(fr)
		nv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nv > uint64(len(data)) {
			return nil, fmt.Errorf("variable count %d: %w", nv, ErrMalformed)
		}
		for j := uint64(0); j < nv; j++ {
			var v Var
			if v.Name, err = d.str(); err != nil {
				return nil, err
			}
			off, err := d.varint()
			if err != nil {
				return nil, err
			}
			v.FrameOff = int32(off)
			tid, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if v.Type, err = ref(tid); err != nil {
				return nil, err
			}
			flags, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			v.IsParam = flags&1 != 0
			if flags&2 != 0 {
				v.Loc = LocReg
				rn, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				v.RegNum = byte(rn)
			}
			f.Vars = append(f.Vars, v)
		}
		info.Funcs = append(info.Funcs, f)
	}

	numGlobals, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if numGlobals > uint64(len(data)) {
		return nil, fmt.Errorf("global count %d: %w", numGlobals, ErrMalformed)
	}
	for i := uint64(0); i < numGlobals; i++ {
		var g Global
		if g.Name, err = d.str(); err != nil {
			return nil, err
		}
		if g.Addr, err = d.uvarint(); err != nil {
			return nil, err
		}
		tid, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if g.Type, err = ref(tid); err != nil {
			return nil, err
		}
		info.Globals = append(info.Globals, g)
	}
	return info, nil
}

// GlobalAt returns the global variable whose storage covers addr.
func (i *Info) GlobalAt(addr uint64) (*Global, bool) {
	for j := range i.Globals {
		g := &i.Globals[j]
		size := uint64(1)
		if g.Type != nil {
			if s := g.Type.Size(); s > 0 {
				size = uint64(s)
			}
		}
		if addr >= g.Addr && addr < g.Addr+size {
			return g, true
		}
	}
	return nil, false
}

// VarInReg returns the register-resident variable held in the hardware
// register numbered regNum, if any.
func (f *Func) VarInReg(regNum byte) (*Var, bool) {
	for j := range f.Vars {
		v := &f.Vars[j]
		if v.Loc == LocReg && v.RegNum == regNum {
			return v, true
		}
	}
	return nil, false
}

// baseByID maps a serialized base-type ID back to its canonical singleton.
func baseByID(b ctypes.Base) *ctypes.Type {
	switch b {
	case ctypes.BaseVoid:
		return ctypes.Void
	case ctypes.BaseBool:
		return ctypes.Bool
	case ctypes.BaseChar:
		return ctypes.Char
	case ctypes.BaseUChar:
		return ctypes.UChar
	case ctypes.BaseShort:
		return ctypes.Short
	case ctypes.BaseUShort:
		return ctypes.UShort
	case ctypes.BaseInt:
		return ctypes.Int
	case ctypes.BaseUInt:
		return ctypes.UInt
	case ctypes.BaseLong:
		return ctypes.Long
	case ctypes.BaseULong:
		return ctypes.ULong
	case ctypes.BaseLongLong:
		return ctypes.LongLong
	case ctypes.BaseULongLong:
		return ctypes.ULongLong
	case ctypes.BaseFloat:
		return ctypes.Float
	case ctypes.BaseDouble:
		return ctypes.Double
	case ctypes.BaseLongDouble:
		return ctypes.LongDouble
	default:
		return nil
	}
}

// FuncAt returns the function covering the given address, if any.
func (i *Info) FuncAt(addr uint64) (*Func, bool) {
	for j := range i.Funcs {
		f := &i.Funcs[j]
		if addr >= f.Low && addr < f.High {
			return f, true
		}
	}
	return nil, false
}

// VarAt returns the stack variable whose frame slot covers frameOff within
// the function (slot start ≤ off < slot start + type size). Register
// variables never match.
func (f *Func) VarAt(frameOff int32) (*Var, bool) {
	for j := range f.Vars {
		v := &f.Vars[j]
		if v.Loc != LocFrame {
			continue
		}
		size := int32(1)
		if v.Type != nil {
			if s := v.Type.Size(); s > 0 {
				size = int32(s)
			}
		}
		if frameOff >= v.FrameOff && frameOff < v.FrameOff+size {
			return v, true
		}
	}
	return nil, false
}
