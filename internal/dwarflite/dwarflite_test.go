package dwarflite

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ctypes"
)

func sampleInfo() *Info {
	node := ctypes.StructOf("node", ctypes.Field{Name: "v", Type: ctypes.Int})
	sizeT := ctypes.TypedefOf("size_t", ctypes.ULong)
	return &Info{
		Funcs: []Func{
			{
				Name: "main", Low: 0x401000, High: 0x401100,
				Vars: []Var{
					{Name: "argc", FrameOff: -20, Type: ctypes.Int, IsParam: true},
					{Name: "buf", FrameOff: -64, Type: ctypes.ArrayOf(ctypes.Char, 32)},
					{Name: "n", FrameOff: -24, Type: sizeT},
					{Name: "head", FrameOff: -32, Type: ctypes.PointerTo(node)},
				},
			},
			{
				Name: "helper", Low: 0x401100, High: 0x401180,
				Vars: []Var{
					{Name: "x", FrameOff: -8, Type: ctypes.Double},
					{Name: "flag", FrameOff: -9, Type: ctypes.Bool},
				},
			},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	info := sampleInfo()
	blob := info.Encode()
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(got.Funcs))
	}
	main := got.Funcs[0]
	if main.Name != "main" || main.Low != 0x401000 || main.High != 0x401100 {
		t.Errorf("main = %+v", main)
	}
	if len(main.Vars) != 4 {
		t.Fatalf("main vars = %d", len(main.Vars))
	}
	if v := main.Vars[0]; v.Name != "argc" || v.FrameOff != -20 || !v.IsParam {
		t.Errorf("argc = %+v", v)
	}
	if got := main.Vars[0].Type.String(); got != "int" {
		t.Errorf("argc type = %s", got)
	}
	if got := main.Vars[1].Type.String(); got != "char[32]" {
		t.Errorf("buf type = %s", got)
	}
	if got := main.Vars[2].Type.String(); got != "size_t" {
		t.Errorf("n type = %s", got)
	}
	if got := main.Vars[2].Type.ResolveBase(); got.Base != ctypes.BaseULong {
		t.Errorf("size_t resolves to %s", got)
	}
	if got := main.Vars[3].Type.String(); got != "struct node*" {
		t.Errorf("head type = %s", got)
	}
	// Class routing must survive the round trip.
	c, err := ctypes.ClassOf(main.Vars[3].Type)
	if err != nil || c != ctypes.ClassPtrStruct {
		t.Errorf("head class = %v, %v", c, err)
	}
}

func TestStructLayoutSurvives(t *testing.T) {
	pair := ctypes.StructOf("pair",
		ctypes.Field{Name: "c", Type: ctypes.Char},
		ctypes.Field{Name: "d", Type: ctypes.Double},
	)
	info := &Info{Funcs: []Func{{Name: "f", Vars: []Var{{Name: "p", Type: pair}}}}}
	got, err := Decode(info.Encode())
	if err != nil {
		t.Fatal(err)
	}
	gt := got.Funcs[0].Vars[0].Type
	if gt.Size() != 16 || gt.Align() != 8 {
		t.Errorf("size/align = %d/%d, want 16/8", gt.Size(), gt.Align())
	}
	if gt.Fields[1].Offset != 8 {
		t.Errorf("field offset = %d, want 8", gt.Fields[1].Offset)
	}
}

func TestCyclicStruct(t *testing.T) {
	// struct list { struct list *next; int v; } — the classic cycle.
	list := &ctypes.Type{Kind: ctypes.KindStruct, Name: "list"}
	built := ctypes.StructOf("list",
		ctypes.Field{Name: "next", Type: ctypes.PointerTo(list)},
		ctypes.Field{Name: "v", Type: ctypes.Int},
	)
	*list = *built
	// Make the cycle true: next's pointee is the struct itself.
	list.Fields[0].Type = ctypes.PointerTo(list)

	info := &Info{Funcs: []Func{{Name: "f", Vars: []Var{{Name: "l", Type: list}}}}}
	got, err := Decode(info.Encode())
	if err != nil {
		t.Fatal(err)
	}
	gt := got.Funcs[0].Vars[0].Type
	if gt.Kind != ctypes.KindStruct || len(gt.Fields) != 2 {
		t.Fatalf("decoded = %s", gt)
	}
	next := gt.Fields[0].Type
	if next.Kind != ctypes.KindPointer || next.Elem != gt {
		t.Error("cycle not preserved: next does not point back to the struct")
	}
}

func TestTypeAliasingPreserved(t *testing.T) {
	// Two variables sharing one struct type must share the decoded node.
	s := ctypes.StructOf("shared", ctypes.Field{Name: "x", Type: ctypes.Int})
	info := &Info{Funcs: []Func{{
		Name: "f",
		Vars: []Var{{Name: "a", Type: s}, {Name: "b", Type: s}},
	}}}
	got, err := Decode(info.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Funcs[0].Vars[0].Type != got.Funcs[0].Vars[1].Type {
		t.Error("shared type decoded into distinct nodes")
	}
}

func TestDecodeErrors(t *testing.T) {
	blob := sampleInfo().Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOTMAGIC rest")},
		{"truncated", blob[:len(blob)/2]},
		{"magic only", blob[:8]},
	}
	for _, tt := range cases {
		if _, err := Decode(tt.data); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error = %v, want ErrMalformed", tt.name, err)
		}
	}
}

func TestFuncAtVarAt(t *testing.T) {
	info := sampleInfo()
	f, ok := info.FuncAt(0x401050)
	if !ok || f.Name != "main" {
		t.Fatalf("FuncAt = %v, %v", f, ok)
	}
	if _, ok := info.FuncAt(0x500000); ok {
		t.Error("FuncAt out of range should miss")
	}
	// Interior byte of the char[32] at -64: offsets -64..-33.
	v, ok := f.VarAt(-50)
	if !ok || v.Name != "buf" {
		t.Errorf("VarAt(-50) = %+v, %v", v, ok)
	}
	v, ok = f.VarAt(-20)
	if !ok || v.Name != "argc" {
		t.Errorf("VarAt(-20) = %+v, %v", v, ok)
	}
	if _, ok := f.VarAt(-1000); ok {
		t.Error("VarAt far off should miss")
	}
}

func randType(r *rand.Rand, depth int) *ctypes.Type {
	bases := []*ctypes.Type{
		ctypes.Bool, ctypes.Char, ctypes.UChar, ctypes.Short, ctypes.UShort,
		ctypes.Int, ctypes.UInt, ctypes.Long, ctypes.ULong,
		ctypes.LongLong, ctypes.ULongLong, ctypes.Float, ctypes.Double, ctypes.LongDouble,
	}
	if depth <= 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(6) {
	case 0:
		return ctypes.PointerTo(randType(r, depth-1))
	case 1:
		return ctypes.ArrayOf(randType(r, depth-1), 1+r.Intn(16))
	case 2:
		n := 1 + r.Intn(3)
		fs := make([]ctypes.Field, n)
		for i := range fs {
			fs[i] = ctypes.Field{Name: "f", Type: randType(r, depth-1)}
		}
		return ctypes.StructOf("s", fs...)
	case 3:
		return ctypes.EnumOf("e")
	case 4:
		return ctypes.TypedefOf("td", randType(r, depth-1))
	default:
		return bases[r.Intn(len(bases))]
	}
}

func TestPropertyRandomInfoRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		info := &Info{}
		nf := 1 + r.Intn(5)
		for j := 0; j < nf; j++ {
			f := Func{Name: "fn", Low: uint64(j * 0x100), High: uint64(j*0x100 + 0x80)}
			nv := r.Intn(8)
			for k := 0; k < nv; k++ {
				f.Vars = append(f.Vars, Var{
					Name:     "v",
					FrameOff: int32(r.Intn(512)) - 256,
					Type:     randType(r, 3),
					IsParam:  r.Intn(2) == 0,
				})
			}
			info.Funcs = append(info.Funcs, f)
		}
		got, err := Decode(info.Encode())
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		if len(got.Funcs) != len(info.Funcs) {
			t.Fatalf("#%d: func count", i)
		}
		for j := range info.Funcs {
			wf, gf := info.Funcs[j], got.Funcs[j]
			if len(wf.Vars) != len(gf.Vars) {
				t.Fatalf("#%d fn %d: var count", i, j)
			}
			for k := range wf.Vars {
				wv, gv := wf.Vars[k], gf.Vars[k]
				if wv.Name != gv.Name || wv.FrameOff != gv.FrameOff || wv.IsParam != gv.IsParam {
					t.Fatalf("#%d: var mismatch %+v vs %+v", i, wv, gv)
				}
				if wv.Type.String() != gv.Type.String() {
					t.Fatalf("#%d: type %s vs %s", i, wv.Type, gv.Type)
				}
				if wv.Type.Size() != gv.Type.Size() {
					t.Fatalf("#%d: size %d vs %d for %s", i, wv.Type.Size(), gv.Type.Size(), wv.Type)
				}
				wc, werr := ctypes.ClassOf(wv.Type)
				gc, gerr := ctypes.ClassOf(gv.Type)
				if (werr == nil) != (gerr == nil) || wc != gc {
					t.Fatalf("#%d: class %v/%v vs %v/%v", i, wc, werr, gc, gerr)
				}
			}
		}
	}
}
