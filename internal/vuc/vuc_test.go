package vuc

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/compile"
	"repro/internal/elfx"
	"repro/internal/synth"
	"repro/internal/vareco"
)

func TestTokenizePaperExamples(t *testing.T) {
	// Table II of the paper.
	tests := []struct {
		in   asm.Inst
		want InstTok
	}{
		{asm.NewInst(asm.OpADD, 8, asm.R(asm.RAX), asm.Imm{Value: -0xD0}),
			InstTok{"add", "$-0xIMM", "%rax"}},
		{asm.NewInst(asm.OpLEA, 8, asm.R(asm.RAX), asm.MemSIB(asm.RBP, asm.R9, 4, -0x300)),
			InstTok{"lea", "-0xIMM(%rbp,%r9,4)", "%rax"}},
		{asm.NewInst(asm.OpJMP, 0, asm.Sym{Addr: 0x3bc59, Resolved: true}),
			InstTok{"jmp", "ADDR", "BLANK"}},
		{asm.NewInst(asm.OpMOV, 8, asm.MemD(asm.RSP, 0xa8), asm.Imm{Value: 0}),
			InstTok{"movq", "$0xIMM", "0xIMM(%rsp)"}},
		{asm.NewInst(asm.OpMOV, 8, asm.MemD(asm.RSP, 0xb0), asm.R(asm.RAX)),
			InstTok{"mov", "%rax", "0xIMM(%rsp)"}},
		{asm.NewInst(asm.OpLEA, 8, asm.R(asm.R15), asm.MemSIB(asm.RDI, asm.RSI, 1, 0)),
			InstTok{"lea", "(%rdi,%rsi,1)", "%r15"}},
		{asm.NewInst(asm.OpMOVSXD, 8, asm.R(asm.RSI), asm.R(asm.ESI)),
			InstTok{"movslq", "%esi", "%rsi"}},
		{asm.NewInst(asm.OpRET, 0), InstTok{"retq", "BLANK", "BLANK"}},
		{asm.NewInst(asm.OpMOVSD, 8, asm.R(asm.XMM0), asm.Mem{Scale: 1, Disp: 0x4b0000}),
			InstTok{"movsd", "0xIMM", "%xmm0"}},
	}
	for _, tt := range tests {
		in := tt.in
		got := Tokenize(&in, nil, false)
		if got != tt.want {
			t.Errorf("Tokenize(%s) = %v, want %v", asm.Print(&in), got, tt.want)
		}
	}
}

func TestTokenizeCallFuncVsBlank(t *testing.T) {
	rec := &vareco.Recovery{TextLow: 0x401000, TextHigh: 0x402000}
	// Call outside .text (library stub): name survives stripping → FUNC.
	ext := asm.NewInst(asm.OpCALL, 0, asm.Sym{Name: "memchr", Addr: 0x400400, Resolved: true})
	if got := Tokenize(&ext, rec, false); got != (InstTok{"callq", "ADDR", "FUNC"}) {
		t.Errorf("extern call = %v", got)
	}
	// Intra-text call in a stripped binary: no name → BLANK.
	loc := asm.NewInst(asm.OpCALL, 0, asm.Sym{Addr: 0x401500, Resolved: true})
	if got := Tokenize(&loc, rec, false); got != (InstTok{"callq", "ADDR", "BLANK"}) {
		t.Errorf("local call = %v", got)
	}
}

func TestTokenizeNoGeneralize(t *testing.T) {
	in := asm.NewInst(asm.OpADD, 8, asm.R(asm.RAX), asm.Imm{Value: -0xD0})
	got := Tokenize(&in, nil, true)
	if got != (InstTok{"add", "-0xd0", "%rax"}) {
		t.Errorf("raw tokens = %v", got)
	}
}

func buildRecovery(t *testing.T, seed int64, opt int) *vareco.Recovery {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("vt"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: opt, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := vareco.Recover(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestExtractShape(t *testing.T) {
	rec := buildRecovery(t, 3, 0)
	vucs := Extract(rec, Config{})
	if len(vucs) == 0 {
		t.Fatal("no VUCs")
	}
	nTargets := 0
	for _, f := range rec.Funcs {
		for _, v := range f.Vars {
			nTargets += len(v.Insts)
		}
	}
	for _, g := range rec.Globals {
		nTargets += len(g.Insts)
	}
	if len(vucs) != nTargets {
		t.Fatalf("VUC count %d != target instruction count %d", len(vucs), nTargets)
	}
	for i := range vucs {
		u := &vucs[i]
		if len(u.Tokens) != 2*DefaultWindow+1 {
			t.Fatalf("VUC length %d", len(u.Tokens))
		}
		center := u.Tokens[u.Window()]
		if center[0] == TokPad {
			t.Fatal("center instruction is padding")
		}
		// The center must reference the variable's slot.
		in := &rec.Insts[u.CenterIdx]
		m, ok := in.MemArg()
		if !ok {
			t.Fatalf("center %s has no memory operand", asm.Print(in))
		}
		_ = m
		for _, it := range u.Tokens {
			for _, tok := range it {
				if tok == "" {
					t.Fatal("empty token")
				}
			}
		}
	}
}

func TestExtractWindowSizes(t *testing.T) {
	rec := buildRecovery(t, 5, 1)
	for _, w := range []int{0, 2, 5, 10} {
		vucs := Extract(rec, Config{Window: w})
		want := 2*w + 1
		if w == 0 {
			want = 2*DefaultWindow + 1
		}
		if len(vucs) == 0 || len(vucs[0].Tokens) != want {
			t.Errorf("window %d: token rows = %d, want %d", w, len(vucs[0].Tokens), want)
		}
	}
}

func TestPaddingAtFunctionEdges(t *testing.T) {
	rec := buildRecovery(t, 7, 0)
	vucs := Extract(rec, Config{})
	padded := 0
	for i := range vucs {
		if vucs[i].Tokens[0][0] == TokPad || vucs[i].Tokens[len(vucs[i].Tokens)-1][0] == TokPad {
			padded++
		}
	}
	if padded == 0 {
		t.Error("no edge-padded VUCs — prologue/epilogue accesses should produce them")
	}
}

func TestVUCGroupingByVariable(t *testing.T) {
	rec := buildRecovery(t, 9, 0)
	vucs := Extract(rec, Config{})
	groups := make(map[VarKey]int)
	for i := range vucs {
		groups[vucs[i].Var]++
	}
	if want := rec.NumVars() + len(rec.Globals); len(groups) != want {
		t.Errorf("VUC groups = %d, recovered variables+globals = %d", len(groups), want)
	}
	globals := 0
	for k := range groups {
		if k.Global {
			globals++
		}
	}
	if globals != len(rec.Globals) {
		t.Errorf("global VUC groups = %d, want %d", globals, len(rec.Globals))
	}
	multi := 0
	for _, n := range groups {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no variable has multiple VUCs — voting would be vacuous")
	}
}

func TestKeyAndFlatTokens(t *testing.T) {
	rec := buildRecovery(t, 11, 0)
	vucs := Extract(rec, Config{Window: 2})
	u := &vucs[0]
	if len(u.FlatTokens()) != 5*TokensPerInst {
		t.Fatalf("flat tokens = %d", len(u.FlatTokens()))
	}
	if u.Key() == "" || u.CenterKey() == "" {
		t.Fatal("empty keys")
	}
	// Two identical VUCs must share keys.
	cp := *u
	if cp.Key() != u.Key() || cp.CenterKey() != u.CenterKey() {
		t.Error("key not deterministic")
	}
}

func TestUncertainSamplesOccur(t *testing.T) {
	// Across a few binaries, different variables must produce colliding
	// generalized center instructions — the paper's uncertain samples.
	centers := make(map[string]map[VarKey]bool)
	for seed := int64(0); seed < 4; seed++ {
		rec := buildRecovery(t, seed, 0)
		for _, u := range Extract(rec, Config{}) {
			k := u.CenterKey()
			if centers[k] == nil {
				centers[k] = make(map[VarKey]bool)
			}
			centers[k][u.Var] = true
		}
	}
	collisions := 0
	for _, vars := range centers {
		if len(vars) > 1 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Error("no colliding generalized target instructions across variables")
	}
}

// TestPropertyTokenizeInvariants: for random encodable instructions, the
// generalized form always has a non-empty mnemonic, exactly three token
// slots, and no concrete hex constants surviving generalization.
func TestPropertyTokenizeInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	hexDigit := func(b byte) bool {
		return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f')
	}
	for i := 0; i < 5000; i++ {
		in := randomInst(r)
		tok := Tokenize(&in, nil, false)
		if tok[0] == "" || tok[1] == "" || tok[2] == "" {
			t.Fatalf("empty token in %v for %s", tok, asm.Print(&in))
		}
		for _, s := range tok[1:] {
			// After generalization the only "0x" occurrences are the IMM
			// marker; nothing like 0x1f4 may survive.
			for j := 0; j+2 < len(s); j++ {
				if s[j] == '0' && s[j+1] == 'x' && j+2 < len(s) && hexDigit(s[j+2]) {
					t.Fatalf("concrete constant survived generalization: %q (from %s)", s, asm.Print(&in))
				}
			}
		}
	}
}

// randomInst builds a random instruction with concrete operands.
func randomInst(r *rand.Rand) asm.Inst {
	regs := []asm.Reg{asm.RAX, asm.RCX, asm.RDX, asm.RSI, asm.RDI, asm.R8, asm.R9}
	mem := func() asm.Mem {
		if r.Intn(2) == 0 {
			return asm.MemD(regs[r.Intn(len(regs))], int32(r.Intn(1<<12))-1<<11)
		}
		return asm.MemSIB(regs[r.Intn(len(regs))], regs[r.Intn(len(regs))],
			[]uint8{1, 2, 4, 8}[r.Intn(4)], int32(r.Intn(1<<10)))
	}
	switch r.Intn(6) {
	case 0:
		return asm.NewInst(asm.OpMOV, 8, asm.R(regs[r.Intn(len(regs))]), mem())
	case 1:
		return asm.NewInst(asm.OpMOV, 4, mem(), asm.Imm{Value: int64(r.Intn(1 << 16))})
	case 2:
		return asm.NewInst(asm.OpADD, 8, asm.R(regs[r.Intn(len(regs))]), asm.Imm{Value: -int64(r.Intn(1 << 10))})
	case 3:
		return asm.NewInst(asm.OpLEA, 8, asm.R(regs[r.Intn(len(regs))]), mem())
	case 4:
		return asm.NewInst(asm.OpCALL, 0, asm.Sym{Addr: uint64(r.Intn(1 << 24)), Resolved: true})
	default:
		return asm.NewInst(asm.OpJNE, 0, asm.Sym{Addr: uint64(r.Intn(1 << 24)), Resolved: true})
	}
}
