package vuc

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/elfx"
	"repro/internal/synth"
	"repro/internal/vareco"
)

// Tokenization itself (Table II cases, FUNC/BLANK call targets, the
// no-generalize ablation, property invariants) is architecture-specific and
// tested in internal/isa/x86; this file covers the ISA-neutral window
// assembly, keys, and grouping.

func buildRecovery(t *testing.T, seed int64, opt int) *vareco.Recovery {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("vt"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: opt, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := vareco.Recover(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestExtractShape(t *testing.T) {
	rec := buildRecovery(t, 3, 0)
	vucs := Extract(rec, Config{})
	if len(vucs) == 0 {
		t.Fatal("no VUCs")
	}
	nTargets := 0
	for _, f := range rec.Funcs {
		for _, v := range f.Vars {
			nTargets += len(v.Insts)
		}
	}
	for _, g := range rec.Globals {
		nTargets += len(g.Insts)
	}
	if len(vucs) != nTargets {
		t.Fatalf("VUC count %d != target instruction count %d", len(vucs), nTargets)
	}
	for i := range vucs {
		u := &vucs[i]
		if len(u.Tokens) != 2*DefaultWindow+1 {
			t.Fatalf("VUC length %d", len(u.Tokens))
		}
		center := u.Tokens[u.Window()]
		if center[0] == TokPad {
			t.Fatal("center instruction is padding")
		}
		// The center must reference the variable's slot (stack vars) or an
		// absolute address (globals).
		in := rec.Insts[u.CenterIdx]
		if _, ok := in.MemArg(); !ok {
			t.Fatalf("center %s has no memory operand", in.Text())
		}
		for _, it := range u.Tokens {
			for _, tok := range it {
				if tok == "" {
					t.Fatal("empty token")
				}
			}
		}
	}
}

func TestExtractWindowSizes(t *testing.T) {
	rec := buildRecovery(t, 5, 1)
	for _, w := range []int{0, 2, 5, 10} {
		vucs := Extract(rec, Config{Window: w})
		want := 2*w + 1
		if w == 0 {
			want = 2*DefaultWindow + 1
		}
		if len(vucs) == 0 || len(vucs[0].Tokens) != want {
			t.Errorf("window %d: token rows = %d, want %d", w, len(vucs[0].Tokens), want)
		}
	}
}

func TestPaddingAtFunctionEdges(t *testing.T) {
	rec := buildRecovery(t, 7, 0)
	vucs := Extract(rec, Config{})
	padded := 0
	for i := range vucs {
		if vucs[i].Tokens[0][0] == TokPad || vucs[i].Tokens[len(vucs[i].Tokens)-1][0] == TokPad {
			padded++
		}
	}
	if padded == 0 {
		t.Error("no edge-padded VUCs — prologue/epilogue accesses should produce them")
	}
}

func TestVUCGroupingByVariable(t *testing.T) {
	rec := buildRecovery(t, 9, 0)
	vucs := Extract(rec, Config{})
	groups := make(map[VarKey]int)
	for i := range vucs {
		groups[vucs[i].Var]++
	}
	if want := rec.NumVars() + len(rec.Globals); len(groups) != want {
		t.Errorf("VUC groups = %d, recovered variables+globals = %d", len(groups), want)
	}
	globals := 0
	for k := range groups {
		if k.Global {
			globals++
		}
	}
	if globals != len(rec.Globals) {
		t.Errorf("global VUC groups = %d, want %d", globals, len(rec.Globals))
	}
	multi := 0
	for _, n := range groups {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no variable has multiple VUCs — voting would be vacuous")
	}
}

func TestKeyAndFlatTokens(t *testing.T) {
	rec := buildRecovery(t, 11, 0)
	vucs := Extract(rec, Config{Window: 2})
	u := &vucs[0]
	if len(u.FlatTokens()) != 5*TokensPerInst {
		t.Fatalf("flat tokens = %d", len(u.FlatTokens()))
	}
	if u.Key() == "" || u.CenterKey() == "" {
		t.Fatal("empty keys")
	}
	// Two identical VUCs must share keys.
	cp := *u
	if cp.Key() != u.Key() || cp.CenterKey() != u.CenterKey() {
		t.Error("key not deterministic")
	}
}

func TestUncertainSamplesOccur(t *testing.T) {
	// Across a few binaries, different variables must produce colliding
	// generalized center instructions — the paper's uncertain samples.
	centers := make(map[string]map[VarKey]bool)
	for seed := int64(0); seed < 4; seed++ {
		rec := buildRecovery(t, seed, 0)
		for _, u := range Extract(rec, Config{}) {
			k := u.CenterKey()
			if centers[k] == nil {
				centers[k] = make(map[VarKey]bool)
			}
			centers[k][u.Var] = true
		}
	}
	collisions := 0
	for _, vars := range centers {
		if len(vars) > 1 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Error("no colliding generalized target instructions across variables")
	}
}
