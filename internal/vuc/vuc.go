// Package vuc implements the paper's central feature: the Variable Usage
// Context. A VUC is the target instruction that operates a variable plus a
// window of w instructions before and after it (§II-A, w=10 → 21
// instructions). Each instruction is generalized (§IV-B) — immediates
// become 0xIMM, code addresses become ADDR, known callee names become FUNC,
// missing operands are padded with BLANK — and rendered as exactly three
// tokens: mnemonic, operand 1, operand 2.
//
// Generalization itself is architecture-specific and lives behind the
// internal/isa instruction interface; this layer only assembles windows
// and keys, which is what makes the representation ISA-neutral.
package vuc

import (
	"strings"

	"repro/internal/isa"
	"repro/internal/vareco"
)

// DefaultWindow is the paper's context window size w.
const DefaultWindow = 10

// TokensPerInst is the fixed token count per instruction (mnemonic + two
// operand slots).
const TokensPerInst = 3

// Generalization tokens.
const (
	TokBlank = "BLANK"
	TokAddr  = "ADDR"
	TokFunc  = "FUNC"
	TokPad   = "PAD" // mnemonic slot of padding beyond function bounds
)

// InstTok is one generalized instruction: [mnemonic, op1, op2].
type InstTok [TokensPerInst]string

// PadInst fills window positions outside the function.
func PadInst() InstTok { return InstTok{TokPad, TokBlank, TokBlank} }

// VarKey identifies a recovered variable. Stack variables are keyed by
// their owning function's entry address and frame slot; globals by their
// absolute address (with Global set and Slot zero).
type VarKey struct {
	FuncLow uint64
	Slot    int32
	Global  bool
}

// GlobalKey builds the key of a global variable.
func GlobalKey(addr uint64) VarKey { return VarKey{FuncLow: addr, Global: true} }

// VUC is one extracted variable usage context.
type VUC struct {
	// Tokens has 2w+1 entries; the center (index w) is the target
	// instruction.
	Tokens []InstTok
	// Var identifies the variable this VUC belongs to (VUCs of one
	// variable vote together).
	Var VarKey
	// CenterIdx is the target instruction's index in the recovery stream.
	CenterIdx int
}

// Window returns w (Tokens has 2w+1 entries).
func (v *VUC) Window() int { return (len(v.Tokens) - 1) / 2 }

// FlatTokens returns all tokens in order, for embedding training.
func (v *VUC) FlatTokens() []string {
	out := make([]string, 0, len(v.Tokens)*TokensPerInst)
	for _, it := range v.Tokens {
		out = append(out, it[0], it[1], it[2])
	}
	return out
}

// Key returns a deduplication key: the concatenated token string. VUCs
// with equal keys are indistinguishable to the classifier — the paper's
// "uncertain samples" are variables whose VUCs collide under this key while
// carrying different types.
func (v *VUC) Key() string {
	var sb strings.Builder
	for _, it := range v.Tokens {
		sb.WriteString(it[0])
		sb.WriteByte('|')
		sb.WriteString(it[1])
		sb.WriteByte('|')
		sb.WriteString(it[2])
		sb.WriteByte(';')
	}
	return sb.String()
}

// CenterKey returns the generalized target instruction alone — the paper's
// Table I counts uncertain samples among orphan variables by their 1–2
// target instructions.
func (v *VUC) CenterKey() string {
	it := v.Tokens[v.Window()]
	return it[0] + "|" + it[1] + "|" + it[2]
}

// Config controls extraction.
type Config struct {
	// Window is w; 0 means DefaultWindow.
	Window int
	// NoGeneralize disables operand generalization (ablation).
	NoGeneralize bool
}

// Extract produces every VUC of every recovered variable: one VUC per
// target instruction, windowed within the owning function and padded at
// its edges.
func Extract(rec *vareco.Recovery, cfg Config) []VUC {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	// Tokenize the whole stream once.
	toks := make([]InstTok, len(rec.Insts))
	for i := range rec.Insts {
		toks[i] = Tokenize(rec.Insts[i], rec, cfg.NoGeneralize)
	}
	window := func(key VarKey, center, lo, hi int) VUC {
		u := VUC{
			Tokens:    make([]InstTok, 2*w+1),
			Var:       key,
			CenterIdx: center,
		}
		for j := -w; j <= w; j++ {
			pos := center + j
			if pos < lo || pos >= hi {
				u.Tokens[j+w] = PadInst()
			} else {
				u.Tokens[j+w] = toks[pos]
			}
		}
		return u
	}

	var out []VUC
	for fi := range rec.Funcs {
		f := &rec.Funcs[fi]
		for vi := range f.Vars {
			v := &f.Vars[vi]
			key := VarKey{FuncLow: f.Low, Slot: v.Slot}
			for _, instIdx := range v.Insts {
				out = append(out, window(key, instIdx, f.InstLo, f.InstHi))
			}
		}
	}
	// Global variables: each access windows within its containing
	// function.
	for gi := range rec.Globals {
		g := &rec.Globals[gi]
		key := GlobalKey(g.Addr)
		for _, instIdx := range g.Insts {
			lo, hi := 0, len(rec.Insts)
			if f, ok := rec.FuncAt(rec.Insts[instIdx].Addr()); ok {
				lo, hi = f.InstLo, f.InstHi
			}
			out = append(out, window(key, instIdx, lo, hi))
		}
	}
	return out
}

// Tokenize generalizes one instruction into its three tokens via the
// architecture's renderer. rec supplies the text bounds for ADDR/FUNC
// classification of branch targets; it may be nil, in which case all
// branch targets are ADDR+BLANK.
func Tokenize(in isa.Inst, rec *vareco.Recovery, noGeneralize bool) InstTok {
	tc := isa.TokenContext{NoGeneralize: noGeneralize}
	if rec != nil {
		tc.InText = rec.InText
	}
	return InstTok(in.Tokens(&tc))
}
