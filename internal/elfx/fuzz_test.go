package elfx

import (
	"encoding/binary"
	"errors"
	"testing"
)

// hostileImage returns a valid image with a targeted corruption applied,
// for overflow regression tests and fuzz seeds.
func hostileImage(t testing.TB, corrupt func(img []byte)) []byte {
	t.Helper()
	img, err := Write(sampleBinary())
	if err != nil {
		t.Fatal(err)
	}
	img = append([]byte(nil), img...)
	corrupt(img)
	return img
}

// shoffOf reads the section-header-table offset from an image's ELF
// header (e_shoff lives at byte 40).
func shoffOf(img []byte) uint64 {
	return binary.LittleEndian.Uint64(img[40:])
}

// TestReadHostile pins parser crashes found by fuzzing as typed errors:
// each of these images once drove Read into an out-of-bounds slice via
// unsigned-sum wraparound, and must now be rejected with ErrMalformed.
func TestReadHostile(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(img []byte)
	}{
		{"shoff wraps past 2^64", func(img []byte) {
			// shoff + shnum*shSize wraps back below len(img).
			binary.LittleEndian.PutUint64(img[40:], ^uint64(0)-shSize+1)
		}},
		{"shoff just past end", func(img []byte) {
			binary.LittleEndian.PutUint64(img[40:], uint64(len(img))+1)
		}},
		{"section off+size wraps", func(img []byte) {
			// Section header 1's off/size fields sum past 2^64, so the
			// naive bound off+size <= len held while data[off:off+size]
			// exploded.
			sh := shoffOf(img) + 1*shSize
			binary.LittleEndian.PutUint64(img[sh+24:], ^uint64(0)-0xFF) // sh_offset
			binary.LittleEndian.PutUint64(img[sh+32:], 0x200)           // sh_size
		}},
		{"section size past end", func(img []byte) {
			sh := shoffOf(img) + 1*shSize
			binary.LittleEndian.PutUint64(img[sh+32:], uint64(len(img))+1)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := hostileImage(t, tt.corrupt)
			if _, err := Read(img); !errors.Is(err, ErrMalformed) {
				t.Fatalf("error = %v, want ErrMalformed", err)
			}
		})
	}
}

// FuzzElfRead throws arbitrary bytes at the ELF reader: any input may be
// rejected, none may panic. Accepted images must survive the symbol and
// section accessors that inference uses.
func FuzzElfRead(f *testing.F) {
	valid, err := Write(sampleBinary())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	f.Add(hostileImage(f, func(img []byte) {
		binary.LittleEndian.PutUint64(img[40:], ^uint64(0)-shSize+1)
	}))
	f.Add(hostileImage(f, func(img []byte) {
		sh := shoffOf(img) + 1*shSize
		binary.LittleEndian.PutUint64(img[sh+24:], ^uint64(0)-0xFF)
		binary.LittleEndian.PutUint64(img[sh+32:], 0x200)
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(data)
		if err != nil {
			return
		}
		// A parsed binary must be safe to interrogate.
		_ = b.IsStripped()
		for _, s := range b.Sections {
			_, _ = b.Section(s.Name)
		}
		for _, sym := range b.Symbols {
			_, _ = b.SymbolAt(sym.Addr)
		}
		_, _ = b.Text()
	})
}
