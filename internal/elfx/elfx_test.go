package elfx

import (
	"bytes"
	"debug/elf"
	"errors"
	"math/rand"
	"testing"
)

func sampleBinary() *Binary {
	return &Binary{
		Entry: 0x401000,
		Sections: []Section{
			{Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr,
				Addr: 0x401000, Data: []byte{0x55, 0x48, 0x89, 0xE5, 0xC9, 0xC3}},
			{Name: ".debug_cati", Type: SHTProgbits, Data: []byte("debug-blob")},
		},
		Symbols: []Symbol{
			{Name: "main", Addr: 0x401000, Size: 6, Kind: SymFunc},
			{Name: "helper", Addr: 0x401006, Size: 0, Kind: SymFunc},
			{Name: "global_buf", Addr: 0x601000, Size: 64, Kind: SymObject},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := sampleBinary()
	img, err := Write(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != b.Entry {
		t.Errorf("entry %#x, want %#x", got.Entry, b.Entry)
	}
	text, err := got.Text()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text.Data, b.Sections[0].Data) {
		t.Errorf("text = % x", text.Data)
	}
	if text.Addr != 0x401000 || text.Flags != SHFAlloc|SHFExecinstr {
		t.Errorf("text metadata: %+v", text)
	}
	dbg, err := got.Section(".debug_cati")
	if err != nil {
		t.Fatal(err)
	}
	if string(dbg.Data) != "debug-blob" {
		t.Errorf("debug = %q", dbg.Data)
	}
	if len(got.Symbols) != 3 {
		t.Fatalf("symbols = %d, want 3", len(got.Symbols))
	}
	for i, want := range b.Symbols {
		if got.Symbols[i] != want {
			t.Errorf("symbol %d = %+v, want %+v", i, got.Symbols[i], want)
		}
	}
}

// TestStdlibCompat verifies the emitted image is real ELF by parsing it
// with the Go standard library's debug/elf.
func TestStdlibCompat(t *testing.T) {
	img, err := Write(sampleBinary())
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("debug/elf rejected our image: %v", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_X86_64 || f.Class != elf.ELFCLASS64 {
		t.Errorf("machine/class: %v/%v", f.Machine, f.Class)
	}
	sec := f.Section(".text")
	if sec == nil {
		t.Fatal("no .text in stdlib view")
	}
	data, err := sec.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, sampleBinary().Sections[0].Data) {
		t.Errorf(".text mismatch via stdlib")
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != 3 {
		t.Fatalf("stdlib sees %d symbols, want 3", len(syms))
	}
	if syms[0].Name != "main" || elf.ST_TYPE(syms[0].Info) != elf.STT_FUNC {
		t.Errorf("symbol 0 = %+v", syms[0])
	}
}

func TestStrip(t *testing.T) {
	b := sampleBinary()
	if b.IsStripped() {
		t.Fatal("sample should not be stripped")
	}
	s := Strip(b)
	if !s.IsStripped() {
		t.Fatal("Strip result should be stripped")
	}
	if len(s.Symbols) != 0 {
		t.Errorf("symbols remain: %d", len(s.Symbols))
	}
	if _, err := s.Section(".debug_cati"); !errors.Is(err, ErrNoSection) {
		t.Errorf("debug section remains: %v", err)
	}
	if _, err := s.Text(); err != nil {
		t.Errorf("text vanished: %v", err)
	}
	// Original must be untouched.
	if len(b.Symbols) != 3 {
		t.Error("Strip mutated the original")
	}
	// A stripped write/read round trip stays stripped.
	img, err := Write(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsStripped() {
		t.Error("stripped binary came back unstripped")
	}
}

func TestStripDeepCopiesData(t *testing.T) {
	b := sampleBinary()
	s := Strip(b)
	text, err := s.Text()
	if err != nil {
		t.Fatal(err)
	}
	text.Data[0] = 0xCC
	orig, _ := b.Text()
	if orig.Data[0] == 0xCC {
		t.Error("Strip shares section data with the original")
	}
}

func TestSymbolQueries(t *testing.T) {
	b := sampleBinary()
	funcs := b.FuncSymbols()
	if len(funcs) != 2 || funcs[0].Name != "main" || funcs[1].Name != "helper" {
		t.Errorf("FuncSymbols = %+v", funcs)
	}
	sym, ok := b.SymbolAt(0x401003)
	if !ok || sym.Name != "main" {
		t.Errorf("SymbolAt inside main = %+v, %v", sym, ok)
	}
	if _, ok := b.SymbolAt(0x401006); ok {
		t.Error("SymbolAt on zero-size symbol should miss")
	}
	if _, ok := b.SymbolAt(0x999999); ok {
		t.Error("SymbolAt out of range should miss")
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotELF},
		{"short", []byte{0x7F, 'E', 'L', 'F'}, ErrNotELF},
		{"bad magic", bytes.Repeat([]byte{0}, 128), ErrNotELF},
		{"32-bit", append([]byte{0x7F, 'E', 'L', 'F', 1, 1}, make([]byte, 128)...), ErrNotELF},
	}
	for _, tt := range tests {
		if _, err := Read(tt.data); !errors.Is(err, tt.want) {
			t.Errorf("%s: error = %v, want %v", tt.name, err, tt.want)
		}
	}
}

func TestReadMalformedHeaderTable(t *testing.T) {
	img, err := Write(sampleBinary())
	if err != nil {
		t.Fatal(err)
	}
	// Point the section header table past the end.
	bad := append([]byte(nil), img...)
	bad[40] = 0xFF
	bad[41] = 0xFF
	bad[42] = 0xFF
	if _, err := Read(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("error = %v, want ErrMalformed", err)
	}
}

func TestPropertyRoundTripRandomBinaries(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		b := &Binary{Entry: uint64(r.Intn(1 << 30))}
		nsec := 1 + r.Intn(4)
		for j := 0; j < nsec; j++ {
			data := make([]byte, r.Intn(512))
			r.Read(data)
			b.Sections = append(b.Sections, Section{
				Name: string(rune('a'+j)) + "section",
				Type: SHTProgbits,
				Addr: uint64(r.Intn(1 << 20)),
				Data: data,
			})
		}
		nsym := r.Intn(8)
		for j := 0; j < nsym; j++ {
			b.Symbols = append(b.Symbols, Symbol{
				Name: "sym" + string(rune('0'+j)),
				Addr: uint64(r.Intn(1 << 20)),
				Size: uint64(r.Intn(100)),
				Kind: []byte{SymFunc, SymObject}[r.Intn(2)],
			})
		}
		img, err := Write(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(img)
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		if got.Entry != b.Entry || len(got.Sections) != len(b.Sections) || len(got.Symbols) != len(b.Symbols) {
			t.Fatalf("#%d: shape mismatch", i)
		}
		for j := range b.Sections {
			if got.Sections[j].Name != b.Sections[j].Name ||
				!bytes.Equal(got.Sections[j].Data, b.Sections[j].Data) {
				t.Fatalf("#%d: section %d mismatch", i, j)
			}
		}
		for j := range b.Symbols {
			if got.Symbols[j] != b.Symbols[j] {
				t.Fatalf("#%d: symbol %d mismatch", i, j)
			}
		}
	}
}
