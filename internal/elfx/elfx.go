// Package elfx is a minimal ELF64 container: enough of the real ELF object
// format to write a linked binary with .text, symbol table and debug
// sections, read it back, and strip it the way `strip` does (removing
// symbols and debug information). CATI's inference side consumes stripped
// binaries produced by this package; the training side reads the unstripped
// ones to label ground truth.
package elfx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Section types (subset of the ELF spec).
const (
	SHTNull     uint32 = 0
	SHTProgbits uint32 = 1
	SHTSymtab   uint32 = 2
	SHTStrtab   uint32 = 3
)

// Section flags.
const (
	SHFAlloc     uint64 = 0x2
	SHFExecinstr uint64 = 0x4
)

// Symbol kinds (ELF st_info type nibble).
const (
	SymObject byte = 1
	SymFunc   byte = 2
)

// Section is a named section with its virtual address and contents.
type Section struct {
	Name  string
	Type  uint32
	Flags uint64
	Addr  uint64
	Data  []byte
}

// Symbol is a symbol-table entry.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
	Kind byte // SymObject or SymFunc
}

// ELF machine numbers (e_machine) for the architectures the toolchain
// knows about.
const (
	EMX86_64 uint16 = 62
	EMRISCV  uint16 = 243
)

// Binary is an in-memory ELF64 executable image.
type Binary struct {
	Entry uint64
	// Machine is the ELF e_machine value. Zero is treated as EMX86_64
	// everywhere for compatibility with images built before the field
	// existed.
	Machine  uint16
	Sections []Section
	Symbols  []Symbol
}

// Errors returned by the reader.
var (
	ErrNotELF    = errors.New("elfx: not an ELF64 little-endian file")
	ErrMalformed = errors.New("elfx: malformed ELF structure")
	ErrNoSection = errors.New("elfx: section not found")
	// ErrUnsupportedMachine reports an e_machine value no registered
	// architecture handles; analysis must refuse rather than decode
	// foreign machine code as x86.
	ErrUnsupportedMachine = errors.New("elfx: unsupported machine architecture")
)

// Section returns the named section, or ErrNoSection.
func (b *Binary) Section(name string) (*Section, error) {
	for i := range b.Sections {
		if b.Sections[i].Name == name {
			return &b.Sections[i], nil
		}
	}
	return nil, fmt.Errorf("%q: %w", name, ErrNoSection)
}

// Text returns the .text section.
func (b *Binary) Text() (*Section, error) { return b.Section(".text") }

// FuncSymbols returns the function symbols sorted by address.
func (b *Binary) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range b.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolAt returns the symbol covering addr, if any.
func (b *Binary) SymbolAt(addr uint64) (Symbol, bool) {
	for _, s := range b.Symbols {
		if addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// IsStripped reports whether the binary carries neither a symbol table nor
// debug sections.
func (b *Binary) IsStripped() bool {
	if len(b.Symbols) > 0 {
		return false
	}
	for _, s := range b.Sections {
		if isDebugName(s.Name) {
			return false
		}
	}
	return true
}

func isDebugName(name string) bool {
	return len(name) >= 7 && name[:7] == ".debug_"
}

// Strip returns a copy of the binary with the symbol table and all debug
// sections removed, mirroring `strip --strip-all`.
func Strip(b *Binary) *Binary {
	out := &Binary{Entry: b.Entry, Machine: b.Machine}
	for _, s := range b.Sections {
		if isDebugName(s.Name) || s.Name == ".symtab" || s.Name == ".strtab" {
			continue
		}
		cp := s
		cp.Data = append([]byte(nil), s.Data...)
		out.Sections = append(out.Sections, cp)
	}
	return out
}

// ELF64 fixed sizes.
const (
	ehSize  = 64
	shSize  = 64
	symSize = 24
)

// Write serializes the binary as a little-endian ELF64 executable image:
// ELF header, section contents, then the section header table. A symbol
// table, when present, becomes real .symtab/.strtab sections.
func Write(b *Binary) ([]byte, error) {
	type rawSection struct {
		Section
		nameOff uint32
		dataOff uint64
	}

	sections := make([]rawSection, 0, len(b.Sections)+3)
	sections = append(sections, rawSection{Section: Section{Name: "", Type: SHTNull}})
	for _, s := range b.Sections {
		sections = append(sections, rawSection{Section: s})
	}

	// Synthesize .symtab/.strtab from the symbol list.
	var symtabIdx, strtabIdx int
	if len(b.Symbols) > 0 {
		strtab := []byte{0}
		nameOffs := make([]uint32, len(b.Symbols))
		for i, sym := range b.Symbols {
			nameOffs[i] = uint32(len(strtab))
			strtab = append(strtab, sym.Name...)
			strtab = append(strtab, 0)
		}
		symtab := make([]byte, symSize) // index 0: null symbol
		for i, sym := range b.Symbols {
			ent := make([]byte, symSize)
			binary.LittleEndian.PutUint32(ent[0:], nameOffs[i])
			ent[4] = 1<<4 | sym.Kind // STB_GLOBAL
			binary.LittleEndian.PutUint16(ent[6:], 1)
			binary.LittleEndian.PutUint64(ent[8:], sym.Addr)
			binary.LittleEndian.PutUint64(ent[16:], sym.Size)
			symtab = append(symtab, ent...)
		}
		symtabIdx = len(sections)
		strtabIdx = symtabIdx + 1
		sections = append(sections,
			rawSection{Section: Section{Name: ".symtab", Type: SHTSymtab, Data: symtab}},
			rawSection{Section: Section{Name: ".strtab", Type: SHTStrtab, Data: strtab}},
		)
	}

	// Section-header string table, always last.
	shstr := []byte{0}
	shstrIdx := len(sections)
	sections = append(sections, rawSection{Section: Section{Name: ".shstrtab", Type: SHTStrtab}})
	for i := range sections {
		if sections[i].Name == "" {
			continue
		}
		sections[i].nameOff = uint32(len(shstr))
		shstr = append(shstr, sections[i].Name...)
		shstr = append(shstr, 0)
	}
	sections[shstrIdx].Data = shstr

	// Lay out section data after the ELF header.
	var buf bytes.Buffer
	buf.Write(make([]byte, ehSize))
	for i := range sections {
		if sections[i].Type == SHTNull || len(sections[i].Data) == 0 {
			continue
		}
		// Align section data to 8.
		for buf.Len()%8 != 0 {
			buf.WriteByte(0)
		}
		sections[i].dataOff = uint64(buf.Len())
		buf.Write(sections[i].Data)
	}
	for buf.Len()%8 != 0 {
		buf.WriteByte(0)
	}
	shoff := uint64(buf.Len())

	// Section header table.
	for i := range sections {
		sh := make([]byte, shSize)
		s := &sections[i]
		binary.LittleEndian.PutUint32(sh[0:], s.nameOff)
		binary.LittleEndian.PutUint32(sh[4:], s.Type)
		binary.LittleEndian.PutUint64(sh[8:], s.Flags)
		binary.LittleEndian.PutUint64(sh[16:], s.Addr)
		binary.LittleEndian.PutUint64(sh[24:], s.dataOff)
		binary.LittleEndian.PutUint64(sh[32:], uint64(len(s.Data)))
		if s.Type == SHTSymtab {
			binary.LittleEndian.PutUint32(sh[40:], uint32(strtabIdx)) // sh_link
			binary.LittleEndian.PutUint32(sh[44:], 1)                 // sh_info
			binary.LittleEndian.PutUint64(sh[56:], symSize)           // sh_entsize
		}
		buf.Write(sh)
	}

	out := buf.Bytes()

	// ELF header.
	copy(out[0:], []byte{0x7F, 'E', 'L', 'F', 2, 1, 1, 0})
	binary.LittleEndian.PutUint16(out[16:], 2) // e_type = ET_EXEC
	machine := b.Machine
	if machine == 0 {
		machine = EMX86_64
	}
	binary.LittleEndian.PutUint16(out[18:], machine) // e_machine
	binary.LittleEndian.PutUint32(out[20:], 1)       // e_version
	binary.LittleEndian.PutUint64(out[24:], b.Entry)
	binary.LittleEndian.PutUint64(out[40:], shoff)
	binary.LittleEndian.PutUint16(out[52:], ehSize)
	binary.LittleEndian.PutUint16(out[58:], shSize)
	binary.LittleEndian.PutUint16(out[60:], uint16(len(sections)))
	binary.LittleEndian.PutUint16(out[62:], uint16(shstrIdx))
	_ = symtabIdx
	return out, nil
}

// Read parses an ELF64 image produced by Write (or any little-endian ELF64
// with standard section headers).
func Read(data []byte) (*Binary, error) {
	if len(data) < ehSize || !bytes.Equal(data[:4], []byte{0x7F, 'E', 'L', 'F'}) {
		return nil, ErrNotELF
	}
	if data[4] != 2 || data[5] != 1 {
		return nil, ErrNotELF
	}
	b := &Binary{
		Entry:   binary.LittleEndian.Uint64(data[24:]),
		Machine: binary.LittleEndian.Uint16(data[18:]),
	}
	shoff := binary.LittleEndian.Uint64(data[40:])
	shnum := int(binary.LittleEndian.Uint16(data[60:]))
	shstrndx := int(binary.LittleEndian.Uint16(data[62:]))

	// shoff comes straight from the (possibly hostile) image, so the bound
	// must be overflow-safe: shoff near 2^64 would wrap a naive
	// shoff+shnum*shSize sum back into range.
	if shoff > uint64(len(data)) || uint64(shnum)*shSize > uint64(len(data))-shoff {
		return nil, fmt.Errorf("section header table out of bounds: %w", ErrMalformed)
	}

	type rawSH struct {
		nameOff   uint32
		typ       uint32
		flags     uint64
		addr      uint64
		off, size uint64
		link      uint32
	}
	shs := make([]rawSH, shnum)
	for i := 0; i < shnum; i++ {
		sh := data[shoff+uint64(i)*shSize:]
		shs[i] = rawSH{
			nameOff: binary.LittleEndian.Uint32(sh[0:]),
			typ:     binary.LittleEndian.Uint32(sh[4:]),
			flags:   binary.LittleEndian.Uint64(sh[8:]),
			addr:    binary.LittleEndian.Uint64(sh[16:]),
			off:     binary.LittleEndian.Uint64(sh[24:]),
			size:    binary.LittleEndian.Uint64(sh[32:]),
			link:    binary.LittleEndian.Uint32(sh[40:]),
		}
	}
	if shstrndx >= shnum {
		return nil, fmt.Errorf("shstrndx out of range: %w", ErrMalformed)
	}
	sectionData := func(i int) ([]byte, error) {
		s := shs[i]
		if s.typ == SHTNull {
			return nil, nil
		}
		// Overflow-safe: off and size are attacker-controlled uint64s whose
		// sum can wrap past the image length.
		if s.off > uint64(len(data)) || s.size > uint64(len(data))-s.off {
			return nil, fmt.Errorf("section %d data out of bounds: %w", i, ErrMalformed)
		}
		return data[s.off : s.off+s.size], nil
	}
	shstr, err := sectionData(shstrndx)
	if err != nil {
		return nil, err
	}
	name := func(off uint32, table []byte) (string, error) {
		if int(off) >= len(table) {
			return "", fmt.Errorf("string offset %d out of range: %w", off, ErrMalformed)
		}
		end := bytes.IndexByte(table[off:], 0)
		if end < 0 {
			return "", fmt.Errorf("unterminated string: %w", ErrMalformed)
		}
		return string(table[off : off+uint32(end)]), nil
	}

	var symtabData, strtabData []byte
	for i := 1; i < shnum; i++ {
		d, err := sectionData(i)
		if err != nil {
			return nil, err
		}
		n, err := name(shs[i].nameOff, shstr)
		if err != nil {
			return nil, err
		}
		switch {
		case shs[i].typ == SHTSymtab:
			symtabData = d
			if int(shs[i].link) < shnum {
				strtabData, err = sectionData(int(shs[i].link))
				if err != nil {
					return nil, err
				}
			}
		case n == ".shstrtab" || n == ".strtab":
			// String tables are reconstructed, not retained.
		default:
			b.Sections = append(b.Sections, Section{
				Name:  n,
				Type:  shs[i].typ,
				Flags: shs[i].flags,
				Addr:  shs[i].addr,
				Data:  append([]byte(nil), d...),
			})
		}
	}

	if symtabData != nil {
		if len(symtabData)%symSize != 0 {
			return nil, fmt.Errorf("symtab size %d: %w", len(symtabData), ErrMalformed)
		}
		for off := symSize; off+symSize <= len(symtabData); off += symSize {
			ent := symtabData[off:]
			nameOff := binary.LittleEndian.Uint32(ent[0:])
			sname, err := name(nameOff, strtabData)
			if err != nil {
				return nil, err
			}
			b.Symbols = append(b.Symbols, Symbol{
				Name: sname,
				Kind: ent[4] & 0xF,
				Addr: binary.LittleEndian.Uint64(ent[8:]),
				Size: binary.LittleEndian.Uint64(ent[16:]),
			})
		}
	}
	return b, nil
}
