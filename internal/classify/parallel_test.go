package classify

import (
	"sync"
	"testing"

	"repro/internal/word2vec"
)

// TestW2VSeedRespected is the regression test for WithDefaults clobbering
// a caller-provided embedding seed: only a zero W2V.Seed may be derived
// from the pipeline seed.
func TestW2VSeedRespected(t *testing.T) {
	got := Config{Seed: 5, W2V: word2vec.Config{Seed: 123}}.WithDefaults()
	if got.W2V.Seed != 123 {
		t.Errorf("caller W2V.Seed overwritten: got %d, want 123", got.W2V.Seed)
	}
	derived := Config{Seed: 5}.WithDefaults()
	if derived.W2V.Seed != 5^0x77 {
		t.Errorf("zero W2V.Seed not derived: got %d, want %d", derived.W2V.Seed, 5^0x77)
	}
}

// TestWorkersPropagation: Config.Workers seeds the sub-config worker
// counts without clobbering explicit choices.
func TestWorkersPropagation(t *testing.T) {
	c := Config{Workers: 3}.WithDefaults()
	if c.W2V.Workers != 3 || c.Train.Workers != 3 {
		t.Errorf("Workers not propagated: w2v=%d train=%d", c.W2V.Workers, c.Train.Workers)
	}
	c = Config{Workers: 3, W2V: word2vec.Config{Workers: 2}}.WithDefaults()
	if c.W2V.Workers != 2 {
		t.Errorf("explicit W2V.Workers clobbered: %d", c.W2V.Workers)
	}
}

// TestPredictVUCsWorkersIdentical: inference through the stage tree must
// be bitwise-identical for every worker count.
func TestPredictVUCsWorkersIdentical(t *testing.T) {
	c, p := sharedPipeline(t)
	refs := c.All()
	if len(refs) > 600 {
		refs = refs[:600]
	}
	samples := make([][]float32, len(refs))
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
	}

	run := func(workers int) []VUCPrediction {
		cfg := p.Cfg
		cfg.Workers = workers
		q := &Pipeline{Cfg: cfg, Embed: p.Embed, Stages: p.Stages, FlatNet: p.FlatNet}
		preds, err := q.PredictVUCs(samples)
		if err != nil {
			t.Fatal(err)
		}
		return preds
	}
	one, four := run(1), run(4)
	for i := range one {
		if one[i].Class != four[i].Class || one[i].Confidence != four[i].Confidence {
			t.Fatalf("prediction %d differs across worker counts: %v/%v vs %v/%v",
				i, one[i].Class, one[i].Confidence, four[i].Class, four[i].Confidence)
		}
		for stage, row := range one[i].StageProbs {
			other := four[i].StageProbs[stage]
			for k := range row {
				if row[k] != other[k] {
					t.Fatalf("stage %s probs differ at sample %d", stage, i)
				}
			}
		}
	}
}

// TestPredictVUCsConcurrent drives one trained pipeline from several
// goroutines at once; under -race (Makefile check target) this proves the
// prediction path shares only read-only state.
func TestPredictVUCsConcurrent(t *testing.T) {
	c, p := sharedPipeline(t)
	refs := c.All()
	if len(refs) > 300 {
		refs = refs[:300]
	}
	samples := make([][]float32, len(refs))
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
	}
	want, err := p.PredictVUCs(samples)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.PredictVUCs(samples)
			if err != nil {
				errs <- err.Error()
				return
			}
			for i := range want {
				if got[i].Class != want[i].Class || got[i].Confidence != want[i].Confidence {
					errs <- "concurrent PredictVUCs diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
