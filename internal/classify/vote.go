package classify

import (
	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// DefaultClamp is the paper's confidence threshold: per-VUC confidences at
// or above it count as 1.0 in the vote (Eq. 3, threshold 0.9).
const DefaultClamp = 0.9

// mClampHits counts per-class confidences the vote clamped to 1.0 — the
// share of votes the Eq. 3 threshold actually changes, which is what the
// clamp ablation tunes. Hits are batched per probability row, so voting
// costs one atomic add per row, not per class.
var mClampHits = telemetry.Default().Counter("cati_vote_clamp_hits_total",
	"Per-class confidences clamped to 1.0 during voting (Eq. 3).")

// clampRow applies Eq. 3 to one probability row.
func clampRow(row []float32, clamp float64) []float64 {
	out := make([]float64, len(row))
	hits := 0
	for i, v := range row {
		if clamp > 0 && float64(v) >= clamp {
			out[i] = 1.0
			hits++
		} else {
			out[i] = float64(v)
		}
	}
	if hits > 0 {
		mClampHits.Add(uint64(hits))
	}
	return out
}

// VarPrediction is a variable's voted decision.
type VarPrediction struct {
	// StageLabels holds the per-stage voted label indices.
	StageLabels map[ctypes.Stage]int
	// Class is the composed 19-class decision.
	Class ctypes.Class
}

// VoteVariable implements the paper's voting (Eq. 2–4): for each stage,
// the clamped per-class confidences of all the variable's VUCs are summed
// and the argmax wins; the final class composes the voted stage decisions
// down the tree. clamp ≤ 0 disables clamping (ablation).
func VoteVariable(preds []VUCPrediction, clamp float64) VarPrediction {
	vp := VarPrediction{StageLabels: make(map[ctypes.Stage]int)}
	if len(preds) == 0 {
		vp.Class = ctypes.ClassInt
		return vp
	}
	if preds[0].StageProbs == nil {
		// Flat pipeline: vote over the 19 classes directly.
		sums := make([]float64, ctypes.NumClasses)
		for _, p := range preds {
			c := int(p.Class) - 1
			v := p.Confidence
			if clamp > 0 && v >= clamp {
				v = 1
				mClampHits.Inc()
			}
			sums[c] += v
		}
		best := 0
		for i, v := range sums {
			if v > sums[best] {
				best = i
			}
		}
		vp.Class = ctypes.Class(best + 1)
		return vp
	}

	voted := make(map[ctypes.Stage]int)
	have := make(map[ctypes.Stage]bool)
	for _, stage := range ctypes.AllStages() {
		var sums []float64
		for _, p := range preds {
			row, ok := p.StageProbs[stage]
			if !ok {
				continue
			}
			cr := clampRow(row, clamp)
			if sums == nil {
				sums = make([]float64, len(cr))
			}
			for i, v := range cr {
				sums[i] += v
			}
		}
		if sums == nil {
			continue
		}
		best := 0
		for i, v := range sums {
			if v > sums[best] {
				best = i
			}
		}
		voted[stage] = best
		have[stage] = true
		vp.StageLabels[stage] = best
	}

	// Compose the final class from voted stage labels.
	vp.Class = composeVoted(voted, have)
	return vp
}

func composeVoted(voted map[ctypes.Stage]int, have map[ctypes.Stage]bool) ctypes.Class {
	if !have[ctypes.Stage1] {
		return ctypes.ClassInt
	}
	if voted[ctypes.Stage1] == 0 {
		if !have[ctypes.Stage21] {
			return ctypes.ClassPtrStruct
		}
		cl, err := ctypes.ClassFromStagePath(0, voted[ctypes.Stage21], 0)
		if err != nil {
			return ctypes.ClassPtrStruct
		}
		return cl
	}
	if !have[ctypes.Stage22] {
		return ctypes.ClassInt
	}
	s2 := voted[ctypes.Stage22]
	switch s2 {
	case 0:
		return ctypes.ClassStruct
	case 1:
		return ctypes.ClassBool
	}
	var leaf ctypes.Stage
	switch s2 {
	case 2:
		leaf = ctypes.Stage31
	case 3:
		leaf = ctypes.Stage32
	default:
		leaf = ctypes.Stage33
	}
	if !have[leaf] {
		switch leaf {
		case ctypes.Stage31:
			return ctypes.ClassChar
		case ctypes.Stage32:
			return ctypes.ClassDouble
		default:
			return ctypes.ClassInt
		}
	}
	cl, err := ctypes.ClassFromStagePath(1, s2, voted[leaf])
	if err != nil {
		return ctypes.ClassInt
	}
	return cl
}

// StagePrediction extracts the per-VUC argmax label at one stage, for the
// per-stage P/R/F1 tables.
func StagePrediction(p *VUCPrediction, stage ctypes.Stage) (int, bool) {
	row, ok := p.StageProbs[stage]
	if !ok || len(row) == 0 {
		return 0, false
	}
	return nn.Argmax(row), true
}
