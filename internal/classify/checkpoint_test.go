package classify

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/obs"
)

// ckptConfig is tinyConfig pinned to one worker: the data-parallel
// trainer is deterministic per worker count, and these tests compare
// weights across runs.
func ckptConfig() Config {
	cfg := tinyConfig()
	cfg.Workers = 1
	cfg.Train.Epochs = 1
	return cfg
}

// samePipeline compares two pipelines weight-for-weight.
func samePipeline(t *testing.T, a, b *Pipeline) {
	t.Helper()
	if len(a.Embed.Vecs) != len(b.Embed.Vecs) {
		t.Fatalf("embedding sizes differ: %d vs %d", len(a.Embed.Vecs), len(b.Embed.Vecs))
	}
	for i := range a.Embed.Vecs {
		for j := range a.Embed.Vecs[i] {
			if a.Embed.Vecs[i][j] != b.Embed.Vecs[i][j] {
				t.Fatalf("embedding differs at [%d][%d]", i, j)
			}
		}
	}
	if len(a.Stages) != len(b.Stages) {
		t.Fatalf("stage counts differ: %d vs %d", len(a.Stages), len(b.Stages))
	}
	for stage, na := range a.Stages {
		nb := b.Stages[stage]
		if nb == nil {
			t.Fatalf("stage %s missing in second pipeline", stage)
		}
		pa, pb := na.Params(), nb.Params()
		if len(pa) != len(pb) {
			t.Fatalf("stage %s: param tensor counts differ", stage)
		}
		for k := range pa {
			for l := range pa[k].W {
				if pa[k].W[l] != pb[k].W[l] {
					t.Fatalf("stage %s param %d[%d]: %v != %v", stage, k, l, pa[k].W[l], pb[k].W[l])
				}
			}
		}
	}
}

// TestCheckpointResumeEquivalence is the headline robustness guarantee:
// cancel training mid-run, resume from the checkpoint directory, and the
// final model is weight-identical to an uninterrupted run.
func TestCheckpointResumeEquivalence(t *testing.T) {
	c, _ := sharedPipeline(t) // reuse the shared corpus only
	cfg := ckptConfig()

	fresh, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg.Checkpoint = dir

	// First attempt: cancel after the embedding and two CNN stages have
	// completed and checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cnnDone atomic.Int32
	cfgCancel := cfg
	cfgCancel.Hook = func(e obs.Event) {
		if e.Done && e.Err == nil && len(e.Stage) > 4 && e.Stage[:4] == "cnn:" {
			if cnnDone.Add(1) == 2 {
				cancel()
			}
		}
	}
	if _, err := TrainCtx(ctx, c, cfgCancel); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from interrupted run, got %v", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	// meta + w2v + the two completed stages, possibly more if a stage
	// finished between the cancel and the pool noticing.
	if len(ckpts) < 4 {
		t.Fatalf("want >= 4 checkpoint files after partial run, got %v", ckpts)
	}

	// Second attempt: same config, same dir — must complete and match the
	// uninterrupted model exactly.
	resumed, err := TrainCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samePipeline(t, fresh, resumed)
}

// TestCheckpointStaleDiscarded: checkpoints from a different config must
// not leak into a new run — the resumed model must match a fresh train
// of the NEW config, not the old one.
func TestCheckpointStaleDiscarded(t *testing.T) {
	c, _ := sharedPipeline(t)
	dir := t.TempDir()

	cfgA := ckptConfig()
	cfgA.Checkpoint = dir
	if _, err := Train(c, cfgA); err != nil {
		t.Fatal(err)
	}

	cfgB := ckptConfig()
	cfgB.Seed = 99 // different stochastic universe
	freshB, err := Train(c, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	cfgB.Checkpoint = dir // dir still holds cfgA's checkpoints
	gotB, err := Train(c, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	samePipeline(t, freshB, gotB)
}

// TestCheckpointCorruptedPhaseRetrains: a bit-flipped checkpoint file is
// rejected by its checksum and the phase silently retrains — corruption
// can cost time, never correctness.
func TestCheckpointCorruptedPhaseRetrains(t *testing.T) {
	c, _ := sharedPipeline(t)
	dir := t.TempDir()
	cfg := ckptConfig()
	cfg.Checkpoint = dir

	fresh, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the w2v checkpoint.
	path := filepath.Join(dir, "w2v.ckpt")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	samePipeline(t, fresh, resumed)
}

// TestCheckpointLoadNetRejectsWrongKind pins the loader's typed-error
// path: a foreign file in the checkpoint directory is skipped, not
// decoded.
func TestCheckpointLoadNetRejectsWrongKind(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := openCheckpoint(dir, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cnn-"+ctypes.Stage1.String()+".ckpt"),
		[]byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if net := ckpt.loadNet("cnn-" + ctypes.Stage1.String()); net != nil {
		t.Fatal("garbage checkpoint must not decode to a network")
	}
	if m := ckpt.loadEmbed(); m != nil {
		t.Fatal("absent embed checkpoint must return nil")
	}
}

// TestCheckpointNilSafe: all checkpoint methods are no-ops on the nil
// handle (checkpointing disabled).
func TestCheckpointNilSafe(t *testing.T) {
	var ckpt *checkpoint
	if m := ckpt.loadEmbed(); m != nil {
		t.Fatal("nil checkpoint loaded an embedding")
	}
	if n := ckpt.loadNet("cnn-flat"); n != nil {
		t.Fatal("nil checkpoint loaded a network")
	}
	if err := ckpt.saveEmbed(nil); err != nil {
		t.Fatal(err)
	}
	net := nn.NewCNN(4, 4, 2, 2, 8, 3, 1)
	if err := ckpt.saveNet("cnn-flat", net, 4, 4, 2, 2, 8, 3); err != nil {
		t.Fatal(err)
	}
}
