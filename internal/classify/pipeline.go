// Package classify implements CATI's prediction side: Word2Vec embedding
// of generalized VUC tokens (§IV-C), the six-stage CNN classifier tree
// (§V-A, Figure 5), confidence-clamped per-variable voting (§V-B,
// Eq. 2–4), and the occlusion-importance analysis ε (§VII-B, Eq. 5).
package classify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/vuc"
	"repro/internal/word2vec"
)

// countPredictions records n CNN predictions for one classifier stage
// ("flat" for the single-classifier ablation). Skipped wholesale while
// collection is off so the per-call registry lookup never hits the
// predict path.
func countPredictions(stage string, n int) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_predictions_total",
		"CNN predictions made, by classifier stage.", "stage", stage).Add(uint64(n))
}

// Config are the pipeline hyperparameters; zero values take the paper's.
type Config struct {
	// EmbedDim is the per-token embedding size (paper: 32).
	EmbedDim int
	// Window is the VUC window w (paper: 10 → 21 instructions).
	Window int
	// Conv1, Conv2, Hidden size the per-stage CNN (paper: 32, 64, 1024).
	Conv1, Conv2, Hidden int
	// W2V configures embedding training.
	W2V word2vec.Config
	// Train configures per-stage CNN training.
	Train nn.TrainConfig
	// MaxPerStage caps training samples per stage (0 = no cap). The cap is
	// applied per stage label proportionally, so rare labels survive.
	MaxPerStage int
	// Flat replaces the multi-stage tree by a single 19-way classifier
	// (ablation).
	Flat bool
	// Seed namespaces all stochastic choices.
	Seed int64
	// Arch names the instruction set the model was trained on ("x86_64",
	// "rv64"). Empty means x86_64 — the only ISA that existed before the
	// tag, so legacy artifacts decode correctly. Inference rejects
	// binaries whose machine does not match.
	Arch string
	// Workers bounds pipeline parallelism: corpus embedding, per-stage CNN
	// training and inference (the six stages run concurrently — they share
	// only the read-only embedding matrix), and the occlusion sweep. 0
	// resolves via par.Workers (CATI_WORKERS, then GOMAXPROCS); 1 forces
	// the serial paths. It also seeds W2V.Workers and Train.Workers when
	// those are unset.
	Workers int
	// Trace, when non-nil, accumulates a per-stage record (wall time, item
	// count, worker count) of every pipeline stage that runs: training
	// records "w2v", "embed" and the per-stage "cnn:*" trainings;
	// inference (via core) records the recover/extract/embed/predict/vote
	// stages. Not serialized with the model.
	Trace *obs.Trace
	// Hook, when non-nil, receives start/end events for the same stages.
	// Stages may run concurrently, so hooks must be safe for concurrent
	// calls. Not serialized with the model.
	Hook obs.Hook
	// Checkpoint, when non-empty, is a directory where TrainCtx snapshots
	// each completed training phase (the Word2Vec model and every stage
	// CNN) as a checksummed artifact. A later TrainCtx with the same
	// resolved config and corpus shape loads the completed phases and
	// trains only what is missing, so a cancelled or crashed run resumes
	// where it stopped and converges to the same model as an uninterrupted
	// one. Stale checkpoints (different config/corpus/worker count) are
	// discarded automatically. Not serialized with the model.
	Checkpoint string
}

// WithDefaults resolves every zero field to the paper's value and derives
// the dependent seeds/worker counts. Train applies it before training and
// stores the resolved config on the pipeline; inference paths that read
// hyperparameters from a possibly hand-built or legacy-deserialized config
// (e.g. the VUC window) must resolve them through here too, so a loaded
// model and a freshly trained one behave identically.
func (c Config) WithDefaults() Config {
	if c.EmbedDim == 0 {
		c.EmbedDim = 32
	}
	if c.Window == 0 {
		c.Window = vuc.DefaultWindow
	}
	if c.Conv1 == 0 {
		c.Conv1 = 32
	}
	if c.Conv2 == 0 {
		c.Conv2 = 64
	}
	if c.Hidden == 0 {
		c.Hidden = 1024
	}
	if c.W2V.Dim == 0 {
		c.W2V.Dim = c.EmbedDim
	}
	if c.Arch == "" {
		c.Arch = "x86_64"
	}
	// Derive the embedding seed only when the caller left it unset — a
	// caller-provided W2V.Seed must survive.
	if c.W2V.Seed == 0 {
		c.W2V.Seed = c.Seed ^ 0x77
	}
	if c.Train.Seed == 0 {
		c.Train.Seed = c.Seed ^ 0x99
	}
	if c.W2V.Workers == 0 {
		c.W2V.Workers = c.Workers
	}
	if c.Train.Workers == 0 {
		c.Train.Workers = c.Workers
	}
	return c
}

// SeqLen returns the VUC length in instructions.
func (c Config) SeqLen() int { return 2*c.Window + 1 }

// InstDim returns the per-instruction embedding width (3 tokens × dim).
func (c Config) InstDim() int { return vuc.TokensPerInst * c.EmbedDim }

// Pipeline is a trained CATI model.
type Pipeline struct {
	Cfg    Config
	Embed  *word2vec.Model
	Stages map[ctypes.Stage]*nn.Network
	// FlatNet is set instead of Stages when Cfg.Flat.
	FlatNet *nn.Network
}

// ErrNoData reports an unusable training corpus.
var ErrNoData = errors.New("classify: no training data")

// EmbedWindow converts a token window into the flattened [SeqLen, InstDim]
// sample the CNNs consume.
func (p *Pipeline) EmbedWindow(toks []vuc.InstTok) []float32 {
	return EmbedWindow(p.Embed, toks, p.Cfg.EmbedDim)
}

// EmbedWindow embeds a token window with an explicit model.
func EmbedWindow(m *word2vec.Model, toks []vuc.InstTok, dim int) []float32 {
	out := make([]float32, len(toks)*vuc.TokensPerInst*dim)
	o := 0
	for _, it := range toks {
		for k := 0; k < vuc.TokensPerInst; k++ {
			copy(out[o:o+dim], m.Vector(it[k]))
			o += dim
		}
	}
	return out
}

// Train builds the full pipeline from a labeled corpus: Word2Vec over the
// corpus token streams, then one CNN per stage (or one flat CNN).
func Train(c *corpus.Corpus, cfg Config) (*Pipeline, error) {
	return TrainCtx(context.Background(), c, cfg)
}

// TrainCtx is Train with cooperative cancellation and per-stage
// observability: the Word2Vec pass, the corpus embedding loop, and each
// CNN training check ctx at their work-item boundaries and return
// ctx.Err() promptly once it is cancelled. Each phase reports through
// cfg.Trace/cfg.Hook when set ("w2v", "embed", then "cnn:<stage>" — the
// CNN stages run concurrently, so their wall times overlap).
func TrainCtx(ctx context.Context, c *corpus.Corpus, cfg Config) (*Pipeline, error) {
	cfg = cfg.WithDefaults()
	if cfg.Window != c.Window {
		return nil, fmt.Errorf("classify: config window %d != corpus window %d", cfg.Window, c.Window)
	}
	refs := c.All()
	if len(refs) == 0 {
		return nil, ErrNoData
	}
	workers := par.Workers(cfg.Workers)
	run := obs.Runner{Trace: cfg.Trace, Hook: cfg.Hook}

	var ckpt *checkpoint
	if cfg.Checkpoint != "" {
		var err error
		ckpt, err = openCheckpoint(cfg.Checkpoint, fingerprintTraining(cfg, len(refs)))
		if err != nil {
			return nil, err
		}
	}

	var embed *word2vec.Model
	err := run.Stage(ctx, "w2v", par.WorkersExplicit(cfg.W2V.Workers), func(sctx context.Context) (int, error) {
		if m := ckpt.loadEmbed(); m != nil {
			embed = m
			return 0, nil // resumed from checkpoint, nothing trained
		}
		sents := c.Sentences()
		var err error
		if embed, err = word2vec.TrainCtx(sctx, sents, cfg.W2V); err != nil {
			return len(sents), err
		}
		return len(sents), ckpt.saveEmbed(embed)
	})
	if err != nil {
		return nil, fmt.Errorf("classify: w2v: %w", err)
	}
	p := &Pipeline{Cfg: cfg, Embed: embed, Stages: make(map[ctypes.Stage]*nn.Network)}

	// Embed every sample once; stages share the matrix. Samples are
	// independent and the model is read-only, so the loop shards freely.
	samples := make([][]float32, len(refs))
	classes := make([]ctypes.Class, len(refs))
	err = run.Stage(ctx, "embed", workers, func(sctx context.Context) (int, error) {
		return len(refs), par.ForEachCtx(sctx, len(refs), workers, func(i int) {
			r := refs[i]
			samples[i] = p.EmbedWindow(c.Tokens(r))
			_, s := c.At(r)
			classes[i] = s.Class
		})
	})
	if err != nil {
		return nil, fmt.Errorf("classify: embed: %w", err)
	}

	if cfg.Flat {
		err := run.Stage(ctx, "cnn:flat", par.Workers(cfg.Train.Workers), func(sctx context.Context) (int, error) {
			if net := ckpt.loadNet("cnn-flat"); net != nil {
				p.FlatNet = net
				return 0, nil
			}
			ds := &nn.Dataset{SeqLen: cfg.SeqLen(), EmbDim: cfg.InstDim()}
			idxs := capRefs(allIndices(len(refs)), flatLabels(classes), ctypes.NumClasses, cfg.MaxPerStage, cfg.Seed)
			for _, i := range idxs {
				ds.Add(samples[i], int(classes[i])-1)
			}
			net := nn.NewCNN(cfg.SeqLen(), cfg.InstDim(), cfg.Conv1, cfg.Conv2, cfg.Hidden, ctypes.NumClasses, cfg.Seed)
			if err := nn.TrainClassifierCtx(sctx, net, ds, ctypes.NumClasses, cfg.Train); err != nil {
				return ds.Len(), err
			}
			p.FlatNet = net
			return ds.Len(), ckpt.saveNet("cnn-flat", net, cfg.SeqLen(), cfg.InstDim(), cfg.Conv1, cfg.Conv2, cfg.Hidden, ctypes.NumClasses)
		})
		if err != nil {
			return nil, fmt.Errorf("classify: flat: %w", err)
		}
		return p, nil
	}

	// The six stage CNNs are independent — they read only the shared
	// embedded samples — so they train concurrently, each stage itself
	// data-parallel per cfg.Train.Workers. Every stage's sampling and
	// initialization is seeded by (Seed, stage), so the result does not
	// depend on scheduling.
	stages := ctypes.AllStages()
	nets := make([]*nn.Network, len(stages))
	errs := make([]error, len(stages))
	jobs := make([]func(), len(stages))
	for si, stage := range stages {
		jobs[si] = func() {
			errs[si] = run.Stage(ctx, fmt.Sprintf("cnn:%s", stage), par.Workers(cfg.Train.Workers), func(sctx context.Context) (int, error) {
				arity := ctypes.StageArity(stage)
				if net := ckpt.loadNet("cnn-" + stage.String()); net != nil {
					nets[si] = net
					return 0, nil
				}
				var idxs []int
				var labels []int
				for i, cl := range classes {
					if l, ok := ctypes.StageLabel(stage, cl); ok {
						idxs = append(idxs, i)
						labels = append(labels, l)
					}
				}
				if len(idxs) == 0 {
					return 0, nil // stage has no data (e.g. no float-family samples)
				}
				sel := capRefs(idxs, labels, arity, cfg.MaxPerStage, cfg.Seed^int64(stage))
				ds := &nn.Dataset{SeqLen: cfg.SeqLen(), EmbDim: cfg.InstDim()}
				for _, i := range sel {
					l, _ := ctypes.StageLabel(stage, classes[i])
					ds.Add(samples[i], l)
				}
				net := nn.NewCNN(cfg.SeqLen(), cfg.InstDim(), cfg.Conv1, cfg.Conv2, cfg.Hidden, arity, cfg.Seed^int64(stage))
				if err := nn.TrainClassifierCtx(sctx, net, ds, arity, cfg.Train); err != nil {
					return ds.Len(), fmt.Errorf("classify: %s: %w", stage, err)
				}
				nets[si] = net
				return ds.Len(), ckpt.saveNet("cnn-"+stage.String(), net, cfg.SeqLen(), cfg.InstDim(), cfg.Conv1, cfg.Conv2, cfg.Hidden, arity)
			})
		}
	}
	if err := par.RunCtx(ctx, workers, jobs...); err != nil {
		return nil, err
	}
	for si, stage := range stages {
		if errs[si] != nil {
			return nil, errs[si]
		}
		if nets[si] != nil {
			p.Stages[stage] = nets[si]
		}
	}
	if len(p.Stages) == 0 {
		return nil, ErrNoData
	}
	return p, nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func flatLabels(classes []ctypes.Class) []int {
	out := make([]int, len(classes))
	for i, c := range classes {
		out[i] = int(c) - 1
	}
	return out
}

// capFloor is the minimum per-label sample count capRefs keeps when
// subsampling a stage's training set: proportional capping alone would
// starve rare labels (e.g. the float family), so every non-empty label
// keeps at least this many samples (or all it has).
const capFloor = 200

// capRefs subsamples idxs to at most maxN, proportionally per label with a
// floor so rare labels keep representation. labels[i] corresponds to
// idxs[i].
func capRefs(idxs, labels []int, arity, maxN int, seed int64) []int {
	if maxN <= 0 || len(idxs) <= maxN {
		return idxs
	}
	r := rand.New(rand.NewSource(seed))
	byLabel := make([][]int, arity)
	for i, idx := range idxs {
		l := labels[i]
		byLabel[l] = append(byLabel[l], idx)
	}
	var out []int
	for _, group := range byLabel {
		if len(group) == 0 {
			continue
		}
		want := int(float64(maxN) * float64(len(group)) / float64(len(idxs)))
		if want < capFloor {
			want = capFloor
		}
		if want > len(group) {
			want = len(group)
		}
		r.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		out = append(out, group[:want]...)
	}
	return out
}

// VUCPrediction carries one VUC's probabilities at every stage plus its
// composed 19-class decision.
type VUCPrediction struct {
	StageProbs map[ctypes.Stage][]float32
	Class      ctypes.Class
	Confidence float64
}

// PredictVUCs runs every stage over the embedded samples and composes
// per-VUC class decisions by walking the tree greedily. The stage networks
// run concurrently (they share only read-only state), each additionally
// fanning its sample chunks across the pool; output is bitwise-identical
// for every worker count. Safe to call from multiple goroutines on one
// pipeline.
func (p *Pipeline) PredictVUCs(samples [][]float32) ([]VUCPrediction, error) {
	return p.PredictVUCsCtx(context.Background(), samples)
}

// PredictVUCsCtx is PredictVUCs with cooperative cancellation: stage
// fan-out stops scheduling and in-flight chunk loops bail at their next
// chunk boundary once ctx is cancelled, returning ctx.Err().
func (p *Pipeline) PredictVUCsCtx(ctx context.Context, samples [][]float32) ([]VUCPrediction, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	seqLen, instDim := p.Cfg.SeqLen(), p.Cfg.InstDim()
	workers := par.Workers(p.Cfg.Workers)

	if p.FlatNet != nil {
		probs, err := nn.PredictNCtx(ctx, p.FlatNet, samples, seqLen, instDim, workers)
		if err != nil {
			return nil, err
		}
		countPredictions("flat", len(samples))
		out := make([]VUCPrediction, len(samples))
		err = par.ForEachCtx(ctx, len(samples), workers, func(i int) {
			row := probs[i]
			best := nn.Argmax(row)
			out[i] = VUCPrediction{
				Class:      ctypes.Class(best + 1),
				Confidence: float64(row[best]),
			}
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	stages := make([]ctypes.Stage, 0, len(p.Stages))
	for _, s := range ctypes.AllStages() {
		if p.Stages[s] != nil {
			stages = append(stages, s)
		}
	}
	probsBy := make([][][]float32, len(stages))
	errsBy := make([]error, len(stages))
	jobs := make([]func(), len(stages))
	for si, stage := range stages {
		jobs[si] = func() {
			probsBy[si], errsBy[si] = nn.PredictNCtx(ctx, p.Stages[stage], samples, seqLen, instDim, workers)
		}
	}
	if err := par.RunCtx(ctx, workers, jobs...); err != nil {
		return nil, err
	}
	for _, err := range errsBy {
		if err != nil {
			return nil, err
		}
	}
	stageProbs := make(map[ctypes.Stage][][]float32, len(stages))
	for si, stage := range stages {
		stageProbs[stage] = probsBy[si]
		countPredictions(stage.String(), len(samples))
	}
	out := make([]VUCPrediction, len(samples))
	err := par.ForEachCtx(ctx, len(samples), workers, func(i int) {
		pred := VUCPrediction{StageProbs: make(map[ctypes.Stage][]float32, len(stages))}
		for _, stage := range stages {
			pred.StageProbs[stage] = stageProbs[stage][i]
		}
		pred.Class, pred.Confidence = p.composeClass(pred.StageProbs)
		out[i] = pred
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// composeClass walks the decision tree: Stage 1 → Stage 2-x → Stage 3-x.
func (p *Pipeline) composeClass(probs map[ctypes.Stage][]float32) (ctypes.Class, float64) {
	argmaxOf := func(stage ctypes.Stage) (int, float64, bool) {
		row, ok := probs[stage]
		if !ok || len(row) == 0 {
			return 0, 0, false
		}
		b := nn.Argmax(row)
		return b, float64(row[b]), true
	}
	s1, c1, ok := argmaxOf(ctypes.Stage1)
	if !ok {
		return ctypes.ClassInt, 0
	}
	if s1 == 0 { // pointer branch
		s2, c2, ok := argmaxOf(ctypes.Stage21)
		if !ok {
			return ctypes.ClassPtrStruct, c1
		}
		cl, _ := ctypes.ClassFromStagePath(0, s2, 0)
		return cl, c1 * c2
	}
	s2, c2, ok := argmaxOf(ctypes.Stage22)
	if !ok {
		return ctypes.ClassInt, c1
	}
	conf := c1 * c2
	switch s2 {
	case 0:
		return ctypes.ClassStruct, conf
	case 1:
		return ctypes.ClassBool, conf
	}
	var leaf ctypes.Stage
	switch s2 {
	case 2:
		leaf = ctypes.Stage31
	case 3:
		leaf = ctypes.Stage32
	default:
		leaf = ctypes.Stage33
	}
	s3, c3, ok := argmaxOf(leaf)
	if !ok {
		// No leaf model (e.g. never saw float-family data): fall back to
		// the family's most common member.
		switch leaf {
		case ctypes.Stage31:
			return ctypes.ClassChar, conf
		case ctypes.Stage32:
			return ctypes.ClassDouble, conf
		default:
			return ctypes.ClassInt, conf
		}
	}
	cl, err := ctypes.ClassFromStagePath(1, s2, s3)
	if err != nil {
		return ctypes.ClassInt, conf
	}
	return cl, conf * c3
}
