package classify

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/word2vec"
)

// cfgState mirrors Config without the nn.TrainConfig.Progress callback
// (gob cannot encode func-typed fields).
type cfgState struct {
	EmbedDim, Window     int
	Conv1, Conv2, Hidden int
	W2V                  word2vec.Config
	TrainEpochs          int
	TrainBatch           int
	TrainLR              float64
	TrainSeed            int64
	MaxPerStage          int
	Flat                 bool
	Seed                 int64
	// Arch is absent in pre-tag artifacts; gob leaves it "" and
	// Config.WithDefaults resolves that to x86_64.
	Arch string
}

func toCfgState(c Config) cfgState {
	return cfgState{
		EmbedDim: c.EmbedDim, Window: c.Window,
		Conv1: c.Conv1, Conv2: c.Conv2, Hidden: c.Hidden,
		W2V:         c.W2V,
		TrainEpochs: c.Train.Epochs, TrainBatch: c.Train.Batch,
		TrainLR: c.Train.LR, TrainSeed: c.Train.Seed,
		MaxPerStage: c.MaxPerStage, Flat: c.Flat, Seed: c.Seed,
		Arch: c.Arch,
	}
}

func fromCfgState(s cfgState) Config {
	return Config{
		EmbedDim: s.EmbedDim, Window: s.Window,
		Conv1: s.Conv1, Conv2: s.Conv2, Hidden: s.Hidden,
		W2V: s.W2V,
		Train: nn.TrainConfig{
			Epochs: s.TrainEpochs, Batch: s.TrainBatch,
			LR: s.TrainLR, Seed: s.TrainSeed,
		},
		MaxPerStage: s.MaxPerStage, Flat: s.Flat, Seed: s.Seed,
		Arch: s.Arch,
	}
}

// pipelineState is the gob form of a trained pipeline. Quantized marks
// int8 stage payloads (nn.EncodeQCNN instead of nn.EncodeCNN); the model
// artifact additionally carries the distinction in its envelope kind tag,
// so pre-quantization builds reject such files at the envelope, not here.
type pipelineState struct {
	Cfg       cfgState
	Embed     []byte
	Stages    map[int][]byte
	FlatNet   []byte
	Quantized bool
}

// Quantized reports whether the pipeline's networks run int8 inference.
func (p *Pipeline) Quantized() bool {
	for _, net := range p.Stages {
		if net.Quantized() {
			return true
		}
	}
	return p.FlatNet != nil && p.FlatNet.Quantized()
}

// Quantize returns a copy of the pipeline with every stage CNN converted
// to its int8 inference form (per-output-channel symmetric weights,
// dynamic per-tensor activations — see internal/gemm/quant.go). The
// embedding matrix and config are shared with the original, which is not
// modified. The result is inference-only.
func (p *Pipeline) Quantize() (*Pipeline, error) {
	out := &Pipeline{Cfg: p.Cfg, Embed: p.Embed, Stages: make(map[ctypes.Stage]*nn.Network, len(p.Stages))}
	for stage, net := range p.Stages {
		q, err := nn.QuantizeNetwork(net)
		if err != nil {
			return nil, fmt.Errorf("classify: quantize %s: %w", stage, err)
		}
		out.Stages[stage] = q
	}
	if p.FlatNet != nil {
		q, err := nn.QuantizeNetwork(p.FlatNet)
		if err != nil {
			return nil, fmt.Errorf("classify: quantize flat: %w", err)
		}
		out.FlatNet = q
	}
	return out, nil
}

// Encode serializes the pipeline (embedding model + all stage CNNs).
func (p *Pipeline) Encode() ([]byte, error) {
	st := pipelineState{Cfg: toCfgState(p.Cfg), Stages: make(map[int][]byte), Quantized: p.Quantized()}
	var err error
	if st.Embed, err = p.Embed.Encode(); err != nil {
		return nil, err
	}
	enc := func(net *nn.Network, arity int) ([]byte, error) {
		if st.Quantized {
			return nn.EncodeQCNN(net, p.Cfg.SeqLen(), p.Cfg.InstDim(),
				p.Cfg.Conv1, p.Cfg.Conv2, p.Cfg.Hidden, arity)
		}
		return nn.EncodeCNN(net, p.Cfg.SeqLen(), p.Cfg.InstDim(),
			p.Cfg.Conv1, p.Cfg.Conv2, p.Cfg.Hidden, arity)
	}
	for stage, net := range p.Stages {
		blob, err := enc(net, ctypes.StageArity(stage))
		if err != nil {
			return nil, fmt.Errorf("classify: encode %s: %w", stage, err)
		}
		st.Stages[int(stage)] = blob
	}
	if p.FlatNet != nil {
		blob, err := enc(p.FlatNet, ctypes.NumClasses)
		if err != nil {
			return nil, fmt.Errorf("classify: encode flat: %w", err)
		}
		st.FlatNet = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("classify: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// CheckFinite validates every weight in the pipeline — the embedding
// matrix and each stage CNN — reporting the first NaN or Inf. Loaders use
// it to reject diverged or otherwise poisoned artifacts up front, before
// inference silently propagates non-finite activations.
func (p *Pipeline) CheckFinite() error {
	if p.Embed != nil {
		for i, row := range p.Embed.Vecs {
			for j, v := range row {
				f := float64(v)
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return fmt.Errorf("classify: embedding row %d element %d: %w", i, j, nn.ErrNotFinite)
				}
			}
		}
	}
	for stage, net := range p.Stages {
		if err := net.CheckFinite(); err != nil {
			return fmt.Errorf("classify: stage %s: %w", stage, err)
		}
	}
	if p.FlatNet != nil {
		if err := p.FlatNet.CheckFinite(); err != nil {
			return fmt.Errorf("classify: flat: %w", err)
		}
	}
	return nil
}

// Decode rebuilds a serialized pipeline.
func Decode(data []byte) (*Pipeline, error) {
	var st pipelineState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("classify: decode: %w", err)
	}
	p := &Pipeline{Cfg: fromCfgState(st.Cfg), Stages: make(map[ctypes.Stage]*nn.Network)}
	var err error
	if p.Embed, err = word2vec.Decode(st.Embed); err != nil {
		return nil, err
	}
	decodeNet := nn.DecodeCNN
	if st.Quantized {
		decodeNet = nn.DecodeQCNN
	}
	for stage, blob := range st.Stages {
		net, err := decodeNet(blob)
		if err != nil {
			return nil, fmt.Errorf("classify: decode stage %d: %w", stage, err)
		}
		p.Stages[ctypes.Stage(stage)] = net
	}
	if len(st.FlatNet) > 0 {
		if p.FlatNet, err = decodeNet(st.FlatNet); err != nil {
			return nil, fmt.Errorf("classify: decode flat: %w", err)
		}
	}
	return p, nil
}
