package classify

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestTrainCtxTraceStages trains a tiny pipeline with observability
// attached and checks the per-phase records: w2v, embed, then the
// per-stage CNN trainings, with paired start/end hook events.
func TestTrainCtxTraceStages(t *testing.T) {
	c, _ := sharedPipeline(t)
	var mu sync.Mutex
	starts, ends := map[string]int{}, map[string]int{}
	cfg := tinyConfig()
	cfg.Train.Epochs = 1
	cfg.Trace = &obs.Trace{}
	cfg.Hook = func(e obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		if e.Done {
			ends[e.Stage]++
		} else {
			starts[e.Stage]++
		}
	}
	p, err := TrainCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || len(p.Stages) == 0 {
		t.Fatal("no pipeline trained")
	}

	seen := map[string]bool{}
	cnn := 0
	for _, s := range cfg.Trace.Stages() {
		seen[s.Name] = true
		if strings.HasPrefix(s.Name, "cnn:") {
			cnn++
		}
		if s.Wall < 0 || s.Err != nil {
			t.Fatalf("bad stage record: %+v", s)
		}
	}
	if !seen["w2v"] || !seen["embed"] {
		t.Fatalf("missing w2v/embed stages: %v", seen)
	}
	if cnn == 0 {
		t.Fatal("no cnn:* stages recorded")
	}
	for name, n := range starts {
		if ends[name] != n {
			t.Fatalf("stage %s: %d starts, %d ends", name, n, ends[name])
		}
	}
}

func TestTrainCtxCancelled(t *testing.T) {
	c, _ := sharedPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := tinyConfig()
	// Cancel as soon as the first stage starts: training must stop at the
	// next sentence/shard boundary and surface context.Canceled.
	cfg.Hook = func(e obs.Event) { cancel() }
	_, err := TrainCtx(ctx, c, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPredictVUCsCtxCancelled(t *testing.T) {
	c, p := sharedPipeline(t)
	refs := c.All()
	samples := make([][]float32, len(refs))
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PredictVUCsCtx(ctx, samples); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestWithDefaultsWindow pins the centralized window resolution: a zero
// window resolves to the paper's default, a set window survives, and
// WithDefaults is idempotent — the contract core relies on so a loaded
// model and a trained model extract identical VUC windows.
func TestWithDefaultsWindow(t *testing.T) {
	if got := (Config{}).WithDefaults().Window; got != 10 {
		t.Fatalf("default window = %d, want 10", got)
	}
	if got := (Config{Window: 5}).WithDefaults().Window; got != 5 {
		t.Fatalf("explicit window clobbered: %d", got)
	}
	once := (Config{Seed: 3}).WithDefaults()
	twice := once.WithDefaults()
	if once.Window != twice.Window || once.EmbedDim != twice.EmbedDim ||
		once.W2V != twice.W2V || once.Train.Seed != twice.Train.Seed {
		t.Fatalf("WithDefaults not idempotent:\n%+v\n%+v", once, twice)
	}
}
