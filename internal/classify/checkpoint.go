package classify

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/artifact"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/word2vec"
)

// countPhase records a checkpoint phase event: "saved" when a completed
// training phase is sealed to disk, "resumed" when a later run loads it
// instead of retraining.
func countPhase(event string) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_checkpoint_phases_total",
		"Training checkpoint phases by event (saved, resumed).", "event", event).Inc()
}

// Checkpoint file layout: one sealed artifact per completed training
// phase inside Config.Checkpoint —
//
//	meta.ckpt        fingerprint of (resolved config, corpus size)
//	w2v.ckpt         the trained Word2Vec model
//	cnn-<stage>.ckpt one per completed stage CNN (or cnn-flat.ckpt)
//
// Every file is written atomically (temp + rename), so a crash mid-write
// leaves either no file or a complete one; a torn rename or later bit rot
// is caught by the artifact checksum and the phase simply retrains.
// Because each phase is deterministic given the resolved config and seed,
// a resumed run converges to the same model as an uninterrupted one.
const (
	ckptKind    = "ckpt"
	ckptVersion = 1
)

// checkpoint is a per-run handle on the checkpoint directory; nil when
// checkpointing is off.
type checkpoint struct {
	dir string
}

// openCheckpoint prepares dir for the given training fingerprint. Stale
// checkpoints — from a different config, corpus, or code version — are
// discarded wholesale: resuming from mismatched phases would silently
// produce a model equivalent to neither run.
func openCheckpoint(dir string, fingerprint uint32) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("classify: checkpoint: %w", err)
	}
	c := &checkpoint{dir: dir}
	meta := make([]byte, 4)
	meta[0] = byte(fingerprint)
	meta[1] = byte(fingerprint >> 8)
	meta[2] = byte(fingerprint >> 16)
	meta[3] = byte(fingerprint >> 24)
	if old, err := c.load("meta"); err == nil && string(old) == string(meta) {
		return c, nil
	}
	// Fresh run (or mismatch): clear phase files, then stamp the meta.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("classify: checkpoint: %w", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("classify: checkpoint: %w", err)
			}
		}
	}
	if err := c.save("meta", meta); err != nil {
		return nil, err
	}
	return c, nil
}

// fingerprintTraining hashes everything a phase result depends on, so a
// checkpoint can never be resumed against a different run shape. The
// resolved trainer worker count is included because the data-parallel
// trainer is deterministic only for a fixed count — resuming a 4-worker
// run with 8 workers would mix two different (both valid) models.
func fingerprintTraining(cfg Config, corpusRefs int) uint32 {
	desc := fmt.Sprintf("%+v|refs=%d|trainWorkers=%d|ckptv=%d",
		toCfgState(cfg), corpusRefs, par.Workers(cfg.Train.Workers), ckptVersion)
	return crc32.ChecksumIEEE([]byte(desc))
}

// load returns the named phase payload, or an error when the file is
// absent, truncated, corrupt, or from another artifact kind/version —
// callers treat any error as "phase not checkpointed" and retrain.
func (c *checkpoint) load(name string) ([]byte, error) {
	blob, err := os.ReadFile(filepath.Join(c.dir, name+".ckpt"))
	if err != nil {
		return nil, err
	}
	return artifact.Open(ckptKind, ckptVersion, blob)
}

// save seals and atomically writes the named phase payload.
func (c *checkpoint) save(name string, payload []byte) error {
	path := filepath.Join(c.dir, name+".ckpt")
	tmp, err := os.CreateTemp(c.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("classify: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(artifact.Seal(ckptKind, ckptVersion, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("classify: checkpoint %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("classify: checkpoint %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("classify: checkpoint %s: %w", name, err)
	}
	if name != "meta" {
		countPhase("saved")
	}
	return nil
}

// loadEmbed returns the checkpointed Word2Vec model, or nil when absent
// or unreadable.
func (c *checkpoint) loadEmbed() *word2vec.Model {
	if c == nil {
		return nil
	}
	payload, err := c.load("w2v")
	if err != nil {
		return nil
	}
	m, err := word2vec.Decode(payload)
	if err != nil {
		return nil
	}
	countPhase("resumed")
	return m
}

// saveEmbed checkpoints the trained Word2Vec model.
func (c *checkpoint) saveEmbed(m *word2vec.Model) error {
	if c == nil {
		return nil
	}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	return c.save("w2v", payload)
}

// loadNet returns the checkpointed network for the named phase, or nil.
func (c *checkpoint) loadNet(name string) *nn.Network {
	if c == nil {
		return nil
	}
	payload, err := c.load(name)
	if err != nil {
		return nil
	}
	net, err := nn.DecodeCNN(payload)
	if err != nil {
		return nil
	}
	if net.CheckFinite() != nil {
		return nil
	}
	countPhase("resumed")
	return net
}

// saveNet checkpoints one trained stage network.
func (c *checkpoint) saveNet(name string, net *nn.Network, seqLen, instDim, conv1, conv2, hidden, arity int) error {
	if c == nil {
		return nil
	}
	payload, err := nn.EncodeCNN(net, seqLen, instDim, conv1, conv2, hidden, arity)
	if err != nil {
		return err
	}
	return c.save(name, payload)
}
