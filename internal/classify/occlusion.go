package classify

import (
	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/vuc"
)

// Epsilon computes the paper's occlusion-importance index (Eq. 5) for one
// VUC at one stage: for each instruction position k, the VUC is re-scored
// with instruction k replaced by BLANK and
//
//	ε_k = S_u(R(VUC, k)) / S_u(VUC)
//
// where S_u is the confidence of the stage's predicted label. Smaller ε_k
// means the occluded instruction mattered more. Returns one ε per
// instruction position.
func (p *Pipeline) Epsilon(toks []vuc.InstTok, stage ctypes.Stage) ([]float64, bool) {
	net, ok := p.Stages[stage]
	if !ok {
		return nil, false
	}
	seqLen, instDim := p.Cfg.SeqLen(), p.Cfg.InstDim()
	if len(toks) != seqLen {
		return nil, false
	}

	workers := par.Workers(p.Cfg.Workers)
	blank := vuc.InstTok{vuc.TokBlank, vuc.TokBlank, vuc.TokBlank}
	samples := make([][]float32, seqLen+1)
	samples[0] = p.EmbedWindow(toks)
	par.ForEach(seqLen, workers, func(k int) {
		occluded := make([]vuc.InstTok, seqLen)
		copy(occluded, toks)
		occluded[k] = blank
		samples[k+1] = p.EmbedWindow(occluded)
	})

	probs := nn.PredictN(net, samples, seqLen, instDim, workers)
	base := probs[0]
	label := nn.Argmax(base)
	baseConf := float64(base[label])
	if baseConf <= 0 {
		return nil, false
	}
	out := make([]float64, seqLen)
	for k := 0; k < seqLen; k++ {
		out[k] = float64(probs[k+1][label]) / baseConf
	}
	return out, true
}

// EpsilonDistribution aggregates ε over many VUCs into the paper's
// Figure 6 b) heat map: for each instruction position (row) and each
// threshold t ∈ {0.0, 0.1, …, 0.9} (column), the share of VUCs whose ε at
// that position falls in (t, 1).
type EpsilonDistribution struct {
	// Share[pos][ti] = fraction of VUCs with ε_pos in (0.1*ti, 1).
	Share [][]float64
	// Count is the number of VUCs aggregated.
	Count int
}

// NumThresholds is the number of Figure 6 b) columns.
const NumThresholds = 10

// AggregateEpsilon computes the distribution for a set of VUC token
// windows at one stage. The windows are independent occlusion sweeps, so
// they shard across the worker pool; each shard accumulates a private
// partial that is reduced in shard order (the partials hold integer-valued
// counts, so the result is identical for every worker count).
func (p *Pipeline) AggregateEpsilon(windows [][]vuc.InstTok, stage ctypes.Stage) EpsilonDistribution {
	seqLen := p.Cfg.SeqLen()
	dist := EpsilonDistribution{Share: make([][]float64, seqLen)}
	for i := range dist.Share {
		dist.Share[i] = make([]float64, NumThresholds)
	}
	workers := par.Workers(p.Cfg.Workers)
	type partial struct {
		share [][]float64
		count int
	}
	parts := make([]partial, par.NumShards(len(windows), workers))
	par.Shard(len(windows), workers, func(s, wlo, whi int) {
		pt := &parts[s]
		pt.share = make([][]float64, seqLen)
		for i := range pt.share {
			pt.share[i] = make([]float64, NumThresholds)
		}
		for _, toks := range windows[wlo:whi] {
			eps, ok := p.Epsilon(toks, stage)
			if !ok {
				continue
			}
			pt.count++
			for pos, e := range eps {
				for ti := 0; ti < NumThresholds; ti++ {
					lo := 0.1 * float64(ti)
					if e > lo && e < 1 {
						pt.share[pos][ti]++
					}
				}
			}
		}
	})
	for _, pt := range parts {
		dist.Count += pt.count
		for pos := range pt.share {
			for ti, v := range pt.share[pos] {
				dist.Share[pos][ti] += v
			}
		}
	}
	if dist.Count > 0 {
		for pos := range dist.Share {
			for ti := range dist.Share[pos] {
				dist.Share[pos][ti] /= float64(dist.Count)
			}
		}
	}
	return dist
}
