package classify

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/vuc"
)

// tinyConfig keeps tests fast on one core.
func tinyConfig() Config {
	return Config{
		Window: 5,
		Conv1:  8, Conv2: 8, Hidden: 64,
		Train:       nn.TrainConfig{Epochs: 2, Batch: 32, LR: 2e-3},
		MaxPerStage: 1500,
		Seed:        1,
	}
}

var (
	tcOnce sync.Once
	tcCorp *corpus.Corpus
	tcPipe *Pipeline
	tcErr  error
)

// sharedPipeline trains one small pipeline reused across tests (training
// even a tiny CNN costs seconds on a single core).
func sharedPipeline(t *testing.T) (*corpus.Corpus, *Pipeline) {
	t.Helper()
	tcOnce.Do(func() {
		tcCorp, tcErr = corpus.Build(corpus.BuildConfig{
			Name:     "train",
			Binaries: 6,
			Profile:  synth.DefaultProfile("train"),
			Window:   5,
			Seed:     10,
		})
		if tcErr != nil {
			return
		}
		tcPipe, tcErr = Train(tcCorp, tinyConfig())
	})
	if tcErr != nil {
		t.Fatal(tcErr)
	}
	return tcCorp, tcPipe
}

func TestTrainProducesStages(t *testing.T) {
	_, p := sharedPipeline(t)
	for _, stage := range []ctypes.Stage{ctypes.Stage1, ctypes.Stage21, ctypes.Stage22, ctypes.Stage33} {
		if p.Stages[stage] == nil {
			t.Errorf("missing stage %s", stage)
		}
	}
	if p.Embed == nil || len(p.Embed.Words) == 0 {
		t.Fatal("no embedding")
	}
}

func TestEmbeddingShape(t *testing.T) {
	c, p := sharedPipeline(t)
	toks := c.Tokens(c.All()[0])
	s := p.EmbedWindow(toks)
	if len(s) != p.Cfg.SeqLen()*p.Cfg.InstDim() {
		t.Fatalf("sample length %d", len(s))
	}
}

func TestPredictionBeatsChanceOnTraining(t *testing.T) {
	c, p := sharedPipeline(t)
	refs := c.All()
	if len(refs) > 2000 {
		refs = refs[:2000]
	}
	samples := make([][]float32, len(refs))
	var labels []ctypes.Class
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
		_, s := c.At(r)
		labels = append(labels, s.Class)
	}
	preds, err := p.PredictVUCs(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Stage-1 training accuracy must beat the majority baseline.
	correct, ptrTotal := 0, 0
	for i := range preds {
		lbl, ok := StagePrediction(&preds[i], ctypes.Stage1)
		if !ok {
			t.Fatal("no stage1 prediction")
		}
		want, _ := ctypes.StageLabel(ctypes.Stage1, labels[i])
		if lbl == want {
			correct++
		}
		if want == 0 {
			ptrTotal++
		}
	}
	acc := float64(correct) / float64(len(preds))
	maj := float64(ptrTotal) / float64(len(preds))
	if maj < 0.5 {
		maj = 1 - maj
	}
	if acc < maj {
		t.Errorf("stage1 training accuracy %.3f below majority %.3f", acc, maj)
	}
	// Composed classes must be valid and confidences in (0, 1].
	for i := range preds {
		if preds[i].Class < ctypes.ClassPtrVoid || preds[i].Class > ctypes.ClassEnum {
			t.Fatalf("bad class %d", preds[i].Class)
		}
		if preds[i].Confidence <= 0 || preds[i].Confidence > 1+1e-6 {
			t.Fatalf("bad confidence %v", preds[i].Confidence)
		}
	}
}

func TestVoting(t *testing.T) {
	// Hand-built stage probabilities: two VUCs disagree at stage 1; the
	// clamped vote must follow the high-confidence one.
	mk := func(p1 float32) VUCPrediction {
		return VUCPrediction{StageProbs: map[ctypes.Stage][]float32{
			ctypes.Stage1:  {p1, 1 - p1},
			ctypes.Stage21: {0.2, 0.7, 0.1},
			ctypes.Stage22: {0.1, 0.1, 0.1, 0.1, 0.6},
			ctypes.Stage33: {0.9, 0.02, 0.01, 0.01, 0.02, 0.01, 0.01, 0.01, 0.01},
		}}
	}
	// Clamped: pointer sums 1.0+0.28+0.28 = 1.56 vs non-pointer
	// 0.08+0.72+0.72 = 1.52 → pointer wins only because 0.92 ≥ 0.9 clamps
	// to 1.0.
	votes := []VUCPrediction{mk(0.92), mk(0.28), mk(0.28)}
	vp := VoteVariable(votes, 0.9)
	if vp.StageLabels[ctypes.Stage1] != 0 {
		t.Errorf("stage1 vote = %d, want pointer", vp.StageLabels[ctypes.Stage1])
	}
	if vp.Class != ctypes.ClassPtrStruct {
		t.Errorf("class = %s, want struct*", vp.Class)
	}
	// Without clamping the same votes flip: 0.92+0.56 = 1.48 vs 1.52.
	vp2 := VoteVariable(votes, 0)
	if vp2.StageLabels[ctypes.Stage1] != 1 {
		t.Errorf("unclamped stage1 vote = %d, want non-pointer", vp2.StageLabels[ctypes.Stage1])
	}
	if vp2.Class != ctypes.ClassInt {
		t.Errorf("unclamped class = %s, want int", vp2.Class)
	}
}

func TestVotingEmpty(t *testing.T) {
	vp := VoteVariable(nil, DefaultClamp)
	if vp.Class != ctypes.ClassInt {
		t.Errorf("empty vote class = %s", vp.Class)
	}
}

func TestOcclusion(t *testing.T) {
	c, p := sharedPipeline(t)
	toks := c.Tokens(c.All()[0])
	eps, ok := p.Epsilon(toks, ctypes.Stage1)
	if !ok {
		t.Fatal("epsilon failed")
	}
	if len(eps) != p.Cfg.SeqLen() {
		t.Fatalf("eps length %d", len(eps))
	}
	for k, e := range eps {
		if e < 0 {
			t.Errorf("eps[%d] = %v negative", k, e)
		}
	}
	// Aggregation over a handful of windows.
	var windows [][]vuc.InstTok
	for _, r := range c.All()[:10] {
		windows = append(windows, c.Tokens(r))
	}
	dist := p.AggregateEpsilon(windows, ctypes.Stage1)
	if dist.Count != 10 {
		t.Fatalf("aggregated %d", dist.Count)
	}
	for pos := range dist.Share {
		for ti := 0; ti < NumThresholds-1; ti++ {
			// Shares are cumulative-from-above: (t,1) ⊇ (t+0.1,1).
			if dist.Share[pos][ti]+1e-9 < dist.Share[pos][ti+1] {
				t.Fatalf("distribution not monotone at pos %d", pos)
			}
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c, p := sharedPipeline(t)
	blob, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Same predictions after decode.
	refs := c.All()[:64]
	samples := make([][]float32, len(refs))
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
	}
	a, err := p.PredictVUCs(samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.PredictVUCs(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Class != b[i].Class {
			t.Fatalf("class mismatch at %d after round trip", i)
		}
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode(garbage) should fail")
	}
}

func TestTrainErrors(t *testing.T) {
	empty := &corpus.Corpus{Window: 5}
	if _, err := Train(empty, tinyConfig()); !errors.Is(err, ErrNoData) {
		t.Errorf("error = %v, want ErrNoData", err)
	}
	c, _ := sharedPipeline(t)
	bad := tinyConfig()
	bad.Window = 3 // corpus window is 5
	if _, err := Train(c, bad); err == nil {
		t.Error("window mismatch should fail")
	}
}

func TestFlatPipeline(t *testing.T) {
	c, _ := sharedPipeline(t)
	cfg := tinyConfig()
	cfg.Flat = true
	cfg.MaxPerStage = 800
	cfg.Train.Epochs = 1
	p, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.FlatNet == nil {
		t.Fatal("flat net missing")
	}
	refs := c.All()[:32]
	samples := make([][]float32, len(refs))
	for i, r := range refs {
		samples[i] = p.EmbedWindow(c.Tokens(r))
	}
	preds, err := p.PredictVUCs(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if preds[i].Class < ctypes.ClassPtrVoid || preds[i].Class > ctypes.ClassEnum {
			t.Fatalf("bad flat class %d", preds[i].Class)
		}
	}
	// Voting over flat predictions.
	vp := VoteVariable(preds, DefaultClamp)
	if vp.Class < ctypes.ClassPtrVoid || vp.Class > ctypes.ClassEnum {
		t.Fatalf("bad voted class %d", vp.Class)
	}
}

func TestCapRefsStratification(t *testing.T) {
	// 1000 of label 0, 10 of label 1: the cap must keep the rare label.
	var idxs, labels []int
	for i := 0; i < 1000; i++ {
		idxs = append(idxs, i)
		labels = append(labels, 0)
	}
	for i := 1000; i < 1010; i++ {
		idxs = append(idxs, i)
		labels = append(labels, 1)
	}
	sel := capRefs(idxs, labels, 2, 300, 1)
	if len(sel) > 520 {
		t.Fatalf("cap kept %d samples", len(sel))
	}
	rare := 0
	for _, i := range sel {
		if i >= 1000 {
			rare++
		}
	}
	if rare != 10 {
		t.Errorf("rare label kept %d of 10 under the floor", rare)
	}
	// No cap: identity.
	if got := capRefs(idxs, labels, 2, 0, 1); len(got) != len(idxs) {
		t.Error("cap 0 should be identity")
	}
	if got := capRefs(idxs, labels, 2, 5000, 1); len(got) != len(idxs) {
		t.Error("cap above size should be identity")
	}
}

func TestEmbedWindowContents(t *testing.T) {
	_, p := sharedPipeline(t)
	// A window of identical instructions embeds to repeated rows; PAD rows
	// are not all-zero only if PAD is in vocabulary, but BLANK-only rows
	// must differ from a real instruction row.
	real := vuc.InstTok{"mov", "%rax", "-0xIMM(%rbp)"}
	blank := vuc.InstTok{vuc.TokBlank, vuc.TokBlank, vuc.TokBlank}
	toks := make([]vuc.InstTok, p.Cfg.SeqLen())
	for i := range toks {
		toks[i] = real
	}
	a := p.EmbedWindow(toks)
	toks[0] = blank
	b := p.EmbedWindow(toks)
	rowLen := p.Cfg.InstDim()
	same := true
	for k := 0; k < rowLen; k++ {
		if a[k] != b[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("blank row embeds identically to a real instruction row")
	}
	// Rows beyond the first are untouched.
	for k := rowLen; k < len(a); k++ {
		if a[k] != b[k] {
			t.Fatal("occluding row 0 changed other rows")
		}
	}
}
