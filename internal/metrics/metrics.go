// Package metrics computes the evaluation measures the paper reports:
// per-class precision / recall / F1 (Tables III, IV, VII), weighted and
// macro averages, plain accuracy (Table VI) and confusion matrices.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion is a label-indexed confusion matrix for labels 0..N-1.
type Confusion struct {
	N      int
	Counts []int // Counts[true*N + pred]
}

// NewConfusion allocates an N-class confusion matrix.
func NewConfusion(n int) *Confusion {
	return &Confusion{N: n, Counts: make([]int, n*n)}
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(trueLabel, pred int) {
	if trueLabel < 0 || trueLabel >= c.N || pred < 0 || pred >= c.N {
		return
	}
	c.Counts[trueLabel*c.N+pred]++
}

// Total returns the number of observations.
func (c *Confusion) Total() int {
	t := 0
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// Support returns the number of observations with the given true label.
func (c *Confusion) Support(label int) int {
	s := 0
	for p := 0; p < c.N; p++ {
		s += c.Counts[label*c.N+p]
	}
	return s
}

// Accuracy is the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.N; i++ {
		correct += c.Counts[i*c.N+i]
	}
	return float64(correct) / float64(total)
}

// PRF holds precision, recall and F1.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Class computes the one-vs-rest PRF of a label.
func (c *Confusion) Class(label int) PRF {
	tp := c.Counts[label*c.N+label]
	fp, fn := 0, 0
	for i := 0; i < c.N; i++ {
		if i == label {
			continue
		}
		fp += c.Counts[i*c.N+label]
		fn += c.Counts[label*c.N+i]
	}
	var p, r, f float64
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f = 2 * p * r / (p + r)
	}
	return PRF{Precision: p, Recall: r, F1: f, Support: tp + fn}
}

// Weighted computes the support-weighted average PRF over classes with
// non-zero support — the convention scikit-learn's weighted average uses,
// matching the paper's per-application rows.
func (c *Confusion) Weighted() PRF {
	var p, r, f float64
	total := 0
	for i := 0; i < c.N; i++ {
		s := c.Support(i)
		if s == 0 {
			continue
		}
		m := c.Class(i)
		p += m.Precision * float64(s)
		r += m.Recall * float64(s)
		f += m.F1 * float64(s)
		total += s
	}
	if total == 0 {
		return PRF{}
	}
	return PRF{
		Precision: p / float64(total),
		Recall:    r / float64(total),
		F1:        f / float64(total),
		Support:   total,
	}
}

// Macro computes the unweighted mean PRF over classes with support.
func (c *Confusion) Macro() PRF {
	var p, r, f float64
	n := 0
	for i := 0; i < c.N; i++ {
		if c.Support(i) == 0 {
			continue
		}
		m := c.Class(i)
		p += m.Precision
		r += m.Recall
		f += m.F1
		n++
	}
	if n == 0 {
		return PRF{}
	}
	return PRF{Precision: p / float64(n), Recall: r / float64(n), F1: f / float64(n), Support: c.Total()}
}

// String renders the matrix for debugging.
func (c *Confusion) String() string {
	var sb strings.Builder
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			fmt.Fprintf(&sb, "%6d", c.Counts[i*c.N+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TopConfusions lists the k largest off-diagonal cells as (true, pred,
// count), most frequent first — used in error analysis.
func (c *Confusion) TopConfusions(k int) [][3]int {
	var cells [][3]int
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			if i != j && c.Counts[i*c.N+j] > 0 {
				cells = append(cells, [3]int{i, j, c.Counts[i*c.N+j]})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a][2] > cells[b][2] })
	if len(cells) > k {
		cells = cells[:k]
	}
	return cells
}
