package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicPRF(t *testing.T) {
	c := NewConfusion(2)
	// class 0: 8 correct, 2 predicted as 1; class 1: 5 correct, 1 as 0.
	for i := 0; i < 8; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 5; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 0)

	m0 := c.Class(0)
	if !approx(m0.Precision, 8.0/9) || !approx(m0.Recall, 0.8) {
		t.Errorf("class 0: %+v", m0)
	}
	if m0.Support != 10 {
		t.Errorf("support = %d", m0.Support)
	}
	m1 := c.Class(1)
	if !approx(m1.Precision, 5.0/7) || !approx(m1.Recall, 5.0/6) {
		t.Errorf("class 1: %+v", m1)
	}
	if !approx(c.Accuracy(), 13.0/16) {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
}

func TestF1Harmonic(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	m := c.Class(0)
	wantF1 := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	if !approx(m.F1, wantF1) {
		t.Errorf("F1 = %v, want %v", m.F1, wantF1)
	}
}

func TestWeightedVsMacro(t *testing.T) {
	c := NewConfusion(3)
	// class 0 is dominant and perfect; class 1 is rare and wrong.
	for i := 0; i < 90; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 10; i++ {
		c.Add(1, 2)
	}
	w, m := c.Weighted(), c.Macro()
	if w.Recall <= m.Recall {
		t.Errorf("weighted recall %v should exceed macro %v here", w.Recall, m.Recall)
	}
	if !approx(w.Recall, 0.9) {
		t.Errorf("weighted recall = %v", w.Recall)
	}
	if !approx(m.Recall, 0.5) {
		t.Errorf("macro recall = %v", m.Recall)
	}
}

func TestEmptyAndOutOfRange(t *testing.T) {
	c := NewConfusion(3)
	if c.Accuracy() != 0 || c.Total() != 0 {
		t.Error("empty matrix not zero")
	}
	c.Add(-1, 0)
	c.Add(0, 5)
	if c.Total() != 0 {
		t.Error("out-of-range adds were recorded")
	}
	if (c.Weighted() != PRF{}) || (c.Macro() != PRF{}) {
		t.Error("averages on empty matrix should be zero")
	}
}

func TestPerfectPrediction(t *testing.T) {
	c := NewConfusion(4)
	for l := 0; l < 4; l++ {
		for i := 0; i <= l; i++ {
			c.Add(l, l)
		}
	}
	if !approx(c.Accuracy(), 1) {
		t.Error("accuracy != 1")
	}
	w := c.Weighted()
	if !approx(w.Precision, 1) || !approx(w.Recall, 1) || !approx(w.F1, 1) {
		t.Errorf("weighted = %+v", w)
	}
}

func TestTopConfusions(t *testing.T) {
	c := NewConfusion(3)
	for i := 0; i < 5; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 3; i++ {
		c.Add(1, 2)
	}
	c.Add(2, 2)
	top := c.TopConfusions(10)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0] != [3]int{0, 1, 5} || top[1] != [3]int{1, 2, 3} {
		t.Errorf("top = %v", top)
	}
	if got := c.TopConfusions(1); len(got) != 1 {
		t.Errorf("k=1 gave %v", got)
	}
}

// Property: accuracy equals weighted recall for any matrix (a standard
// identity for support-weighted recall over all classes).
func TestPropertyAccuracyIsWeightedRecall(t *testing.T) {
	f := func(cells [16]uint8) bool {
		c := NewConfusion(4)
		for i, v := range cells {
			c.Counts[i] = int(v)
		}
		if c.Total() == 0 {
			return true
		}
		return math.Abs(c.Accuracy()-c.Weighted().Recall) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: all metric values stay within [0, 1].
func TestPropertyMetricsBounded(t *testing.T) {
	f := func(cells [9]uint8) bool {
		c := NewConfusion(3)
		for i, v := range cells {
			c.Counts[i] = int(v)
		}
		for l := 0; l < 3; l++ {
			m := c.Class(l)
			if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 ||
				m.F1 < 0 || m.F1 > 1 {
				return false
			}
		}
		a := c.Accuracy()
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
