// Package bulkq is CATI's durable bulk-analysis queue: corpus-scale
// jobs — a tarball of stripped binaries — flow through a crash-resumable
// work queue instead of the interactive request path.
//
//	POST   /v1/bulk               tar / tar.gz of ELFs in → job ID out (202)
//	GET    /v1/bulk               all known jobs, newest first
//	GET    /v1/bulk/{id}          job status with per-binary progress counts
//	GET    /v1/bulk/{id}/results  results as JSON lines, one line per binary
//	DELETE /v1/bulk/{id}          cancel: unstarted binaries are skipped
//
// Durability is a two-part on-disk layout under one queue directory:
//
//   - spool/<sha256>: the content-addressed image store. Entry names in
//     the archive are display metadata only — bytes land at their hash,
//     so identical binaries across jobs spool once and a hostile name
//     can never choose a path.
//   - wal.jsonl: an append-only journal of job admissions and per-binary
//     state transitions (pending → running → done/failed). A terminal
//     record carries the result payload and is fsynced before the
//     in-memory state flips.
//
// A killed daemon replays the journal on Open: binaries with a terminal
// record keep their results (never recomputed), binaries that were
// running or pending re-enter the queue, and the journal is compacted to
// a minimal snapshot. The work itself runs on worker goroutines that
// call a caller-supplied InferFunc — the serve daemon plugs in the
// in-process model (through core.InferBatch's fault isolation), the
// fleet router plugs in consistent-hash dispatch to the owner replica —
// and an optional Yield hook lets interactive admission control starve
// the bulk drain instead of the other way around.
package bulkq

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// InferFunc runs one binary image and returns the inferred variables in
// the wire schema (the /v1/infer "vars" array, as raw JSON), the
// fingerprint of the model that produced them, and how many attempts ran.
// The error return is the binary's failure — per-binary, never fatal to
// the job. Implementations must honor ctx: a cancelled context means the
// daemon is draining, and the binary will resume after restart.
type InferFunc func(ctx context.Context, image []byte) (vars json.RawMessage, model string, attempts int, err error)

// Config tunes a queue Manager; zero values take the documented defaults.
type Config struct {
	// Dir is the queue directory (spool + journal). Required.
	Dir string
	// Workers is how many binaries drain concurrently (default 2). Bulk
	// work shares the inference substrate with interactive traffic, so
	// this stays deliberately small; see Yield.
	Workers int
	// MaxEntries bounds archive entries per job (default 1024).
	MaxEntries int
	// MaxEntrySize bounds one archive entry's bytes (default 64 MiB).
	MaxEntrySize int64
	// MaxBody caps one /v1/bulk upload (default 512 MiB); oversize
	// uploads get 413 without being read into memory.
	MaxBody int64
	// Infer executes one binary. Required before Run.
	Infer InferFunc
	// Yield, when non-nil, is polled before each binary: while it
	// reports true the worker pauses, ceding the compute substrate to
	// interactive traffic. The serve daemon wires it to "admission queue
	// non-empty".
	Yield func() bool
	// YieldPause is the poll interval while yielding (default 25ms).
	YieldPause time.Duration
	// Log receives structured diagnostics (default slog.Default()).
	Log *slog.Logger
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 1024
	}
	if c.MaxEntrySize <= 0 {
		c.MaxEntrySize = 64 << 20
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 512 << 20
	}
	if c.YieldPause <= 0 {
		c.YieldPause = 25 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// Binary states. Terminal states carry either a result or an error and
// are journaled before they become visible.
const (
	binPending = "pending"
	binRunning = "running"
	binDone    = "done"
	binFailed  = "failed"
	binSkipped = "skipped" // job cancelled before this binary ran
)

// binary is one manifest entry's full lifecycle.
type binary struct {
	name     string
	sha      string
	size     int64
	state    string
	attempts int
	model    string
	vars     json.RawMessage
	errMsg   string
}

// job is one admitted bulk job.
type job struct {
	id        string
	submitted time.Time
	cancelled bool
	traceID   trace.TraceID
	parent    trace.SpanID
	bins      []binary
	resumed   int
}

// terminal reports whether a binary state needs no more work.
func terminal(state string) bool {
	return state == binDone || state == binFailed || state == binSkipped
}

// state derives the job-level state from its binaries.
func (j *job) state() string {
	if j.cancelled {
		return "cancelled"
	}
	pending, running := 0, 0
	for i := range j.bins {
		switch j.bins[i].state {
		case binRunning:
			running++
		case binPending:
			pending++
		}
	}
	switch {
	case running > 0:
		return "running"
	case pending > 0:
		return "pending"
	default:
		return "done"
	}
}

// JobStatus is the API view of one job (GET /v1/bulk/{id}).
type JobStatus struct {
	ID string `json:"id"`
	// State is pending, running, done or cancelled. A done job may still
	// hold failed binaries — check Failed.
	State    string `json:"state"`
	Binaries int    `json:"binaries"`
	Pending  int    `json:"pending"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Skipped  int    `json:"skipped"`
	// Resumed is how many of this job's binaries were re-queued by
	// journal replay after a daemon restart.
	Resumed     int       `json:"resumed,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
}

// status snapshots a job (caller holds m.mu).
func (j *job) status() JobStatus {
	st := JobStatus{ID: j.id, State: j.state(), Binaries: len(j.bins),
		Resumed: j.resumed, SubmittedAt: j.submitted}
	for i := range j.bins {
		switch j.bins[i].state {
		case binPending:
			st.Pending++
		case binRunning:
			st.Running++
		case binDone:
			st.Done++
		case binFailed:
			st.Failed++
		case binSkipped:
			st.Skipped++
		}
	}
	return st
}

// SubmitResult is the POST /v1/bulk response body.
type SubmitResult struct {
	Job JobStatus `json:"job"`
	// Skipped counts archive entries ignored at ingest (directories,
	// links, empty files) — distinct from JobStatus.Skipped, which
	// counts binaries cancelled before running.
	SkippedEntries int `json:"skipped_entries,omitempty"`
}

// ResultRecord is one line of GET /v1/bulk/{id}/results.
type ResultRecord struct {
	Index    int             `json:"idx"`
	Name     string          `json:"name"`
	SHA      string          `json:"sha"`
	State    string          `json:"state"`
	Model    string          `json:"model,omitempty"`
	Attempts int             `json:"attempts,omitempty"`
	Vars     json.RawMessage `json:"vars,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// Summary is the fleet-status view of the queue (GET /v1/fleet).
type Summary struct {
	Jobs       int            `json:"jobs"`
	ByState    map[string]int `json:"by_state,omitempty"`
	QueueDepth int            `json:"queue_depth"`
	Resumed    uint64         `json:"resumed"`
}

// ErrUnknownJob reports a job ID the queue has never seen (or that was
// journaled away).
var ErrUnknownJob = errors.New("bulkq: unknown job")

// workItem addresses one queued binary.
type workItem struct {
	j   *job
	idx int
}

// Manager owns one queue directory: the journal, the spool, the
// in-memory job table and the worker pool.
type Manager struct {
	cfg Config
	wal *wal

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	order    []string // submission order (replayed jobs first)
	queue    []workItem
	stopping bool

	resumed atomic.Uint64
}

// Open loads (or creates) the queue at cfg.Dir: replay the journal,
// re-queue every unfinished binary, compact the journal to a snapshot
// and sweep unreferenced spool blobs. Workers do not run until Run.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("bulkq: Config.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, spoolDir), 0o755); err != nil {
		return nil, fmt.Errorf("bulkq: %w", err)
	}
	m := &Manager{cfg: cfg, jobs: make(map[string]*job)}
	m.cond = sync.NewCond(&m.mu)

	recs, dropped, err := readWAL(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if dropped > 0 {
		cfg.Log.Warn("bulk journal tail dropped", "lines", dropped)
	}
	m.replay(recs)

	// Compact to a snapshot of what replay kept, then open for appends.
	if err := compactWAL(cfg.Dir, m.snapshot()); err != nil {
		return nil, err
	}
	live := make(map[string]bool)
	for _, j := range m.jobs {
		for i := range j.bins {
			live[j.bins[i].sha] = true
		}
	}
	if err := sweepSpool(cfg.Dir, live); err != nil {
		cfg.Log.Warn("bulk spool sweep failed", "error", err)
	}
	if m.wal, err = openWAL(cfg.Dir); err != nil {
		return nil, err
	}

	// Re-queue unfinished work, preserving job order. Every binary
	// re-queued here is a resume: whether it was mid-flight at the crash
	// (its journaled "running" never got a terminal record) or still
	// waiting its turn, a previous incarnation admitted it and this one
	// finishes it.
	requeued := 0
	for _, id := range m.order {
		j := m.jobs[id]
		for i := range j.bins {
			if j.bins[i].state == binPending && !j.cancelled {
				m.queue = append(m.queue, workItem{j: j, idx: i})
				requeued++
				j.resumed++
				m.resumed.Add(1)
				mResumed.Inc()
			}
		}
	}
	mQueueDepth.Set(int64(len(m.queue)))
	m.gauges()
	if len(m.jobs) > 0 {
		cfg.Log.Info("bulk queue replayed", "jobs", len(m.jobs),
			"requeued", requeued, "resumed", m.resumed.Load())
	}
	return m, nil
}

// replay folds journal records into the job table. Binaries whose last
// journaled state was "running" were in flight when the previous process
// died: they come back as pending and count as resumed.
func (m *Manager) replay(recs []walRecord) {
	for _, rec := range recs {
		switch rec.T {
		case "job":
			if len(rec.Names) == 0 || len(rec.Names) != len(rec.SHAs) || len(rec.Names) != len(rec.Sizes) {
				continue // malformed admission; nothing to run
			}
			j := &job{id: rec.ID, submitted: time.UnixMilli(rec.At)}
			if tid, ok := trace.ParseTraceID(rec.Trace); ok {
				j.traceID = tid
			}
			if sid, ok := trace.ParseSpanID(rec.Span); ok {
				j.parent = sid
			}
			for i := range rec.Names {
				j.bins = append(j.bins, binary{
					name: rec.Names[i], sha: rec.SHAs[i], size: rec.Sizes[i],
					state: binPending,
				})
			}
			m.jobs[rec.ID] = j
			m.order = append(m.order, rec.ID)
		case "bin":
			j := m.jobs[rec.ID]
			if j == nil || rec.Index < 0 || rec.Index >= len(j.bins) {
				continue
			}
			b := &j.bins[rec.Index]
			switch rec.State {
			case binRunning:
				b.state = binRunning // interrupted unless a terminal record follows
			case binDone:
				b.state, b.attempts, b.model, b.vars = binDone, rec.Attempts, rec.Model, rec.Vars
			case binFailed:
				b.state, b.attempts, b.errMsg = binFailed, rec.Attempts, rec.Err
			case binSkipped:
				b.state = binSkipped
			}
		case "cancel":
			if j := m.jobs[rec.ID]; j != nil {
				j.cancelled = true
				for i := range j.bins {
					if !terminal(j.bins[i].state) {
						j.bins[i].state = binSkipped
					}
				}
			}
		}
	}
	// Interrupted binaries — journaled running, no terminal record —
	// go back to pending; Open's requeue pass counts them as resumed
	// along with the never-started remainder.
	for _, j := range m.jobs {
		for i := range j.bins {
			if j.bins[i].state == binRunning {
				j.bins[i].state = binPending
			}
		}
	}
}

// snapshot renders the current job table as a minimal journal: one
// admission record per job, one terminal record per settled binary, one
// cancel record per cancelled job.
func (m *Manager) snapshot() []walRecord {
	var recs []walRecord
	for _, id := range m.order {
		j := m.jobs[id]
		jr := walRecord{T: "job", ID: j.id, At: j.submitted.UnixMilli()}
		for i := range j.bins {
			jr.Names = append(jr.Names, j.bins[i].name)
			jr.SHAs = append(jr.SHAs, j.bins[i].sha)
			jr.Sizes = append(jr.Sizes, j.bins[i].size)
		}
		if !j.traceID.IsZero() {
			jr.Trace, jr.Span = j.traceID.String(), j.parent.String()
		}
		recs = append(recs, jr)
		if j.cancelled {
			recs = append(recs, walRecord{T: "cancel", ID: j.id})
		}
		for i := range j.bins {
			b := &j.bins[i]
			switch b.state {
			case binDone:
				recs = append(recs, walRecord{T: "bin", ID: j.id, Index: i,
					State: binDone, Attempts: b.attempts, Model: b.model, Vars: b.vars})
			case binFailed:
				recs = append(recs, walRecord{T: "bin", ID: j.id, Index: i,
					State: binFailed, Attempts: b.attempts, Err: b.errMsg})
			}
		}
	}
	return recs
}

// newJobID returns a fresh random job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("bulkq: job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// Submit ingests one archive into a new job: spool the entries, journal
// the admission, enqueue every binary. The trace linkage (may be zero)
// ties each binary's bulk.binary span back to the submitting request.
func (m *Manager) Submit(r io.Reader, tid trace.TraceID, parent trace.SpanID) (SubmitResult, error) {
	manifest, skipped, err := ingest(m.cfg.Dir, r, m.cfg.MaxEntries, m.cfg.MaxEntrySize)
	if err != nil {
		return SubmitResult{}, err
	}
	id, err := newJobID()
	if err != nil {
		return SubmitResult{}, err
	}
	j := &job{id: id, submitted: time.Now(), traceID: tid, parent: parent}
	rec := walRecord{T: "job", ID: id, At: j.submitted.UnixMilli()}
	for _, e := range manifest {
		j.bins = append(j.bins, binary{name: e.name, sha: e.sha, size: e.size, state: binPending})
		rec.Names = append(rec.Names, e.name)
		rec.SHAs = append(rec.SHAs, e.sha)
		rec.Sizes = append(rec.Sizes, e.size)
	}
	if !tid.IsZero() {
		rec.Trace, rec.Span = tid.String(), parent.String()
	}
	// Journal before admitting: once Submit returns, a crash cannot lose
	// the job.
	if err := m.wal.append(rec); err != nil {
		return SubmitResult{}, err
	}
	mIngested.Add(uint64(len(manifest)))

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	for i := range j.bins {
		m.queue = append(m.queue, workItem{j: j, idx: i})
	}
	mQueueDepth.Set(int64(len(m.queue)))
	m.gauges()
	st := j.status()
	m.mu.Unlock()
	m.cond.Broadcast()
	m.cfg.Log.Info("bulk job admitted", "job", id,
		"binaries", len(j.bins), "skipped_entries", skipped)
	return SubmitResult{Job: st, SkippedEntries: skipped}, nil
}

// Job returns one job's status.
func (m *Manager) Job(id string) (JobStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every known job, newest submission first.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobStatus, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].status())
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].SubmittedAt.After(out[b].SubmittedAt)
	})
	return out
}

// Cancel marks a job cancelled: unstarted binaries are skipped, running
// binaries finish (their results are journaled and kept). Idempotent.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	already := j.cancelled
	j.cancelled = true
	skippedNow := 0
	for i := range j.bins {
		if j.bins[i].state == binPending {
			j.bins[i].state = binSkipped
			skippedNow++
		}
	}
	m.gauges()
	st := j.status()
	m.mu.Unlock()
	if !already {
		if err := m.wal.append(walRecord{T: "cancel", ID: id}); err != nil {
			return st, err
		}
		for i := 0; i < skippedNow; i++ {
			countBinary(binSkipped)
		}
		m.cfg.Log.Info("bulk job cancelled", "job", id, "skipped", skippedNow)
	}
	return st, nil
}

// Results streams the job's settled binaries to w as JSON lines, in
// manifest order.
func (m *Manager) Results(id string, w io.Writer) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrUnknownJob
	}
	recs := make([]ResultRecord, 0, len(j.bins))
	for i := range j.bins {
		b := &j.bins[i]
		if !terminal(b.state) {
			continue
		}
		recs = append(recs, ResultRecord{
			Index: i, Name: b.name, SHA: b.sha, State: b.state,
			Model: b.model, Attempts: b.attempts, Vars: b.vars, Error: b.errMsg,
		})
	}
	m.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Summary snapshots the queue for fleet/status listings.
func (m *Manager) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Summary{Jobs: len(m.jobs), QueueDepth: len(m.queue), Resumed: m.resumed.Load()}
	if len(m.jobs) > 0 {
		s.ByState = make(map[string]int)
		for _, j := range m.jobs {
			s.ByState[j.state()]++
		}
	}
	return s
}

// Resumed reports how many binaries journal replay re-queued over this
// manager's lifetime.
func (m *Manager) Resumed() uint64 { return m.resumed.Load() }

// gauges republishes the per-state job gauges (caller holds m.mu).
func (m *Manager) gauges() {
	counts := map[string]int{"pending": 0, "running": 0, "done": 0, "cancelled": 0}
	for _, j := range m.jobs {
		counts[j.state()]++
	}
	for state, n := range counts {
		setJobsGauge(state, n)
	}
}

// Run drains the queue with cfg.Workers goroutines until ctx is
// cancelled, then returns once every in-flight binary has stopped.
// Binaries interrupted by cancellation keep their journaled "running"
// state and resume on the next Open.
func (m *Manager) Run(ctx context.Context) {
	if m.cfg.Infer == nil {
		panic("bulkq: Run without Config.Infer")
	}
	stop := make(chan struct{})
	go func() {
		<-ctx.Done()
		m.mu.Lock()
		m.stopping = true
		m.mu.Unlock()
		m.cond.Broadcast()
		close(stop)
	}()
	var wg sync.WaitGroup
	for w := 0; w < m.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.worker(ctx)
		}()
	}
	wg.Wait()
	<-stop
}

// pop blocks for the next runnable work item; ok=false means the
// manager is stopping.
func (m *Manager) pop() (workItem, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for len(m.queue) > 0 {
			it := m.queue[0]
			m.queue = m.queue[1:]
			mQueueDepth.Set(int64(len(m.queue)))
			// Cancelled (or otherwise already-settled) binaries are
			// dropped here, not run.
			if it.j.bins[it.idx].state == binPending {
				return it, true
			}
		}
		if m.stopping {
			return workItem{}, false
		}
		m.cond.Wait()
	}
}

// worker is one drain goroutine.
func (m *Manager) worker(ctx context.Context) {
	for {
		it, ok := m.pop()
		if !ok {
			return
		}
		if !m.yield(ctx) {
			// Shutdown while yielding: the binary never started, its
			// journaled state is still pending — nothing to do.
			m.requeue(it)
			return
		}
		m.runOne(ctx, it)
	}
}

// yield pauses while interactive traffic needs the substrate. Returns
// false when ctx was cancelled while waiting.
func (m *Manager) yield(ctx context.Context) bool {
	if m.cfg.Yield == nil {
		return ctx.Err() == nil
	}
	for m.cfg.Yield() {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(m.cfg.YieldPause):
		}
	}
	return ctx.Err() == nil
}

// requeue puts an unstarted item back (shutdown path), so a Run on the
// same Manager could resume it without a journal replay.
func (m *Manager) requeue(it workItem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if it.j.bins[it.idx].state == binPending {
		m.queue = append(m.queue, it)
		mQueueDepth.Set(int64(len(m.queue)))
	}
}

// runOne executes one binary end to end: journal running, read the
// spool, infer under a bulk.binary span linked to the submitting trace,
// journal the terminal record.
func (m *Manager) runOne(ctx context.Context, it workItem) {
	j, i := it.j, it.idx
	m.mu.Lock()
	b := &j.bins[i]
	if b.state != binPending {
		m.mu.Unlock()
		return
	}
	b.state = binRunning
	m.gauges()
	name, sha := b.name, b.sha
	m.mu.Unlock()

	if err := m.wal.append(walRecord{T: "bin", ID: j.id, Index: i, State: binRunning}); err != nil {
		m.cfg.Log.Error("bulk journal append failed", "job", j.id, "idx", i, "error", err)
	}

	// The span hangs off the submitting request's trace, so one trace
	// holds bulk.ingest and every bulk.binary it fanned out to.
	bctx := ctx
	var span *trace.Span
	if !j.traceID.IsZero() {
		bctx, span = trace.StartRemote(ctx, j.traceID, j.parent, "bulk.binary",
			trace.String("job", j.id), trace.Int("idx", i),
			trace.String("name", name))
	} else {
		bctx, span = trace.Start(ctx, "bulk.binary",
			trace.String("job", j.id), trace.Int("idx", i),
			trace.String("name", name))
	}

	start := time.Now()
	image, rerr := spoolGet(m.cfg.Dir, sha)
	var vars json.RawMessage
	var model string
	attempts := 1
	err := rerr
	if err == nil {
		vars, model, attempts, err = m.cfg.Infer(bctx, image)
	}
	if ctx.Err() != nil {
		// Draining: do not journal a terminal state — the running record
		// stands, and replay resumes this binary. The in-memory state
		// goes back to pending so a same-process Run restart is coherent.
		span.Event("interrupted")
		span.End()
		m.mu.Lock()
		b.state = binPending
		m.mu.Unlock()
		return
	}
	mBinarySeconds.Observe(time.Since(start).Seconds())

	rec := walRecord{T: "bin", ID: j.id, Index: i, Attempts: attempts}
	if err != nil {
		rec.State, rec.Err = binFailed, err.Error()
	} else {
		rec.State, rec.Model, rec.Vars = binDone, model, vars
	}
	span.SetError(err)
	span.SetAttr(trace.Int("attempts", attempts))
	span.End()
	// Terminal record hits disk before the state flips: a crash after
	// this line never recomputes the binary.
	if werr := m.wal.append(rec); werr != nil {
		m.cfg.Log.Error("bulk journal append failed", "job", j.id, "idx", i, "error", werr)
	}

	m.mu.Lock()
	if err != nil {
		b.state, b.attempts, b.errMsg = binFailed, attempts, err.Error()
	} else {
		b.state, b.attempts, b.model, b.vars = binDone, attempts, model, vars
	}
	countBinary(b.state)
	jobDone := j.state() == "done" || (j.cancelled && j.state() == "cancelled" && !anyOpen(j))
	st := j.status()
	m.gauges()
	m.mu.Unlock()

	if err != nil {
		m.cfg.Log.Warn("bulk binary failed", "job", j.id, "idx", i,
			"name", name, "attempts", attempts, "error", err)
	}
	if jobDone {
		if werr := m.wal.append(walRecord{T: "jobdone", ID: j.id}); werr != nil {
			m.cfg.Log.Error("bulk journal append failed", "job", j.id, "error", werr)
		}
		m.cfg.Log.Info("bulk job finished", "job", j.id,
			"done", st.Done, "failed", st.Failed, "skipped", st.Skipped,
			"elapsed", time.Since(st.SubmittedAt).Round(time.Millisecond))
	}
}

// anyOpen reports whether any binary is still pending or running
// (caller holds m.mu).
func anyOpen(j *job) bool {
	for i := range j.bins {
		if !terminal(j.bins[i].state) {
			return true
		}
	}
	return false
}

// Close releases the journal handle. Call after Run has returned.
func (m *Manager) Close() error {
	return m.wal.close()
}
