package bulkq

import "repro/internal/telemetry"

// Bulk-queue telemetry. Queue depth and per-state job counts are the
// capacity-planning signals; the binaries counter (rate() gives
// binaries/sec) and the per-binary latency histogram describe drain
// throughput; the resume counter proves crash recovery actually runs in
// production instead of silently recomputing.
var (
	mQueueDepth = telemetry.Default().Gauge("cati_bulk_queue_depth",
		"Binaries admitted to the bulk work queue and not yet executing.")
	mBinarySeconds = telemetry.Default().Histogram("cati_bulk_binary_seconds",
		"Per-binary bulk inference latency, spool read included.",
		telemetry.StageBuckets)
	mResumed = telemetry.Default().Counter("cati_bulk_resumed_total",
		"Binaries re-queued by journal replay after a restart.")
	mIngested = telemetry.Default().Counter("cati_bulk_ingested_total",
		"Archive entries accepted into the spool across all jobs.")
)

// countBinary records one settled binary by outcome (done/failed/skipped).
func countBinary(outcome string) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Counter("cati_bulk_binaries_total",
		"Bulk-queue binaries settled, by outcome.", "outcome", outcome).Inc()
}

// setJobsGauge publishes the per-state job counts.
func setJobsGauge(state string, n int) {
	if !telemetry.On() {
		return
	}
	telemetry.Default().Gauge("cati_bulk_jobs",
		"Bulk jobs currently known to the queue, by state.", "state", state).Set(int64(n))
}
