package bulkq

import (
	"archive/tar"
	"bufio"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"
)

// spoolDir is the content-addressed image store inside a queue
// directory: one file per distinct binary, named by its SHA-256. Jobs
// reference images by hash, so a corpus re-submitted (or two jobs
// sharing system libraries) spools each image exactly once, and a
// hostile archive entry name can never influence where bytes land on
// disk — the name is display metadata, nothing more.
const spoolDir = "spool"

// IngestError reports a rejected archive: the entry that broke the
// bounds (when one did) and why. The HTTP layer maps it to 400 —
// deterministic input problems, not server faults. Cause, when set,
// carries the underlying read error so wrappers like
// http.MaxBytesError stay reachable through errors.As (an oversized
// upload must answer 413, not 400).
type IngestError struct {
	Entry  string
	Reason string
	Cause  error
}

func (e *IngestError) Error() string {
	if e.Entry == "" {
		return "bulkq: " + e.Reason
	}
	return fmt.Sprintf("bulkq: entry %q: %s", e.Entry, e.Reason)
}

func (e *IngestError) Unwrap() error { return e.Cause }

// manifestEntry is one accepted archive entry, spooled and hashed.
type manifestEntry struct {
	name string
	sha  string
	size int64
}

// gzipMagic sniffs the two-byte gzip signature so /v1/bulk accepts both
// plain tar and tar.gz without a content-type contract.
var gzipMagic = []byte{0x1f, 0x8b}

// ingest streams a tar or tar.gz archive into the spool, enforcing
// entry-count and entry-size bounds and sanitizing names. Regular files
// become manifest entries; directories, symlinks, hardlinks and
// zero-length entries are skipped (counted); entries whose names escape
// the archive root (absolute or ../) and entries over maxEntry bytes
// reject the whole archive — a bulk job is one corpus, and a corpus with
// hostile members is refused, not silently thinned.
func ingest(dir string, r io.Reader, maxEntries int, maxEntry int64) (manifest []manifestEntry, skipped int, err error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == gzipMagic[0] && magic[1] == gzipMagic[1] {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, 0, &IngestError{Reason: "bad gzip stream: " + err.Error(), Cause: err}
		}
		defer gz.Close()
		return ingestTar(dir, gz, maxEntries, maxEntry)
	}
	return ingestTar(dir, br, maxEntries, maxEntry)
}

// ingestTar is the tar walk behind ingest.
func ingestTar(dir string, r io.Reader, maxEntries int, maxEntry int64) (manifest []manifestEntry, skipped int, err error) {
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, &IngestError{Reason: "reading archive: " + err.Error(), Cause: err}
		}
		if hdr.Typeflag == tar.TypeDir {
			// Directories only structure the archive and their names are
			// never reported, so they skip before sanitization — `tar -cf
			// corpus.tar .` emits a "./" root entry that must not reject
			// the archive.
			skipped++
			continue
		}
		name, ok := sanitizeName(hdr.Name)
		if !ok {
			return nil, 0, &IngestError{Entry: hdr.Name, Reason: "name escapes the archive root"}
		}
		if hdr.Typeflag != tar.TypeReg {
			// Links and specials have no content to infer on (and
			// following them is exactly the class of surprise a spool
			// must not have).
			skipped++
			continue
		}
		if hdr.Size == 0 {
			skipped++
			continue
		}
		if hdr.Size > maxEntry {
			return nil, 0, &IngestError{Entry: hdr.Name,
				Reason: fmt.Sprintf("entry is %d bytes (limit %d)", hdr.Size, maxEntry)}
		}
		if len(manifest) >= maxEntries {
			return nil, 0, &IngestError{Reason: fmt.Sprintf("archive exceeds %d entries", maxEntries)}
		}
		// LimitReader belts the header's claim: a forged Size cannot make
		// the spool write unboundedly.
		image, err := io.ReadAll(io.LimitReader(tr, maxEntry+1))
		if err != nil {
			return nil, 0, &IngestError{Entry: hdr.Name, Reason: "reading entry: " + err.Error(), Cause: err}
		}
		if int64(len(image)) > maxEntry {
			return nil, 0, &IngestError{Entry: hdr.Name,
				Reason: fmt.Sprintf("entry exceeds %d bytes", maxEntry)}
		}
		sha, err := spoolPut(dir, image)
		if err != nil {
			return nil, 0, err
		}
		manifest = append(manifest, manifestEntry{name: name, sha: sha, size: int64(len(image))})
	}
	if len(manifest) == 0 {
		return nil, 0, &IngestError{Reason: "archive holds no regular files"}
	}
	return manifest, skipped, nil
}

// sanitizeName cleans an archive entry name for display and rejects
// escapes. The spool never uses the name as a path, so this guards the
// API surface (status/results reports), not the filesystem.
func sanitizeName(name string) (string, bool) {
	name = strings.TrimPrefix(name, "./")
	clean := path.Clean(name)
	if clean == "." || clean == ".." || strings.HasPrefix(clean, "../") || strings.HasPrefix(clean, "/") {
		return "", false
	}
	return clean, true
}

// spoolPut stores one image content-addressed: write to a temp file,
// rename to spool/<sha256>. An image already spooled (same hash, same
// size) is not rewritten. The rename is atomic, so a crash mid-write
// leaves only a temp file that the next Open sweeps, never a truncated
// addressed blob.
func spoolPut(dir string, image []byte) (string, error) {
	sum := sha256.Sum256(image)
	sha := hex.EncodeToString(sum[:])
	dst := filepath.Join(dir, spoolDir, sha)
	if st, err := os.Stat(dst); err == nil && st.Size() == int64(len(image)) {
		return sha, nil
	}
	tmp, err := os.CreateTemp(filepath.Join(dir, spoolDir), "ingest-*.tmp")
	if err != nil {
		return "", fmt.Errorf("bulkq: spool: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(image); err != nil {
		tmp.Close()
		return "", fmt.Errorf("bulkq: spool: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("bulkq: spool: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("bulkq: spool: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", fmt.Errorf("bulkq: spool: %w", err)
	}
	return sha, nil
}

// spoolGet reads one spooled image back by hash.
func spoolGet(dir, sha string) ([]byte, error) {
	image, err := os.ReadFile(filepath.Join(dir, spoolDir, sha))
	if err != nil {
		return nil, fmt.Errorf("bulkq: spool: %w", err)
	}
	return image, nil
}

// sweepSpool removes ingest temp files a crash left behind and every
// addressed blob no live job references. Runs during Open, after replay
// decided which jobs (and so which hashes) still exist.
func sweepSpool(dir string, live map[string]bool) error {
	entries, err := os.ReadDir(filepath.Join(dir, spoolDir))
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") || !live[name] {
			if err := os.Remove(filepath.Join(dir, spoolDir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}
