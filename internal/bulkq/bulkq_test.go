package bulkq

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// tarEntry describes one archive member for mkTar; typ defaults to a
// regular file and size defaults to len(body).
type tarEntry struct {
	name string
	body []byte
	typ  byte
	link string
}

// mkTar builds an in-memory tar (optionally gzipped) archive.
func mkTar(t testing.TB, gz bool, entries []tarEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w io.Writer = &buf
	var gzw *gzip.Writer
	if gz {
		gzw = gzip.NewWriter(&buf)
		w = gzw
	}
	tw := tar.NewWriter(w)
	for _, e := range entries {
		typ := e.typ
		if typ == 0 {
			typ = tar.TypeReg
		}
		hdr := &tar.Header{Name: e.name, Mode: 0o644, Typeflag: typ,
			Size: int64(len(e.body)), Linkname: e.link}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		if typ == tar.TypeReg && len(e.body) > 0 {
			if _, err := tw.Write(e.body); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if gzw != nil {
		if err := gzw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// corpusTar builds a plain tar of n distinct regular "binaries".
func corpusTar(t testing.TB, n int) ([]byte, [][]byte) {
	t.Helper()
	images := make([][]byte, n)
	entries := make([]tarEntry, n)
	for i := range images {
		images[i] = []byte(fmt.Sprintf("elf-image-%03d-%s", i, strings.Repeat("x", 64)))
		entries[i] = tarEntry{name: fmt.Sprintf("bin-%03d.elf", i), body: images[i]}
	}
	return mkTar(t, false, entries), images
}

func shaHex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// varsFor is the deterministic fake inference result for an image, so
// resumed runs and control runs must agree byte for byte.
func varsFor(image []byte) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`[{"sha":%q}]`, shaHex(image)[:16]))
}

func okInfer(_ context.Context, image []byte) (json.RawMessage, string, int, error) {
	return varsFor(image), "mtest", 1, nil
}

type tWriter struct{ t testing.TB }

func (w tWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimSuffix(string(p), "\n"))
	return len(p), nil
}

func testLog(t testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(tWriter{t}, nil))
}

// openMgr opens a queue at dir with test defaults; mut tweaks the config.
func openMgr(t testing.TB, dir string, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{Dir: dir, Workers: 2, Infer: okInfer, Log: testLog(t),
		YieldPause: time.Millisecond}
	if mut != nil {
		mut(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runMgr starts the worker pool and returns a stop function that drains
// it and closes the journal. Safe to call once.
func runMgr(t testing.TB, m *Manager) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
			if err := m.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
	}
	t.Cleanup(stop)
	return stop
}

func submit(t testing.TB, m *Manager, archive []byte) SubmitResult {
	t.Helper()
	res, err := m.Submit(bytes.NewReader(archive), trace.TraceID{}, trace.SpanID{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func waitJob(t testing.TB, m *Manager, id string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := m.Job(id)
		if ok && pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting on job %s: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func settled(st JobStatus) bool { return st.Pending == 0 && st.Running == 0 }

func resultLines(t testing.TB, m *Manager, id string) []ResultRecord {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Results(id, &buf); err != nil {
		t.Fatal(err)
	}
	var recs []ResultRecord
	dec := json.NewDecoder(&buf)
	for {
		var rec ResultRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return recs
		} else if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

// TestSubmitDrainResults is the package's happy path: a tar.gz corpus
// in, every binary settled done, results streamed in manifest order with
// the InferFunc's payload intact.
func TestSubmitDrainResults(t *testing.T) {
	archive, images := corpusTar(t, 5)
	// Exercise the gzip sniff too.
	var gzbuf bytes.Buffer
	gzw := gzip.NewWriter(&gzbuf)
	gzw.Write(archive)
	gzw.Close()

	m := openMgr(t, t.TempDir(), nil)
	runMgr(t, m)

	res := submit(t, m, gzbuf.Bytes())
	if res.Job.Binaries != 5 || res.SkippedEntries != 0 {
		t.Fatalf("submit: %+v", res)
	}
	st := waitJob(t, m, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	if st.Done != 5 || st.Failed != 0 || st.Resumed != 0 {
		t.Fatalf("final status: %+v", st)
	}

	recs := resultLines(t, m, res.Job.ID)
	if len(recs) != 5 {
		t.Fatalf("results: %d lines, want 5", len(recs))
	}
	for i, rec := range recs {
		want := ResultRecord{Index: i, Name: fmt.Sprintf("bin-%03d.elf", i),
			SHA: shaHex(images[i]), State: binDone, Model: "mtest",
			Attempts: 1, Vars: varsFor(images[i])}
		if rec.Index != want.Index || rec.Name != want.Name || rec.SHA != want.SHA ||
			rec.State != want.State || rec.Model != want.Model ||
			rec.Attempts != want.Attempts || !bytes.Equal(rec.Vars, want.Vars) {
			t.Fatalf("result %d: %+v, want %+v", i, rec, want)
		}
	}

	if jobs := m.Jobs(); len(jobs) != 1 || jobs[0].ID != res.Job.ID {
		t.Fatalf("jobs list: %+v", jobs)
	}
	if s := m.Summary(); s.Jobs != 1 || s.ByState["done"] != 1 || s.QueueDepth != 0 {
		t.Fatalf("summary: %+v", s)
	}
}

// Per-binary failures settle as failed without touching the rest of the
// job, and the job still finishes.
func TestBinaryFailureIsolated(t *testing.T) {
	archive, images := corpusTar(t, 4)
	poison := shaHex(images[2])
	m := openMgr(t, t.TempDir(), func(c *Config) {
		c.Infer = func(_ context.Context, image []byte) (json.RawMessage, string, int, error) {
			if shaHex(image) == poison {
				return nil, "", 2, errors.New("injected inference failure")
			}
			return varsFor(image), "mtest", 1, nil
		}
	})
	runMgr(t, m)
	res := submit(t, m, archive)
	st := waitJob(t, m, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	if st.Done != 3 || st.Failed != 1 {
		t.Fatalf("final status: %+v", st)
	}
	for _, rec := range resultLines(t, m, res.Job.ID) {
		if rec.SHA == poison {
			if rec.State != binFailed || rec.Error == "" || rec.Attempts != 2 {
				t.Fatalf("poison record: %+v", rec)
			}
		} else if rec.State != binDone {
			t.Fatalf("healthy record failed: %+v", rec)
		}
	}
}

// Ingest bounds: hostile members reject the whole archive, inert ones
// (directories, links, empty files) are skipped and counted.
func TestIngestBounds(t *testing.T) {
	m := openMgr(t, t.TempDir(), func(c *Config) {
		c.MaxEntries = 3
		c.MaxEntrySize = 128
	})
	defer m.Close()

	rejects := []struct {
		name    string
		entries []tarEntry
	}{
		{"zip-slip relative", []tarEntry{{name: "../evil.elf", body: []byte("x")}}},
		{"zip-slip nested", []tarEntry{{name: "a/../../evil.elf", body: []byte("x")}}},
		{"absolute path", []tarEntry{{name: "/etc/evil.elf", body: []byte("x")}}},
		{"oversized entry", []tarEntry{{name: "big.elf", body: bytes.Repeat([]byte("y"), 129)}}},
		{"too many entries", []tarEntry{
			{name: "a", body: []byte("1")}, {name: "b", body: []byte("2")},
			{name: "c", body: []byte("3")}, {name: "d", body: []byte("4")},
		}},
		{"no regular files", []tarEntry{{name: "dir/", typ: tar.TypeDir}}},
	}
	for _, tc := range rejects {
		_, err := m.Submit(bytes.NewReader(mkTar(t, false, tc.entries)), trace.TraceID{}, trace.SpanID{})
		var ie *IngestError
		if !errors.As(err, &ie) {
			t.Fatalf("%s: err = %v, want IngestError", tc.name, err)
		}
	}
	// Garbage that is neither tar nor gzip.
	if _, err := m.Submit(strings.NewReader("certainly not a tar archive, far too short and wrong"), trace.TraceID{}, trace.SpanID{}); err == nil {
		t.Fatal("garbage archive admitted")
	}

	// Skipped-but-tolerated members.
	res := submit(t, m, mkTar(t, false, []tarEntry{
		{name: "dir/", typ: tar.TypeDir},
		{name: "link", typ: tar.TypeSymlink, link: "/etc/passwd"},
		{name: "hard", typ: tar.TypeLink, link: "dir/real.elf"},
		{name: "empty.elf"},
		{name: "./dir/real.elf", body: []byte("real-image-bytes")},
	}))
	if res.SkippedEntries != 4 || res.Job.Binaries != 1 {
		t.Fatalf("submit: %+v", res)
	}
	st, _ := m.Job(res.Job.ID)
	if st.Binaries != 1 {
		t.Fatalf("job: %+v", st)
	}

	// The shape `tar -cf corpus.tar .` produces: a "./" root directory
	// entry ahead of the files. The dir must skip, not reject.
	res = submit(t, m, mkTar(t, false, []tarEntry{
		{name: "./", typ: tar.TypeDir},
		{name: "./bin.elf", body: []byte("root-dir-image")},
	}))
	if res.SkippedEntries != 1 || res.Job.Binaries != 1 {
		t.Fatalf("tar -cf . shape: %+v", res)
	}
}

// Cancel skips unstarted binaries; the one already running finishes and
// keeps its result.
func TestCancelSkipsPending(t *testing.T) {
	archive, _ := corpusTar(t, 4)
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	m := openMgr(t, t.TempDir(), func(c *Config) {
		c.Workers = 1
		c.Infer = func(ctx context.Context, image []byte) (json.RawMessage, string, int, error) {
			started <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, "", 1, ctx.Err()
			}
			return varsFor(image), "mtest", 1, nil
		}
	})
	runMgr(t, m)
	res := submit(t, m, archive)
	<-started // binary 0 is in flight

	st, err := m.Cancel(res.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" || st.Skipped != 3 || st.Running != 1 {
		t.Fatalf("status after cancel: %+v", st)
	}
	if _, err := m.Cancel(res.Job.ID); err != nil { // idempotent
		t.Fatal(err)
	}
	close(gate)
	st = waitJob(t, m, res.Job.ID, settled)
	if st.Done != 1 || st.Skipped != 3 || st.State != "cancelled" {
		t.Fatalf("final status: %+v", st)
	}
	recs := resultLines(t, m, res.Job.ID)
	if len(recs) != 4 || recs[0].State != binDone || recs[1].State != binSkipped {
		t.Fatalf("results: %+v", recs)
	}

	if _, err := m.Cancel("jdeadbeef00000000"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestCrashResume is the tentpole invariant, in-process: kill the worker
// pool mid-job (one binary in flight, half the corpus untouched), reopen
// the same queue directory, and the new incarnation must (a) re-queue
// exactly the unfinished binaries, (b) never call Infer again for the
// completed ones, and (c) produce results byte-identical to a run that
// was never interrupted.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	archive, images := corpusTar(t, 6)

	var completed atomic.Int32
	infer1 := func(ctx context.Context, image []byte) (json.RawMessage, string, int, error) {
		if completed.Load() >= 2 {
			<-ctx.Done() // simulate a binary in flight when the daemon dies
			return nil, "", 1, ctx.Err()
		}
		completed.Add(1)
		return varsFor(image), "mtest", 1, nil
	}
	m1 := openMgr(t, dir, func(c *Config) { c.Workers = 1; c.Infer = infer1 })
	stop1 := runMgr(t, m1)
	res := submit(t, m1, archive)
	id := res.Job.ID
	waitJob(t, m1, id, func(st JobStatus) bool { return st.Done == 2 && st.Running == 1 })
	firstResults := resultLines(t, m1, id)
	stop1() // cancels the context: the in-flight binary is abandoned, not journaled

	if len(firstResults) != 2 {
		t.Fatalf("settled before crash: %d, want 2", len(firstResults))
	}
	doneSHAs := map[string]bool{firstResults[0].SHA: true, firstResults[1].SHA: true}

	// Second incarnation: replay, then finish the job.
	var recomputed []string
	var mu sync.Mutex
	infer2 := func(_ context.Context, image []byte) (json.RawMessage, string, int, error) {
		if sha := shaHex(image); doneSHAs[sha] {
			mu.Lock()
			recomputed = append(recomputed, sha)
			mu.Unlock()
		}
		return varsFor(image), "mtest", 1, nil
	}
	m2 := openMgr(t, dir, func(c *Config) { c.Infer = infer2 })
	if got := m2.Resumed(); got != 4 {
		t.Fatalf("resumed counter after replay: %d, want 4", got)
	}
	st, ok := m2.Job(id)
	if !ok || st.Done != 2 || st.Pending != 4 || st.Resumed != 4 {
		t.Fatalf("replayed status: %+v (ok=%v)", st, ok)
	}
	runMgr(t, m2)
	st = waitJob(t, m2, id, func(st JobStatus) bool { return st.State == "done" })
	if st.Done != 6 || st.Failed != 0 {
		t.Fatalf("resumed final status: %+v", st)
	}
	if len(recomputed) != 0 {
		t.Fatalf("completed binaries recomputed after resume: %v", recomputed)
	}

	// Byte-identical to an uninterrupted run of the same corpus.
	var resumedBuf bytes.Buffer
	if err := m2.Results(id, &resumedBuf); err != nil {
		t.Fatal(err)
	}
	mc := openMgr(t, t.TempDir(), nil)
	runMgr(t, mc)
	cres := submit(t, mc, archive)
	waitJob(t, mc, cres.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	var controlBuf bytes.Buffer
	if err := mc.Results(cres.Job.ID, &controlBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedBuf.Bytes(), controlBuf.Bytes()) {
		t.Fatalf("resumed results differ from uninterrupted run:\n%s\nvs\n%s",
			resumedBuf.Bytes(), controlBuf.Bytes())
	}
	_ = images
}

// A torn journal tail (the half-written line a SIGKILL leaves) is
// dropped, settled results survive, and Open compacts the journal to a
// minimal snapshot.
func TestTornTailAndCompaction(t *testing.T) {
	dir := t.TempDir()
	archive, _ := corpusTar(t, 2)
	m1 := openMgr(t, dir, nil)
	stop1 := runMgr(t, m1)
	res := submit(t, m1, archive)
	waitJob(t, m1, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	stop1()

	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"bin","id":"jtorn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := openMgr(t, dir, nil)
	defer m2.Close()
	st, ok := m2.Job(res.Job.ID)
	if !ok || st.Done != 2 || st.State != "done" || st.Resumed != 0 {
		t.Fatalf("status after torn-tail replay: %+v (ok=%v)", st, ok)
	}
	// The compacted journal is exactly: one admission + two terminal
	// records. No running records, no jobdone marker, no torn bytes.
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("compacted journal has %d lines, want 3:\n%s", len(lines), data)
	}
	for _, line := range lines {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("compacted journal line %q: %v", line, err)
		}
		if rec.T == "bin" && rec.State != binDone {
			t.Fatalf("non-terminal record survived compaction: %s", line)
		}
	}
}

// The Yield hook starves the bulk drain while interactive traffic needs
// the substrate.
func TestYieldDefersToInteractive(t *testing.T) {
	archive, _ := corpusTar(t, 3)
	var busy atomic.Bool
	busy.Store(true)
	m := openMgr(t, t.TempDir(), func(c *Config) {
		c.Yield = busy.Load
	})
	runMgr(t, m)
	res := submit(t, m, archive)
	time.Sleep(30 * time.Millisecond)
	if st, _ := m.Job(res.Job.ID); st.Done != 0 {
		t.Fatalf("bulk work ran while yielding: %+v", st)
	}
	busy.Store(false)
	waitJob(t, m, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
}

// Spool hygiene: identical images spool once, and Open sweeps temp files
// and unreferenced blobs while keeping live ones.
func TestSpoolDedupAndSweep(t *testing.T) {
	dir := t.TempDir()
	img := []byte("the-one-binary-image")
	archive := mkTar(t, false, []tarEntry{
		{name: "a.elf", body: img}, {name: "b.elf", body: img},
	})
	m1 := openMgr(t, dir, nil)
	stop1 := runMgr(t, m1)
	res := submit(t, m1, archive)
	waitJob(t, m1, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	stop1()

	spool := filepath.Join(dir, spoolDir)
	ents, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != shaHex(img) {
		t.Fatalf("spool after dedup: %v", ents)
	}
	// Litter: a crashed ingest temp file and an orphaned blob.
	os.WriteFile(filepath.Join(spool, "ingest-123.tmp"), []byte("junk"), 0o644)
	os.WriteFile(filepath.Join(spool, strings.Repeat("ab", 32)), []byte("orphan"), 0o644)

	m2 := openMgr(t, dir, nil)
	defer m2.Close()
	ents, err = os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != shaHex(img) {
		t.Fatalf("spool after sweep: %v", ents)
	}
}

// The HTTP surface end to end: submit, poll, stream results, cancel,
// and the 400/404/413 edges.
func TestHTTPEndpoints(t *testing.T) {
	m := openMgr(t, t.TempDir(), func(c *Config) { c.MaxBody = 4096 })
	runMgr(t, m)
	mux := http.NewServeMux()
	m.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	archive, _ := corpusTar(t, 3)
	resp, err := http.Post(ts.URL+"/v1/bulk", "application/x-tar", bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResult
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.Job.Binaries != 3 {
		t.Fatalf("submit: code=%d err=%v sub=%+v", resp.StatusCode, err, sub)
	}
	id := sub.Job.ID

	waitJob(t, m, id, func(st JobStatus) bool { return st.State == "done" })
	resp, err = http.Get(ts.URL + "/v1/bulk/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.Done != 3 {
		t.Fatalf("status: err=%v st=%+v", err, st)
	}

	resp, err = http.Get(ts.URL + "/v1/bulk/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content-type %q", ct)
	}
	if n := bytes.Count(bytes.TrimSpace(body), []byte("\n")) + 1; n != 3 {
		t.Fatalf("results: %d lines, want 3:\n%s", n, body)
	}

	resp, err = http.Get(ts.URL + "/v1/bulk")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) != 1 {
		t.Fatalf("list: err=%v %+v", err, list)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/bulk/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	for _, path := range []string{"/v1/bulk/jnope", "/v1/bulk/jnope/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}

	// Garbage body → 400 with the JSON error envelope.
	resp, err = http.Post(ts.URL+"/v1/bulk", "application/x-tar",
		strings.NewReader("this is not a tar archive at all, not even close"))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	err = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusBadRequest || eb.Error == "" {
		t.Fatalf("garbage submit: code=%d err=%v body=%+v", resp.StatusCode, err, eb)
	}

	// Oversized body → 413, cut off mid-stream by MaxBytesReader.
	big := mkTar(t, false, []tarEntry{{name: "big.elf", body: bytes.Repeat([]byte("z"), 16<<10)}})
	resp, err = http.Post(ts.URL+"/v1/bulk", "application/x-tar", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %d, want 413", resp.StatusCode)
	}
}

// Submitted jobs survive a restart even if no worker ever ran: Open
// re-queues the whole manifest and counts it resumed.
func TestResumeNeverStarted(t *testing.T) {
	dir := t.TempDir()
	archive, _ := corpusTar(t, 3)
	m1 := openMgr(t, dir, nil)
	res := submit(t, m1, archive) // journaled; workers never started
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := openMgr(t, dir, nil)
	runMgr(t, m2)
	st := waitJob(t, m2, res.Job.ID, func(st JobStatus) bool { return st.State == "done" })
	if st.Done != 3 || st.Resumed != 3 {
		t.Fatalf("resumed status: %+v", st)
	}
}
