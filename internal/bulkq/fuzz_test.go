package bulkq

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzTar hand-builds seed archives without a *testing.T (seeds are
// added outside the fuzz body).
func fuzzTar(gz bool, entries []tarEntry) []byte {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, e := range entries {
		typ := e.typ
		if typ == 0 {
			typ = tar.TypeReg
		}
		_ = tw.WriteHeader(&tar.Header{Name: e.name, Mode: 0o644,
			Typeflag: typ, Size: int64(len(e.body)), Linkname: e.link})
		if typ == tar.TypeReg {
			_, _ = tw.Write(e.body)
		}
	}
	_ = tw.Close()
	if !gz {
		return buf.Bytes()
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	_, _ = zw.Write(buf.Bytes())
	_ = zw.Close()
	return zbuf.Bytes()
}

// FuzzBulkIngest throws arbitrary bytes at the archive ingest path and
// holds it to its contract: no panic, hostile input fails with an
// IngestError (never a filesystem fault), and whatever is admitted is
// fully sanitized — clean relative names, bounded sizes, and spool blobs
// that really are the content their address claims.
func FuzzBulkIngest(f *testing.F) {
	const maxEntries, maxEntry = 8, 4096
	img := []byte("fuzz-image-bytes")
	f.Add(fuzzTar(false, []tarEntry{{name: "ok.elf", body: img}}))
	f.Add(fuzzTar(true, []tarEntry{{name: "dir/ok.elf", body: img}}))
	f.Add(fuzzTar(false, []tarEntry{{name: "../slip.elf", body: img}}))
	f.Add(fuzzTar(false, []tarEntry{{name: "/abs.elf", body: img}}))
	f.Add(fuzzTar(false, []tarEntry{{name: "a/../../slip.elf", body: img}}))
	f.Add(fuzzTar(false, []tarEntry{
		{name: "./", typ: tar.TypeDir}, {name: "./ok.elf", body: img}}))
	f.Add(fuzzTar(false, []tarEntry{
		{name: "sym", typ: tar.TypeSymlink, link: "/etc/passwd"},
		{name: "hard", typ: tar.TypeLink, link: "ok.elf"},
		{name: "empty.elf"},
		{name: "ok.elf", body: img},
	}))
	f.Add(fuzzTar(false, []tarEntry{{name: "big.elf", body: bytes.Repeat([]byte("b"), maxEntry+1)}}))
	full := fuzzTar(false, []tarEntry{{name: "trunc.elf", body: bytes.Repeat([]byte("t"), 2048)}})
	f.Add(full[:600])         // truncated mid-entry
	f.Add(full[:100])         // truncated mid-header
	f.Add([]byte{0x1f, 0x8b}) // gzip magic, no stream
	f.Add([]byte("plain garbage, neither tar nor gzip"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, spoolDir), 0o755); err != nil {
			t.Fatal(err)
		}
		manifest, skipped, err := ingest(dir, bytes.NewReader(data), maxEntries, maxEntry)
		if err != nil {
			var ie *IngestError
			if !errors.As(err, &ie) {
				t.Fatalf("rejection is not an IngestError: %v", err)
			}
			return
		}
		if len(manifest) == 0 {
			t.Fatalf("nil error with empty manifest (skipped=%d)", skipped)
		}
		if len(manifest) > maxEntries {
			t.Fatalf("manifest has %d entries, limit %d", len(manifest), maxEntries)
		}
		for _, e := range manifest {
			if e.name == "" || strings.HasPrefix(e.name, "/") || strings.HasPrefix(e.name, "../") ||
				e.name == ".." || strings.Contains(e.name, "/../") {
				t.Fatalf("unsanitized name admitted: %q", e.name)
			}
			if e.size <= 0 || e.size > maxEntry {
				t.Fatalf("entry %q: size %d out of bounds", e.name, e.size)
			}
			blob, err := os.ReadFile(filepath.Join(dir, spoolDir, e.sha))
			if err != nil {
				t.Fatalf("entry %q: spool blob missing: %v", e.name, err)
			}
			sum := sha256.Sum256(blob)
			if hex.EncodeToString(sum[:]) != e.sha || int64(len(blob)) != e.size {
				t.Fatalf("entry %q: spool blob does not match its address", e.name)
			}
		}
	})
}
