package bulkq

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// walName is the journal file inside a queue directory. Everything the
// queue must survive a crash with goes through this one append-only file;
// the spool holds only content-addressed binary images, which are
// immutable once written.
const walName = "wal.jsonl"

// walRecord is one journal line. A single record type with optional
// fields keeps replay a one-pass switch; the "t" discriminator says which
// fields are meaningful:
//
//	t=job     a job was admitted: the full manifest (names/shas/sizes,
//	          parallel slices indexed by binary) plus the submitting
//	          request's trace linkage
//	t=bin     one binary's state transition: s=running when a worker
//	          picks it up, s=done (with the result payload) or s=failed
//	          (with the error) when it settles
//	t=cancel  the job was cancelled; non-terminal binaries are skipped
//	t=jobdone every binary reached a terminal state (redundant with the
//	          bin records — replay derives completion — but it makes the
//	          journal greppable and cheap to audit)
type walRecord struct {
	T  string `json:"t"`
	ID string `json:"id"`

	// t=job fields.
	Names []string `json:"names,omitempty"`
	SHAs  []string `json:"shas,omitempty"`
	Sizes []int64  `json:"sizes,omitempty"`
	Trace string   `json:"trace,omitempty"`
	Span  string   `json:"span,omitempty"`
	At    int64    `json:"at,omitempty"` // unix milliseconds

	// t=bin fields. Index has no omitempty: binary 0 must round-trip.
	Index    int             `json:"i"`
	State    string          `json:"s,omitempty"`
	Attempts int             `json:"a,omitempty"`
	Model    string          `json:"model,omitempty"`
	Vars     json.RawMessage `json:"vars,omitempty"`
	Err      string          `json:"err,omitempty"`
}

// wal is the append side of the journal: one writer, serialized appends,
// fsync per record. A record is the unit of durability — a binary's done
// record is synced before the in-memory state flips, so a crash at any
// instant loses at most the work currently in flight, never a completed
// result. At bulk-queue rates (one append per multi-millisecond
// inference) the fsync is noise.
type wal struct {
	mu sync.Mutex
	f  *os.File
}

// openWAL opens (creating if needed) the journal for appending.
func openWAL(dir string) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bulkq: journal: %w", err)
	}
	return &wal{f: f}, nil
}

// append journals one record: marshal, write with trailing newline, sync.
func (w *wal) append(rec walRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("bulkq: journal: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("bulkq: journal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("bulkq: journal sync: %w", err)
	}
	return nil
}

// close closes the append handle.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// readWAL replays the journal at dir into records. A torn tail — the
// half-written line a SIGKILL mid-append leaves — is expected and
// silently dropped; replay stops at the first undecodable line, returning
// everything before it plus how many lines were discarded.
func readWAL(dir string) (recs []walRecord, dropped int, err error) {
	f, err := os.Open(filepath.Join(dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("bulkq: journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	lines := 0
	bad := false
	for sc.Scan() {
		lines++
		if bad {
			dropped++
			continue
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Anything after an undecodable line is untrustworthy: the
			// append order is the replay order.
			bad = true
			dropped++
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		// An oversized or unterminated final line: same torn-tail story.
		dropped++
	}
	return recs, dropped, nil
}

// compact rewrites the journal as a minimal snapshot of the given
// records: job manifests, terminal binary records and cancellations.
// Running records (now resumed), jobdone markers and anything else
// transient is dropped. Written to a temp file and renamed over the
// journal, so a crash mid-compaction leaves either the old journal or
// the new one, never a mix. The caller must not hold an open append
// handle (compaction runs during Open, before the wal is opened).
func compactWAL(dir string, recs []walRecord) error {
	tmp, err := os.CreateTemp(dir, walName+".tmp")
	if err != nil {
		return fmt.Errorf("bulkq: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename lands
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("bulkq: compact: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("bulkq: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("bulkq: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("bulkq: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, walName)); err != nil {
		return fmt.Errorf("bulkq: compact: %w", err)
	}
	return nil
}
