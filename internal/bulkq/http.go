package bulkq

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/trace"
)

// errorBody is the JSON error envelope, shape-compatible with the serve
// daemon's ErrorResponse so bulk clients parse one schema.
type errorBody struct {
	Error string `json:"error"`
}

// httpJSON writes v as a JSON response with the given status.
func httpJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, code int, msg string) {
	httpJSON(w, code, errorBody{Error: msg})
}

// Mount registers the bulk API on mux:
//
//	POST   /v1/bulk               submit a tar/tar.gz corpus (202)
//	GET    /v1/bulk               list jobs
//	GET    /v1/bulk/{id}          one job's status
//	GET    /v1/bulk/{id}/results  settled binaries as JSON lines
//	DELETE /v1/bulk/{id}          cancel
func (m *Manager) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/bulk", m.handleSubmit)
	mux.HandleFunc("GET /v1/bulk", m.handleList)
	mux.HandleFunc("GET /v1/bulk/{id}", m.handleJob)
	mux.HandleFunc("GET /v1/bulk/{id}/results", m.handleResults)
	mux.HandleFunc("DELETE /v1/bulk/{id}", m.handleCancel)
}

// handleSubmit is POST /v1/bulk: stream the archive into the spool,
// journal the job, answer 202 with the job's initial status. The
// bulk.ingest span covers the upload + spool; each binary later runs
// under a bulk.binary child of this span, so the whole corpus hangs off
// one trace.
func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, span := trace.StartFromRequest(r, "bulk.ingest")
	defer span.End()

	// MaxBytesReader hard-stops oversized uploads mid-stream: the
	// connection is poisoned after the limit, and the client gets 413
	// instead of the daemon an OOM.
	body := http.MaxBytesReader(w, r.Body, m.cfg.MaxBody)
	res, err := m.Submit(body, span.TraceID(), span.ID())
	if err != nil {
		span.SetError(err)
		var maxErr *http.MaxBytesError
		var ingErr *IngestError
		switch {
		case errors.As(err, &maxErr):
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.As(err, &ingErr):
			httpError(w, http.StatusBadRequest, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	span.SetAttr(trace.String("job", res.Job.ID),
		trace.Int("binaries", res.Job.Binaries),
		trace.Int("skipped_entries", res.SkippedEntries))
	httpJSON(w, http.StatusAccepted, res)
}

// handleList is GET /v1/bulk.
func (m *Manager) handleList(w http.ResponseWriter, _ *http.Request) {
	httpJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{m.Jobs()})
}

// handleJob is GET /v1/bulk/{id}.
func (m *Manager) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	httpJSON(w, http.StatusOK, st)
}

// handleResults is GET /v1/bulk/{id}/results: JSON lines, one settled
// binary per line, manifest order. Pending/running binaries are absent —
// poll the status endpoint for completion first (or stream early for a
// progress view; the endpoint is safe to call any time).
func (m *Manager) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := m.Job(id); !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := m.Results(id, w); err != nil && !errors.Is(err, ErrUnknownJob) {
		// Mid-stream write error: the status line is gone; just log.
		m.cfg.Log.Warn("bulk results stream failed", "job", id, "error", err)
	}
}

// handleCancel is DELETE /v1/bulk/{id}.
func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := m.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, ErrUnknownJob) {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	httpJSON(w, http.StatusOK, st)
}
