// Package core is CATI's public API: train a model from a corpus of
// binaries, save/load it, and run the full inference pipeline on a
// stripped binary — disassemble, locate variables, extract and generalize
// VUCs, embed, classify with the six-stage CNN tree, and vote per variable
// (paper §III system workflow).
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/elfx"
	"repro/internal/par"
	"repro/internal/vareco"
	"repro/internal/vuc"
)

// CATI is a trained type-inference system.
type CATI struct {
	Pipeline *classify.Pipeline
	// Clamp is the voting confidence threshold (paper: 0.9).
	Clamp float64
}

// ErrNotTrained reports use of an empty system.
var ErrNotTrained = errors.New("core: system has no trained pipeline")

// Train builds a CATI system from a labeled corpus.
func Train(c *corpus.Corpus, cfg classify.Config) (*CATI, error) {
	p, err := classify.Train(c, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &CATI{Pipeline: p, Clamp: classify.DefaultClamp}, nil
}

// Save serializes the system.
func (c *CATI) Save() ([]byte, error) {
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	return c.Pipeline.Encode()
}

// Load rebuilds a saved system.
func Load(data []byte) (*CATI, error) {
	p, err := classify.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &CATI{Pipeline: p, Clamp: classify.DefaultClamp}, nil
}

// InferredVar is one variable located and typed in a stripped binary.
type InferredVar struct {
	// FuncLow is the recovered owning function's entry address for stack
	// variables, or the absolute address for globals.
	FuncLow uint64
	// Slot is the frame-relative offset of the variable's stack slot
	// (zero for globals).
	Slot int32
	// Global marks data-section variables.
	Global bool
	// Size is the recovered slot size in bytes.
	Size int
	// NumVUCs is how many usage contexts voted.
	NumVUCs int
	// Class is the inferred type class.
	Class ctypes.Class
}

// InferBinary runs the full pipeline on a (typically stripped) binary and
// returns one typed record per recovered variable, ordered by function and
// slot.
func (c *CATI) InferBinary(bin *elfx.Binary) ([]InferredVar, error) {
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	rec, err := vareco.RecoverOpts(bin, vareco.Options{Dataflow: true})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c.inferRecovery(rec)
}

// InferImage is InferBinary for a raw ELF image.
func (c *CATI) InferImage(image []byte) ([]InferredVar, error) {
	bin, err := elfx.Read(image)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c.InferBinary(bin)
}

func (c *CATI) inferRecovery(rec *vareco.Recovery) ([]InferredVar, error) {
	w := c.Pipeline.Cfg.Window
	if w == 0 {
		w = vuc.DefaultWindow
	}
	vucs := vuc.Extract(rec, vuc.Config{Window: w})
	if len(vucs) == 0 {
		return nil, nil
	}

	samples := make([][]float32, len(vucs))
	par.ForEach(len(vucs), par.Workers(c.Pipeline.Cfg.Workers), func(i int) {
		samples[i] = c.Pipeline.EmbedWindow(vucs[i].Tokens)
	})
	preds, err := c.Pipeline.PredictVUCs(samples)
	if err != nil {
		return nil, fmt.Errorf("core: predict: %w", err)
	}

	// Group predictions per variable and vote.
	groups := make(map[vuc.VarKey][]classify.VUCPrediction)
	for i := range vucs {
		groups[vucs[i].Var] = append(groups[vucs[i].Var], preds[i])
	}

	sizeOf := make(map[vuc.VarKey]int)
	for _, f := range rec.Funcs {
		for _, v := range f.Vars {
			sizeOf[vuc.VarKey{FuncLow: f.Low, Slot: v.Slot}] = v.Size
		}
	}
	for _, g := range rec.Globals {
		sizeOf[vuc.GlobalKey(g.Addr)] = g.Size
	}

	out := make([]InferredVar, 0, len(groups))
	for key, g := range groups {
		vp := classify.VoteVariable(g, c.Clamp)
		out = append(out, InferredVar{
			FuncLow: key.FuncLow,
			Slot:    key.Slot,
			Global:  key.Global,
			Size:    sizeOf[key],
			NumVUCs: len(g),
			Class:   vp.Class,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FuncLow != out[j].FuncLow {
			return out[i].FuncLow < out[j].FuncLow
		}
		return out[i].Slot < out[j].Slot
	})
	return out, nil
}
