// Package core is CATI's public API: train a model from a corpus of
// binaries, save/load it, and run the full inference pipeline on a
// stripped binary — disassemble, locate variables, extract and generalize
// VUCs, embed, classify with the six-stage CNN tree, and vote per variable
// (paper §III system workflow).
//
// Every long-running entry point comes in two forms: a context-taking one
// (TrainCtx, InferBinaryCtx, InferImageCtx, InferBatch) that honors
// cancellation and deadlines at stage/shard boundaries, and a thin
// context.Background() wrapper keeping the historical signature. Inference
// runs as an explicit staged pipeline (recover → extract → embed →
// predict → vote); attach an obs.Trace/obs.Hook via the pipeline config to
// observe per-stage wall time, item counts and worker counts.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/artifact"
	"repro/internal/classify"
	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/elfx"
	"repro/internal/isa"
	_ "repro/internal/isa/isas" // register built-in architectures
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/telemetry"
	"repro/internal/vareco"
	"repro/internal/vuc"
)

// Inference and artifact telemetry. Binary outcome counters follow the
// BinaryResult contract: one inferred/failed increment per binary (after
// retries settle), plus one retry increment per extra attempt and a
// timeout increment when the per-binary deadline was the failure.
var (
	mVUCs = telemetry.Default().Counter("cati_vucs_extracted_total",
		"VUCs extracted across all inferred binaries.")
	mBinInferred = telemetry.Default().Counter("cati_binaries_inferred_total",
		"Binaries whose inference completed successfully.")
	mBinFailed = telemetry.Default().Counter("cati_binaries_failed_total",
		"Binaries whose inference failed after all attempts.")
	mBinRetries = telemetry.Default().Counter("cati_binary_retries_total",
		"Extra inference attempts made after transient per-binary failures.")
	mBinTimeouts = telemetry.Default().Counter("cati_binaries_timeout_total",
		"Binaries that failed because the per-binary timeout fired.")
)

// countOutcome records one binary's final inference outcome.
func countOutcome(err error) {
	if err == nil {
		mBinInferred.Inc()
		return
	}
	mBinFailed.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		mBinTimeouts.Inc()
	}
}

// countArtifact records a model save/load outcome under one labeled
// counter family.
func countArtifact(op string, err error) {
	if !telemetry.On() {
		return
	}
	result := "ok"
	if err != nil {
		result = "error"
	}
	telemetry.Default().Counter("cati_artifact_ops_total",
		"Model artifact operations by kind and outcome.", "op", op, "result", result).Inc()
}

// CATI is a trained type-inference system.
//
// Concurrency: a trained CATI is safe for concurrent use. InferBinary,
// InferBinaryCtx, InferImage, InferImageCtx, InferBatch and InferBatchOpts
// may be called from any number of goroutines on one instance — inference
// only reads the pipeline's weights and resolved config, and the input
// *elfx.Binary is never written, so even sharing one binary across
// concurrent calls is fine. What is NOT synchronized is mutation of the
// exported fields (Pipeline, Clamp, Pipeline.Cfg.*): configure the
// instance first, then publish it; to swap models under live traffic,
// swap the whole *CATI pointer atomically (as internal/serve's model
// registry does) rather than mutating a shared instance in place.
type CATI struct {
	Pipeline *classify.Pipeline
	// Clamp is the voting confidence threshold (paper: 0.9).
	Clamp float64
	// fingerprint identifies the sealed artifact this system was loaded
	// from (or last saved as); see Fingerprint.
	fingerprint string
}

// ErrNotTrained reports use of an empty system.
var ErrNotTrained = errors.New("core: system has no trained pipeline")

// ErrArchMismatch reports a binary whose machine architecture differs from
// the one the loaded model was trained on. The embedding vocabulary and
// CNN weights are ISA-specific, so cross-ISA inference would silently
// produce garbage; it is a typed per-binary error instead.
var ErrArchMismatch = errors.New("core: binary architecture does not match model")

// Arch names the instruction set the model was trained on ("x86_64",
// "rv64"). Models saved before the tag existed report x86_64.
func (c *CATI) Arch() string {
	if c.Pipeline == nil {
		return ""
	}
	return c.Pipeline.Cfg.WithDefaults().Arch
}

// checkArch rejects model/binary ISA mismatches and unknown machines up
// front, before recovery decodes the text section with the wrong decoder.
func (c *CATI) checkArch(bin *elfx.Binary) error {
	arch, err := isa.ByMachine(bin.Machine)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if want := c.Arch(); arch.Name() != want {
		return fmt.Errorf("%w: model is %s, binary is %s", ErrArchMismatch, want, arch.Name())
	}
	return nil
}

// Train builds a CATI system from a labeled corpus.
func Train(c *corpus.Corpus, cfg classify.Config) (*CATI, error) {
	return TrainCtx(context.Background(), c, cfg)
}

// TrainCtx is Train with cooperative cancellation: training checks ctx at
// sentence/minibatch/stage boundaries and returns ctx.Err() promptly once
// it is cancelled. Per-phase timings report through cfg.Trace/cfg.Hook.
func TrainCtx(ctx context.Context, c *corpus.Corpus, cfg classify.Config) (*CATI, error) {
	p, err := classify.TrainCtx(ctx, c, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &CATI{Pipeline: p, Clamp: classify.DefaultClamp}, nil
}

// Model artifact framing: Save seals the serialized pipeline in an
// artifact envelope (magic, kind, version, length, CRC-32C), and Load
// refuses anything that is not byte-identical to what a compatible build
// wrote — truncation, bit flips, version skew, and non-finite weights all
// map to typed errors instead of gob panics or silent corruption.
const (
	// modelKind tags float32 model files in the artifact envelope.
	modelKind = "model"
	// modelQ8Kind tags int8-quantized model files. A distinct kind (not
	// just a version bump) means builds that predate quantization reject
	// such files with artifact.ErrKind at the envelope instead of failing
	// deep inside gob decoding.
	modelQ8Kind = "modelq8"
	// ModelVersion is the float model schema version this build reads and
	// writes. Bump it whenever the serialized pipeline layout changes
	// incompatibly; Load rejects other versions with artifact.ErrVersion.
	ModelVersion = 1
	// ModelQ8Version is the quantized model schema version.
	ModelQ8Version = 1
)

// Fingerprint identifies the exact model contents: a truncated SHA-256 of
// the sealed artifact (config + embedding + all stage weights), set by
// Load and by Save. It is "" for an in-memory model that was never
// sealed. Two processes that loaded the same artifact file report the
// same fingerprint, so clients can correlate inference responses with
// model versions across reloads (it complements the coarser config
// fingerprint the training checkpoints use for staleness).
func (c *CATI) Fingerprint() string { return c.fingerprint }

// fingerprintBlob hashes a sealed artifact into the short hex form
// Fingerprint reports.
func fingerprintBlob(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// Save serializes the system as a versioned, checksummed artifact and
// stamps the receiver's Fingerprint with the sealed bytes' hash. Float
// pipelines seal under the "model" kind, quantized ones under "modelq8",
// so the two artifact families are distinguishable before decoding.
func (c *CATI) Save() (blob []byte, err error) {
	defer func() { countArtifact("save", err) }()
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	payload, err := c.Pipeline.Encode()
	if err != nil {
		return nil, err
	}
	if c.Pipeline.Quantized() {
		blob = artifact.Seal(modelQ8Kind, ModelQ8Version, payload)
	} else {
		blob = artifact.Seal(modelKind, ModelVersion, payload)
	}
	c.fingerprint = fingerprintBlob(blob)
	return blob, nil
}

// Quantize returns a new system whose stage CNNs run int8 inference (the
// embedding matrix and config are shared). The original is unchanged and
// stays trainable; the quantized system is inference-only. Its
// fingerprint is unset until the first Save.
func (c *CATI) Quantize() (*CATI, error) {
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	qp, err := c.Pipeline.Quantize()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &CATI{Pipeline: qp, Clamp: c.Clamp}, nil
}

// Load rebuilds a saved system — float ("model") or quantized
// ("modelq8"), dispatched on the envelope's kind tag — validating the
// envelope (magic, kind, version, length, checksum) and the decoded
// weights (all finite) before accepting it. Failure modes are
// distinguishable with errors.Is against the artifact package's typed
// errors and nn.ErrNotFinite; a well-formed artifact of a kind this build
// does not handle maps to artifact.ErrUnknownKind.
func Load(data []byte) (c *CATI, err error) {
	defer func() { countArtifact("load", err) }()
	var payload []byte
	switch kind, ok := artifact.Kind(data); {
	case ok && kind == modelQ8Kind:
		payload, err = artifact.Open(modelQ8Kind, ModelQ8Version, data)
	case ok && kind != modelKind:
		return nil, fmt.Errorf("core: load: %w %q (this build reads %q and %q)",
			artifact.ErrUnknownKind, kind, modelKind, modelQ8Kind)
	default:
		// The float kind — or not an artifact at all, in which case Open
		// reports the precise envelope failure (magic, truncation, ...).
		payload, err = artifact.Open(modelKind, ModelVersion, data)
	}
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	p, err := classify.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := p.CheckFinite(); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	return &CATI{Pipeline: p, Clamp: classify.DefaultClamp, fingerprint: fingerprintBlob(data)}, nil
}

// InferredVar is one variable located and typed in a stripped binary.
type InferredVar struct {
	// FuncLow is the recovered owning function's entry address for stack
	// variables, or the absolute address for globals.
	FuncLow uint64
	// Slot is the frame-relative offset of the variable's stack slot
	// (zero for globals).
	Slot int32
	// Global marks data-section variables.
	Global bool
	// Size is the recovered slot size in bytes.
	Size int
	// NumVUCs is how many usage contexts voted.
	NumVUCs int
	// Class is the inferred type class.
	Class ctypes.Class
}

// InferBinary runs the full pipeline on a (typically stripped) binary and
// returns one typed record per recovered variable, ordered by function and
// slot.
func (c *CATI) InferBinary(bin *elfx.Binary) ([]InferredVar, error) {
	return c.InferBinaryCtx(context.Background(), bin)
}

// InferBinaryCtx is InferBinary with cooperative cancellation: every
// pipeline stage (recover, extract, embed, predict, vote) refuses to
// start once ctx is cancelled, and the embed/predict stages additionally
// bail at shard/chunk boundaries mid-stage, returning ctx.Err().
func (c *CATI) InferBinaryCtx(ctx context.Context, bin *elfx.Binary) ([]InferredVar, error) {
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	vars, err := c.infer(ctx, bin, c.runner())
	countOutcome(err)
	return vars, err
}

// InferImage is InferBinary for a raw ELF image.
func (c *CATI) InferImage(image []byte) ([]InferredVar, error) {
	return c.InferImageCtx(context.Background(), image)
}

// InferImageCtx is InferImage with cooperative cancellation.
func (c *CATI) InferImageCtx(ctx context.Context, image []byte) ([]InferredVar, error) {
	bin, err := elfx.Read(image)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c.InferBinaryCtx(ctx, bin)
}

// BinaryResult is one binary's outcome in an InferBatch: either the
// inferred variables or the error that stopped that binary — never both.
// Errors are contained per binary, so one malformed input cannot poison
// its batchmates.
type BinaryResult struct {
	// Vars are the inferred variables; nil when Err is set.
	Vars []InferredVar
	// Err is the binary's failure: a parse/analysis error, a contained
	// worker panic (*par.PanicError), or context.DeadlineExceeded when the
	// per-binary timeout fired. nil on success.
	Err error
	// Attempts is how many times the binary ran (> 1 after retries).
	Attempts int
}

// BatchOptions tunes per-binary fault isolation in InferBatchOpts.
type BatchOptions struct {
	// Timeout bounds each binary's wall time (0: none). A binary that
	// exceeds it fails with context.DeadlineExceeded in its result record;
	// the rest of the batch is unaffected.
	Timeout time.Duration
	// Retries is how many extra attempts a binary gets after a transient
	// failure (a contained panic or a per-binary timeout). Deterministic
	// failures — malformed ELF, undecodable text, no .text section — are
	// never retried: the same bytes produce the same error.
	Retries int
	// Backoff spaces retry attempts apart instead of re-attempting
	// immediately: retry n waits Backoff×2^(n-1), jittered ±50% so
	// batchmates that failed together do not retry in lockstep. 0 takes
	// the 25ms default; negative disables backoff (immediate retries, the
	// pre-backoff behavior). The wait is cancellable: a cancelled parent
	// ctx ends it at once.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (0: 1s).
	MaxBackoff time.Duration
	// BinContext, when set, supplies the context binary i runs under
	// instead of the batch context. The serve micro-batcher uses it to
	// hand each binary the trace span of the request that contributed it,
	// so a batch shared by several requests still yields per-request span
	// trees. Cancelling the batch ctx must still stop the work, so
	// implementations derive from (or monitor) the batch ctx.
	BinContext func(i int) context.Context
}

// backoffDelay is the jittered wait before retry attempt n (n ≥ 1): the
// exponential base×2^(n-1), capped at MaxBackoff, scaled by a uniform
// factor in [0.5, 1.5).
func (o BatchOptions) backoffDelay(n int) time.Duration {
	base := o.Backoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = 25 * time.Millisecond
	}
	max := o.MaxBackoff
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter into [0.5d, 1.5d): decorrelates retry storms across a batch.
	return d/2 + rand.N(d)
}

// retryable reports whether a per-binary failure is worth another
// attempt: contained panics and per-binary timeouts may be load-induced;
// parse and analysis errors are deterministic.
func retryable(err error) bool {
	var pe *par.PanicError
	return errors.As(err, &pe) || errors.Is(err, context.DeadlineExceeded)
}

// InferBatch fans inference out over many binaries on the shared worker
// pool: up to Workers binaries run concurrently (each one's stages then
// share the same pool for their intra-binary parallelism) and results
// land at the index of their input. Each binary gets its own error
// domain: a parse failure, analysis error, or even a panic inside one
// binary's stages becomes that binary's Err record while the rest of the
// batch completes normally. The returned error is non-nil only when the
// whole batch could not run (ErrNotTrained) or the parent ctx was
// cancelled — per-binary failures never abort the batch. With a Trace
// attached, every binary's stages land in the one trace (concurrently,
// so their wall times overlap).
func (c *CATI) InferBatch(ctx context.Context, bins []*elfx.Binary) ([]BinaryResult, error) {
	return c.InferBatchOpts(ctx, bins, BatchOptions{})
}

// InferBatchOpts is InferBatch with explicit per-binary timeout and
// bounded-retry policy.
func (c *CATI) InferBatchOpts(ctx context.Context, bins []*elfx.Binary, opts BatchOptions) ([]BinaryResult, error) {
	if c.Pipeline == nil {
		return nil, ErrNotTrained
	}
	if len(bins) == 0 {
		return nil, nil
	}
	run := c.runner()
	out := make([]BinaryResult, len(bins))
	jobs := make([]func(), len(bins))
	for i, bin := range bins {
		jobs[i] = func() {
			bctx := ctx
			if opts.BinContext != nil {
				if c := opts.BinContext(i); c != nil {
					bctx = c
				}
			}
			out[i] = c.inferIsolated(bctx, bin, run, opts)
		}
	}
	// RunCtx contains panics already, but inferIsolated contains them per
	// binary first, so one binary's panic cannot surface as the pool-level
	// error and mask its batchmates' results.
	if err := par.RunCtx(ctx, par.Workers(c.Pipeline.Cfg.Workers), jobs...); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: batch: %w", err)
	}
	// Binaries skipped by a cancelled pool have no attempts; report the
	// cancellation rather than a half-filled slice.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// inferIsolated runs one binary inside its own error domain: panics are
// contained to this binary, an optional per-binary deadline applies, and
// transient failures are retried up to opts.Retries times.
func (c *CATI) inferIsolated(ctx context.Context, bin *elfx.Binary, run obs.Runner, opts BatchOptions) BinaryResult {
	res := BinaryResult{}
	for {
		res.Attempts++
		if res.Attempts > 1 {
			mBinRetries.Inc()
		}
		bctx := ctx
		cancel := context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			bctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		err := par.SafeErr(func() error {
			vars, err := c.infer(bctx, bin, run)
			if err == nil {
				res.Vars = vars
			}
			return err
		})
		cancel()
		if err == nil {
			res.Err = nil
			countOutcome(nil)
			return res
		}
		res.Err = err
		// Parent cancellation is not a per-binary failure mode: surface it
		// as-is (uncounted) and let the batch-level ctx check report it.
		if ctx.Err() != nil {
			return res
		}
		if res.Attempts > opts.Retries || !retryable(err) {
			countOutcome(err)
			return res
		}
		// Transient failure with retry budget left: back off before the
		// next attempt so a load-induced failure (timeout, resource-
		// pressure panic) is not immediately re-offered to the same
		// overloaded machine. Cancellation cuts the wait short.
		if delay := opts.backoffDelay(res.Attempts); delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				// Parent cancelled mid-backoff: surface the last failure
				// uncounted, as in the in-attempt cancellation path above.
				return res
			}
		}
	}
}

// runner builds the stage runner from the pipeline config's observability
// plumbing; with neither Trace nor Hook set it is free.
func (c *CATI) runner() obs.Runner {
	return obs.Runner{Trace: c.Pipeline.Cfg.Trace, Hook: c.Pipeline.Cfg.Hook}
}

// infer executes the paper's §III workflow as an explicit staged
// pipeline. Each stage runs under the obs.Runner, which checks ctx,
// records wall time/items/workers, and fires hooks.
func (c *CATI) infer(ctx context.Context, bin *elfx.Binary, run obs.Runner) ([]InferredVar, error) {
	if err := c.checkArch(bin); err != nil {
		return nil, err
	}
	workers := par.Workers(c.Pipeline.Cfg.Workers)

	// Stage 1: recover — disassemble and locate variables.
	var rec *vareco.Recovery
	err := run.Stage(ctx, "recover", 1, func(_ context.Context) (int, error) {
		var err error
		rec, err = vareco.RecoverOpts(bin, vareco.Options{Dataflow: true})
		if rec == nil {
			return 0, err
		}
		return len(rec.Funcs), err
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Stage 2: extract — generalize tokens and window VUCs. The window
	// must resolve exactly as training resolved it, so it goes through
	// Config.WithDefaults rather than re-implementing the default here.
	var vucs []vuc.VUC
	err = run.Stage(ctx, "extract", 1, func(_ context.Context) (int, error) {
		w := c.Pipeline.Cfg.WithDefaults().Window
		vucs = vuc.Extract(rec, vuc.Config{Window: w})
		return len(vucs), nil
	})
	if err != nil {
		return nil, err
	}
	mVUCs.Add(uint64(len(vucs)))
	if len(vucs) == 0 {
		return nil, nil
	}

	// Stage 3: embed — Word2Vec lookup per token window.
	samples := make([][]float32, len(vucs))
	err = run.Stage(ctx, "embed", workers, func(sctx context.Context) (int, error) {
		return len(vucs), par.ForEachCtx(sctx, len(vucs), workers, func(i int) {
			samples[i] = c.Pipeline.EmbedWindow(vucs[i].Tokens)
		})
	})
	if err != nil {
		return nil, err
	}

	// Stage 4: predict — the six-stage CNN tree per VUC.
	var preds []classify.VUCPrediction
	err = run.Stage(ctx, "predict", workers, func(sctx context.Context) (int, error) {
		var err error
		preds, err = c.Pipeline.PredictVUCsCtx(sctx, samples)
		return len(samples), err
	})
	if err != nil {
		return nil, fmt.Errorf("core: predict: %w", err)
	}

	// Stage 5: vote — group predictions per variable and vote.
	var out []InferredVar
	err = run.Stage(ctx, "vote", 1, func(_ context.Context) (int, error) {
		groups := make(map[vuc.VarKey][]classify.VUCPrediction)
		for i := range vucs {
			groups[vucs[i].Var] = append(groups[vucs[i].Var], preds[i])
		}

		sizeOf := make(map[vuc.VarKey]int)
		for _, f := range rec.Funcs {
			for _, v := range f.Vars {
				sizeOf[vuc.VarKey{FuncLow: f.Low, Slot: v.Slot}] = v.Size
			}
		}
		for _, g := range rec.Globals {
			sizeOf[vuc.GlobalKey(g.Addr)] = g.Size
		}

		out = make([]InferredVar, 0, len(groups))
		for key, g := range groups {
			vp := classify.VoteVariable(g, c.Clamp)
			out = append(out, InferredVar{
				FuncLow: key.FuncLow,
				Slot:    key.Slot,
				Global:  key.Global,
				Size:    sizeOf[key],
				NumVUCs: len(g),
				Class:   vp.Class,
			})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].FuncLow != out[j].FuncLow {
				return out[i].FuncLow < out[j].FuncLow
			}
			return out[i].Slot < out[j].Slot
		})
		return len(out), nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
