package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

// noGoroutineLeak fails the test if goroutines outlive it (bounded wait
// for cancelled shards to drain).
func noGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// withObs temporarily attaches observability to the shared CATI and
// restores the config on cleanup so other tests see a clean pipeline.
func withObs(t *testing.T, c *CATI, trace *obs.Trace, hook obs.Hook) {
	t.Helper()
	prevTrace, prevHook := c.Pipeline.Cfg.Trace, c.Pipeline.Cfg.Hook
	c.Pipeline.Cfg.Trace, c.Pipeline.Cfg.Hook = trace, hook
	t.Cleanup(func() {
		c.Pipeline.Cfg.Trace, c.Pipeline.Cfg.Hook = prevTrace, prevHook
	})
}

func trainCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Build(corpus.BuildConfig{
		Name:     "ctx-train",
		Binaries: 4,
		Profile:  synth.DefaultProfile("ctx"),
		Window:   5,
		Seed:     31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTrainCtxCancelMidTrain cancels as soon as the first training stage
// starts and requires context.Canceled back within a bounded wait — the
// trainer must bail at the next sentence/minibatch/stage boundary, not
// finish the epoch.
func TestTrainCtxCancelMidTrain(t *testing.T) {
	noGoroutineLeak(t)
	c := trainCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := classify.Config{
		Window: 5,
		Conv1:  8, Conv2: 8, Hidden: 64,
		MaxPerStage: 1200,
		Train:       nn.TrainConfig{Epochs: 50, Batch: 32, LR: 2e-3},
		W2V:         word2vec.Config{Epochs: 10},
		Seed:        5,
		Hook:        func(e obs.Event) { cancel() },
	}
	type result struct {
		cati *CATI
		err  error
	}
	done := make(chan result, 1)
	go func() {
		cati, err := TrainCtx(ctx, c, cfg)
		done <- result{cati, err}
	}()
	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", r.err)
		}
		if r.cati != nil {
			t.Fatal("cancelled training must not return a system")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled training did not return within 30s")
	}
}

// TestTrainCtxCancelWorkers1 pins the serial paths: Workers=1 must honor
// ctx too.
func TestTrainCtxCancelWorkers1(t *testing.T) {
	noGoroutineLeak(t)
	c := trainCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := classify.Config{
		Window: 5,
		Conv1:  8, Conv2: 8, Hidden: 64,
		Train:   nn.TrainConfig{Epochs: 50, Batch: 32, LR: 2e-3},
		W2V:     word2vec.Config{Epochs: 10},
		Seed:    5,
		Workers: 1,
		Hook:    func(e obs.Event) { cancel() },
	}
	if _, err := TrainCtx(ctx, c, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestInferBatchMatchesInferBinary(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 77), testBinary(t, 177), testBinary(t, 277)}
	batch, err := cati.InferBatch(context.Background(), bins)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(bins) {
		t.Fatalf("want %d results, got %d", len(bins), len(batch))
	}
	for i, bin := range bins {
		solo, err := cati.InferBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Err != nil {
			t.Fatalf("binary %d: unexpected error %v", i, batch[i].Err)
		}
		if batch[i].Attempts != 1 {
			t.Fatalf("binary %d: want 1 attempt, got %d", i, batch[i].Attempts)
		}
		if len(solo) != len(batch[i].Vars) {
			t.Fatalf("binary %d: batch %d vars, solo %d", i, len(batch[i].Vars), len(solo))
		}
		for j := range solo {
			if solo[j] != batch[i].Vars[j] {
				t.Fatalf("binary %d var %d: batch %+v != solo %+v", i, j, batch[i].Vars[j], solo[j])
			}
		}
	}
}

func TestInferBatchCancelled(t *testing.T) {
	noGoroutineLeak(t)
	cati := sharedCATI(t)
	bins := make([]*elfx.Binary, 8)
	for i := range bins {
		bins[i] = testBinary(t, 500+int64(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel when the first stage of the first binary starts.
	withObs(t, cati, nil, func(e obs.Event) { cancel() })

	done := make(chan error, 1)
	go func() {
		_, err := cati.InferBatch(ctx, bins)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled InferBatch did not return within 30s")
	}
}

func TestInferBinaryCtxPreCancelledWorkers1(t *testing.T) {
	noGoroutineLeak(t)
	cati := sharedCATI(t)
	prev := cati.Pipeline.Cfg.Workers
	cati.Pipeline.Cfg.Workers = 1
	t.Cleanup(func() { cati.Pipeline.Cfg.Workers = prev })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cati.InferBinaryCtx(ctx, testBinary(t, 77)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestInferTrace checks the staged breakdown: the five §III stages land
// in order, and their wall times sum to approximately the end-to-end
// time (they run sequentially within one binary).
func TestInferTrace(t *testing.T) {
	cati := sharedCATI(t)
	trace := &obs.Trace{}
	withObs(t, cati, trace, nil)

	t0 := time.Now()
	vars, err := cati.InferBinaryCtx(context.Background(), testBinary(t, 77))
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) == 0 {
		t.Fatal("no variables inferred")
	}
	stages := trace.Stages()
	want := []string{"recover", "extract", "embed", "predict", "vote"}
	if len(stages) != len(want) {
		t.Fatalf("want %d stages, got %+v", len(want), stages)
	}
	for i, name := range want {
		if stages[i].Name != name {
			t.Fatalf("stage %d = %s, want %s", i, stages[i].Name, name)
		}
	}
	if total := trace.Total(); total > elapsed {
		t.Fatalf("stage sum %v exceeds end-to-end %v", total, elapsed)
	}
	// The stages are the whole pipeline, so their sum must account for
	// the bulk of the elapsed time (generous bound: half).
	if total := trace.Total(); total < elapsed/2 {
		t.Fatalf("stage sum %v < half of end-to-end %v", total, elapsed)
	}
}

func TestInferBatchNotTrained(t *testing.T) {
	var empty CATI
	if _, err := empty.InferBatch(context.Background(), nil); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("want ErrNotTrained, got %v", err)
	}
}
