package core

import (
	"errors"
	"testing"

	"repro/internal/compile"
	"repro/internal/elfx"
	"repro/internal/synth"
)

// rv64Binary compiles a stripped RISC-V target.
func rv64Binary(t testing.TB, seed int64) *elfx.Binary {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("target"), seed)
	res, err := compile.Compile(p, compile.Options{
		Dialect: compile.GCC, Opt: 1, Seed: seed, Arch: "rv64",
	})
	if err != nil {
		t.Fatal(err)
	}
	return elfx.Strip(res.Binary)
}

// TestArchDefault: models without an explicit tag (everything trained
// before the tag existed) are x86_64.
func TestArchDefault(t *testing.T) {
	cati := sharedCATI(t)
	if got := cati.Arch(); got != "x86_64" {
		t.Fatalf("Arch() = %q, want x86_64", got)
	}
}

// TestArchMismatchRejected: an x86_64 model must refuse an RV64 binary
// with the typed error, before any decoding happens.
func TestArchMismatchRejected(t *testing.T) {
	cati := sharedCATI(t)
	_, err := cati.InferBinary(rv64Binary(t, 91))
	if !errors.Is(err, ErrArchMismatch) {
		t.Fatalf("err = %v, want ErrArchMismatch", err)
	}
}

// TestArchMismatchInBatch: the mismatch is contained per binary — a mixed
// batch infers the matching binaries and reports the typed error on the
// others.
func TestArchMismatchInBatch(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 92), rv64Binary(t, 93)}
	results, err := cati.InferBatch(t.Context(), bins)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("x86 binary failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrArchMismatch) {
		t.Fatalf("rv64 binary err = %v, want ErrArchMismatch", results[1].Err)
	}
}

// TestUnknownMachineRejected: a binary with an unregistered e_machine
// fails with the typed elfx error.
func TestUnknownMachineRejected(t *testing.T) {
	cati := sharedCATI(t)
	bin := testBinary(t, 94)
	bin.Machine = 40 // ARM: no registered decoder
	_, err := cati.InferBinary(bin)
	if !errors.Is(err, elfx.ErrUnsupportedMachine) {
		t.Fatalf("err = %v, want ErrUnsupportedMachine", err)
	}
}

// TestArchRoundTripsThroughArtifact: the tag survives Save/Load.
func TestArchRoundTripsThroughArtifact(t *testing.T) {
	cati := sharedCATI(t)
	cati.Pipeline.Cfg.Arch = "rv64"
	defer func() { cati.Pipeline.Cfg.Arch = "" }()
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Arch(); got != "rv64" {
		t.Fatalf("loaded Arch() = %q, want rv64", got)
	}
	// And the re-tagged model now accepts rv64 binaries end to end.
	if _, err := loaded.InferBinary(rv64Binary(t, 95)); err != nil {
		t.Fatalf("rv64 inference under rv64 tag: %v", err)
	}
}
