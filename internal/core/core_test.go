package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/ctypes"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

var (
	once   sync.Once
	shared *CATI
	serr   error
)

func sharedCATI(t testing.TB) *CATI {
	t.Helper()
	once.Do(func() {
		var c *corpus.Corpus
		c, serr = corpus.Build(corpus.BuildConfig{
			Name:     "core-train",
			Binaries: 5,
			Profile:  synth.DefaultProfile("core"),
			Window:   5,
			Seed:     21,
		})
		if serr != nil {
			return
		}
		shared, serr = Train(c, classify.Config{
			Window: 5,
			Conv1:  8, Conv2: 8, Hidden: 64,
			MaxPerStage: 1200,
			Train:       nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
			W2V:         word2vec.Config{Epochs: 1},
			Seed:        5,
		})
	})
	if serr != nil {
		t.Fatal(serr)
	}
	return shared
}

func testBinary(t testing.TB, seed int64) *elfx.Binary {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("target"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return elfx.Strip(res.Binary)
}

func TestInferBinary(t *testing.T) {
	cati := sharedCATI(t)
	vars, err := cati.InferBinary(testBinary(t, 77))
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) == 0 {
		t.Fatal("no variables inferred")
	}
	for i, v := range vars {
		if v.Class < ctypes.ClassPtrVoid || v.Class > ctypes.ClassEnum {
			t.Fatalf("bad class %d", v.Class)
		}
		if v.NumVUCs <= 0 {
			t.Fatal("variable with no VUCs")
		}
		if i > 0 {
			prev := vars[i-1]
			if v.FuncLow < prev.FuncLow ||
				(v.FuncLow == prev.FuncLow && v.Slot <= prev.Slot) {
				t.Fatal("output not sorted")
			}
		}
	}
}

func TestInferImage(t *testing.T) {
	cati := sharedCATI(t)
	img, err := elfx.Write(testBinary(t, 78))
	if err != nil {
		t.Fatal(err)
	}
	vars, err := cati.InferImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) == 0 {
		t.Fatal("no variables from image")
	}
	if _, err := cati.InferImage([]byte("not elf")); err == nil {
		t.Error("bad image should fail")
	}
}

func TestSaveLoad(t *testing.T) {
	cati := sharedCATI(t)
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	bin := testBinary(t, 79)
	a, err := cati.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("variable counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inference differs at %d after save/load", i)
		}
	}
	if _, err := Load([]byte("junk")); err == nil {
		t.Error("Load(junk) should fail")
	}
}

func TestNotTrained(t *testing.T) {
	var empty CATI
	if _, err := empty.Save(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Save: %v", err)
	}
	if _, err := empty.InferBinary(&elfx.Binary{}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("InferBinary: %v", err)
	}
}

func TestInferGlobals(t *testing.T) {
	cati := sharedCATI(t)
	// Search a few binaries for one whose globals are used.
	for seed := int64(80); seed < 90; seed++ {
		vars, err := cati.InferBinary(testBinary(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vars {
			if v.Global {
				if v.Slot != 0 {
					t.Errorf("global with slot %d", v.Slot)
				}
				return // found and validated a global
			}
		}
	}
	t.Error("no global variables inferred across 10 binaries")
}
