package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/elfx"
)

// TestBackoffDelayBounds pins the spacing policy: retry n draws from
// [0.5, 1.5)× the capped exponential base×2^(n-1), negative disables,
// zero takes the documented 25ms default.
func TestBackoffDelayBounds(t *testing.T) {
	opts := BatchOptions{Backoff: 40 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	wantIdeal := []time.Duration{
		40 * time.Millisecond,  // retry 1
		80 * time.Millisecond,  // retry 2
		100 * time.Millisecond, // retry 3: capped (160 > max)
		100 * time.Millisecond, // retry 4: stays capped
	}
	for n, ideal := range wantIdeal {
		for trial := 0; trial < 50; trial++ {
			d := opts.backoffDelay(n + 1)
			if d < ideal/2 || d >= ideal+ideal/2 {
				t.Fatalf("retry %d: delay %v outside [%v, %v)", n+1, d, ideal/2, ideal+ideal/2)
			}
		}
	}
	if d := (BatchOptions{Backoff: -1}).backoffDelay(1); d != 0 {
		t.Fatalf("negative Backoff must disable spacing, got %v", d)
	}
	def := BatchOptions{}.backoffDelay(1)
	if def < 12*time.Millisecond+time.Millisecond/2 || def >= 38*time.Millisecond {
		t.Fatalf("default Backoff delay %v outside the 25ms ±50%% band", def)
	}
	// Huge attempt numbers must not overflow the shift into a negative
	// duration — they saturate at the cap.
	if d := opts.backoffDelay(64); d < 50*time.Millisecond || d >= 150*time.Millisecond {
		t.Fatalf("saturated delay %v outside the capped band", d)
	}
}

// TestRetryBackoffObservedSpacing is the end-to-end check the satellite
// asks for: a transiently failing binary (impossible per-binary deadline)
// with two retries must take at least the minimum jittered spacing
// (0.5×base + 0.5×2×base) of wall time, where the same run with backoff
// disabled completes almost instantly.
func TestRetryBackoffObservedSpacing(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 310)}

	start := time.Now()
	results, err := cati.InferBatchOpts(context.Background(), bins, BatchOptions{
		Timeout: time.Nanosecond, Retries: 2,
		Backoff: 60 * time.Millisecond, MaxBackoff: time.Second,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("want 3 attempts, got %d", results[0].Attempts)
	}
	// Two backoffs: retry 1 ≥ 30ms, retry 2 ≥ 60ms (minimum jitter 0.5×).
	if min := 90 * time.Millisecond; elapsed < min {
		t.Fatalf("retries were not spaced: 3 attempts in %v, want ≥ %v", elapsed, min)
	}

	start = time.Now()
	if _, err := cati.InferBatchOpts(context.Background(), bins, BatchOptions{
		Timeout: time.Nanosecond, Retries: 2, Backoff: -1,
	}); err != nil {
		t.Fatal(err)
	}
	if noWait := time.Since(start); noWait > 5*time.Second {
		t.Fatalf("backoff-disabled retries took %v", noWait)
	}
}

// TestRetryBackoffCancellable: a parent cancellation during the backoff
// wait ends the batch promptly — the sleep is not a blind time.Sleep.
func TestRetryBackoffCancellable(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 311)}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cati.InferBatchOpts(ctx, bins, BatchOptions{
		Timeout: time.Nanosecond, Retries: 5,
		Backoff: 30 * time.Second, MaxBackoff: time.Minute,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from the batch, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation did not cut the backoff short: took %v", elapsed)
	}
}
