package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/elfx"
)

// TestConcurrentSharedInference hammers ONE shared *CATI with concurrent
// InferBinaryCtx and InferBatchOpts calls — the thread-safety contract
// documented on the CATI type and depended on by the serving subsystem
// (internal/serve runs every request of a process against one shared
// instance). Run under -race (it is in the Makefile's RACE_PKGS), this
// fails on any unsynchronized write in the inference path; the result
// comparison additionally catches cross-request state bleed.
func TestConcurrentSharedInference(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 301), testBinary(t, 302), testBinary(t, 303)}

	// Serial baselines first: every concurrent result must match these
	// exactly (inference is deterministic per binary for a fixed model).
	want := make([][]InferredVar, len(bins))
	for i, bin := range bins {
		vars, err := cati.InferBinary(bin)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = vars
	}

	same := func(a, b []InferredVar) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	mismatch := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				if (g+r)%2 == 0 {
					// Single-binary path, sharing one *elfx.Binary with
					// every other goroutine touching the same index.
					i := (g + r) % len(bins)
					vars, err := cati.InferBinaryCtx(ctx, bins[i])
					if err != nil {
						errc <- err
						return
					}
					if !same(vars, want[i]) {
						mismatch <- "InferBinaryCtx diverged from serial baseline"
						return
					}
					continue
				}
				// Batch path over all binaries at once.
				results, err := cati.InferBatchOpts(ctx, bins, BatchOptions{})
				if err != nil {
					errc <- err
					return
				}
				for i, res := range results {
					if res.Err != nil {
						errc <- res.Err
						return
					}
					if !same(res.Vars, want[i]) {
						mismatch <- "InferBatchOpts diverged from serial baseline"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	close(mismatch)
	for err := range errc {
		t.Fatal(err)
	}
	for msg := range mismatch {
		t.Fatal(msg)
	}
}

// TestFingerprintRoundTrip checks the Save/Load fingerprint contract:
// unset before sealing, identical across a save→load round trip, and
// different for a different artifact.
func TestFingerprintRoundTrip(t *testing.T) {
	cati := sharedCATI(t)
	if cati.Fingerprint() != "" && len(cati.Fingerprint()) != 16 {
		t.Fatalf("unexpected fingerprint %q", cati.Fingerprint())
	}
	blob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	fp := cati.Fingerprint()
	if len(fp) != 16 {
		t.Fatalf("Save fingerprint %q, want 16 hex chars", fp)
	}
	loaded, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != fp {
		t.Fatalf("Load fingerprint %q != Save fingerprint %q", loaded.Fingerprint(), fp)
	}
	// A different artifact (one flipped payload-adjacent copy) must not
	// share the fingerprint: re-seal after a config tweak.
	loaded.Pipeline.Cfg.MaxPerStage++
	blob2, err := loaded.Save()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() == fp {
		t.Fatal("distinct artifacts share a fingerprint")
	}
	if len(blob2) == 0 {
		t.Fatal("empty artifact")
	}
}
