package core

import (
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/corpus"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/synth"
	"repro/internal/word2vec"
)

var (
	fuzzOnce sync.Once
	fuzzCATI *CATI
	fuzzErr  error
)

// fuzzModel trains the smallest useful system once per process: a flat
// classifier over a two-binary corpus, enough for the full recover →
// extract → embed → predict → vote pipeline to run on fuzzed images.
func fuzzModel(t testing.TB) *CATI {
	t.Helper()
	fuzzOnce.Do(func() {
		var c *corpus.Corpus
		c, fuzzErr = corpus.Build(corpus.BuildConfig{
			Name:     "fuzz-train",
			Binaries: 2,
			Profile:  synth.DefaultProfile("fuzz"),
			Window:   5,
			Seed:     91,
		})
		if fuzzErr != nil {
			return
		}
		fuzzCATI, fuzzErr = Train(c, classify.Config{
			Window: 5,
			Conv1:  4, Conv2: 4, Hidden: 16,
			MaxPerStage: 200,
			Flat:        true,
			Train:       nn.TrainConfig{Epochs: 1, Batch: 32, LR: 2e-3},
			W2V:         word2vec.Config{Epochs: 1},
			Seed:        9,
		})
	})
	if fuzzErr != nil {
		t.Fatal(fuzzErr)
	}
	return fuzzCATI
}

// FuzzInferBinary drives the entire inference pipeline — ELF parsing,
// disassembly, variable recovery, VUC extraction, embedding, the CNN,
// and voting — on arbitrary images with a trained model. Every input is
// either inferred or rejected with an error; no byte sequence may panic
// any stage.
func FuzzInferBinary(f *testing.F) {
	cati := fuzzModel(f)
	valid, err := elfx.Write(testBinary(f, 901))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-section
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("not an elf at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vars, err := cati.InferImage(data)
		if err != nil {
			return
		}
		for _, v := range vars {
			if v.NumVUCs <= 0 {
				t.Fatalf("inferred variable with %d VUCs", v.NumVUCs)
			}
		}
	})
}
