package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/elfx"
	"repro/internal/nn"
	"repro/internal/par"
)

// freshCATI returns an independent copy of the shared system (via
// save/load) so tests can mutate weights without poisoning batchmates.
func freshCATI(t *testing.T) *CATI {
	t.Helper()
	blob, err := sharedCATI(t).Save()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLoadRejectsCorruption is the artifact acceptance matrix: every
// tampering mode maps to its typed error, and nothing panics.
func TestLoadRejectsCorruption(t *testing.T) {
	blob, err := sharedCATI(t).Save()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Load(nil); !errors.Is(err, artifact.ErrTooShort) {
			t.Fatalf("want ErrTooShort, got %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := Load(blob[:10]); !errors.Is(err, artifact.ErrTooShort) {
			t.Fatalf("want ErrTooShort, got %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		if _, err := Load(blob[:len(blob)-7]); !errors.Is(err, artifact.ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		grown := append(append([]byte(nil), blob...), 0xFF)
		if _, err := Load(grown); !errors.Is(err, artifact.ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] ^= 0xFF
		if _, err := Load(bad); !errors.Is(err, artifact.ErrMagic) {
			t.Fatalf("want ErrMagic, got %v", err)
		}
	})
	t.Run("version bump", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[12]++ // version field, little-endian low byte
		if _, err := Load(bad); !errors.Is(err, artifact.ErrVersion) {
			t.Fatalf("want ErrVersion, got %v", err)
		}
	})
	t.Run("payload bit flip", func(t *testing.T) {
		// The acceptance scenario: one flipped bit anywhere in the payload
		// must surface as a checksum error, not a gob decode of bad weights.
		bad := append([]byte(nil), blob...)
		bad[len(bad)/2] ^= 0x08
		if _, err := Load(bad); !errors.Is(err, artifact.ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
}

// TestLoadRejectsNonFinite: a structurally valid artifact whose weights
// contain NaN (a diverged or hand-poisoned model) is refused at load.
func TestLoadRejectsNonFinite(t *testing.T) {
	c := freshCATI(t)
	for _, net := range c.Pipeline.Stages {
		p := net.Params()
		p[0].W[0] = float32(nan())
		break
	}
	blob, err := c.Save()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(blob); !errors.Is(err, nn.ErrNotFinite) {
		t.Fatalf("want ErrNotFinite, got %v", err)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// hostileBinary is a structurally valid Binary whose .text is garbage
// the decoder rejects — the in-memory analogue of a corrupted ELF.
func hostileBinary() *elfx.Binary {
	return &elfx.Binary{
		Entry: 0x401000,
		Sections: []elfx.Section{{
			Name: ".text", Type: elfx.SHTProgbits,
			Flags: elfx.SHFAlloc | elfx.SHFExecinstr,
			Addr:  0x401000,
			// A lone two-byte-opcode escape: truncated instruction.
			Data: []byte{0x0F},
		}},
	}
}

// TestInferBatchPartialFailure is the acceptance scenario: a batch of
// three where the middle binary is corrupt yields two successes and one
// error record — no crash, no aborted batch.
func TestInferBatchPartialFailure(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 301), hostileBinary(), testBinary(t, 302)}
	results, err := cati.InferBatch(context.Background(), bins)
	if err != nil {
		t.Fatalf("batch-level error for a per-binary failure: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("healthy binary %d failed: %v", i, results[i].Err)
		}
		if len(results[i].Vars) == 0 {
			t.Fatalf("healthy binary %d inferred nothing", i)
		}
	}
	if results[1].Err == nil {
		t.Fatal("corrupt binary must carry an error record")
	}
	if results[1].Vars != nil {
		t.Fatal("failed binary must not carry variables")
	}
	if results[1].Attempts != 1 {
		t.Fatalf("deterministic failure retried: %d attempts", results[1].Attempts)
	}
}

// TestInferBatchNoRetryOnDeterministicFailure: retries are reserved for
// transient failures; a malformed binary fails once even with budget.
func TestInferBatchNoRetryOnDeterministicFailure(t *testing.T) {
	cati := sharedCATI(t)
	results, err := cati.InferBatchOpts(context.Background(),
		[]*elfx.Binary{hostileBinary()}, BatchOptions{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || results[0].Attempts != 1 {
		t.Fatalf("want 1 attempt with error, got %d attempts, err=%v",
			results[0].Attempts, results[0].Err)
	}
}

// TestInferBatchPerBinaryTimeout: an impossible per-binary deadline
// produces DeadlineExceeded records after the full retry budget, while
// the batch itself still returns cleanly.
func TestInferBatchPerBinaryTimeout(t *testing.T) {
	cati := sharedCATI(t)
	bins := []*elfx.Binary{testBinary(t, 303), testBinary(t, 304)}
	results, err := cati.InferBatchOpts(context.Background(), bins,
		BatchOptions{Timeout: time.Nanosecond, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Fatalf("binary %d: want DeadlineExceeded, got %v", i, res.Err)
		}
		if res.Attempts != 3 {
			t.Fatalf("binary %d: want 3 attempts (1 + 2 retries), got %d", i, res.Attempts)
		}
	}
}

// TestRetryable pins the retry policy's error classification: contained
// panics and deadlines retry, deterministic errors do not.
func TestRetryable(t *testing.T) {
	if retryable(errors.New("parse error")) {
		t.Error("plain errors must not retry")
	}
	if !retryable(context.DeadlineExceeded) {
		t.Error("deadline must retry")
	}
	panicErr := par.SafeErr(func() error { panic("transient wobble") })
	if !retryable(panicErr) {
		t.Error("contained panics must retry")
	}
}
