package core

import (
	"errors"
	"testing"

	"repro/internal/artifact"
)

// TestQuantizeSaveLoad round-trips an int8 system through Save/Load and
// checks the rebuilt system infers identically to the in-memory one.
func TestQuantizeSaveLoad(t *testing.T) {
	cati := sharedCATI(t)
	qcati, err := cati.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if !qcati.Pipeline.Quantized() {
		t.Fatal("quantized system does not report Quantized")
	}
	if cati.Pipeline.Quantized() {
		t.Fatal("original system must stay float")
	}
	blob, err := qcati.Save()
	if err != nil {
		t.Fatal(err)
	}
	if kind, ok := artifact.Kind(blob); !ok || kind != "modelq8" {
		t.Fatalf("quantized artifact kind = %q, want modelq8", kind)
	}
	got, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Pipeline.Quantized() {
		t.Fatal("loaded system does not report Quantized")
	}

	bin := testBinary(t, 91)
	a, err := qcati.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("variable counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("inference differs at %d after quantized save/load", i)
		}
	}
}

// TestQuantizeAgreement checks int8 inference stays close to float32 on
// real pipeline output: the two systems must type most variables alike.
func TestQuantizeAgreement(t *testing.T) {
	cati := sharedCATI(t)
	qcati, err := cati.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	bin := testBinary(t, 92)
	fv, err := cati.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	qv, err := qcati.InferBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv) == 0 || len(fv) != len(qv) {
		t.Fatalf("variable counts: float %d, int8 %d", len(fv), len(qv))
	}
	agree := 0
	for i := range fv {
		if fv[i].Class == qv[i].Class {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(fv)); frac < 0.9 {
		t.Errorf("int8/f32 class agreement %.3f over %d vars, want ≥0.9", frac, len(fv))
	}
}

// TestQuantizedFingerprintsDiffer: the float and int8 artifacts of one
// trained system must have distinguishing fingerprints.
func TestQuantizedFingerprintsDiffer(t *testing.T) {
	cati := sharedCATI(t)
	fblob, err := cati.Save()
	if err != nil {
		t.Fatal(err)
	}
	qcati, err := cati.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	if qcati.Fingerprint() != "" {
		t.Error("unsaved quantized system should have no fingerprint")
	}
	qblob, err := qcati.Save()
	if err != nil {
		t.Fatal(err)
	}
	if cati.Fingerprint() == qcati.Fingerprint() {
		t.Errorf("float and quantized fingerprints collide: %s", cati.Fingerprint())
	}
	if len(qblob) >= len(fblob) {
		t.Errorf("quantized artifact %dB not smaller than float %dB", len(qblob), len(fblob))
	}
}

// TestQuantizedForwardCompat: a build that predates the quantized kind
// opens model artifacts with artifact.Open("model", ...); fed a modelq8
// blob it must fail with the typed kind error, not a gob panic. And a
// current build fed an unknown future kind must report ErrUnknownKind.
func TestQuantizedForwardCompat(t *testing.T) {
	cati := sharedCATI(t)
	qcati, err := cati.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	qblob, err := qcati.Save()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly what a pre-quantization binary's Load does with the file.
	if _, err := artifact.Open("model", ModelVersion, qblob); !errors.Is(err, artifact.ErrKind) {
		t.Errorf("pre-kind open of modelq8 artifact: %v, want artifact.ErrKind", err)
	}
	// This build's Load on a well-formed artifact of a kind it has never
	// heard of: typed unknown-kind error.
	future := artifact.Seal("modelq9", 1, []byte("payload"))
	if _, err := Load(future); !errors.Is(err, artifact.ErrUnknownKind) {
		t.Errorf("Load(unknown kind): %v, want artifact.ErrUnknownKind", err)
	}
}

// TestQuantizedNotTrainable: the quantized system's networks reject
// training through the public trainer entry point.
func TestQuantizedNotTrainable(t *testing.T) {
	cati := sharedCATI(t)
	qcati, err := cati.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	for stage, net := range qcati.Pipeline.Stages {
		if net.Trainable() {
			t.Errorf("stage %s still trainable after quantization", stage)
		}
	}
	var empty CATI
	if _, err := empty.Quantize(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("Quantize on empty system: %v, want ErrNotTrained", err)
	}
}
