package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Server is a running debug HTTP server. It mounts:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       liveness probe ("ok")
//	/debug/vars    expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof/  the standard pprof profile handlers
//
// Starting a server enables collection on its registry, so a process run
// with -debug-addr records metrics and one without pays only the atomic
// no-op fast path.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	lis  net.Listener
	srv  *http.Server
}

var (
	srvMu       sync.Mutex
	lastSrvAddr string
)

// ServerAddr returns the bound address of the most recently started debug
// server ("" when none started). It exists so tests and parent processes
// can discover the port a ":0" listen resolved to.
func ServerAddr() string {
	srvMu.Lock()
	defer srvMu.Unlock()
	return lastSrvAddr
}

// StartServer binds addr, enables collection on reg (nil: the default
// registry) and serves the debug endpoints until Close. The listener is
// bound synchronously — a bad address fails here, not in the background —
// and serving happens on a goroutine of its own.
func StartServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	reg.SetEnabled(true)

	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{Addr: lis.Addr().String(), lis: lis, srv: &http.Server{Handler: mux}}
	srvMu.Lock()
	lastSrvAddr = s.Addr
	srvMu.Unlock()
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Close stops serving and releases the listener. Collection stays enabled:
// metrics keep accumulating for a later server or an in-process reader.
func (s *Server) Close() error {
	return s.srv.Close()
}
