package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Server is a running debug HTTP server. It mounts:
//
//	/metrics         Prometheus text exposition of the registry
//	/healthz         liveness probe ("ok")
//	/debug/vars      expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof/    the standard pprof profile handlers
//	/v1/trace/{id}   one trace's span tree (when a trace collector is set)
//	/debug/traces    recent-traces listing (ditto)
//
// Starting a server enables collection on its registry, so a process run
// with -debug-addr records metrics and one without pays only the atomic
// no-op fast path.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	lis  net.Listener
	srv  *http.Server
}

var (
	srvMu       sync.Mutex
	lastSrvAddr string
)

// ServerAddr returns the bound address of the most recently started debug
// server ("" when none started). It exists so tests and parent processes
// can discover the port a ":0" listen resolved to.
func ServerAddr() string {
	srvMu.Lock()
	defer srvMu.Unlock()
	return lastSrvAddr
}

// StartServer binds addr, enables collection on reg (nil: the default
// registry) and serves the debug endpoints until Close. The listener is
// bound synchronously — a bad address fails here, not in the background —
// and serving happens on a goroutine of its own.
func StartServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	reg.SetEnabled(true)

	mux := http.NewServeMux()
	mux.Handle("/metrics", gateHandler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Trace read side: resolve the collector per request so a collector
	// installed after the server starts (or swapped by a test) is served
	// without restarting.
	mux.Handle("GET /v1/trace/{id}", traceLookup(func(c *trace.Collector) http.Handler {
		return c.TraceHandler()
	}))
	mux.Handle("GET /debug/traces", traceLookup(func(c *trace.Collector) http.Handler {
		return c.RecentHandler()
	}))

	s := &Server{Addr: lis.Addr().String(), lis: lis, srv: &http.Server{Handler: mux}}
	srvMu.Lock()
	lastSrvAddr = s.Addr
	srvMu.Unlock()
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Shutdown stops accepting new connections and waits for in-flight
// requests — a /metrics scrape mid-render, a pprof profile streaming its
// samples — to complete, up to ctx's deadline. It returns nil once every
// request finished, or ctx.Err() when the deadline forced remaining
// connections closed. Collection stays enabled either way, exactly as
// with Close. Long-lived processes (catiserve's drain path) should prefer
// Shutdown so a monitoring system's last scrape is never truncated;
// Close remains for tests and abrupt teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// Close stops serving immediately — in-flight requests are dropped — and
// releases the listener. Collection stays enabled: metrics keep
// accumulating for a later server or an in-process reader.
func (s *Server) Close() error {
	return s.srv.Close()
}

// scrapeGate, when set, holds every /metrics scrape between accept and
// render: the handler sends on entered, then blocks until release is
// closed. It exists so the shutdown test can pin a scrape in flight
// deterministically (the test-hook pattern net/http itself uses); nil in
// production, where gateHandler adds one atomic load per scrape.
var scrapeGate atomic.Pointer[scrapeHold]

type scrapeHold struct {
	entered chan struct{}
	release chan struct{}
}

// traceLookup defers to the process trace collector at request time,
// answering 404 while tracing is disabled.
func traceLookup(mk func(*trace.Collector) http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := trace.Default()
		if c == nil {
			http.Error(w, "tracing disabled (no collector installed)", http.StatusNotFound)
			return
		}
		mk(c).ServeHTTP(w, r)
	})
}

// gateHandler wraps the /metrics handler with the scrapeGate test hook.
func gateHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g := scrapeGate.Load(); g != nil {
			g.entered <- struct{}{}
			<-g.release
		}
		h.ServeHTTP(w, r)
	})
}
