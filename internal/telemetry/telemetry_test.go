package telemetry

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestDisabledRegistryIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	g := r.Gauge("g", "help")
	f := r.FloatGauge("f", "help")
	h := r.Histogram("h_seconds", "help", []float64{1, 2})

	c.Inc()
	c.Add(5)
	g.Inc()
	g.Set(9)
	f.Set(3.5)
	h.Observe(1.5)
	h.ObserveSince(time.Now())

	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded writes: c=%d g=%d f=%g hn=%d",
			c.Value(), g.Value(), f.Value(), h.Count())
	}
	if h.Enabled() {
		t.Fatal("histogram reports enabled on a disabled registry")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Inc()
	g.Dec()
	g.Set(1)
	f.Set(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	if h.Enabled() {
		t.Fatal("nil histogram reports enabled")
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
	f := r.FloatGauge("f", "help")
	f.Set(0.25)
	if got := f.Value(); got != 0.25 {
		t.Fatalf("float gauge = %g, want 0.25", got)
	}
}

func TestSameNameReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	a := r.Counter("dup_total", "help", "k", "v")
	b := r.Counter("dup_total", "help", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("dup_total", "help", "k", "w")
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
	a.Inc()
	if b.Value() != 1 || other.Value() != 0 {
		t.Fatalf("variant isolation broken: b=%d other=%d", b.Value(), other.Value())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "help")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q\n%s", line, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("b_total", "b counts things", "stage", "embed").Add(3)
	r.Counter("b_total", "b counts things", "stage", "vote").Add(1)
	r.Gauge("a_busy", "busy workers").Set(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Families sorted by name, HELP/TYPE headers before series, labeled
	// variants in lexical order.
	want := "# HELP a_busy busy workers\n" +
		"# TYPE a_busy gauge\n" +
		"a_busy 2\n" +
		"# HELP b_total b counts things\n" +
		"# TYPE b_total counter\n" +
		`b_total{stage="embed"} 3` + "\n" +
		`b_total{stage="vote"} 1` + "\n"
	if out != want {
		t.Fatalf("exposition =\n%s\nwant\n%s", out, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	r.Counter("esc_total", "help", "path", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestLoggerLevelsAndFormats(t *testing.T) {
	for _, tc := range []struct{ format, level string }{
		{"text", "debug"}, {"text", "info"}, {"json", "warn"}, {"json", "error"},
		{"", ""}, {"TEXT", "WARNING"},
	} {
		if _, err := NewLogger(io.Discard, tc.format, tc.level); err != nil {
			t.Errorf("NewLogger(%q, %q): %v", tc.format, tc.level, err)
		}
	}
	if _, err := NewLogger(io.Discard, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(io.Discard, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestLoggerFiltersBelowLevel(t *testing.T) {
	var b strings.Builder
	log, err := NewLogger(&b, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %s", out)
	}
	if !strings.Contains(out, "shown") {
		t.Errorf("warn line missing: %s", out)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	c := r.Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramDisabled(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "help", StageBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("bench_seconds", "help", StageBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 1})

	// No exemplar recorded yet; empty trace IDs must not create one.
	h.ObserveWithExemplar(0.05, "")
	if _, _, ok := h.Exemplar(0); ok {
		t.Fatal("empty trace ID produced an exemplar")
	}
	h.ObserveWithExemplar(0.05, "aaaabbbbccccddddaaaabbbbccccdddd")
	h.ObserveWithExemplar(5.0, "eeeeffff0000111122223333aaaabbbb")
	id, v, ok := h.Exemplar(0)
	if !ok || id != "aaaabbbbccccddddaaaabbbbccccdddd" || v != 0.05 {
		t.Fatalf("bucket 0 exemplar = (%q, %g, %v)", id, v, ok)
	}
	if id, _, ok = h.Exemplar(2); !ok || id != "eeeeffff0000111122223333aaaabbbb" {
		t.Fatalf("+Inf bucket exemplar = (%q, %v)", id, ok)
	}

	// Exposition: hidden by default, OpenMetrics-style suffix when on.
	var off strings.Builder
	if err := r.WritePrometheus(&off); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off.String(), "trace_id") {
		t.Fatalf("exemplars exposed without opt-in:\n%s", off.String())
	}
	r.SetExemplars(true)
	var on strings.Builder
	if err := r.WritePrometheus(&on); err != nil {
		t.Fatal(err)
	}
	want := `lat_seconds_bucket{le="0.1"} 2 # {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.05`
	if !strings.Contains(on.String(), want) {
		t.Fatalf("exposition missing exemplar suffix %q:\n%s", want, on.String())
	}
	// The exemplar suffix must ride the bucket line, after the value.
	for _, line := range strings.Split(on.String(), "\n") {
		if strings.Contains(line, "trace_id") && !strings.Contains(line, "_bucket") {
			t.Fatalf("exemplar on a non-bucket line: %q", line)
		}
	}
}

func TestLatestExemplarWins(t *testing.T) {
	r := NewRegistry()
	r.SetEnabled(true)
	h := r.Histogram("x_seconds", "help", []float64{1})
	h.ObserveWithExemplar(0.5, "first0000000000000000000000000000")
	h.ObserveWithExemplar(0.7, "second000000000000000000000000000")
	if id, v, _ := h.Exemplar(0); id != "second000000000000000000000000000" || v != 0.7 {
		t.Fatalf("exemplar = (%q, %g), want the latest", id, v)
	}
}
