package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !reg.Enabled() {
		t.Fatal("StartServer did not enable collection")
	}
	if got := ServerAddr(); got != srv.Addr {
		t.Fatalf("ServerAddr() = %q, want %q", got, srv.Addr)
	}
	reg.Counter("srv_test_total", "help").Add(2)

	base := "http://" + srv.Addr
	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "srv_test_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d (memstats present: %v)", code, strings.Contains(body, "memstats"))
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestStartServerBadAddr(t *testing.T) {
	if _, err := StartServer("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}
