package telemetry

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if !reg.Enabled() {
		t.Fatal("StartServer did not enable collection")
	}
	if got := ServerAddr(); got != srv.Addr {
		t.Fatalf("ServerAddr() = %q, want %q", got, srv.Addr)
	}
	reg.Counter("srv_test_total", "help").Add(2)

	base := "http://" + srv.Addr
	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "srv_test_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d (memstats present: %v)", code, strings.Contains(body, "memstats"))
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestStartServerBadAddr(t *testing.T) {
	if _, err := StartServer("256.0.0.1:bad", NewRegistry()); err == nil {
		t.Fatal("bad address accepted")
	}
}

// TestShutdownCompletesInFlightScrape pins a /metrics scrape in flight
// via the scrapeGate test hook, starts a graceful Shutdown, verifies the
// shutdown waits, then releases the scrape and checks the client received
// the complete exposition and Shutdown returned cleanly.
func TestShutdownCompletesInFlightScrape(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("shutdown_scrape_total", "help").Add(7)

	gate := &scrapeHold{entered: make(chan struct{}), release: make(chan struct{})}
	scrapeGate.Store(gate)
	defer scrapeGate.Store(nil)

	scrapeBody := make(chan string, 1)
	scrapeErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr + "/metrics")
		if err != nil {
			scrapeErr <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			scrapeErr <- err
			return
		}
		scrapeBody <- string(body)
	}()

	// Wait until the scrape is in the handler, then start the shutdown.
	select {
	case <-gate.entered:
	case err := <-scrapeErr:
		t.Fatalf("scrape failed before entering handler: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the handler")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// With the scrape still held, Shutdown must be waiting, not done.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a scrape was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate.release)
	select {
	case body := <-scrapeBody:
		if !strings.Contains(body, "shutdown_scrape_total 7") {
			t.Fatalf("in-flight scrape got truncated exposition:\n%s", body)
		}
	case err := <-scrapeErr:
		t.Fatalf("in-flight scrape failed during shutdown: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned after the scrape completed")
	}
	// The listener is down: new scrapes must fail.
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}
