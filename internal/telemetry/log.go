package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the shared structured logger the CLIs route their
// diagnostics through: format is "text" (the default, human-oriented
// key=value lines) or "json" (one JSON object per line, machine-parseable
// alongside `cati infer -json` output), level one of debug, info, warn,
// error. Diagnostics always go to w (the CLIs pass stderr), never stdout,
// so data output stays clean.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
