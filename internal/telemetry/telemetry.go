// Package telemetry is the pipeline's runtime metrics substrate: a
// dependency-free registry of atomic counters, gauges and fixed-bucket
// histograms with Prometheus text-format exposition, plus the debug HTTP
// server (server.go) and the shared structured-logging handler (log.go)
// the CLIs mount them behind.
//
// The registry is built for hot paths: every metric write starts with one
// atomic bool load of the registry's enabled flag and returns immediately
// when collection is off, so instrumented code (par's shard loop, nn's
// minibatch loop) pays a no-op fast path unless a debug server — or a
// test — has switched collection on. Metric handles are created once at
// package init (or lazily for labeled families) and are safe for
// concurrent use; nil handles are safe no-ops so callers never need nil
// checks.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a set of metric families and the enabled flag their
// metrics consult on every write.
type Registry struct {
	on atomic.Bool
	// exemplars gates exemplar *exposition*. Exemplar capture
	// (ObserveWithExemplar) is always on when collection is on — it costs
	// one atomic pointer swap — but the OpenMetrics-style `# {...}` bucket
	// suffixes only render when a deployment opts in, because not every
	// Prometheus scraper tolerates them in the text format.
	exemplars atomic.Bool
	mu        sync.Mutex
	fams      map[string]*family
}

// SetExemplars switches exemplar exposition on the registry.
func (r *Registry) SetExemplars(v bool) { r.exemplars.Store(v) }

// ExemplarsEnabled reports whether exemplar exposition is on.
func (r *Registry) ExemplarsEnabled() bool { return r.exemplars.Load() }

// family groups all label variants of one metric name under one type and
// help string, the unit Prometheus exposition renders together.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"
	// metrics maps the rendered label signature (`stage="embed"`, "" when
	// unlabeled) to the variant.
	metrics map[string]*metric
}

type metric struct {
	labels string
	c      *Counter
	g      *Gauge
	f      *FloatGauge
	h      *Histogram
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// std is the process-wide default registry every instrumented package
// registers into; the debug server enables and serves it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// On reports whether the default registry is collecting.
func On() bool { return std.Enabled() }

// SetEnabled switches collection on the default registry.
func SetEnabled(v bool) { std.SetEnabled(v) }

// Enabled reports whether metric writes are being collected.
func (r *Registry) Enabled() bool { return r.on.Load() }

// SetEnabled switches collection on or off. Metrics created while the
// registry was disabled start counting from their current (usually zero)
// state; disabling freezes values but keeps them exposable.
func (r *Registry) SetEnabled(v bool) { r.on.Store(v) }

// familyLocked returns the named family, creating it with the given type
// and help on first use. Re-registering a name as a different metric type
// is a programming error and panics.
func (r *Registry) familyLocked(name, help, typ string) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, metrics: make(map[string]*metric)}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// labelString renders alternating key/value pairs as `k1="v1",k2="v2"`.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// Counter registers (or returns) the cumulative counter with the given
// name and optional alternating label key/value pairs.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	sig := labelString(kv)
	if m, ok := f.metrics[sig]; ok {
		return m.c
	}
	c := &Counter{on: &r.on}
	f.metrics[sig] = &metric{labels: sig, c: c}
	return c
}

// Gauge registers (or returns) the integer gauge with the given name and
// optional labels.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	sig := labelString(kv)
	if m, ok := f.metrics[sig]; ok {
		return m.g
	}
	g := &Gauge{on: &r.on}
	f.metrics[sig] = &metric{labels: sig, g: g}
	return g
}

// FloatGauge registers (or returns) the float gauge with the given name
// and optional labels. Integer and float gauges share the "gauge"
// exposition type but a name must stick to one Go flavor.
func (r *Registry) FloatGauge(name, help string, kv ...string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	sig := labelString(kv)
	if m, ok := f.metrics[sig]; ok {
		return m.f
	}
	fg := &FloatGauge{on: &r.on}
	f.metrics[sig] = &metric{labels: sig, f: fg}
	return fg
}

// Histogram registers (or returns) the fixed-bucket histogram with the
// given name, bucket upper bounds (ascending; +Inf is implicit) and
// optional labels. All variants of one name must share bucket bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	sig := labelString(kv)
	if m, ok := f.metrics[sig]; ok {
		return m.h
	}
	h := &Histogram{on: &r.on, bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(h.bounds)+1)
	h.ex = make([]atomic.Pointer[exemplar], len(h.bounds)+1)
	f.metrics[sig] = &metric{labels: sig, h: h}
	return h
}

// Counter is a cumulative atomic counter.
type Counter struct {
	on *atomic.Bool
	v  atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. A no-op (one atomic load) while collection is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge (a value that goes up and down, e.g.
// busy workers).
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(d)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 gauge (e.g. the last epoch's loss).
type FloatGauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (f *FloatGauge) Set(v float64) {
	if f == nil || !f.on.Load() {
		return
	}
	f.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (f *FloatGauge) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Histogram is a fixed-bucket histogram: per-bucket atomic counts plus an
// atomic sum, observed without locks.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow bucket
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// ex holds one exemplar slot per bucket: the most recent traced
	// observation that landed there. Slots swap atomically, so the hot
	// path stays lock-free; readers see the latest complete exemplar.
	ex []atomic.Pointer[exemplar]
}

// exemplar links one bucket observation to the trace it came from —
// "why is this bucket hot" answered with a /v1/trace/{id} lookup.
type exemplar struct {
	traceID string
	value   float64
	ts      time.Time
}

// Enabled reports whether observations are being collected — callers that
// must pay for the observed value itself (e.g. a time.Now() pair) can skip
// that work when off.
func (h *Histogram) Enabled() bool { return h != nil && h.on.Load() }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveWithExemplar records one value and — when traceID is non-empty —
// remembers it as the matched bucket's exemplar, so the exposition can
// point a hot bucket at a concrete trace. An empty traceID degrades to
// Observe, which keeps call sites unconditional (trace.IDFromContext
// returns "" when no trace is active).
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.observe(v, traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	if h == nil || !h.on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	if traceID != "" {
		h.ex[i].Store(&exemplar{traceID: traceID, value: v, ts: time.Now()})
	}
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if !h.Enabled() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Exemplar returns bucket i's exemplar as (traceID, value, ok); i indexes
// bounds with len(bounds) meaning the +Inf bucket.
func (h *Histogram) Exemplar(i int) (string, float64, bool) {
	if h == nil || i < 0 || i >= len(h.ex) {
		return "", 0, false
	}
	e := h.ex[i].Load()
	if e == nil {
		return "", 0, false
	}
	return e.traceID, e.value, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Time-bucket presets shared by the instrumented packages.
var (
	// StageBuckets span pipeline stage latencies: microsecond votes on
	// tiny binaries up to multi-minute CNN training phases.
	StageBuckets = []float64{1e-5, 1e-4, 1e-3, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}
	// QueueBuckets span worker-pool slot waits: sub-microsecond on an idle
	// pool up to seconds when every slot is taken by long shards.
	QueueBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1, 10}
	// HTTPBuckets span served-request latencies: sub-millisecond cache
	// hits through hedged/fallback tails. Used by the serving and fleet
	// layers so their p99s land in comparable buckets.
	HTTPBuckets = []float64{5e-4, 1e-3, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
)

// fmtFloat renders a float the way Prometheus text format expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (# HELP / # TYPE headers, then one line per series),
// families and label variants in lexical order for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	variants := make([][]*metric, len(names))
	for i, name := range names {
		f := r.fams[name]
		fams[i] = f
		sigs := make([]string, 0, len(f.metrics))
		for sig := range f.metrics {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			variants[i] = append(variants[i], f.metrics[sig])
		}
	}
	r.mu.Unlock()

	var b strings.Builder
	withEx := r.exemplars.Load()
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, m := range variants[i] {
			writeMetric(&b, f.name, m, withEx)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// series renders `name{labels}` (or bare name), merging extra label pairs
// (the histogram le) into an existing signature.
func series(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

func writeMetric(b *strings.Builder, name string, m *metric, withEx bool) {
	switch {
	case m.c != nil:
		fmt.Fprintf(b, "%s %d\n", series(name, m.labels, ""), m.c.Value())
	case m.g != nil:
		fmt.Fprintf(b, "%s %d\n", series(name, m.labels, ""), m.g.Value())
	case m.f != nil:
		fmt.Fprintf(b, "%s %s\n", series(name, m.labels, ""), fmtFloat(m.f.Value()))
	case m.h != nil:
		h := m.h
		var cum uint64
		writeBucket := func(i int, le string) {
			fmt.Fprintf(b, "%s %d", series(name+"_bucket", m.labels, le), cum)
			if withEx && i < len(h.ex) {
				if e := h.ex[i].Load(); e != nil {
					// OpenMetrics exemplar syntax: `# {labels} value ts`.
					fmt.Fprintf(b, " # {trace_id=\"%s\"} %s %s",
						escapeLabel(e.traceID), fmtFloat(e.value),
						strconv.FormatFloat(float64(e.ts.UnixMicro())/1e6, 'f', 6, 64))
				}
			}
			b.WriteByte('\n')
		}
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeBucket(i, `le="`+fmtFloat(bound)+`"`)
		}
		cum += h.counts[len(h.bounds)].Load()
		writeBucket(len(h.bounds), `le="+Inf"`)
		fmt.Fprintf(b, "%s %s\n", series(name+"_sum", m.labels, ""), fmtFloat(h.Sum()))
		fmt.Fprintf(b, "%s %d\n", series(name+"_count", m.labels, ""), h.Count())
	}
}

// ServeHTTP serves the exposition text — the registry is its own /metrics
// handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
