package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Header is the trace-propagation header. The value follows the W3C
// traceparent shape — version "00", 32-hex trace ID, 16-hex parent span
// ID, and a flags byte ("01" = sampled):
//
//	X-Cati-Trace: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// A distinct header name (not "traceparent") keeps the fleet's internal
// propagation from colliding with any ambient tracing infrastructure a
// deployment might already run, while staying mechanically convertible.
const Header = "X-Cati-Trace"

// Inject writes ctx's active trace into h. No active span: no header.
func Inject(ctx context.Context, h http.Header) {
	s := SpanFromContext(ctx)
	if s == nil {
		return
	}
	h.Set(Header, "00-"+s.traceID.String()+"-"+s.id.String()+"-01")
}

// Extract parses the propagation header. ok is false when the header is
// absent or malformed — the caller should then start a fresh trace.
func Extract(h http.Header) (TraceID, SpanID, bool) {
	v := h.Get(Header)
	if v == "" {
		return TraceID{}, SpanID{}, false
	}
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" {
		return TraceID{}, SpanID{}, false
	}
	tid, ok := ParseTraceID(parts[1])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	sid, ok := ParseSpanID(parts[2])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// StartFromRequest begins a server-side span for r: continuing the trace
// in r's X-Cati-Trace header when present and valid, else a fresh root.
// The returned context derives from r.Context().
func StartFromRequest(r *http.Request, name string, attrs ...Attr) (context.Context, *Span) {
	if tid, sid, ok := Extract(r.Header); ok {
		return StartRemote(r.Context(), tid, sid, name, attrs...)
	}
	return Start(r.Context(), name, attrs...)
}

// TraceHandler serves one trace's span records as JSON. Mount it at
// GET /v1/trace/{id}; the span list is sorted by start time and the
// response notes how many spans the per-trace cap dropped.
func (c *Collector) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := ParseTraceID(r.PathValue("id"))
		if !ok {
			http.Error(w, `{"error":"bad trace id"}`, http.StatusBadRequest)
			return
		}
		spans := c.Get(id)
		if len(spans) == 0 {
			http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			TraceID string       `json:"trace"`
			Dropped int          `json:"dropped,omitempty"`
			Spans   []SpanRecord `json:"spans"`
		}{id.String(), c.Dropped(id), spans})
	})
}

// RecentHandler serves the recent-traces listing. Mount it at
// GET /debug/traces; `?n=` bounds the rows (default 50) and
// `Accept: application/json` (or `?format=json`) switches the plain-text
// table to JSON.
func (c *Collector) RecentHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n <= 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
		}
		sums := c.Recent(n)
		if r.URL.Query().Get("format") == "json" ||
			strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(sums)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-32s  %-24s  %10s  %6s  %s\n", "TRACE", "ROOT", "DURATION", "SPANS", "FLAGS")
		for _, s := range sums {
			flags := ""
			if s.Slow {
				flags += "slow "
			}
			if s.Error != "" {
				flags += "error=" + s.Error
			}
			if s.Dropped > 0 {
				flags += fmt.Sprintf(" dropped=%d", s.Dropped)
			}
			root := s.Root
			if root == "" {
				root = "(remote root)"
			}
			fmt.Fprintf(w, "%-32s  %-24s  %10s  %6d  %s\n",
				s.TraceID, root,
				(time.Duration(s.DurUS) * time.Microsecond).Round(time.Microsecond),
				s.Spans, strings.TrimSpace(flags))
		}
	})
}
