package trace

import (
	"encoding/json"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config zero values.
const (
	// DefaultMaxTraces bounds the number of distinct traces the store
	// retains (FIFO eviction of finished traces).
	DefaultMaxTraces = 256
	// DefaultMaxSpans bounds spans kept per trace; later spans in an
	// over-budget trace are dropped and counted, never silently lost.
	DefaultMaxSpans = 512
	// DefaultSlowRetain bounds the slow-request flight recorder's pinned
	// trace ring.
	DefaultSlowRetain = 64
)

// Config sizes a Collector. Zero values take the defaults above; a zero
// Slow threshold disables the flight recorder.
type Config struct {
	// MaxTraces bounds distinct retained traces (FIFO eviction).
	MaxTraces int
	// MaxSpans bounds spans per trace.
	MaxSpans int
	// Slow is the flight-recorder threshold: any local root span at least
	// this slow pins its whole trace in a separate ring (SlowRetain deep)
	// and logs a summary through Log. Zero disables the recorder.
	Slow time.Duration
	// SlowRetain bounds the pinned slow-trace ring.
	SlowRetain int
	// JSONL, when non-nil, receives one JSON line per finished span (the
	// SpanRecord schema). Writes are serialized by the collector.
	JSONL io.Writer
	// Log receives slow-request summaries (slog.Default when nil and Slow
	// is set).
	Log *slog.Logger
}

// SpanRecord is the wire/storage form of a finished span — what the JSONL
// exporter writes and /v1/trace/{id} returns. Field names are short but
// stable; DESIGN.md §15 documents the schema.
type SpanRecord struct {
	TraceID string  `json:"trace"`
	SpanID  string  `json:"span"`
	Parent  string  `json:"parent,omitempty"`
	Remote  bool    `json:"remote,omitempty"`
	Name    string  `json:"name"`
	Start   int64   `json:"start_us"` // µs since Unix epoch
	DurUS   int64   `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	Events  []Event `json:"events,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// TraceSummary is one row of the recent-traces listing (/debug/traces).
type TraceSummary struct {
	TraceID string `json:"trace"`
	Root    string `json:"root"` // root span name, "" if the root is elsewhere
	Start   int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"` // root span duration (longest span if no local root)
	Spans   int    `json:"spans"`
	Dropped int    `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
	Slow    bool   `json:"slow,omitempty"`
}

// traceBuf accumulates one trace's finished spans.
type traceBuf struct {
	spans   []SpanRecord
	dropped int
	slow    bool
	seq     uint64 // admission order, for FIFO eviction
}

// Collector stores finished spans, bounded two ways: at most MaxTraces
// distinct traces (FIFO — oldest finished trace evicted first, except
// slow-pinned traces which live in their own SlowRetain ring) and at most
// MaxSpans spans per trace. It also counts open spans so tests can assert
// cancellation paths leak nothing.
type Collector struct {
	cfg  Config
	open atomic.Int64

	mu     sync.Mutex
	traces map[TraceID]*traceBuf
	seq    uint64
	// slowRing holds trace IDs pinned by the flight recorder, oldest
	// first; pinned traces are exempt from FIFO eviction until they fall
	// off this ring.
	slowRing []TraceID
}

// NewCollector builds a collector from cfg (zero fields defaulted).
func NewCollector(cfg Config) *Collector {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = DefaultMaxTraces
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.SlowRetain <= 0 {
		cfg.SlowRetain = DefaultSlowRetain
	}
	if cfg.Slow > 0 && cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	return &Collector{cfg: cfg, traces: make(map[TraceID]*traceBuf)}
}

// startSpan counts a span into the open gauge.
func (c *Collector) startSpan() { c.open.Add(1) }

// OpenSpans reports spans started but not yet ended — zero when every
// code path Ends what it Starts, including under cancellation.
func (c *Collector) OpenSpans() int64 { return c.open.Load() }

// finishSpan stores an ended span, runs the flight recorder for local
// roots, and exports the JSONL line. Called exactly once per span (End
// dedupes).
func (c *Collector) finishSpan(s *Span) {
	c.open.Add(-1)

	s.mu.Lock()
	rec := SpanRecord{
		TraceID: s.traceID.String(),
		SpanID:  s.id.String(),
		Remote:  s.remote,
		Name:    s.name,
		Start:   s.start.UnixMicro(),
		DurUS:   s.dur.Microseconds(),
		Error:   s.err,
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = append([]Attr(nil), s.attrs...)
	}
	if len(s.events) > 0 {
		rec.Events = append([]Event(nil), s.events...)
	}
	dur := s.dur
	isLocalRoot := s.parent.IsZero() && !s.remote
	s.mu.Unlock()

	slow := c.cfg.Slow > 0 && isLocalRoot && dur >= c.cfg.Slow

	c.mu.Lock()
	buf := c.traces[s.traceID]
	if buf == nil {
		buf = &traceBuf{seq: c.seq}
		c.seq++
		c.traces[s.traceID] = buf
		c.evictLocked()
	}
	if len(buf.spans) < c.cfg.MaxSpans {
		buf.spans = append(buf.spans, rec)
	} else {
		buf.dropped++
	}
	if slow && !buf.slow {
		buf.slow = true
		c.pinSlowLocked(s.traceID)
	}
	var w io.Writer
	if c.cfg.JSONL != nil {
		w = c.cfg.JSONL
	}
	c.mu.Unlock()

	if w != nil {
		c.exportJSONL(w, rec)
	}
	if slow {
		c.cfg.Log.Warn("slow request",
			"trace", rec.TraceID, "span", rec.Name,
			"dur", dur.Round(time.Microsecond), "err", rec.Error)
	}
}

// pinSlowLocked adds id to the slow ring, unpinning (and thereby making
// evictable) the oldest entry when the ring is full.
func (c *Collector) pinSlowLocked(id TraceID) {
	if len(c.slowRing) >= c.cfg.SlowRetain {
		old := c.slowRing[0]
		c.slowRing = c.slowRing[1:]
		if buf := c.traces[old]; buf != nil {
			buf.slow = false
		}
	}
	c.slowRing = append(c.slowRing, id)
}

// evictLocked drops oldest non-pinned traces until the store fits.
func (c *Collector) evictLocked() {
	for len(c.traces) > c.cfg.MaxTraces {
		var victim TraceID
		var vbuf *traceBuf
		for id, buf := range c.traces {
			if buf.slow {
				continue
			}
			if vbuf == nil || buf.seq < vbuf.seq {
				victim, vbuf = id, buf
			}
		}
		if vbuf == nil {
			return // everything pinned; tolerate the overshoot
		}
		delete(c.traces, victim)
	}
}

// exportJSONL writes one span line. Errors are swallowed: the exporter is
// best-effort and must never fail a request.
func (c *Collector) exportJSONL(w io.Writer, rec SpanRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	c.mu.Lock()
	_, _ = w.Write(b)
	c.mu.Unlock()
}

// Get returns the stored spans of one trace (start-time order), or nil.
func (c *Collector) Get(id TraceID) []SpanRecord {
	c.mu.Lock()
	buf := c.traces[id]
	var out []SpanRecord
	if buf != nil {
		out = append([]SpanRecord(nil), buf.spans...)
	}
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Dropped reports how many spans the per-trace cap discarded for id.
func (c *Collector) Dropped(id TraceID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if buf := c.traces[id]; buf != nil {
		return buf.dropped
	}
	return 0
}

// Recent summarizes up to n most-recently-admitted traces, newest first.
func (c *Collector) Recent(n int) []TraceSummary {
	c.mu.Lock()
	type row struct {
		seq uint64
		sum TraceSummary
	}
	rows := make([]row, 0, len(c.traces))
	for id, buf := range c.traces {
		rows = append(rows, row{buf.seq, summarize(id, buf)})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq > rows[j].seq })
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	out := make([]TraceSummary, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.sum)
	}
	return out
}

// summarize reduces a trace buffer to its listing row (collector lock
// held by the caller).
func summarize(id TraceID, buf *traceBuf) TraceSummary {
	c := TraceSummary{TraceID: id.String(), Slow: buf.slow, Dropped: buf.dropped}
	c.Spans = len(buf.spans)
	for i := range buf.spans {
		sp := &buf.spans[i]
		if c.Start == 0 || sp.Start < c.Start {
			c.Start = sp.Start
		}
		isRoot := sp.Parent == "" && !sp.Remote
		if isRoot || (c.Root == "" && sp.DurUS > c.DurUS) {
			c.DurUS = sp.DurUS
		}
		if isRoot {
			c.Root = sp.Name
		}
		if sp.Error != "" && c.Error == "" {
			c.Error = sp.Error
		}
	}
	return c
}

// Len reports the number of retained traces.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}
