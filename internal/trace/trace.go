// Package trace is the fleet's request-scoped observability substrate: a
// dependency-free distributed-tracing layer. Where internal/telemetry
// aggregates (counters and histograms over every request the process ever
// served) and internal/obs tabulates (one run's stage wall times), trace
// explains a single request: a tree of spans — named, timed, attributed,
// evented — that starts at whichever process first saw the request and
// crosses HTTP hops via the X-Cati-Trace header (http.go), so one trace
// covers client → fleet router (plan, hedge, retry, peer-fill spans) →
// catiserve replica (admission, queue-wait, batch spans) → every pipeline
// stage (recover/extract/embed/predict/vote).
//
// The layer is built around the same discipline as telemetry's off
// switch: with no collector installed (SetDefault(nil), the default),
// Start is one atomic load plus one context value probe and returns a nil
// *Span whose every method is a no-op — no allocation, no clock read.
// BENCH_trace.json holds the measured overhead of that disabled path on
// the serving hot path, and TestDisabledPathDoesNotAllocate pins the
// zero-alloc property in CI.
//
// Spans are carried by context.Context. A span is created by Start (child
// of the context's span, or a new sampled root), mutated by SetAttr/
// Event/SetError from any goroutine, and finished exactly once by End,
// which hands it to the collector (collector.go): a bounded in-memory
// store with a JSON-lines exporter, a slow-request flight recorder, and
// the /v1/trace/{id} + /debug/traces read side.
package trace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request trace (16 bytes, rendered as
// 32 hex digits — the W3C trace-context width).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

// IsZero reports the all-zero (absent) ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the all-zero (absent) ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes the 32-hex-digit form; ok is false for anything
// else (including the all-zero ID, which is reserved for "absent").
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseSpanID decodes the 16-hex-digit form.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 2*len(id) {
		return SpanID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// newTraceID/newSpanID draw random IDs. math/rand/v2's top-level
// generator is lock-free (per-P state) and the IDs only need collision
// resistance within the bounded store, not cryptographic strength.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// Attr is one span attribute. Values are strings; the typed constructors
// below render the common Go types so call sites stay terse.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Value: "true"}
	}
	return Attr{Key: k, Value: "false"}
}

// Duration builds a duration attribute (Go duration syntax, e.g. "1.2ms").
func Duration(k string, d time.Duration) Attr { return Attr{Key: k, Value: d.String()} }

// itoa is strconv.Itoa without the import weight in the hot path helpers.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Event is one timestamped occurrence inside a span (a hedge launched, a
// retry backoff, a queue-wait) — cheaper than a child span when there is
// no meaningful duration of its own.
type Event struct {
	Time  time.Time `json:"t"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver (the disabled-tracing path) and safe for concurrent use —
// stages fan out across goroutines and several may annotate the same
// request span.
type Span struct {
	c       *Collector
	traceID TraceID
	id      SpanID
	parent  SpanID
	// remote marks a span whose parent lives in another process (it
	// arrived via the X-Cati-Trace header); such spans are subtree roots
	// locally but not trace roots, so the flight recorder does not
	// re-judge them.
	remote bool
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	err    string
	ended  bool
	dur    time.Duration
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying span, whose cancellation and
// deadline are ctx's. Use it to re-parent work onto another request's
// span — the micro-batcher hands each binary a context that cancels with
// the batch but traces to the request that submitted it.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// IDFromContext returns the active trace's hex ID, or "" when the context
// carries no span — the form histogram exemplars want.
func IDFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.traceID.String()
	}
	return ""
}

// enabled gates the whole layer: one atomic load on the disabled fast
// path. Set by SetDefault.
var enabled atomic.Bool

// defaultC is the process-wide collector (nil when tracing is off).
var defaultC atomic.Pointer[Collector]

// SetDefault installs c as the process collector; nil disables tracing.
func SetDefault(c *Collector) {
	defaultC.Store(c)
	enabled.Store(c != nil)
}

// Default returns the process collector (nil when tracing is off).
func Default() *Collector { return defaultC.Load() }

// Enabled reports whether a collector is installed.
func Enabled() bool { return enabled.Load() }

// Start begins a span named name: a child of the context's span when one
// is active, else — with a collector installed — a new root span with a
// fresh trace ID. It returns a derived context carrying the new span and
// the span itself; call End exactly once. When tracing is disabled and
// the context carries no span, Start returns (ctx, nil) without
// allocating, and the nil span swallows every later call.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	var c *Collector
	if parent != nil {
		c = parent.c
	} else {
		if !enabled.Load() {
			return ctx, nil
		}
		c = defaultC.Load()
		if c == nil {
			return ctx, nil
		}
	}
	s := &Span{c: c, name: name, id: newSpanID(), start: time.Now()}
	if parent != nil {
		s.traceID = parent.traceID
		s.parent = parent.id
	} else {
		s.traceID = newTraceID()
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	c.startSpan()
	return ContextWithSpan(ctx, s), s
}

// StartRemote begins a span continuing a trace another process started
// (trace and parent extracted from the propagation header). It requires a
// collector; without one it returns (ctx, nil) like Start.
func StartRemote(ctx context.Context, traceID TraceID, parent SpanID, name string, attrs ...Attr) (context.Context, *Span) {
	c := defaultC.Load()
	if c == nil || traceID.IsZero() {
		return Start(ctx, name, attrs...)
	}
	s := &Span{
		c: c, traceID: traceID, parent: parent, remote: true,
		name: name, id: newSpanID(), start: time.Now(),
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	c.startSpan()
	return ContextWithSpan(ctx, s), s
}

// TraceID returns the span's trace ID (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// ID returns the span's ID (zero for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil || len(attrs) == 0 {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event records a timestamped occurrence on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	e := Event{Time: time.Now(), Name: name}
	if len(attrs) > 0 {
		e.Attrs = append(e.Attrs, attrs...)
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// SetError records the span's failure. A nil error is a no-op, so the
// common `defer func() { span.SetError(err); span.End() }()` shape needs
// no branch.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End finishes the span: stamps its duration and hands it to the
// collector. Exactly the first End takes effect; later calls (and End on
// nil) are no-ops, so cancellation paths can End defensively.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	s.mu.Unlock()
	s.c.finishSpan(s)
}

// Duration returns the span's wall time: final after End, the running
// elapsed time before it (0 for nil). Span timing lives here so callers
// never do their own time.Now() arithmetic around spans — the Makefile
// lint gate holds obs to that.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Timer is the sanctioned stopwatch for span-adjacent wall-time math in
// code that must keep measuring when tracing is off (obs stage tables,
// par's queue-wait). Centralizing the clock reads here keeps "who times
// what" greppable — the lint gate forbids raw time.Now() span math in the
// stage-observability packages.
type Timer struct{ t0 time.Time }

// NewTimer starts a stopwatch.
func NewTimer() Timer { return Timer{t0: time.Now()} }

// Elapsed reports the wall time since NewTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.t0) }

// Started reports whether the timer was actually started (zero Timers
// read false, so an unconditionally deferred observe can skip itself).
func (t Timer) Started() bool { return !t.t0.IsZero() }
