package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// install swaps in a fresh collector for one test and restores the
// previous default afterwards.
func install(t *testing.T, cfg Config) *Collector {
	t.Helper()
	prev := Default()
	c := NewCollector(cfg)
	SetDefault(c)
	t.Cleanup(func() { SetDefault(prev) })
	return c
}

func TestDisabledStartReturnsNil(t *testing.T) {
	SetDefault(nil)
	ctx, span := Start(context.Background(), "x")
	if span != nil {
		t.Fatal("Start returned a span with tracing disabled")
	}
	if ctx != context.Background() {
		t.Fatal("Start derived a new context with tracing disabled")
	}
	// All nil-span methods must be safe no-ops.
	span.SetAttr(String("k", "v"))
	span.Event("e")
	span.SetError(errors.New("boom"))
	span.End()
	if got := span.Duration(); got != 0 {
		t.Fatalf("nil span Duration = %v, want 0", got)
	}
	if id := IDFromContext(ctx); id != "" {
		t.Fatalf("IDFromContext = %q, want empty", id)
	}
}

// TestDisabledPathDoesNotAllocate pins the zero-cost-when-off property:
// the disabled fast path of Start must not allocate. CI runs this (it is
// a plain test, not a benchmark), so a fast-path regression fails the
// build regardless of machine speed.
func TestDisabledPathDoesNotAllocate(t *testing.T) {
	SetDefault(nil)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, s := Start(ctx, "hot")
		s.Event("never")
		s.End()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled Start allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanTreeAndCollector(t *testing.T) {
	c := install(t, Config{})
	ctx, root := Start(context.Background(), "request", String("path", "/v1/infer"))
	if root == nil {
		t.Fatal("no root span with collector installed")
	}
	ctx2, child := Start(ctx, "stage", Int("workers", 4))
	child.Event("queued", Duration("wait", time.Millisecond))
	if child.TraceID() != root.TraceID() {
		t.Fatal("child has a different trace ID")
	}
	_, grand := Start(ctx2, "leaf")
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()
	root.End()

	if n := c.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after all Ends", n)
	}
	spans := c.Get(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("stored %d spans, want 3", len(spans))
	}
	byID := map[string]SpanRecord{}
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	rootRec := byID[root.ID().String()]
	if rootRec.Parent != "" || rootRec.Name != "request" {
		t.Fatalf("bad root record %+v", rootRec)
	}
	childRec := byID[child.ID().String()]
	if childRec.Parent != root.ID().String() {
		t.Fatalf("child parent = %q, want %q", childRec.Parent, root.ID())
	}
	if len(childRec.Events) != 1 || childRec.Events[0].Name != "queued" {
		t.Fatalf("child events = %+v", childRec.Events)
	}
	grandRec := byID[grand.ID().String()]
	if grandRec.Parent != child.ID().String() || grandRec.Error != "boom" {
		t.Fatalf("bad grandchild record %+v", grandRec)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	c := install(t, Config{})
	_, s := Start(context.Background(), "once")
	s.End()
	s.End()
	s.End()
	if n := c.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after redundant Ends", n)
	}
	if got := len(c.Get(s.TraceID())); got != 1 {
		t.Fatalf("stored %d records, want 1", got)
	}
}

func TestFIFOEvictionAndSpanCap(t *testing.T) {
	c := install(t, Config{MaxTraces: 3, MaxSpans: 2})
	var first TraceID
	for i := 0; i < 5; i++ {
		ctx, root := Start(context.Background(), fmt.Sprintf("r%d", i))
		if i == 0 {
			first = root.TraceID()
		}
		for j := 0; j < 4; j++ {
			_, s := Start(ctx, "child")
			s.End()
		}
		root.End()
	}
	if c.Len() != 3 {
		t.Fatalf("retained %d traces, want 3", c.Len())
	}
	if got := c.Get(first); got != nil {
		t.Fatal("oldest trace survived FIFO eviction")
	}
	recent := c.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("Recent returned %d rows, want 3", len(recent))
	}
	for _, r := range recent {
		if r.Spans != 2 {
			t.Fatalf("trace kept %d spans, want cap 2", r.Spans)
		}
		if r.Dropped != 3 {
			t.Fatalf("trace dropped %d spans, want 3", r.Dropped)
		}
	}
}

func TestSlowFlightRecorderPinsAndLogs(t *testing.T) {
	var logBuf bytes.Buffer
	h := newTestLogHandler(&logBuf)
	// The threshold must be far above what a no-work Start/End pair can
	// take even under -race on a loaded box: a "fast" trace accidentally
	// crossing it would get pinned too and push the real slow trace off
	// the bounded pinned ring.
	c := install(t, Config{MaxTraces: 2, Slow: 20 * time.Millisecond, SlowRetain: 8, Log: h})

	_, slow := Start(context.Background(), "slow-req")
	time.Sleep(25 * time.Millisecond)
	slow.End()
	slowID := slow.TraceID()

	// Flood with fast traces: the slow one must survive eviction.
	for i := 0; i < 10; i++ {
		SetDefault(c) // keep default stable
		_, s := Start(context.Background(), "fast")
		s.End()
	}
	if got := c.Get(slowID); len(got) != 1 {
		t.Fatalf("slow trace evicted (got %d spans)", len(got))
	}
	if !strings.Contains(logBuf.String(), "slow request") {
		t.Fatalf("no slow-request log line; log = %q", logBuf.String())
	}
	if !strings.Contains(logBuf.String(), slowID.String()) {
		t.Fatalf("slow log line lacks trace id; log = %q", logBuf.String())
	}
	// The pinned ring itself is bounded.
	for i := 0; i < 10; i++ {
		_, s := Start(context.Background(), "also-slow")
		time.Sleep(25 * time.Millisecond)
		s.End()
	}
	if c.Len() > 2+8 {
		t.Fatalf("store grew to %d traces despite bounds", c.Len())
	}
}

func TestJSONLExport(t *testing.T) {
	var buf syncBuffer
	install(t, Config{JSONL: &buf})
	ctx, root := Start(context.Background(), "req")
	_, child := Start(ctx, "stage")
	child.End()
	root.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exported %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.TraceID != root.TraceID().String() {
			t.Fatalf("line trace = %q, want %q", rec.TraceID, root.TraceID())
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	install(t, Config{})
	ctx, span := Start(context.Background(), "client")
	h := http.Header{}
	Inject(ctx, h)
	v := h.Get(Header)
	want := "00-" + span.TraceID().String() + "-" + span.ID().String() + "-01"
	if v != want {
		t.Fatalf("header = %q, want %q", v, want)
	}
	tid, sid, ok := Extract(h)
	if !ok || tid != span.TraceID() || sid != span.ID() {
		t.Fatalf("Extract = (%v, %v, %v)", tid, sid, ok)
	}
	span.End()
}

func TestExtractRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"00-xyz-abc-01",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // 3 parts
	}
	for _, v := range cases {
		h := http.Header{}
		if v != "" {
			h.Set(Header, v)
		}
		if _, _, ok := Extract(h); ok {
			t.Fatalf("Extract accepted %q", v)
		}
	}
}

func TestStartFromRequestContinuesRemoteTrace(t *testing.T) {
	install(t, Config{})
	// Client side.
	clientCtx, clientSpan := Start(context.Background(), "client")
	req := httptest.NewRequest("POST", "/v1/infer", nil)
	Inject(clientCtx, req.Header)

	// Server side.
	_, serverSpan := StartFromRequest(req, "server")
	if serverSpan.TraceID() != clientSpan.TraceID() {
		t.Fatal("server span did not continue the client trace")
	}
	serverSpan.End()
	clientSpan.End()

	spans := Default().Get(clientSpan.TraceID())
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.SpanID == serverSpan.ID().String() {
			if !s.Remote || s.Parent != clientSpan.ID().String() {
				t.Fatalf("server record not linked remotely: %+v", s)
			}
		}
	}
}

func TestTraceHandler(t *testing.T) {
	c := install(t, Config{})
	ctx, root := Start(context.Background(), "req")
	_, child := Start(ctx, "stage")
	child.End()
	root.End()

	mux := http.NewServeMux()
	mux.Handle("GET /v1/trace/{id}", c.TraceHandler())
	mux.Handle("GET /debug/traces", c.RecentHandler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/trace/" + root.TraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var body struct {
		TraceID string       `json:"trace"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != root.TraceID().String() || len(body.Spans) != 2 {
		t.Fatalf("trace body = %+v", body)
	}

	if resp, err = http.Get(srv.URL + "/v1/trace/not-a-trace"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id = %d, want 400", resp.StatusCode)
	}
	missing := newTraceIDForTest()
	if resp, err = http.Get(srv.URL + "/v1/trace/" + missing.String()); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace = %d, want 404", resp.StatusCode)
	}

	if resp, err = http.Get(srv.URL + "/debug/traces"); err != nil {
		t.Fatal(err)
	}
	b := new(bytes.Buffer)
	_, _ = b.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(b.String(), "req") || !strings.Contains(b.String(), root.TraceID().String()) {
		t.Fatalf("/debug/traces listing missing rows:\n%s", b)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/debug/traces", nil)
	req.Header.Set("Accept", "application/json")
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	var sums []TraceSummary
	err = json.NewDecoder(resp.Body).Decode(&sums)
	resp.Body.Close()
	if err != nil || len(sums) != 1 || sums[0].Root != "req" || sums[0].Spans != 2 {
		t.Fatalf("JSON listing = %+v (err %v)", sums, err)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	c := install(t, Config{MaxTraces: 16, MaxSpans: 64})
	ctx, root := Start(context.Background(), "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c2, s := Start(ctx, "worker")
				s.SetAttr(Int("g", g), Int("i", i))
				s.Event("tick")
				_, leaf := Start(c2, "leaf")
				leaf.End()
				s.End()
				root.SetAttr(Int("last", i))
				_ = c.Recent(4)
				_ = IDFromContext(c2)
			}
		}(g)
	}
	wg.Wait()
	root.End()
	if n := c.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after concurrent churn", n)
	}
}

func TestTimer(t *testing.T) {
	var zero Timer
	if zero.Started() {
		t.Fatal("zero Timer reports started")
	}
	tm := NewTimer()
	if !tm.Started() {
		t.Fatal("NewTimer not started")
	}
	time.Sleep(time.Millisecond)
	if tm.Elapsed() <= 0 {
		t.Fatal("Elapsed not positive")
	}
}

func TestParseIDs(t *testing.T) {
	id := newTraceIDForTest()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID round trip failed: %v %v", got, ok)
	}
	if _, ok := ParseTraceID("short"); ok {
		t.Fatal("accepted short trace id")
	}
	sid := newSpanID()
	gsid, ok := ParseSpanID(sid.String())
	if !ok || gsid != sid {
		t.Fatal("ParseSpanID round trip failed")
	}
}

// newTestLogHandler builds a text slog.Logger into w for asserting on
// flight-recorder output.
func newTestLogHandler(w *bytes.Buffer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}

// syncBuffer is a mutex-guarded bytes.Buffer (JSONL writer under -race).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newTraceIDForTest() TraceID { return newTraceID() }
