package obs

import (
	"context"
	"errors"
	"testing"

	"repro/internal/telemetry"
)

// TestStageFeedsTelemetry checks that Runner.Stage reports each execution
// into the stage-labeled histogram and counters. Unique stage names keep
// the assertions delta-free against the shared process registry.
func TestStageFeedsTelemetry(t *testing.T) {
	telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(false) })

	var r Runner // no Trace, no Hook: metrics flow regardless
	const stage = "test-telemetry-ok"
	for i := 0; i < 3; i++ {
		if err := r.Stage(context.Background(), stage, 1, func(context.Context) (int, error) {
			return 7, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	reg := telemetry.Default()
	h := reg.Histogram("cati_stage_seconds", "", telemetry.StageBuckets, "stage", stage)
	if got := h.Count(); got != 3 {
		t.Errorf("stage latency observations = %d, want 3", got)
	}
	if got := reg.Counter("cati_stage_runs_total", "", "stage", stage).Value(); got != 3 {
		t.Errorf("stage runs = %d, want 3", got)
	}
	if got := reg.Counter("cati_stage_items_total", "", "stage", stage).Value(); got != 21 {
		t.Errorf("stage items = %d, want 21", got)
	}
	if got := reg.Counter("cati_stage_errors_total", "", "stage", stage).Value(); got != 0 {
		t.Errorf("stage errors = %d, want 0", got)
	}

	const failing = "test-telemetry-fail"
	wantErr := errors.New("stage broke")
	if err := r.Stage(context.Background(), failing, 1, func(context.Context) (int, error) {
		return 0, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("Stage returned %v, want %v", err, wantErr)
	}
	if got := reg.Counter("cati_stage_errors_total", "", "stage", failing).Value(); got != 1 {
		t.Errorf("failing stage errors = %d, want 1", got)
	}
}

// TestStageTelemetryDisabled checks the off path records nothing.
func TestStageTelemetryDisabled(t *testing.T) {
	if telemetry.On() {
		t.Skip("registry enabled by environment")
	}
	var r Runner
	const stage = "test-telemetry-off"
	if err := r.Stage(context.Background(), stage, 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	h := telemetry.Default().Histogram("cati_stage_seconds", "", telemetry.StageBuckets, "stage", stage)
	if got := h.Count(); got != 0 {
		t.Errorf("disabled registry observed %d stage latencies", got)
	}
}
