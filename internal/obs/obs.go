// Package obs is the pipeline's observability substrate: named stages,
// per-stage wall-clock traces, and optional hook callbacks. The paper's
// workflow is explicitly staged (extract → generalize → embed → classify →
// vote, §III); obs makes those stages first-class so callers can see where
// the time went, cancel between stages, and attach their own telemetry.
//
// A Runner is cheap and nil-safe in all its parts: a zero Runner runs
// stages with no recording, a Runner with only a Trace records timings,
// and a Hook additionally receives start/end events as they happen. Stages
// may run concurrently (classify trains its six CNNs in parallel); Trace
// is safe for concurrent Add.
package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Stage is one recorded pipeline stage.
type Stage struct {
	// Name identifies the stage (e.g. "recover", "embed", "cnn:stage1").
	Name string
	// Wall is the stage's wall-clock duration.
	Wall time.Duration
	// Items is the number of work items the stage processed (VUCs,
	// samples, sentences ... stage-dependent; 0 when not meaningful).
	Items int
	// Workers is the worker count the stage ran with.
	Workers int
	// Err records the stage's failure, if any.
	Err error
}

// Trace accumulates stage records. Safe for concurrent use; stages land
// in completion order.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
}

// Add appends a completed stage record.
func (t *Trace) Add(s Stage) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, s)
	t.mu.Unlock()
}

// Stages returns a snapshot of the recorded stages.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}

// Total sums the recorded stage wall times. Note that concurrent stages
// (e.g. the six CNN trainings) overlap, so Total can exceed the
// end-to-end elapsed time for training traces; inference stages run
// sequentially and sum to ~the end-to-end time.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Stages() {
		sum += s.Wall
	}
	return sum
}

// Reset clears the trace for reuse across runs.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = t.stages[:0]
	t.mu.Unlock()
}

// Format renders the stage breakdown as an aligned table.
func (t *Trace) Format() string {
	stages := t.Stages()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s  %10s  %8s  %7s\n", "STAGE", "WALL", "ITEMS", "WORKERS")
	for _, s := range stages {
		fmt.Fprintf(&b, "%-16s  %10s  %8d  %7d", s.Name, s.Wall.Round(time.Microsecond), s.Items, s.Workers)
		if s.Err != nil {
			fmt.Fprintf(&b, "  ! %v", s.Err)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s  %10s\n", "total", t.Total().Round(time.Microsecond))
	return b.String()
}

// Event is one hook notification: a stage starting (Done=false, only
// Name/Workers set) or finishing (Done=true, all fields set).
type Event struct {
	Stage   string
	Done    bool
	Wall    time.Duration
	Items   int
	Workers int
	Err     error
}

// Hook receives stage events as they happen. Hooks must be fast and may
// be called from multiple goroutines when stages run concurrently.
type Hook func(Event)

// Runner executes named stages, recording each into Trace and firing
// Hook, when set. The zero Runner is valid and adds no overhead beyond
// the context check.
type Runner struct {
	Trace *Trace
	Hook  Hook
}

// Stage runs fn as the named stage: it refuses to start once ctx is
// cancelled (returning ctx.Err()), times the run, and records/notifies
// the outcome. fn reports how many items it processed; it receives a
// derived context carrying the stage's trace span, so work fanned out
// inside the stage (par shards, nested calls) lands under that span.
//
// Stage is rebased on internal/trace: when the context carries an active
// request span, each stage becomes a child span named after the stage,
// which is how one /v1/infer trace comes to include recover → extract →
// embed → predict → vote. When tracing is off, the span is a nil no-op
// and only the Timer's two clock reads remain — -trace tables and the
// telemetry histograms behave exactly as before.
func (r Runner) Stage(ctx context.Context, name string, workers int, fn func(ctx context.Context) (items int, err error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.Hook != nil {
		r.Hook(Event{Stage: name, Workers: workers})
	}
	sctx, span := trace.Start(ctx, name, trace.Int("workers", workers))
	tm := trace.NewTimer()
	items, err := fn(sctx)
	wall := tm.Elapsed()
	span.SetAttr(trace.Int("items", items))
	span.SetError(err)
	span.End()
	r.Trace.Add(Stage{Name: name, Wall: wall, Items: items, Workers: workers, Err: err})
	record(name, wall, items, err, trace.IDFromContext(sctx))
	if r.Hook != nil {
		r.Hook(Event{Stage: name, Done: true, Wall: wall, Items: items, Workers: workers, Err: err})
	}
	return err
}

// record feeds the stage outcome into the process-wide telemetry registry:
// a latency histogram, an item counter and run/error counters, all labeled
// by stage name. Unlike a Trace — one run's table — these accumulate over
// every stage execution in the process, which is what a /metrics scrape of
// a long-running service needs; the -trace table stays a per-run view over
// the same events. The whole call is skipped while collection is off.
// traceID (when non-empty) becomes the latency bucket's exemplar, linking
// the histogram back to a retrievable trace.
func record(name string, wall time.Duration, items int, err error, traceID string) {
	if !telemetry.On() {
		return
	}
	reg := telemetry.Default()
	reg.Histogram("cati_stage_seconds", "Wall-clock stage latency by pipeline stage.",
		telemetry.StageBuckets, "stage", name).ObserveWithExemplar(wall.Seconds(), traceID)
	if items > 0 {
		reg.Counter("cati_stage_items_total", "Work items processed, by pipeline stage.",
			"stage", name).Add(uint64(items))
	}
	reg.Counter("cati_stage_runs_total", "Completed stage executions, by pipeline stage.",
		"stage", name).Inc()
	if err != nil {
		reg.Counter("cati_stage_errors_total", "Stage executions that returned an error, by pipeline stage.",
			"stage", name).Inc()
	}
}
