package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunnerRecordsStages(t *testing.T) {
	tr := &Trace{}
	var events []Event
	run := Runner{Trace: tr, Hook: func(e Event) { events = append(events, e) }}

	err := run.Stage(context.Background(), "alpha", 4, func(context.Context) (int, error) {
		time.Sleep(time.Millisecond)
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	stages := tr.Stages()
	if len(stages) != 1 {
		t.Fatalf("want 1 stage, got %d", len(stages))
	}
	s := stages[0]
	if s.Name != "alpha" || s.Items != 42 || s.Workers != 4 || s.Err != nil {
		t.Fatalf("bad stage record: %+v", s)
	}
	if s.Wall <= 0 {
		t.Fatal("stage wall time not recorded")
	}
	if tr.Total() < s.Wall {
		t.Fatalf("Total %v < stage wall %v", tr.Total(), s.Wall)
	}
	if len(events) != 2 || events[0].Done || !events[1].Done {
		t.Fatalf("want start+end events, got %+v", events)
	}
	if events[1].Items != 42 || events[1].Wall != s.Wall {
		t.Fatalf("end event does not match record: %+v", events[1])
	}
}

func TestRunnerStageError(t *testing.T) {
	tr := &Trace{}
	run := Runner{Trace: tr}
	boom := errors.New("boom")
	if err := run.Stage(context.Background(), "bad", 1, func(context.Context) (int, error) { return 7, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	stages := tr.Stages()
	if len(stages) != 1 || !errors.Is(stages[0].Err, boom) || stages[0].Items != 7 {
		t.Fatalf("error stage not recorded: %+v", stages)
	}
}

func TestRunnerRefusesCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := &Trace{}
	ran := false
	err := Runner{Trace: tr}.Stage(ctx, "never", 1, func(context.Context) (int, error) { ran = true; return 0, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran {
		t.Fatal("stage body ran under a cancelled context")
	}
	if len(tr.Stages()) != 0 {
		t.Fatal("refused stage must not be recorded")
	}
}

func TestZeroRunnerAndNilTrace(t *testing.T) {
	var run Runner // no trace, no hook
	if err := run.Stage(context.Background(), "free", 1, func(context.Context) (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Add(Stage{Name: "x"}) // nil trace: no-op, no panic
	if tr.Stages() != nil || tr.Total() != 0 {
		t.Fatal("nil trace should report nothing")
	}
	tr.Reset()
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Add(Stage{Name: "s", Wall: time.Millisecond})
		}()
	}
	wg.Wait()
	if len(tr.Stages()) != 32 {
		t.Fatalf("lost stages: %d of 32", len(tr.Stages()))
	}
	if tr.Total() != 32*time.Millisecond {
		t.Fatalf("Total = %v", tr.Total())
	}
}

func TestTraceFormatAndReset(t *testing.T) {
	tr := &Trace{}
	tr.Add(Stage{Name: "embed", Wall: 2 * time.Millisecond, Items: 10, Workers: 2})
	out := tr.Format()
	for _, want := range []string{"STAGE", "embed", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	tr.Reset()
	if len(tr.Stages()) != 0 {
		t.Fatal("Reset did not clear the trace")
	}
}
