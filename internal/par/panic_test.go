package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSafeConvertsPanic pins the recover-to-error conversion: value and
// worker stack are both preserved.
func TestSafeConvertsPanic(t *testing.T) {
	err := Safe(func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "boom" {
		t.Errorf("Value = %v, want boom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panic_test.go") {
		t.Errorf("stack does not mention the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q does not mention the value", err.Error())
	}
}

// TestSafeNoDoubleWrap: a *PanicError re-raised through another Safe layer
// passes through unchanged.
func TestSafeNoDoubleWrap(t *testing.T) {
	inner := Safe(func() { panic("inner") })
	outer := Safe(func() { panic(inner) })
	if outer != inner {
		t.Fatalf("re-wrapped: outer %v != inner %v", outer, inner)
	}
}

// TestPanicErrorUnwrap: panicking with an error value keeps it reachable
// via errors.Is through the containment layer.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("typed failure")
	err := Safe(func() { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is through PanicError failed: %v", err)
	}
	if err := Safe(func() { panic("plain") }); errors.Unwrap(err) != nil {
		t.Fatalf("non-error panic value should unwrap to nil, got %v", errors.Unwrap(err))
	}
}

// TestSafeErr passes fn's own error through and converts panics.
func TestSafeErr(t *testing.T) {
	want := errors.New("own error")
	if err := SafeErr(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	var pe *PanicError
	if err := SafeErr(func() error { panic("pow") }); !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if err := SafeErr(func() error { return nil }); err != nil {
		t.Fatalf("want nil, got %v", err)
	}
}

// TestShardPanicDrains: one shard panics, every other shard still
// completes, and the caller sees a recoverable *PanicError.
func TestShardPanicDrains(t *testing.T) {
	const n, workers = 64, 8
	var done atomic.Int64
	err := Safe(func() {
		Shard(n, workers, func(s, lo, hi int) {
			if s == 3 {
				panic(fmt.Sprintf("shard %d down", s))
			}
			done.Add(int64(hi - lo))
		})
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	lo3, hi3 := shardBounds(n, NumShards(n, workers), 3)
	if got, want := done.Load(), int64(n-(hi3-lo3)); got != want {
		t.Errorf("pool did not drain: %d items done, want %d", got, want)
	}
}

// TestShardErrFirstInShardOrder: several shards panic; the shard-order
// first one is returned deterministically.
func TestShardErrFirstInShardOrder(t *testing.T) {
	for try := 0; try < 10; try++ {
		_, err := ShardErr(8, 8, func(s, lo, hi int) {
			if s >= 2 {
				panic(s)
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("want *PanicError, got %v", err)
		}
		if pe.Value != 2 {
			t.Fatalf("want first panicking shard 2, got %v", pe.Value)
		}
	}
}

// TestForEachCtxPanicToError covers both the uncancellable fast path and
// the cancellable path, serial and parallel.
func TestForEachCtxPanicToError(t *testing.T) {
	ctxs := map[string]context.Context{
		"background": context.Background(),
	}
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctxs["cancellable"] = cctx
	for name, ctx := range ctxs {
		for _, workers := range []int{1, 4} {
			err := ForEachCtx(ctx, 16, workers, func(i int) {
				if i == 5 {
					panic("item 5")
				}
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%s/workers=%d: want *PanicError, got %v", name, workers, err)
			}
		}
	}
}

// TestRunCtxPanicKeepsDraining: a panicking thunk must not stop the rest.
func TestRunCtxPanicKeepsDraining(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		fns := make([]func(), 8)
		for i := range fns {
			i := i
			fns[i] = func() {
				if i == 2 {
					panic("thunk 2")
				}
				ran.Add(1)
			}
		}
		err := RunCtx(context.Background(), workers, fns...)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if ran.Load() != 7 {
			t.Errorf("workers=%d: %d thunks ran, want 7", workers, ran.Load())
		}
	}
}

// TestRunPanicRecoverable: the non-ctx Run re-raises on the caller's
// goroutine where a recover works — never from a worker goroutine.
func TestRunPanicRecoverable(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Safe(func() {
			Run(workers, func() {}, func() { panic("pow") }, func() {})
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
	}
}

// TestRunCtxNoPanicStillNil pins the happy path after the rework.
func TestRunCtxNoPanicStillNil(t *testing.T) {
	var n atomic.Int64
	if err := RunCtx(context.Background(), 4, func() { n.Add(1) }, func() { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 {
		t.Fatalf("ran %d, want 2", n.Load())
	}
}
