package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("explicit Workers(3) = %d", got)
	}
	t.Setenv(EnvWorkers, "5")
	if got := Workers(0); got != 5 {
		t.Errorf("env Workers(0) = %d, want 5", got)
	}
	if got := Workers(2); got != 2 {
		t.Errorf("explicit beats env: Workers(2) = %d", got)
	}
	t.Setenv(EnvWorkers, "bogus")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("bad env Workers(0) = %d, want GOMAXPROCS", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative env Workers(0) = %d, want GOMAXPROCS", got)
	}
}

func TestWorkersExplicit(t *testing.T) {
	if got := WorkersExplicit(6); got != 6 {
		t.Errorf("WorkersExplicit(6) = %d", got)
	}
	t.Setenv(EnvWorkers, "4")
	if got := WorkersExplicit(0); got != 4 {
		t.Errorf("env WorkersExplicit(0) = %d, want 4", got)
	}
	t.Setenv(EnvWorkers, "")
	if got := WorkersExplicit(0); got != 1 {
		t.Errorf("default WorkersExplicit(0) = %d, want 1 (no GOMAXPROCS fallback)", got)
	}
}

func TestShardPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers, wantShards int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 4}, {10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {10, 0, 1},
	} {
		if got := NumShards(tc.n, tc.workers); got != tc.wantShards {
			t.Errorf("NumShards(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.wantShards)
		}
		var mu sync.Mutex
		seen := make([]int, tc.n)
		ns := Shard(tc.n, tc.workers, func(s, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if lo > hi || lo < 0 || hi > tc.n {
				t.Errorf("Shard(%d, %d): bad bounds [%d, %d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		if ns != tc.wantShards {
			t.Errorf("Shard(%d, %d) used %d shards, want %d", tc.n, tc.workers, ns, tc.wantShards)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("Shard(%d, %d): item %d covered %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

func TestShardDeterministicBounds(t *testing.T) {
	type span struct{ s, lo, hi int }
	collect := func() []span {
		var mu sync.Mutex
		var out []span
		Shard(17, 4, func(s, lo, hi int) {
			mu.Lock()
			out = append(out, span{s, lo, hi})
			mu.Unlock()
		})
		bySlot := make([]span, len(out))
		for _, sp := range out {
			bySlot[sp.s] = sp
		}
		return bySlot
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard bounds not deterministic: %v vs %v", a[i], b[i])
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	const n = 100
	var hits [n]int32
	ForEach(n, 7, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial ForEach out of order: %v", order)
		}
	}
}

func TestRunBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	var fns []func()
	for i := 0; i < 20; i++ {
		fns = append(fns, func() {
			cur := atomic.AddInt32(&inFlight, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt32(&inFlight, -1)
		})
	}
	Run(workers, fns...)
	if peak > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", peak, workers)
	}
	var ran int32
	Run(1, func() { atomic.AddInt32(&ran, 1) }, func() { atomic.AddInt32(&ran, 1) })
	if ran != 2 {
		t.Errorf("serial Run executed %d of 2 thunks", ran)
	}
	Run(4) // no thunks: must not hang
}
