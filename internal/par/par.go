// Package par is the compute core's shared worker-pool substrate. Every
// hot loop in the pipeline — minibatch training, CNN inference, Word2Vec,
// corpus embedding, the occlusion sweep — fans its work out through the
// helpers here, so one knob governs parallelism everywhere:
//
//   - an explicit Workers field on the relevant config (highest priority),
//   - the CATI_WORKERS environment variable,
//   - runtime.GOMAXPROCS(0) (the default).
//
// All helpers run inline (no goroutines) when the effective worker count
// or the item count is 1, which keeps the serial paths bitwise-identical
// to the historical single-goroutine implementation and free of scheduling
// overhead. Shard boundaries are a pure function of (n, workers), so any
// computation that reduces shard results in shard order is deterministic
// for a fixed worker count.
package par

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Pool telemetry: all writes are atomic no-ops until a debug server (or a
// test) enables the default registry, so the hot shard/thunk paths stay
// free when observability is off.
var (
	mTasksStarted = telemetry.Default().Counter("cati_par_tasks_started_total",
		"Work items (shards and thunks) handed to the worker pool.")
	mTasksDone = telemetry.Default().Counter("cati_par_tasks_completed_total",
		"Work items the pool finished, successful or not.")
	mPanics = telemetry.Default().Counter("cati_par_panics_recovered_total",
		"Panics recovered from pool work and contained as *PanicError.")
	mBusy = telemetry.Default().Gauge("cati_par_workers_busy",
		"Pool goroutines currently executing work.")
	mQueueWait = telemetry.Default().Histogram("cati_par_queue_wait_seconds",
		"Wait for a free pool slot before a thunk starts (RunCtx semaphore).",
		telemetry.QueueBuckets)
)

// PanicError is a panic recovered from a worker goroutine (or an inline
// shard), converted into an error so fan-outs degrade to a failed call
// instead of a crashed process. It carries the panicking goroutine's
// stack, which would otherwise be lost when the panic is re-raised or
// returned on the caller's goroutine.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so callers
// can errors.Is/As through a contained panic (e.g. nn's ShapeError).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Safe runs fn, converting a panic into a *PanicError. An already-wrapped
// *PanicError passes through unwrapped, so nested fan-outs don't stack
// envelopes.
func Safe(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// A pre-wrapped *PanicError was already counted where it was
			// first recovered, so nested fan-outs count each panic once.
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			mPanics.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// SafeErr runs an error-returning fn under Safe: the returned error is
// fn's own error, or a *PanicError when fn panicked.
func SafeErr(fn func() error) error {
	var err error
	if pe := Safe(func() { err = fn() }); pe != nil {
		return pe
	}
	return err
}

// EnvWorkers is the environment variable consulted by Workers when no
// explicit count is configured.
const EnvWorkers = "CATI_WORKERS"

// Workers resolves an effective worker count: explicit when positive, else
// CATI_WORKERS when set to a positive integer, else GOMAXPROCS.
func Workers(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// WorkersExplicit resolves like Workers but without the GOMAXPROCS
// fallback: it returns 1 unless the caller or CATI_WORKERS explicitly
// asked for parallelism. It guards paths where concurrency changes
// numerical results (Word2Vec's Hogwild trainer), so determinism stays the
// default and nondeterminism is an explicit opt-in.
func WorkersExplicit(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// NumShards reports how many shards Shard will use for n items across the
// given worker count: min(workers, n), and at least 1 when n > 0.
func NumShards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		return n
	}
	return workers
}

// shardBounds returns the half-open range [lo, hi) of shard s when n items
// are split into ns balanced contiguous shards.
func shardBounds(n, ns, s int) (lo, hi int) {
	base, rem := n/ns, n%ns
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// Shard splits n items into NumShards(n, workers) balanced contiguous
// shards and runs fn(shard, lo, hi) for each, concurrently when more than
// one shard exists. It blocks until every shard is done and returns the
// shard count. Shard boundaries depend only on (n, workers).
//
// A panic in any shard is contained: the pool keeps draining (every other
// shard runs to completion) and the first panicking shard's *PanicError is
// re-raised on the caller's goroutine, where it can be recovered — the
// process is never killed from a worker goroutine.
func Shard(n, workers int, fn func(shard, lo, hi int)) int {
	ns, err := ShardErr(n, workers, fn)
	if err != nil {
		panic(err)
	}
	return ns
}

// ShardErr is Shard with recover-to-error semantics: instead of re-raising
// a contained worker panic it returns the first one (in shard order) as a
// *PanicError. All shards always run to completion first.
func ShardErr(n, workers int, fn func(shard, lo, hi int)) (int, error) {
	ns := NumShards(n, workers)
	if ns == 0 {
		return 0, nil
	}
	if ns == 1 {
		mTasksStarted.Inc()
		err := Safe(func() { fn(0, 0, n) })
		mTasksDone.Inc()
		return 1, err
	}
	errs := make([]error, ns)
	var wg sync.WaitGroup
	wg.Add(ns)
	for s := 0; s < ns; s++ {
		lo, hi := shardBounds(n, ns, s)
		go func(s, lo, hi int) {
			defer wg.Done()
			mTasksStarted.Inc()
			mBusy.Inc()
			errs[s] = Safe(func() { fn(s, lo, hi) })
			mBusy.Dec()
			mTasksDone.Inc()
		}(s, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ns, err
		}
	}
	return ns, nil
}

// ForEach runs fn(i) for every i in [0, n), sharded across the pool. With
// one worker (or one item) it degenerates to a plain ascending loop. Like
// Shard, a worker panic drains the pool and re-raises as a *PanicError on
// the caller's goroutine.
func ForEach(n, workers int, fn func(i int)) {
	Shard(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachCtx is ForEach with cooperative cancellation and recover-to-error
// semantics: each shard checks ctx between items, so once ctx is cancelled
// no further items start and the call returns ctx.Err() after in-flight
// items finish; a panic in any item is contained and returned as a
// *PanicError after the pool drains. A context that can never be cancelled
// (Done() == nil, e.g. context.Background()) takes the plain ForEach path
// with zero per-item overhead, which keeps the non-ctx wrapper APIs
// exactly as fast as before.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx.Done() == nil {
		_, err := ShardErr(n, workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		})
		return err
	}
	var stop atomic.Bool
	done := ctx.Done()
	_, err := ShardErr(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if stop.Load() {
				return
			}
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
			fn(i)
		}
	})
	if err != nil {
		return err
	}
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}

// RunCtx is Run with cooperative cancellation and recover-to-error
// semantics: once ctx is cancelled no further thunks are scheduled and the
// call returns ctx.Err() after in-flight thunks finish. A panicking thunk
// is contained as a *PanicError; the remaining thunks still run (the pool
// keeps draining) and the first error in thunk order is returned. Thunks
// that never ran are simply skipped — callers that need to distinguish
// "ran" from "skipped" should record completion in the thunk itself. An
// uncancellable context skips the per-thunk ctx checks.
func RunCtx(ctx context.Context, workers int, fns ...func()) error {
	if len(fns) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	done := ctx.Done()
	errs := make([]error, len(fns))
	firstErr := func() error {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if workers == 1 || len(fns) == 1 {
		for i, fn := range fns {
			if done != nil {
				select {
				case <-done:
					if err := firstErr(); err != nil {
						return err
					}
					return ctx.Err()
				default:
				}
			}
			mTasksStarted.Inc()
			errs[i] = Safe(fn)
			mTasksDone.Inc()
		}
		return firstErr()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var cancelled bool
loop:
	for i, fn := range fns {
		// Time the wait for a pool slot only when someone is listening —
		// the histogram, or an active trace span on ctx — so the clock
		// reads stay off the fully-dark fast path.
		span := trace.SpanFromContext(ctx)
		var waitStart time.Time
		if mQueueWait.Enabled() || span != nil {
			waitStart = time.Now()
		}
		if done != nil {
			select {
			case <-done:
				cancelled = true
				break loop
			case sem <- struct{}{}:
			}
		} else {
			sem <- struct{}{}
		}
		if !waitStart.IsZero() {
			wait := time.Since(waitStart)
			if mQueueWait.Enabled() {
				mQueueWait.Observe(wait.Seconds())
			}
			// Only waits that actually blocked become span events: an
			// uncontended semaphore send is nanoseconds, and stamping an
			// event per thunk would drown the trace in noise.
			if wait >= time.Millisecond {
				span.Event("queue-wait", trace.Duration("wait", wait), trace.Int("thunk", i))
			}
		}
		wg.Add(1)
		go func(i int, fn func()) {
			defer func() { <-sem; wg.Done() }()
			mTasksStarted.Inc()
			mBusy.Inc()
			errs[i] = Safe(fn)
			mBusy.Dec()
			mTasksDone.Inc()
		}(i, fn)
	}
	wg.Wait()
	if err := firstErr(); err != nil {
		return err
	}
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// Run executes the thunks with at most workers in flight and blocks until
// all complete. With one worker it runs them inline in order. Like Shard,
// a panicking thunk drains the pool and re-raises as a *PanicError on the
// caller's goroutine.
func Run(workers int, fns ...func()) {
	if err := RunCtx(context.Background(), workers, fns...); err != nil {
		panic(err)
	}
}
