// Package par is the compute core's shared worker-pool substrate. Every
// hot loop in the pipeline — minibatch training, CNN inference, Word2Vec,
// corpus embedding, the occlusion sweep — fans its work out through the
// helpers here, so one knob governs parallelism everywhere:
//
//   - an explicit Workers field on the relevant config (highest priority),
//   - the CATI_WORKERS environment variable,
//   - runtime.GOMAXPROCS(0) (the default).
//
// All helpers run inline (no goroutines) when the effective worker count
// or the item count is 1, which keeps the serial paths bitwise-identical
// to the historical single-goroutine implementation and free of scheduling
// overhead. Shard boundaries are a pure function of (n, workers), so any
// computation that reduces shard results in shard order is deterministic
// for a fixed worker count.
package par

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted by Workers when no
// explicit count is configured.
const EnvWorkers = "CATI_WORKERS"

// Workers resolves an effective worker count: explicit when positive, else
// CATI_WORKERS when set to a positive integer, else GOMAXPROCS.
func Workers(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// WorkersExplicit resolves like Workers but without the GOMAXPROCS
// fallback: it returns 1 unless the caller or CATI_WORKERS explicitly
// asked for parallelism. It guards paths where concurrency changes
// numerical results (Word2Vec's Hogwild trainer), so determinism stays the
// default and nondeterminism is an explicit opt-in.
func WorkersExplicit(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// NumShards reports how many shards Shard will use for n items across the
// given worker count: min(workers, n), and at least 1 when n > 0.
func NumShards(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		return n
	}
	return workers
}

// shardBounds returns the half-open range [lo, hi) of shard s when n items
// are split into ns balanced contiguous shards.
func shardBounds(n, ns, s int) (lo, hi int) {
	base, rem := n/ns, n%ns
	lo = s*base + min(s, rem)
	hi = lo + base
	if s < rem {
		hi++
	}
	return lo, hi
}

// Shard splits n items into NumShards(n, workers) balanced contiguous
// shards and runs fn(shard, lo, hi) for each, concurrently when more than
// one shard exists. It blocks until every shard is done and returns the
// shard count. Shard boundaries depend only on (n, workers).
func Shard(n, workers int, fn func(shard, lo, hi int)) int {
	ns := NumShards(n, workers)
	if ns == 0 {
		return 0
	}
	if ns == 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(ns)
	for s := 0; s < ns; s++ {
		lo, hi := shardBounds(n, ns, s)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	return ns
}

// ForEach runs fn(i) for every i in [0, n), sharded across the pool. With
// one worker (or one item) it degenerates to a plain ascending loop.
func ForEach(n, workers int, fn func(i int)) {
	Shard(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachCtx is ForEach with cooperative cancellation: each shard checks
// ctx between items, so once ctx is cancelled no further items start and
// the call returns ctx.Err() after in-flight items finish. A context that
// can never be cancelled (Done() == nil, e.g. context.Background()) takes
// the plain ForEach path with zero per-item overhead, which keeps the
// non-ctx wrapper APIs exactly as fast as before.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx.Done() == nil {
		ForEach(n, workers, fn)
		return nil
	}
	var stop atomic.Bool
	done := ctx.Done()
	Shard(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if stop.Load() {
				return
			}
			select {
			case <-done:
				stop.Store(true)
				return
			default:
			}
			fn(i)
		}
	})
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}

// RunCtx is Run with cooperative cancellation: once ctx is cancelled no
// further thunks are scheduled and the call returns ctx.Err() after
// in-flight thunks finish. Thunks that never ran are simply skipped —
// callers that need to distinguish "ran" from "skipped" should record
// completion in the thunk itself. An uncancellable context takes the
// plain Run path.
func RunCtx(ctx context.Context, workers int, fns ...func()) error {
	if ctx.Done() == nil {
		Run(workers, fns...)
		return nil
	}
	if len(fns) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	done := ctx.Done()
	if workers == 1 || len(fns) == 1 {
		for _, fn := range fns {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn()
		}
		return nil
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var cancelled bool
loop:
	for _, fn := range fns {
		select {
		case <-done:
			cancelled = true
			break loop
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(fn func()) {
			defer func() { <-sem; wg.Done() }()
			fn()
		}(fn)
	}
	wg.Wait()
	if cancelled {
		return ctx.Err()
	}
	return nil
}

// Run executes the thunks with at most workers in flight and blocks until
// all complete. With one worker it runs them inline in order.
func Run(workers int, fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		sem <- struct{}{}
		go func(fn func()) {
			defer func() { <-sem; wg.Done() }()
			fn()
		}(fn)
	}
	wg.Wait()
}
