package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// noGoroutineLeak fails the test if goroutines outlive it (bounded wait
// for the pool's workers to drain).
func noGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

func TestForEachCtxBackgroundRunsAll(t *testing.T) {
	noGoroutineLeak(t)
	var n atomic.Int32
	if err := ForEachCtx(context.Background(), 100, 4, func(i int) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 items", n.Load())
	}
}

func TestForEachCtxCancelStopsScheduling(t *testing.T) {
	noGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int32
	err := ForEachCtx(ctx, 10_000, 4, func(i int) {
		if n.Add(1) == 8 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Each of the ≤4 shards may have had one item in flight when cancel
	// landed; everything else must have been skipped.
	if got := n.Load(); got > 16 {
		t.Fatalf("ran %d items after cancellation", got)
	}
}

func TestForEachCtxSingleWorkerHonorsCtx(t *testing.T) {
	noGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n int // single worker: no synchronization needed
	err := ForEachCtx(ctx, 1000, 1, func(i int) {
		n++
		if n == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 3 {
		t.Fatalf("serial path ran %d items past cancellation", n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForEachCtx(ctx, 10, 2, func(i int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran {
		t.Fatal("item ran under a cancelled context")
	}
}

func TestRunCtxBackgroundRunsAll(t *testing.T) {
	noGoroutineLeak(t)
	var n atomic.Int32
	fns := make([]func(), 9)
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	if err := RunCtx(context.Background(), 3, fns...); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 9 {
		t.Fatalf("ran %d of 9 thunks", n.Load())
	}
}

func TestRunCtxCancelStopsScheduling(t *testing.T) {
	noGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int32
	fns := make([]func(), 64)
	for i := range fns {
		fns[i] = func() {
			if n.Add(1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
		}
	}
	err := RunCtx(ctx, 2, fns...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Two in flight when cancel landed, plus at most a couple already
	// admitted through the semaphore race.
	if got := n.Load(); got > 8 {
		t.Fatalf("scheduled %d thunks after cancellation", got)
	}
}

func TestRunCtxSerialHonorsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	fns := []func(){
		func() { n++; cancel() },
		func() { n++ },
		func() { n++ },
	}
	if err := RunCtx(ctx, 1, fns...); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 1 {
		t.Fatalf("serial path ran %d thunks past cancellation", n)
	}
}

func TestRunCtxEmpty(t *testing.T) {
	if err := RunCtx(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
}
