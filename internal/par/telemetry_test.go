package par

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// withTelemetry enables the default registry for one test and restores the
// disabled state afterwards, so the package's other tests keep exercising
// the no-op fast path.
func withTelemetry(t *testing.T) {
	t.Helper()
	telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(false) })
}

func TestTelemetryBusyGaugeRisesAndFalls(t *testing.T) {
	withTelemetry(t)
	baseBusy := mBusy.Value()
	baseStarted := mTasksStarted.Value()
	baseDone := mTasksDone.Value()

	const n = 4
	var entered sync.WaitGroup
	entered.Add(n)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Shard(n, n, func(_, _, _ int) {
			entered.Done()
			<-release
		})
	}()

	// All n shards are in flight once every one has entered fn.
	entered.Wait()
	if got := mBusy.Value() - baseBusy; got != n {
		t.Errorf("busy gauge while pool saturated = %d, want %d", got, n)
	}
	close(release)
	<-done
	if got := mBusy.Value() - baseBusy; got != 0 {
		t.Errorf("busy gauge after drain = %d, want 0", got)
	}
	if got := mTasksStarted.Value() - baseStarted; got != n {
		t.Errorf("tasks started = %d, want %d", got, n)
	}
	if got := mTasksDone.Value() - baseDone; got != n {
		t.Errorf("tasks completed = %d, want %d", got, n)
	}
}

func TestTelemetryPanicCountedOnce(t *testing.T) {
	withTelemetry(t)
	base := mPanics.Value()
	if _, err := ShardErr(4, 4, func(s, _, _ int) {
		if s == 2 {
			panic("boom")
		}
	}); err == nil {
		t.Fatal("ShardErr swallowed the panic")
	}
	if got := mPanics.Value() - base; got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
}

func TestTelemetryNestedPanicCountedOnce(t *testing.T) {
	withTelemetry(t)
	base := mPanics.Value()
	// The inner Shard contains the panic and re-raises it as *PanicError;
	// the outer Safe must pass it through without counting it again.
	err := Safe(func() {
		Shard(2, 2, func(s, _, _ int) {
			if s == 1 {
				panic("inner boom")
			}
		})
	})
	if err == nil {
		t.Fatal("nested panic was not contained")
	}
	if got := mPanics.Value() - base; got != 1 {
		t.Fatalf("panics recovered across nested fan-out = %d, want 1", got)
	}
}

func TestTelemetryQueueWaitObserved(t *testing.T) {
	withTelemetry(t)
	base := mQueueWait.Count()
	const thunks = 4
	fns := make([]func(), thunks)
	for i := range fns {
		fns[i] = func() { time.Sleep(time.Millisecond) }
	}
	if err := RunCtx(context.Background(), 2, fns...); err != nil {
		t.Fatal(err)
	}
	if got := mQueueWait.Count() - base; got != thunks {
		t.Fatalf("queue waits observed = %d, want %d", got, thunks)
	}
}

func TestTelemetryDisabledRecordsNothing(t *testing.T) {
	if telemetry.On() {
		t.Skip("registry enabled by environment")
	}
	baseStarted := mTasksStarted.Value()
	basePanics := mPanics.Value()
	Shard(8, 4, func(_, _, _ int) {})
	if err := Safe(func() { panic("quiet") }); err == nil {
		t.Fatal("panic not contained")
	}
	if mTasksStarted.Value() != baseStarted || mPanics.Value() != basePanics {
		t.Fatal("disabled registry recorded pool activity")
	}
}
