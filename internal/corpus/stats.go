package corpus

import (
	"sort"
	"strings"

	"repro/internal/ctypes"
	"repro/internal/vuc"
)

// Stats are the Table I quantities: corpus size, orphan variables
// (variables with only one or two VUCs) and uncertain samples (orphans
// whose generalized target instructions collide with a different-typed
// variable elsewhere in the corpus).
type Stats struct {
	Variables  int
	VUCs       int
	VarsWith1  int
	VarsWith2  int
	Uncertain1 int
	Uncertain2 int
}

// varIdent is a variable's global identity within a corpus.
type varIdent struct {
	bin int
	key vuc.VarKey
}

// Stats computes the Table I statistics.
func (c *Corpus) Stats() Stats {
	type varInfo struct {
		class   ctypes.Class
		centers []string
	}
	vars := make(map[varIdent]*varInfo)
	var st Stats
	for bi, b := range c.Binaries {
		for si := range b.Samples {
			s := &b.Samples[si]
			st.VUCs++
			id := varIdent{bin: bi, key: s.Var}
			vi := vars[id]
			if vi == nil {
				vi = &varInfo{class: s.Class}
				vars[id] = vi
			}
			tok := b.Toks[s.Center]
			vi.centers = append(vi.centers, tok[0]+"|"+tok[1]+"|"+tok[2])
		}
	}
	st.Variables = len(vars)

	// Signature of a variable: its sorted multiset of generalized target
	// instructions. Two variables with equal signatures but different
	// classes are mutually uncertain.
	sigClasses := make(map[string]map[ctypes.Class]bool)
	sigOf := func(vi *varInfo) string {
		cs := append([]string(nil), vi.centers...)
		sort.Strings(cs)
		return strings.Join(cs, ";")
	}
	for _, vi := range vars {
		sig := sigOf(vi)
		if sigClasses[sig] == nil {
			sigClasses[sig] = make(map[ctypes.Class]bool)
		}
		sigClasses[sig][vi.class] = true
	}
	for _, vi := range vars {
		n := len(vi.centers)
		if n > 2 {
			continue
		}
		uncertain := len(sigClasses[sigOf(vi)]) > 1
		if n == 1 {
			st.VarsWith1++
			if uncertain {
				st.Uncertain1++
			}
		} else {
			st.VarsWith2++
			if uncertain {
				st.Uncertain2++
			}
		}
	}
	return st
}

// ClusterStat describes the same-type clustering of one class (paper
// Table V columns cnt-same, cnt-all, c-rate).
type ClusterStat struct {
	CntSame float64 // mean same-class variable instructions per VUC window
	CntAll  float64 // mean variable instructions per VUC window
	Rate    float64 // CntSame / CntAll
	Support int     // number of VUCs
}

// ClusteringByClass aggregates per-class clustering statistics.
func (c *Corpus) ClusteringByClass() map[ctypes.Class]ClusterStat {
	sums := make(map[ctypes.Class]*ClusterStat)
	for _, b := range c.Binaries {
		for si := range b.Samples {
			s := &b.Samples[si]
			cs := sums[s.Class]
			if cs == nil {
				cs = &ClusterStat{}
				sums[s.Class] = cs
			}
			cs.CntSame += float64(s.CntSame)
			cs.CntAll += float64(s.CntAll)
			cs.Support++
		}
	}
	out := make(map[ctypes.Class]ClusterStat, len(sums))
	for cl, cs := range sums {
		r := *cs
		if r.Support > 0 {
			r.CntSame /= float64(r.Support)
			r.CntAll /= float64(r.Support)
		}
		if r.CntAll > 0 {
			r.Rate = r.CntSame / r.CntAll
		}
		out[cl] = r
	}
	return out
}

// SameTypeShare is the corpus-wide fraction of context variable
// instructions that share the target's type — the paper's §II-B survey
// reports roughly 53%.
func (c *Corpus) SameTypeShare() float64 {
	var same, all float64
	for _, b := range c.Binaries {
		for si := range b.Samples {
			same += float64(b.Samples[si].CntSame)
			all += float64(b.Samples[si].CntAll)
		}
	}
	if all == 0 {
		return 0
	}
	return same / all
}

// ClassCounts tallies samples per class.
func (c *Corpus) ClassCounts() map[ctypes.Class]int {
	out := make(map[ctypes.Class]int)
	for _, b := range c.Binaries {
		for si := range b.Samples {
			out[b.Samples[si].Class]++
		}
	}
	return out
}

// VarCount counts distinct variables.
func (c *Corpus) VarCount() int {
	vars := make(map[varIdent]bool)
	for bi, b := range c.Binaries {
		for si := range b.Samples {
			vars[varIdent{bin: bi, key: b.Samples[si].Var}] = true
		}
	}
	return len(vars)
}
