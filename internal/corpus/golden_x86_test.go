package corpus

import (
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/elfx"
	"repro/internal/synth"
	"repro/internal/vareco"
	"repro/internal/vuc"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenX86Pipeline locks the x86-64 front half of the pipeline —
// decode, function/variable recovery (with dataflow and register
// variables), operand generalization, and VUC extraction — against a
// committed transcript. The transcript was generated before the ISA
// interface refactor; the refactored code must reproduce it byte for
// byte, proving the x86 path is behaviorally unchanged.
func TestGoldenX86Pipeline(t *testing.T) {
	type cfg struct {
		seed    int64
		dialect compile.Dialect
		opt     int
	}
	cases := []cfg{
		{101, compile.GCC, 0},
		{102, compile.GCC, 2},
		{103, compile.Clang, 1},
		{104, compile.Clang, 3},
		{105, compile.GCC, 3},
		{106, compile.Clang, 2},
	}
	prof := synth.DefaultProfile("default")

	var sb strings.Builder
	for _, tc := range cases {
		fmt.Fprintf(&sb, "== seed=%d dialect=%s opt=%d\n", tc.seed, tc.dialect, tc.opt)
		prog := synth.Generate(prof, tc.seed)
		res, err := compile.Compile(prog, compile.Options{
			Dialect: tc.dialect, Opt: tc.opt, Seed: tc.seed,
		})
		if err != nil {
			t.Fatalf("compile seed=%d: %v", tc.seed, err)
		}
		stripped := elfx.Strip(res.Binary)
		rec, err := vareco.RecoverOpts(stripped, vareco.Options{
			Dataflow: true, RegisterVars: true,
		})
		if err != nil {
			t.Fatalf("recover seed=%d: %v", tc.seed, err)
		}
		fmt.Fprintf(&sb, "text %x..%x data %x..%x insts=%d\n",
			rec.TextLow, rec.TextHigh, rec.DataLow, rec.DataHigh, len(rec.Insts))
		for fi := range rec.Funcs {
			f := &rec.Funcs[fi]
			fmt.Fprintf(&sb, "func %x..%x insts %d..%d frame=%s\n",
				f.Low, f.High, f.InstLo, f.InstHi, frameName(rec, f))
			for _, v := range f.Vars {
				fmt.Fprintf(&sb, "  var slot=%d size=%d insts=%s\n",
					v.Slot, v.Size, intList(v.Insts))
			}
			for _, rv := range f.RegVars {
				fmt.Fprintf(&sb, "  reg %s insts=%s\n", regVarName(rec, &rv), intList(rv.Insts))
			}
		}
		for gi := range rec.Globals {
			g := &rec.Globals[gi]
			fmt.Fprintf(&sb, "global %x size=%d insts=%s\n", g.Addr, g.Size, intList(g.Insts))
		}
		for i := range rec.Insts {
			gen := tokenizeAt(rec, i, false)
			raw := tokenizeAt(rec, i, true)
			fmt.Fprintf(&sb, "tok %d %s|%s|%s ~ %s|%s|%s\n",
				i, gen[0], gen[1], gen[2], raw[0], raw[1], raw[2])
		}
		vucs := vuc.Extract(rec, vuc.Config{Window: 5})
		fmt.Fprintf(&sb, "vucs %d\n", len(vucs))
		for i := range vucs {
			u := &vucs[i]
			fmt.Fprintf(&sb, "vuc func=%x slot=%d global=%v center=%d crc=%08x\n",
				u.Var.FuncLow, u.Var.Slot, u.Var.Global, u.CenterIdx,
				crc32.ChecksumIEEE([]byte(u.Key())))
		}
	}
	got := sb.String()

	const path = "testdata/golden_x86.txt"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("golden mismatch: got %d lines, want %d", len(gl), len(wl))
}

func intList(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// frameName, regVarName and tokenizeAt isolate the parts of the golden
// dump whose spelling depends on the recovery API of the day; the golden
// file itself must never change.
func frameName(rec *vareco.Recovery, f *vareco.Func) string {
	return rec.Arch.RegName(f.FrameReg)
}

func regVarName(rec *vareco.Recovery, rv *vareco.RegVar) string {
	return rec.Arch.RegName(rv.Reg)
}

func tokenizeAt(rec *vareco.Recovery, i int, noGen bool) vuc.InstTok {
	return vuc.Tokenize(rec.Insts[i], rec, noGen)
}
