package corpus

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/ctypes"
	"repro/internal/synth"
	"repro/internal/vuc"
)

func buildSmall(t *testing.T, name string, n int, seed int64) *Corpus {
	t.Helper()
	c, err := Build(BuildConfig{
		Name:     name,
		Binaries: n,
		Profile:  synth.DefaultProfile(name),
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildBasics(t *testing.T) {
	c := buildSmall(t, "basic", 3, 1)
	if len(c.Binaries) != 3 {
		t.Fatalf("binaries = %d", len(c.Binaries))
	}
	if c.NumSamples() == 0 {
		t.Fatal("no samples")
	}
	if c.Window != vuc.DefaultWindow {
		t.Fatalf("window = %d", c.Window)
	}
	for _, b := range c.Binaries {
		if len(b.Toks) == 0 || len(b.Funcs) == 0 {
			t.Fatal("empty binary data")
		}
		for si := range b.Samples {
			s := &b.Samples[si]
			if s.Class < ctypes.ClassPtrVoid || s.Class > ctypes.ClassEnum {
				t.Fatalf("bad class %d", s.Class)
			}
			f := b.Funcs[s.Func]
			if s.Center < f.Lo || s.Center >= f.Hi {
				t.Fatal("center outside function")
			}
			if s.CntSame > s.CntAll {
				t.Fatal("CntSame > CntAll")
			}
		}
	}
}

func TestWindowMaterialization(t *testing.T) {
	c := buildSmall(t, "win", 1, 2)
	refs := c.All()
	if len(refs) != c.NumSamples() {
		t.Fatalf("refs = %d, samples = %d", len(refs), c.NumSamples())
	}
	for _, r := range refs[:min(50, len(refs))] {
		toks := c.Tokens(r)
		if len(toks) != 2*c.Window+1 {
			t.Fatalf("window = %d tokens", len(toks))
		}
		center := toks[c.Window]
		if center[0] == vuc.TokPad {
			t.Fatal("padded center")
		}
	}
}

func TestSentences(t *testing.T) {
	c := buildSmall(t, "sent", 2, 3)
	ss := c.Sentences()
	if len(ss) == 0 {
		t.Fatal("no sentences")
	}
	for _, s := range ss {
		if len(s)%vuc.TokensPerInst != 0 {
			t.Fatal("sentence length not a multiple of tokens-per-inst")
		}
		for _, tok := range s {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
	}
}

func TestStatsShape(t *testing.T) {
	c := buildSmall(t, "stats", 4, 4)
	st := c.Stats()
	if st.Variables == 0 || st.VUCs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VUCs < st.Variables {
		t.Error("fewer VUCs than variables")
	}
	if st.VarsWith1+st.VarsWith2 > st.Variables {
		t.Error("orphan counts exceed variables")
	}
	if st.Uncertain1 > st.VarsWith1 || st.Uncertain2 > st.VarsWith2 {
		t.Error("uncertain counts exceed orphan counts")
	}
	// The paper's core observation: orphans are a sizable share and most
	// orphans are uncertain. Loose sanity floors for a small corpus:
	orphanShare := float64(st.VarsWith1+st.VarsWith2) / float64(st.Variables)
	if orphanShare < 0.05 {
		t.Errorf("orphan share %.3f suspiciously low", orphanShare)
	}
	if st.Uncertain1+st.Uncertain2 == 0 {
		t.Error("no uncertain samples at all")
	}
	if st.Variables != c.VarCount() {
		t.Errorf("Stats.Variables %d != VarCount %d", st.Variables, c.VarCount())
	}
}

func TestClusteringStats(t *testing.T) {
	c := buildSmall(t, "clust", 4, 5)
	share := c.SameTypeShare()
	if share <= 0 || share > 1 {
		t.Fatalf("same-type share = %v", share)
	}
	byClass := c.ClusteringByClass()
	if len(byClass) < 5 {
		t.Fatalf("only %d classes have clustering stats", len(byClass))
	}
	for cl, cs := range byClass {
		if cs.CntSame > cs.CntAll+1e-9 {
			t.Errorf("%s: CntSame %.2f > CntAll %.2f", cl, cs.CntSame, cs.CntAll)
		}
		if cs.Rate < 0 || cs.Rate > 1 {
			t.Errorf("%s: rate %v", cl, cs.Rate)
		}
	}
	counts := c.ClassCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != c.NumSamples() {
		t.Errorf("class counts sum %d != samples %d", total, c.NumSamples())
	}
}

func TestDialectAndOptConfig(t *testing.T) {
	cl, err := Build(BuildConfig{
		Name:     "clang",
		Binaries: 2,
		Profile:  synth.DefaultProfile("clang"),
		Dialect:  compile.Clang,
		Opts:     []int{0},
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumSamples() == 0 {
		t.Fatal("clang corpus empty")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a := buildSmall(t, "det", 2, 7)
	b := buildSmall(t, "det", 2, 7)
	if a.NumSamples() != b.NumSamples() {
		t.Fatalf("sample counts differ: %d vs %d", a.NumSamples(), b.NumSamples())
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGlobalSamplesLabeled(t *testing.T) {
	c := buildSmall(t, "glob", 4, 9)
	globals := 0
	for _, b := range c.Binaries {
		for si := range b.Samples {
			if b.Samples[si].Var.Global {
				globals++
			}
		}
	}
	if globals == 0 {
		t.Error("no labeled global-variable samples in corpus")
	}
}
