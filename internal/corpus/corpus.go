// Package corpus assembles labeled datasets: it generates synthetic
// programs, compiles them with the simulated toolchain, strips the
// binaries, recovers variables from the stripped code, and labels each
// extracted VUC with ground truth from the (withheld) DWARF-lite debug
// info — exactly the paper's data pipeline (§IV-A, §VI), with our
// synthetic substitutes for GCC and IDA Pro.
//
// Token streams are stored once per binary; VUC windows are materialized
// on demand, which keeps multi-hundred-thousand-VUC corpora in memory.
package corpus

import (
	"context"
	"fmt"

	"repro/internal/compile"
	"repro/internal/ctypes"
	"repro/internal/dwarflite"
	"repro/internal/elfx"
	"repro/internal/isa"
	"repro/internal/synth"
	"repro/internal/vareco"
	"repro/internal/vuc"
)

// Sample is one labeled VUC: a target instruction with its variable
// identity, ground-truth class, and context-clustering statistics.
type Sample struct {
	// Func indexes BinaryData.Funcs; Center indexes BinaryData.Toks.
	Func   int
	Center int
	// Var identifies the owning variable within the binary.
	Var vuc.VarKey
	// Class is the ground-truth CATI class.
	Class ctypes.Class
	// CntAll counts context instructions (excluding the center) that are
	// variable target instructions; CntSame counts those whose variable
	// shares this sample's class (§II-B clustering statistics).
	CntAll, CntSame uint16
}

// FuncRange is a function's instruction index range.
type FuncRange struct {
	Lo, Hi int
}

// BinaryData is one binary's tokenized instruction stream plus its labeled
// samples.
type BinaryData struct {
	Name    string
	Toks    []vuc.InstTok
	Funcs   []FuncRange
	Samples []Sample
}

// Window materializes the padded 2w+1 token window of a sample.
func (b *BinaryData) Window(s *Sample, w int) []vuc.InstTok {
	f := b.Funcs[s.Func]
	out := make([]vuc.InstTok, 2*w+1)
	for j := -w; j <= w; j++ {
		pos := s.Center + j
		if pos < f.Lo || pos >= f.Hi {
			out[j+w] = vuc.PadInst()
		} else {
			out[j+w] = b.Toks[pos]
		}
	}
	return out
}

// Corpus is a set of labeled binaries.
type Corpus struct {
	Name     string
	Binaries []*BinaryData
	Window   int
}

// SampleRef addresses one sample in a corpus.
type SampleRef struct {
	Bin, Idx int
}

// All lists every sample reference.
func (c *Corpus) All() []SampleRef {
	var out []SampleRef
	for bi, b := range c.Binaries {
		for si := range b.Samples {
			out = append(out, SampleRef{Bin: bi, Idx: si})
		}
	}
	return out
}

// At resolves a reference.
func (c *Corpus) At(r SampleRef) (*BinaryData, *Sample) {
	b := c.Binaries[r.Bin]
	return b, &b.Samples[r.Idx]
}

// Tokens materializes a sample's window at the corpus window size.
func (c *Corpus) Tokens(r SampleRef) []vuc.InstTok {
	b, s := c.At(r)
	return b.Window(s, c.Window)
}

// NumSamples counts all labeled VUCs.
func (c *Corpus) NumSamples() int {
	n := 0
	for _, b := range c.Binaries {
		n += len(b.Samples)
	}
	return n
}

// Sentences returns one token sequence per function, for embedding
// training.
func (c *Corpus) Sentences() [][]string {
	var out [][]string
	for _, b := range c.Binaries {
		for _, f := range b.Funcs {
			s := make([]string, 0, (f.Hi-f.Lo)*vuc.TokensPerInst)
			for i := f.Lo; i < f.Hi; i++ {
				s = append(s, b.Toks[i][0], b.Toks[i][1], b.Toks[i][2])
			}
			if len(s) > 0 {
				out = append(out, s)
			}
		}
	}
	return out
}

// BuildConfig controls corpus generation.
type BuildConfig struct {
	// Name labels the corpus (application name for test corpora).
	Name string
	// Binaries is the number of program units to generate.
	Binaries int
	// Profile drives the synthetic generator.
	Profile synth.Profile
	// Dialect selects the simulated compiler (default GCC).
	Dialect compile.Dialect
	// Opts are the optimization levels rotated across binaries
	// (default O0..O3, mirroring the paper's per-project -O0..-O3 builds).
	Opts []int
	// Window is the VUC window w (default vuc.DefaultWindow).
	Window int
	// Seed namespaces the whole corpus.
	Seed int64
	// NoGeneralize disables operand generalization (ablation).
	NoGeneralize bool
	// NoDataflow disables the def-use augmentation of variable
	// instruction sets (ablation; the paper's IDA extraction traces data
	// flow, so it is on by default).
	NoDataflow bool
	// Arch selects the target instruction set: "x86_64" (default) or
	// "rv64".
	Arch string
}

func (cfg BuildConfig) withDefaults() BuildConfig {
	if cfg.Dialect == 0 {
		cfg.Dialect = compile.GCC
	}
	if len(cfg.Opts) == 0 {
		cfg.Opts = []int{0, 1, 2, 3}
	}
	if cfg.Window == 0 {
		cfg.Window = vuc.DefaultWindow
	}
	if cfg.Binaries == 0 {
		cfg.Binaries = 1
	}
	if cfg.Arch == "" {
		cfg.Arch = "x86_64"
	}
	return cfg
}

// Build generates and labels a corpus.
func Build(cfg BuildConfig) (*Corpus, error) {
	return BuildCtx(context.Background(), cfg)
}

// BuildCtx is Build with cooperative cancellation: generation checks ctx
// before each program unit (generate → compile → strip → recover → label
// is one unit of work) and returns ctx.Err() once cancelled.
func BuildCtx(ctx context.Context, cfg BuildConfig) (*Corpus, error) {
	cfg = cfg.withDefaults()
	c := &Corpus{Name: cfg.Name, Window: cfg.Window}
	intern := make(map[vuc.InstTok]vuc.InstTok)
	for i := 0; i < cfg.Binaries; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seed := cfg.Seed*1_000_003 + int64(i)
		prog := synth.Generate(cfg.Profile, seed)
		opt := cfg.Opts[i%len(cfg.Opts)]
		res, err := compile.Compile(prog, compile.Options{
			Dialect: cfg.Dialect, Opt: opt, Seed: seed, Arch: cfg.Arch,
		})
		if err != nil {
			return nil, fmt.Errorf("corpus: compile unit %d: %w", i, err)
		}
		bd, err := labelBinary(fmt.Sprintf("%s-%d", cfg.Name, i), res, cfg, intern)
		if err != nil {
			return nil, fmt.Errorf("corpus: label unit %d: %w", i, err)
		}
		c.Binaries = append(c.Binaries, bd)
	}
	return c, nil
}

// labelBinary strips the compiled binary, recovers variables from the
// stripped image, and labels recovered slots against the withheld debug
// info.
func labelBinary(name string, res *compile.Result, cfg BuildConfig, intern map[vuc.InstTok]vuc.InstTok) (*BinaryData, error) {
	stripped := elfx.Strip(res.Binary)
	rec, err := vareco.RecoverOpts(stripped, vareco.Options{Dataflow: !cfg.NoDataflow})
	if err != nil {
		return nil, err
	}

	bd := &BinaryData{Name: name, Toks: make([]vuc.InstTok, len(rec.Insts))}
	for i := range rec.Insts {
		t := vuc.Tokenize(rec.Insts[i], rec, cfg.NoGeneralize)
		if canon, ok := intern[t]; ok {
			t = canon
		} else {
			intern[t] = t
		}
		bd.Toks[i] = t
	}

	// Index debug functions by entry address.
	debugByLow := make(map[uint64]*dwarflite.Func, len(res.Debug.Funcs))
	for fi := range res.Debug.Funcs {
		debugByLow[res.Debug.Funcs[fi].Low] = &res.Debug.Funcs[fi]
	}

	// Pass 1: collect labeled variables (stack and global) and the
	// per-function index of every instruction.
	type varSamples struct {
		fIdx  int
		key   vuc.VarKey
		class ctypes.Class
		insts []int
	}
	var labeled []varSamples
	instClass := make(map[int]ctypes.Class)
	funcOf := make([]int, len(rec.Insts))

	for _, rf := range rec.Funcs {
		fIdx := len(bd.Funcs)
		bd.Funcs = append(bd.Funcs, FuncRange{Lo: rf.InstLo, Hi: rf.InstHi})
		for i := rf.InstLo; i < rf.InstHi; i++ {
			funcOf[i] = fIdx
		}

		df, ok := debugByLow[rf.Low]
		if !ok {
			continue // unrecovered boundary: no labels for this region
		}
		wantFrame := df.FrameReg == dwarflite.FrameRSP
		gotFrame := rf.Frame == isa.FrameSP
		if wantFrame != gotFrame {
			continue // frame mismatch would mislabel every slot
		}
		for _, v := range rf.Vars {
			dv, ok := df.VarAt(v.Slot)
			if !ok {
				continue // spill slots, alignment gaps
			}
			class, err := ctypes.ClassOf(dv.Type)
			if err != nil {
				continue
			}
			labeled = append(labeled, varSamples{
				fIdx:  fIdx,
				key:   vuc.VarKey{FuncLow: rf.Low, Slot: v.Slot},
				class: class,
				insts: v.Insts,
			})
		}
	}

	// Global variables: label against debug global records. Each access's
	// sample belongs to the function containing the instruction.
	for gi := range rec.Globals {
		g := &rec.Globals[gi]
		dg, ok := res.Debug.GlobalAt(g.Addr)
		if !ok {
			continue
		}
		class, err := ctypes.ClassOf(dg.Type)
		if err != nil {
			continue
		}
		labeled = append(labeled, varSamples{
			fIdx:  -1, // resolved per instruction below
			key:   vuc.GlobalKey(g.Addr),
			class: class,
			insts: g.Insts,
		})
	}

	for _, vs := range labeled {
		for _, idx := range vs.insts {
			instClass[idx] = vs.class
		}
	}

	// Pass 2: emit samples with binary-wide clustering counts, windowed
	// within the containing function.
	for _, vs := range labeled {
		for _, center := range vs.insts {
			fIdx := vs.fIdx
			if fIdx < 0 {
				fIdx = funcOf[center]
			}
			s := Sample{
				Func:   fIdx,
				Center: center,
				Var:    vs.key,
				Class:  vs.class,
			}
			lo, hi := bd.Funcs[fIdx].Lo, bd.Funcs[fIdx].Hi
			for j := -cfg.Window; j <= cfg.Window; j++ {
				pos := center + j
				if j == 0 || pos < lo || pos >= hi {
					continue
				}
				if cl, ok := instClass[pos]; ok {
					s.CntAll++
					if cl == vs.class {
						s.CntSame++
					}
				}
			}
			bd.Samples = append(bd.Samples, s)
		}
	}
	return bd, nil
}
