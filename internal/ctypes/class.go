package ctypes

import "fmt"

// Class is one of the 19 CATI variable-type classes (paper §V-A).
type Class int

// The 19 classes. Pointer classes first, then the non-pointer families in
// the stage-tree order: struct, bool, char family, float family, int family
// (which absorbs enum at Stage 3-3; Table V lists enum with a Stage-3
// recall, so the int-family classifier is where enums are discriminated).
const (
	ClassPtrVoid   Class = iota + 1 // void*
	ClassPtrStruct                  // struct*
	ClassPtrArith                   // pointer to arithmetic type
	ClassStruct
	ClassBool
	ClassChar
	ClassUChar
	ClassFloat
	ClassDouble
	ClassLongDouble
	ClassInt
	ClassUInt
	ClassShort
	ClassUShort
	ClassLong
	ClassULong
	ClassLongLong
	ClassULongLong
	ClassEnum

	// NumClasses is the size of the label space.
	NumClasses = int(ClassEnum)
)

// AllClasses lists every class in declaration order. The returned slice is
// freshly allocated; callers may mutate it.
func AllClasses() []Class {
	out := make([]Class, 0, NumClasses)
	for c := ClassPtrVoid; c <= ClassEnum; c++ {
		out = append(out, c)
	}
	return out
}

func (c Class) String() string {
	switch c {
	case ClassPtrVoid:
		return "void*"
	case ClassPtrStruct:
		return "struct*"
	case ClassPtrArith:
		return "arith*"
	case ClassStruct:
		return "struct"
	case ClassBool:
		return "bool"
	case ClassChar:
		return "char"
	case ClassUChar:
		return "unsigned char"
	case ClassFloat:
		return "float"
	case ClassDouble:
		return "double"
	case ClassLongDouble:
		return "long double"
	case ClassInt:
		return "int"
	case ClassUInt:
		return "unsigned int"
	case ClassShort:
		return "short int"
	case ClassUShort:
		return "short unsigned int"
	case ClassLong:
		return "long int"
	case ClassULong:
		return "long unsigned int"
	case ClassLongLong:
		return "long long int"
	case ClassULongLong:
		return "long long unsigned int"
	case ClassEnum:
		return "enum"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// IsPointer reports whether the class is one of the three pointer classes.
func (c Class) IsPointer() bool {
	return c == ClassPtrVoid || c == ClassPtrStruct || c == ClassPtrArith
}

// Family groups classes the way Stage 2-2 sees them.
type Family int

// Stage 2-2 label space (plus FamilyPointer for Stage 1 routing).
const (
	FamilyPointer Family = iota + 1
	FamilyStruct
	FamilyBool
	FamilyChar
	FamilyFloat
	FamilyInt
)

func (f Family) String() string {
	switch f {
	case FamilyPointer:
		return "pointer"
	case FamilyStruct:
		return "struct"
	case FamilyBool:
		return "bool"
	case FamilyChar:
		return "char"
	case FamilyFloat:
		return "float"
	case FamilyInt:
		return "int"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// FamilyOf returns the Stage-2 family of a class.
func (c Class) FamilyOf() Family {
	switch c {
	case ClassPtrVoid, ClassPtrStruct, ClassPtrArith:
		return FamilyPointer
	case ClassStruct:
		return FamilyStruct
	case ClassBool:
		return FamilyBool
	case ClassChar, ClassUChar:
		return FamilyChar
	case ClassFloat, ClassDouble, ClassLongDouble:
		return FamilyFloat
	default:
		return FamilyInt // int family, absorbing enum
	}
}

// Stage identifies one of the six classifiers in the multi-stage tree
// (paper Figure 5).
type Stage int

// The six stages.
const (
	Stage1  Stage = iota + 1 // pointer vs non-pointer
	Stage21                  // pointer kinds: void*, struct*, arith*
	Stage22                  // struct, bool, char, float, int families
	Stage31                  // char vs unsigned char
	Stage32                  // float, double, long double
	Stage33                  // int family incl. enum
)

// AllStages lists the six stages in tree order.
func AllStages() []Stage {
	return []Stage{Stage1, Stage21, Stage22, Stage31, Stage32, Stage33}
}

func (s Stage) String() string {
	switch s {
	case Stage1:
		return "Stage1"
	case Stage21:
		return "Stage2-1"
	case Stage22:
		return "Stage2-2"
	case Stage31:
		return "Stage3-1"
	case Stage32:
		return "Stage3-2"
	case Stage33:
		return "Stage3-3"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// StageClasses returns the ordered leaf label set of a stage. Stage 1 and
// Stage 2-2 discriminate families rather than leaf classes, so they return
// nil here; use StageLabel for their routing and StageArity for sizing
// output layers.
func StageClasses(s Stage) []Class {
	switch s {
	case Stage21:
		return []Class{ClassPtrVoid, ClassPtrStruct, ClassPtrArith}
	case Stage31:
		return []Class{ClassChar, ClassUChar}
	case Stage32:
		return []Class{ClassFloat, ClassDouble, ClassLongDouble}
	case Stage33:
		return []Class{
			ClassInt, ClassUInt, ClassShort, ClassUShort,
			ClassLong, ClassULong, ClassLongLong, ClassULongLong, ClassEnum,
		}
	default:
		return nil
	}
}

// StageArity returns the number of output labels of a stage.
func StageArity(s Stage) int {
	switch s {
	case Stage1:
		return 2
	case Stage21:
		return 3
	case Stage22:
		return 5
	case Stage31:
		return 2
	case Stage32:
		return 3
	case Stage33:
		return 9
	default:
		return 0
	}
}

// StageLabel returns the 0-based label index class c carries at stage s and
// whether c is routed through s at all. Stage 1 labels are pointer=0,
// non-pointer=1. For example ClassDouble carries label 1 at Stage 1, label 3
// (float family) at Stage 2-2, and label 1 at Stage 3-2.
func StageLabel(s Stage, c Class) (int, bool) {
	switch s {
	case Stage1:
		if c.IsPointer() {
			return 0, true
		}
		return 1, true
	case Stage21:
		if !c.IsPointer() {
			return 0, false
		}
		return indexOf(StageClasses(Stage21), c)
	case Stage22:
		switch c.FamilyOf() {
		case FamilyPointer:
			return 0, false
		case FamilyStruct:
			return 0, true
		case FamilyBool:
			return 1, true
		case FamilyChar:
			return 2, true
		case FamilyFloat:
			return 3, true
		case FamilyInt:
			return 4, true
		}
		return 0, false
	case Stage31:
		if c.FamilyOf() != FamilyChar {
			return 0, false
		}
		return indexOf(StageClasses(Stage31), c)
	case Stage32:
		if c.FamilyOf() != FamilyFloat {
			return 0, false
		}
		return indexOf(StageClasses(Stage32), c)
	case Stage33:
		if c.FamilyOf() != FamilyInt {
			return 0, false
		}
		return indexOf(StageClasses(Stage33), c)
	default:
		return 0, false
	}
}

func indexOf(cs []Class, c Class) (int, bool) {
	for i, x := range cs {
		if x == c {
			return i, true
		}
	}
	return 0, false
}

// StagePath returns the root-to-leaf sequence of stages a class traverses.
// Struct and bool terminate at Stage 2-2; pointers at Stage 2-1; char,
// float and int families continue to their Stage-3 classifier.
func StagePath(c Class) []Stage {
	if c.IsPointer() {
		return []Stage{Stage1, Stage21}
	}
	switch c.FamilyOf() {
	case FamilyStruct, FamilyBool:
		return []Stage{Stage1, Stage22}
	case FamilyChar:
		return []Stage{Stage1, Stage22, Stage31}
	case FamilyFloat:
		return []Stage{Stage1, Stage22, Stage32}
	default:
		return []Stage{Stage1, Stage22, Stage33}
	}
}

// LeafStage returns the final stage that decides class c.
func LeafStage(c Class) Stage {
	p := StagePath(c)
	return p[len(p)-1]
}

// ClassFromStagePath reconstructs a Class from a full set of stage
// decisions: the Stage-1 label, Stage-2 label and (when routed) Stage-3
// label. It is the inverse of the StageLabel routing and is what the
// multi-stage classifier uses to assemble its final prediction.
func ClassFromStagePath(stage1Label, stage2Label, stage3Label int) (Class, error) {
	if stage1Label == 0 { // pointer
		cs := StageClasses(Stage21)
		if stage2Label < 0 || stage2Label >= len(cs) {
			return 0, fmt.Errorf("ctypes: stage2-1 label %d out of range", stage2Label)
		}
		return cs[stage2Label], nil
	}
	switch stage2Label {
	case 0:
		return ClassStruct, nil
	case 1:
		return ClassBool, nil
	case 2:
		cs := StageClasses(Stage31)
		if stage3Label < 0 || stage3Label >= len(cs) {
			return 0, fmt.Errorf("ctypes: stage3-1 label %d out of range", stage3Label)
		}
		return cs[stage3Label], nil
	case 3:
		cs := StageClasses(Stage32)
		if stage3Label < 0 || stage3Label >= len(cs) {
			return 0, fmt.Errorf("ctypes: stage3-2 label %d out of range", stage3Label)
		}
		return cs[stage3Label], nil
	case 4:
		cs := StageClasses(Stage33)
		if stage3Label < 0 || stage3Label >= len(cs) {
			return 0, fmt.Errorf("ctypes: stage3-3 label %d out of range", stage3Label)
		}
		return cs[stage3Label], nil
	default:
		return 0, fmt.Errorf("ctypes: stage2-2 label %d out of range", stage2Label)
	}
}
