// Package ctypes models the C type system fragment that CATI reasons about
// and the 19-class label lattice the paper's multi-stage classifier predicts.
//
// The package has two layers:
//
//   - A structural C type model (Type): base types, pointers, structs,
//     arrays, enums and typedef chains, with x86-64 System V sizes and
//     alignments. The synthetic compiler lowers these; the DWARF-lite
//     debug-info encoder records them.
//   - The CATI label space (Class): the 19 classes from the paper
//     (three pointer classes, struct, bool, enum, the char/float/int
//     families) plus the stage-tree routing used by the multi-stage
//     classifier (Stage 1, 2-1, 2-2, 3-1, 3-2, 3-3).
package ctypes

import (
	"errors"
	"fmt"
)

// Kind discriminates the structural variants of Type.
type Kind int

// Structural kinds. Enums start at 1 so the zero value is invalid and
// accidental zero-initialization is caught early.
const (
	KindBase Kind = iota + 1
	KindPointer
	KindStruct
	KindArray
	KindEnum
	KindTypedef
)

func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindPointer:
		return "pointer"
	case KindStruct:
		return "struct"
	case KindArray:
		return "array"
	case KindEnum:
		return "enum"
	case KindTypedef:
		return "typedef"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Base enumerates the C99 base types CATI distinguishes.
type Base int

// C99 base types. The paper covers all base types in the C99 standard and
// adds bool; void appears only behind pointers.
const (
	BaseVoid Base = iota + 1
	BaseBool
	BaseChar
	BaseUChar
	BaseShort
	BaseUShort
	BaseInt
	BaseUInt
	BaseLong
	BaseULong
	BaseLongLong
	BaseULongLong
	BaseFloat
	BaseDouble
	BaseLongDouble
)

func (b Base) String() string {
	switch b {
	case BaseVoid:
		return "void"
	case BaseBool:
		return "bool"
	case BaseChar:
		return "char"
	case BaseUChar:
		return "unsigned char"
	case BaseShort:
		return "short int"
	case BaseUShort:
		return "short unsigned int"
	case BaseInt:
		return "int"
	case BaseUInt:
		return "unsigned int"
	case BaseLong:
		return "long int"
	case BaseULong:
		return "long unsigned int"
	case BaseLongLong:
		return "long long int"
	case BaseULongLong:
		return "long long unsigned int"
	case BaseFloat:
		return "float"
	case BaseDouble:
		return "double"
	case BaseLongDouble:
		return "long double"
	default:
		return fmt.Sprintf("Base(%d)", int(b))
	}
}

// IsSigned reports whether the base type is a signed integer type.
func (b Base) IsSigned() bool {
	switch b {
	case BaseChar, BaseShort, BaseInt, BaseLong, BaseLongLong:
		return true
	default:
		return false
	}
}

// IsInteger reports whether the base type is an integer (including bool and
// the char family, which share integer machine representations).
func (b Base) IsInteger() bool {
	switch b {
	case BaseBool, BaseChar, BaseUChar, BaseShort, BaseUShort,
		BaseInt, BaseUInt, BaseLong, BaseULong, BaseLongLong, BaseULongLong:
		return true
	default:
		return false
	}
}

// IsFloat reports whether the base type is a floating-point type.
func (b Base) IsFloat() bool {
	switch b {
	case BaseFloat, BaseDouble, BaseLongDouble:
		return true
	default:
		return false
	}
}

// Field is a named member of a struct type.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset within the struct, set by layout
}

// Type is a structural C type. Exactly the fields relevant to its Kind are
// populated. Types are immutable after construction; share freely.
type Type struct {
	Kind Kind

	// KindBase
	Base Base

	// KindPointer, KindArray, KindTypedef: the referenced type.
	Elem *Type

	// KindArray
	Count int

	// KindStruct
	Name   string
	Fields []Field

	// KindEnum, KindTypedef
	TagName string

	// Struct layout cache, computed once by StructOf.
	size  int
	align int
}

// Common singleton base types. These are package-level immutable values, not
// mutable state; treat them as constants.
var (
	Void       = &Type{Kind: KindBase, Base: BaseVoid}
	Bool       = &Type{Kind: KindBase, Base: BaseBool}
	Char       = &Type{Kind: KindBase, Base: BaseChar}
	UChar      = &Type{Kind: KindBase, Base: BaseUChar}
	Short      = &Type{Kind: KindBase, Base: BaseShort}
	UShort     = &Type{Kind: KindBase, Base: BaseUShort}
	Int        = &Type{Kind: KindBase, Base: BaseInt}
	UInt       = &Type{Kind: KindBase, Base: BaseUInt}
	Long       = &Type{Kind: KindBase, Base: BaseLong}
	ULong      = &Type{Kind: KindBase, Base: BaseULong}
	LongLong   = &Type{Kind: KindBase, Base: BaseLongLong}
	ULongLong  = &Type{Kind: KindBase, Base: BaseULongLong}
	Float      = &Type{Kind: KindBase, Base: BaseFloat}
	Double     = &Type{Kind: KindBase, Base: BaseDouble}
	LongDouble = &Type{Kind: KindBase, Base: BaseLongDouble}
)

// PointerTo returns the pointer type *elem.
func PointerTo(elem *Type) *Type {
	return &Type{Kind: KindPointer, Elem: elem}
}

// ArrayOf returns the array type elem[count].
func ArrayOf(elem *Type, count int) *Type {
	return &Type{Kind: KindArray, Elem: elem, Count: count}
}

// StructOf lays out a struct with the given name and fields following the
// x86-64 System V rules (each field aligned to its natural alignment, struct
// size rounded up to the max field alignment).
func StructOf(name string, fields ...Field) *Type {
	t := &Type{Kind: KindStruct, Name: name}
	off, maxAlign := 0, 1
	for _, f := range fields {
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		f.Offset = off
		off += f.Type.Size()
		t.Fields = append(t.Fields, f)
	}
	// An empty struct still occupies one byte in C.
	if off == 0 {
		off = 1
	}
	t.size = alignUp(off, maxAlign)
	t.align = maxAlign
	return t
}

// EnumOf returns an enum type with the given tag. Enums have int
// representation on x86-64 System V.
func EnumOf(tag string) *Type {
	return &Type{Kind: KindEnum, TagName: tag}
}

// TypedefOf returns a typedef alias of t named name. ResolveBase unwraps
// typedef chains recursively, mirroring the paper's handling: "if the type
// has been redefined by typedef, we recursively find its base type".
func TypedefOf(name string, t *Type) *Type {
	return &Type{Kind: KindTypedef, TagName: name, Elem: t}
}

// Size returns the size in bytes under the x86-64 System V ABI.
func (t *Type) Size() int {
	switch t.Kind {
	case KindBase:
		return baseSize(t.Base)
	case KindPointer:
		return 8
	case KindEnum:
		return 4
	case KindArray:
		return t.Count * t.Elem.Size()
	case KindStruct:
		return t.size
	case KindTypedef:
		return t.Elem.Size()
	default:
		return 0
	}
}

// Align returns the alignment in bytes under the x86-64 System V ABI.
func (t *Type) Align() int {
	switch t.Kind {
	case KindBase:
		return baseSize(t.Base) // natural alignment; long double aligns to 16
	case KindPointer:
		return 8
	case KindEnum:
		return 4
	case KindArray:
		return t.Elem.Align()
	case KindStruct:
		return t.align
	case KindTypedef:
		return t.Elem.Align()
	default:
		return 1
	}
}

func baseSize(b Base) int {
	switch b {
	case BaseVoid:
		return 0
	case BaseBool, BaseChar, BaseUChar:
		return 1
	case BaseShort, BaseUShort:
		return 2
	case BaseInt, BaseUInt, BaseFloat:
		return 4
	case BaseLong, BaseULong, BaseLongLong, BaseULongLong, BaseDouble:
		return 8
	case BaseLongDouble:
		return 16 // 80-bit x87 value stored in 16 bytes
	default:
		return 0
	}
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// ResolveBase unwraps typedef chains until a non-typedef type is reached.
// A nil receiver resolves to nil.
func (t *Type) ResolveBase() *Type {
	for t != nil && t.Kind == KindTypedef {
		t = t.Elem
	}
	return t
}

// String renders the type in C-like syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindBase:
		return t.Base.String()
	case KindPointer:
		return t.Elem.String() + "*"
	case KindArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Count)
	case KindStruct:
		return "struct " + t.Name
	case KindEnum:
		return "enum " + t.TagName
	case KindTypedef:
		return t.TagName
	default:
		return fmt.Sprintf("Type(kind=%d)", int(t.Kind))
	}
}

// ErrUnclassifiable reports a C type outside the 19-class CATI label space
// (e.g. unions, bare void, function types).
var ErrUnclassifiable = errors.New("ctypes: type outside the 19-class CATI lattice")

// ClassOf maps a structural C type to its CATI class, resolving typedefs
// first. Pointer classification follows the paper: pointer-to-void,
// pointer-to-struct, and pointer-to-arithmetic (everything whose pointee
// resolves to a base arithmetic type, enum, or array/pointer of such).
// Arrays classify as their element class would at the aggregate level: the
// paper treats stack arrays of aggregates as struct and observes arrays
// through their element accesses; we classify an array by its element type
// (matching how DWARF labels the slot's accesses).
func ClassOf(t *Type) (Class, error) {
	t = t.ResolveBase()
	if t == nil {
		return 0, fmt.Errorf("nil type: %w", ErrUnclassifiable)
	}
	switch t.Kind {
	case KindBase:
		c, ok := baseClass(t.Base)
		if !ok {
			return 0, fmt.Errorf("base %s: %w", t.Base, ErrUnclassifiable)
		}
		return c, nil
	case KindEnum:
		return ClassEnum, nil
	case KindStruct:
		return ClassStruct, nil
	case KindArray:
		return ClassOf(t.Elem)
	case KindPointer:
		pointee := t.Elem.ResolveBase()
		if pointee == nil {
			return ClassPtrVoid, nil
		}
		switch pointee.Kind {
		case KindBase:
			if pointee.Base == BaseVoid {
				return ClassPtrVoid, nil
			}
			return ClassPtrArith, nil
		case KindStruct:
			return ClassPtrStruct, nil
		case KindEnum:
			return ClassPtrArith, nil
		case KindArray, KindPointer:
			// Pointer to array / pointer-to-pointer: the run-time behaviour
			// is indistinguishable from pointer-to-arithmetic for static
			// analysis, matching the paper's pointer clustering.
			return ClassPtrArith, nil
		default:
			return 0, fmt.Errorf("pointee kind %s: %w", pointee.Kind, ErrUnclassifiable)
		}
	default:
		return 0, fmt.Errorf("kind %s: %w", t.Kind, ErrUnclassifiable)
	}
}

func baseClass(b Base) (Class, bool) {
	switch b {
	case BaseBool:
		return ClassBool, true
	case BaseChar:
		return ClassChar, true
	case BaseUChar:
		return ClassUChar, true
	case BaseShort:
		return ClassShort, true
	case BaseUShort:
		return ClassUShort, true
	case BaseInt:
		return ClassInt, true
	case BaseUInt:
		return ClassUInt, true
	case BaseLong:
		return ClassLong, true
	case BaseULong:
		return ClassULong, true
	case BaseLongLong:
		return ClassLongLong, true
	case BaseULongLong:
		return ClassULongLong, true
	case BaseFloat:
		return ClassFloat, true
	case BaseDouble:
		return ClassDouble, true
	case BaseLongDouble:
		return ClassLongDouble, true
	default:
		return 0, false
	}
}
