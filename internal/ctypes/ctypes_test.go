package ctypes

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseSizes(t *testing.T) {
	tests := []struct {
		typ   *Type
		size  int
		align int
	}{
		{Bool, 1, 1},
		{Char, 1, 1},
		{UChar, 1, 1},
		{Short, 2, 2},
		{UShort, 2, 2},
		{Int, 4, 4},
		{UInt, 4, 4},
		{Long, 8, 8},
		{ULong, 8, 8},
		{LongLong, 8, 8},
		{ULongLong, 8, 8},
		{Float, 4, 4},
		{Double, 8, 8},
		{LongDouble, 16, 16},
		{PointerTo(Int), 8, 8},
		{PointerTo(Void), 8, 8},
		{EnumOf("color"), 4, 4},
		{ArrayOf(Int, 10), 40, 4},
		{ArrayOf(Char, 7), 7, 1},
	}
	for _, tt := range tests {
		if got := tt.typ.Size(); got != tt.size {
			t.Errorf("%s: Size = %d, want %d", tt.typ, got, tt.size)
		}
		if got := tt.typ.Align(); got != tt.align {
			t.Errorf("%s: Align = %d, want %d", tt.typ, got, tt.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := StructOf("pair",
		Field{Name: "c", Type: Char},
		Field{Name: "i", Type: Int},
		Field{Name: "d", Type: Double},
		Field{Name: "b", Type: Bool},
	)
	wantOffsets := []int{0, 4, 8, 16}
	for i, f := range s.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if s.Size() != 24 {
		t.Errorf("struct size = %d, want 24", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("struct align = %d, want 8", s.Align())
	}
}

func TestEmptyStructHasSizeOne(t *testing.T) {
	s := StructOf("empty")
	if s.Size() != 1 {
		t.Errorf("empty struct size = %d, want 1", s.Size())
	}
}

func TestNestedStructLayout(t *testing.T) {
	inner := StructOf("inner", Field{Name: "x", Type: Short}, Field{Name: "y", Type: Char})
	if inner.Size() != 4 {
		t.Fatalf("inner size = %d, want 4", inner.Size())
	}
	outer := StructOf("outer",
		Field{Name: "a", Type: Char},
		Field{Name: "in", Type: inner},
		Field{Name: "p", Type: PointerTo(inner)},
	)
	if outer.Fields[1].Offset != 2 {
		t.Errorf("nested field offset = %d, want 2", outer.Fields[1].Offset)
	}
	if outer.Fields[2].Offset != 8 {
		t.Errorf("pointer field offset = %d, want 8", outer.Fields[2].Offset)
	}
	if outer.Size() != 16 {
		t.Errorf("outer size = %d, want 16", outer.Size())
	}
}

func TestResolveBase(t *testing.T) {
	td := TypedefOf("size_t", ULong)
	td2 := TypedefOf("my_size", td)
	if got := td2.ResolveBase(); got != ULong {
		t.Errorf("ResolveBase = %s, want %s", got, ULong)
	}
	if got := Int.ResolveBase(); got != Int {
		t.Errorf("ResolveBase on base type changed it: %s", got)
	}
	var nilT *Type
	if got := nilT.ResolveBase(); got != nil {
		t.Errorf("ResolveBase(nil) = %v, want nil", got)
	}
}

func TestClassOf(t *testing.T) {
	st := StructOf("node", Field{Name: "v", Type: Int})
	tests := []struct {
		typ  *Type
		want Class
	}{
		{Bool, ClassBool},
		{Char, ClassChar},
		{UChar, ClassUChar},
		{Short, ClassShort},
		{UShort, ClassUShort},
		{Int, ClassInt},
		{UInt, ClassUInt},
		{Long, ClassLong},
		{ULong, ClassULong},
		{LongLong, ClassLongLong},
		{ULongLong, ClassULongLong},
		{Float, ClassFloat},
		{Double, ClassDouble},
		{LongDouble, ClassLongDouble},
		{EnumOf("e"), ClassEnum},
		{st, ClassStruct},
		{PointerTo(Void), ClassPtrVoid},
		{PointerTo(st), ClassPtrStruct},
		{PointerTo(Int), ClassPtrArith},
		{PointerTo(Char), ClassPtrArith},
		{PointerTo(Double), ClassPtrArith},
		{PointerTo(EnumOf("e")), ClassPtrArith},
		{PointerTo(PointerTo(Int)), ClassPtrArith},
		{PointerTo(TypedefOf("T", st)), ClassPtrStruct},
		{TypedefOf("size_t", ULong), ClassULong},
		{ArrayOf(Char, 16), ClassChar},
		{ArrayOf(st, 8), ClassStruct},
		{ArrayOf(PointerTo(st), 4), ClassPtrStruct},
	}
	for _, tt := range tests {
		got, err := ClassOf(tt.typ)
		if err != nil {
			t.Errorf("ClassOf(%s): unexpected error %v", tt.typ, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ClassOf(%s) = %s, want %s", tt.typ, got, tt.want)
		}
	}
}

func TestClassOfUnclassifiable(t *testing.T) {
	for _, typ := range []*Type{nil, Void} {
		if _, err := ClassOf(typ); !errors.Is(err, ErrUnclassifiable) {
			t.Errorf("ClassOf(%s): error = %v, want ErrUnclassifiable", typ, err)
		}
	}
}

func TestAllClassesCount(t *testing.T) {
	cs := AllClasses()
	if len(cs) != 19 || NumClasses != 19 {
		t.Fatalf("expected 19 classes, got %d (NumClasses=%d)", len(cs), NumClasses)
	}
	seen := make(map[Class]bool)
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate class %s", c)
		}
		seen[c] = true
		if c.String() == "" {
			t.Errorf("class %d has empty name", int(c))
		}
	}
}

func TestStageRoutingConsistency(t *testing.T) {
	// Every class must traverse Stage 1, carry a valid label at every stage
	// on its path, and be reconstructible from its path labels.
	for _, c := range AllClasses() {
		path := StagePath(c)
		if len(path) < 2 || path[0] != Stage1 {
			t.Fatalf("%s: bad stage path %v", c, path)
		}
		labels := make(map[Stage]int)
		for _, s := range path {
			l, ok := StageLabel(s, c)
			if !ok {
				t.Fatalf("%s: not routed through its own path stage %s", c, s)
			}
			if l < 0 || l >= StageArity(s) {
				t.Fatalf("%s: label %d out of arity %d at %s", c, l, StageArity(s), s)
			}
			labels[s] = l
		}
		s1 := labels[Stage1]
		var s2, s3 int
		if c.IsPointer() {
			s2 = labels[Stage21]
		} else {
			s2 = labels[Stage22]
			if leaf := LeafStage(c); leaf != Stage22 {
				s3 = labels[leaf]
			}
		}
		got, err := ClassFromStagePath(s1, s2, s3)
		if err != nil {
			t.Fatalf("%s: ClassFromStagePath error: %v", c, err)
		}
		if got != c {
			t.Errorf("%s: round-trip through stage path gave %s", c, got)
		}
	}
}

func TestStageLabelRejectsOffPathClasses(t *testing.T) {
	tests := []struct {
		stage Stage
		class Class
	}{
		{Stage21, ClassInt},
		{Stage22, ClassPtrVoid},
		{Stage31, ClassInt},
		{Stage32, ClassChar},
		{Stage33, ClassDouble},
		{Stage33, ClassPtrArith},
	}
	for _, tt := range tests {
		if _, ok := StageLabel(tt.stage, tt.class); ok {
			t.Errorf("StageLabel(%s, %s) should not route", tt.stage, tt.class)
		}
	}
}

func TestStageArityMatchesClassCount(t *testing.T) {
	for _, s := range []Stage{Stage21, Stage31, Stage32, Stage33} {
		if got, want := len(StageClasses(s)), StageArity(s); got != want {
			t.Errorf("%s: %d classes but arity %d", s, got, want)
		}
	}
	// 3 pointer + struct + bool + 2 char + 3 float + 9 int-family = 19.
	total := StageArity(Stage21) + 2 + StageArity(Stage31) + StageArity(Stage32) + StageArity(Stage33)
	if total != NumClasses {
		t.Errorf("stage leaves sum to %d, want %d", total, NumClasses)
	}
}

func TestClassFromStagePathErrors(t *testing.T) {
	cases := []struct{ s1, s2, s3 int }{
		{0, -1, 0}, {0, 3, 0}, {1, 5, 0}, {1, -1, 0},
		{1, 2, 2}, {1, 3, 3}, {1, 4, 9}, {1, 4, -1},
	}
	for _, tt := range cases {
		if _, err := ClassFromStagePath(tt.s1, tt.s2, tt.s3); err == nil {
			t.Errorf("ClassFromStagePath(%d,%d,%d): want error", tt.s1, tt.s2, tt.s3)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	tests := []struct {
		class Class
		want  Family
	}{
		{ClassPtrVoid, FamilyPointer},
		{ClassPtrStruct, FamilyPointer},
		{ClassPtrArith, FamilyPointer},
		{ClassStruct, FamilyStruct},
		{ClassBool, FamilyBool},
		{ClassChar, FamilyChar},
		{ClassUChar, FamilyChar},
		{ClassFloat, FamilyFloat},
		{ClassDouble, FamilyFloat},
		{ClassLongDouble, FamilyFloat},
		{ClassInt, FamilyInt},
		{ClassEnum, FamilyInt},
		{ClassULongLong, FamilyInt},
	}
	for _, tt := range tests {
		if got := tt.class.FamilyOf(); got != tt.want {
			t.Errorf("FamilyOf(%s) = %s, want %s", tt.class, got, tt.want)
		}
	}
}

// randomType builds a random well-formed type of bounded depth for
// property-based tests.
func randomType(r *rand.Rand, depth int) *Type {
	bases := []*Type{
		Bool, Char, UChar, Short, UShort, Int, UInt,
		Long, ULong, LongLong, ULongLong, Float, Double, LongDouble,
	}
	if depth <= 0 {
		return bases[r.Intn(len(bases))]
	}
	switch r.Intn(6) {
	case 0:
		return PointerTo(randomType(r, depth-1))
	case 1:
		return ArrayOf(randomType(r, depth-1), 1+r.Intn(8))
	case 2:
		n := 1 + r.Intn(4)
		fs := make([]Field, n)
		for i := range fs {
			fs[i] = Field{Name: "f", Type: randomType(r, depth-1)}
		}
		return StructOf("s", fs...)
	case 3:
		return EnumOf("e")
	case 4:
		return TypedefOf("t", randomType(r, depth-1))
	default:
		return bases[r.Intn(len(bases))]
	}
}

func TestPropertySizeAlignInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		typ := randomType(r, 3)
		size, align := typ.Size(), typ.Align()
		if size <= 0 {
			t.Fatalf("%s: non-positive size %d", typ, size)
		}
		if align <= 0 || size%align != 0 {
			t.Fatalf("%s: size %d not a multiple of align %d", typ, size, align)
		}
		// Struct fields must be ordered, in-bounds, non-overlapping.
		if typ.Kind == KindStruct {
			prevEnd := 0
			for _, f := range typ.Fields {
				if f.Offset < prevEnd {
					t.Fatalf("%s: field overlap at offset %d", typ, f.Offset)
				}
				if f.Offset%f.Type.Align() != 0 {
					t.Fatalf("%s: misaligned field at %d", typ, f.Offset)
				}
				prevEnd = f.Offset + f.Type.Size()
			}
			if prevEnd > size {
				t.Fatalf("%s: fields extend past size", typ)
			}
		}
	}
}

func TestPropertyClassRoutingTotal(t *testing.T) {
	// quick.Check over the label space: every class round-trips its path.
	f := func(raw uint8) bool {
		c := Class(int(raw)%NumClasses) + 1
		leaf := LeafStage(c)
		l, ok := StageLabel(leaf, c)
		if !ok {
			return false
		}
		cs := StageClasses(leaf)
		if cs == nil { // struct/bool leaf at Stage 2-2
			return leaf == Stage22 && (c == ClassStruct || c == ClassBool)
		}
		return cs[l] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyClassOfRandomTypesAlwaysRoutes(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		typ := randomType(r, 3)
		c, err := ClassOf(typ)
		if err != nil {
			t.Fatalf("ClassOf(%s): %v", typ, err)
		}
		if c < ClassPtrVoid || c > ClassEnum {
			t.Fatalf("ClassOf(%s) = %d out of range", typ, c)
		}
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  *Type
		want string
	}{
		{Int, "int"},
		{PointerTo(Int), "int*"},
		{PointerTo(PointerTo(Char)), "char**"},
		{ArrayOf(Double, 4), "double[4]"},
		{StructOf("p"), "struct p"},
		{EnumOf("color"), "enum color"},
		{TypedefOf("size_t", ULong), "size_t"},
		{nil, "<nil>"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestBasePredicates(t *testing.T) {
	signed := []Base{BaseChar, BaseShort, BaseInt, BaseLong, BaseLongLong}
	for _, b := range signed {
		if !b.IsSigned() {
			t.Errorf("%s should be signed", b)
		}
	}
	unsigned := []Base{BaseBool, BaseUChar, BaseUShort, BaseUInt, BaseULong, BaseULongLong, BaseFloat, BaseVoid}
	for _, b := range unsigned {
		if b.IsSigned() {
			t.Errorf("%s should not be signed", b)
		}
	}
	if !BaseBool.IsInteger() || BaseFloat.IsInteger() || BaseVoid.IsInteger() {
		t.Error("IsInteger misclassifies")
	}
	if !BaseFloat.IsFloat() || !BaseLongDouble.IsFloat() || BaseInt.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
}
