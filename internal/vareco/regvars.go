package vareco

import (
	"sort"

	"repro/internal/isa"
)

// RegVar is a recovered register-resident variable: optimized code
// promotes hot scalars into callee-saved registers, leaving no stack slot.
// The paper's premise ("a storage location, either register or memory,
// that stores a value, is called a variable") covers these; IDA models
// them as register variables.
type RegVar struct {
	// Reg is the callee-saved register holding the variable, in the
	// architecture's neutral numbering (matching debug-info RegNum).
	Reg isa.Reg
	// Insts lists the instructions that read or write the register inside
	// the function body (saves/restores excluded).
	Insts []int
}

// findRegVars recovers register variables for one function: a callee-saved
// register counts as a variable when the prologue saves it and the body
// uses it. Called when Options.RegisterVars is set.
func (r *Recovery) findRegVars(f *Func) {
	// Which callee-saved registers does the prologue save?
	callee := make(map[isa.Reg]bool)
	for _, cs := range r.Arch.CalleeSaved() {
		callee[cs] = true
	}
	saved := make(map[isa.Reg]bool)
	for i := f.InstLo; i < f.InstHi && i < f.InstLo+8; i++ {
		if reg, ok := r.Insts[i].SavedReg(); ok && callee[reg] {
			saved[reg] = true
		}
	}
	if len(saved) == 0 {
		return
	}

	uses := make(map[isa.Reg][]int) // register number → instruction indices
	for i := f.InstLo; i < f.InstHi; i++ {
		in := r.Insts[i]
		if in.IsFrameSetup() {
			continue
		}
		for reg := range saved {
			if in.UsesReg(reg) {
				uses[reg] = append(uses[reg], i)
			}
		}
	}

	nums := make([]int, 0, len(uses))
	for reg := range uses {
		nums = append(nums, int(reg))
	}
	sort.Ints(nums)
	for _, num := range nums {
		reg := isa.Reg(num)
		if len(uses[reg]) == 0 {
			continue
		}
		f.RegVars = append(f.RegVars, RegVar{Reg: reg, Insts: uses[reg]})
	}
}
