package vareco

import (
	"sort"

	"repro/internal/asm"
)

// RegVar is a recovered register-resident variable: optimized code
// promotes hot scalars into callee-saved registers, leaving no stack slot.
// The paper's premise ("a storage location, either register or memory,
// that stores a value, is called a variable") covers these; IDA models
// them as register variables.
type RegVar struct {
	// Reg is the 64-bit callee-saved register holding the variable.
	Reg asm.Reg
	// Insts lists the instructions that read or write the register inside
	// the function body (saves/restores excluded).
	Insts []int
}

// calleeSaved are the registers compilers use for register variables.
var calleeSaved = []asm.Reg{asm.RBX, asm.R12, asm.R13, asm.R14, asm.R15}

// findRegVars recovers register variables for one function: a callee-saved
// register counts as a variable when the prologue saves it and the body
// uses it. Called when Options.RegisterVars is set.
func (r *Recovery) findRegVars(f *Func) {
	// Which callee-saved registers does the prologue push?
	saved := make(map[int]bool)
	for i := f.InstLo; i < f.InstHi && i < f.InstLo+8; i++ {
		in := &r.Insts[i]
		if in.Op != asm.OpPUSH {
			continue
		}
		d, ok := in.Dst().(asm.RegArg)
		if !ok {
			continue
		}
		for _, cs := range calleeSaved {
			if d.Reg == cs {
				saved[cs.Num()] = true
			}
		}
	}
	if len(saved) == 0 {
		return
	}

	uses := make(map[int][]int) // reg hardware number → instruction indices
	for i := f.InstLo; i < f.InstHi; i++ {
		in := &r.Insts[i]
		if in.Op == asm.OpPUSH || in.Op == asm.OpPOP {
			continue
		}
		for num := range saved {
			if instUsesReg(in, num) {
				uses[num] = append(uses[num], i)
			}
		}
	}

	nums := make([]int, 0, len(uses))
	for num := range uses {
		nums = append(nums, num)
	}
	sort.Ints(nums)
	for _, num := range nums {
		if len(uses[num]) == 0 {
			continue
		}
		f.RegVars = append(f.RegVars, RegVar{
			Reg:   asm.GPR(num, 8),
			Insts: uses[num],
		})
	}
}

// instUsesReg reports whether the instruction references the hardware
// register (at any width) as an operand or address component.
func instUsesReg(in *asm.Inst, num int) bool {
	for _, a := range in.Args {
		switch x := a.(type) {
		case asm.RegArg:
			if x.Reg.IsGPR() && !x.Reg.IsHighByte() && x.Reg.Num() == num {
				return true
			}
		case asm.Mem:
			if x.Base != asm.RegNone && x.Base.IsGPR() && x.Base.Num() == num {
				return true
			}
			if x.Index != asm.RegNone && x.Index.IsGPR() && x.Index.Num() == num {
				return true
			}
		}
	}
	return false
}
