package vareco

import (
	"sort"

	"repro/internal/isa"
)

// augmentDataflow performs a forward def-use scan over the function:
// a register loaded from a variable's slot becomes an alias of the
// variable, and subsequent instructions that use the register (before it
// is redefined, the block ends, or a call clobbers it) are added to the
// variable's instruction set. This is the "data flow of the target
// variable" the paper extracts with IDA Pro (§IV-A); without it only the
// direct slot touches count.
func (r *Recovery) augmentDataflow(f *Func) {
	if len(f.Vars) == 0 {
		return
	}

	// Slot intervals for alias lookup.
	varAt := func(disp int32) int {
		for vi := range f.Vars {
			v := &f.Vars[vi]
			if disp >= v.Slot && disp < v.Slot+int32(v.Size) {
				return vi
			}
		}
		return -1
	}

	// Branch targets inside the function end basic blocks.
	blockStart := make(map[uint64]bool)
	for i := f.InstLo; i < f.InstHi; i++ {
		in := r.Insts[i]
		if c := in.Class(); c == isa.ClassJump || c == isa.ClassCondJump {
			if t, ok := in.Target(); ok {
				blockStart[t] = true
			}
		}
	}

	extra := make(map[int]map[int]bool) // var index → added instruction set
	alias := make(map[isa.Reg]int)      // register number → var index

	add := func(vi, inst int) {
		if extra[vi] == nil {
			extra[vi] = make(map[int]bool)
		}
		extra[vi][inst] = true
	}

	for i := f.InstLo; i < f.InstHi; i++ {
		in := r.Insts[i]
		if blockStart[in.Addr()] {
			alias = make(map[isa.Reg]int)
		}

		// Uses: register sources, memory bases/indexes, and read-modify
		// destinations.
		in.VisitReads(func(reg isa.Reg) {
			if vi, ok := alias[reg]; ok {
				add(vi, i)
			}
		})

		// Definitions invalidate aliases; a fresh load from a slot creates
		// one.
		if in.IsBarrier() {
			alias = make(map[isa.Reg]int)
			continue
		}
		if clob := in.Clobbers(); len(clob) > 0 {
			for _, reg := range clob {
				delete(alias, reg)
			}
			continue
		}
		if d, ok := in.DefReg(); ok {
			if dst, m, ok := in.SlotLoad(); ok && m.Base == f.FrameReg {
				if vi := varAt(m.Disp); vi >= 0 {
					alias[dst] = vi
					continue
				}
			}
			delete(alias, d)
		}
	}

	// Merge, dedup and keep sorted.
	for vi, set := range extra {
		v := &f.Vars[vi]
		have := make(map[int]bool, len(v.Insts))
		for _, idx := range v.Insts {
			have[idx] = true
		}
		for idx := range set {
			if !have[idx] {
				v.Insts = append(v.Insts, idx)
			}
		}
		sort.Ints(v.Insts)
	}
}
