package vareco

import (
	"sort"

	"repro/internal/asm"
)

// augmentDataflow performs a forward def-use scan over the function:
// a register loaded from a variable's slot becomes an alias of the
// variable, and subsequent instructions that use the register (before it
// is redefined, the block ends, or a call clobbers it) are added to the
// variable's instruction set. This is the "data flow of the target
// variable" the paper extracts with IDA Pro (§IV-A); without it only the
// direct slot touches count.
func (r *Recovery) augmentDataflow(f *Func) {
	if len(f.Vars) == 0 {
		return
	}

	// Slot intervals for alias lookup.
	varAt := func(disp int32) int {
		for vi := range f.Vars {
			v := &f.Vars[vi]
			if disp >= v.Slot && disp < v.Slot+int32(v.Size) {
				return vi
			}
		}
		return -1
	}

	// Branch targets inside the function end basic blocks.
	blockStart := make(map[uint64]bool)
	for i := f.InstLo; i < f.InstHi; i++ {
		in := &r.Insts[i]
		if in.Op == asm.OpJMP || in.Op.IsCondJump() {
			if s, ok := in.Args[0].(asm.Sym); ok && s.Resolved {
				blockStart[s.Addr] = true
			}
		}
	}

	extra := make(map[int]map[int]bool) // var index → added instruction set
	alias := make(map[int]int)          // hardware reg number → var index

	add := func(vi, inst int) {
		if extra[vi] == nil {
			extra[vi] = make(map[int]bool)
		}
		extra[vi][inst] = true
	}

	for i := f.InstLo; i < f.InstHi; i++ {
		in := &r.Insts[i]
		if blockStart[in.Addr] {
			alias = make(map[int]int)
		}

		// Uses: register sources, memory bases/indexes, and read-modify
		// destinations.
		for ai, a := range in.Args {
			switch x := a.(type) {
			case asm.RegArg:
				if !x.Reg.IsGPR() {
					continue
				}
				if ai == 0 && in.Op == asm.OpMOV {
					continue // pure write, handled as redefinition below
				}
				if vi, ok := alias[x.Reg.Num()]; ok {
					add(vi, i)
				}
			case asm.Mem:
				if x.Base != asm.RegNone && x.Base.IsGPR() {
					if vi, ok := alias[x.Base.Num()]; ok {
						add(vi, i)
					}
				}
				if x.Index != asm.RegNone && x.Index.IsGPR() {
					if vi, ok := alias[x.Index.Num()]; ok {
						add(vi, i)
					}
				}
			}
		}

		// Definitions invalidate aliases; a fresh load from a slot creates
		// one.
		switch {
		case in.Op == asm.OpCALL, in.Op == asm.OpRET, in.Op == asm.OpLEAVE:
			alias = make(map[int]int)
			continue
		case in.Op == asm.OpJMP || in.Op.IsCondJump():
			alias = make(map[int]int)
			continue
		case in.Op == asm.OpIDIV || in.Op == asm.OpDIV ||
			in.Op == asm.OpCDQ || in.Op == asm.OpCQO:
			delete(alias, 0) // rax
			delete(alias, 2) // rdx
			continue
		}
		if d, ok := in.Dst().(asm.RegArg); ok && d.Reg.IsGPR() {
			if in.Op == asm.OpMOV {
				if m, ok := in.Src().(asm.Mem); ok && m.Base == f.FrameReg {
					if vi := varAt(m.Disp); vi >= 0 {
						alias[d.Reg.Num()] = vi
						continue
					}
				}
			}
			delete(alias, d.Reg.Num())
		}
	}

	// Merge, dedup and keep sorted.
	for vi, set := range extra {
		v := &f.Vars[vi]
		have := make(map[int]bool, len(v.Insts))
		for _, idx := range v.Insts {
			have[idx] = true
		}
		for idx := range set {
			if !have[idx] {
				v.Insts = append(v.Insts, idx)
			}
		}
		sort.Ints(v.Insts)
	}
}
