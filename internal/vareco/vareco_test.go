package vareco

import (
	"errors"
	"testing"

	"repro/internal/compile"
	"repro/internal/dwarflite"
	"repro/internal/elfx"
	"repro/internal/isa"
	"repro/internal/synth"
)

func build(t *testing.T, seed int64, dialect compile.Dialect, opt int) (*compile.Result, *Recovery) {
	t.Helper()
	p := synth.Generate(synth.DefaultProfile("vr"), seed)
	res, err := compile.Compile(p, compile.Options{Dialect: dialect, Opt: opt, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

func TestRecoverFunctions(t *testing.T) {
	res, rec := build(t, 1, compile.GCC, 0)
	want := len(res.Debug.Funcs)
	if len(rec.Funcs) != want {
		t.Fatalf("recovered %d functions, want %d", len(rec.Funcs), want)
	}
	// Boundaries must match the (withheld) debug info exactly on this
	// contiguous layout.
	for i, f := range rec.Funcs {
		df := res.Debug.Funcs[i]
		if f.Low != df.Low || f.High != df.High {
			t.Errorf("func %d: [%#x,%#x), want [%#x,%#x)", i, f.Low, f.High, df.Low, df.High)
		}
	}
}

func TestFrameRegDetection(t *testing.T) {
	// GCC O0 → rbp (FP) frames; GCC O2 → rsp (SP) frames.
	_, rec0 := build(t, 2, compile.GCC, 0)
	for _, f := range rec0.Funcs {
		if f.Frame != isa.FrameFP {
			t.Errorf("O0 func at %#x: frame %s, want rbp", f.Low, rec0.Arch.RegName(f.FrameReg))
		}
	}
	_, rec2 := build(t, 2, compile.GCC, 2)
	for _, f := range rec2.Funcs {
		if f.Frame != isa.FrameSP {
			t.Errorf("O2 func at %#x: frame %s, want rsp", f.Low, rec2.Arch.RegName(f.FrameReg))
		}
	}
	// Clang keeps rbp through O2.
	_, recC := build(t, 2, compile.Clang, 2)
	for _, f := range recC.Funcs {
		if f.Frame != isa.FrameFP {
			t.Errorf("clang O2 func at %#x: frame %s, want rbp", f.Low, recC.Arch.RegName(f.FrameReg))
		}
	}
}

// TestRecoveryAccuracy measures slot recovery against ground truth: the
// paper cites ~90% variable recovery from prior work; our recovery on our
// own codegen should be at least that good.
func TestRecoveryAccuracy(t *testing.T) {
	for _, opt := range []int{0, 1, 2} {
		res, rec := build(t, 3, compile.GCC, opt)
		var matched, total int
		for fi := range res.Debug.Funcs {
			df := &res.Debug.Funcs[fi]
			rf, ok := rec.FuncAt(df.Low)
			if !ok {
				total += len(df.Vars)
				continue
			}
			for _, v := range df.Vars {
				if v.Loc == dwarflite.LocReg {
					continue // register variables are recovered separately
				}
				total++
				size := int32(v.Type.Size())
				for _, rv := range rf.Vars {
					rvEnd := rv.Slot + int32(rv.Size)
					if rv.Slot < v.FrameOff+size && rvEnd > v.FrameOff {
						matched++
						break
					}
				}
			}
		}
		if total == 0 {
			t.Fatal("no ground-truth variables")
		}
		ratio := float64(matched) / float64(total)
		if ratio < 0.85 {
			t.Errorf("O%d: recovery ratio %.2f (%d/%d), want ≥0.85", opt, ratio, matched, total)
		}
	}
}

func TestVariableInstructionGrouping(t *testing.T) {
	_, rec := build(t, 5, compile.GCC, 0)
	if rec.NumVars() == 0 {
		t.Fatal("no variables recovered")
	}
	for _, f := range rec.Funcs {
		seen := map[int]bool{}
		for _, v := range f.Vars {
			if len(v.Insts) == 0 {
				t.Fatalf("variable at slot %d has no instructions", v.Slot)
			}
			for _, idx := range v.Insts {
				if idx < f.InstLo || idx >= f.InstHi {
					t.Fatalf("instruction %d outside function range [%d,%d)", idx, f.InstLo, f.InstHi)
				}
				in := rec.Insts[idx]
				m, ok := in.MemArg()
				if !ok || m.Base != f.FrameReg {
					t.Fatalf("grouped instruction %s has no frame access", in.Text())
				}
				if seen[idx] {
					t.Fatalf("instruction %d grouped under two variables", idx)
				}
				seen[idx] = true
			}
		}
		// Variables must not overlap.
		for i := 1; i < len(f.Vars); i++ {
			prev, cur := f.Vars[i-1], f.Vars[i]
			if prev.Slot+int32(prev.Size) > cur.Slot {
				t.Fatalf("overlapping variables at %d and %d", prev.Slot, cur.Slot)
			}
		}
	}
}

func TestOrphanVariablesExist(t *testing.T) {
	// The corpus must show the paper's phenomenon: a sizeable share of
	// variables with only 1–2 related instructions.
	_, rec := build(t, 7, compile.GCC, 1)
	orphan, total := 0, 0
	for _, f := range rec.Funcs {
		for _, v := range f.Vars {
			total++
			if len(v.Insts) <= 2 {
				orphan++
			}
		}
	}
	if total == 0 {
		t.Fatal("no variables")
	}
	if orphan == 0 {
		t.Error("no orphan variables in the corpus — paper requires ~35%")
	}
}

func TestRecoverErrors(t *testing.T) {
	if _, err := Recover(&elfx.Binary{}); !errors.Is(err, ErrNoText) {
		t.Errorf("error = %v, want ErrNoText", err)
	}
}

func TestFrameRegTagConsistency(t *testing.T) {
	res, rec := build(t, 9, compile.GCC, 2)
	for fi := range res.Debug.Funcs {
		df := &res.Debug.Funcs[fi]
		rf, ok := rec.FuncAt(df.Low)
		if !ok {
			t.Fatalf("function at %#x not recovered", df.Low)
		}
		wantFrame := isa.FrameFP
		if df.FrameReg == dwarflite.FrameRSP {
			wantFrame = isa.FrameSP
		}
		if rf.Frame != wantFrame {
			t.Errorf("func %s: frame %s, debug tag %d", df.Name, rec.Arch.RegName(rf.FrameReg), df.FrameReg)
		}
	}
}

func TestGlobalRecovery(t *testing.T) {
	res, rec := build(t, 11, compile.GCC, 0)
	if len(res.Debug.Globals) == 0 {
		t.Skip("generated program has no globals used")
	}
	if rec.DataHigh == 0 {
		t.Fatal("no .data range detected")
	}
	if len(rec.Globals) == 0 {
		t.Fatal("no globals recovered")
	}
	// Every recovered global must fall inside .data and match a debug
	// record.
	matched := 0
	for _, g := range rec.Globals {
		if !rec.InData(g.Addr) {
			t.Fatalf("global at %#x outside .data [%#x,%#x)", g.Addr, rec.DataLow, rec.DataHigh)
		}
		if len(g.Insts) == 0 {
			t.Fatal("global with no instructions")
		}
		if _, ok := res.Debug.GlobalAt(g.Addr); ok {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no recovered global matches debug info")
	}
	// Globals must not overlap.
	for i := 1; i < len(rec.Globals); i++ {
		prev, cur := rec.Globals[i-1], rec.Globals[i]
		if prev.Addr+uint64(prev.Size) > cur.Addr {
			t.Fatalf("overlapping globals at %#x and %#x", prev.Addr, cur.Addr)
		}
	}
	// Literal-pool constants (rodata) must not be recovered as globals.
	for _, g := range rec.Globals {
		if g.Addr < 0x500000 {
			t.Fatalf("rodata constant at %#x recovered as a global", g.Addr)
		}
	}
}

func TestDataflowAugmentation(t *testing.T) {
	p := synth.Generate(synth.DefaultProfile("vr"), 5)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Recover(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	flow, err := RecoverOpts(elfx.Strip(res.Binary), Options{Dataflow: true})
	if err != nil {
		t.Fatal(err)
	}
	if flow.NumVars() != plain.NumVars() {
		t.Fatalf("dataflow changed variable count: %d vs %d", flow.NumVars(), plain.NumVars())
	}
	count := func(r *Recovery) int {
		n := 0
		for _, f := range r.Funcs {
			for _, v := range f.Vars {
				n += len(v.Insts)
			}
		}
		return n
	}
	np, nf := count(plain), count(flow)
	if nf <= np {
		t.Errorf("dataflow added no instructions: %d vs %d", nf, np)
	}
	// Added instructions must stay inside the owning function.
	for _, f := range flow.Funcs {
		for _, v := range f.Vars {
			for _, idx := range v.Insts {
				if idx < f.InstLo || idx >= f.InstHi {
					t.Fatalf("dataflow instruction %d outside function", idx)
				}
			}
		}
	}
}

func TestRegisterVariableRecovery(t *testing.T) {
	// O2 promotes hot scalars into callee-saved registers; with
	// RegisterVars on, those must be recovered and match the debug info's
	// register-located records.
	p := synth.Generate(synth.DefaultProfile("vr"), 13)
	res, err := compile.Compile(p, compile.Options{Dialect: compile.GCC, Opt: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverOpts(elfx.Strip(res.Binary), Options{RegisterVars: true})
	if err != nil {
		t.Fatal(err)
	}

	debugRegVars := 0
	for fi := range res.Debug.Funcs {
		df := &res.Debug.Funcs[fi]
		for vi := range df.Vars {
			if df.Vars[vi].Loc != dwarflite.LocReg {
				continue
			}
			debugRegVars++
			rf, ok := rec.FuncAt(df.Low)
			if !ok {
				t.Fatalf("function %s not recovered", df.Name)
			}
			found := false
			for _, rv := range rf.RegVars {
				if byte(rv.Reg) == df.Vars[vi].RegNum {
					found = true
					if len(rv.Insts) == 0 {
						t.Errorf("register variable %s has no instructions", rec.Arch.RegName(rv.Reg))
					}
				}
			}
			if !found {
				t.Errorf("%s: register variable in %d not recovered", df.Name, df.Vars[vi].RegNum)
			}
		}
	}
	if debugRegVars == 0 {
		t.Skip("no promoted variables in this program")
	}
	// Without the option, no register variables appear.
	plain, err := Recover(elfx.Strip(res.Binary))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range plain.Funcs {
		if len(f.RegVars) != 0 {
			t.Fatal("register variables recovered without the option")
		}
	}
}
