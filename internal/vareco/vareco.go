// Package vareco recovers variables from stripped binaries: the substitute
// for the paper's use of IDA Pro (§IV-A). Given only .text bytes it
// identifies function boundaries, detects each function's frame base
// register, clusters frame-relative memory accesses into variable slots,
// and groups every instruction operating a slot under one variable — the
// grouping the paper's voting mechanism consumes ("for each variable, we
// name all VUCs on its data flow uniquely").
//
// The analysis is architecture-neutral: it consumes the internal/isa
// interface and resolves the concrete architecture from the binary's ELF
// machine field (or an explicit Options.Arch). The paper reports prior
// work recovers variables with roughly 90% accuracy and treats the task
// as solved; this package implements the standard frame-offset clustering
// approach so the claim is measured rather than assumed (see the corpus
// package's recovery-accuracy checks).
package vareco

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/elfx"
	"repro/internal/isa"
	_ "repro/internal/isa/isas" // register built-in architectures
)

// ErrNoText reports a binary without an executable .text section.
var ErrNoText = errors.New("vareco: no .text section")

// Variable is one recovered variable: a stack slot plus every instruction
// that touches it.
type Variable struct {
	// Slot is the frame-relative byte offset of the slot start.
	Slot int32
	// Size is the widest access observed (bytes).
	Size int
	// Insts lists indices (into Recovery.Insts) of the instructions that
	// access the slot — the variable's target instructions.
	Insts []int
}

// Func is one recovered function.
type Func struct {
	Low, High uint64
	// FrameReg is the frame base register (rbp/rsp on x86, s0/sp on
	// RV64); Frame tags which convention it is.
	FrameReg isa.Reg
	Frame    isa.Frame
	// Insts is the index range [InstLo, InstHi) of the function's
	// instructions in Recovery.Insts.
	InstLo, InstHi int
	Vars           []Variable
	// RegVars are recovered register-resident variables (filled only when
	// Options.RegisterVars is set).
	RegVars []RegVar
}

// GlobalVar is one recovered data-section variable: an absolute address
// cluster plus every instruction that accesses it.
type GlobalVar struct {
	Addr  uint64
	Size  int
	Insts []int
}

// Recovery is the full analysis result for one binary.
type Recovery struct {
	// Arch is the architecture the binary was decoded as.
	Arch isa.Arch
	// Insts is the decoded instruction stream of .text.
	Insts []isa.Inst
	// Funcs are the recovered functions in address order.
	Funcs []Func
	// Globals are the recovered data-section variables, in address order.
	Globals []GlobalVar
	// TextLow/TextHigh bound the .text addresses (for distinguishing
	// intra-text call targets from library stubs).
	TextLow, TextHigh uint64
	// DataLow/DataHigh bound the .data section (zero when absent);
	// absolute accesses inside it are global variables, absolute accesses
	// elsewhere (e.g. literal pools) are not.
	DataLow, DataHigh uint64
}

// InText reports whether addr falls inside the .text section.
func (r *Recovery) InText(addr uint64) bool {
	return addr >= r.TextLow && addr < r.TextHigh
}

// Options configures the analysis.
type Options struct {
	// Dataflow augments each variable's instruction set with the
	// instructions that *use* a value loaded from its slot (a def-use
	// trace within the basic block), mirroring the paper's IDA-based
	// "data flow of the variable" extraction. With it, `mov -0x30(%rbp),
	// %rdi; movw $0x39,0x18(%rdi)` attaches both instructions to the
	// variable at -0x30.
	Dataflow bool
	// RegisterVars additionally recovers register-resident variables
	// (callee-saved registers that optimized code promotes hot scalars
	// into) — see RegVar.
	RegisterVars bool
	// Arch overrides architecture resolution; nil resolves from the
	// binary's ELF machine field.
	Arch isa.Arch
}

// Recover analyzes a (typically stripped) binary with slot clustering
// only.
func Recover(bin *elfx.Binary) (*Recovery, error) {
	return RecoverOpts(bin, Options{})
}

// RecoverOpts analyzes a binary with explicit options. Binaries whose
// machine field names no registered architecture are rejected with an
// error wrapping elfx.ErrUnsupportedMachine.
func RecoverOpts(bin *elfx.Binary, opts Options) (*Recovery, error) {
	arch := opts.Arch
	if arch == nil {
		var err error
		arch, err = isa.ByMachine(bin.Machine)
		if err != nil {
			return nil, fmt.Errorf("vareco: %w", err)
		}
	}
	text, err := bin.Text()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoText, err)
	}
	insts, err := arch.DecodeAll(text.Data, text.Addr)
	if err != nil {
		return nil, fmt.Errorf("vareco: disassemble: %w", err)
	}
	r := &Recovery{
		Arch:     arch,
		Insts:    insts,
		TextLow:  text.Addr,
		TextHigh: text.Addr + uint64(len(text.Data)),
	}
	if data, err := bin.Section(".data"); err == nil {
		r.DataLow = data.Addr
		r.DataHigh = data.Addr + uint64(len(data.Data))
	}
	r.findFunctions(bin.Entry)
	for i := range r.Funcs {
		r.analyzeFunc(&r.Funcs[i])
		if opts.Dataflow {
			r.augmentDataflow(&r.Funcs[i])
		}
		if opts.RegisterVars {
			r.findRegVars(&r.Funcs[i])
		}
	}
	r.findGlobals()
	return r, nil
}

// InData reports whether addr falls inside the .data section.
func (r *Recovery) InData(addr uint64) bool {
	return addr >= r.DataLow && addr < r.DataHigh
}

// findGlobals clusters absolute data-section accesses into global
// variables. Unlike stack slots, a global's accesses span functions.
func (r *Recovery) findGlobals() {
	if r.DataHigh == 0 {
		return
	}
	type access struct {
		inst  int
		addr  uint64
		width int
	}
	var accesses []access
	for i, in := range r.Insts {
		addr, ok := in.AbsAddr()
		if !ok || !r.InData(addr) {
			continue
		}
		accesses = append(accesses, access{inst: i, addr: addr, width: in.AccessWidth()})
	}
	if len(accesses) == 0 {
		return
	}
	sort.Slice(accesses, func(i, j int) bool {
		if accesses[i].addr != accesses[j].addr {
			return accesses[i].addr < accesses[j].addr
		}
		return accesses[i].inst < accesses[j].inst
	})
	var cur *GlobalVar
	var curEnd uint64
	flush := func() {
		if cur != nil {
			sort.Ints(cur.Insts)
			r.Globals = append(r.Globals, *cur)
			cur = nil
		}
	}
	for _, a := range accesses {
		end := a.addr + uint64(a.width)
		if cur == nil || a.addr >= curEnd {
			flush()
			cur = &GlobalVar{Addr: a.addr, Size: a.width}
			curEnd = end
		}
		if end > curEnd {
			curEnd = end
		}
		if int(curEnd-cur.Addr) > cur.Size {
			cur.Size = int(curEnd - cur.Addr)
		}
		cur.Insts = append(cur.Insts, a.inst)
	}
	flush()
}

// findFunctions identifies function boundaries in the decoded stream:
// the entry point, every intra-text call target, and any instruction that
// follows a return (functions are laid out contiguously by linkers).
func (r *Recovery) findFunctions(entry uint64) {
	starts := map[uint64]bool{}
	if r.InText(entry) {
		starts[entry] = true
	}
	if len(r.Insts) > 0 {
		starts[r.Insts[0].Addr()] = true
	}
	for i, in := range r.Insts {
		switch in.Class() {
		case isa.ClassCall:
			if t, ok := in.Target(); ok && r.InText(t) {
				starts[t] = true
			}
		case isa.ClassRet:
			if i+1 < len(r.Insts) {
				starts[r.Insts[i+1].Addr()] = true
			}
		}
	}

	addrs := make([]uint64, 0, len(starts))
	for a := range starts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Map addresses to instruction indices.
	idxOf := make(map[uint64]int, len(r.Insts))
	for i := range r.Insts {
		idxOf[r.Insts[i].Addr()] = i
	}

	for i, a := range addrs {
		lo, ok := idxOf[a]
		if !ok {
			continue // start not on an instruction boundary; skip
		}
		high := r.TextHigh
		hi := len(r.Insts)
		if i+1 < len(addrs) {
			high = addrs[i+1]
			if idx, ok := idxOf[high]; ok {
				hi = idx
			}
		}
		if lo >= hi {
			continue
		}
		r.Funcs = append(r.Funcs, Func{
			Low: a, High: high, InstLo: lo, InstHi: hi,
		})
	}
}

// analyzeFunc detects the frame base and clusters slot accesses.
func (r *Recovery) analyzeFunc(f *Func) {
	f.FrameReg, f.Frame = r.Arch.DetectFrame(r.Insts[f.InstLo:f.InstHi])

	// An access is (instruction, slot offset, width). LEA of a slot counts
	// as an access of the slot (address taken).
	type access struct {
		inst  int
		off   int32
		width int
	}
	var accesses []access
	for i := f.InstLo; i < f.InstHi; i++ {
		in := r.Insts[i]
		m, ok := in.MemArg()
		if !ok || m.Base != f.FrameReg {
			continue
		}
		// Skip the frame-establishment instructions themselves.
		if in.IsFrameSetup() {
			continue
		}
		accesses = append(accesses, access{inst: i, off: m.Disp, width: in.AccessWidth()})
	}
	if len(accesses) == 0 {
		return
	}

	// Cluster overlapping [off, off+width) intervals into slots.
	sort.Slice(accesses, func(i, j int) bool {
		if accesses[i].off != accesses[j].off {
			return accesses[i].off < accesses[j].off
		}
		return accesses[i].inst < accesses[j].inst
	})
	var cur *Variable
	var curEnd int32
	flush := func() {
		if cur != nil {
			sort.Ints(cur.Insts)
			f.Vars = append(f.Vars, *cur)
			cur = nil
		}
	}
	for _, a := range accesses {
		end := a.off + int32(a.width)
		if cur == nil || a.off >= curEnd {
			flush()
			cur = &Variable{Slot: a.off, Size: a.width}
			curEnd = end
		}
		if end > curEnd {
			curEnd = end
		}
		if int(curEnd-cur.Slot) > cur.Size {
			cur.Size = int(curEnd - cur.Slot)
		}
		cur.Insts = append(cur.Insts, a.inst)
	}
	flush()
}

// FuncAt returns the recovered function containing addr.
func (r *Recovery) FuncAt(addr uint64) (*Func, bool) {
	for i := range r.Funcs {
		if addr >= r.Funcs[i].Low && addr < r.Funcs[i].High {
			return &r.Funcs[i], true
		}
	}
	return nil, false
}

// NumVars counts all recovered variables.
func (r *Recovery) NumVars() int {
	n := 0
	for i := range r.Funcs {
		n += len(r.Funcs[i].Vars)
	}
	return n
}
