package word2vec

import (
	"context"
	"errors"
	"testing"
)

func ctxSentences() [][]string {
	var out [][]string
	for i := 0; i < 64; i++ {
		out = append(out, []string{"mov", "rax", "rbx", "add", "rcx", "0xIMM"})
	}
	return out
}

func TestTrainCtxPreCancelledSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := TrainCtx(ctx, ctxSentences(), Config{Epochs: 3, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m != nil {
		t.Fatal("cancelled training must not return a model")
	}
}

func TestTrainCtxPreCancelledParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := TrainCtx(ctx, ctxSentences(), Config{Epochs: 3, Seed: 1, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m != nil {
		t.Fatal("cancelled training must not return a model")
	}
}

func TestTrainCtxBackgroundMatchesTrain(t *testing.T) {
	cfg := Config{Epochs: 2, Seed: 9, Deterministic: true}
	a := Train(ctxSentences(), cfg)
	b, err := TrainCtx(context.Background(), ctxSentences(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Words) != len(b.Words) {
		t.Fatalf("vocab mismatch: %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Vecs {
		for j := range a.Vecs[i] {
			if a.Vecs[i][j] != b.Vecs[i][j] {
				t.Fatalf("embedding %d differs", i)
			}
		}
	}
}
