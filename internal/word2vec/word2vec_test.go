package word2vec

import (
	"math"
	"math/rand"
	"testing"
)

// synthetic corpus with two token "topics" that never co-occur: tokens
// within a topic must embed closer than tokens across topics.
func topicCorpus(n int, seed int64) [][]string {
	r := rand.New(rand.NewSource(seed))
	topicA := []string{"mov", "%rax", "%rbx", "add", "$0xIMM"}
	topicB := []string{"movsd", "%xmm0", "%xmm1", "addsd", "0xIMM(%rsp)"}
	var out [][]string
	for i := 0; i < n; i++ {
		topic := topicA
		if i%2 == 1 {
			topic = topicB
		}
		s := make([]string, 30)
		for j := range s {
			s[j] = topic[r.Intn(len(topic))]
		}
		out = append(out, s)
	}
	return out
}

func TestTrainBasics(t *testing.T) {
	m := Train(topicCorpus(200, 1), Config{Dim: 16, Epochs: 3, Seed: 9})
	if len(m.Words) != 10 {
		t.Fatalf("vocab = %d, want 10", len(m.Words))
	}
	if m.Dim != 16 {
		t.Fatalf("dim = %d", m.Dim)
	}
	for _, w := range m.Words {
		v := m.Vector(w)
		if len(v) != 16 {
			t.Fatalf("%s: vector length %d", w, len(v))
		}
		var norm float64
		for _, x := range v {
			norm += float64(x) * float64(x)
		}
		if norm == 0 {
			t.Errorf("%s: zero vector after training", w)
		}
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			t.Fatalf("%s: non-finite vector", w)
		}
	}
}

func TestTopicalSimilarity(t *testing.T) {
	m := Train(topicCorpus(400, 2), Config{Dim: 16, Epochs: 5, Seed: 3})
	within := m.Similarity("mov", "add")
	across := m.Similarity("mov", "addsd")
	if within <= across {
		t.Errorf("within-topic similarity %.3f not above across-topic %.3f", within, across)
	}
	within2 := m.Similarity("%xmm0", "%xmm1")
	across2 := m.Similarity("%xmm0", "%rbx")
	if within2 <= across2 {
		t.Errorf("xmm similarity %.3f not above cross %.3f", within2, across2)
	}
}

func TestOOVVector(t *testing.T) {
	m := Train(topicCorpus(10, 1), Config{Dim: 8, Epochs: 1, Seed: 1})
	v := m.Vector("never-seen-token")
	if len(v) != 8 {
		t.Fatalf("OOV vector length %d", len(v))
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("OOV vector not zero")
		}
	}
	if m.Has("never-seen-token") {
		t.Error("Has(OOV) = true")
	}
	if !m.Has("mov") {
		t.Error("Has(mov) = false")
	}
}

func TestDeterminism(t *testing.T) {
	a := Train(topicCorpus(50, 4), Config{Dim: 8, Epochs: 2, Seed: 7})
	b := Train(topicCorpus(50, 4), Config{Dim: 8, Epochs: 2, Seed: 7})
	for i, w := range a.Words {
		if b.Words[i] != w {
			t.Fatal("vocab order differs")
		}
		va, vb := a.Vecs[i], b.Vecs[i]
		for k := range va {
			if va[k] != vb[k] {
				t.Fatalf("%s: vectors differ at %d", w, k)
			}
		}
	}
}

// TestDeterministicOverridesWorkers: the Deterministic flag must force the
// serial trainer, so Workers=4 reproduces the Workers=1 embedding exactly.
func TestDeterministicOverridesWorkers(t *testing.T) {
	corp := topicCorpus(60, 6)
	serial := Train(corp, Config{Dim: 8, Epochs: 2, Seed: 7, Workers: 1})
	det := Train(corp, Config{Dim: 8, Epochs: 2, Seed: 7, Workers: 4, Deterministic: true})
	for i, w := range serial.Words {
		for k := range serial.Vecs[i] {
			if serial.Vecs[i][k] != det.Vecs[i][k] {
				t.Fatalf("%s: Deterministic+Workers=4 differs from serial at %d", w, k)
			}
		}
	}
}

// TestParallelTraining exercises the sharded Hogwild trainer (race-clean
// via striped row locks; run under -race by the Makefile check target) and
// checks it still learns the topic structure.
func TestParallelTraining(t *testing.T) {
	m := Train(topicCorpus(400, 2), Config{Dim: 16, Epochs: 5, Seed: 3, Workers: 3})
	if len(m.Words) != 10 {
		t.Fatalf("vocab = %d, want 10", len(m.Words))
	}
	for i, w := range m.Words {
		var norm float64
		for _, x := range m.Vecs[i] {
			norm += float64(x) * float64(x)
		}
		if norm == 0 {
			t.Errorf("%s: zero vector after parallel training", w)
		}
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			t.Fatalf("%s: non-finite vector after parallel training", w)
		}
	}
	if within, across := m.Similarity("mov", "add"), m.Similarity("mov", "addsd"); within <= across {
		t.Errorf("parallel: within-topic similarity %.3f not above across-topic %.3f", within, across)
	}
}

func TestMinCount(t *testing.T) {
	sentences := [][]string{{"common", "common", "common", "rare", "common", "common"}}
	m := Train(sentences, Config{Dim: 4, Epochs: 1, MinCount: 2, Seed: 1})
	if m.Has("rare") {
		t.Error("rare token survived MinCount")
	}
	if !m.Has("common") {
		t.Error("common token dropped")
	}
}

func TestEncodeDecode(t *testing.T) {
	m := Train(topicCorpus(30, 5), Config{Dim: 8, Epochs: 1, Seed: 2})
	blob, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != m.Dim || len(got.Words) != len(m.Words) {
		t.Fatal("shape mismatch after decode")
	}
	for i := range m.Vecs {
		for k := range m.Vecs[i] {
			if got.Vecs[i][k] != m.Vecs[i][k] {
				t.Fatal("vector mismatch after decode")
			}
		}
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode(garbage) should fail")
	}
}

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, Config{Dim: 4, Seed: 1})
	if len(m.Words) != 0 {
		t.Fatal("non-empty vocab from empty corpus")
	}
	if v := m.Vector("x"); len(v) != 4 {
		t.Fatal("OOV vector wrong length on empty model")
	}
}
