// Package word2vec is a pure-Go skip-gram Word2Vec with negative sampling,
// the embedding stage of the paper (§IV-C): it learns a 32-dimensional
// vector per generalized assembly token (window 5), maximizing the paper's
// objective (Eq. 1) via the standard negative-sampling surrogate.
package word2vec

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/telemetry"
)

// Embedding-training telemetry: cumulative sentence/token throughput
// across epochs, shared by the serial and Hogwild trainers. Per-sentence
// atomic adds are negligible next to the dot products a sentence costs.
var (
	mSentences = telemetry.Default().Counter("cati_w2v_sentences_total",
		"Sentences consumed by Word2Vec training, across epochs.")
	mTokens = telemetry.Default().Counter("cati_w2v_tokens_total",
		"Tokens consumed by Word2Vec training, across epochs.")
)

// Config are the training hyperparameters; zero values take the paper's
// defaults.
type Config struct {
	Dim      int     // embedding dimensionality (paper: 32)
	Window   int     // max skip distance m (paper: 5)
	Negative int     // negative samples per positive pair
	Epochs   int     // passes over the corpus
	LR       float64 // initial learning rate, linearly decayed
	MinCount int     // drop tokens rarer than this
	Seed     int64
	// Workers is the parallel training shard count. Because parallel
	// Word2Vec is nondeterministic (see Deterministic), it is opt-in: 0
	// reads CATI_WORKERS and otherwise trains serially — GOMAXPROCS alone
	// never triggers it (par.WorkersExplicit).
	Workers int
	// Deterministic forces the serial trainer regardless of Workers,
	// guaranteeing bit-for-bit reproducible embeddings for a fixed Seed.
	// Parallel training is Hogwild-style — sentence shards update the
	// shared matrices concurrently with per-shard RNGs derived from
	// (Seed, shard) — so its result depends on update interleaving and is
	// reproducible only in distribution, not bitwise (striped row locks
	// make the races memory-safe; see DESIGN.md "Parallelism &
	// determinism").
	Deterministic bool
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 32
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negative == 0 {
		c.Negative = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.MinCount == 0 {
		c.MinCount = 1
	}
	return c
}

// Model is a trained embedding table.
type Model struct {
	Dim   int
	Vocab map[string]int
	Words []string
	// Vecs is the input-embedding matrix, row per vocabulary word.
	Vecs [][]float32
}

// Vector returns the embedding of a token; unknown tokens embed to the
// zero vector (stripped-binary inference may see tokens unseen in
// training — the paper reports >99% generalization coverage, and the rest
// must not crash the pipeline).
func (m *Model) Vector(tok string) []float32 {
	if i, ok := m.Vocab[tok]; ok {
		return m.Vecs[i]
	}
	return make([]float32, m.Dim)
}

// Has reports whether the token is in-vocabulary.
func (m *Model) Has(tok string) bool {
	_, ok := m.Vocab[tok]
	return ok
}

// sigmoid lookup table, as in the reference implementation.
const (
	sigTableSize = 1024
	sigMax       = 6.0
)

type sigTable [sigTableSize]float32

func newSigTable() *sigTable {
	var t sigTable
	for i := range t {
		x := (float64(i)/sigTableSize*2 - 1) * sigMax
		t[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return &t
}

func (t *sigTable) at(x float32) float32 {
	if x >= sigMax {
		return 1
	}
	if x <= -sigMax {
		return 0
	}
	i := int((x + sigMax) / (2 * sigMax) * sigTableSize)
	if i >= sigTableSize {
		i = sigTableSize - 1
	}
	return t[i]
}

// Train learns embeddings from sentences (token sequences). Deterministic
// for a fixed config unless parallelism is explicitly enabled via
// Config.Workers or CATI_WORKERS (and not vetoed by Config.Deterministic).
func Train(sentences [][]string, cfg Config) *Model {
	m, _ := TrainCtx(context.Background(), sentences, cfg)
	return m
}

// TrainCtx is Train with cooperative cancellation: both trainers check
// ctx at every sentence boundary, and once it is cancelled training stops
// and (nil, ctx.Err()) is returned.
func TrainCtx(ctx context.Context, sentences [][]string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	// Vocabulary with counts.
	counts := make(map[string]int)
	for _, s := range sentences {
		for _, tok := range s {
			counts[tok]++
		}
	}
	words := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words) // determinism independent of map order
	vocab := make(map[string]int, len(words))
	for i, w := range words {
		vocab[w] = i
	}
	m := &Model{Dim: cfg.Dim, Vocab: vocab, Words: words}
	if len(words) == 0 {
		return m, nil
	}

	// Unigram table for negative sampling (counts^0.75).
	table := make([]int32, tableSize)
	var totalPow float64
	pows := make([]float64, len(words))
	for i, w := range words {
		pows[i] = math.Pow(float64(counts[w]), 0.75)
		totalPow += pows[i]
	}
	idx, cum := 0, pows[0]/totalPow
	for i := range table {
		table[i] = int32(idx)
		if float64(i)/tableSize > cum && idx < len(words)-1 {
			idx++
			cum += pows[idx] / totalPow
		}
	}

	// Parameter matrices.
	in := make([]float32, len(words)*cfg.Dim)
	out := make([]float32, len(words)*cfg.Dim)
	for i := range in {
		in[i] = (r.Float32() - 0.5) / float32(cfg.Dim)
	}

	sig := newSigTable()

	// Token stream as indices.
	var stream [][]int32
	totalTokens := 0
	for _, s := range sentences {
		row := make([]int32, 0, len(s))
		for _, tok := range s {
			if i, ok := vocab[tok]; ok {
				row = append(row, int32(i))
			}
		}
		if len(row) > 1 {
			stream = append(stream, row)
			totalTokens += len(row)
		}
	}

	workers := 1
	if !cfg.Deterministic {
		workers = par.WorkersExplicit(cfg.Workers)
	}
	if workers > 1 && len(stream) > 1 {
		if err := trainParallel(ctx, cfg, stream, table, in, out, sig, workers); err != nil {
			return nil, err
		}
	} else {
		if err := trainSerial(ctx, cfg, stream, table, in, out, sig, r, totalTokens); err != nil {
			return nil, err
		}
	}

	m.Vecs = make([][]float32, len(words))
	for i := range words {
		v := make([]float32, cfg.Dim)
		copy(v, in[i*cfg.Dim:(i+1)*cfg.Dim])
		m.Vecs[i] = v
	}
	return m, nil
}

// tableSize is the negative-sampling unigram table length (reference
// implementation uses 1e8; 128K keeps the same sampling resolution at our
// vocabulary sizes).
const tableSize = 1 << 17

// trainSerial is the historical single-goroutine trainer; Deterministic
// configs and Workers=1 run exactly this code, so serial embeddings stay
// bit-for-bit reproducible.
func trainSerial(ctx context.Context, cfg Config, stream [][]int32, table []int32, in, out []float32, sig *sigTable, r *rand.Rand, totalTokens int) error {
	grad := make([]float32, cfg.Dim)
	trained := 0
	totalSteps := cfg.Epochs * totalTokens
	done := ctx.Done()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, row := range stream {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			mSentences.Inc()
			mTokens.Add(uint64(len(row)))
			for ci, center := range row {
				// Linearly decayed learning rate with a floor.
				lr := float32(cfg.LR) * (1 - float32(trained)/float32(totalSteps+1))
				if lr < float32(cfg.LR)*0.0001 {
					lr = float32(cfg.LR) * 0.0001
				}
				trained++
				span := 1 + r.Intn(cfg.Window)
				for d := -span; d <= span; d++ {
					pos := ci + d
					if d == 0 || pos < 0 || pos >= len(row) {
						continue
					}
					ctx := row[pos]
					vIn := in[int(ctx)*cfg.Dim : int(ctx+1)*cfg.Dim]
					for k := range grad {
						grad[k] = 0
					}
					// One positive + Negative negatives.
					for s := 0; s <= cfg.Negative; s++ {
						var target int32
						var label float32
						if s == 0 {
							target, label = center, 1
						} else {
							target = table[r.Intn(tableSize)]
							if target == center {
								continue
							}
							label = 0
						}
						vOut := out[int(target)*cfg.Dim : int(target+1)*cfg.Dim]
						var dot float32
						for k := 0; k < cfg.Dim; k++ {
							dot += vIn[k] * vOut[k]
						}
						g := (label - sig.at(dot)) * lr
						for k := 0; k < cfg.Dim; k++ {
							grad[k] += g * vOut[k]
							vOut[k] += g * vIn[k]
						}
					}
					for k := 0; k < cfg.Dim; k++ {
						vIn[k] += grad[k]
					}
				}
			}
		}
	}
	return nil
}

// lockStripes is the row-lock stripe count guarding the shared matrices
// during parallel training; rows hash to stripes by index.
const lockStripes = 256

// rowLocks stripes the input and output matrices separately. Workers take
// an in-stripe lock for the context row, then out-stripe locks one target
// at a time — in-before-out ordering everywhere, so no cycles exist.
type rowLocks struct {
	in  [lockStripes]sync.Mutex
	out [lockStripes]sync.Mutex
}

// trainParallel splits the sentence stream into contiguous shards, one per
// worker, and trains all shards concurrently within each epoch (with a
// barrier between epochs). Each shard draws windows and negatives from its
// own RNG seeded by (Seed, shard) and decays its learning rate against its
// own token count, so a shard's schedule is deterministic — but updates to
// the shared matrices interleave across shards Hogwild-style, making the
// final embedding reproducible only in distribution. Striped row locks
// keep concurrent row updates memory-safe (and the race detector quiet)
// at negligible cost next to the dot products.
func trainParallel(ctx context.Context, cfg Config, stream [][]int32, table []int32, in, out []float32, sig *sigTable, workers int) error {
	ns := par.NumShards(len(stream), workers)
	type shardState struct {
		rng     *rand.Rand
		grad    []float32
		trained int
		total   int
	}
	states := make([]*shardState, ns)
	locks := &rowLocks{}
	for s := range states {
		states[s] = &shardState{
			// golden-ratio hash of the shard index keeps neighbor shards'
			// streams uncorrelated.
			rng:  rand.New(rand.NewSource(cfg.Seed ^ int64(s+1)*-0x61C8864680B583EB)),
			grad: make([]float32, cfg.Dim),
		}
	}

	done := ctx.Done()
	var stop atomic.Bool
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		par.Shard(len(stream), workers, func(shard, lo, hi int) {
			st := states[shard]
			if epoch == 0 {
				for _, row := range stream[lo:hi] {
					st.total += len(row)
				}
			}
			totalSteps := cfg.Epochs * st.total
			for _, row := range stream[lo:hi] {
				if done != nil {
					if stop.Load() {
						return
					}
					select {
					case <-done:
						stop.Store(true)
						return
					default:
					}
				}
				mSentences.Inc()
				mTokens.Add(uint64(len(row)))
				for ci, center := range row {
					lr := float32(cfg.LR) * (1 - float32(st.trained)/float32(totalSteps+1))
					if lr < float32(cfg.LR)*0.0001 {
						lr = float32(cfg.LR) * 0.0001
					}
					st.trained++
					span := 1 + st.rng.Intn(cfg.Window)
					for d := -span; d <= span; d++ {
						pos := ci + d
						if d == 0 || pos < 0 || pos >= len(row) {
							continue
						}
						ctx := row[pos]
						vIn := in[int(ctx)*cfg.Dim : int(ctx+1)*cfg.Dim]
						grad := st.grad
						for k := range grad {
							grad[k] = 0
						}
						inLk := &locks.in[int(ctx)%lockStripes]
						inLk.Lock()
						for s := 0; s <= cfg.Negative; s++ {
							var target int32
							var label float32
							if s == 0 {
								target, label = center, 1
							} else {
								target = table[st.rng.Intn(tableSize)]
								if target == center {
									continue
								}
								label = 0
							}
							vOut := out[int(target)*cfg.Dim : int(target+1)*cfg.Dim]
							outLk := &locks.out[int(target)%lockStripes]
							outLk.Lock()
							var dot float32
							for k := 0; k < cfg.Dim; k++ {
								dot += vIn[k] * vOut[k]
							}
							g := (label - sig.at(dot)) * lr
							for k := 0; k < cfg.Dim; k++ {
								grad[k] += g * vOut[k]
								vOut[k] += g * vIn[k]
							}
							outLk.Unlock()
						}
						for k := 0; k < cfg.Dim; k++ {
							vIn[k] += grad[k]
						}
						inLk.Unlock()
					}
				}
			}
		})
		if stop.Load() {
			return ctx.Err()
		}
	}
	return nil
}

// Similarity returns the cosine similarity of two tokens (0 when either is
// out of vocabulary or zero).
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	var dot, na, nb float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
		na += float64(va[i]) * float64(va[i])
		nb += float64(vb[i]) * float64(vb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Encode serializes the model.
func (m *Model) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("word2vec: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a model.
func Decode(data []byte) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return nil, fmt.Errorf("word2vec: decode: %w", err)
	}
	return &m, nil
}
