package compile

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/ctypes"
	"repro/internal/dwarflite"
	"repro/internal/synth"
)

// Codegen errors.
var (
	ErrUnsupported = errors.New("compile: unsupported construct")
)

// System V integer and float argument registers.
var (
	intArgRegs   = []asm.Reg{asm.RDI, asm.RSI, asm.RDX, asm.RCX, asm.R8, asm.R9}
	floatArgRegs = []asm.Reg{asm.XMM0, asm.XMM1, asm.XMM2, asm.XMM3}
	promoteRegs  = []asm.Reg{asm.RBX, asm.R12, asm.R13}
)

// funcCompiler lowers one function into the shared Unit.
type funcCompiler struct {
	c    *compiler
	u    *asm.Unit
	fn   *synth.Function
	opts Options
	r    *rand.Rand

	slots     map[*synth.VarDecl]int32
	slotOrder []*synth.VarDecl
	promoted  map[*synth.VarDecl]asm.Reg
	frameReg  asm.Reg
	frameSize int32
	spillOff  int32 // hidden scratch slot for x87 conversions
	labelSeq  int
	lastStore storeTrack
}

func (c *compiler) compileFunc(fn *synth.Function, u *asm.Unit) (*funcCompiler, error) {
	fc := &funcCompiler{
		c:        c,
		u:        u,
		fn:       fn,
		opts:     c.opts,
		r:        rand.New(rand.NewSource(c.r.Int63())),
		slots:    make(map[*synth.VarDecl]int32),
		promoted: make(map[*synth.VarDecl]asm.Reg),
	}
	fc.chooseFrame()
	fc.choosePromotions()
	fc.layoutSlots()

	u.Label(fn.Name)
	fc.prologue()
	body := fn.Body
	if fc.opts.Opt >= 3 {
		body = unrollLoops(body)
	}
	for _, s := range body {
		if err := fc.stmt(s); err != nil {
			return nil, err
		}
	}
	// Defensive epilogue for bodies whose last statement is not a return.
	if len(body) == 0 || !isReturn(body[len(body)-1]) {
		fc.epilogue()
	}
	return fc, nil
}

func isReturn(s synth.Stmt) bool {
	_, ok := s.(*synth.Return)
	return ok
}

// chooseFrame decides the frame-base register: the GCC dialect drops the
// frame pointer at O2+, the Clang dialect only at O3.
func (fc *funcCompiler) chooseFrame() {
	omit := fc.opts.Opt >= 2
	if fc.opts.Dialect == Clang {
		omit = fc.opts.Opt >= 3
	}
	if omit {
		fc.frameReg = asm.RSP
	} else {
		fc.frameReg = asm.RBP
	}
}

func (fc *funcCompiler) frameRegTag() byte {
	if fc.frameReg == asm.RSP {
		return dwarflite.FrameRSP
	}
	return dwarflite.FrameRBP
}

// choosePromotions selects up to three hot integer scalars for register
// promotion at O2+. Variables whose address is taken must stay in memory.
func (fc *funcCompiler) choosePromotions() {
	if fc.opts.Opt < 2 {
		return
	}
	addrTaken := make(map[*synth.VarDecl]bool)
	uses := make(map[*synth.VarDecl]int)
	walkStmts(fc.fn.Body, func(e synth.Expr) {
		switch x := e.(type) {
		case *synth.AddrOf:
			if vr, ok := x.Target.(*synth.VarRef); ok {
				addrTaken[vr.Decl] = true
			}
		case *synth.VarRef:
			uses[x.Decl]++
		}
	})
	type cand struct {
		d *synth.VarDecl
		n int
	}
	var cands []cand
	for _, d := range fc.fn.Locals {
		t := d.Type.ResolveBase()
		ok := t.Kind == ctypes.KindBase && t.Base.IsInteger() &&
			t.Base != ctypes.BaseBool && !addrTaken[d] && uses[d] >= 3
		if ok {
			cands = append(cands, cand{d, uses[d]})
		}
	}
	// Stable selection: highest use count first, declaration order breaking
	// ties (cands is already in declaration order).
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].n > cands[i].n {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	for i := 0; i < len(cands) && i < len(promoteRegs); i++ {
		fc.promoted[cands[i].d] = promoteRegs[i]
	}
}

func walkStmts(stmts []synth.Stmt, f func(synth.Expr)) {
	var walkExpr func(e synth.Expr)
	walkExpr = func(e synth.Expr) {
		if e == nil {
			return
		}
		f(e)
		switch x := e.(type) {
		case *synth.Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *synth.Cmp:
			walkExpr(x.L)
			walkExpr(x.R)
		case *synth.AddrOf:
			walkExpr(x.Target)
		case *synth.Cast:
			walkExpr(x.X)
		case *synth.Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *synth.IndexRef:
			walkExpr(x.Idx)
		}
	}
	var walk func(ss []synth.Stmt)
	walk = func(ss []synth.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *synth.Assign:
				walkExpr(x.LHS)
				walkExpr(x.RHS)
			case *synth.If:
				walkExpr(x.Cond)
				walk(x.Then)
				walk(x.Else)
			case *synth.While:
				walkExpr(x.Cond)
				walk(x.Body)
			case *synth.For:
				if x.Init != nil {
					walk([]synth.Stmt{x.Init})
				}
				walkExpr(x.Cond)
				if x.Post != nil {
					walk([]synth.Stmt{x.Post})
				}
				walk(x.Body)
			case *synth.Return:
				walkExpr(x.Value)
			case *synth.ExprStmt:
				walkExpr(x.X)
			}
		}
	}
	walk(stmts)
}

// layoutSlots assigns frame offsets. The GCC dialect allocates locals in
// reverse declaration order with parameters below them; the Clang dialect
// uses declaration order with parameters first — a deliberately different
// stack map, as real compilers differ here.
func (fc *funcCompiler) layoutSlots() {
	assign := func(d *synth.VarDecl, off *int32) {
		size := int32(d.Type.Size())
		if size == 0 {
			size = 8
		}
		align := int32(d.Type.Align())
		if align == 0 {
			align = 8
		}
		*off += size
		if rem := *off % align; rem != 0 {
			*off += align - rem
		}
		fc.slots[d] = -*off // provisional: negative offsets below frame base
		fc.slotOrder = append(fc.slotOrder, d)
	}

	var off int32
	var order []*synth.VarDecl
	if fc.opts.Dialect == GCC {
		for i := len(fc.fn.Locals) - 1; i >= 0; i-- {
			order = append(order, fc.fn.Locals[i])
		}
		order = append(order, fc.fn.Params...)
	} else {
		order = append(order, fc.fn.Params...)
		order = append(order, fc.fn.Locals...)
	}
	for _, d := range order {
		if _, isProm := fc.promoted[d]; isProm {
			continue
		}
		assign(d, &off)
	}
	// Hidden spill slot for x87 integer conversions.
	off += 8
	fc.spillOff = -off

	// Round the frame to 16 bytes.
	if rem := off % 16; rem != 0 {
		off += 16 - rem
	}
	fc.frameSize = off

	// RSP-relative frames address slots upward from rsp: rebase offsets.
	if fc.frameReg == asm.RSP {
		for d, o := range fc.slots {
			fc.slots[d] = o + fc.frameSize
		}
		fc.spillOff += fc.frameSize
	}
}

// debugVars emits the DWARF-lite variable records: stack-resident
// variables with their frame offsets, and register-promoted locals as
// register-located records (the moral equivalent of a DWARF
// DW_OP_reg location).
func (fc *funcCompiler) debugVars() []dwarflite.Var {
	isParam := make(map[*synth.VarDecl]bool, len(fc.fn.Params))
	for _, p := range fc.fn.Params {
		isParam[p] = true
	}
	out := make([]dwarflite.Var, 0, len(fc.slotOrder)+len(fc.promoted))
	for _, d := range fc.slotOrder {
		out = append(out, dwarflite.Var{
			Name:     d.Name,
			FrameOff: fc.slots[d],
			Type:     d.Type,
			IsParam:  isParam[d],
		})
	}
	for _, d := range fc.fn.Locals {
		if reg, ok := fc.promoted[d]; ok {
			out = append(out, dwarflite.Var{
				Name:   d.Name,
				Type:   d.Type,
				Loc:    dwarflite.LocReg,
				RegNum: byte(reg.Num()),
			})
		}
	}
	return out
}

func (fc *funcCompiler) newLabel(prefix string) string {
	fc.labelSeq++
	return fmt.Sprintf(".L%s_%s_%d", fc.fn.Name, prefix, fc.labelSeq)
}

func (fc *funcCompiler) emit(op asm.Op, width int, args ...asm.Operand) {
	if fc.opts.Opt >= 1 {
		fc.emitOpt(op, width, args...)
		return
	}
	fc.u.AddOp(op, width, args...)
}

func (fc *funcCompiler) slotMem(d *synth.VarDecl) asm.Mem {
	return asm.MemD(fc.frameReg, fc.slots[d])
}

// scratch returns the i-th caller-saved scratch register at the given
// width; the two dialects prefer different orders.
func (fc *funcCompiler) scratch(i, width int) asm.Reg {
	gcc := []asm.Reg{asm.RAX, asm.RDX, asm.RCX, asm.RSI, asm.RDI, asm.R8, asm.R9, asm.R10}
	clang := []asm.Reg{asm.RAX, asm.RCX, asm.RDX, asm.RSI, asm.R8, asm.RDI, asm.R9, asm.R11}
	regs := gcc
	if fc.opts.Dialect == Clang {
		regs = clang
	}
	return regs[i%len(regs)].WithWidth(width)
}

// zeroReg emits the dialect's zeroing idiom.
func (fc *funcCompiler) zeroReg(r asm.Reg) {
	if fc.opts.Dialect == Clang {
		r32 := r.WithWidth(4) // xor of the 32-bit form zero-extends
		fc.emit(asm.OpXOR, 4, asm.R(r32), asm.R(r32))
		return
	}
	w := r.Width()
	if w == 8 {
		// GCC also zeroes via the 32-bit move (implicit zero extension).
		r = r.WithWidth(4)
		w = 4
	}
	fc.emit(asm.OpMOV, w, asm.R(r), asm.Imm{Value: 0})
}

func (fc *funcCompiler) prologue() {
	if fc.frameReg == asm.RBP {
		fc.emit(asm.OpPUSH, 8, asm.R(asm.RBP))
		fc.emit(asm.OpMOV, 8, asm.R(asm.RBP), asm.R(asm.RSP))
	}
	// Save callee-saved registers used for promotion.
	for _, reg := range promoteRegs {
		if fc.usesPromoteReg(reg) {
			fc.emit(asm.OpPUSH, 8, asm.R(reg))
		}
	}
	if fc.frameSize > 0 {
		fc.emit(asm.OpSUB, 8, asm.R(asm.RSP), asm.Imm{Value: int64(fc.frameSize)})
	}
	fc.spillParams()
	fc.initPromoted()
}

func (fc *funcCompiler) usesPromoteReg(reg asm.Reg) bool {
	for _, r := range fc.promoted {
		if r == reg {
			return true
		}
	}
	return false
}

// spillParams stores incoming System V argument registers to their slots.
func (fc *funcCompiler) spillParams() {
	intIdx, fltIdx := 0, 0
	for _, p := range fc.fn.Params {
		t := p.Type.ResolveBase()
		if t.Kind == ctypes.KindBase && t.Base.IsFloat() && t.Base != ctypes.BaseLongDouble {
			if fltIdx >= len(floatArgRegs) {
				continue
			}
			op := asm.OpMOVSS
			if t.Base == ctypes.BaseDouble {
				op = asm.OpMOVSD
			}
			fc.emit(op, t.Size(), fc.slotMem(p), asm.R(floatArgRegs[fltIdx]))
			fltIdx++
			continue
		}
		if intIdx >= len(intArgRegs) {
			continue
		}
		w := p.Type.Size()
		if w == 0 || w > 8 {
			w = 8
		}
		fc.emit(asm.OpMOV, w, fc.slotMem(p), asm.R(intArgRegs[intIdx].WithWidth(w)))
		intIdx++
	}
}

// initPromoted zeroes register-promoted locals (they have no memory slot).
func (fc *funcCompiler) initPromoted() {
	for _, d := range fc.fn.Locals {
		if reg, ok := fc.promoted[d]; ok {
			fc.zeroReg(reg.WithWidth(intWidth(d.Type)))
		}
	}
}

func (fc *funcCompiler) epilogue() {
	if fc.frameSize > 0 && (fc.frameReg == asm.RSP || fc.hasPromotions()) {
		fc.emit(asm.OpADD, 8, asm.R(asm.RSP), asm.Imm{Value: int64(fc.frameSize)})
	}
	for i := len(promoteRegs) - 1; i >= 0; i-- {
		if fc.usesPromoteReg(promoteRegs[i]) {
			fc.emit(asm.OpPOP, 8, asm.R(promoteRegs[i]))
		}
	}
	if fc.frameReg == asm.RBP {
		if fc.hasPromotions() {
			fc.emit(asm.OpPOP, 8, asm.R(asm.RBP))
		} else {
			fc.emit(asm.OpLEAVE, 0)
		}
	}
	fc.emit(asm.OpRET, 0)
}

func (fc *funcCompiler) hasPromotions() bool { return len(fc.promoted) > 0 }

// intWidth is the machine operand width used to compute on an integer,
// enum or pointer type: sub-int types are promoted to 32 bits as in C.
func intWidth(t *ctypes.Type) int {
	rt := t.ResolveBase()
	switch rt.Kind {
	case ctypes.KindPointer, ctypes.KindArray:
		return 8
	case ctypes.KindEnum:
		return 4
	case ctypes.KindBase:
		if s := rt.Size(); s >= 4 {
			return s
		}
		return 4
	default:
		return 8
	}
}

func isSignedInt(t *ctypes.Type) bool {
	rt := t.ResolveBase()
	if rt.Kind == ctypes.KindEnum {
		return true
	}
	return rt.Kind == ctypes.KindBase && rt.Base.IsSigned()
}

func isFloatType(t *ctypes.Type) bool {
	rt := t.ResolveBase()
	return rt.Kind == ctypes.KindBase && rt.Base.IsFloat() && rt.Base != ctypes.BaseLongDouble
}

func isLongDouble(t *ctypes.Type) bool {
	rt := t.ResolveBase()
	return rt.Kind == ctypes.KindBase && rt.Base == ctypes.BaseLongDouble
}

// --- statement lowering ---

func (fc *funcCompiler) stmt(s synth.Stmt) error {
	switch x := s.(type) {
	case *synth.Assign:
		return fc.assign(x)
	case *synth.If:
		return fc.ifStmt(x)
	case *synth.While:
		return fc.whileStmt(x)
	case *synth.For:
		return fc.forStmt(x)
	case *synth.Return:
		return fc.returnStmt(x)
	case *synth.ExprStmt:
		_, err := fc.call(x.X.(*synth.Call), 0)
		return err
	default:
		return fmt.Errorf("statement %T: %w", s, ErrUnsupported)
	}
}

func (fc *funcCompiler) ifStmt(x *synth.If) error {
	if fc.opts.Opt >= 2 {
		done, err := fc.tryIfConversion(x)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	elseL := fc.newLabel("else")
	endL := fc.newLabel("end")
	target := endL
	if len(x.Else) > 0 {
		target = elseL
	}
	if err := fc.condBranch(x.Cond, target); err != nil {
		return err
	}
	for _, s := range x.Then {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	if len(x.Else) > 0 {
		fc.emit(asm.OpJMP, 0, asm.Sym{Name: endL})
		fc.label(elseL)
		for _, s := range x.Else {
			if err := fc.stmt(s); err != nil {
				return err
			}
		}
	}
	fc.label(endL)
	return nil
}

// tryIfConversion lowers `if (a OP b) v = e;` to a branch-free CMOVcc when
// the shape allows it — the classic O2 if-conversion real compilers apply.
// Returns true when the statement was handled.
func (fc *funcCompiler) tryIfConversion(x *synth.If) (bool, error) {
	if len(x.Else) != 0 || len(x.Then) != 1 {
		return false, nil
	}
	cond, ok := x.Cond.(*synth.Cmp)
	if !ok || isFloatType(synth.TypeOfExpr(cond.L)) {
		return false, nil
	}
	assign, ok := x.Then[0].(*synth.Assign)
	if !ok {
		return false, nil
	}
	vr, ok := assign.LHS.(*synth.VarRef)
	if !ok {
		return false, nil
	}
	t := vr.Decl.Type.ResolveBase()
	isIntScalar := (t.Kind == ctypes.KindBase && t.Base.IsInteger()) || t.Kind == ctypes.KindEnum
	w := intWidth(vr.Decl.Type)
	if !isIntScalar || w < 4 || storeWidth(vr.Decl.Type) < 4 {
		return false, nil // CMOV has no 8-bit form; sub-int stores keep branches
	}
	switch assign.RHS.(type) {
	case *synth.IntLit, *synth.VarRef:
	default:
		return false, nil
	}

	// cur = v; alt = rhs; cmp; cmovcc cur, alt; v = cur.
	cur, err := fc.loadInt(assign.LHS, w, 0)
	if err != nil {
		return false, err
	}
	alt, err := fc.loadInt(assign.RHS, w, 2)
	if err != nil {
		return false, err
	}
	lw := intWidth(synth.TypeOfExpr(cond.L))
	lr, err := fc.loadInt(cond.L, lw, 3)
	if err != nil {
		return false, err
	}
	if lit, ok := cond.R.(*synth.IntLit); ok && fc.opts.Dialect == GCC {
		fc.emit(asm.OpCMP, lw, asm.R(lr), asm.Imm{Value: lit.Value})
	} else {
		rr, err := fc.loadInt(cond.R, lw, 4)
		if err != nil {
			return false, err
		}
		fc.emit(asm.OpCMP, lw, asm.R(lr), asm.R(rr))
	}
	fc.emit(cmovFor(cond.Op, isSignedInt(synth.TypeOfExpr(cond.L))), w,
		asm.R(cur), asm.R(alt))

	loc, err := fc.lvalue(assign.LHS, 5)
	if err != nil {
		return false, err
	}
	if loc.reg != 0 {
		fc.emit(asm.OpMOV, w, asm.R(loc.reg.WithWidth(w)), asm.R(cur))
	} else {
		fc.emit(asm.OpMOV, storeWidth(vr.Decl.Type), loc.mem,
			asm.R(cur.WithWidth(storeWidth(vr.Decl.Type))))
	}
	return true, nil
}

// cmovFor returns the conditional move taken when the comparison HOLDS.
func cmovFor(op synth.CmpOp, signed bool) asm.Op {
	if signed {
		switch op {
		case synth.CmpEq:
			return asm.OpCMOVE
		case synth.CmpNe:
			return asm.OpCMOVNE
		case synth.CmpLt:
			return asm.OpCMOVL
		case synth.CmpLe:
			return asm.OpCMOVLE
		case synth.CmpGt:
			return asm.OpCMOVG
		case synth.CmpGe:
			return asm.OpCMOVGE
		}
	}
	switch op {
	case synth.CmpEq:
		return asm.OpCMOVE
	case synth.CmpNe:
		return asm.OpCMOVNE
	case synth.CmpLt:
		return asm.OpCMOVB
	case synth.CmpLe:
		return asm.OpCMOVBE
	case synth.CmpGt:
		return asm.OpCMOVA
	case synth.CmpGe:
		return asm.OpCMOVAE
	}
	return asm.OpCMOVE
}

func (fc *funcCompiler) whileStmt(x *synth.While) error {
	condL := fc.newLabel("wcond")
	endL := fc.newLabel("wend")
	fc.label(condL)
	if err := fc.condBranch(x.Cond, endL); err != nil {
		return err
	}
	for _, s := range x.Body {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	fc.emit(asm.OpJMP, 0, asm.Sym{Name: condL})
	fc.label(endL)
	return nil
}

func (fc *funcCompiler) forStmt(x *synth.For) error {
	if x.Init != nil {
		if err := fc.stmt(x.Init); err != nil {
			return err
		}
	}
	condL := fc.newLabel("fcond")
	endL := fc.newLabel("fend")
	fc.label(condL)
	if err := fc.condBranch(x.Cond, endL); err != nil {
		return err
	}
	for _, s := range x.Body {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	if x.Post != nil {
		if err := fc.stmt(x.Post); err != nil {
			return err
		}
	}
	fc.emit(asm.OpJMP, 0, asm.Sym{Name: condL})
	fc.label(endL)
	return nil
}

func (fc *funcCompiler) returnStmt(x *synth.Return) error {
	if x.Value != nil {
		t := synth.TypeOfExpr(x.Value)
		switch {
		case isFloatType(t):
			if _, err := fc.loadFloat(x.Value, 0); err != nil {
				return err
			}
		default:
			if _, err := fc.loadInt(x.Value, intWidth(t), 0); err != nil {
				return err
			}
		}
	}
	fc.epilogue()
	return nil
}

// condBranch evaluates cond and branches to falseLabel when it does NOT
// hold.
func (fc *funcCompiler) condBranch(cond synth.Expr, falseLabel string) error {
	switch x := cond.(type) {
	case *synth.Cmp:
		lt := synth.TypeOfExpr(x.L)
		if isFloatType(lt) {
			xr, err := fc.loadFloat(x.L, 0)
			if err != nil {
				return err
			}
			yr, err := fc.loadFloat(x.R, 1)
			if err != nil {
				return err
			}
			op := asm.OpUCOMISS
			w := 4
			if lt.ResolveBase().Base == ctypes.BaseDouble {
				op, w = asm.OpUCOMISD, 8
			}
			fc.emit(op, w, asm.R(xr), asm.R(yr))
			fc.emit(inverseJcc(x.Op, false), 0, asm.Sym{Name: falseLabel})
			return nil
		}
		w := intWidth(lt)
		lr, err := fc.loadInt(x.L, w, 0)
		if err != nil {
			return err
		}
		// Compare against an immediate directly (GCC) or via a register
		// (Clang prefers materializing).
		if lit, ok := x.R.(*synth.IntLit); ok && fc.opts.Dialect == GCC {
			fc.emit(asm.OpCMP, w, asm.R(lr), asm.Imm{Value: lit.Value})
		} else {
			rr, err := fc.loadInt(x.R, w, 1)
			if err != nil {
				return err
			}
			fc.emit(asm.OpCMP, w, asm.R(lr), asm.R(rr))
		}
		fc.emit(inverseJcc(x.Op, isSignedInt(lt)), 0, asm.Sym{Name: falseLabel})
		return nil
	default:
		t := synth.TypeOfExpr(cond)
		w := intWidth(t)
		r, err := fc.loadInt(cond, w, 0)
		if err != nil {
			return err
		}
		fc.emit(asm.OpTEST, w, asm.R(r), asm.R(r))
		fc.emit(asm.OpJE, 0, asm.Sym{Name: falseLabel})
		return nil
	}
}

// inverseJcc returns the jump taken when the comparison FAILS.
func inverseJcc(op synth.CmpOp, signed bool) asm.Op {
	if signed {
		switch op {
		case synth.CmpEq:
			return asm.OpJNE
		case synth.CmpNe:
			return asm.OpJE
		case synth.CmpLt:
			return asm.OpJGE
		case synth.CmpLe:
			return asm.OpJG
		case synth.CmpGt:
			return asm.OpJLE
		case synth.CmpGe:
			return asm.OpJL
		}
	}
	switch op {
	case synth.CmpEq:
		return asm.OpJNE
	case synth.CmpNe:
		return asm.OpJE
	case synth.CmpLt:
		return asm.OpJAE
	case synth.CmpLe:
		return asm.OpJA
	case synth.CmpGt:
		return asm.OpJBE
	case synth.CmpGe:
		return asm.OpJB
	}
	return asm.OpJNE
}

func setccFor(op synth.CmpOp, signed bool) asm.Op {
	if signed {
		switch op {
		case synth.CmpEq:
			return asm.OpSETE
		case synth.CmpNe:
			return asm.OpSETNE
		case synth.CmpLt:
			return asm.OpSETL
		case synth.CmpLe:
			return asm.OpSETLE
		case synth.CmpGt:
			return asm.OpSETG
		case synth.CmpGe:
			return asm.OpSETGE
		}
	}
	switch op {
	case synth.CmpEq:
		return asm.OpSETE
	case synth.CmpNe:
		return asm.OpSETNE
	case synth.CmpLt:
		return asm.OpSETB
	case synth.CmpLe:
		return asm.OpSETBE
	case synth.CmpGt:
		return asm.OpSETA
	case synth.CmpGe:
		return asm.OpSETAE
	}
	return asm.OpSETE
}

// --- lvalue addressing ---

// lvalLoc describes where an lvalue lives: a memory operand, or a promoted
// register.
type lvalLoc struct {
	mem asm.Mem
	reg asm.Reg // non-zero when register-promoted
	typ *ctypes.Type
}

// lvalue resolves an lvalue, possibly emitting pointer/index loads into
// scratch registers starting at scratchBase.
func (fc *funcCompiler) lvalue(lv synth.LValue, scratchBase int) (lvalLoc, error) {
	switch x := lv.(type) {
	case *synth.VarRef:
		if reg, ok := fc.promoted[x.Decl]; ok {
			return lvalLoc{reg: reg, typ: x.Decl.Type}, nil
		}
		return lvalLoc{mem: fc.varMem(x.Decl), typ: x.Decl.Type}, nil

	case *synth.FieldRef:
		st := x.Base.Type.ResolveBase()
		if st.Kind == ctypes.KindArray {
			st = st.Elem.ResolveBase()
		}
		f := st.Fields[x.Field]
		m := fc.varMem(x.Base)
		m.Disp += int32(f.Offset)
		return lvalLoc{mem: m, typ: f.Type}, nil

	case *synth.PtrFieldRef:
		st := x.Ptr.Type.ResolveBase().Elem.ResolveBase()
		f := st.Fields[x.Field]
		preg := fc.scratch(scratchBase, 8)
		fc.loadVarInto(x.Ptr, preg)
		return lvalLoc{mem: asm.MemD(preg, int32(f.Offset)), typ: f.Type}, nil

	case *synth.DerefRef:
		elem := x.Ptr.Type.ResolveBase().Elem
		preg := fc.scratch(scratchBase, 8)
		fc.loadVarInto(x.Ptr, preg)
		return lvalLoc{mem: asm.MemD(preg, int32(x.Off*elem.Size())), typ: elem}, nil

	case *synth.IndexRef:
		at := x.Arr.Type.ResolveBase()
		elem := at.Elem
		esz := elem.Size()
		base := fc.varMem(x.Arr)
		if lit, ok := x.Idx.(*synth.IntLit); ok {
			base.Disp += int32(lit.Value) * int32(esz)
			return lvalLoc{mem: base, typ: elem}, nil
		}
		// Variable index: sign-extend to 64 bits, then either SIB-scale or
		// pre-multiply for wide elements.
		idxT := synth.TypeOfExpr(x.Idx)
		ireg64 := fc.scratch(scratchBase, 8)
		ireg, err := fc.loadInt(x.Idx, intWidth(idxT), scratchBase)
		if err != nil {
			return lvalLoc{}, err
		}
		if ireg.Width() == 4 {
			fc.emit(asm.OpMOVSXD, 8, asm.R(ireg64), asm.R(ireg))
		}
		switch esz {
		case 1, 2, 4, 8:
			m := asm.MemSIB(base.Base, ireg64, uint8(esz), base.Disp)
			return lvalLoc{mem: m, typ: elem}, nil
		default:
			fc.emit(asm.OpIMUL, 8, asm.R(ireg64), asm.R(ireg64), asm.Imm{Value: int64(esz)})
			m := asm.MemSIB(base.Base, ireg64, 1, base.Disp)
			return lvalLoc{mem: m, typ: elem}, nil
		}
	}
	return lvalLoc{}, fmt.Errorf("lvalue %T: %w", lv, ErrUnsupported)
}

// loadVarInto loads a variable's 64-bit value into reg (for pointer bases).
func (fc *funcCompiler) loadVarInto(d *synth.VarDecl, reg asm.Reg) {
	if pr, ok := fc.promoted[d]; ok {
		fc.emit(asm.OpMOV, 8, asm.R(reg), asm.R(pr))
		return
	}
	fc.emit(asm.OpMOV, 8, asm.R(reg), fc.varMem(d))
}

// varMem returns the memory operand of a variable: frame-relative for
// stack variables, absolute for globals.
func (fc *funcCompiler) varMem(d *synth.VarDecl) asm.Mem {
	if d.Global {
		return asm.Mem{Scale: 1, Disp: int32(fc.c.globals[d])}
	}
	return fc.slotMem(d)
}
